// Package taskstream's root benchmark harness exposes every evaluation
// experiment (E1–E15, DESIGN.md §5) as a testing.B benchmark. Each
// bench runs its experiment once per iteration and reports the
// experiment's headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation and
//
//	go test -bench=BenchmarkE3 .
//
// regenerates just the headline figure. BenchmarkAllExperiments times
// a full-suite regeneration at the serial and one-worker-per-CPU
// settings (the delta-bench -j axis). The per-workload benches at the
// bottom time single simulator runs for profiling the simulator
// itself.
package taskstream

import (
	"testing"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/experiments"
	"taskstream/internal/parallel"
	"taskstream/internal/proto"
	"taskstream/internal/runplan"
	"taskstream/internal/sim"
	"taskstream/internal/workload"
)

// benchExperiment runs one experiment per b.N iteration and publishes
// its metrics. The shared run cache is dropped each iteration so every
// iteration simulates — the benchmark times the experiment, not a
// cache lookup.
func benchExperiment(b *testing.B, fn func() (experiments.Result, error)) {
	b.Helper()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		runplan.Shared.Reset()
		r, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for k, v := range last.Metrics {
		b.ReportMetric(v, k)
	}
	if testing.Verbose() {
		for _, tb := range last.Tables {
			b.Log("\n" + tb.String())
		}
	}
}

func BenchmarkE1_Characterization(b *testing.B) {
	benchExperiment(b, experiments.E1Characterization)
}

func BenchmarkE2_Configuration(b *testing.B) {
	benchExperiment(b, experiments.E2Configuration)
}

func BenchmarkE3_Speedup(b *testing.B) {
	benchExperiment(b, experiments.E3Speedup)
}

func BenchmarkE4_Ablation(b *testing.B) {
	benchExperiment(b, experiments.E4Ablation)
}

func BenchmarkE5_Imbalance(b *testing.B) {
	benchExperiment(b, experiments.E5Imbalance)
}

func BenchmarkE6_Scaling(b *testing.B) {
	benchExperiment(b, experiments.E6Scaling)
}

func BenchmarkE7_Granularity(b *testing.B) {
	benchExperiment(b, experiments.E7Granularity)
}

func BenchmarkE8_Bandwidth(b *testing.B) {
	benchExperiment(b, experiments.E8Bandwidth)
}

func BenchmarkE9_Traffic(b *testing.B) {
	benchExperiment(b, experiments.E9Traffic)
}

func BenchmarkE10_Area(b *testing.B) {
	benchExperiment(b, experiments.E10Area)
}

func BenchmarkE11_Window(b *testing.B) {
	benchExperiment(b, experiments.E11Window)
}

func BenchmarkE12_Hints(b *testing.B) {
	benchExperiment(b, experiments.E12Hints)
}

func BenchmarkE13_QueueDepth(b *testing.B) {
	benchExperiment(b, experiments.E13QueueDepth)
}

func BenchmarkE14_Energy(b *testing.B) {
	benchExperiment(b, experiments.E14Energy)
}

func BenchmarkE15_Inference(b *testing.B) {
	benchExperiment(b, experiments.E15Inference)
}

// benchAll regenerates the entire E-suite once per iteration at the
// given worker budget — the wall-clock number behind delta-bench -j.
// The run cache is dropped between iterations (so each regenerates
// from scratch) but live within one, exactly like a delta-bench
// invocation: cross-experiment dedup is part of what this measures.
func benchAll(b *testing.B, workers int) {
	b.Helper()
	old := experiments.Workers()
	defer experiments.SetWorkers(old)
	experiments.SetWorkers(workers)
	for i := 0; i < b.N; i++ {
		runplan.Shared.Reset()
		if _, err := experiments.All(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllExperimentsSerial(b *testing.B)   { benchAll(b, 1) }
func BenchmarkAllExperimentsParallel(b *testing.B) { benchAll(b, parallel.DefaultWorkers()) }

// Per-workload single-run benches: simulator throughput (wall time per
// simulated run) for each suite workload under the full Delta model.
// Useful for profiling the simulator, not for paper claims.

func benchWorkload(b *testing.B, name string, v baseline.Variant) {
	b.Helper()
	nb := workload.ByName(name)
	if nb == nil {
		b.Fatalf("unknown workload %s", name)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		w := nb.Build()
		rep, err := baseline.Run(v, config.Default8(), w.Prog, w.Storage)
		if err != nil {
			b.Fatal(err)
		}
		cycles = rep.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// Hot-path allocation benches (DESIGN.md §16): the recycled message-
// body and pipe paths must run allocation-free in steady state. Both
// benches assert allocs/op == 0 outright — a regression fails the
// bench, not just a metric.

func BenchmarkProtoAlloc(b *testing.B) {
	central := proto.NewPool()
	shard := proto.NewShardPool(central)
	cycle := func() {
		// Central-pool round trip: the serial machine's path.
		req := central.GetReq()
		req.Line = 42
		central.PutReq(req)
		resp := central.GetResp()
		resp.Line = 42
		central.PutResp(resp)
		fwd := central.GetFwd()
		fwd.Count = 3
		central.PutFwd(fwd)
		// Shard-pool round trip plus barrier rebalance: a sharded
		// lane's per-cycle pattern.
		sreq := shard.GetReq()
		sreq.Write = true
		shard.PutReq(sreq)
		shard.Recycle()
	}
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		b.Fatalf("warmed body pools allocated %v allocs/op, want 0", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

func BenchmarkPipePush(b *testing.B) {
	p := sim.NewPipe[uint64](4)
	const batch = 32
	cycle := func() {
		for i := 0; i < batch; i++ {
			p.Send(0, uint64(i))
		}
		for i := 0; i < batch; i++ {
			if _, ok := p.Recv(sim.Never); !ok {
				b.Fatal("warmed pipe lost an item")
			}
		}
	}
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		b.Fatalf("warmed pipe allocated %v allocs/op, want 0", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

func BenchmarkRunSpMVDelta(b *testing.B)    { benchWorkload(b, "spmv", baseline.Delta) }
func BenchmarkRunSpMVStatic(b *testing.B)   { benchWorkload(b, "spmv", baseline.Static) }
func BenchmarkRunBFSDelta(b *testing.B)     { benchWorkload(b, "bfs", baseline.Delta) }
func BenchmarkRunJoinDelta(b *testing.B)    { benchWorkload(b, "join", baseline.Delta) }
func BenchmarkRunTriDelta(b *testing.B)     { benchWorkload(b, "tri", baseline.Delta) }
func BenchmarkRunSortDelta(b *testing.B)    { benchWorkload(b, "sort", baseline.Delta) }
func BenchmarkRunKMeansDelta(b *testing.B)  { benchWorkload(b, "kmeans", baseline.Delta) }
func BenchmarkRunGEMMDelta(b *testing.B)    { benchWorkload(b, "gemm", baseline.Delta) }
func BenchmarkRunStencilDelta(b *testing.B) { benchWorkload(b, "stencil", baseline.Delta) }
func BenchmarkRunHistDelta(b *testing.B)    { benchWorkload(b, "hist", baseline.Delta) }
