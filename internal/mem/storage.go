// Package mem models the accelerator's memory system in two decoupled
// halves:
//
//   - Storage is the functional half: a sparse, page-backed byte store
//     holding the actual data workloads compute on. Kernels read and
//     write it eagerly; results are therefore real, not synthetic.
//   - DRAM is the timing half: multi-channel bandwidth/latency queues
//     that model when bytes move, independent of what they contain.
//
// The split follows the repository-wide simulation discipline (see
// DESIGN.md §3): functional effects are applied at task dispatch under
// the workloads' phase discipline, while cycle-level timing flows
// through request/response traffic.
package mem

// Addr is a byte address in the accelerator's flat physical space.
type Addr uint64

// ElemBytes is the fixed element width used throughout the machine:
// every stream element is one 64-bit word.
const ElemBytes = 8

const (
	pageShift = 12
	pageBytes = 1 << pageShift
	pageMask  = pageBytes - 1
)

// Storage is the functional backing store. Pages are allocated lazily
// on first touch; untouched memory reads as zero.
type Storage struct {
	pages map[Addr]*[pageBytes]byte
}

// NewStorage returns an empty store.
func NewStorage() *Storage {
	return &Storage{pages: make(map[Addr]*[pageBytes]byte)}
}

func (s *Storage) page(a Addr, create bool) *[pageBytes]byte {
	pn := a >> pageShift
	p := s.pages[pn]
	if p == nil && create {
		p = new([pageBytes]byte)
		s.pages[pn] = p
	}
	return p
}

// Read8 returns the 64-bit word at a, which must be 8-byte aligned.
func (s *Storage) Read8(a Addr) uint64 {
	if a%ElemBytes != 0 {
		panic("mem: unaligned Read8")
	}
	p := s.page(a, false)
	if p == nil {
		return 0
	}
	off := a & pageMask
	var v uint64
	for i := 0; i < ElemBytes; i++ {
		v |= uint64(p[off+Addr(i)]) << (8 * i)
	}
	return v
}

// Write8 stores the 64-bit word v at a, which must be 8-byte aligned.
func (s *Storage) Write8(a Addr, v uint64) {
	if a%ElemBytes != 0 {
		panic("mem: unaligned Write8")
	}
	p := s.page(a, true)
	off := a & pageMask
	for i := 0; i < ElemBytes; i++ {
		p[off+Addr(i)] = byte(v >> (8 * i))
	}
}

// ReadElems reads n consecutive 64-bit words starting at a.
func (s *Storage) ReadElems(a Addr, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.Read8(a + Addr(i*ElemBytes))
	}
	return out
}

// WriteElems stores the words vs consecutively starting at a.
func (s *Storage) WriteElems(a Addr, vs []uint64) {
	for i, v := range vs {
		s.Write8(a+Addr(i*ElemBytes), v)
	}
}

// Allocator hands out non-overlapping address ranges. Workload builders
// use one Allocator per program so buffers never alias.
type Allocator struct {
	next Addr
}

// NewAllocator returns an allocator starting at a non-zero base so that
// address 0 stays invalid (useful for catching uninitialized
// descriptors).
func NewAllocator() *Allocator { return &Allocator{next: pageBytes} }

// Alloc reserves n bytes aligned to a 64-byte line and returns the base.
func (al *Allocator) Alloc(n int) Addr {
	const align = 64
	base := (al.next + align - 1) &^ Addr(align-1)
	al.next = base + Addr(n)
	return base
}

// AllocElems reserves room for n 64-bit elements.
func (al *Allocator) AllocElems(n int) Addr { return al.Alloc(n * ElemBytes) }
