package mem

import (
	"taskstream/internal/config"
	"taskstream/internal/sim"
)

// Spad models a lane-private banked scratchpad. Accesses are
// element-granularity, have a fixed two-cycle latency, and each bank
// services at most one access per cycle; bank conflicts serialize. The
// scratchpad is a pure timing structure — functional scratchpad state
// lives in Storage like everything else, at addresses carved out of the
// global space by the workload's allocator.
type Spad struct {
	cfg      config.Spad
	pending  []*sim.Queue[Request]
	resp     *sim.Pipe[Response]
	Accesses int64
	Conflict int64
}

// SpadLatency is the access latency in cycles.
const SpadLatency = 2

// NewSpad returns a scratchpad with the given parameters.
func NewSpad(cfg config.Spad) *Spad {
	s := &Spad{cfg: cfg, resp: sim.NewPipe[Response](SpadLatency)}
	for i := 0; i < cfg.Banks; i++ {
		s.pending = append(s.pending, sim.NewQueue[Request](64))
	}
	return s
}

// bankOf maps an element address to its bank (element interleaved).
func (s *Spad) bankOf(a Addr) int {
	return int(a / ElemBytes % Addr(s.cfg.Banks))
}

// Submit enqueues an element access, reporting false under
// backpressure on the target bank.
func (s *Spad) Submit(r Request) bool {
	return s.pending[s.bankOf(r.Line)].Push(r)
}

// Tick services one access per bank per cycle.
func (s *Spad) Tick(now sim.Cycle) {
	for b, q := range s.pending {
		r, ok := q.Pop()
		if !ok {
			continue
		}
		s.Accesses++
		if b >= 0 && q.Len() > 0 {
			s.Conflict++ // another access wanted this bank this cycle
		}
		s.resp.Send(now, Response{ID: r.ID, Line: r.Line, Write: r.Write})
	}
}

// PopResponse returns a matured access, if any.
func (s *Spad) PopResponse(now sim.Cycle) (Response, bool) {
	return s.resp.Recv(now)
}

// NextEvent reports when the scratchpad can next act: immediately while
// any bank has pending accesses, otherwise at the maturity of the
// earliest in-flight response (drained by the owning lane's engine).
func (s *Spad) NextEvent(now sim.Cycle) sim.Cycle {
	for _, q := range s.pending {
		if !q.Empty() {
			return now
		}
	}
	return s.resp.NextAt()
}

// Idle reports whether all banks are drained.
func (s *Spad) Idle() bool {
	for _, q := range s.pending {
		if !q.Empty() {
			return false
		}
	}
	return s.resp.Empty()
}
