package mem

import (
	"testing"
	"testing/quick"

	"taskstream/internal/config"
	"taskstream/internal/sim"
)

func TestStorageReadWrite(t *testing.T) {
	s := NewStorage()
	if got := s.Read8(0x1000); got != 0 {
		t.Fatalf("untouched memory = %#x, want 0", got)
	}
	s.Write8(0x1000, 0xdeadbeefcafe0123)
	if got := s.Read8(0x1000); got != 0xdeadbeefcafe0123 {
		t.Fatalf("readback = %#x", got)
	}
	// Neighbors untouched.
	if s.Read8(0x1008) != 0 || s.Read8(0x0ff8) != 0 {
		t.Fatal("write leaked into neighboring words")
	}
}

func TestStorageCrossesPages(t *testing.T) {
	s := NewStorage()
	base := Addr(4096 - 8) // last word of page 0
	s.WriteElems(base, []uint64{1, 2, 3})
	got := s.ReadElems(base, 3)
	for i, want := range []uint64{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("elem %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestStorageUnalignedPanics(t *testing.T) {
	s := NewStorage()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on unaligned access")
		}
	}()
	s.Read8(3)
}

func TestStorageProperty(t *testing.T) {
	// Property: a write/readback pair holds for arbitrary aligned
	// addresses and values, independent of write order.
	f := func(words map[uint32]uint64) bool {
		s := NewStorage()
		for k, v := range words {
			s.Write8(Addr(k)*8, v)
		}
		for k, v := range words {
			if s.Read8(Addr(k)*8) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorNonOverlapping(t *testing.T) {
	al := NewAllocator()
	a := al.Alloc(100)
	b := al.Alloc(1)
	c := al.AllocElems(10)
	if a%64 != 0 || b%64 != 0 || c%64 != 0 {
		t.Fatal("allocations must be line aligned")
	}
	if b < a+100 {
		t.Fatalf("b=%#x overlaps a=[%#x,%#x)", b, a, a+100)
	}
	if c < b+1 {
		t.Fatalf("c=%#x overlaps b", c)
	}
	if a == 0 {
		t.Fatal("first allocation must not be address 0")
	}
}

func dramCfg() config.DRAM {
	return config.DRAM{Channels: 1, LatencyCycles: 10, BytesPerCycle: 16, LineBytes: 64, QueueDepth: 4}
}

func TestChannelLatencyAndBandwidth(t *testing.T) {
	ch := NewChannel(dramCfg())
	// 64B line at 16B/cycle = 4 cycles serialization; resp at issue+10+4.
	if !ch.Submit(Request{ID: 1, Line: 0}) {
		t.Fatal("submit failed")
	}
	var got []sim.Cycle
	for now := sim.Cycle(0); now < 40; now++ {
		ch.Tick(now)
		if r, ok := ch.PopResponse(now); ok {
			if r.ID != 1 {
				t.Fatalf("resp ID = %d", r.ID)
			}
			got = append(got, now)
		}
	}
	if len(got) != 1 || got[0] != 14 {
		t.Fatalf("response cycles = %v, want [14]", got)
	}
}

func TestChannelSerializesRequests(t *testing.T) {
	ch := NewChannel(dramCfg())
	for i := uint64(0); i < 3; i++ {
		if !ch.Submit(Request{ID: i, Line: Addr(i * 64)}) {
			t.Fatal("submit failed")
		}
	}
	var times []sim.Cycle
	for now := sim.Cycle(0); now < 60; now++ {
		ch.Tick(now)
		for {
			if _, ok := ch.PopResponse(now); !ok {
				break
			}
			times = append(times, now)
		}
	}
	// Issues at cycles 0,4,8 → responses at 14,18,22: bandwidth-limited
	// spacing of 4 cycles.
	want := []sim.Cycle{14, 18, 22}
	if len(times) != 3 {
		t.Fatalf("got %d responses, want 3", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("response times = %v, want %v", times, want)
		}
	}
	if !ch.Idle() {
		t.Fatal("channel should be idle after drain")
	}
	if ch.ReadLines != 3 || ch.WriteLines != 0 {
		t.Fatalf("stats: reads=%d writes=%d", ch.ReadLines, ch.WriteLines)
	}
}

func TestChannelBackpressure(t *testing.T) {
	ch := NewChannel(dramCfg())
	for i := uint64(0); i < 4; i++ {
		if !ch.Submit(Request{ID: i}) {
			t.Fatalf("submit %d should succeed (depth 4)", i)
		}
	}
	if ch.Submit(Request{ID: 99}) {
		t.Fatal("submit beyond queue depth should fail")
	}
	if ch.QueueSpace() != 0 {
		t.Fatalf("QueueSpace = %d, want 0", ch.QueueSpace())
	}
}

func TestChannelWriteCounted(t *testing.T) {
	ch := NewChannel(dramCfg())
	ch.Submit(Request{ID: 7, Line: 64, Write: true})
	for now := sim.Cycle(0); now < 20; now++ {
		ch.Tick(now)
		if r, ok := ch.PopResponse(now); ok && (!r.Write || r.Line != 64) {
			t.Fatalf("bad write response %+v", r)
		}
	}
	if ch.WriteLines != 1 {
		t.Fatalf("WriteLines = %d, want 1", ch.WriteLines)
	}
}

func TestLineAndChannelMapping(t *testing.T) {
	if LineOf(0x12345, 64) != 0x12340 {
		t.Fatalf("LineOf = %#x", LineOf(0x12345, 64))
	}
	// Interleave: consecutive lines hit consecutive channels.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		c := ChannelOf(Addr(i*64), 64, 4)
		if seen[c] {
			t.Fatalf("channel %d repeated within one interleave period", c)
		}
		seen[c] = true
	}
	if ChannelOf(0, 64, 4) != ChannelOf(4*64, 64, 4) {
		t.Fatal("interleave should wrap with period channels*line")
	}
}

func TestSpadBankConflicts(t *testing.T) {
	s := NewSpad(config.Spad{Bytes: 1024, Banks: 2})
	// Four accesses all to bank 0 (addresses 0,16,32,48 with 2 banks →
	// element index even = bank 0).
	for i := uint64(0); i < 4; i++ {
		if !s.Submit(Request{ID: i, Line: Addr(i * 16)}) {
			t.Fatal("submit failed")
		}
	}
	var times []sim.Cycle
	for now := sim.Cycle(0); now < 20; now++ {
		s.Tick(now)
		for {
			if _, ok := s.PopResponse(now); !ok {
				break
			}
			times = append(times, now)
		}
	}
	// One per cycle from the same bank: responses at 2,3,4,5.
	want := []sim.Cycle{2, 3, 4, 5}
	if len(times) != 4 {
		t.Fatalf("got %d responses, want 4 (%v)", len(times), times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	if !s.Idle() {
		t.Fatal("spad should be idle")
	}
}

func TestSpadParallelBanks(t *testing.T) {
	s := NewSpad(config.Spad{Bytes: 1024, Banks: 4})
	// One access per bank: all serviced in the same cycle.
	for i := uint64(0); i < 4; i++ {
		s.Submit(Request{ID: i, Line: Addr(i * 8)})
	}
	count := 0
	for now := sim.Cycle(0); now < 10; now++ {
		s.Tick(now)
		for {
			if r, ok := s.PopResponse(now); ok {
				if now != SpadLatency {
					t.Fatalf("response %d at cycle %d, want %d", r.ID, now, SpadLatency)
				}
				count++
			} else {
				break
			}
		}
	}
	if count != 4 {
		t.Fatalf("responses = %d, want 4", count)
	}
}
