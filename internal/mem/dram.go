package mem

import (
	"taskstream/internal/config"
	"taskstream/internal/obs"
	"taskstream/internal/sim"
)

// Request is one line-granularity DRAM access. Requests carry an opaque
// ID that the issuer uses to match responses; the timing model never
// inspects payload data (the functional half lives in Storage).
type Request struct {
	// ID matches the response to the issuer's bookkeeping.
	ID uint64
	// Line is the line-aligned byte address.
	Line Addr
	// Write marks a store; stores are acknowledged after service like
	// loads (the ack models write-completion tracking for barriers).
	Write bool
}

// Response reports a serviced request.
type Response struct {
	ID    uint64
	Line  Addr
	Write bool
}

// Channel models one DRAM channel: a bounded request queue, a fixed
// service latency, and a line-serialization bandwidth limit. A channel
// accepts one request into service every LineBytes/BytesPerCycle
// cycles; the response matures LatencyCycles after service start plus
// the serialization time.
type Channel struct {
	cfg        config.DRAM
	queue      *sim.Queue[Request]
	resp       *sim.Pipe[Response]
	nextIssue  sim.Cycle
	servicePer sim.Cycle

	// Stats, readable by the owner.
	ReadLines  int64
	WriteLines int64
	BusyCycles int64

	// obs, when non-nil, receives a service-occupancy event per line;
	// obsID is the channel index those events carry.
	obs   *obs.Sink
	obsID int32
}

// NewChannel returns a channel with the given DRAM parameters.
func NewChannel(cfg config.DRAM) *Channel {
	per := sim.Cycle((cfg.LineBytes + cfg.BytesPerCycle - 1) / cfg.BytesPerCycle)
	if per < 1 {
		per = 1
	}
	return &Channel{
		cfg:        cfg,
		queue:      sim.NewQueue[Request](cfg.QueueDepth),
		resp:       sim.NewPipe[Response](0),
		servicePer: per,
	}
}

// SetObs attaches the observability sink; id is this channel's index.
func (ch *Channel) SetObs(s *obs.Sink, id int32) {
	ch.obs = s
	ch.obsID = id
}

// Submit enqueues a request, reporting false under backpressure.
func (ch *Channel) Submit(r Request) bool { return ch.queue.Push(r) }

// Tick advances the channel one cycle, starting service on the next
// queued request when the data bus frees up.
func (ch *Channel) Tick(now sim.Cycle) {
	if now < ch.nextIssue {
		ch.BusyCycles++
		return
	}
	r, ok := ch.queue.Pop()
	if !ok {
		return
	}
	ch.BusyCycles++
	ch.nextIssue = now + ch.servicePer
	done := now + sim.Cycle(ch.cfg.LatencyCycles) + ch.servicePer
	ch.resp.SendAt(done, Response{ID: r.ID, Line: r.Line, Write: r.Write})
	if ch.obs != nil {
		var w int64
		if r.Write {
			w = 1
		}
		ch.obs.Emit(obs.Event{Cycle: int64(now), Dur: int64(ch.servicePer),
			Kind: obs.KindDRAM, Comp: ch.obsID, A: int64(r.Line), B: w})
	}
	if r.Write {
		ch.WriteLines++
	} else {
		ch.ReadLines++
	}
}

// PopResponse returns a matured response, if any.
func (ch *Channel) PopResponse(now sim.Cycle) (Response, bool) {
	return ch.resp.Recv(now)
}

// Idle reports whether the channel has no queued or in-flight work.
func (ch *Channel) Idle() bool { return ch.queue.Empty() && ch.resp.Empty() }

// NextEvent reports when the channel's own Tick can next act: with
// requests queued, the next service start (bounded below by the data
// bus freeing at nextIssue); with an empty queue, never — response
// maturity is the owner's event (see RespNextAt), and the bus-busy tail
// is pure time-linear accounting replayed by Skip.
func (ch *Channel) NextEvent(now sim.Cycle) sim.Cycle {
	if ch.queue.Empty() {
		return sim.Never
	}
	if ch.nextIssue > now {
		return ch.nextIssue
	}
	return now
}

// Skip replays the per-cycle busy accounting for skipped cycles
// [from, to): every cycle with the data bus still serializing a line
// (now < nextIssue) counts as busy, exactly as Tick would have counted
// it.
func (ch *Channel) Skip(from, to sim.Cycle) {
	if ch.nextIssue > from {
		end := ch.nextIssue
		if end > to {
			end = to
		}
		ch.BusyCycles += int64(end - from)
	}
}

// RespNextAt returns the maturity cycle of the earliest in-flight
// response, or sim.Never — the forecast contribution of whichever
// component drains this channel's responses.
func (ch *Channel) RespNextAt() sim.Cycle { return ch.resp.NextAt() }

// QueueSpace returns remaining request-queue slots.
func (ch *Channel) QueueSpace() int { return ch.queue.Cap() - ch.queue.Len() }

// LineOf returns the line-aligned address containing a under cfg.
func LineOf(a Addr, lineBytes int) Addr { return a &^ Addr(lineBytes-1) }

// ChannelOf returns the channel index servicing the given line address:
// lines are interleaved round-robin across channels.
func ChannelOf(line Addr, lineBytes, channels int) int {
	return int(line / Addr(lineBytes) % Addr(channels))
}
