package config

import (
	"fmt"
	"reflect"
	"strings"
)

// Canonical returns a stable, content-addressable encoding of the
// configuration: every field in declared order as "path=value"
// segments. Two configs encode identically iff they are equal, so the
// string can key caches (internal/runplan uses it to fingerprint run
// specs). The walk is reflective over the struct in field-declaration
// order — no maps, no pointers — so adding a field to Config (or any
// nested struct) automatically lands in the encoding; a config_test
// perturbation test pins that every field participates.
func (c Config) Canonical() string {
	var b strings.Builder
	writeCanonical(&b, "", reflect.ValueOf(c))
	return b.String()
}

// writeCanonical appends v's fields to b, prefixing nested struct
// fields with their path (e.g. "DRAM.Channels").
func writeCanonical(b *strings.Builder, prefix string, v reflect.Value) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f, fv := t.Field(i), v.Field(i)
		name := f.Name
		if prefix != "" {
			name = prefix + "." + name
		}
		switch fv.Kind() {
		case reflect.Struct:
			writeCanonical(b, name, fv)
		case reflect.Bool:
			fmt.Fprintf(b, "%s=%t;", name, fv.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fmt.Fprintf(b, "%s=%d;", name, fv.Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fmt.Fprintf(b, "%s=%d;", name, fv.Uint())
		default:
			// A field kind the encoding cannot canonicalize would
			// silently alias distinct configs; fail loudly instead.
			panic(fmt.Sprintf("config: Canonical cannot encode field %s of kind %s", name, fv.Kind()))
		}
	}
}
