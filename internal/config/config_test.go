package config

import (
	"strings"
	"testing"
)

func TestDefault8Valid(t *testing.T) {
	c := Default8()
	if err := c.Validate(); err != nil {
		t.Fatalf("Default8 invalid: %v", err)
	}
	if c.Lanes != 8 {
		t.Fatalf("Lanes = %d, want 8", c.Lanes)
	}
}

func TestWithLanes(t *testing.T) {
	c := Default8().WithLanes(32)
	if c.Lanes != 32 {
		t.Fatalf("Lanes = %d, want 32", c.Lanes)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("WithLanes(32) invalid: %v", err)
	}
	// Original is unchanged (value semantics).
	if Default8().Lanes != 8 {
		t.Fatal("WithLanes mutated the preset")
	}
}

func TestStaticModelDisablesMechanismsOnly(t *testing.T) {
	d := Default8()
	s := d.StaticModel()
	if s.Task.EnableWorkAwareLB || s.Task.EnableMulticast || s.Task.EnableForwarding {
		t.Fatal("StaticModel left a mechanism enabled")
	}
	// Datapath must be identical — the paper's comparison is model vs
	// model on the same silicon.
	s.Task = d.Task
	if s != d {
		t.Fatal("StaticModel changed datapath fields")
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		frag string
	}{
		{"lanes", func(c *Config) { c.Lanes = 0 }, "Lanes"},
		{"grid", func(c *Config) { c.Fabric.Rows = -1 }, "grid"},
		{"portwidth", func(c *Config) { c.Fabric.PortWidth = 0 }, "PortWidth"},
		{"numports", func(c *Config) { c.Fabric.NumPorts = 0 }, "NumPorts"},
		{"configcycles", func(c *Config) { c.Fabric.ConfigCycles = -1 }, "ConfigCycles"},
		{"spad", func(c *Config) { c.Spad.Banks = 0 }, "scratchpad"},
		{"channels", func(c *Config) { c.DRAM.Channels = 0 }, "Channels"},
		{"dramlat", func(c *Config) { c.DRAM.LatencyCycles = 0 }, "LatencyCycles"},
		{"drambw", func(c *Config) { c.DRAM.BytesPerCycle = 0 }, "BytesPerCycle"},
		{"linepow2", func(c *Config) { c.DRAM.LineBytes = 48 }, "power of two"},
		{"dramq", func(c *Config) { c.DRAM.QueueDepth = 0 }, "QueueDepth"},
		{"flit", func(c *Config) { c.NoC.FlitBytes = 0 }, "FlitBytes"},
		{"linklat", func(c *Config) { c.NoC.LinkLatency = -1 }, "LinkLatency"},
		{"vcdepth", func(c *Config) { c.NoC.VCDepth = 0 }, "VCDepth"},
		{"taskq", func(c *Config) { c.Task.QueueDepth = 0 }, "Task.QueueDepth"},
		{"dispatch", func(c *Config) { c.Task.DispatchPerCycle = 0 }, "DispatchPerCycle"},
		{"window", func(c *Config) { c.Task.CoalesceWindowCycles = -1 }, "CoalesceWindow"},
		{"rebalance", func(c *Config) { c.Sched.RebalanceTasks = -1 }, "RebalanceTasks"},
		{"skewpct", func(c *Config) { c.Sched.SkewPct = -1 }, "SkewPct"},
		{"pipewindow", func(c *Config) { c.Sched.PipelineWindow = 0 }, "PipelineWindow"},
		{"hoptoll", func(c *Config) { c.Sched.HopToll = -1 }, "HopToll"},
	}
	for _, tc := range cases {
		c := Default8()
		tc.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}
