package config

import (
	"reflect"
	"strings"
	"testing"
)

// TestCanonicalCoversEveryField perturbs each leaf field of Config via
// reflection and demands the canonical encoding change — the property
// that makes Canonical safe to use as a cache key: no field can be
// added to Config without participating in run identity.
func TestCanonicalCoversEveryField(t *testing.T) {
	base := Default8().Canonical()
	cfg := Default8()
	var walk func(path string, v reflect.Value)
	walk = func(path string, v reflect.Value) {
		tt := v.Type()
		for i := 0; i < tt.NumField(); i++ {
			name := tt.Field(i).Name
			if path != "" {
				name = path + "." + name
			}
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Struct:
				walk(name, f)
			case reflect.Bool:
				old := f.Bool()
				f.SetBool(!old)
				if cfg.Canonical() == base {
					t.Errorf("perturbing %s did not change Canonical()", name)
				}
				f.SetBool(old)
			default:
				old := f.Int()
				f.SetInt(old + 1)
				if cfg.Canonical() == base {
					t.Errorf("perturbing %s did not change Canonical()", name)
				}
				f.SetInt(old)
			}
		}
	}
	walk("", reflect.ValueOf(&cfg).Elem())
	if cfg.Canonical() != base {
		t.Fatal("perturbation walk did not restore the config")
	}
}

func TestCanonicalStableAndReadable(t *testing.T) {
	a, b := Default8().Canonical(), Default8().Canonical()
	if a != b {
		t.Fatalf("Canonical not deterministic:\n%s\n%s", a, b)
	}
	for _, frag := range []string{"Lanes=8;", "DRAM.Channels=4;", "Task.EnableForwarding=true;", "Fabric.Rows=5;"} {
		if !strings.Contains(a, frag) {
			t.Errorf("Canonical() missing %q:\n%s", frag, a)
		}
	}
	if Default8().WithLanes(16).Canonical() == a {
		t.Error("WithLanes(16) encodes identically to the default")
	}
	if Default8().StaticModel().Canonical() == a {
		t.Error("StaticModel encodes identically to the delta model")
	}
}
