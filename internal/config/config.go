// Package config defines the parameterized machine description shared
// by the Delta accelerator model and the static-parallel baseline. One
// Config fully determines a simulated machine; experiments sweep fields
// of a preset rather than constructing machines ad hoc.
package config

import "fmt"

// Fabric describes one lane's reconfigurable dataflow fabric.
type Fabric struct {
	// Rows and Cols give the FU grid dimensions. A dataflow graph must
	// place into Rows*Cols functional units.
	Rows, Cols int
	// PortWidth is the vector width of each input/output port in
	// elements per cycle; the fabric can consume/produce at most this
	// many elements per port per cycle once pipelined.
	PortWidth int
	// NumPorts is the number of input and of output vector ports.
	NumPorts int
	// ConfigCycles is the cost of switching the fabric to a different
	// task type's configuration (cached-config switch, not a full
	// bitstream load).
	ConfigCycles int
}

// Spad describes a lane's private scratchpad.
type Spad struct {
	// Bytes is the capacity.
	Bytes int
	// Banks is the number of independently addressable banks; one
	// access per bank per cycle.
	Banks int
}

// DRAM describes the shared main-memory system.
type DRAM struct {
	// Channels is the number of independent memory channels; lines are
	// interleaved across channels.
	Channels int
	// LatencyCycles is the fixed access latency from request acceptance
	// to data return (models CAS + controller).
	LatencyCycles int
	// BytesPerCycle is the per-channel data bandwidth.
	BytesPerCycle int
	// LineBytes is the access granularity (one request moves one line).
	LineBytes int
	// QueueDepth bounds per-channel outstanding requests.
	QueueDepth int
}

// NoC describes the on-chip network joining lanes and memory channels.
type NoC struct {
	// FlitBytes is the payload carried by one flit (one link transfer).
	FlitBytes int
	// LinkLatency is the per-hop latency in cycles.
	LinkLatency int
	// VCDepth is the per-input-port buffer depth in flits at each router.
	VCDepth int
}

// TaskHW describes the TaskStream coordinator hardware and the
// execution-model features under test. The three Enable flags map
// one-to-one onto the paper's three mechanisms; the ablation experiment
// toggles them individually.
type TaskHW struct {
	// QueueDepth bounds the per-lane hardware task queue.
	QueueDepth int
	// DispatchPerCycle bounds coordinator dispatches per cycle.
	DispatchPerCycle int
	// CoalesceWindowCycles is how long a shared-read fetch waits for
	// other lanes to join its multicast group.
	CoalesceWindowCycles int
	// EnableWorkAwareLB selects the work-aware least-loaded dispatch
	// policy; when false, dispatch falls back to round-robin.
	EnableWorkAwareLB bool
	// EnableMulticast turns on shared-read coalescing + NoC multicast.
	EnableMulticast bool
	// EnableForwarding turns on pipelined inter-task dependence
	// recovery (producer→consumer element forwarding over the NoC).
	EnableForwarding bool
	// DisablePrefetch turns off next-task read-stream prefetch in the
	// lanes (a datapath feature both execution models share; exposed
	// for the design-choice ablation E13).
	DisablePrefetch bool
}

// Sched parameterizes the pluggable dispatch policies (DESIGN.md §17)
// beyond the boolean mechanism toggles in TaskHW. Like every other
// config field the block participates in Canonical(), so runs under
// different scheduler tunings never share a cached result.
type Sched struct {
	// RebalanceTasks is the temporal re-balancing cadence of the
	// streaming task-graph policy: the spatial per-type lane partition
	// is re-examined after this many task completions and rebuilt when
	// load skew exceeds SkewPct. Non-positive disables re-balancing
	// (the partition set at phase start persists).
	RebalanceTasks int
	// SkewPct is the streamgraph re-balance trigger: rebuild only when
	// the most loaded lane's outstanding work exceeds the least
	// loaded's by more than this percentage of the mean lane load.
	SkewPct int
	// PipelineWindow bounds how many queued tasks the pipeline policy
	// scans for a formable forward group before falling back to
	// head-of-queue dispatch. Must be at least 1 (1 = head only).
	PipelineWindow int
	// HopToll is the pipeline policy's NoC locality price, in work-hint
	// units per mesh hop: each producer lane choice adds
	// HopToll x hops-to-consumer to the lane's outstanding-work cost,
	// trading load balance for shorter forwarded streams. Zero ignores
	// placement — the reference default, since on the 8-lane mesh load
	// balance dominates and any toll loses more to queue imbalance than
	// it recovers in hop latency; the knob targets larger meshes.
	HopToll int64
}

// Config is a complete machine description.
type Config struct {
	// Lanes is the number of compute lanes.
	Lanes  int
	Fabric Fabric
	Spad   Spad
	DRAM   DRAM
	NoC    NoC
	Task   TaskHW
	Sched  Sched
}

// Default8 returns the reference 8-lane Delta configuration used by the
// headline experiments. The proportions track the class of machine the
// paper evaluates: a multi-lane CGRA with vector-width-4 ports, a
// moderately banked scratchpad, and a memory system that irregular
// workloads can saturate.
func Default8() Config {
	return Config{
		Lanes: 8,
		Fabric: Fabric{
			Rows: 5, Cols: 5,
			PortWidth:    4,
			NumPorts:     4,
			ConfigCycles: 8,
		},
		Spad: Spad{Bytes: 64 << 10, Banks: 8},
		DRAM: DRAM{
			Channels:      4,
			LatencyCycles: 80,
			BytesPerCycle: 16,
			LineBytes:     64,
			QueueDepth:    16,
		},
		NoC: NoC{FlitBytes: 32, LinkLatency: 1, VCDepth: 16},
		Task: TaskHW{
			QueueDepth:           2,
			DispatchPerCycle:     2,
			CoalesceWindowCycles: 32,
			EnableWorkAwareLB:    true,
			EnableMulticast:      true,
			EnableForwarding:     true,
		},
		Sched: Sched{
			RebalanceTasks: 64,
			SkewPct:        25,
			PipelineWindow: 32,
			HopToll:        0,
		},
	}
}

// WithLanes returns a copy of c with the lane count replaced; used by
// the scaling experiment.
func (c Config) WithLanes(n int) Config {
	c.Lanes = n
	return c
}

// StaticModel returns a copy of c with every TaskStream mechanism
// disabled — the "equivalent static-parallel design" of the paper. The
// datapath fields are untouched.
func (c Config) StaticModel() Config {
	c.Task.EnableWorkAwareLB = false
	c.Task.EnableMulticast = false
	c.Task.EnableForwarding = false
	return c
}

// Validate reports the first structural problem with the configuration,
// or nil. Every simulator entry point validates before building.
func (c Config) Validate() error {
	switch {
	case c.Lanes <= 0:
		return fmt.Errorf("config: Lanes must be positive, got %d", c.Lanes)
	case c.Fabric.Rows <= 0 || c.Fabric.Cols <= 0:
		return fmt.Errorf("config: fabric grid %dx%d invalid", c.Fabric.Rows, c.Fabric.Cols)
	case c.Fabric.PortWidth <= 0:
		return fmt.Errorf("config: PortWidth must be positive, got %d", c.Fabric.PortWidth)
	case c.Fabric.NumPorts <= 0:
		return fmt.Errorf("config: NumPorts must be positive, got %d", c.Fabric.NumPorts)
	case c.Fabric.ConfigCycles < 0:
		return fmt.Errorf("config: ConfigCycles must be non-negative, got %d", c.Fabric.ConfigCycles)
	case c.Spad.Bytes <= 0 || c.Spad.Banks <= 0:
		return fmt.Errorf("config: scratchpad %dB/%d banks invalid", c.Spad.Bytes, c.Spad.Banks)
	case c.DRAM.Channels <= 0:
		return fmt.Errorf("config: DRAM.Channels must be positive, got %d", c.DRAM.Channels)
	case c.DRAM.LatencyCycles <= 0:
		return fmt.Errorf("config: DRAM.LatencyCycles must be positive, got %d", c.DRAM.LatencyCycles)
	case c.DRAM.BytesPerCycle <= 0:
		return fmt.Errorf("config: DRAM.BytesPerCycle must be positive, got %d", c.DRAM.BytesPerCycle)
	case c.DRAM.LineBytes <= 0 || c.DRAM.LineBytes&(c.DRAM.LineBytes-1) != 0:
		return fmt.Errorf("config: DRAM.LineBytes must be a positive power of two, got %d", c.DRAM.LineBytes)
	case c.DRAM.QueueDepth <= 0:
		return fmt.Errorf("config: DRAM.QueueDepth must be positive, got %d", c.DRAM.QueueDepth)
	case c.NoC.FlitBytes <= 0:
		return fmt.Errorf("config: NoC.FlitBytes must be positive, got %d", c.NoC.FlitBytes)
	case c.NoC.LinkLatency < 0:
		return fmt.Errorf("config: NoC.LinkLatency must be non-negative, got %d", c.NoC.LinkLatency)
	case c.NoC.VCDepth <= 0:
		return fmt.Errorf("config: NoC.VCDepth must be positive, got %d", c.NoC.VCDepth)
	case c.Task.QueueDepth <= 0:
		return fmt.Errorf("config: Task.QueueDepth must be positive, got %d", c.Task.QueueDepth)
	case c.Task.DispatchPerCycle <= 0:
		return fmt.Errorf("config: Task.DispatchPerCycle must be positive, got %d", c.Task.DispatchPerCycle)
	case c.Task.CoalesceWindowCycles < 0:
		return fmt.Errorf("config: Task.CoalesceWindowCycles must be non-negative, got %d", c.Task.CoalesceWindowCycles)
	case c.Sched.RebalanceTasks < 0:
		return fmt.Errorf("config: Sched.RebalanceTasks must be non-negative, got %d", c.Sched.RebalanceTasks)
	case c.Sched.SkewPct < 0:
		return fmt.Errorf("config: Sched.SkewPct must be non-negative, got %d", c.Sched.SkewPct)
	case c.Sched.PipelineWindow <= 0:
		return fmt.Errorf("config: Sched.PipelineWindow must be positive, got %d", c.Sched.PipelineWindow)
	case c.Sched.HopToll < 0:
		return fmt.Errorf("config: Sched.HopToll must be non-negative, got %d", c.Sched.HopToll)
	}
	return nil
}
