// Package noc models the accelerator's on-chip network: a 2-D mesh with
// dimension-order (X-Y) routing, per-link serialization at flit
// granularity, bounded router buffering with head-of-line blocking, and
// hardware multicast (a message carries a destination bitmask and is
// replicated at the router where its routes diverge — tree multicast).
//
// Messages move at virtual-cut-through granularity: a message occupies
// each link for ceil(bytes/flitBytes) cycles and arrives at the next
// router after the link latency. Ejection queues are unbounded; traffic
// sources in this machine are self-throttled (bounded outstanding
// requests), which together with X-Y routing keeps the network
// deadlock-free.
package noc

import (
	"fmt"
	"math"

	"taskstream/internal/config"
	"taskstream/internal/obs"
	"taskstream/internal/sim"
)

// Kind tags the protocol class of a message; upper layers dispatch on it.
type Kind uint8

// Message kinds used by the machine.
const (
	// KindMemReq is a lane→memory read/write stream request.
	KindMemReq Kind = iota
	// KindMemResp is a memory→lane(s) data line; may be multicast.
	KindMemResp
	// KindForward is producer→consumer task-stream data.
	KindForward
	// KindSpawn is a lane→coordinator new-task announcement.
	KindSpawn
	// KindCtl is small control traffic (completion, credit, locate).
	KindCtl
)

// HeaderBytes is the per-message header overhead added to payload size.
const HeaderBytes = 8

// MaxNodes bounds the mesh size; destination sets are 64-bit masks.
const MaxNodes = 64

// Message is one network transfer. Body is opaque to the network.
type Message struct {
	Kind  Kind
	Src   int
	Dests uint64 // bitmask of destination node ids
	Bytes int    // payload bytes (header added internally)
	ID    uint64
	Body  any
}

// DestMask returns the bitmask for a single node.
func DestMask(node int) uint64 { return 1 << uint(node) }

// link is one unidirectional mesh link plus its transmit queue.
type link struct {
	q         *sim.Queue[Message]
	busyUntil sim.Cycle
	inflight  *sim.Pipe[Message]
	// blocked holds the head-of-line message that could not route on
	// (valid when hasBlocked; stored by value so blocking never
	// allocates).
	blocked    Message
	hasBlocked bool
	flits      int64
	// idx is the link's position in allLinks — the component index
	// occupancy events carry.
	idx int32
}

const (
	dirE = iota
	dirW
	dirN
	dirS
	numDirs
)

// Mesh is the network fabric.
type Mesh struct {
	cfg        config.NoC
	nodes      int
	cols, rows int
	// out[n][d] is node n's outgoing link in direction d.
	out [][numDirs]*link
	// inLinks[n] lists node n's incoming links in Tick's processing
	// order (precomputed so the per-cycle loops do no neighbor
	// arithmetic); allLinks flattens every link in phase-B order.
	inLinks  [][]*link
	allLinks []*link
	// inject[n] is node n's local injection queue.
	inject []*sim.Queue[Message]
	// eject[n] is node n's (unbounded) delivery queue; a reusable ring
	// so steady-state delivery neither reallocates nor leaks head
	// capacity the way the old append/shift slice did.
	eject []sim.Deque[Message]
	// injectN, linkN, and ejectN count buffered messages (injection
	// queues; link queues + in-flight + blocked heads; delivery
	// queues). injectN and linkN both zero means a Tick has nothing to
	// do, making the empty-mesh cycle O(1) instead of a full link scan;
	// all three zero makes Idle O(1).
	injectN int
	linkN   int
	ejectN  int

	// Stats.
	MsgsSent   int64
	FlitCycles int64
	Replicas   int64 // extra copies created by multicast branching

	// obs, when non-nil, receives per-link occupancy events.
	obs *obs.Sink
}

// NewMesh builds a mesh for the given node count. Node ids 0..n-1 are
// laid out row-major on a near-square grid.
func NewMesh(cfg config.NoC, nodes int) *Mesh {
	if nodes <= 0 || nodes > MaxNodes {
		panic(fmt.Sprintf("noc: node count %d out of range 1..%d", nodes, MaxNodes))
	}
	cols := int(math.Ceil(math.Sqrt(float64(nodes))))
	rows := (nodes + cols - 1) / cols
	m := &Mesh{cfg: cfg, nodes: nodes, cols: cols, rows: rows}
	m.out = make([][numDirs]*link, nodes)
	m.inject = make([]*sim.Queue[Message], nodes)
	m.eject = make([]sim.Deque[Message], nodes)
	for n := 0; n < nodes; n++ {
		for d := 0; d < numDirs; d++ {
			if m.neighbor(n, d) >= 0 {
				m.out[n][d] = &link{
					q:        sim.NewQueue[Message](cfg.VCDepth),
					inflight: sim.NewPipe[Message](sim.Cycle(cfg.LinkLatency)),
				}
			}
		}
		m.inject[n] = sim.NewQueue[Message](cfg.VCDepth)
	}
	m.inLinks = make([][]*link, nodes)
	for n := 0; n < nodes; n++ {
		for d := 0; d < numDirs; d++ {
			if nb := m.neighbor(n, d); nb >= 0 {
				m.inLinks[n] = append(m.inLinks[n], m.out[nb][opposite(d)])
			}
		}
	}
	for n := 0; n < nodes; n++ {
		for d := 0; d < numDirs; d++ {
			if l := m.out[n][d]; l != nil {
				l.idx = int32(len(m.allLinks))
				m.allLinks = append(m.allLinks, l)
			}
		}
	}
	return m
}

// SetObs attaches the observability sink: every link transmission
// emits a KindNoCHop occupancy event, and the per-link track labels
// ("n3→n4") are registered into the sink for the exporters.
func (m *Mesh) SetObs(s *obs.Sink) {
	m.obs = s
	if s == nil {
		return
	}
	labels := make([]string, len(m.allLinks))
	for n := 0; n < m.nodes; n++ {
		for d := 0; d < numDirs; d++ {
			if l := m.out[n][d]; l != nil {
				labels[l.idx] = fmt.Sprintf("n%d→n%d", n, m.neighbor(n, d))
			}
		}
	}
	s.LinkLabels = labels
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.nodes }

// Dist returns the Manhattan hop distance between two nodes — the
// mesh's own layout metric, exported so placement policies (forward
// groups, schedulers) can price traffic locality without duplicating
// the row-major coordinate mapping.
func (m *Mesh) Dist(a, b int) int {
	ax, ay := m.coord(a)
	bx, by := m.coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func (m *Mesh) coord(n int) (x, y int) { return n % m.cols, n / m.cols }

// neighbor returns the node in direction d from n, or -1 at the edge or
// where the (ragged) last row has no node.
func (m *Mesh) neighbor(n, d int) int {
	x, y := m.coord(n)
	switch d {
	case dirE:
		x++
	case dirW:
		x--
	case dirN:
		y--
	case dirS:
		y++
	}
	if x < 0 || x >= m.cols || y < 0 || y >= m.rows {
		return -1
	}
	nb := y*m.cols + x
	if nb >= m.nodes {
		return -1
	}
	return nb
}

// routeDir returns the X-Y direction from cur toward dest (-1 if
// equal). On a ragged mesh the last row may be partial; when the X step
// would enter a missing node, the route detours north first (the rows
// above the ragged row are always full, so Y-then-X reaches any node).
func (m *Mesh) routeDir(cur, dest int) int {
	cx, cy := m.coord(cur)
	dx, dy := m.coord(dest)
	var dir int
	switch {
	case dx > cx:
		dir = dirE
	case dx < cx:
		dir = dirW
	case dy > cy:
		return dirS
	case dy < cy:
		return dirN
	default:
		return -1
	}
	if m.neighbor(cur, dir) < 0 {
		return dirN
	}
	return dir
}

// TryInject offers a message to node src's injection port, reporting
// false under backpressure. Dests must be a non-empty subset of nodes.
func (m *Mesh) TryInject(msg Message) bool {
	if msg.Dests == 0 {
		panic("noc: message with empty destination set")
	}
	if msg.Dests>>uint(m.nodes) != 0 {
		panic(fmt.Sprintf("noc: destinations %#x outside %d-node mesh", msg.Dests, m.nodes))
	}
	if !m.inject[msg.Src].Push(msg) {
		return false
	}
	m.injectN++
	m.MsgsSent++
	return true
}

// Pop removes the next delivered message at node n, if any.
func (m *Mesh) Pop(n int) (Message, bool) {
	msg, ok := m.eject[n].Pop()
	if ok {
		m.ejectN--
	}
	return msg, ok
}

// Deliverable reports whether node n has delivered messages waiting —
// the forecast contribution of the component that drains node n's
// ejection queue (a lane or memory controller).
func (m *Mesh) Deliverable(n int) bool { return !m.eject[n].Empty() }

// serCycles is the link occupancy of one message.
func (m *Mesh) serCycles(msg Message) sim.Cycle {
	fl := (msg.Bytes + HeaderBytes + m.cfg.FlitBytes - 1) / m.cfg.FlitBytes
	if fl < 1 {
		fl = 1
	}
	return sim.Cycle(fl)
}

// route forwards msg from router n: splits the destination set by next
// hop, ejects the local share, and pushes copies onto out-links. It is
// all-or-nothing: if any needed out-link queue is full, nothing moves
// and route reports false.
func (m *Mesh) route(n int, msg Message) bool {
	var perDir [numDirs]uint64
	var local uint64
	rest := msg.Dests
	for rest != 0 {
		d := trailingNode(rest)
		rest &^= 1 << uint(d)
		dir := m.routeDir(n, d)
		if dir < 0 {
			local |= 1 << uint(d)
		} else {
			perDir[dir] |= 1 << uint(d)
		}
	}
	// Check capacity first (atomic forwarding).
	for dir, mask := range perDir {
		if mask != 0 && m.out[n][dir].q.Full() {
			return false
		}
	}
	branches := 0
	for dir, mask := range perDir {
		if mask == 0 {
			continue
		}
		cp := msg
		cp.Dests = mask
		m.out[n][dir].q.Push(cp)
		m.linkN++
		branches++
	}
	if local != 0 {
		cp := msg
		cp.Dests = local
		m.eject[n].Push(cp)
		m.ejectN++
		branches++
	}
	if branches > 1 {
		m.Replicas += int64(branches - 1)
	}
	return true
}

// Tick advances the network one cycle: deliver matured arrivals into
// routers, then start new link transmissions. An empty mesh (no
// injected or link-resident messages) ticks in O(1).
func (m *Mesh) Tick(now sim.Cycle) {
	if m.injectN == 0 && m.linkN == 0 {
		return
	}
	// Phase A: routing. For each node, retry blocked heads, then route
	// newly arrived messages, then drain the injection port.
	for n := 0; n < m.nodes; n++ {
		for _, l := range m.inLinks[n] {
			if l.hasBlocked {
				if m.route(n, l.blocked) {
					l.blocked = Message{} // release the Body reference
					l.hasBlocked = false
					m.linkN--
				}
				continue // head-of-line blocking: nothing else this cycle
			}
			if msg, ok := l.inflight.Recv(now); ok {
				m.linkN--
				if !m.route(n, msg) {
					l.blocked = msg
					l.hasBlocked = true
					m.linkN++
				}
			}
		}
		// Local injection (one message per cycle).
		if msg, ok := m.inject[n].Peek(); ok {
			if m.route(n, msg) {
				m.inject[n].Pop()
				m.injectN--
			}
		}
	}
	// Phase B: link transmission.
	for _, l := range m.allLinks {
		if now < l.busyUntil {
			continue
		}
		msg, ok := l.q.Pop()
		if !ok {
			continue
		}
		ser := m.serCycles(msg)
		l.busyUntil = now + ser
		l.flits += int64(ser)
		m.FlitCycles += int64(ser)
		l.inflight.SendAt(now+ser+sim.Cycle(m.cfg.LinkLatency), msg)
		if m.obs != nil {
			m.obs.Emit(obs.Event{Cycle: int64(now), Dur: int64(ser),
				Kind: obs.KindNoCHop, Comp: l.idx,
				A: int64(msg.Bytes), B: int64(msg.Kind)})
		}
	}
}

// NextEvent reports when the mesh's own Tick can next act: immediately
// while any injection queue holds a message or any link has a blocked
// head (both retried every cycle); at link-transmission start when a
// link queue waits on its busy-until timer; at arrival maturity for
// in-flight link traffic. Ejected messages are not mesh events — their
// consumers forecast them via Deliverable. An empty mesh answers in
// O(1).
func (m *Mesh) NextEvent(now sim.Cycle) sim.Cycle {
	if m.injectN > 0 {
		return now
	}
	if m.linkN == 0 {
		return sim.Never
	}
	ev := sim.Never
	for _, l := range m.allLinks {
		if l.hasBlocked {
			return now
		}
		if at := l.inflight.NextAt(); at < ev {
			if at <= now {
				return now
			}
			ev = at
		}
		if !l.q.Empty() {
			if l.busyUntil <= now {
				return now
			}
			if l.busyUntil < ev {
				ev = l.busyUntil
			}
		}
	}
	return ev
}

// Idle reports whether no message is buffered or in flight anywhere.
// Ejection queues count: a message is in flight until its consumer pops
// it.
func (m *Mesh) Idle() bool {
	return m.injectN == 0 && m.linkN == 0 && m.ejectN == 0
}

// residents recounts every buffered message directly from the queues;
// tests use it to pin the incremental counters to ground truth.
func (m *Mesh) residents() (inject, link, eject int) {
	for n := 0; n < m.nodes; n++ {
		inject += m.inject[n].Len()
		eject += m.eject[n].Len()
		for d := 0; d < numDirs; d++ {
			l := m.out[n][d]
			if l == nil {
				continue
			}
			link += l.q.Len() + l.inflight.Len()
			if l.hasBlocked {
				link++
			}
		}
	}
	return
}

func opposite(d int) int {
	switch d {
	case dirE:
		return dirW
	case dirW:
		return dirE
	case dirN:
		return dirS
	default:
		return dirN
	}
}

// trailingNode returns the index of the lowest set bit.
func trailingNode(mask uint64) int {
	n := 0
	for mask&1 == 0 {
		mask >>= 1
		n++
	}
	return n
}
