// Package noc models the accelerator's on-chip network: a 2-D mesh with
// dimension-order (X-Y) routing, per-link serialization at flit
// granularity, bounded router buffering with head-of-line blocking, and
// hardware multicast (a message carries a destination bitmask and is
// replicated at the router where its routes diverge — tree multicast).
//
// Messages move at virtual-cut-through granularity: a message occupies
// each link for ceil(bytes/flitBytes) cycles and arrives at the next
// router after the link latency. Ejection queues are unbounded; traffic
// sources in this machine are self-throttled (bounded outstanding
// requests), which together with X-Y routing keeps the network
// deadlock-free.
package noc

import (
	"fmt"
	"math"

	"taskstream/internal/config"
	"taskstream/internal/sim"
)

// Kind tags the protocol class of a message; upper layers dispatch on it.
type Kind uint8

// Message kinds used by the machine.
const (
	// KindMemReq is a lane→memory read/write stream request.
	KindMemReq Kind = iota
	// KindMemResp is a memory→lane(s) data line; may be multicast.
	KindMemResp
	// KindForward is producer→consumer task-stream data.
	KindForward
	// KindSpawn is a lane→coordinator new-task announcement.
	KindSpawn
	// KindCtl is small control traffic (completion, credit, locate).
	KindCtl
)

// HeaderBytes is the per-message header overhead added to payload size.
const HeaderBytes = 8

// MaxNodes bounds the mesh size; destination sets are 64-bit masks.
const MaxNodes = 64

// Message is one network transfer. Body is opaque to the network.
type Message struct {
	Kind  Kind
	Src   int
	Dests uint64 // bitmask of destination node ids
	Bytes int    // payload bytes (header added internally)
	ID    uint64
	Body  any
}

// DestMask returns the bitmask for a single node.
func DestMask(node int) uint64 { return 1 << uint(node) }

// link is one unidirectional mesh link plus its transmit queue.
type link struct {
	q         *sim.Queue[Message]
	busyUntil sim.Cycle
	inflight  *sim.Pipe[Message]
	blocked   *Message // head-of-line message that could not route on
	flits     int64
}

const (
	dirE = iota
	dirW
	dirN
	dirS
	numDirs
)

// Mesh is the network fabric.
type Mesh struct {
	cfg        config.NoC
	nodes      int
	cols, rows int
	// out[n][d] is node n's outgoing link in direction d.
	out [][numDirs]*link
	// inject[n] is node n's local injection queue.
	inject []*sim.Queue[Message]
	// eject[n] is node n's (unbounded) delivery queue.
	eject [][]Message

	// Stats.
	MsgsSent   int64
	FlitCycles int64
	Replicas   int64 // extra copies created by multicast branching
}

// NewMesh builds a mesh for the given node count. Node ids 0..n-1 are
// laid out row-major on a near-square grid.
func NewMesh(cfg config.NoC, nodes int) *Mesh {
	if nodes <= 0 || nodes > MaxNodes {
		panic(fmt.Sprintf("noc: node count %d out of range 1..%d", nodes, MaxNodes))
	}
	cols := int(math.Ceil(math.Sqrt(float64(nodes))))
	rows := (nodes + cols - 1) / cols
	m := &Mesh{cfg: cfg, nodes: nodes, cols: cols, rows: rows}
	m.out = make([][numDirs]*link, nodes)
	m.inject = make([]*sim.Queue[Message], nodes)
	m.eject = make([][]Message, nodes)
	for n := 0; n < nodes; n++ {
		for d := 0; d < numDirs; d++ {
			if m.neighbor(n, d) >= 0 {
				m.out[n][d] = &link{
					q:        sim.NewQueue[Message](cfg.VCDepth),
					inflight: sim.NewPipe[Message](sim.Cycle(cfg.LinkLatency)),
				}
			}
		}
		m.inject[n] = sim.NewQueue[Message](cfg.VCDepth)
	}
	return m
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.nodes }

func (m *Mesh) coord(n int) (x, y int) { return n % m.cols, n / m.cols }

// neighbor returns the node in direction d from n, or -1 at the edge or
// where the (ragged) last row has no node.
func (m *Mesh) neighbor(n, d int) int {
	x, y := m.coord(n)
	switch d {
	case dirE:
		x++
	case dirW:
		x--
	case dirN:
		y--
	case dirS:
		y++
	}
	if x < 0 || x >= m.cols || y < 0 || y >= m.rows {
		return -1
	}
	nb := y*m.cols + x
	if nb >= m.nodes {
		return -1
	}
	return nb
}

// routeDir returns the X-Y direction from cur toward dest (-1 if
// equal). On a ragged mesh the last row may be partial; when the X step
// would enter a missing node, the route detours north first (the rows
// above the ragged row are always full, so Y-then-X reaches any node).
func (m *Mesh) routeDir(cur, dest int) int {
	cx, cy := m.coord(cur)
	dx, dy := m.coord(dest)
	var dir int
	switch {
	case dx > cx:
		dir = dirE
	case dx < cx:
		dir = dirW
	case dy > cy:
		return dirS
	case dy < cy:
		return dirN
	default:
		return -1
	}
	if m.neighbor(cur, dir) < 0 {
		return dirN
	}
	return dir
}

// TryInject offers a message to node src's injection port, reporting
// false under backpressure. Dests must be a non-empty subset of nodes.
func (m *Mesh) TryInject(msg Message) bool {
	if msg.Dests == 0 {
		panic("noc: message with empty destination set")
	}
	if msg.Dests>>uint(m.nodes) != 0 {
		panic(fmt.Sprintf("noc: destinations %#x outside %d-node mesh", msg.Dests, m.nodes))
	}
	if !m.inject[msg.Src].Push(msg) {
		return false
	}
	m.MsgsSent++
	return true
}

// Pop removes the next delivered message at node n, if any.
func (m *Mesh) Pop(n int) (Message, bool) {
	if len(m.eject[n]) == 0 {
		return Message{}, false
	}
	msg := m.eject[n][0]
	m.eject[n] = m.eject[n][1:]
	return msg, true
}

// serCycles is the link occupancy of one message.
func (m *Mesh) serCycles(msg Message) sim.Cycle {
	fl := (msg.Bytes + HeaderBytes + m.cfg.FlitBytes - 1) / m.cfg.FlitBytes
	if fl < 1 {
		fl = 1
	}
	return sim.Cycle(fl)
}

// route forwards msg from router n: splits the destination set by next
// hop, ejects the local share, and pushes copies onto out-links. It is
// all-or-nothing: if any needed out-link queue is full, nothing moves
// and route reports false.
func (m *Mesh) route(n int, msg Message) bool {
	var perDir [numDirs]uint64
	var local uint64
	rest := msg.Dests
	for rest != 0 {
		d := trailingNode(rest)
		rest &^= 1 << uint(d)
		dir := m.routeDir(n, d)
		if dir < 0 {
			local |= 1 << uint(d)
		} else {
			perDir[dir] |= 1 << uint(d)
		}
	}
	// Check capacity first (atomic forwarding).
	for dir, mask := range perDir {
		if mask != 0 && m.out[n][dir].q.Full() {
			return false
		}
	}
	branches := 0
	for dir, mask := range perDir {
		if mask == 0 {
			continue
		}
		cp := msg
		cp.Dests = mask
		m.out[n][dir].q.Push(cp)
		branches++
	}
	if local != 0 {
		cp := msg
		cp.Dests = local
		m.eject[n] = append(m.eject[n], cp)
		branches++
	}
	if branches > 1 {
		m.Replicas += int64(branches - 1)
	}
	return true
}

// Tick advances the network one cycle: deliver matured arrivals into
// routers, then start new link transmissions.
func (m *Mesh) Tick(now sim.Cycle) {
	// Phase A: routing. For each node, retry blocked heads, then route
	// newly arrived messages, then drain the injection port.
	for n := 0; n < m.nodes; n++ {
		for d := 0; d < numDirs; d++ {
			// The in-link from direction d is the neighbor's out-link
			// pointing back at us.
			nb := m.neighbor(n, d)
			if nb < 0 {
				continue
			}
			l := m.out[nb][opposite(d)]
			if l.blocked != nil {
				if m.route(n, *l.blocked) {
					l.blocked = nil
				}
				continue // head-of-line blocking: nothing else this cycle
			}
			if msg, ok := l.inflight.Recv(now); ok {
				if !m.route(n, msg) {
					l.blocked = &msg
				}
			}
		}
		// Local injection (one message per cycle).
		if msg, ok := m.inject[n].Peek(); ok {
			if m.route(n, msg) {
				m.inject[n].Pop()
			}
		}
	}
	// Phase B: link transmission.
	for n := 0; n < m.nodes; n++ {
		for d := 0; d < numDirs; d++ {
			l := m.out[n][d]
			if l == nil || now < l.busyUntil {
				continue
			}
			msg, ok := l.q.Pop()
			if !ok {
				continue
			}
			ser := m.serCycles(msg)
			l.busyUntil = now + ser
			l.flits += int64(ser)
			m.FlitCycles += int64(ser)
			l.inflight.SendAt(now+ser+sim.Cycle(m.cfg.LinkLatency), msg)
		}
	}
}

// Idle reports whether no message is buffered or in flight anywhere.
// Ejection queues count: a message is in flight until its consumer pops
// it.
func (m *Mesh) Idle() bool {
	for n := 0; n < m.nodes; n++ {
		if !m.inject[n].Empty() || len(m.eject[n]) > 0 {
			return false
		}
		for d := 0; d < numDirs; d++ {
			l := m.out[n][d]
			if l == nil {
				continue
			}
			if !l.q.Empty() || !l.inflight.Empty() || l.blocked != nil {
				return false
			}
		}
	}
	return true
}

func opposite(d int) int {
	switch d {
	case dirE:
		return dirW
	case dirW:
		return dirE
	case dirN:
		return dirS
	default:
		return dirN
	}
}

// trailingNode returns the index of the lowest set bit.
func trailingNode(mask uint64) int {
	n := 0
	for mask&1 == 0 {
		mask >>= 1
		n++
	}
	return n
}
