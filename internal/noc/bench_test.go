package noc

import (
	"testing"

	"taskstream/internal/sim"
)

// BenchmarkMeshArbitration measures flit arbitration and routing under
// sustained all-to-all traffic on a 4x4 mesh: every node keeps one
// message in flight to a rotating destination, so links contend and the
// blocked-head retry path stays hot.
func BenchmarkMeshArbitration(b *testing.B) {
	m := NewMesh(cfg(), 16)
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for i := 0; i < b.N; i++ {
		now := sim.Cycle(i)
		for src := 0; src < 16; src++ {
			dst := (src + 1 + sent%15) % 16
			if m.TryInject(Message{Kind: KindMemReq, Src: src, Dests: DestMask(dst), Bytes: 64}) {
				sent++
			}
		}
		m.Tick(now)
		for n := 0; n < 16; n++ {
			for {
				if _, ok := m.Pop(n); !ok {
					break
				}
			}
		}
	}
}

// BenchmarkMeshIdleTick measures the cost of ticking a mesh with no
// traffic at all — the cycle the counter-gated early return makes O(1).
func BenchmarkMeshIdleTick(b *testing.B) {
	m := NewMesh(cfg(), 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick(sim.Cycle(i))
	}
}
