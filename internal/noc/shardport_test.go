package noc

import (
	"testing"

	"taskstream/internal/config"
	"taskstream/internal/sim"
)

// TestShardPortCountersMatchResidents pins that deferred inject/pop
// deltas, once flushed, leave the mesh's incremental counters equal to
// a ground-truth recount — i.e. a ShardPort round trip is
// indistinguishable from direct Mesh calls.
func TestShardPortCountersMatchResidents(t *testing.T) {
	m := NewMesh(config.Default8().NoC, 9)
	p := m.NewShardPort(0)

	for i := 0; i < 3; i++ {
		if !p.TryInject(Message{Kind: KindMemReq, Src: 0, Dests: DestMask(8), Bytes: 64}) {
			t.Fatalf("inject %d backpressured on empty mesh", i)
		}
	}
	p.Flush()
	if m.injectN != 3 || m.MsgsSent != 3 {
		t.Fatalf("after flush: injectN=%d MsgsSent=%d, want 3/3", m.injectN, m.MsgsSent)
	}

	// Run the mesh until everything is delivered at node 8.
	for c := sim.Cycle(0); !m.Deliverable(8) || m.injectN+m.linkN > 0; c++ {
		if c > 1000 {
			t.Fatal("messages never delivered")
		}
		m.Tick(c)
	}
	q := m.NewShardPort(8)
	n := 0
	for {
		_, ok := q.Pop()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("popped %d messages, want 3", n)
	}
	if m.ejectN != 3 {
		t.Fatalf("ejectN folded early: %d, want 3 before Flush", m.ejectN)
	}
	q.Flush()
	inj, link, ej := m.residents()
	if m.injectN != inj || m.linkN != link || m.ejectN != ej {
		t.Fatalf("counters (%d,%d,%d) != residents (%d,%d,%d)",
			m.injectN, m.linkN, m.ejectN, inj, link, ej)
	}
	if !m.Idle() {
		t.Fatal("mesh not idle after full drain + flush")
	}
}

// TestShardPortWrongSrcPanics pins the ownership guard.
func TestShardPortWrongSrcPanics(t *testing.T) {
	m := NewMesh(config.Default8().NoC, 4)
	p := m.NewShardPort(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic injecting with foreign Src")
		}
	}()
	p.TryInject(Message{Src: 2, Dests: DestMask(0), Bytes: 8})
}
