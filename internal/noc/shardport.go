package noc

import "fmt"

// ShardPort is a lane's private window onto the mesh for sharded
// execution. During the parallel phase a lane may only touch
// single-owner mesh state: its own node's injection queue (no other
// component pushes there) and its own node's ejection queue (no other
// component pops there). The mesh's aggregate counters (injectN,
// ejectN, MsgsSent) are shared across all nodes, so the port defers
// them as local deltas and Flush — called at the epoch barrier, serial
// context — folds them in. The mesh itself ticks in the serial suffix,
// after every flush, so it always observes consistent counters.
//
// A ShardPort belongs to exactly one parallel ticker; TryInject/Pop
// must only be called from that ticker's Tick (or from serial context),
// Flush only from the barrier.
type ShardPort struct {
	m        *Mesh
	node     int
	injected int64
	popped   int64
}

// NewShardPort returns node's shard-local mesh port.
func (m *Mesh) NewShardPort(node int) *ShardPort {
	if node < 0 || node >= m.nodes {
		panic(fmt.Sprintf("noc: shard port node %d out of range", node))
	}
	return &ShardPort{m: m, node: node}
}

// TryInject offers a message to the port's node, reporting false under
// backpressure. The message's Src must be the port's own node.
func (p *ShardPort) TryInject(msg Message) bool {
	if msg.Src != p.node {
		panic(fmt.Sprintf("noc: shard port for node %d injecting as node %d", p.node, msg.Src))
	}
	if msg.Dests == 0 {
		panic("noc: message with empty destination set")
	}
	if msg.Dests>>uint(p.m.nodes) != 0 {
		panic(fmt.Sprintf("noc: destinations %#x outside %d-node mesh", msg.Dests, p.m.nodes))
	}
	if !p.m.inject[p.node].Push(msg) {
		return false
	}
	p.injected++
	return true
}

// Pop removes the next delivered message at the port's node, if any.
func (p *ShardPort) Pop() (Message, bool) {
	msg, ok := p.m.eject[p.node].Pop()
	if ok {
		p.popped++
	}
	return msg, ok
}

// Deliverable reports whether the port's node has delivered messages
// waiting. Read-only; safe during the parallel phase because routing
// (which fills ejection queues) runs only in the serial suffix.
func (p *ShardPort) Deliverable() bool { return p.m.Deliverable(p.node) }

// Flush folds the deferred counter deltas into the mesh. Serial
// context (epoch barrier) only.
func (p *ShardPort) Flush() {
	p.m.injectN += int(p.injected)
	p.m.MsgsSent += p.injected
	p.m.ejectN -= int(p.popped)
	p.injected, p.popped = 0, 0
}
