package noc

import (
	"testing"
	"testing/quick"

	"taskstream/internal/config"
	"taskstream/internal/sim"
)

func cfg() config.NoC {
	return config.NoC{FlitBytes: 16, LinkLatency: 1, VCDepth: 8}
}

// drain runs the mesh until idle or maxCycles, collecting deliveries
// per node.
func drain(t *testing.T, m *Mesh, maxCycles int) map[int][]Message {
	t.Helper()
	got := map[int][]Message{}
	for now := sim.Cycle(0); now < sim.Cycle(maxCycles); now++ {
		m.Tick(now)
		for n := 0; n < m.Nodes(); n++ {
			for {
				msg, ok := m.Pop(n)
				if !ok {
					break
				}
				got[n] = append(got[n], msg)
			}
		}
		if m.Idle() {
			return got
		}
	}
	t.Fatalf("mesh did not drain in %d cycles", maxCycles)
	return nil
}

func TestUnicastDelivery(t *testing.T) {
	m := NewMesh(cfg(), 9) // 3x3
	msg := Message{Kind: KindCtl, Src: 0, Dests: DestMask(8), Bytes: 8, ID: 42}
	if !m.TryInject(msg) {
		t.Fatal("inject failed")
	}
	got := drain(t, m, 100)
	if len(got[8]) != 1 || got[8][0].ID != 42 {
		t.Fatalf("node 8 got %v", got[8])
	}
	for n := 0; n < 8; n++ {
		if len(got[n]) != 0 {
			t.Fatalf("node %d spuriously received %v", n, got[n])
		}
	}
}

func TestSelfDelivery(t *testing.T) {
	m := NewMesh(cfg(), 4)
	m.TryInject(Message{Src: 2, Dests: DestMask(2), Bytes: 8, ID: 7})
	got := drain(t, m, 50)
	if len(got[2]) != 1 || got[2][0].ID != 7 {
		t.Fatalf("self delivery failed: %v", got[2])
	}
}

func TestUnicastLatencyScalesWithHops(t *testing.T) {
	// On a 4x4 mesh, node 0 → node 3 is 3 hops east; node 0 → 15 is 6
	// hops. Measure delivery cycles.
	deliverAt := func(dest int) sim.Cycle {
		m := NewMesh(cfg(), 16)
		m.TryInject(Message{Src: 0, Dests: DestMask(dest), Bytes: 8, ID: 1})
		for now := sim.Cycle(0); now < 100; now++ {
			m.Tick(now)
			if _, ok := m.Pop(dest); ok {
				return now
			}
		}
		t.Fatalf("no delivery to %d", dest)
		return 0
	}
	near := deliverAt(1)
	far := deliverAt(15)
	if far <= near {
		t.Fatalf("far delivery (%d) should take longer than near (%d)", far, near)
	}
	// Each hop costs serialization (1 flit = 1 cycle here) + link
	// latency 1: expect roughly 2 cycles/hop.
	if far-near < 8 {
		t.Fatalf("6 hops vs 1 hop should differ by ≥8 cycles, got %d vs %d", far, near)
	}
}

func TestMulticastDeliversToAllAndCountsReplicas(t *testing.T) {
	m := NewMesh(cfg(), 16)
	dests := DestMask(3) | DestMask(12) | DestMask(15)
	m.TryInject(Message{Kind: KindMemResp, Src: 0, Dests: dests, Bytes: 64, ID: 9})
	got := drain(t, m, 200)
	for _, d := range []int{3, 12, 15} {
		if len(got[d]) != 1 || got[d][0].ID != 9 {
			t.Fatalf("dest %d got %v", d, got[d])
		}
	}
	if m.Replicas == 0 {
		t.Fatal("multicast should record replications")
	}
}

func TestMulticastCheaperThanUnicasts(t *testing.T) {
	// Flit-cycles for one multicast to k dests must be below k unicasts:
	// the tree shares the common prefix of the routes.
	dests := []int{12, 13, 14, 15}
	mc := NewMesh(cfg(), 16)
	mask := uint64(0)
	for _, d := range dests {
		mask |= DestMask(d)
	}
	mc.TryInject(Message{Src: 0, Dests: mask, Bytes: 64, ID: 1})
	drain(t, mc, 300)

	uc := NewMesh(cfg(), 16)
	for i, d := range dests {
		uc.TryInject(Message{Src: 0, Dests: DestMask(d), Bytes: 64, ID: uint64(i)})
	}
	drain(t, uc, 300)

	if mc.FlitCycles >= uc.FlitCycles {
		t.Fatalf("multicast flit-cycles %d should be < unicast %d", mc.FlitCycles, uc.FlitCycles)
	}
}

func TestManyMessagesAllDelivered(t *testing.T) {
	m := NewMesh(cfg(), 12)
	const per = 20
	for src := 0; src < 12; src++ {
		for i := 0; i < per; i++ {
			dst := (src + i + 1) % 12
			msg := Message{Src: src, Dests: DestMask(dst), Bytes: 32, ID: uint64(src*1000 + i)}
			for !m.TryInject(msg) {
				m.Tick(0) // make room under backpressure
				for n := 0; n < 12; n++ {
					for {
						if _, ok := m.Pop(n); !ok {
							break
						}
					}
				}
			}
		}
	}
	got := drain(t, m, 20000)
	total := 0
	for _, msgs := range got {
		total += len(msgs)
	}
	// Deliveries popped during the backpressure loop above are lost to
	// the count, so count only a lower bound... instead re-check via
	// stats: every sent message must have been delivered (mesh idle).
	if !m.Idle() {
		t.Fatal("mesh not idle after drain")
	}
	if int64(total) > m.MsgsSent {
		t.Fatalf("delivered %d > sent %d", total, m.MsgsSent)
	}
}

func TestInjectBackpressure(t *testing.T) {
	m := NewMesh(cfg(), 4)
	n := 0
	for m.TryInject(Message{Src: 0, Dests: DestMask(3), Bytes: 64, ID: uint64(n)}) {
		n++
		if n > 1000 {
			t.Fatal("injection never backpressures")
		}
	}
	if n == 0 {
		t.Fatal("first injection should succeed")
	}
}

func TestInjectPanicsOnBadDests(t *testing.T) {
	m := NewMesh(cfg(), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for empty dest set")
		}
	}()
	m.TryInject(Message{Src: 0, Dests: 0})
}

func TestInjectPanicsOnOutOfRangeDest(t *testing.T) {
	m := NewMesh(cfg(), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range dest")
		}
	}()
	m.TryInject(Message{Src: 0, Dests: DestMask(7)})
}

func TestRaggedMeshNodesReachable(t *testing.T) {
	// 7 nodes on a 3-wide grid leaves a ragged last row; every pair
	// must still communicate.
	m := NewMesh(cfg(), 7)
	id := uint64(0)
	for s := 0; s < 7; s++ {
		for d := 0; d < 7; d++ {
			for !m.TryInject(Message{Src: s, Dests: DestMask(d), Bytes: 8, ID: id}) {
				m.Tick(0)
				for n := 0; n < 7; n++ {
					for {
						if _, ok := m.Pop(n); !ok {
							break
						}
					}
				}
			}
			id++
		}
	}
	drain(t, m, 10000)
	if !m.Idle() {
		t.Fatal("ragged mesh failed to drain")
	}
}

func TestBigMessageSerialization(t *testing.T) {
	// A 64B payload (+8 header) at 16B/flit = 5 flit-cycles per hop; a
	// 1-hop transfer must take ≥5 cycles longer than an 8B one.
	timeFor := func(bytes int) sim.Cycle {
		m := NewMesh(cfg(), 4)
		m.TryInject(Message{Src: 0, Dests: DestMask(1), Bytes: bytes, ID: 1})
		for now := sim.Cycle(0); now < 100; now++ {
			m.Tick(now)
			if _, ok := m.Pop(1); ok {
				return now
			}
		}
		t.Fatal("no delivery")
		return 0
	}
	small, big := timeFor(8), timeFor(64)
	if big-small < 3 {
		t.Fatalf("big message should serialize longer: small=%d big=%d", small, big)
	}
}

func TestPropertyAllDestinationsCovered(t *testing.T) {
	// Property: for an arbitrary destination set on an arbitrary mesh
	// size, one multicast reaches exactly the requested destinations.
	f := func(rawNodes uint8, rawMask uint64, rawSrc uint8) bool {
		nodes := int(rawNodes%16) + 2 // 2..17
		mask := rawMask & ((1 << uint(nodes)) - 1)
		if mask == 0 {
			mask = 1
		}
		src := int(rawSrc) % nodes
		m := NewMesh(cfg(), nodes)
		if !m.TryInject(Message{Src: src, Dests: mask, Bytes: 16, ID: 5}) {
			return false
		}
		seen := uint64(0)
		for now := sim.Cycle(0); now < 2000; now++ {
			m.Tick(now)
			for n := 0; n < nodes; n++ {
				for {
					msg, ok := m.Pop(n)
					if !ok {
						break
					}
					if msg.ID != 5 || seen&DestMask(n) != 0 {
						return false // duplicate or foreign delivery
					}
					seen |= DestMask(n)
				}
			}
			if m.Idle() {
				break
			}
		}
		return seen == mask && m.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOccupancyCountersMatchQueues pins the O(1) occupancy counters
// (which gate the empty-Tick early return, NextEvent, and Idle) to a
// direct recount of every queue at every cycle of a contended
// multicast-heavy run. A drifting counter would make Idle/NextEvent
// lie and silently break fast-forwarding.
func TestOccupancyCountersMatchQueues(t *testing.T) {
	m := NewMesh(cfg(), 16)
	check := func(now sim.Cycle) {
		t.Helper()
		inj, link, ej := m.residents()
		if m.injectN != inj || m.linkN != link || m.ejectN != ej {
			t.Fatalf("cycle %d: counters (inject=%d link=%d eject=%d) != recount (%d %d %d)",
				now, m.injectN, m.linkN, m.ejectN, inj, link, ej)
		}
		if m.Idle() != (inj == 0 && link == 0 && ej == 0) {
			t.Fatalf("cycle %d: Idle()=%v disagrees with recount (%d %d %d)",
				now, m.Idle(), inj, link, ej)
		}
	}
	sent := 0
	for now := sim.Cycle(0); now < 400; now++ {
		// Mixed unicast + multicast injections keep links, blocked
		// heads, and ejection queues all populated at once.
		if now < 120 {
			for src := 0; src < 16; src++ {
				msg := Message{Kind: KindMemReq, Src: src, Bytes: 48,
					Dests: DestMask((src + 1 + sent) % 16)}
				if src%5 == 0 {
					msg.Dests = DestMask(0) | DestMask(5) | DestMask(10) | DestMask(15)
				}
				if m.TryInject(msg) {
					sent++
				}
			}
		}
		check(now)
		m.Tick(now)
		check(now)
		// Pop only some nodes, so ejection queues back up.
		for n := 0; n < 16; n += 2 {
			for {
				if _, ok := m.Pop(n); !ok {
					break
				}
			}
			check(now)
		}
	}
	if sent == 0 {
		t.Fatal("no messages injected")
	}
	// Drain completely: counters must reach exactly zero.
	for now := sim.Cycle(400); !m.Idle(); now++ {
		if now > 5000 {
			t.Fatal("mesh did not drain")
		}
		m.Tick(now)
		for n := 0; n < 16; n++ {
			for {
				if _, ok := m.Pop(n); !ok {
					break
				}
			}
		}
		check(now)
	}
	check(5001)
}

// TestDistManhattan pins Dist to row-major Manhattan hop counts: a 3x3
// mesh places node ids left-to-right, top-to-bottom, so opposite
// corners are 4 hops apart and Dist is symmetric with zero diagonal.
func TestDistManhattan(t *testing.T) {
	m := NewMesh(cfg(), 9) // 3x3
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},
		{0, 4, 2},
		{0, 8, 4},
		{2, 6, 4},
		{1, 7, 2},
	}
	for _, c := range cases {
		if got := m.Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := m.Dist(c.b, c.a); got != c.want {
			t.Errorf("Dist(%d,%d) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}
