package noc

import (
	"testing"

	"taskstream/internal/sim"
)

func TestDeterministicDeliverySequence(t *testing.T) {
	// Two identical runs must deliver identical message sequences.
	runOnce := func() []uint64 {
		m := NewMesh(cfg(), 9)
		for i := uint64(0); i < 30; i++ {
			src := int(i % 9)
			dst := int((i * 7) % 9)
			if dst == src {
				dst = (dst + 1) % 9
			}
			msg := Message{Src: src, Dests: DestMask(dst), Bytes: int(8 + i%64), ID: i}
			for !m.TryInject(msg) {
				m.Tick(0)
				for n := 0; n < 9; n++ {
					for {
						if _, ok := m.Pop(n); !ok {
							break
						}
					}
				}
			}
		}
		var order []uint64
		for now := sim.Cycle(0); now < 5000 && !m.Idle(); now++ {
			m.Tick(now)
			for n := 0; n < 9; n++ {
				for {
					msg, ok := m.Pop(n)
					if !ok {
						break
					}
					order = append(order, msg.ID)
				}
			}
		}
		return order
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSameSourceDestOrderPreserved(t *testing.T) {
	// Messages between one src-dst pair travel one path: FIFO order.
	m := NewMesh(cfg(), 9)
	for i := uint64(0); i < 8; i++ {
		if !m.TryInject(Message{Src: 0, Dests: DestMask(8), Bytes: 8, ID: i}) {
			t.Fatal("inject failed")
		}
	}
	var got []uint64
	for now := sim.Cycle(0); now < 1000 && len(got) < 8; now++ {
		m.Tick(now)
		for {
			msg, ok := m.Pop(8)
			if !ok {
				break
			}
			got = append(got, msg.ID)
		}
	}
	for i := range got {
		if got[i] != uint64(i) {
			t.Fatalf("same-pair order broken: %v", got)
		}
	}
}

func TestFlitAccounting(t *testing.T) {
	m := NewMesh(cfg(), 4)
	// 8B payload + 8B header = 16B = 1 flit at 16B/flit; 1 hop.
	m.TryInject(Message{Src: 0, Dests: DestMask(1), Bytes: 8, ID: 1})
	for now := sim.Cycle(0); now < 50 && !m.Idle(); now++ {
		m.Tick(now)
		m.Pop(1)
	}
	if m.FlitCycles != 1 {
		t.Fatalf("flit-cycles = %d, want 1 (one flit, one hop)", m.FlitCycles)
	}
	if m.MsgsSent != 1 {
		t.Fatalf("msgs = %d", m.MsgsSent)
	}
}

func TestMeshRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMesh(%d) must panic", n)
				}
			}()
			NewMesh(cfg(), n)
		}()
	}
}

func TestBroadcastToAll(t *testing.T) {
	// One message to every other node of a 16-node mesh.
	m := NewMesh(cfg(), 16)
	mask := uint64(0)
	for d := 1; d < 16; d++ {
		mask |= DestMask(d)
	}
	m.TryInject(Message{Src: 0, Dests: mask, Bytes: 64, ID: 42})
	seen := 0
	for now := sim.Cycle(0); now < 1000 && !m.Idle(); now++ {
		m.Tick(now)
		for n := 1; n < 16; n++ {
			if _, ok := m.Pop(n); ok {
				seen++
			}
		}
	}
	if seen != 15 {
		t.Fatalf("broadcast reached %d/15 nodes", seen)
	}
	// Tree replication: replicas strictly fewer than 14 would be
	// impossible; exactly 15 unicasts' worth of flits would mean no
	// sharing. Replicas recorded must be ≥ 3 (a real tree).
	if m.Replicas < 3 {
		t.Fatalf("replicas = %d; broadcast should branch", m.Replicas)
	}
}
