package experiments

import (
	"fmt"

	"taskstream/internal/analysis/infer"
	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/runplan"
	"taskstream/internal/stats"
	"taskstream/internal/workload"
)

// E15Inference measures how much of the hand-annotated Delta speedup
// over static delta-infer recovers from stripped programs. For each
// suite workload it runs static, hand-annotated Delta, and
// inferred-annotation Delta, then reports the recovered fraction
// (spInferred-1)/(spHand-1) — "n/a" where the hand annotations buy
// nothing to begin with — alongside per-kind precision/recall against
// the hand annotations. The static and hand-Delta runs are the same
// specs E3/E5/E9/E14 share, so only the inferred variants simulate
// anew here.
func E15Inference() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	// The same options infer.Builder's "+inferred" name grammar
	// resolves with, so E15's specs stay wire-resolvable by name.
	iopts := infer.DefaultOptions()

	// Per-workload accuracy against the hand annotations; no
	// simulation needed, just a second deterministic inference run.
	accs := make([]infer.Accuracy, len(suite))
	var agg infer.Accuracy
	for i, nb := range suite {
		hand := nb.Build()
		inferred, _, err := infer.Infer(infer.Strip(hand.Prog), iopts)
		if err != nil {
			return Result{}, fmt.Errorf("infer %s: %w", nb.Name, err)
		}
		acc, err := infer.Compare(hand.Prog, inferred)
		if err != nil {
			return Result{}, fmt.Errorf("compare %s: %w", nb.Name, err)
		}
		accs[i] = acc
		agg.Add(acc)
	}

	static, delta, err := suitePairs(suite, cfg)
	if err != nil {
		return Result{}, err
	}
	infSpecs := make([]runplan.Spec, len(suite))
	for i, nb := range suite {
		infSpecs[i] = runplan.ForVariant(infer.Builder(nb, iopts), baseline.Delta, cfg)
	}
	infReps, err := runSpecs(infSpecs)
	if err != nil {
		return Result{}, err
	}

	tb := newTable("E15: annotation inference — speedup recovery (8 lanes)",
		"workload", "static cyc", "hand cyc", "inferred cyc", "hand", "inferred", "recovered")
	recSum, recN := 0.0, 0
	for i, nb := range suite {
		spHand := stats.Speedup(static[i].Cycles, delta[i].Cycles)
		spInf := stats.Speedup(static[i].Cycles, infReps[i].Cycles)
		rec := "n/a"
		// Below one percent of hand speedup the recovered fraction is
		// numerically meaningless — annotations bought nothing.
		if spHand-1 > 0.01 {
			r := (spInf - 1) / (spHand - 1)
			recSum += r
			recN++
			rec = stats.Pct(r)
		}
		tb.row(nb.Name, stats.I(static[i].Cycles), stats.I(delta[i].Cycles), stats.I(infReps[i].Cycles),
			stats.Fx(spHand), stats.Fx(spInf), rec)
	}
	meanRec := 0.0
	if recN > 0 {
		meanRec = recSum / float64(recN)
	}
	tb.row("mean", "", "", "", "", "", stats.Pct(meanRec))

	ta := newTable("E15: per-kind inference accuracy vs hand annotations",
		"workload", "fwd P", "fwd R", "shared P", "shared R", "hints exact")
	for i, nb := range suite {
		a := accs[i]
		ta.row(nb.Name, stats.F(a.Forwards.Precision()), stats.F(a.Forwards.Recall()),
			stats.F(a.Shared.Precision()), stats.F(a.Shared.Recall()),
			fmt.Sprintf("%d/%d", a.HintsExact, a.HintsTotal))
	}
	ta.row("aggregate", stats.F(agg.Forwards.Precision()), stats.F(agg.Forwards.Recall()),
		stats.F(agg.Shared.Precision()), stats.F(agg.Shared.Recall()),
		fmt.Sprintf("%d/%d", agg.HintsExact, agg.HintsTotal))

	tables, err := buildAll(tb, ta)
	if err != nil {
		return Result{}, err
	}
	hintFrac := 0.0
	if agg.HintsTotal > 0 {
		hintFrac = float64(agg.HintsExact) / float64(agg.HintsTotal)
	}
	return Result{ID: "E15", Title: "Annotation inference",
		Tables: tables,
		Metrics: map[string]float64{
			"mean_recovered":    meanRec,
			"forward_precision": agg.Forwards.Precision(),
			"forward_recall":    agg.Forwards.Recall(),
			"shared_precision":  agg.Shared.Precision(),
			"shared_recall":     agg.Shared.Recall(),
			"hint_exact_frac":   hintFrac,
		}}, nil
}
