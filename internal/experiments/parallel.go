package experiments

import (
	"sync"

	"taskstream/internal/core"
	"taskstream/internal/parallel"
	"taskstream/internal/runplan"
)

// The harness shares one simulation worker budget across every
// experiment in flight, so `delta-bench -j N` never has more than N
// simulations running no matter how experiments overlap. Jobs are
// fanned out but their results are always assembled in program order,
// which keeps every rendered table byte-identical at any worker count
// (pinned by TestSerialParallelEquality).
var (
	workersMu sync.RWMutex
	simLim    = parallel.NewLimiter(1)
	resolver  func(runplan.Spec) (core.Report, error)
)

// SetResolver replaces how the harness resolves a spec into a report;
// nil restores the default (the shared in-process runner). delta-bench
// -server installs a remote resolver here, pointing every experiment's
// simulations at a delta-serve daemon. Not safe to call while
// experiments are running.
func SetResolver(r func(runplan.Spec) (core.Report, error)) {
	workersMu.Lock()
	defer workersMu.Unlock()
	resolver = r
}

func resolve(s runplan.Spec) (core.Report, error) {
	workersMu.RLock()
	r := resolver
	workersMu.RUnlock()
	if r != nil {
		return r(s)
	}
	return runplan.Shared.Run(s)
}

// SetWorkers caps concurrent simulations harness-wide; n <= 0 means
// one worker per CPU, and 1 (the default) preserves strictly serial
// execution. Not safe to call while experiments are running.
func SetWorkers(n int) {
	workersMu.Lock()
	defer workersMu.Unlock()
	simLim = parallel.NewLimiter(n)
}

// Workers reports the current simulation concurrency bound.
func Workers() int {
	workersMu.RLock()
	defer workersMu.RUnlock()
	return simLim.Cap()
}

func limiter() *parallel.Limiter {
	workersMu.RLock()
	defer workersMu.RUnlock()
	return simLim
}

// runSpecs resolves independent run specs through the shared memoizing
// runner under the worker budget, returning reports in spec order —
// the in-order assembly that keeps rendered tables byte-identical at
// any worker count. Duplicate specs (within one call or across
// concurrently running experiments) execute once: later requests are
// cache hits, and concurrent ones wait on the in-flight run rather
// than occupying a second simulation slot with identical work.
func runSpecs(specs []runplan.Spec) ([]core.Report, error) {
	return parallel.MapLimited(limiter(), specs,
		func(_ int, s runplan.Spec) (core.Report, error) { return resolve(s) })
}
