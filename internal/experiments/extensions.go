package experiments

import (
	"fmt"

	"taskstream/internal/areamodel"
	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/runplan"
	"taskstream/internal/stats"
	"taskstream/internal/workload"
)

// E13QueueDepth is the design-choice ablation DESIGN.md calls out: how
// deep should the per-lane hardware task queue be, and how much does
// next-task stream prefetch matter? Deep queues commit dispatch
// decisions early (hurting work-aware balance); depth 1 exposes task
// startup latency; prefetch hides it. The default depth-2/prefetch
// points dedup against the suite's delta runs.
func E13QueueDepth() (Result, error) {
	names := []string{"spmv", "bfs"}
	depths := []int{1, 2, 4, 8, 16}
	prefetch := []bool{false, true} // disable-prefetch flag values
	specs := make([]runplan.Spec, 0, len(names)*len(depths)*len(prefetch))
	for _, name := range names {
		nb := *workload.ByName(name)
		for _, depth := range depths {
			for _, noPf := range prefetch {
				cfg := config.Default8()
				cfg.Task.QueueDepth = depth
				cfg.Task.DisablePrefetch = noPf
				specs = append(specs, runplan.ForVariant(nb, baseline.Delta, cfg))
			}
		}
	}
	reps, err := runSpecs(specs)
	if err != nil {
		return Result{}, err
	}
	var tables []*table
	metrics := map[string]float64{}
	i := 0
	for _, name := range names {
		tb := newTable(fmt.Sprintf("E13: task queue depth & prefetch — %s (delta cycles)", name),
			"queue depth", "prefetch", "no prefetch")
		for _, depth := range depths {
			row := []string{stats.I(int64(depth))}
			for _, noPf := range prefetch {
				r := reps[i]
				i++
				row = append(row, stats.I(r.Cycles))
				metrics[fmt.Sprintf("%s_d%d_pf%v", name, depth, !noPf)] = float64(r.Cycles)
			}
			tb.row(row...)
		}
		tables = append(tables, tb)
	}
	ts, err := buildAll(tables...)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E13", Title: "Queue depth & prefetch ablation",
		Tables: ts, Metrics: metrics}, nil
}

// E14Energy prices each suite run's data movement and compute with the
// per-event energy model, static vs delta — reproducing the energy
// composition argument (TaskStream shifts DRAM energy to the cheap
// on-chip structures).
func E14Energy() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	static, delta, err := suitePairs(suite, cfg)
	if err != nil {
		return Result{}, err
	}
	tb := newTable("E14: energy (µJ, modeled)",
		"workload", "static", "delta", "ratio", "delta DRAM share")
	metrics := map[string]float64{}
	var ratios []float64
	for i, nb := range suite {
		es := areamodel.EnergyOf(static[i].Stats)
		ed := areamodel.EnergyOf(delta[i].Stats)
		ratio := ed.Total() / es.Total()
		ratios = append(ratios, ratio)
		tb.row(nb.Name,
			stats.F(es.Total()/1e6), stats.F(ed.Total()/1e6),
			stats.Pct(ratio), stats.Pct(ed.DRAM/ed.Total()))
		metrics["ratio_"+nb.Name] = ratio
	}
	g, err := geomean("E14 energy ratio", ratios)
	if err != nil {
		return Result{}, err
	}
	metrics["geomean_ratio"] = g
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E14", Title: "Energy",
		Tables: []*stats.Table{t}, Metrics: metrics}, nil
}
