package experiments

import (
	"strings"
	"testing"
)

// TestShardScalingSmoke runs a minimal E17 sweep (serial + 2 shards,
// one rep) and checks the shape of the result: the determinism
// cross-check passed, the serial point anchors speedup at 1.0, and
// the profiled pass attributed a sane parallel fraction.
func TestShardScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; skipped in -short")
	}
	r, err := RunShardScaling([]int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "E17" {
		t.Fatalf("ID = %q, want E17", r.ID)
	}
	if got := r.Metrics["speedup_s1"]; got != 1 {
		t.Fatalf("serial speedup = %v, want 1", got)
	}
	if r.Metrics["wall_ms_s1"] <= 0 || r.Metrics["wall_ms_s2"] <= 0 {
		t.Fatalf("no wall time measured: %v", r.Metrics)
	}
	p := r.Metrics["parallel_fraction_s2"]
	if p <= 0 || p >= 1 {
		t.Fatalf("measured parallel fraction %v out of (0,1)", p)
	}
	proj := r.Metrics["projected_s2"]
	if proj <= 1 || proj >= 2 {
		t.Fatalf("projected 2-shard speedup %v out of (1,2)", proj)
	}
	out := r.Render()
	for _, want := range []string{"E17", "shards", "barrier wait", "p (measured)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestShardScalingRejectsBadShards pins input validation.
func TestShardScalingRejectsBadShards(t *testing.T) {
	if _, err := RunShardScaling([]int{0}, 1); err == nil {
		t.Fatal("shard count 0 accepted")
	}
}

// TestE17NotInRegistry pins the byte-identity firewall: E17 reports
// wall-clock time, so it must never join the suite registry that the
// CI cmp jobs render.
func TestE17NotInRegistry(t *testing.T) {
	for _, e := range Registry() {
		if e.ID == "E17" {
			t.Fatal("E17 is in Registry(); wall-clock output would break suite byte-identity")
		}
	}
}
