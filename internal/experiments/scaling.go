package experiments

import (
	"fmt"
	"runtime"
	"time"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/sim"
	"taskstream/internal/stats"
	"taskstream/internal/workload"
)

// E17 (delta-bench -scaling): measured shard-scaling on the host, the
// wall-clock companion to the §16 Amdahl projection. Unlike E1–E16 it
// reports host time, so it never joins Registry() — the byte-identity
// CI jobs cmp full-suite stdout, and wall-clock numbers would differ
// every run by construction. It rides its own delta-bench mode and
// lands in BENCH_10.json instead.
//
// Method: for each shard count the workload set runs fresh (no run
// cache — the point is to execute, not to remember), best-of-reps
// wall time per point with host profiling OFF so the clock reads
// don't pollute the timing; then one extra profiled pass per point
// collects the phase attribution (barrier wait, serial/parallel
// split), from which the measured Amdahl parallel fraction p and the
// projected speedup 1/((1-p)+p/s) come. Simulated cycle counts are
// asserted identical across every shard count — the §16 byte-identity
// contract, re-checked where it matters.

// ScalingWorkloads is the measured set: the §16 throughput-table
// workloads — one NoC-bound (spmv), one task-heavy (sort), one
// lane-dominated (gemm).
var ScalingWorkloads = []string{"spmv", "sort", "gemm"}

// DefaultScalingShards is the E17 sweep: serial baseline plus
// doubling shard counts to the §16 projection point.
var DefaultScalingShards = []int{1, 2, 4, 8}

// scalingPoint is one row of the E17 table.
type scalingPoint struct {
	shards    int
	bestNS    int64   // best-of-reps wall time, workload set end to end
	speedup   float64 // serial bestNS / this bestNS
	pFrac     float64 // measured Amdahl parallel fraction (profiled pass)
	projected float64 // 1/((1-p)+p/s) with the measured p
	barrierNS int64   // driver barrier-wait from the profiled pass
	imbalance float64 // max/mean per-shard busy
}

// runSetOnce executes every workload in names fresh at the given shard
// count, returning total wall time and per-workload cycle counts.
func runSetOnce(names []string, shards int) (int64, []int64, error) {
	cycles := make([]int64, len(names))
	t0 := time.Now()
	for i, name := range names {
		nb := workload.ByName(name)
		if nb == nil {
			return 0, nil, fmt.Errorf("E17: unknown workload %q", name)
		}
		w := nb.Build()
		cfg, opts := baseline.Delta.Configure(config.Default8())
		opts.Shards = shards
		rep, err := baseline.RunCfg(cfg, opts, w.Prog, w.Storage)
		if err != nil {
			return 0, nil, fmt.Errorf("E17: %s at %d shards: %w", name, shards, err)
		}
		if err := w.Verify(); err != nil {
			return 0, nil, fmt.Errorf("E17: %s at %d shards: verification: %w", name, shards, err)
		}
		cycles[i] = int64(rep.Cycles)
	}
	return int64(time.Since(t0)), cycles, nil
}

// RunShardScaling measures the shard sweep: best-of-reps wall time
// per shard count plus one profiled pass for attribution. shards and
// reps fall back to DefaultScalingShards and 3 when zero.
func RunShardScaling(shards []int, reps int) (Result, error) {
	if len(shards) == 0 {
		shards = DefaultScalingShards
	}
	if reps <= 0 {
		reps = 3
	}
	// Host profiling is process-global; pin it off for the timed reps
	// whatever the caller had set, restore after.
	wasOn := sim.HostProfEnabled()
	sim.SetHostProf(false)
	defer sim.SetHostProf(wasOn)

	points := make([]scalingPoint, 0, len(shards))
	var refCycles []int64
	for _, s := range shards {
		if s < 1 {
			return Result{}, fmt.Errorf("E17: shard count must be >= 1 (got %d)", s)
		}
		p := scalingPoint{shards: s}
		for rep := 0; rep < reps; rep++ {
			ns, cycles, err := runSetOnce(ScalingWorkloads, s)
			if err != nil {
				return Result{}, err
			}
			if refCycles == nil {
				refCycles = cycles
			}
			for i, c := range cycles {
				if c != refCycles[i] {
					return Result{}, fmt.Errorf(
						"E17: %s at %d shards simulated %d cycles, serial reference %d — sharding broke determinism",
						ScalingWorkloads[i], s, c, refCycles[i])
				}
			}
			if p.bestNS == 0 || ns < p.bestNS {
				p.bestNS = ns
			}
		}
		// Profiled pass: attribution only, excluded from the timing.
		sim.SetHostProf(true)
		sim.ResetHostProf()
		if _, _, err := runSetOnce(ScalingWorkloads, s); err != nil {
			sim.SetHostProf(false)
			return Result{}, err
		}
		snap := sim.HostProfSnapshot()
		sim.SetHostProf(false)
		p.pFrac = snap.ParallelFraction()
		p.barrierNS = snap.BarrierWaitNS
		p.imbalance = snap.Imbalance()
		if p.pFrac > 0 {
			p.projected = 1 / ((1 - p.pFrac) + p.pFrac/float64(s))
		} else {
			p.projected = 1 // serial point: nothing attributed parallel
		}
		points = append(points, p)
	}

	serialNS := points[0].bestNS
	for i := range points {
		points[i].speedup = float64(serialNS) / float64(points[i].bestNS)
	}

	streams := runtime.GOMAXPROCS(0)
	tb := newTable(fmt.Sprintf(
		"E17: measured shard scaling (delta, %s; best of %d, GOMAXPROCS=%d)",
		joinNames(ScalingWorkloads), reps, streams),
		"shards", "wall", "speedup", "p (measured)", "projected", "barrier wait", "imbalance")
	metrics := map[string]float64{"gomaxprocs": float64(streams), "reps": float64(reps)}
	for _, p := range points {
		wall := time.Duration(p.bestNS).Round(time.Millisecond)
		if p.shards == 1 {
			tb.row(fmt.Sprint(p.shards), wall.String(), "1.00x", "-", "-", "-", "-")
		} else {
			tb.row(fmt.Sprint(p.shards), wall.String(),
				fmt.Sprintf("%.2fx", p.speedup),
				fmt.Sprintf("%.3f", p.pFrac),
				fmt.Sprintf("%.2fx", p.projected),
				time.Duration(p.barrierNS).Round(time.Millisecond).String(),
				fmt.Sprintf("%.2f", p.imbalance))
		}
		tag := fmt.Sprintf("_s%d", p.shards)
		metrics["wall_ms"+tag] = float64(p.bestNS) / 1e6
		metrics["speedup"+tag] = p.speedup
		metrics["projected"+tag] = p.projected
		metrics["parallel_fraction"+tag] = p.pFrac
		metrics["barrier_wait_ms"+tag] = float64(p.barrierNS) / 1e6
	}
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:      "E17",
		Title:   "measured shard scaling vs the §16 Amdahl projection",
		Tables:  []*stats.Table{t},
		Metrics: metrics,
	}, nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "+"
		}
		out += n
	}
	return out
}
