package experiments

import (
	"os"
	"strings"
	"testing"

	"taskstream/internal/runplan"
)

// renderAll regenerates the given experiments at the current settings
// and concatenates their tables exactly as delta-bench prints them.
func renderAll(t *testing.T, regs []Named) string {
	t.Helper()
	var b strings.Builder
	for _, e := range regs {
		r, err := e.Fn()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		b.WriteString(r.Render())
	}
	return b.String()
}

// TestGoldenBenchResults regenerates the full E-suite and compares the
// rendered tables byte-for-byte against the committed
// bench_results.txt (minus its trailing wall-time comment block) — the
// output-stability pin for the run-plan refactor: expressing runs as
// memoized specs must not move a single byte of the evaluation.
func TestGoldenBenchResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite regeneration")
	}
	raw, err := os.ReadFile("../../bench_results.txt")
	if err != nil {
		t.Fatal(err)
	}
	golden := string(raw)
	if i := strings.Index(golden, "# ---"); i >= 0 {
		golden = golden[:i]
	}
	got := renderAll(t, Registry())
	if strings.TrimRight(got, "\n") != strings.TrimRight(golden, "\n") {
		t.Fatalf("rendered suite differs from bench_results.txt — regenerate it with "+
			"`go run ./cmd/delta-bench -j 1 > bench_results.txt` if the change is intended\n"+
			"--- got ---\n%s\n--- golden ---\n%s", got, golden)
	}
}

// TestRunCacheOnOffEquality renders a spec-sharing subset with the
// shared run cache enabled and then with it disabled (every spec
// re-executes) and demands byte identity — the copy-out contract: a
// memoized report must be indistinguishable from a fresh simulation.
func TestRunCacheOnOffEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes a suite subset")
	}
	regs := subset(Registry(), "E7", "E11", "E12")
	cached := renderAll(t, regs)
	wasDisabled := runplan.Shared.Disabled()
	runplan.Shared.SetDisabled(true)
	defer runplan.Shared.SetDisabled(wasDisabled)
	fresh := renderAll(t, regs)
	if cached != fresh {
		t.Fatalf("cache-on output differs from cache-off output:\n--- cached ---\n%s\n--- fresh ---\n%s",
			cached, fresh)
	}
	if cached == "" {
		t.Fatal("empty render")
	}
}

// TestSuitePairSharing pins the dedup the run-plan layer exists for:
// E3, E5, E9, E14 (and E4's static/delta columns) all describe the
// same 18 full-suite pair specs, so after E3 fills the cache the
// others add zero simulations — only hits.
func TestSuitePairSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite pair runs")
	}
	wasDisabled := runplan.Shared.Disabled()
	runplan.Shared.SetDisabled(false)
	defer runplan.Shared.SetDisabled(wasDisabled)
	runplan.Shared.Reset()

	if _, err := E3Speedup(); err != nil {
		t.Fatal(err)
	}
	after3 := runplan.Shared.Counters()
	if after3.Misses != 18 {
		t.Fatalf("E3 executed %d specs, want 18 (9 workloads x static+delta)", after3.Misses)
	}

	if _, err := E5Imbalance(); err != nil {
		t.Fatal(err)
	}
	if _, err := E9Traffic(); err != nil {
		t.Fatal(err)
	}
	if _, err := E14Energy(); err != nil {
		t.Fatal(err)
	}
	c := runplan.Shared.Counters()
	if c.Misses != after3.Misses {
		t.Fatalf("E5/E9/E14 executed %d new simulations, want 0 (all shared with E3)",
			c.Misses-after3.Misses)
	}
	if wantHits := after3.Hits + 3*18; c.Hits != wantHits {
		t.Fatalf("hits = %d, want %d (three experiments x 18 cached pairs)", c.Hits, wantHits)
	}

	// E4 re-uses the pairs for its static and delta columns and only
	// simulates the three intermediate variants: 27 new runs.
	if _, err := E4Ablation(); err != nil {
		t.Fatal(err)
	}
	c2 := runplan.Shared.Counters()
	if got := c2.Misses - c.Misses; got != 27 {
		t.Fatalf("E4 executed %d new simulations, want 27 (9 workloads x 3 intermediate variants)", got)
	}
	if got := c2.Hits - c.Hits; got != 18 {
		t.Fatalf("E4 took %d cache hits, want 18 (its static+delta columns)", got)
	}
}
