// Package experiments regenerates every table and figure of the
// evaluation (DESIGN.md §5, E1–E14). Each experiment is a function
// returning rendered tables plus machine-readable metrics; the
// delta-bench command prints them and bench_test.go exposes them as
// benchmarks. Independent simulations inside each experiment fan out
// across the worker budget set with SetWorkers (default 1 = serial);
// results are assembled in program order, so output is byte-identical
// at any worker count. The experiment set is a reconstruction — see
// the source-text caveat at the top of DESIGN.md.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"taskstream/internal/areamodel"
	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/parallel"
	"taskstream/internal/stats"
	"taskstream/internal/workload"
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	// Metrics carries the headline numbers for assertions and
	// EXPERIMENTS.md (e.g. "geomean_speedup").
	Metrics map[string]float64
}

// Render returns the result's tables exactly as delta-bench prints
// them: each table followed by a blank line.
func (r Result) Render() string {
	var b strings.Builder
	for _, tb := range r.Tables {
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// IrregularNames lists the suite's irregular workloads (the regular
// remainder are parity controls).
var IrregularNames = map[string]bool{
	"spmv": true, "bfs": true, "join": true, "tri": true, "sort": true, "kmeans": true,
}

// run executes one workload build under a variant and verifies results.
func run(nb workload.NamedBuilder, v baseline.Variant, cfg config.Config) (core.Report, error) {
	w := nb.Build()
	rep, err := baseline.Run(v, cfg, w.Prog, w.Storage)
	if err != nil {
		return core.Report{}, fmt.Errorf("%s/%v: %w", nb.Name, v, err)
	}
	if err := w.Verify(); err != nil {
		return core.Report{}, fmt.Errorf("%s/%v: verification failed: %w", nb.Name, v, err)
	}
	return rep, nil
}

// job defers one run() for the fan-out helpers.
func job(nb workload.NamedBuilder, v baseline.Variant, cfg config.Config) func() (core.Report, error) {
	return func() (core.Report, error) { return run(nb, v, cfg) }
}

// suitePairs runs every workload in suite under both the static and
// delta variants — the comparison most experiments need — fanning the
// 2×len(suite) independent simulations across the worker budget.
// static[i] and delta[i] correspond to suite[i].
func suitePairs(suite []workload.NamedBuilder, cfg config.Config) (static, delta []core.Report, err error) {
	jobs := make([]func() (core.Report, error), 0, 2*len(suite))
	for _, nb := range suite {
		jobs = append(jobs, job(nb, baseline.Static, cfg), job(nb, baseline.Delta, cfg))
	}
	reps, err := runJobs(jobs)
	if err != nil {
		return nil, nil, err
	}
	static = make([]core.Report, len(suite))
	delta = make([]core.Report, len(suite))
	for i := range suite {
		static[i], delta[i] = reps[2*i], reps[2*i+1]
	}
	return static, delta, nil
}

// geomean is the harness's strict wrapper around stats.Geomean: a
// skipped (non-positive) value means a degenerate per-workload result
// and must fail the experiment rather than silently inflate the mean.
func geomean(what string, vals []float64) (float64, error) {
	g, skipped := stats.Geomean(vals)
	if skipped > 0 {
		return 0, fmt.Errorf("%s: geomean skipped %d non-positive value(s)", what, skipped)
	}
	return g, nil
}

// E1Characterization reproduces the workload-characterization table:
// task counts, work-hint statistics, skew, and footprint.
func E1Characterization() (Result, error) {
	tb := stats.NewTable("E1: workload characterization",
		"workload", "tasks", "phases", "mean work", "max work", "CV", "footprint")
	maxCV := 0.0
	for _, nb := range workload.Suite() {
		w := nb.Build()
		h := w.TaskSizes
		cv := h.CV()
		if cv > maxCV {
			maxCV = cv
		}
		tb.AddRow(nb.Name, stats.I(int64(h.Count())), stats.I(int64(w.Prog.NumPhases)),
			stats.F(h.Mean()), stats.I(h.Max()), stats.F(cv), stats.Bytes(w.BytesTouched))
	}
	return Result{
		ID: "E1", Title: "Workload characterization",
		Tables:  []*stats.Table{tb},
		Metrics: map[string]float64{"max_cv": maxCV},
	}, nil
}

// E2Configuration reproduces the architecture-parameter table.
func E2Configuration() (Result, error) {
	cfg := config.Default8()
	tb := stats.NewTable("E2: machine configuration", "parameter", "value")
	rows := []struct {
		k, v string
	}{
		{"lanes", stats.I(int64(cfg.Lanes))},
		{"fabric grid", fmt.Sprintf("%dx%d FUs", cfg.Fabric.Rows, cfg.Fabric.Cols)},
		{"vector ports", fmt.Sprintf("%d in + %d out, width %d", cfg.Fabric.NumPorts, cfg.Fabric.NumPorts, cfg.Fabric.PortWidth)},
		{"config switch", fmt.Sprintf("%d cycles", cfg.Fabric.ConfigCycles)},
		{"scratchpad", fmt.Sprintf("%s, %d banks", stats.Bytes(int64(cfg.Spad.Bytes)), cfg.Spad.Banks)},
		{"DRAM", fmt.Sprintf("%d ch x %d B/cyc, %d-cycle latency", cfg.DRAM.Channels, cfg.DRAM.BytesPerCycle, cfg.DRAM.LatencyCycles)},
		{"NoC", fmt.Sprintf("mesh, %dB flits, %d-deep VCs", cfg.NoC.FlitBytes, cfg.NoC.VCDepth)},
		{"task queues", fmt.Sprintf("%d entries/lane", cfg.Task.QueueDepth)},
		{"dispatch rate", fmt.Sprintf("%d tasks/cycle", cfg.Task.DispatchPerCycle)},
		{"coalesce window", fmt.Sprintf("%d cycles", cfg.Task.CoalesceWindowCycles)},
	}
	for _, r := range rows {
		tb.AddRow(r.k, r.v)
	}
	return Result{ID: "E2", Title: "Machine configuration",
		Tables: []*stats.Table{tb}, Metrics: map[string]float64{}}, nil
}

// E3Speedup reproduces the headline figure: Delta vs the equivalent
// static-parallel design across the suite, with geomeans.
func E3Speedup() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	static, delta, err := suitePairs(suite, cfg)
	if err != nil {
		return Result{}, err
	}
	tb := stats.NewTable("E3: Delta speedup over static-parallel (8 lanes)",
		"workload", "static cyc", "delta cyc", "speedup")
	var all, irr []float64
	for i, nb := range suite {
		sp := stats.Speedup(static[i].Cycles, delta[i].Cycles)
		all = append(all, sp)
		if IrregularNames[nb.Name] {
			irr = append(irr, sp)
		}
		tb.AddRow(nb.Name, stats.I(static[i].Cycles), stats.I(delta[i].Cycles), stats.Fx(sp))
	}
	gAll, err := geomean("E3 speedup", all)
	if err != nil {
		return Result{}, err
	}
	gIrr, err := geomean("E3 irregular speedup", irr)
	if err != nil {
		return Result{}, err
	}
	tb.AddRow("geomean", "", "", stats.Fx(gAll))
	tb.AddRow("geomean (irregular)", "", "", stats.Fx(gIrr))
	return Result{ID: "E3", Title: "Headline speedup",
		Tables: []*stats.Table{tb},
		Metrics: map[string]float64{
			"geomean_speedup":           gAll,
			"geomean_irregular_speedup": gIrr,
		}}, nil
}

// E4Ablation stages the mechanisms: static → dyn-rr → +lb → +lb+mc →
// delta, reporting speedup over static per workload.
func E4Ablation() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	const nv = int(baseline.NumVariants)
	jobs := make([]func() (core.Report, error), 0, nv*len(suite))
	for _, nb := range suite {
		for v := baseline.Static; v < baseline.NumVariants; v++ {
			jobs = append(jobs, job(nb, v, cfg))
		}
	}
	reps, err := runJobs(jobs)
	if err != nil {
		return Result{}, err
	}
	tb := stats.NewTable("E4: mechanism ablation (speedup over static)",
		"workload", "dyn-rr", "+lb", "+lb+mc", "delta")
	metrics := map[string]float64{}
	var deltaSpeedups []float64
	for i, nb := range suite {
		base := reps[i*nv+int(baseline.Static)]
		row := []string{nb.Name}
		for v := baseline.DynamicRR; v < baseline.NumVariants; v++ {
			r := reps[i*nv+int(v)]
			sp := stats.Speedup(base.Cycles, r.Cycles)
			row = append(row, stats.Fx(sp))
			if v == baseline.Delta {
				deltaSpeedups = append(deltaSpeedups, sp)
				metrics["delta_"+nb.Name] = sp
			}
		}
		if err := tb.AddRow(row...); err != nil {
			return Result{}, err
		}
	}
	g, err := geomean("E4 delta speedup", deltaSpeedups)
	if err != nil {
		return Result{}, err
	}
	metrics["geomean_delta"] = g
	return Result{ID: "E4", Title: "Mechanism ablation",
		Tables: []*stats.Table{tb}, Metrics: metrics}, nil
}

// E5Imbalance reproduces the load-balance evidence: max/mean busy
// cycles per lane, static vs delta.
func E5Imbalance() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	static, delta, err := suitePairs(suite, cfg)
	if err != nil {
		return Result{}, err
	}
	tb := stats.NewTable("E5: load imbalance (max/mean lane busy cycles)",
		"workload", "static", "delta")
	metrics := map[string]float64{}
	for i, nb := range suite {
		si, di := stats.Imbalance(static[i].LaneBusy), stats.Imbalance(delta[i].LaneBusy)
		tb.AddRow(nb.Name, stats.F(si), stats.F(di))
		metrics["static_"+nb.Name] = si
		metrics["delta_"+nb.Name] = di
	}
	return Result{ID: "E5", Title: "Load imbalance",
		Tables: []*stats.Table{tb}, Metrics: metrics}, nil
}

// ScalingLanes is the lane sweep of E6.
var ScalingLanes = []int{1, 2, 4, 8, 16, 32}

// scalingSubset picks representative workloads for sweeps (one heavy
// irregular, one pipelined, one regular) to bound runtime.
func scalingSubset() []workload.NamedBuilder {
	var out []workload.NamedBuilder
	for _, name := range []string{"spmv", "tri", "sort", "gemm"} {
		out = append(out, *workload.ByName(name))
	}
	return out
}

// E6Scaling sweeps lane count.
func E6Scaling() (Result, error) {
	subset := scalingSubset()
	jobs := make([]func() (core.Report, error), 0, 2*len(subset)*len(ScalingLanes))
	for _, nb := range subset {
		for _, lanes := range ScalingLanes {
			cfg := config.Default8().WithLanes(lanes)
			jobs = append(jobs, job(nb, baseline.Static, cfg), job(nb, baseline.Delta, cfg))
		}
	}
	reps, err := runJobs(jobs)
	if err != nil {
		return Result{}, err
	}
	var tables []*stats.Table
	metrics := map[string]float64{}
	i := 0
	for _, nb := range subset {
		tb := stats.NewTable(fmt.Sprintf("E6: lane scaling — %s", nb.Name),
			"lanes", "static cyc", "delta cyc", "speedup")
		for _, lanes := range ScalingLanes {
			s, d := reps[i], reps[i+1]
			i += 2
			sp := stats.Speedup(s.Cycles, d.Cycles)
			tb.AddRow(stats.I(int64(lanes)), stats.I(s.Cycles), stats.I(d.Cycles), stats.Fx(sp))
			metrics[fmt.Sprintf("%s_lanes%d", nb.Name, lanes)] = sp
		}
		tables = append(tables, tb)
	}
	return Result{ID: "E6", Title: "Lane scaling", Tables: tables, Metrics: metrics}, nil
}

// E7Granularity sweeps spmv task granularity (rows per task).
func E7Granularity() (Result, error) {
	cfg := config.Default8()
	grains := []int{8, 16, 32, 64, 128, 256}
	jobs := make([]func() (core.Report, error), 0, 2*len(grains))
	for _, grain := range grains {
		p := workload.DefaultSpMV()
		p.RowsPerTask = grain
		nb := workload.NamedBuilder{Name: fmt.Sprintf("spmv-g%d", grain),
			Build: func() *workload.Workload { return workload.SpMV(p) }}
		jobs = append(jobs, job(nb, baseline.Static, cfg), job(nb, baseline.Delta, cfg))
	}
	reps, err := runJobs(jobs)
	if err != nil {
		return Result{}, err
	}
	tb := stats.NewTable("E7: task granularity — spmv rows/task",
		"rows/task", "tasks", "static cyc", "delta cyc", "speedup")
	metrics := map[string]float64{}
	for i, grain := range grains {
		s, d := reps[2*i], reps[2*i+1]
		sp := stats.Speedup(s.Cycles, d.Cycles)
		tb.AddRow(stats.I(int64(grain)), stats.I(s.Stats.Get("tasks_run")),
			stats.I(s.Cycles), stats.I(d.Cycles), stats.Fx(sp))
		metrics[fmt.Sprintf("grain%d", grain)] = sp
	}
	return Result{ID: "E7", Title: "Task granularity", Tables: []*stats.Table{tb}, Metrics: metrics}, nil
}

// E8Bandwidth sweeps memory bandwidth (channel count).
func E8Bandwidth() (Result, error) {
	subset := scalingSubset()
	channels := []int{1, 2, 4, 8}
	jobs := make([]func() (core.Report, error), 0, 2*len(subset)*len(channels))
	for _, nb := range subset {
		for _, ch := range channels {
			cfg := config.Default8()
			cfg.DRAM.Channels = ch
			jobs = append(jobs, job(nb, baseline.Static, cfg), job(nb, baseline.Delta, cfg))
		}
	}
	reps, err := runJobs(jobs)
	if err != nil {
		return Result{}, err
	}
	var tables []*stats.Table
	metrics := map[string]float64{}
	i := 0
	for _, nb := range subset {
		tb := stats.NewTable(fmt.Sprintf("E8: DRAM bandwidth — %s", nb.Name),
			"channels", "static cyc", "delta cyc", "speedup")
		for _, ch := range channels {
			s, d := reps[i], reps[i+1]
			i += 2
			sp := stats.Speedup(s.Cycles, d.Cycles)
			tb.AddRow(stats.I(int64(ch)), stats.I(s.Cycles), stats.I(d.Cycles), stats.Fx(sp))
			metrics[fmt.Sprintf("%s_ch%d", nb.Name, ch)] = sp
		}
		tables = append(tables, tb)
	}
	return Result{ID: "E8", Title: "Bandwidth sensitivity", Tables: tables, Metrics: metrics}, nil
}

// E9Traffic reproduces the data-movement comparison: DRAM bytes and
// NoC flit-cycles, delta normalized to static.
func E9Traffic() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	static, delta, err := suitePairs(suite, cfg)
	if err != nil {
		return Result{}, err
	}
	tb := stats.NewTable("E9: traffic, delta normalized to static",
		"workload", "DRAM bytes", "NoC flit-cycles", "fwd elems", "mcast lines saved")
	metrics := map[string]float64{}
	for i, nb := range suite {
		s, d := static[i], delta[i]
		dr := ratio(d.Stats.Get("dram_bytes"), s.Stats.Get("dram_bytes"))
		nr := ratio(d.Stats.Get("noc_flit_cycles"), s.Stats.Get("noc_flit_cycles"))
		tb.AddRow(nb.Name, stats.Pct(dr), stats.Pct(nr),
			stats.I(d.Stats.Get("fwd_elems")), stats.I(d.Stats.Get("mcast_lines_saved")))
		metrics["dram_"+nb.Name] = dr
	}
	return Result{ID: "E9", Title: "Traffic", Tables: []*stats.Table{tb}, Metrics: metrics}, nil
}

// E10Area reproduces the hardware-overhead analysis.
func E10Area() (Result, error) {
	m := areamodel.New(config.Default8())
	tb := stats.NewTable("E10: area model (mm², 28nm-class estimates)",
		"component", "class", "area", "per lane")
	for _, c := range m.Components {
		class := "baseline"
		if c.TaskStream {
			class = "taskstream"
		}
		per := ""
		if c.PerLane {
			per = "x" + stats.I(int64(config.Default8().Lanes))
		}
		tb.AddRow(c.Name, class, fmt.Sprintf("%.4f", c.Area), per)
	}
	base, added, total := m.Totals()
	tb.AddRow("baseline total", "", fmt.Sprintf("%.4f", base), "")
	tb.AddRow("taskstream added", "", fmt.Sprintf("%.4f", added), "")
	tb.AddRow("machine total", "", fmt.Sprintf("%.4f", total), "")
	tb.AddRow("overhead", "", stats.Pct(m.OverheadFraction()), "")
	return Result{ID: "E10", Title: "Area overhead",
		Tables: []*stats.Table{tb},
		Metrics: map[string]float64{
			"overhead_fraction": m.OverheadFraction(),
			"total_area_mm2":    total,
		}}, nil
}

// E11Window sweeps the multicast coalescing window on the two
// sharing-heavy workloads.
func E11Window() (Result, error) {
	names := []string{"gemm", "kmeans"}
	windows := []int{0, 8, 32, 128, 512}
	jobs := make([]func() (core.Report, error), 0, len(names)*len(windows))
	for _, name := range names {
		nb := *workload.ByName(name)
		for _, win := range windows {
			cfg := config.Default8()
			cfg.Task.CoalesceWindowCycles = win
			jobs = append(jobs, job(nb, baseline.Delta, cfg))
		}
	}
	reps, err := runJobs(jobs)
	if err != nil {
		return Result{}, err
	}
	var tables []*stats.Table
	metrics := map[string]float64{}
	i := 0
	for _, name := range names {
		tb := stats.NewTable(fmt.Sprintf("E11: coalescing window — %s", name),
			"window", "cycles", "mcast joins", "lines saved")
		for _, win := range windows {
			r := reps[i]
			i++
			tb.AddRow(stats.I(int64(win)), stats.I(r.Cycles),
				stats.I(r.Stats.Get("mcast_joins")), stats.I(r.Stats.Get("mcast_lines_saved")))
			metrics[fmt.Sprintf("%s_win%d", name, win)] = float64(r.Cycles)
		}
		tables = append(tables, tb)
	}
	return Result{ID: "E11", Title: "Coalescing window", Tables: tables, Metrics: metrics}, nil
}

// E12Hints compares work-hint fidelity: exact vs noisy vs none, on the
// skew-dominated workloads.
func E12Hints() (Result, error) {
	cfg, opts := baseline.Delta.Configure(config.Default8())
	names := []string{"spmv", "tri", "join"}
	hints := []core.HintMode{core.HintExact, core.HintNoisy, core.HintNone}
	jobs := make([]func() (core.Report, error), 0, len(names)*len(hints))
	for _, name := range names {
		nb := workload.ByName(name)
		for _, h := range hints {
			o := opts
			o.Hints = h
			jobs = append(jobs, func() (core.Report, error) {
				w := nb.Build()
				rep, err := baseline.RunCfg(cfg, o, w.Prog, w.Storage)
				if err != nil {
					return core.Report{}, err
				}
				if err := w.Verify(); err != nil {
					return core.Report{}, err
				}
				return rep, nil
			})
		}
	}
	reps, err := runJobs(jobs)
	if err != nil {
		return Result{}, err
	}
	tb := stats.NewTable("E12: work-hint fidelity (delta cycles)",
		"workload", "exact", "noisy", "none")
	metrics := map[string]float64{}
	i := 0
	for _, name := range names {
		row := []string{name}
		for _, h := range hints {
			rep := reps[i]
			i++
			row = append(row, stats.I(rep.Cycles))
			metrics[fmt.Sprintf("%s_h%d", name, h)] = float64(rep.Cycles)
		}
		if err := tb.AddRow(row...); err != nil {
			return Result{}, err
		}
	}
	return Result{ID: "E12", Title: "Hint fidelity", Tables: []*stats.Table{tb}, Metrics: metrics}, nil
}

// Named pairs an experiment id with its function.
type Named struct {
	ID string
	Fn func() (Result, error)
}

// Registry returns every experiment in E-number order — the list
// delta-bench and All share.
func Registry() []Named {
	return []Named{
		{"E1", E1Characterization},
		{"E2", E2Configuration},
		{"E3", E3Speedup},
		{"E4", E4Ablation},
		{"E5", E5Imbalance},
		{"E6", E6Scaling},
		{"E7", E7Granularity},
		{"E8", E8Bandwidth},
		{"E9", E9Traffic},
		{"E10", E10Area},
		{"E11", E11Window},
		{"E12", E12Hints},
		{"E13", E13QueueDepth},
		{"E14", E14Energy},
	}
}

// All runs every experiment, returning results in E-number order. With
// a worker budget above 1 the experiments themselves run concurrently
// (their simulations still share the one budget); at 1 they run
// strictly serially.
func All() ([]Result, error) {
	regs := Registry()
	expWorkers := 1
	if Workers() > 1 {
		expWorkers = len(regs)
	}
	return parallel.Map(expWorkers, regs, func(_ int, e Named) (Result, error) {
		r, err := e.Fn()
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		return r, nil
	})
}

// ratio returns a/b guarding zero, rounding tiny negatives away.
func ratio(a, b int64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return float64(a) / float64(b)
}
