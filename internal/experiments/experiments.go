// Package experiments regenerates every table and figure of the
// evaluation (DESIGN.md §5, E1–E15). Each experiment is a function
// returning rendered tables plus machine-readable metrics; the
// delta-bench command prints them and bench_test.go exposes them as
// benchmarks. Every simulation an experiment needs is expressed as a
// declarative runplan.Spec and resolved through the shared memoizing
// runner (DESIGN.md §12): independent specs fan out across the worker
// budget set with SetWorkers (default 1 = serial), duplicate specs —
// the full-suite pairs E3/E5/E9/E14 share, the default-config points
// inside the E6/E8/E11/E13 sweeps — execute exactly once process-wide,
// and results are assembled in program order, so output is
// byte-identical at any worker count and with the run cache on or off.
// The experiment set is a reconstruction — see the source-text caveat
// at the top of DESIGN.md.
package experiments

import (
	"fmt"
	"strings"

	"taskstream/internal/areamodel"
	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/parallel"
	"taskstream/internal/runplan"
	"taskstream/internal/stats"
	"taskstream/internal/workload"
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	// Metrics carries the headline numbers for assertions and
	// EXPERIMENTS.md (e.g. "geomean_speedup").
	Metrics map[string]float64
}

// Render returns the result's tables exactly as delta-bench prints
// them: each table followed by a blank line.
func (r Result) Render() string {
	var b strings.Builder
	for _, tb := range r.Tables {
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// IrregularNames lists the suite's irregular workloads (the regular
// remainder are parity controls).
var IrregularNames = map[string]bool{
	"spmv": true, "bfs": true, "join": true, "tri": true, "sort": true, "kmeans": true,
}

// table accumulates rows into a stats.Table, latching the first
// AddRow error (a row wider than the header would silently drop data)
// so per-row call sites stay uncluttered. Every experiment routes its
// row-building through this helper and surfaces the latched error from
// build — no AddRow error in the package is dropped.
type table struct {
	t   *stats.Table
	err error
}

// newTable starts a checked table with the given title and headers.
func newTable(title string, header ...string) *table {
	return &table{t: stats.NewTable(title, header...)}
}

// row appends one row, latching the first error.
func (tb *table) row(cells ...string) {
	if err := tb.t.AddRow(cells...); err != nil && tb.err == nil {
		tb.err = err
	}
}

// build returns the finished table, or the first row error.
func (tb *table) build() (*stats.Table, error) { return tb.t, tb.err }

// buildAll finishes several checked tables in order.
func buildAll(tbs ...*table) ([]*stats.Table, error) {
	out := make([]*stats.Table, len(tbs))
	for i, tb := range tbs {
		t, err := tb.build()
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// pairSpecs declares the comparison most experiments need — every
// workload in suite under both the static and delta variants — as
// 2×len(suite) specs: static at 2i, delta at 2i+1.
func pairSpecs(suite []workload.NamedBuilder, cfg config.Config) []runplan.Spec {
	specs := make([]runplan.Spec, 0, 2*len(suite))
	for _, nb := range suite {
		specs = append(specs,
			runplan.ForVariant(nb, baseline.Static, cfg),
			runplan.ForVariant(nb, baseline.Delta, cfg))
	}
	return specs
}

// suitePairs resolves pairSpecs through the shared runner; static[i]
// and delta[i] correspond to suite[i]. Every caller (E3, E5, E9, E14)
// describes the identical spec set, so the suite's pairs simulate once
// no matter how many experiments ask.
func suitePairs(suite []workload.NamedBuilder, cfg config.Config) (static, delta []core.Report, err error) {
	reps, err := runSpecs(pairSpecs(suite, cfg))
	if err != nil {
		return nil, nil, err
	}
	static = make([]core.Report, len(suite))
	delta = make([]core.Report, len(suite))
	for i := range suite {
		static[i], delta[i] = reps[2*i], reps[2*i+1]
	}
	return static, delta, nil
}

// geomean is the harness's strict wrapper around stats.Geomean: a
// skipped (non-positive) value means a degenerate per-workload result
// and must fail the experiment rather than silently inflate the mean.
func geomean(what string, vals []float64) (float64, error) {
	g, skipped := stats.Geomean(vals)
	if skipped > 0 {
		return 0, fmt.Errorf("%s: geomean skipped %d non-positive value(s)", what, skipped)
	}
	return g, nil
}

// E1Characterization reproduces the workload-characterization table:
// task counts, work-hint statistics, skew, and footprint.
func E1Characterization() (Result, error) {
	tb := newTable("E1: workload characterization",
		"workload", "tasks", "phases", "mean work", "max work", "CV", "footprint")
	maxCV := 0.0
	for _, nb := range workload.Suite() {
		w := nb.Build()
		h := w.TaskSizes
		cv := h.CV()
		if cv > maxCV {
			maxCV = cv
		}
		tb.row(nb.Name, stats.I(int64(h.Count())), stats.I(int64(w.Prog.NumPhases)),
			stats.F(h.Mean()), stats.I(h.Max()), stats.F(cv), stats.Bytes(w.BytesTouched))
	}
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID: "E1", Title: "Workload characterization",
		Tables:  []*stats.Table{t},
		Metrics: map[string]float64{"max_cv": maxCV},
	}, nil
}

// E2Configuration reproduces the architecture-parameter table.
func E2Configuration() (Result, error) {
	cfg := config.Default8()
	tb := newTable("E2: machine configuration", "parameter", "value")
	rows := []struct {
		k, v string
	}{
		{"lanes", stats.I(int64(cfg.Lanes))},
		{"fabric grid", fmt.Sprintf("%dx%d FUs", cfg.Fabric.Rows, cfg.Fabric.Cols)},
		{"vector ports", fmt.Sprintf("%d in + %d out, width %d", cfg.Fabric.NumPorts, cfg.Fabric.NumPorts, cfg.Fabric.PortWidth)},
		{"config switch", fmt.Sprintf("%d cycles", cfg.Fabric.ConfigCycles)},
		{"scratchpad", fmt.Sprintf("%s, %d banks", stats.Bytes(int64(cfg.Spad.Bytes)), cfg.Spad.Banks)},
		{"DRAM", fmt.Sprintf("%d ch x %d B/cyc, %d-cycle latency", cfg.DRAM.Channels, cfg.DRAM.BytesPerCycle, cfg.DRAM.LatencyCycles)},
		{"NoC", fmt.Sprintf("mesh, %dB flits, %d-deep VCs", cfg.NoC.FlitBytes, cfg.NoC.VCDepth)},
		{"task queues", fmt.Sprintf("%d entries/lane", cfg.Task.QueueDepth)},
		{"dispatch rate", fmt.Sprintf("%d tasks/cycle", cfg.Task.DispatchPerCycle)},
		{"coalesce window", fmt.Sprintf("%d cycles", cfg.Task.CoalesceWindowCycles)},
	}
	for _, r := range rows {
		tb.row(r.k, r.v)
	}
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E2", Title: "Machine configuration",
		Tables: []*stats.Table{t}, Metrics: map[string]float64{}}, nil
}

// E3Speedup reproduces the headline figure: Delta vs the equivalent
// static-parallel design across the suite, with geomeans.
func E3Speedup() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	static, delta, err := suitePairs(suite, cfg)
	if err != nil {
		return Result{}, err
	}
	tb := newTable("E3: Delta speedup over static-parallel (8 lanes)",
		"workload", "static cyc", "delta cyc", "speedup")
	var all, irr []float64
	for i, nb := range suite {
		sp := stats.Speedup(static[i].Cycles, delta[i].Cycles)
		all = append(all, sp)
		if IrregularNames[nb.Name] {
			irr = append(irr, sp)
		}
		tb.row(nb.Name, stats.I(static[i].Cycles), stats.I(delta[i].Cycles), stats.Fx(sp))
	}
	gAll, err := geomean("E3 speedup", all)
	if err != nil {
		return Result{}, err
	}
	gIrr, err := geomean("E3 irregular speedup", irr)
	if err != nil {
		return Result{}, err
	}
	tb.row("geomean", "", "", stats.Fx(gAll))
	tb.row("geomean (irregular)", "", "", stats.Fx(gIrr))
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E3", Title: "Headline speedup",
		Tables: []*stats.Table{t},
		Metrics: map[string]float64{
			"geomean_speedup":           gAll,
			"geomean_irregular_speedup": gIrr,
		}}, nil
}

// E4Ablation stages the mechanisms: static → dyn-rr → +lb → +lb+mc →
// delta, reporting speedup over static per workload. Its Static and
// Delta columns are the same specs as the E3/E5/E9/E14 suite pairs, so
// only the three intermediate variants simulate anew here.
func E4Ablation() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	const nv = int(baseline.NumVariants)
	specs := make([]runplan.Spec, 0, nv*len(suite))
	for _, nb := range suite {
		for v := baseline.Static; v < baseline.NumVariants; v++ {
			specs = append(specs, runplan.ForVariant(nb, v, cfg))
		}
	}
	reps, err := runSpecs(specs)
	if err != nil {
		return Result{}, err
	}
	tb := newTable("E4: mechanism ablation (speedup over static)",
		"workload", "dyn-rr", "+lb", "+lb+mc", "delta")
	metrics := map[string]float64{}
	var deltaSpeedups []float64
	for i, nb := range suite {
		base := reps[i*nv+int(baseline.Static)]
		row := []string{nb.Name}
		for v := baseline.DynamicRR; v < baseline.NumVariants; v++ {
			r := reps[i*nv+int(v)]
			sp := stats.Speedup(base.Cycles, r.Cycles)
			row = append(row, stats.Fx(sp))
			if v == baseline.Delta {
				deltaSpeedups = append(deltaSpeedups, sp)
				metrics["delta_"+nb.Name] = sp
			}
		}
		tb.row(row...)
	}
	g, err := geomean("E4 delta speedup", deltaSpeedups)
	if err != nil {
		return Result{}, err
	}
	metrics["geomean_delta"] = g
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E4", Title: "Mechanism ablation",
		Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

// E5Imbalance reproduces the load-balance evidence: max/mean busy
// cycles per lane, static vs delta.
func E5Imbalance() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	static, delta, err := suitePairs(suite, cfg)
	if err != nil {
		return Result{}, err
	}
	tb := newTable("E5: load imbalance (max/mean lane busy cycles)",
		"workload", "static", "delta")
	metrics := map[string]float64{}
	for i, nb := range suite {
		si, di := stats.Imbalance(static[i].LaneBusy), stats.Imbalance(delta[i].LaneBusy)
		tb.row(nb.Name, stats.F(si), stats.F(di))
		metrics["static_"+nb.Name] = si
		metrics["delta_"+nb.Name] = di
	}
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E5", Title: "Load imbalance",
		Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

// ScalingLanes is the lane sweep of E6.
var ScalingLanes = []int{1, 2, 4, 8, 16, 32}

// scalingSubset picks representative workloads for sweeps (one heavy
// irregular, one pipelined, one regular) to bound runtime.
func scalingSubset() []workload.NamedBuilder {
	var out []workload.NamedBuilder
	for _, name := range []string{"spmv", "tri", "sort", "gemm"} {
		out = append(out, *workload.ByName(name))
	}
	return out
}

// E6Scaling sweeps lane count. Its 8-lane points are the default
// config, so they dedup against the suite pairs.
func E6Scaling() (Result, error) {
	subset := scalingSubset()
	specs := make([]runplan.Spec, 0, 2*len(subset)*len(ScalingLanes))
	for _, nb := range subset {
		for _, lanes := range ScalingLanes {
			cfg := config.Default8().WithLanes(lanes)
			specs = append(specs,
				runplan.ForVariant(nb, baseline.Static, cfg),
				runplan.ForVariant(nb, baseline.Delta, cfg))
		}
	}
	reps, err := runSpecs(specs)
	if err != nil {
		return Result{}, err
	}
	var tables []*table
	metrics := map[string]float64{}
	i := 0
	for _, nb := range subset {
		tb := newTable(fmt.Sprintf("E6: lane scaling — %s", nb.Name),
			"lanes", "static cyc", "delta cyc", "speedup")
		for _, lanes := range ScalingLanes {
			s, d := reps[i], reps[i+1]
			i += 2
			sp := stats.Speedup(s.Cycles, d.Cycles)
			tb.row(stats.I(int64(lanes)), stats.I(s.Cycles), stats.I(d.Cycles), stats.Fx(sp))
			metrics[fmt.Sprintf("%s_lanes%d", nb.Name, lanes)] = sp
		}
		tables = append(tables, tb)
	}
	ts, err := buildAll(tables...)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E6", Title: "Lane scaling", Tables: ts, Metrics: metrics}, nil
}

// E7Granularity sweeps spmv task granularity (rows per task). Each
// grain is a distinct workload, so its name encodes the parameter —
// the spec-identity contract for parameterized builders.
func E7Granularity() (Result, error) {
	cfg := config.Default8()
	grains := []int{8, 16, 32, 64, 128, 256}
	specs := make([]runplan.Spec, 0, 2*len(grains))
	for _, grain := range grains {
		p := workload.DefaultSpMV()
		p.RowsPerTask = grain
		nb := workload.NamedBuilder{Name: fmt.Sprintf("spmv-g%d", grain),
			Build: func() *workload.Workload { return workload.SpMV(p) }}
		specs = append(specs,
			runplan.ForVariant(nb, baseline.Static, cfg),
			runplan.ForVariant(nb, baseline.Delta, cfg))
	}
	reps, err := runSpecs(specs)
	if err != nil {
		return Result{}, err
	}
	tb := newTable("E7: task granularity — spmv rows/task",
		"rows/task", "tasks", "static cyc", "delta cyc", "speedup")
	metrics := map[string]float64{}
	for i, grain := range grains {
		s, d := reps[2*i], reps[2*i+1]
		sp := stats.Speedup(s.Cycles, d.Cycles)
		tb.row(stats.I(int64(grain)), stats.I(s.Stats.Get("tasks_run")),
			stats.I(s.Cycles), stats.I(d.Cycles), stats.Fx(sp))
		metrics[fmt.Sprintf("grain%d", grain)] = sp
	}
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E7", Title: "Task granularity", Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

// E8Bandwidth sweeps memory bandwidth (channel count); the 4-channel
// points are the default config and dedup against the suite pairs.
func E8Bandwidth() (Result, error) {
	subset := scalingSubset()
	channels := []int{1, 2, 4, 8}
	specs := make([]runplan.Spec, 0, 2*len(subset)*len(channels))
	for _, nb := range subset {
		for _, ch := range channels {
			cfg := config.Default8()
			cfg.DRAM.Channels = ch
			specs = append(specs,
				runplan.ForVariant(nb, baseline.Static, cfg),
				runplan.ForVariant(nb, baseline.Delta, cfg))
		}
	}
	reps, err := runSpecs(specs)
	if err != nil {
		return Result{}, err
	}
	var tables []*table
	metrics := map[string]float64{}
	i := 0
	for _, nb := range subset {
		tb := newTable(fmt.Sprintf("E8: DRAM bandwidth — %s", nb.Name),
			"channels", "static cyc", "delta cyc", "speedup")
		for _, ch := range channels {
			s, d := reps[i], reps[i+1]
			i += 2
			sp := stats.Speedup(s.Cycles, d.Cycles)
			tb.row(stats.I(int64(ch)), stats.I(s.Cycles), stats.I(d.Cycles), stats.Fx(sp))
			metrics[fmt.Sprintf("%s_ch%d", nb.Name, ch)] = sp
		}
		tables = append(tables, tb)
	}
	ts, err := buildAll(tables...)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E8", Title: "Bandwidth sensitivity", Tables: ts, Metrics: metrics}, nil
}

// E9Traffic reproduces the data-movement comparison: DRAM bytes and
// NoC flit-cycles, delta normalized to static. A zero static counter
// makes the normalization undefined; the cell renders "n/a" and the
// metric is omitted rather than reporting +Inf.
func E9Traffic() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	static, delta, err := suitePairs(suite, cfg)
	if err != nil {
		return Result{}, err
	}
	tb := newTable("E9: traffic, delta normalized to static",
		"workload", "DRAM bytes", "NoC flit-cycles", "fwd elems", "mcast lines saved")
	metrics := map[string]float64{}
	for i, nb := range suite {
		s, d := static[i], delta[i]
		drCell := "n/a"
		if dr, ok := ratio(d.Stats.Get("dram_bytes"), s.Stats.Get("dram_bytes")); ok {
			drCell = stats.Pct(dr)
			metrics["dram_"+nb.Name] = dr
		}
		nrCell := "n/a"
		if nr, ok := ratio(d.Stats.Get("noc_flit_cycles"), s.Stats.Get("noc_flit_cycles")); ok {
			nrCell = stats.Pct(nr)
		}
		tb.row(nb.Name, drCell, nrCell,
			stats.I(d.Stats.Get("fwd_elems")), stats.I(d.Stats.Get("mcast_lines_saved")))
	}
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E9", Title: "Traffic", Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

// E10Area reproduces the hardware-overhead analysis.
func E10Area() (Result, error) {
	m := areamodel.New(config.Default8())
	tb := newTable("E10: area model (mm², 28nm-class estimates)",
		"component", "class", "area", "per lane")
	for _, c := range m.Components {
		class := "baseline"
		if c.TaskStream {
			class = "taskstream"
		}
		per := ""
		if c.PerLane {
			per = "x" + stats.I(int64(config.Default8().Lanes))
		}
		tb.row(c.Name, class, fmt.Sprintf("%.4f", c.Area), per)
	}
	base, added, total := m.Totals()
	tb.row("baseline total", "", fmt.Sprintf("%.4f", base), "")
	tb.row("taskstream added", "", fmt.Sprintf("%.4f", added), "")
	tb.row("machine total", "", fmt.Sprintf("%.4f", total), "")
	tb.row("overhead", "", stats.Pct(m.OverheadFraction()), "")
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E10", Title: "Area overhead",
		Tables: []*stats.Table{t},
		Metrics: map[string]float64{
			"overhead_fraction": m.OverheadFraction(),
			"total_area_mm2":    total,
		}}, nil
}

// E11Window sweeps the multicast coalescing window on the two
// sharing-heavy workloads; the default-window points dedup against the
// suite's delta runs.
func E11Window() (Result, error) {
	names := []string{"gemm", "kmeans"}
	windows := []int{0, 8, 32, 128, 512}
	specs := make([]runplan.Spec, 0, len(names)*len(windows))
	for _, name := range names {
		nb := *workload.ByName(name)
		for _, win := range windows {
			cfg := config.Default8()
			cfg.Task.CoalesceWindowCycles = win
			specs = append(specs, runplan.ForVariant(nb, baseline.Delta, cfg))
		}
	}
	reps, err := runSpecs(specs)
	if err != nil {
		return Result{}, err
	}
	var tables []*table
	metrics := map[string]float64{}
	i := 0
	for _, name := range names {
		tb := newTable(fmt.Sprintf("E11: coalescing window — %s", name),
			"window", "cycles", "mcast joins", "lines saved")
		for _, win := range windows {
			r := reps[i]
			i++
			tb.row(stats.I(int64(win)), stats.I(r.Cycles),
				stats.I(r.Stats.Get("mcast_joins")), stats.I(r.Stats.Get("mcast_lines_saved")))
			metrics[fmt.Sprintf("%s_win%d", name, win)] = float64(r.Cycles)
		}
		tables = append(tables, tb)
	}
	ts, err := buildAll(tables...)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E11", Title: "Coalescing window", Tables: ts, Metrics: metrics}, nil
}

// E12Hints compares work-hint fidelity: exact vs noisy vs none, on the
// skew-dominated workloads. The exact-hint points are the delta
// variant's defaults and dedup against the suite pairs.
func E12Hints() (Result, error) {
	cfg, opts := baseline.Delta.Configure(config.Default8())
	names := []string{"spmv", "tri", "join"}
	hints := []core.HintMode{core.HintExact, core.HintNoisy, core.HintNone}
	specs := make([]runplan.Spec, 0, len(names)*len(hints))
	for _, name := range names {
		nb := *workload.ByName(name)
		for _, h := range hints {
			o := opts
			o.Hints = h
			specs = append(specs, runplan.Spec{Workload: nb, Config: cfg, Opts: o})
		}
	}
	reps, err := runSpecs(specs)
	if err != nil {
		return Result{}, err
	}
	tb := newTable("E12: work-hint fidelity (delta cycles)",
		"workload", "exact", "noisy", "none")
	metrics := map[string]float64{}
	i := 0
	for _, name := range names {
		row := []string{name}
		for _, h := range hints {
			rep := reps[i]
			i++
			row = append(row, stats.I(rep.Cycles))
			metrics[fmt.Sprintf("%s_h%d", name, h)] = float64(rep.Cycles)
		}
		tb.row(row...)
	}
	t, err := tb.build()
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E12", Title: "Hint fidelity", Tables: []*stats.Table{t}, Metrics: metrics}, nil
}

// Named pairs an experiment id with its function.
type Named struct {
	ID string
	Fn func() (Result, error)
}

// Registry returns every experiment in E-number order — the list
// delta-bench and All share.
func Registry() []Named {
	return []Named{
		{"E1", E1Characterization},
		{"E2", E2Configuration},
		{"E3", E3Speedup},
		{"E4", E4Ablation},
		{"E5", E5Imbalance},
		{"E6", E6Scaling},
		{"E7", E7Granularity},
		{"E8", E8Bandwidth},
		{"E9", E9Traffic},
		{"E10", E10Area},
		{"E11", E11Window},
		{"E12", E12Hints},
		{"E13", E13QueueDepth},
		{"E14", E14Energy},
		{"E15", E15Inference},
		{"E16", E16Policies},
	}
}

// All runs every experiment, returning results in E-number order. With
// a worker budget above 1 the experiments themselves run concurrently
// (their simulations still share the one budget); at 1 they run
// strictly serially.
func All() ([]Result, error) {
	regs := Registry()
	expWorkers := 1
	if Workers() > 1 {
		expWorkers = len(regs)
	}
	return parallel.Map(expWorkers, regs, func(_ int, e Named) (Result, error) {
		r, err := e.Fn()
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		return r, nil
	})
}

// ratio returns a/b and whether it is defined; b == 0 yields ok=false
// so callers render "n/a" instead of +Inf.
func ratio(a, b int64) (v float64, ok bool) {
	if b == 0 {
		return 0, false
	}
	return float64(a) / float64(b), true
}
