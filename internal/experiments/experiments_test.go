package experiments

import (
	"strings"
	"testing"
)

// The experiment harness is exercised end-to-end by delta-bench and
// bench_test.go; these unit tests pin the cheap invariants and the
// paper-shape assertions on the lighter experiments.

func TestE1CharacterizationShape(t *testing.T) {
	r, err := E1Characterization()
	if err != nil {
		t.Fatal(err)
	}
	if r.Tables[0].NumRows() != 9 {
		t.Fatalf("E1 rows = %d, want 9", r.Tables[0].NumRows())
	}
	// The suite must contain genuinely skewed workloads.
	if r.Metrics["max_cv"] < 1.0 {
		t.Fatalf("max task-size CV = %v, want ≥1", r.Metrics["max_cv"])
	}
}

func TestE2ConfigurationRenders(t *testing.T) {
	r, err := E2Configuration()
	if err != nil {
		t.Fatal(err)
	}
	out := r.Tables[0].String()
	for _, frag := range []string{"lanes", "DRAM", "NoC", "coalesce window"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("E2 output missing %q:\n%s", frag, out)
		}
	}
}

func TestE10AreaShape(t *testing.T) {
	r, err := E10Area()
	if err != nil {
		t.Fatal(err)
	}
	f := r.Metrics["overhead_fraction"]
	if f < 0.005 || f > 0.10 {
		t.Fatalf("area overhead %v outside a-few-percent band", f)
	}
}

func TestE3SpeedupPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	r, err := E3Speedup()
	if err != nil {
		t.Fatal(err)
	}
	g := r.Metrics["geomean_speedup"]
	gi := r.Metrics["geomean_irregular_speedup"]
	// Paper shape: Delta wins clearly overall, and more on irregular
	// workloads. (The paper reports 2.2x on its suite; see
	// EXPERIMENTS.md for the measured-vs-paper discussion.)
	if g < 1.25 {
		t.Fatalf("geomean speedup %.2f — mechanism wins collapsed", g)
	}
	if gi < g {
		t.Fatalf("irregular geomean %.2f should exceed overall %.2f", gi, g)
	}
}

func TestE12HintsPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	r, err := E12Hints()
	if err != nil {
		t.Fatal(err)
	}
	// Work-oblivious dispatch must cost cycles on the most skewed
	// workload relative to exact hints.
	if r.Metrics["spmv_h2"] < r.Metrics["spmv_h0"] {
		t.Fatalf("hint-free spmv (%v) should not beat exact hints (%v)",
			r.Metrics["spmv_h2"], r.Metrics["spmv_h0"])
	}
}
