package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"taskstream/internal/parallel"
	"taskstream/internal/runplan"
)

// renderDeterministic renders every result the way delta-bench prints
// it, plus its metrics under sorted keys — a byte-level fingerprint of
// everything an experiment produces.
func renderDeterministic(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "### %s — %s\n", r.ID, r.Title)
		b.WriteString(r.Render())
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%v\n", k, r.Metrics[k])
		}
	}
	return b.String()
}

// runSuite runs the given experiments at the given worker count and
// returns the fingerprint.
func runSuite(t *testing.T, workers int, regs []Named) string {
	t.Helper()
	SetWorkers(workers)
	expWorkers := 1
	if workers > 1 {
		expWorkers = len(regs)
	}
	results, err := parallel.Map(expWorkers, regs, func(_ int, e Named) (Result, error) { return e.Fn() })
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return renderDeterministic(results)
}

// subset filters the registry by experiment id.
func subset(regs []Named, ids ...string) []Named {
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	var out []Named
	for _, e := range regs {
		if want[e.ID] {
			out = append(out, e)
		}
	}
	return out
}

// checkEquality runs the experiments serially and at 4 workers and
// fails unless the fingerprints match byte for byte. The run cache is
// disabled for both passes: this test's contract is that concurrent
// *simulation* is deterministic, so the parallel pass must genuinely
// re-execute every run rather than replay the serial pass's cache
// (cache-on equivalence is TestRunCacheOnOffEquality's job).
func checkEquality(t *testing.T, regs []Named) {
	t.Helper()
	old := Workers()
	defer SetWorkers(old)
	wasDisabled := runplan.Shared.Disabled()
	runplan.Shared.SetDisabled(true)
	defer runplan.Shared.SetDisabled(wasDisabled)
	serial := runSuite(t, 1, regs)
	par := runSuite(t, 4, regs)
	if serial != par {
		t.Fatalf("parallel output differs from serial output:\n--- serial ---\n%s\n--- parallel (-j 4) ---\n%s", serial, par)
	}
	if serial == "" {
		t.Fatal("empty render — experiments produced no output")
	}
}

// TestSerialParallelEquality is the harness's determinism contract:
// regenerating the evaluation with `-j N` must produce byte-identical
// tables and metrics to a strictly serial `-j 1` run. The default run
// covers a representative subset (multi-table sweeps, cross-variant
// comparisons, custom-option runs) to stay inside ordinary test
// budgets — -short shrinks it further for -race; the full E-suite is
// TestSerialParallelEqualityFullSuite.
func TestSerialParallelEquality(t *testing.T) {
	ids := []string{"E1", "E2", "E7", "E10", "E11", "E12"}
	if testing.Short() {
		ids = []string{"E1", "E2", "E10", "E12"}
	}
	checkEquality(t, subset(Registry(), ids...))
}

// TestSerialParallelEqualityFullSuite regenerates the entire E-suite
// twice (serial, then 4-way parallel with cross-experiment fan-out)
// and demands byte identity. It takes several minutes, so it only runs
// when TASKSTREAM_FULL_EQUALITY=1 — CI's race job does; pass
// `-timeout 60m` alongside.
func TestSerialParallelEqualityFullSuite(t *testing.T) {
	if os.Getenv("TASKSTREAM_FULL_EQUALITY") == "" {
		t.Skip("set TASKSTREAM_FULL_EQUALITY=1 to run the full-suite equality check")
	}
	checkEquality(t, Registry())
}

// TestSetWorkers pins the budget plumbing.
func TestSetWorkers(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	if Workers() != 1 && old != 1 {
		// Default budget is serial until someone opts in.
		t.Logf("note: worker budget was %d at test start", old)
	}
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got := Workers(); got != parallel.DefaultWorkers() {
		t.Fatalf("Workers() = %d after SetWorkers(0), want DefaultWorkers %d", got, parallel.DefaultWorkers())
	}
	SetWorkers(1)
	if got := Workers(); got != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(1)", got)
	}
}
