package experiments

import (
	"fmt"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/runplan"
	"taskstream/internal/stats"
	"taskstream/internal/workload"
)

// E16SkewAlphas is the spmv power-law-exponent sweep of E16's second
// table, in centi-units of the "spmv-a<N>" name grammar (alpha = N/100;
// smaller = heavier row-length tail). 150 is the suite default.
var E16SkewAlphas = []int{110, 130, 150, 200}

// e16Policies returns every dispatch policy in enum order — the
// columns of both E16 tables.
func e16Policies() []core.Policy {
	out := make([]core.Policy, 0, int(core.NumPolicies))
	for p := core.Policy(0); p < core.NumPolicies; p++ {
		out = append(out, p)
	}
	return out
}

// e16Specs declares one spec per (workload, policy) with the full delta
// mechanism set, pinning each policy explicitly in Options rather than
// through core.AmbientPolicy — delta-bench -policy must shift the
// baseline experiments, never this ablation's columns. With no ambient
// override the dynamic column's specs are identical to the suite
// pairs' delta specs, so they dedup through the run cache.
func e16Specs(nbs []workload.NamedBuilder, cfg config.Config) []runplan.Spec {
	mcfg, opts := baseline.Delta.Configure(cfg)
	policies := e16Policies()
	specs := make([]runplan.Spec, 0, len(nbs)*len(policies))
	for _, nb := range nbs {
		for _, p := range policies {
			o := opts
			o.Policy = p
			specs = append(specs, runplan.Spec{Workload: nb, Config: mcfg, Opts: o})
		}
	}
	return specs
}

// E16Policies is the dispatch-policy ablation the scheduler interface
// (DESIGN.md §17) exists to ask: every policy across the full suite on
// the identical delta machine, plus a skew sensitivity sweep. All four
// schedulers see the same mechanisms (work-aware LB flag, multicast,
// forwarding); only the dispatch decisions differ, so the cycle deltas
// isolate scheduling.
func E16Policies() (Result, error) {
	cfg := config.Default8()
	suite := workload.Suite()
	policies := e16Policies()
	np := len(policies)

	reps, err := runSpecs(e16Specs(suite, cfg))
	if err != nil {
		return Result{}, err
	}

	cyc := newTable("E16: dispatch-policy ablation (delta mechanisms, cycles)",
		"workload", "dynamic", "static", "streamgraph", "pipeline")
	spd := newTable("E16: speedup over dynamic (work-aware least-loaded)",
		"workload", "static", "streamgraph", "pipeline")
	metrics := map[string]float64{}
	spups := make([][]float64, np) // per policy, per workload
	bestNew := 0.0
	for i, nb := range suite {
		base := reps[i*np+int(core.PolicyDynamic)]
		cycRow := []string{nb.Name}
		spdRow := []string{nb.Name}
		for j, p := range policies {
			r := reps[i*np+j]
			cycRow = append(cycRow, stats.I(r.Cycles))
			sp := stats.Speedup(base.Cycles, r.Cycles)
			spups[j] = append(spups[j], sp)
			metrics[fmt.Sprintf("%s_%s", p, nb.Name)] = sp
			if p != core.PolicyDynamic {
				spdRow = append(spdRow, stats.Fx(sp))
			}
			if p == core.PolicyStreamGraph || p == core.PolicyPipeline {
				if sp > bestNew {
					bestNew = sp
				}
			}
		}
		cyc.row(cycRow...)
		spd.row(spdRow...)
	}
	gRow := []string{"geomean"}
	for j, p := range policies {
		if p == core.PolicyDynamic {
			continue
		}
		g, err := geomean(fmt.Sprintf("E16 %s speedup", p), spups[j])
		if err != nil {
			return Result{}, err
		}
		gRow = append(gRow, stats.Fx(g))
		metrics["geomean_"+p.String()] = g
	}
	spd.row(gRow...)
	metrics["best_new_policy_speedup"] = bestNew

	skew, err := e16SkewTable(cfg, metrics)
	if err != nil {
		return Result{}, err
	}
	ts, err := buildAll(cyc, spd, skew)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "E16", Title: "Dispatch-policy ablation",
		Tables: ts, Metrics: metrics}, nil
}

// e16SkewTable builds the skew sensitivity sweep: spmv with the
// power-law exponent swept through the "spmv-a<N>" grammar, every
// policy per point. Heavier tails (smaller alpha) reward schedulers
// that react to observed load; the table shows where each policy's
// assumptions pay.
func e16SkewTable(cfg config.Config, metrics map[string]float64) (*table, error) {
	policies := e16Policies()
	np := len(policies)
	nbs := make([]workload.NamedBuilder, 0, len(E16SkewAlphas))
	for _, centi := range E16SkewAlphas {
		nb, err := workload.Resolve(fmt.Sprintf("spmv-a%d", centi))
		if err != nil {
			return nil, err
		}
		nbs = append(nbs, nb)
	}
	reps, err := runSpecs(e16Specs(nbs, cfg))
	if err != nil {
		return nil, err
	}
	tb := newTable("E16: skew sensitivity — spmv alpha sweep (cycles)",
		"alpha", "dynamic", "static", "streamgraph", "pipeline")
	for i, centi := range E16SkewAlphas {
		row := []string{fmt.Sprintf("%.2f", float64(centi)/100)}
		base := reps[i*np+int(core.PolicyDynamic)]
		for j, p := range policies {
			r := reps[i*np+j]
			row = append(row, stats.I(r.Cycles))
			metrics[fmt.Sprintf("%s_a%d", p, centi)] = stats.Speedup(base.Cycles, r.Cycles)
		}
		tb.row(row...)
	}
	return tb, nil
}
