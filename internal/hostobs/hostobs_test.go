package hostobs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", "route", "/v1/run")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (family, labels) returns the same instance.
	if again := r.Counter("reqs_total", "requests", "route", "/v1/run"); again != c {
		t.Fatal("counter lookup did not return the existing instance")
	}
	g := r.Gauge("entries", "resident entries")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.GaugeFunc("live", "computed", func() int64 { return 42 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`reqs_total{route="/v1/run"} 5`,
		"entries 5",
		"live 42",
		"# TYPE reqs_total counter",
		"# TYPE entries gauge",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestHistogramBucketsMonotone(t *testing.T) {
	h := NewHistogram(nil)
	for _, d := range []time.Duration{
		500 * time.Nanosecond, // below the first bound
		3 * time.Microsecond,
		2 * time.Millisecond,
		700 * time.Millisecond,
		2 * time.Minute, // beyond the last bound → +Inf
	} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	cum := h.Cumulative()
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative buckets not monotone at %d: %v", i, cum)
		}
	}
	if last := cum[len(cum)-1]; last != 5 {
		t.Fatalf("+Inf bucket = %d, want total 5", last)
	}
	if s := h.SumSeconds(); s < 120 || s > 121 {
		t.Fatalf("sum = %v s, want ≈120.7", s)
	}
}

func TestHistogramBoundaryLandsInLEBucket(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.ObserveSeconds(0.001) // exactly on a bound: le semantics include it
	cum := h.Cumulative()
	if cum[0] != 1 {
		t.Fatalf("boundary observation missed its le bucket: %v", cum)
	}
}

// TestStableOrderAcrossScrapes pins the export-determinism contract:
// two scrapes of an unchanged registry are byte-identical, regardless
// of registration order.
func TestStableOrderAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	// Register in deliberately unsorted order.
	r.Counter("zeta_total", "z", "tier", "miss")
	r.Counter("alpha_total", "a")
	r.Counter("zeta_total", "z", "tier", "disk")
	r.Histogram("mid_seconds", "m", nil, "route", "/b")
	r.Histogram("mid_seconds", "m", nil, "route", "/a")

	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two scrapes of an unchanged registry differ")
	}
	// Families sorted by name, series by labels.
	out := a.String()
	ia := strings.Index(out, "alpha_total")
	im := strings.Index(out, "mid_seconds")
	iz := strings.Index(out, "zeta_total")
	if !(ia < im && im < iz) {
		t.Fatalf("families not sorted: alpha@%d mid@%d zeta@%d\n%s", ia, im, iz, out)
	}
	if d, m := strings.Index(out, `tier="disk"`), strings.Index(out, `tier="miss"`); !(d >= 0 && d < m) {
		t.Fatalf("series not sorted by labels: disk@%d miss@%d", d, m)
	}

	var ja, jb bytes.Buffer
	if err := r.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Fatal("two JSON snapshots of an unchanged registry differ")
	}
}

func TestJSONSnapshotParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c", "tier", "memory").Add(3)
	r.Histogram("lat_seconds", "l", nil).Observe(2 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("snapshot has %d series, want 2", len(got))
	}
	if got[0]["name"] != "c_total" || got[0]["value"].(float64) != 3 {
		t.Fatalf("counter series wrong: %v", got[0])
	}
	h := got[1]
	if h["name"] != "lat_seconds" || h["count"].(float64) != 1 {
		t.Fatalf("histogram series wrong: %v", h)
	}
	buckets := h["buckets"].([]any)
	if len(buckets) != len(LatencyBuckets)+1 {
		t.Fatalf("histogram has %d buckets, want %d", len(buckets), len(LatencyBuckets)+1)
	}
	var prev float64
	for _, b := range buckets {
		c := b.(map[string]any)["count"].(float64)
		if c < prev {
			t.Fatalf("JSON buckets not monotone: %v", buckets)
		}
		prev = c
	}
}

// TestPrometheusTextWellFormed checks every non-comment line is
// `name{labels} value` with a parseable value — the shape the CI
// scrape job asserts end-to-end.
func TestPrometheusTextWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a", "k", "v").Inc()
	r.Gauge("g", "g").Set(-3)
	r.Histogram("h_seconds", "h", nil, "route", "/x").Observe(time.Second)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("metric line has no value: %q", line)
		}
		name, val := line[:i], line[i+1:]
		if name == "" || val == "" {
			t.Fatalf("malformed metric line: %q", line)
		}
		if strings.Count(name, "{") != strings.Count(name, "}") {
			t.Fatalf("unbalanced labels: %q", line)
		}
		var f float64
		if _, err := fmtSscan(val, &f); err != nil {
			t.Fatalf("unparseable value %q in line %q: %v", val, line, err)
		}
	}
}

func fmtSscan(s string, f *float64) (int, error) {
	var v float64
	n, err := jsonNumberParse(s, &v)
	*f = v
	return n, err
}

func jsonNumberParse(s string, v *float64) (int, error) {
	d := json.NewDecoder(strings.NewReader(s))
	if err := d.Decode(v); err != nil {
		return 0, err
	}
	return 1, nil
}

// TestConcurrentObservation exercises the lock-free observation path
// under the race detector.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	h := r.Histogram("d_seconds", "d", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(time.Microsecond)
			}
		}()
	}
	// Concurrent scrapes while observations are in flight.
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost observations: counter=%d hist=%d", c.Value(), h.Count())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter family as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "x")
	r.Gauge("x_total", "x")
}
