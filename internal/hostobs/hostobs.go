// Package hostobs observes the host, not the machine: wall-clock
// metrics about the simulator process itself — cache-tier hit
// counters, resolve and HTTP latency distributions, shard-pool phase
// attribution — as opposed to internal/obs, which observes simulated
// cycles. It is a dependency-free, lock-cheap metrics registry:
// counters and gauges are single atomics, histograms are bounded
// log-scale bucket arrays of atomics, and the registry mutex is taken
// only at (de)registration and export, never on the observation path.
//
// The cardinal contract is that host observation is feedback-free:
// nothing in this package may alter simulation output, cache keys, or
// rendered experiment tables. Metrics describe the process; they never
// feed back into it. The delta-serve CI job enforces this with a
// byte-identity cmp of instrumented-vs-uninstrumented suite stdout
// (DESIGN.md §18).
//
// Export is deterministic: WritePrometheus renders the Prometheus text
// exposition format (0.0.4) and WriteJSON a /debug/vars-style JSON
// snapshot, both in sorted (family, labels) order, so two scrapes of
// an idle registry are byte-identical and diffs between scrapes are
// meaningful.
package hostobs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; registering it in a Registry only names it for
// export.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (callers must keep the counter monotone; use a Gauge
// for values that go down).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter. Export semantics treat counters as
// monotone, so Reset belongs in tests and test-shaped harness resets
// (runplan.Runner.Reset), not in production paths.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an instantaneous value: either set explicitly or computed
// by a callback at read time (a "function gauge"). The zero value is a
// settable gauge at 0.
type Gauge struct {
	v  atomic.Int64
	fn func() int64
}

// Set stores the gauge's value. Panics on a function gauge — its value
// is owned by the callback.
func (g *Gauge) Set(v int64) {
	if g.fn != nil {
		panic("hostobs: Set on a function gauge")
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g.fn != nil {
		panic("hostobs: Add on a function gauge")
	}
	g.v.Add(delta)
}

// Value returns the current value (calling the callback on a function
// gauge).
func (g *Gauge) Value() int64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

// Histogram is a bounded log-scale latency histogram: a fixed,
// strictly increasing slice of bucket upper bounds (in seconds) plus
// an implicit +Inf overflow bucket, with atomic per-bucket counts and
// an atomic nanosecond sum. Observations cost one binary search and
// three atomic adds — no locks, no allocation.
type Histogram struct {
	bounds []float64      // upper bounds in seconds, strictly increasing
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sumNS  atomic.Int64
}

// LatencyBuckets is the default bound set: a 1–2.5–5 log scale from
// 1µs to 60s, wide enough to hold both sub-millisecond shard-pool
// phases and minute-long cold simulations in one bounded array.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10, 30, 60,
}

// NewHistogram returns a histogram over bounds (seconds, strictly
// increasing). An empty or nil bounds slice uses LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("hostobs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveSeconds(d.Seconds()) }

// ObserveSeconds records one observation given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	// Binary search for the first bound >= s; equal values land in the
	// bucket whose upper bound they match (le semantics).
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(s * 1e9))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumSeconds returns the sum of all observations in seconds.
func (h *Histogram) SumSeconds() float64 { return float64(h.sumNS.Load()) / 1e9 }

// Cumulative returns the cumulative (le-style) bucket counts, one per
// bound plus the final +Inf bucket. Monotone non-decreasing by
// construction.
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}

// Bounds returns the histogram's upper bounds in seconds (without the
// implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Reset zeroes all buckets; test-only, like Counter.Reset.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumNS.Store(0)
}

// metricKind discriminates a series' export shape.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered (family, labels) instance.
type series struct {
	family string
	labels string   // rendered `k="v",...`, "" when unlabeled; the sort key
	kv     []string // the label pairs, for structural (JSON) rendering
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing one metric name: they share a
// HELP string and a type, and export together under one header.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // by rendered labels
}

// Registry is a named collection of metric series with deterministic
// export. All methods are safe for concurrent use; the observation
// types themselves (Counter, Gauge, Histogram) never touch the
// registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels turns alternating key, value arguments into the
// canonical `k="v",...` form. Panics on an odd-length list — that is a
// programming error at a registration site, not a runtime condition.
func renderLabels(kv []string) string {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("hostobs: odd label list %q", kv))
	}
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	return b.String()
}

// lookup finds or creates the family and the series slot, enforcing
// kind and help consistency across registrations of the same family.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string) *series {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("hostobs: %s registered as %s, re-registered as %s", name, f.kind, kind))
	}
	s := f.series[ls]
	if s == nil {
		s = &series{family: name, labels: ls, kv: append([]string(nil), labels...)}
		f.series[ls] = s
	}
	return s
}

// Counter returns the counter series (family, labels...), creating it
// on first use. labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// RegisterCounter names an existing counter for export — the adoption
// path runplan uses so one atomic serves both Counters() snapshots and
// /metrics. Re-registering the same series replaces its instance.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...string) {
	r.lookup(name, help, kindCounter, labels).c = c
}

// Gauge returns the settable gauge series (family, labels...),
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a function gauge whose value is computed by fn
// at every export.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...string) {
	r.lookup(name, help, kindGauge, labels).g = &Gauge{fn: fn}
}

// Histogram returns the histogram series (family, labels...), creating
// it with the given bounds (nil = LatencyBuckets) on first use. The
// bounds of an existing series are kept.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}

// RegisterHistogram names an existing histogram for export.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...string) {
	r.lookup(name, help, kindHistogram, labels).h = h
}

// snapshot returns the families and their series in sorted order —
// the one ordering both exporters share, which is what makes scrape
// output stable.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series sorted by rendered labels.
func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promName renders `name{labels}` (or bare name) with extra label
// pairs appended after any series labels.
func promName(name, labels string, extra ...string) string {
	all := labels
	if len(extra) > 0 {
		e := renderLabels(extra)
		if all == "" {
			all = e
		} else {
			all += "," + e
		}
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (0.0.4): families sorted by name, series
// sorted by labels, histograms as cumulative _bucket/_sum/_count
// triples. Output for an unchanged registry is byte-identical across
// calls.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			switch f.kind {
			case kindCounter:
				if s.c == nil {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", promName(f.name, s.labels), s.c.Value()); err != nil {
					return err
				}
			case kindGauge:
				if s.g == nil {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", promName(f.name, s.labels), s.g.Value()); err != nil {
					return err
				}
			case kindHistogram:
				if s.h == nil {
					continue
				}
				cum := s.h.Cumulative()
				for i, b := range s.h.bounds {
					if _, err := fmt.Fprintf(w, "%s %d\n",
						promName(f.name+"_bucket", s.labels, "le", formatFloat(b)), cum[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %d\n",
					promName(f.name+"_bucket", s.labels, "le", "+Inf"), cum[len(cum)-1]); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %s\n",
					promName(f.name+"_sum", s.labels), formatFloat(s.h.SumSeconds())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %d\n",
					promName(f.name+"_count", s.labels), s.h.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteJSON renders a /debug/vars-style snapshot: a JSON array of
// series objects in the same sorted order as WritePrometheus, each
// carrying name, type, parsed labels, and either a value or the
// histogram triple. Rendered by hand (ordered fields, no map ranging)
// so the output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("[")
	first := true
	for _, f := range r.snapshot() {
		for _, s := range f.sortedSeries() {
			if !first {
				b.WriteString(",")
			}
			first = false
			fmt.Fprintf(&b, "\n  {\"name\":%q,\"type\":%q", f.name, f.kind.String())
			if len(s.kv) > 0 {
				b.WriteString(",\"labels\":{")
				for i := 0; i+1 < len(s.kv); i += 2 {
					if i > 0 {
						b.WriteString(",")
					}
					fmt.Fprintf(&b, "%q:%q", s.kv[i], s.kv[i+1])
				}
				b.WriteString("}")
			}
			switch f.kind {
			case kindCounter:
				var v int64
				if s.c != nil {
					v = s.c.Value()
				}
				fmt.Fprintf(&b, ",\"value\":%d}", v)
			case kindGauge:
				var v int64
				if s.g != nil {
					v = s.g.Value()
				}
				fmt.Fprintf(&b, ",\"value\":%d}", v)
			case kindHistogram:
				if s.h == nil {
					b.WriteString(",\"count\":0,\"sum\":0,\"buckets\":[]}")
					continue
				}
				cum := s.h.Cumulative()
				fmt.Fprintf(&b, ",\"count\":%d,\"sum\":%s,\"buckets\":[",
					s.h.Count(), formatFloat(s.h.SumSeconds()))
				for i, bound := range s.h.bounds {
					if i > 0 {
						b.WriteString(",")
					}
					fmt.Fprintf(&b, "{\"le\":%s,\"count\":%d}", formatFloat(bound), cum[i])
				}
				if len(s.h.bounds) > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "{\"le\":\"+Inf\",\"count\":%d}]}", cum[len(cum)-1])
			}
		}
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}
