package trace

import (
	"fmt"
	"strings"
	"testing"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Cycle: 1})
	if r.Len() != 0 || r.Events() != nil || r.Spans() != nil {
		t.Fatal("nil recorder must be inert")
	}
}

func TestRecordAndEvents(t *testing.T) {
	r := New(0)
	r.Record(Event{Cycle: 5, Kind: Dispatch, Lane: 1, TaskKey: 9, TypeName: "copy"})
	r.Record(Event{Cycle: 7, Kind: Start, Lane: 1, TaskKey: 9, TypeName: "copy"})
	r.Record(Event{Cycle: 20, Kind: Complete, Lane: 1, TaskKey: 9, TypeName: "copy"})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != Dispatch || evs[2].Kind != Complete {
		t.Fatal("event order lost")
	}
	if evs[0].Kind.String() != "dispatch" || evs[1].Kind.String() != "start" {
		t.Fatal("kind names wrong")
	}
}

func TestLimit(t *testing.T) {
	r := New(2)
	for i := 0; i < 10; i++ {
		r.Record(Event{Cycle: int64(i)})
	}
	if r.Len() != 2 {
		t.Fatalf("limited recorder holds %d, want 2", r.Len())
	}
}

func TestSpansPairing(t *testing.T) {
	r := New(0)
	// Two tasks on the same lane, same key reused (spawned twins).
	r.Record(Event{Cycle: 1, Kind: Dispatch, Lane: 0, TaskKey: 5, TypeName: "a", Phase: 0})
	r.Record(Event{Cycle: 2, Kind: Start, Lane: 0, TaskKey: 5, TypeName: "a"})
	r.Record(Event{Cycle: 9, Kind: Complete, Lane: 0, TaskKey: 5, TypeName: "a"})
	r.Record(Event{Cycle: 10, Kind: Dispatch, Lane: 0, TaskKey: 5, TypeName: "a", Phase: 1})
	r.Record(Event{Cycle: 12, Kind: Start, Lane: 0, TaskKey: 5, TypeName: "a"})
	r.Record(Event{Cycle: 30, Kind: Complete, Lane: 0, TaskKey: 5, TypeName: "a"})
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Started != 2 || spans[0].Completed != 9 {
		t.Fatalf("span0 = %+v", spans[0])
	}
	if spans[1].Started != 12 || spans[1].Completed != 30 {
		t.Fatalf("span1 = %+v", spans[1])
	}
	if spans[0].Dispatched != 1 || spans[1].Phase != 1 {
		t.Fatalf("dispatch metadata lost: %+v", spans)
	}
}

func TestTimelineRendering(t *testing.T) {
	r := New(0)
	r.Record(Event{Cycle: 0, Kind: Dispatch, Lane: 0, TaskKey: 1, TypeName: "alpha"})
	r.Record(Event{Cycle: 0, Kind: Start, Lane: 0, TaskKey: 1, TypeName: "alpha"})
	r.Record(Event{Cycle: 50, Kind: Complete, Lane: 0, TaskKey: 1, TypeName: "alpha"})
	r.Record(Event{Cycle: 40, Kind: Dispatch, Lane: 1, TaskKey: 2, TypeName: "beta"})
	r.Record(Event{Cycle: 50, Kind: Start, Lane: 1, TaskKey: 2, TypeName: "beta"})
	r.Record(Event{Cycle: 100, Kind: Complete, Lane: 1, TaskKey: 2, TypeName: "beta"})
	out := r.Timeline(2, 40)
	if !strings.Contains(out, "lane  0") || !strings.Contains(out, "lane  1") {
		t.Fatalf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "A = alpha") || !strings.Contains(out, "B = beta") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// Lane 0's bar starts at the left; lane 1's does not.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "|A") {
		t.Fatalf("lane 0 should start immediately:\n%s", out)
	}
	if strings.Contains(lines[2], "|B") {
		t.Fatalf("lane 1 should start mid-run:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	r := New(0)
	if !strings.Contains(r.Timeline(2, 10), "no trace") {
		t.Fatal("empty timeline must say so")
	}
}

// TestTimelineAlphabetOverflow pins the legend behavior past the
// 62-letter alphabet: overflow types render as '?' and the legend
// summarizes them in one line instead of listing or reusing letters.
func TestTimelineAlphabetOverflow(t *testing.T) {
	r := New(0)
	const types = 65 // 62 letters + 3 overflow
	for i := 0; i < types; i++ {
		name := fmt.Sprintf("type%02d", i)
		key := uint64(i)
		c := int64(i * 10)
		r.Record(Event{Cycle: c, Kind: Dispatch, Lane: 0, TaskKey: key, TypeName: name})
		r.Record(Event{Cycle: c, Kind: Start, Lane: 0, TaskKey: key, TypeName: name})
		r.Record(Event{Cycle: c + 9, Kind: Complete, Lane: 0, TaskKey: key, TypeName: name})
	}
	out := r.Timeline(1, 200)
	if !strings.Contains(out, "A = type00") || !strings.Contains(out, "9 = type61") {
		t.Fatalf("full alphabet not assigned in first-seen order:\n%s", out)
	}
	if !strings.Contains(out, "? = and 3 more task types") {
		t.Fatalf("missing overflow legend line:\n%s", out)
	}
	if strings.Contains(out, "= type62") || strings.Contains(out, "= type64") {
		t.Fatalf("overflow types must not get legend entries:\n%s", out)
	}
	if !strings.Contains(out, "?") {
		t.Fatalf("overflow spans must render as '?':\n%s", out)
	}
}
