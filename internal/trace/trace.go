// Package trace records task-lifecycle events from a simulated run —
// dispatch, start, completion per task — and renders per-lane
// occupancy timelines. The recorder is optional: a nil *Recorder is
// safe to use everywhere, costing one predictable branch.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is a lifecycle event type.
type Kind uint8

// Event kinds.
const (
	// Dispatch: the coordinator assigned the task to a lane.
	Dispatch Kind = iota
	// Start: the lane began executing the task.
	Start
	// Complete: the task finished (streams drained).
	Complete
)

func (k Kind) String() string {
	switch k {
	case Dispatch:
		return "dispatch"
	case Start:
		return "start"
	default:
		return "complete"
	}
}

// Event is one recorded lifecycle transition.
type Event struct {
	Cycle int64
	Kind  Kind
	Lane  int
	// TaskKey is the program-assigned task identity; TypeName the task
	// type.
	TaskKey  uint64
	TypeName string
	Phase    int
}

// Recorder accumulates events. The zero value is ready to use; a nil
// recorder ignores all records.
type Recorder struct {
	events []Event
	limit  int
}

// New returns a recorder bounded to limit events (0 = unbounded).
func New(limit int) *Recorder { return &Recorder{limit: limit} }

// Record appends an event; nil-safe and limit-respecting.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	if r.limit > 0 && len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the recorded events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// TaskSpan is one task's residency on a lane.
type TaskSpan struct {
	Lane       int
	TaskKey    uint64
	TypeName   string
	Phase      int
	Dispatched int64
	Started    int64
	Completed  int64
}

// Spans pairs the lifecycle events per (lane, key, start-order) into
// residency spans, sorted by start cycle.
func (r *Recorder) Spans() []TaskSpan {
	if r == nil {
		return nil
	}
	// spanKey is comparable, keeping the per-event pairing loop free of
	// the string formatting that used to dominate traced-run profiles.
	type spanKey struct {
		lane int
		key  uint64
	}
	open := map[spanKey][]*TaskSpan{} // key → FIFO of spans missing later stages
	var out []*TaskSpan
	for _, ev := range r.events {
		id := spanKey{ev.Lane, ev.TaskKey}
		switch ev.Kind {
		case Dispatch:
			sp := &TaskSpan{Lane: ev.Lane, TaskKey: ev.TaskKey, TypeName: ev.TypeName,
				Phase: ev.Phase, Dispatched: ev.Cycle, Started: -1, Completed: -1}
			open[id] = append(open[id], sp)
			out = append(out, sp)
		case Start:
			for _, sp := range open[id] {
				if sp.Started < 0 {
					sp.Started = ev.Cycle
					break
				}
			}
		case Complete:
			q := open[id]
			for i, sp := range q {
				if sp.Started >= 0 && sp.Completed < 0 {
					sp.Completed = ev.Cycle
					open[id] = q[i+1:]
					break
				}
			}
		}
	}
	spans := make([]TaskSpan, len(out))
	for i, sp := range out {
		spans[i] = *sp
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Started != spans[j].Started {
			return spans[i].Started < spans[j].Started
		}
		return spans[i].Lane < spans[j].Lane
	})
	return spans
}

// Timeline renders a compact per-lane occupancy chart over width
// character columns. Each row is a lane; letters index task types.
func (r *Recorder) Timeline(lanes int, width int) string {
	spans := r.Spans()
	if len(spans) == 0 {
		return "(no trace)\n"
	}
	var maxCycle int64
	for _, sp := range spans {
		if sp.Completed > maxCycle {
			maxCycle = sp.Completed
		}
	}
	if maxCycle == 0 {
		return "(no completed tasks)\n"
	}
	rows := make([][]byte, lanes)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	// Task types map onto a 62-letter alphabet in first-seen order;
	// every type past that renders as '?' and is summarized by one
	// legend line rather than silently reusing the last letter.
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	typeLetter := map[string]byte{}
	assigned, overflow := 0, 0
	for _, sp := range spans {
		if sp.Started < 0 || sp.Completed < 0 || sp.Lane >= lanes {
			continue
		}
		letter, ok := typeLetter[sp.TypeName]
		if !ok {
			if assigned < len(alphabet) {
				letter = alphabet[assigned]
				assigned++
			} else {
				letter = '?'
				overflow++
			}
			typeLetter[sp.TypeName] = letter
		}
		from := int(sp.Started * int64(width) / (maxCycle + 1))
		to := int(sp.Completed * int64(width) / (maxCycle + 1))
		for c := from; c <= to && c < width; c++ {
			rows[sp.Lane][c] = letter
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline (%d cycles, %d tasks):\n", maxCycle, len(spans))
	for i, row := range rows {
		fmt.Fprintf(&b, "lane %2d |%s|\n", i, row)
	}
	var names []string
	for name, letter := range typeLetter {
		if letter != '?' {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %c = %s\n", typeLetter[name], name)
	}
	if overflow > 0 {
		fmt.Fprintf(&b, "  ? = and %d more task types\n", overflow)
	}
	return b.String()
}
