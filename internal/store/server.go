package store

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"taskstream/internal/core"
	"taskstream/internal/hostobs"
	"taskstream/internal/runplan"

	// The server accepts specs by workload name, so it must know the
	// full name grammar: the suite + parameterized builders (package
	// workload) and the "+inferred" synthesis suffix, which this
	// import registers.
	_ "taskstream/internal/analysis/infer"
)

// Server is the delta-serve HTTP handler: it resolves wire specs
// through a shared runplan.Runner (single-flight, memoizing), layered
// over an optional persistent DiskStore, bounding concurrent
// simulations at workers.
type Server struct {
	runner *runplan.Runner
	disk   *DiskStore
	sem    chan struct{}
	mux    *http.ServeMux
	// defPolicy, when non-empty, fills wire specs that omit a policy
	// name (delta-serve -policy). It never overrides an explicit one.
	defPolicy string

	// Host observability (hostmetrics.go): the metrics registry behind
	// /metrics and /debug/vars, the request id sequence, and the
	// optional structured access log.
	host    *hostobs.Registry
	reqSeq  atomic.Int64
	logMu   sync.Mutex
	logW    io.Writer
	logJSON bool
}

// NewServer wires a server over runner. disk may be nil (memory-only
// service); when set it is installed as the runner's second level.
// workers bounds simulations in flight across all requests (<= 0
// means unbounded).
func NewServer(runner *runplan.Runner, disk *DiskStore, workers int) *Server {
	if disk != nil {
		runner.SetStore(disk)
	}
	s := &Server{runner: runner, disk: disk, host: hostobs.NewRegistry()}
	if workers > 0 {
		s.sem = make(chan struct{}, workers)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/suite", s.handleSuite)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	runner.InstrumentHost(s.host)
	if disk != nil {
		s.instrumentDisk()
	}
	return s
}

// ServeHTTP implements http.Handler, routing every request through the
// observation middleware (hostmetrics.go).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.observe(w, r) }

// SetDefaultPolicy installs the scheduler policy name applied to wire
// specs that omit one. The name must already be validated
// (core.ParsePolicy); specs naming a policy explicitly are unaffected,
// and the substituted policy enters the spec's cache key as usual, so
// daemons with different defaults never cross-contaminate a shared
// store.
func (s *Server) SetDefaultPolicy(name string) { s.defPolicy = name }

// resolve answers one wire spec through the runner under the worker
// bound. A waiter that dedups onto an in-flight run parks while
// holding its slot; the executing flight always holds its own slot
// and progresses, so the bound cannot deadlock (same argument as the
// harness budget, DESIGN.md §12).
func (s *Server) resolve(ws runplan.WireSpec) RunResponse {
	if ws.Opts.Policy == "" && s.defPolicy != "" {
		ws.Opts.Policy = s.defPolicy
	}
	spec, err := ws.Spec()
	if err != nil {
		return RunResponse{Error: err.Error()}
	}
	if s.sem != nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	key := spec.Key()
	rep, src, err := s.runner.RunInfo(spec)
	if err != nil {
		return RunResponse{Key: key, Cached: src.String(), Error: err.Error()}
	}
	b, err := core.EncodeReport(rep)
	if err != nil {
		return RunResponse{Key: key, Cached: src.String(), Error: fmt.Sprintf("encode report: %v", err)}
	}
	return RunResponse{Key: key, Cached: src.String(), Report: b}
}

// handleRun implements POST /v1/run: one spec in, one report out.
// Unresolvable specs are the client's fault (400); execution failures
// are the simulation's (500); both carry a RunResponse body with
// Error set.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	resp := s.resolve(req.Spec)
	if ri := infoFrom(r.Context()); ri != nil {
		ri.key, ri.cached = resp.Key, resp.Cached
	}
	status := http.StatusOK
	if resp.Error != "" {
		if resp.Key == "" { // never resolved to a runnable spec
			status = http.StatusBadRequest
		} else {
			status = http.StatusInternalServerError
		}
	}
	writeJSON(w, status, resp)
}

// handleSuite implements POST /v1/suite: a batch of specs in, one
// SuiteItem JSON line out per spec, streamed in completion order and
// flushed per item. Specs fan out under the worker bound; duplicate
// specs inside one batch (or across concurrent batches) single-flight
// through the shared runner.
func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SuiteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var writeMu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(item SuiteItem) {
		writeMu.Lock()
		defer writeMu.Unlock()
		enc.Encode(item) // Encode appends the newline delimiter
		if flusher != nil {
			flusher.Flush()
		}
	}

	var wg sync.WaitGroup
	for i, ws := range req.Specs {
		wg.Add(1)
		go func(i int, ws runplan.WireSpec) {
			defer wg.Done()
			emit(SuiteItem{Index: i, RunResponse: s.resolve(ws)})
		}(i, ws)
	}
	wg.Wait()
}

// handleStats implements GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	resp := StatsResponse{
		Counters:      s.runner.Counters(),
		MemoryEntries: s.runner.Len(),
	}
	if s.disk != nil {
		st := s.disk.Stats()
		resp.Store = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
