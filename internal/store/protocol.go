package store

import (
	"encoding/json"

	"taskstream/internal/runplan"
)

// The delta-serve HTTP/JSON API, version 1:
//
//	POST /v1/run    RunRequest  → RunResponse
//	POST /v1/suite  SuiteRequest → newline-delimited SuiteItem stream
//	GET  /v1/stats  → StatsResponse
//
// /v1/run answers one spec; concurrent requests for the same uncached
// spec single-flight through the server's shared runner, so N clients
// cost one simulation. /v1/suite answers a batch: items stream back as
// chunked JSON lines in completion order, each tagged with its request
// index, so a client watches per-spec progress without waiting for the
// slowest run. Simulation failures are per-item (the stream keeps
// going); only a malformed request fails the call as a whole.

// RunRequest asks for one spec.
type RunRequest struct {
	Spec runplan.WireSpec `json:"spec"`
}

// RunResponse answers one spec. Cached is the answer's provenance —
// "memory" (warm in-process entry), "disk" (persistent store),
// "dedup" (waited on a concurrent identical request), "miss"
// (executed), or "bypass" (cache disabled) — and Report holds
// core.EncodeReport bytes when Error is empty.
type RunResponse struct {
	Key    string          `json:"key,omitempty"`
	Cached string          `json:"cached,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// SuiteRequest asks for a batch of specs.
type SuiteRequest struct {
	Specs []runplan.WireSpec `json:"specs"`
}

// SuiteItem is one line of the /v1/suite response stream: the
// RunResponse for Specs[Index].
type SuiteItem struct {
	Index int `json:"index"`
	RunResponse
}

// StatsResponse is the /v1/stats snapshot: the runner's counters
// (extended with disk hits), its resident entry count, and — when a
// persistent store is attached — the store's size and accounting.
type StatsResponse struct {
	Counters      runplan.Counters `json:"counters"`
	MemoryEntries int              `json:"memory_entries"`
	Store         *StoreStats      `json:"store,omitempty"`
}

// CacheServedFraction reports the share of cache-resolvable requests
// (hits + dedups + disk hits) among all spec resolutions the runner
// answered, bypasses excluded — the number the warm-store CI gate
// checks against its ≥95% floor.
func (s StatsResponse) CacheServedFraction() float64 {
	c := s.Counters
	served := c.Hits + c.Dedups + c.DiskHits
	total := served + c.Misses
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}
