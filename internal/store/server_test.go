package store

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/runplan"
	"taskstream/internal/workload"
)

// newTestService wires a full service — disk store, fresh runner,
// HTTP server, client — over a temp directory.
func newTestService(t *testing.T) (*Client, *runplan.Runner, *DiskStore) {
	t.Helper()
	d := mustOpen(t, t.TempDir(), 0)
	r := runplan.NewRunner()
	r.SetDisabled(false)
	ts := httptest.NewServer(NewServer(r, d, 4))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), r, d
}

func wireSpec(t *testing.T, s runplan.Spec) runplan.WireSpec {
	t.Helper()
	w, err := s.Wire()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestServerRunColdWarmDisk(t *testing.T) {
	c, r, _ := newTestService(t)
	ws := wireSpec(t, histSpec())

	cold, cached, err := c.RunWire(ws)
	if err != nil {
		t.Fatal(err)
	}
	if cached != "miss" {
		t.Fatalf("cold request provenance = %q, want miss", cached)
	}
	warm, cached, err := c.RunWire(ws)
	if err != nil {
		t.Fatal(err)
	}
	if cached != "memory" {
		t.Fatalf("warm request provenance = %q, want memory", cached)
	}
	if warm.Cycles != cold.Cycles {
		t.Fatalf("warm answer differs: %d vs %d cycles", warm.Cycles, cold.Cycles)
	}

	// Dropping the in-memory entry simulates a daemon restart over a
	// persistent store: the next request is a disk hit, same answer.
	spec, err := ws.Spec()
	if err != nil {
		t.Fatal(err)
	}
	r.Evict(spec.Key())
	disk, cached, err := c.RunWire(ws)
	if err != nil {
		t.Fatal(err)
	}
	if cached != "disk" {
		t.Fatalf("post-evict provenance = %q, want disk", cached)
	}
	if disk.Cycles != cold.Cycles {
		t.Fatalf("disk answer differs: %d vs %d cycles", disk.Cycles, cold.Cycles)
	}
}

func TestServerRejectsBadSpecs(t *testing.T) {
	c, _, _ := newTestService(t)

	ws := wireSpec(t, histSpec())
	ws.Workload = "no-such-workload"
	if _, _, err := c.RunWire(ws); err == nil {
		t.Fatal("unknown workload accepted")
	}

	ws = wireSpec(t, histSpec())
	ws.Config.Lanes = -3
	if _, _, err := c.RunWire(ws); err == nil {
		t.Fatal("invalid config accepted")
	}

	// Raw HTTP status check: unresolvable spec is the client's fault.
	body, _ := json.Marshal(RunRequest{Spec: runplan.WireSpec{Workload: "nope"}})
	resp, err := http.Post(c.base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unresolvable spec returned HTTP %d, want 400", resp.StatusCode)
	}
}

func TestServerSuiteStreamAndStats(t *testing.T) {
	c, _, _ := newTestService(t)
	cfg := config.Default8()
	specs := []runplan.WireSpec{
		wireSpec(t, runplan.ForVariant(*workload.ByName("hist"), baseline.Static, cfg)),
		wireSpec(t, runplan.ForVariant(*workload.ByName("hist"), baseline.Delta, cfg)),
		// A duplicate of spec 1: the server must answer it from the
		// same flight or entry, never a second execution.
		wireSpec(t, runplan.ForVariant(*workload.ByName("hist"), baseline.Delta, cfg)),
	}
	cold, cachedCold, err := c.Suite(specs)
	if err != nil {
		t.Fatal(err)
	}
	if cold[1].Cycles != cold[2].Cycles {
		t.Fatalf("duplicate specs answered differently: %d vs %d", cold[1].Cycles, cold[2].Cycles)
	}
	execs := 0
	for _, p := range cachedCold {
		if p == "miss" {
			execs++
		}
	}
	if execs != 2 {
		t.Fatalf("cold 3-spec batch with 1 duplicate executed %d specs (%v), want 2", execs, cachedCold)
	}

	warm, cachedWarm, err := c.Suite(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if warm[i].Cycles != cold[i].Cycles {
			t.Fatalf("warm suite differs at %d: %d vs %d", i, warm[i].Cycles, cold[i].Cycles)
		}
		if cachedWarm[i] != "memory" {
			t.Fatalf("warm suite provenance[%d] = %q, want memory", i, cachedWarm[i])
		}
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Counters.Misses != 2 {
		t.Fatalf("server executed %d specs, want 2", st.Counters.Misses)
	}
	if st.Store == nil || st.Store.Entries != 2 {
		t.Fatalf("store stats = %+v, want 2 entries", st.Store)
	}
	// Warm pass over an already-answered batch: everything cache-served.
	if f := st.CacheServedFraction(); f < 0.5 {
		t.Fatalf("cache-served fraction = %.2f", f)
	}

	// Per-item failures keep the stream alive and fail the batch with
	// an attributed error.
	bad := append([]runplan.WireSpec{}, specs...)
	bad[1].Workload = "no-such-workload"
	if _, _, err := c.Suite(bad); err == nil {
		t.Fatal("batch with a bad spec reported success")
	}
}

// TestServerWarmFractionContract is the in-process version of the CI
// gate: a repeat batch through a warm service is answered ≥95% from
// cache with byte-identical reports.
func TestServerWarmFractionContract(t *testing.T) {
	c, _, _ := newTestService(t)
	cfg := config.Default8()
	var specs []runplan.WireSpec
	for _, name := range []string{"hist", "stencil"} {
		nb := *workload.ByName(name)
		specs = append(specs,
			wireSpec(t, runplan.ForVariant(nb, baseline.Static, cfg)),
			wireSpec(t, runplan.ForVariant(nb, baseline.Delta, cfg)))
	}
	cold, _, err := c.Suite(specs)
	if err != nil {
		t.Fatal(err)
	}
	warm, cachedWarm, err := c.Suite(specs)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for i := range specs {
		if warm[i].Cycles != cold[i].Cycles {
			t.Fatalf("warm pass differs at %d", i)
		}
		switch cachedWarm[i] {
		case "memory", "disk", "dedup":
			served++
		}
	}
	if frac := float64(served) / float64(len(specs)); frac < 0.95 {
		t.Fatalf("warm pass cache-served fraction %.2f < 0.95 (%v)", frac, cachedWarm)
	}
}

// TestServerDefaultPolicy pins the delta-serve -policy contract: a wire
// spec omitting its policy name resolves under the daemon's default
// (and therefore to that policy's cache key), a spec naming a policy
// keeps it, and an unknown name is the client's fault — HTTP 400.
func TestServerDefaultPolicy(t *testing.T) {
	r := runplan.NewRunner()
	r.SetDisabled(false)
	srv := NewServer(r, mustOpen(t, t.TempDir(), 0), 4)
	srv.SetDefaultPolicy("static")
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	keyFor := func(policy string) string {
		t.Helper()
		ws := wireSpec(t, histSpec())
		ws.Opts.Policy = policy
		spec, err := ws.Spec()
		if err != nil {
			t.Fatal(err)
		}
		return spec.Key()
	}

	omitted := wireSpec(t, histSpec())
	omitted.Opts.Policy = ""
	if got := srv.resolve(omitted); got.Error != "" || got.Key != keyFor("static") {
		t.Fatalf("omitted policy resolved to key %s (err %q), want the static key %s",
			got.Key, got.Error, keyFor("static"))
	}

	explicit := wireSpec(t, histSpec())
	explicit.Opts.Policy = "dynamic"
	if got := srv.resolve(explicit); got.Error != "" || got.Key != keyFor("dynamic") {
		t.Fatalf("explicit policy was overridden: key %s (err %q), want %s",
			got.Key, got.Error, keyFor("dynamic"))
	}

	bad := wireSpec(t, histSpec())
	bad.Opts.Policy = "fifo"
	body, _ := json.Marshal(RunRequest{Spec: bad})
	resp, err := http.Post(c.base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown policy returned HTTP %d, want 400", resp.StatusCode)
	}
}
