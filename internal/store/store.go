// Package store is the persistence layer of simulation-as-a-service:
// a disk-backed content-addressed report store (DiskStore) that plugs
// in under the in-memory runplan.Runner, plus the HTTP/JSON server
// and client that make one warm runner usable by many processes
// (cmd/delta-serve, delta-bench -server). See DESIGN.md §15.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"taskstream/internal/core"
)

// envelope is one entry file: the key it answers, the hex SHA-256 of
// the serialized report, and the report bytes themselves
// (core.EncodeReport's stable encoding). Load re-hashes Report and
// compares against SHA256 — a truncated or bit-flipped entry fails
// the check and is discarded instead of served.
type envelope struct {
	Key    string          `json:"key"`
	SHA256 string          `json:"sha256"`
	Report json.RawMessage `json:"report"`
}

// entry is the in-memory index record for one on-disk file.
type entry struct {
	file string // file name inside dir (hash of key + ".json")
	size int64
}

// StoreStats is a snapshot of a DiskStore's accounting, served by the
// delta-serve /v1/stats endpoint.
type StoreStats struct {
	Dir       string `json:"dir"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Loads     int64  `json:"loads"`
	LoadHits  int64  `json:"load_hits"`
	Corrupt   int64  `json:"corrupt"`
	Saves     int64  `json:"saves"`
	Evictions int64  `json:"evictions"`
}

// DiskStore is a persistent content-addressed cache of simulation
// reports, implementing runplan.Store. Entries are files named by the
// SHA-256 of their key, integrity-checked on load, and LRU-evicted
// once the total size exceeds a configurable bound. Safe for
// concurrent use. It is a cache: every failure path (unreadable file,
// failed integrity check, write error) degrades to a miss or a
// dropped save, never to a wrong answer or a runner error.
type DiskStore struct {
	dir string
	max int64 // size bound in bytes; <= 0 means unbounded

	mu      sync.Mutex
	entries map[string]*entry // by file name
	lruList []string          // file names, least recently used first
	total   int64

	loads, loadHits, corrupt, saves, evictions int64
}

// Open returns a store rooted at dir (created if missing), holding at
// most maxBytes of entries (<= 0 = unbounded). Existing entries are
// indexed by file modification time, so the LRU order — refreshed on
// every load — survives restarts.
func Open(dir string, maxBytes int64) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &DiskStore{
		dir:     dir,
		max:     maxBytes,
		entries: make(map[string]*entry),
	}
	type aged struct {
		entry
		mtime time.Time
	}
	var found []aged
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, f := range files {
		if f.IsDir() || filepath.Ext(f.Name()) != ".json" {
			continue
		}
		info, err := f.Info()
		if err != nil {
			continue
		}
		found = append(found, aged{entry{file: f.Name(), size: info.Size()}, info.ModTime()})
	}
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].file < found[j].file
	})
	for _, a := range found {
		e := a.entry
		d.entries[e.file] = &e
		d.lruList = append(d.lruList, e.file)
		d.total += e.size
	}
	d.evictOverLocked()
	return d, nil
}

// fileFor returns the content-addressed file name for a key.
func fileFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".json"
}

// Load implements runplan.Store: fetch, integrity-check, and decode
// the entry for key. Any defect — missing file, malformed envelope,
// key mismatch, hash mismatch, undecodable report — discards the
// entry and reports a miss, so a corrupted store heals by
// re-execution instead of serving garbage.
func (d *DiskStore) Load(key string) (core.Report, bool) {
	file := fileFor(key)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.loads++
	e, ok := d.entries[file]
	if !ok {
		return core.Report{}, false
	}
	path := filepath.Join(d.dir, file)
	b, err := os.ReadFile(path)
	if err != nil {
		d.dropLocked(e, true)
		return core.Report{}, false
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		d.dropLocked(e, true)
		return core.Report{}, false
	}
	sum := sha256.Sum256(env.Report)
	if env.Key != key || env.SHA256 != hex.EncodeToString(sum[:]) {
		d.dropLocked(e, true)
		return core.Report{}, false
	}
	rep, err := core.DecodeReport(env.Report)
	if err != nil {
		d.dropLocked(e, true)
		return core.Report{}, false
	}
	d.touchLocked(file)
	now := time.Now()
	os.Chtimes(path, now, now) // persist the LRU refresh across restarts; best-effort
	d.loadHits++
	return rep, true
}

// Save implements runplan.Store: write the entry atomically
// (temp file + rename) and evict least-recently-used entries while
// the store exceeds its size bound. Failures drop the save.
func (d *DiskStore) Save(key string, rep core.Report) {
	repBytes, err := core.EncodeReport(rep)
	if err != nil {
		return
	}
	sum := sha256.Sum256(repBytes)
	b, err := json.Marshal(envelope{
		Key:    key,
		SHA256: hex.EncodeToString(sum[:]),
		Report: repBytes,
	})
	if err != nil {
		return
	}
	file := fileFor(key)
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(d.dir, file)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.saves++
	if old, ok := d.entries[file]; ok {
		d.total -= old.size
		old.size = int64(len(b))
		d.total += old.size
		d.touchLocked(file)
	} else {
		d.entries[file] = &entry{file: file, size: int64(len(b))}
		d.lruList = append(d.lruList, file)
		d.total += int64(len(b))
	}
	d.evictOverLocked()
}

// touchLocked moves file to the most-recently-used end.
func (d *DiskStore) touchLocked(file string) {
	for i, f := range d.lruList {
		if f == file {
			d.lruList = append(append(d.lruList[:i:i], d.lruList[i+1:]...), file)
			return
		}
	}
}

// dropLocked removes an entry from index and disk; corrupt marks it
// as an integrity casualty rather than a plain eviction.
func (d *DiskStore) dropLocked(e *entry, corrupt bool) {
	os.Remove(filepath.Join(d.dir, e.file))
	delete(d.entries, e.file)
	for i, f := range d.lruList {
		if f == e.file {
			d.lruList = append(d.lruList[:i], d.lruList[i+1:]...)
			break
		}
	}
	d.total -= e.size
	if corrupt {
		d.corrupt++
	} else {
		d.evictions++
	}
}

// evictOverLocked enforces the size bound: least recently used first.
func (d *DiskStore) evictOverLocked() {
	if d.max <= 0 {
		return
	}
	for d.total > d.max && len(d.lruList) > 0 {
		d.dropLocked(d.entries[d.lruList[0]], false)
	}
}

// Len reports the number of stored entries.
func (d *DiskStore) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Bytes reports the total size of stored entries.
func (d *DiskStore) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// Stats returns a snapshot of the store's accounting.
func (d *DiskStore) Stats() StoreStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return StoreStats{
		Dir:       d.dir,
		Entries:   len(d.entries),
		Bytes:     d.total,
		MaxBytes:  d.max,
		Loads:     d.loads,
		LoadHits:  d.loadHits,
		Corrupt:   d.corrupt,
		Saves:     d.saves,
		Evictions: d.evictions,
	}
}
