package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"taskstream/internal/runplan"
)

// syncBuffer is a goroutine-safe log sink for access-log assertions.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// promValue extracts the value of an exact series line from a scrape.
func promValue(t *testing.T, scrape, series string) int64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(scrape))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, series+" ") {
			var v int64
			if _, err := fmt.Sscanf(line[len(series)+1:], "%d", &v); err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("scrape has no series %q:\n%s", series, scrape)
	return 0
}

// TestServerMetricsReconcileWithStats is the end-to-end reconciliation
// contract: after a warm pass, /metrics tier counters equal the
// /v1/stats counters — they are the same atomics.
func TestServerMetricsReconcileWithStats(t *testing.T) {
	c, _, _ := newTestService(t)
	ws := wireSpec(t, histSpec())
	for i := 0; i < 3; i++ { // 1 miss + 2 memory hits
		if _, _, err := c.RunWire(ws); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	code, scrape := get(t, c.base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics returned %d", code)
	}
	for series, want := range map[string]int64{
		`runner_resolves_total{tier="miss"}`:   st.Counters.Misses,
		`runner_resolves_total{tier="memory"}`: st.Counters.Hits,
		`runner_resolves_total{tier="disk"}`:   st.Counters.DiskHits,
		`runner_resolves_total{tier="dedup"}`:  st.Counters.Dedups,
		`runner_resolves_total{tier="bypass"}`: st.Counters.Bypasses,
		`runner_memory_entries`:                int64(st.MemoryEntries),
	} {
		if got := promValue(t, scrape, series); got != want {
			t.Errorf("%s = %d, /v1/stats says %d", series, got, want)
		}
	}
	if got := promValue(t, scrape, `runner_resolves_total{tier="miss"}`); got != 1 {
		t.Errorf("miss count = %d, want 1", got)
	}
	if got := promValue(t, scrape, `runner_resolves_total{tier="memory"}`); got != 2 {
		t.Errorf("memory count = %d, want 2", got)
	}
	// The resolve-latency histogram saw every resolution.
	if got := promValue(t, scrape, `runner_resolve_seconds_count{tier="memory"}`); got != 2 {
		t.Errorf("memory latency observations = %d, want 2", got)
	}
	// HTTP request accounting covers the three runs.
	if got := promValue(t, scrape, `http_requests_total{route="/v1/run",code="200"}`); got != 3 {
		t.Errorf("/v1/run request count = %d, want 3", got)
	}
	// Disk gauges are exported when a store is attached.
	if got := promValue(t, scrape, "store_saves"); got != 1 {
		t.Errorf("store_saves = %d, want 1", got)
	}
}

// TestServerMetricsStableAndParseable pins the scrape surface itself:
// two idle scrapes are byte-identical, /debug/vars parses as JSON with
// monotone histogram buckets, and unknown paths fold into the "other"
// route label instead of minting new series.
func TestServerMetricsStableAndParseable(t *testing.T) {
	c, _, _ := newTestService(t)
	if _, _, err := c.RunWire(wireSpec(t, histSpec())); err != nil {
		t.Fatal(err)
	}
	// Scanner probe: must not create a per-path series.
	if code, _ := get(t, c.base+"/../../etc/passwd"); code == 0 {
		t.Fatal("probe request failed")
	}

	_, a := get(t, c.base+"/metrics")
	_, b := get(t, c.base+"/metrics")
	// The second scrape observed the first one's request, so only the
	// http_* series for route="/metrics" may differ; mask them.
	mask := func(s string) string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, `route="/metrics"`) {
				continue
			}
			out = append(out, line)
		}
		return strings.Join(out, "\n")
	}
	if mask(a) != mask(b) {
		t.Fatalf("idle scrapes differ beyond self-observation:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, `route="other"`) {
		t.Fatalf("probe path did not fold into route=\"other\":\n%s", a)
	}
	if strings.Contains(a, "etc/passwd") {
		t.Fatalf("probe path leaked into series labels:\n%s", a)
	}

	code, vars := get(t, c.base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars returned %d", code)
	}
	var series []map[string]any
	if err := json.Unmarshal([]byte(vars), &series); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, vars)
	}
	if len(series) == 0 {
		t.Fatal("/debug/vars is empty")
	}
	for _, s := range series {
		if s["type"] != "histogram" {
			continue
		}
		var prev float64
		for _, b := range s["buckets"].([]any) {
			cnt := b.(map[string]any)["count"].(float64)
			if cnt < prev {
				t.Fatalf("histogram %v buckets not monotone", s["name"])
			}
			prev = cnt
		}
	}

	// Write methods are rejected on the read-only surfaces.
	resp, err := http.Post(c.base+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics returned %d, want 405", resp.StatusCode)
	}
}

// TestServerAccessLog pins the structured per-request log in both
// formats: every line carries the request id, route, status, latency,
// and — for /v1/run — the spec key and provenance.
func TestServerAccessLog(t *testing.T) {
	d := mustOpen(t, t.TempDir(), 0)
	r := runplan.NewRunner()
	r.SetDisabled(false)
	srv := NewServer(r, d, 2)
	var buf syncBuffer
	if err := srv.SetRequestLog(&buf, "json"); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetRequestLog(&buf, "xml"); err == nil {
		t.Fatal("SetRequestLog accepted an unknown format")
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	if _, _, err := c.RunWire(wireSpec(t, histSpec())); err != nil {
		t.Fatal(err)
	}
	get(t, ts.URL+"/v1/stats")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var run struct {
		ID     int64   `json:"id"`
		Method string  `json:"method"`
		Route  string  `json:"route"`
		Status int     `json:"status"`
		Bytes  int64   `json:"bytes"`
		Ms     float64 `json:"ms"`
		Key    string  `json:"key"`
		Cached string  `json:"cached"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &run); err != nil {
		t.Fatalf("json access-log line does not parse: %v\n%s", err, lines[0])
	}
	if run.Method != "POST" || run.Route != "/v1/run" || run.Status != 200 {
		t.Fatalf("run log line wrong: %+v", run)
	}
	if run.Cached != "miss" || run.Key == "" || run.Bytes <= 0 || run.ID == 0 {
		t.Fatalf("run log line missing provenance: %+v", run)
	}

	// Text format: human-readable single line with the same fields.
	if err := srv.SetRequestLog(&buf, "text"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunWire(wireSpec(t, histSpec())); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "POST /v1/run 200") || !strings.Contains(out, "cached=memory") {
		t.Fatalf("text access log missing fields:\n%s", out)
	}
}

// TestObsWriterFlushPassthrough pins that the metrics wrapper keeps
// http.Flusher visible — without it, /v1/suite would stop streaming
// per-item.
func TestObsWriterFlushPassthrough(t *testing.T) {
	rec := httptest.NewRecorder()
	var w http.ResponseWriter = &obsWriter{rw: rec, status: 200}
	if _, ok := w.(http.Flusher); !ok {
		t.Fatal("obsWriter does not implement http.Flusher")
	}
	w.(http.Flusher).Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
	n, err := w.Write([]byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	ow := w.(*obsWriter)
	if ow.bytes != 5 || ow.status != 200 {
		t.Fatalf("obsWriter accounting wrong: %+v", ow)
	}
}
