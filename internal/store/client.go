package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"taskstream/internal/core"
	"taskstream/internal/runplan"
)

// Client resolves run specs against a delta-serve daemon. It tallies
// per-provenance answer counts so a harness can report how much of
// its suite the server answered from cache (delta-bench prints the
// tally on stderr in -server mode). Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	memory, disk, dedup, miss, bypass, local atomic.Int64
}

// NewClient returns a client for the daemon at base (e.g.
// "http://localhost:8177"). Simulations can be minutes long, so the
// client never times out a request on its own.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// Resolve answers one spec the way runplan.Runner.Run would, but
// remotely: cacheable specs go to the server, uncacheable ones (live
// trace/obs side channels cannot cross the wire) execute in-process
// through the shared runner. This is the resolver delta-bench installs
// in -server mode.
func (c *Client) Resolve(s runplan.Spec) (core.Report, error) {
	if !s.Cacheable() {
		c.local.Add(1)
		return runplan.Shared.Run(s)
	}
	ws, err := s.Wire()
	if err != nil {
		return core.Report{}, err
	}
	rep, cached, err := c.RunWire(ws)
	if err != nil {
		return core.Report{}, err
	}
	c.tally(cached)
	return rep, nil
}

// RunWire posts one wire spec to /v1/run, returning the report and
// its cache provenance ("memory", "disk", "dedup", "miss", "bypass").
func (c *Client) RunWire(ws runplan.WireSpec) (core.Report, string, error) {
	body, err := json.Marshal(RunRequest{Spec: ws})
	if err != nil {
		return core.Report{}, "", err
	}
	httpResp, err := c.hc.Post(c.base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return core.Report{}, "", fmt.Errorf("store client: %w", err)
	}
	defer httpResp.Body.Close()
	var resp RunResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return core.Report{}, "", fmt.Errorf("store client: %s: bad response: %v", ws.Workload, err)
	}
	if resp.Error != "" {
		return core.Report{}, resp.Cached, fmt.Errorf("server: %s", resp.Error)
	}
	if httpResp.StatusCode != http.StatusOK {
		return core.Report{}, "", fmt.Errorf("store client: %s: HTTP %d", ws.Workload, httpResp.StatusCode)
	}
	rep, err := core.DecodeReport(resp.Report)
	if err != nil {
		return core.Report{}, "", fmt.Errorf("store client: %s: %v", ws.Workload, err)
	}
	return rep, resp.Cached, nil
}

// Suite posts a batch to /v1/suite and reassembles the streamed
// completion-order items into request order. Reports and provenance
// come back index-aligned with specs; the first per-item error fails
// the batch (after the stream drains).
func (c *Client) Suite(specs []runplan.WireSpec) ([]core.Report, []string, error) {
	body, err := json.Marshal(SuiteRequest{Specs: specs})
	if err != nil {
		return nil, nil, err
	}
	httpResp, err := c.hc.Post(c.base+"/v1/suite", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, fmt.Errorf("store client: %w", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(httpResp.Body)
		return nil, nil, fmt.Errorf("store client: suite: HTTP %d: %s", httpResp.StatusCode, bytes.TrimSpace(b))
	}
	reports := make([]core.Report, len(specs))
	cached := make([]string, len(specs))
	seen := make([]bool, len(specs))
	var firstErr error
	sc := bufio.NewScanner(httpResp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // reports for big configs are wide
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item SuiteItem
		if err := json.Unmarshal(line, &item); err != nil {
			return nil, nil, fmt.Errorf("store client: suite stream: %v", err)
		}
		if item.Index < 0 || item.Index >= len(specs) || seen[item.Index] {
			return nil, nil, fmt.Errorf("store client: suite stream: bad index %d", item.Index)
		}
		seen[item.Index] = true
		if item.Error != "" {
			if firstErr == nil {
				firstErr = fmt.Errorf("server: %s: %s", specs[item.Index].Workload, item.Error)
			}
			continue
		}
		rep, err := core.DecodeReport(item.Report)
		if err != nil {
			return nil, nil, fmt.Errorf("store client: %s: %v", specs[item.Index].Workload, err)
		}
		reports[item.Index] = rep
		cached[item.Index] = item.Cached
		c.tally(item.Cached)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("store client: suite stream: %w", err)
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	for i, ok := range seen {
		if !ok {
			return nil, nil, fmt.Errorf("store client: suite stream ended without answering spec %d (%s)", i, specs[i].Workload)
		}
	}
	return reports, cached, nil
}

// Stats fetches the server's /v1/stats snapshot.
func (c *Client) Stats() (StatsResponse, error) {
	httpResp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return StatsResponse{}, fmt.Errorf("store client: %w", err)
	}
	defer httpResp.Body.Close()
	var resp StatsResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return StatsResponse{}, fmt.Errorf("store client: stats: %v", err)
	}
	return resp, nil
}

// WaitReady polls /v1/stats until the server answers or the timeout
// elapses — the startup handshake scripts use.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if _, err := c.Stats(); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("store client: server at %s not ready after %v: %w", c.base, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (c *Client) tally(cached string) {
	switch cached {
	case "memory":
		c.memory.Add(1)
	case "disk":
		c.disk.Add(1)
	case "dedup":
		c.dedup.Add(1)
	case "bypass":
		c.bypass.Add(1)
	default:
		c.miss.Add(1)
	}
}

// CountsLine renders the client-side provenance tally the way
// delta-bench prints it on stderr.
func (c *Client) CountsLine() string {
	return fmt.Sprintf("%d memory, %d disk, %d dedup, %d miss, %d bypass, %d local",
		c.memory.Load(), c.disk.Load(), c.dedup.Load(), c.miss.Load(), c.bypass.Load(), c.local.Load())
}
