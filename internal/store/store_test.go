package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/runplan"
	"taskstream/internal/stats"
	"taskstream/internal/workload"
)

// histSpec is the cheapest suite workload under the delta variant.
func histSpec() runplan.Spec {
	return runplan.ForVariant(*workload.ByName("hist"), baseline.Delta, config.Default8())
}

func testReport(cycles int64) core.Report {
	set := stats.NewSet()
	set.Add("tasks_run", cycles/2)
	set.Add("dram_bytes", cycles*3)
	return core.Report{Cycles: cycles, LaneBusy: []int64{cycles, cycles / 2}, Stats: set}
}

func mustOpen(t *testing.T, dir string, max int64) *DiskStore {
	t.Helper()
	d, err := Open(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskStoreRoundTrip(t *testing.T) {
	d := mustOpen(t, t.TempDir(), 0)
	want := testReport(1000)
	d.Save("k1", want)
	got, ok := d.Load("k1")
	if !ok {
		t.Fatal("saved entry not loadable")
	}
	if got.Cycles != want.Cycles || got.Stats.Get("dram_bytes") != want.Stats.Get("dram_bytes") {
		t.Fatalf("round trip changed the report: %+v vs %+v", got, want)
	}
	if _, ok := d.Load("other"); ok {
		t.Fatal("unknown key loaded")
	}
	st := d.Stats()
	if st.Entries != 1 || st.Saves != 1 || st.LoadHits != 1 || st.Loads != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskStorePersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, 0)
	d.Save("k1", testReport(111))
	d.Save("k2", testReport(222))

	d2 := mustOpen(t, dir, 0)
	if d2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2", d2.Len())
	}
	got, ok := d2.Load("k2")
	if !ok || got.Cycles != 222 {
		t.Fatalf("reopened store lost k2: ok=%v rep=%+v", ok, got)
	}
}

// TestDiskStoreDetectsCorruption pins the integrity contract: a
// truncated or bit-flipped entry is detected by the re-hash, dropped,
// and reported as a miss — the runner then re-executes rather than
// serving garbage.
func TestDiskStoreDetectsCorruption(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(b []byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit-flipped", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// Flip a bit inside the report payload, not the framing.
			c[len(c)/2] ^= 0x08
			return c
		}},
		{"not-json", func(b []byte) []byte { return []byte("}}junk{{") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := mustOpen(t, dir, 0)
			d.Save("victim", testReport(999))

			files, err := os.ReadDir(dir)
			if err != nil || len(files) != 1 {
				t.Fatalf("files=%v err=%v", files, err)
			}
			path := filepath.Join(dir, files[0].Name())
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(b), 0o644); err != nil {
				t.Fatal(err)
			}

			if rep, ok := d.Load("victim"); ok {
				t.Fatalf("corrupt entry served as %+v", rep)
			}
			if st := d.Stats(); st.Corrupt != 1 || st.Entries != 0 {
				t.Fatalf("stats after corruption = %+v", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry file not removed")
			}
		})
	}
}

// TestRunnerHealsCorruptStore drives the corruption path end to end:
// the runner's disk fallback finds a corrupt entry, gets a miss, and
// re-executes — producing the same answer a clean store would have.
func TestRunnerHealsCorruptStore(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, 0)
	r := runplan.NewRunner()
	r.SetDisabled(false)
	r.SetStore(d)

	clean, err := r.Run(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the one stored entry, then force the runner back to disk.
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Fatalf("expected 1 entry, got %d", len(files))
	}
	path := filepath.Join(dir, files[0].Name())
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r.Evict(histSpec().Key())

	healed, err := r.Run(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	if healed.Cycles != clean.Cycles {
		t.Fatalf("healed run disagrees: %d vs %d cycles", healed.Cycles, clean.Cycles)
	}
	c := r.Counters()
	if c.Misses != 2 || c.DiskHits != 0 {
		t.Fatalf("counters = %+v, want 2 misses (corruption forced re-execution)", c)
	}
	// The re-execution re-populated the store with a good entry.
	if _, ok := d.Load(histSpec().Key()); !ok {
		t.Fatal("store not repopulated after healing")
	}
}

// TestDiskStoreLRU pins the size bound: saves beyond the bound evict
// the least-recently-used entries, and a Load refreshes recency.
func TestDiskStoreLRU(t *testing.T) {
	// Probe one entry's on-disk size with an unbounded store.
	dir := t.TempDir()
	probe := mustOpen(t, dir, 0)
	probe.Save("probe", testReport(1))
	size := probe.Bytes()
	if size <= 0 {
		t.Fatal("probe entry has no size")
	}
	os.Remove(filepath.Join(dir, fileFor("probe")))

	// Bound at ~3 entries.
	d3 := mustOpen(t, t.TempDir(), 3*size+size/2)
	for i := 0; i < 3; i++ {
		d3.Save(fmt.Sprintf("k%d", i), testReport(int64(i+1)))
	}
	if d3.Len() != 3 {
		t.Fatalf("store evicted below its bound: %d entries", d3.Len())
	}
	// Touch k0 so k1 is now least recently used, then overflow.
	if _, ok := d3.Load("k0"); !ok {
		t.Fatal("k0 missing")
	}
	d3.Save("k3", testReport(4))
	if d3.Bytes() > 3*size+size/2 {
		t.Fatalf("store over bound: %d > %d", d3.Bytes(), 3*size+size/2)
	}
	if _, ok := d3.Load("k1"); ok {
		t.Fatal("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := d3.Load(k); !ok {
			t.Fatalf("recently used entry %s evicted", k)
		}
	}
	if ev := d3.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

// TestParallelRunsSingleMiss pins the tentpole concurrency contract:
// N concurrent Runs of the same uncached spec over a disk-backed
// runner cost exactly one execution.
func TestParallelRunsSingleMiss(t *testing.T) {
	d := mustOpen(t, t.TempDir(), 0)
	r := runplan.NewRunner()
	r.SetDisabled(false)
	r.SetStore(d)

	const n = 16
	reps := make([]core.Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps[i], errs[i] = r.Run(histSpec())
		}()
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if reps[i].Cycles != reps[0].Cycles {
			t.Fatalf("request %d saw %d cycles, request 0 saw %d", i, reps[i].Cycles, reps[0].Cycles)
		}
	}
	c := r.Counters()
	if c.Misses != 1 {
		t.Fatalf("%d concurrent requests cost %d executions, want exactly 1", n, c.Misses)
	}
	if st := d.Stats(); st.Saves != 1 {
		t.Fatalf("store saves = %d, want 1", st.Saves)
	}
}
