package store

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"taskstream/internal/hostobs"
	"taskstream/internal/sim"
)

// Host-side observability for the delta-serve surface (DESIGN.md §18):
// every request is counted, timed, and sized into the server's hostobs
// registry, exported at GET /metrics (Prometheus text) and GET
// /debug/vars (JSON snapshot), and optionally logged one structured
// line per request. All of it observes the host process only — cache
// keys, reports, and simulation results are untouched.

const (
	helpHTTPReqs  = "HTTP requests served, by route and status code."
	helpHTTPLat   = "Wall-clock HTTP request latency, by route."
	helpHTTPBytes = "HTTP response body bytes written, by route."
)

// knownRoutes is the fixed label set for per-route metrics; anything
// else collapses into "other" so an unauthenticated scanner cannot
// inflate series cardinality.
var knownRoutes = map[string]bool{
	"/v1/run":     true,
	"/v1/suite":   true,
	"/v1/stats":   true,
	"/metrics":    true,
	"/debug/vars": true,
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	return "other"
}

// reqInfo rides the request context so handlers can attach provenance
// (spec key, cache tier) for the access log without widening handler
// signatures.
type reqInfo struct {
	id     int64
	key    string
	cached string
}

type reqInfoKey struct{}

func infoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// obsWriter measures a response as it streams: final status code and
// body bytes. It forwards Flush so the /v1/suite ndjson stream keeps
// its per-item flushing through the instrumentation layer.
type obsWriter struct {
	rw     http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (o *obsWriter) Header() http.Header { return o.rw.Header() }

func (o *obsWriter) WriteHeader(code int) {
	if !o.wrote {
		o.status = code
		o.wrote = true
	}
	o.rw.WriteHeader(code)
}

func (o *obsWriter) Write(b []byte) (int, error) {
	o.wrote = true
	n, err := o.rw.Write(b)
	o.bytes += int64(n)
	return n, err
}

func (o *obsWriter) Flush() {
	if f, ok := o.rw.(http.Flusher); ok {
		f.Flush()
	}
}

// observe is the middleware around the mux: count, time, and size the
// request, then emit the access-log line.
func (s *Server) observe(w http.ResponseWriter, r *http.Request) {
	route := routeLabel(r.URL.Path)
	ri := &reqInfo{id: s.reqSeq.Add(1)}
	ow := &obsWriter{rw: w, status: http.StatusOK}
	t0 := time.Now()
	s.mux.ServeHTTP(ow, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri)))
	d := time.Since(t0)

	s.host.Counter("http_requests_total", helpHTTPReqs,
		"route", route, "code", strconv.Itoa(ow.status)).Inc()
	s.host.Histogram("http_request_seconds", helpHTTPLat, nil, "route", route).Observe(d)
	s.host.Counter("http_response_bytes_total", helpHTTPBytes, "route", route).Add(ow.bytes)
	s.logRequest(ri, r.Method, route, ow.status, ow.bytes, d)
}

// SetRequestLog directs one structured line per completed request to
// w: format "text" (default) for a human-readable line, "json" for a
// machine-parseable object per line. A nil writer disables logging.
func (s *Server) SetRequestLog(w io.Writer, format string) error {
	var jsonFmt bool
	switch format {
	case "", "text":
	case "json":
		jsonFmt = true
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.logW = w
	s.logJSON = jsonFmt
	return nil
}

func (s *Server) logRequest(ri *reqInfo, method, route string, status int, bytes int64, d time.Duration) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.logW == nil {
		return
	}
	ms := float64(d.Nanoseconds()) / 1e6
	ts := time.Now().UTC().Format(time.RFC3339Nano)
	if s.logJSON {
		// Hand-rendered so field order is stable; key and cached are the
		// only variable-content strings and both are %q-escaped.
		fmt.Fprintf(s.logW,
			`{"time":%q,"id":%d,"method":%q,"route":%q,"status":%d,"bytes":%d,"ms":%.3f`,
			ts, ri.id, method, route, status, bytes, ms)
		if ri.key != "" {
			fmt.Fprintf(s.logW, `,"key":%q,"cached":%q`, ri.key, ri.cached)
		}
		fmt.Fprintln(s.logW, "}")
		return
	}
	line := fmt.Sprintf("%s req=%d %s %s %d %dB %.3fms", ts, ri.id, method, route, status, bytes, ms)
	if ri.key != "" {
		line += fmt.Sprintf(" cached=%s key=%s", ri.cached, ri.key)
	}
	fmt.Fprintln(s.logW, line)
}

// Host returns the server's metrics registry, for callers that want to
// add their own series (delta-serve's sim host-profiling gauges) or
// scrape in-process (tests).
func (s *Server) Host() *hostobs.Registry { return s.host }

// EnableHostProf turns on sim host profiling process-wide and exports
// the aggregate attribution as gauges, so a /metrics scrape shows
// where simulation wall time goes while the daemon serves.
func (s *Server) EnableHostProf() {
	sim.SetHostProf(true)
	snap := func(f func(sim.HostProf) int64) func() int64 {
		return func() int64 { return f(sim.HostProfSnapshot()) }
	}
	s.host.GaugeFunc("sim_hostprof_runs", "Profiled engine runs completed.",
		snap(func(p sim.HostProf) int64 { return p.Runs }))
	s.host.GaugeFunc("sim_hostprof_sharded_runs", "Profiled sharded engine runs completed.",
		snap(func(p sim.HostProf) int64 { return p.ShardedRuns }))
	s.host.GaugeFunc("sim_hostprof_total_ns", "Wall nanoseconds inside engine runs.",
		snap(func(p sim.HostProf) int64 { return p.TotalNS }))
	s.host.GaugeFunc("sim_hostprof_serial_ns", "Attributed serial-phase nanoseconds (sharded runs).",
		snap(func(p sim.HostProf) int64 { return p.SerialNS() }))
	s.host.GaugeFunc("sim_hostprof_shard_busy_ns", "Summed per-shard busy nanoseconds.",
		snap(func(p sim.HostProf) int64 { return p.ShardBusyTotalNS() }))
	s.host.GaugeFunc("sim_hostprof_barrier_wait_ns", "Driver nanoseconds idle at the epoch barrier.",
		snap(func(p sim.HostProf) int64 { return p.BarrierWaitNS }))
}

// handleMetrics implements GET /metrics: the Prometheus text
// exposition of every registered series, deterministically ordered.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.host.WritePrometheus(w)
}

// handleVars implements GET /debug/vars: the same series as /metrics
// as one deterministic JSON array.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.host.WriteJSON(w)
}

// instrumentDisk exports the disk store's stats as function gauges.
// They are snapshots of mutex-guarded tallies, so gauges (not
// counters) even for the monotone ones — one scrape takes the store
// mutex once per series, which is noise at scrape rates.
func (s *Server) instrumentDisk() {
	stat := func(f func(StoreStats) int64) func() int64 {
		return func() int64 { return f(s.disk.Stats()) }
	}
	s.host.GaugeFunc("store_entries", "Entries resident in the disk store.",
		stat(func(st StoreStats) int64 { return int64(st.Entries) }))
	s.host.GaugeFunc("store_bytes", "Bytes resident in the disk store.",
		stat(func(st StoreStats) int64 { return st.Bytes }))
	s.host.GaugeFunc("store_max_bytes", "Disk store size bound (0 = unbounded).",
		stat(func(st StoreStats) int64 { return st.MaxBytes }))
	s.host.GaugeFunc("store_loads", "Disk store load attempts.",
		stat(func(st StoreStats) int64 { return st.Loads }))
	s.host.GaugeFunc("store_load_hits", "Disk store loads that hit.",
		stat(func(st StoreStats) int64 { return st.LoadHits }))
	s.host.GaugeFunc("store_corrupt", "Disk store entries rejected by integrity check.",
		stat(func(st StoreStats) int64 { return st.Corrupt }))
	s.host.GaugeFunc("store_saves", "Disk store saves.",
		stat(func(st StoreStats) int64 { return st.Saves }))
	s.host.GaugeFunc("store_evictions", "Disk store LRU evictions.",
		stat(func(st StoreStats) int64 { return st.Evictions }))
}
