package baseline

import (
	"testing"

	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
)

// smallProgram builds a skewed batch of add-constant tasks.
func smallProgram(st *mem.Storage) *core.Program {
	b := fabric.NewBuilder("addk", 1, 1)
	n := b.Add(fabric.OpPass, fabric.InPort(0))
	b.Out(0, n)
	tt := &core.TaskType{
		Name: "addk",
		DFG:  b.MustBuild(),
		Kernel: func(t *core.Task, in [][]uint64, st *mem.Storage) core.Result {
			out := make([]uint64, len(in[0]))
			for i, v := range in[0] {
				out[i] = v + 3
			}
			return core.Result{Out: [][]uint64{out}}
		},
	}
	al := mem.NewAllocator()
	sizes := []int{1200, 80, 80, 80, 80, 80, 80, 80}
	var tasks []core.Task
	for i, sz := range sizes {
		src := al.AllocElems(sz)
		dst := al.AllocElems(sz)
		v := make([]uint64, sz)
		for j := range v {
			v[j] = uint64(j)
		}
		st.WriteElems(src, v)
		tasks = append(tasks, core.Task{
			Type: 0, Key: uint64(i),
			Ins:  []core.InArg{{Kind: core.ArgDRAMLinear, Base: src, N: sz}},
			Outs: []core.OutArg{{Kind: core.OutDRAMLinear, Base: dst, N: sz}},
		})
	}
	return &core.Program{Name: "small", Types: []*core.TaskType{tt}, NumPhases: 1, Tasks: tasks}
}

func TestVariantNames(t *testing.T) {
	want := []string{"static", "dyn-rr", "+lb", "+lb+mc", "delta"}
	for v := Static; v < NumVariants; v++ {
		if v.String() != want[v] {
			t.Fatalf("variant %d name %q, want %q", v, v.String(), want[v])
		}
	}
}

func TestConfigureFlags(t *testing.T) {
	base := config.Default8()
	type flags struct{ lb, mc, fwd bool }
	want := map[Variant]flags{
		Static:    {false, false, false},
		DynamicRR: {false, false, false},
		LB:        {true, false, false},
		LBMC:      {true, true, false},
		Delta:     {true, true, true},
	}
	for v, f := range want {
		cfg, opts := v.Configure(base)
		if cfg.Task.EnableWorkAwareLB != f.lb || cfg.Task.EnableMulticast != f.mc ||
			cfg.Task.EnableForwarding != f.fwd {
			t.Errorf("%v: flags = %v/%v/%v, want %+v", v,
				cfg.Task.EnableWorkAwareLB, cfg.Task.EnableMulticast, cfg.Task.EnableForwarding, f)
		}
		wantPolicy := core.PolicyDynamic
		if v == Static {
			wantPolicy = core.PolicyStatic
		}
		if opts.Policy != wantPolicy {
			t.Errorf("%v: policy = %v, want %v", v, opts.Policy, wantPolicy)
		}
	}
}

func TestAllVariantsRunAndAgree(t *testing.T) {
	var cycles [NumVariants]int64
	var sums [NumVariants]uint64
	for v := Static; v < NumVariants; v++ {
		st := mem.NewStorage()
		prog := smallProgram(st)
		rep, err := Run(v, config.Default8().WithLanes(4), prog, st)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		cycles[v] = rep.Cycles
		// Checksum all outputs.
		al := mem.NewAllocator()
		sizes := []int{1200, 80, 80, 80, 80, 80, 80, 80}
		var sum uint64
		for _, sz := range sizes {
			al.AllocElems(sz)
			dst := al.AllocElems(sz)
			for _, x := range st.ReadElems(dst, sz) {
				sum = sum*31 + x
			}
		}
		sums[v] = sum
	}
	for v := Static + 1; v < NumVariants; v++ {
		if sums[v] != sums[Static] {
			t.Fatalf("variant %v produced different results", v)
		}
	}
	// The mechanisms must not hurt on this skewed single-phase batch:
	// Delta ≤ Static.
	if cycles[Delta] > cycles[Static] {
		t.Fatalf("delta (%d) slower than static (%d)", cycles[Delta], cycles[Static])
	}
	// LB must beat static on a skewed batch.
	if cycles[LB] >= cycles[Static] {
		t.Fatalf("+lb (%d) should beat static (%d)", cycles[LB], cycles[Static])
	}
}
