package baseline

import (
	"bytes"
	"reflect"
	"testing"

	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/obs"
	"taskstream/internal/trace"
	"taskstream/internal/workload"
)

// Sharded execution must be byte-identical to serial (DESIGN.md §16):
// Options.Shards selects an execution strategy, never a result. These
// tests pin that contract across the whole benchmark suite, with and
// without fast-forwarding, and down to the event streams a trace
// recorder or observability sink would see.

// runSuite executes one suite workload under the Delta variant with
// the given extra options, verifies the numerical result, and returns
// the report plus its canonical encoding.
func runSuite(t *testing.T, nb workload.NamedBuilder, mut func(*core.Options)) (core.Report, []byte) {
	t.Helper()
	w := nb.Build()
	cfg, opts := Delta.Configure(config.Default8())
	if mut != nil {
		mut(&opts)
	}
	rep, err := RunCfg(cfg, opts, w.Prog, w.Storage)
	if err != nil {
		t.Fatalf("%s: %v", nb.Name, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s: wrong result: %v", nb.Name, err)
	}
	enc, err := core.EncodeReport(rep)
	if err != nil {
		t.Fatalf("%s: encode: %v", nb.Name, err)
	}
	return rep, enc
}

// TestShardedSuiteIdentity runs every suite workload serial and
// sharded (2 and 8 shards) and requires byte-identical reports.
func TestShardedSuiteIdentity(t *testing.T) {
	for _, nb := range workload.Suite() {
		nb := nb
		t.Run(nb.Name, func(t *testing.T) {
			_, serial := runSuite(t, nb, nil)
			for _, shards := range []int{2, 8} {
				_, sharded := runSuite(t, nb, func(o *core.Options) { o.Shards = shards })
				if !bytes.Equal(serial, sharded) {
					t.Errorf("%s: shards=%d report diverged from serial\nserial:  %s\nsharded: %s",
						nb.Name, shards, serial, sharded)
				}
			}
		})
	}
}

// TestShardedIdentityNoFastForward re-pins the identity with the
// event-horizon skipper disabled, so the sharded non-FF step path is
// covered too (a subset keeps the run time bounded).
func TestShardedIdentityNoFastForward(t *testing.T) {
	for _, name := range []string{"spmv", "sort", "gemm"} {
		nb := workload.ByName(name)
		if nb == nil {
			t.Fatalf("suite workload %q missing", name)
		}
		_, serial := runSuite(t, *nb, func(o *core.Options) { o.DisableFastForward = true })
		_, sharded := runSuite(t, *nb, func(o *core.Options) {
			o.DisableFastForward = true
			o.Shards = 8
		})
		if !bytes.Equal(serial, sharded) {
			t.Errorf("%s: non-FF sharded report diverged from serial", name)
		}
	}
}

// TestShardedTraceIdentity requires the task-lifecycle event stream —
// order included — to match between serial and sharded runs. Trace
// records from the parallel phase are deferred through lane outboxes,
// so this pins the barrier's ordering contract.
func TestShardedTraceIdentity(t *testing.T) {
	for _, name := range []string{"spmv", "bfs"} {
		rs := trace.New(0)
		rp := trace.New(0)
		_, serial := runSuite(t, *workload.ByName(name), func(o *core.Options) { o.Trace = rs })
		_, sharded := runSuite(t, *workload.ByName(name), func(o *core.Options) {
			o.Trace = rp
			o.Shards = 8
		})
		if !bytes.Equal(serial, sharded) {
			t.Errorf("%s: traced sharded report diverged from serial", name)
		}
		if !reflect.DeepEqual(rs.Events(), rp.Events()) {
			t.Errorf("%s: trace event streams diverged (serial %d events, sharded %d)",
				name, rs.Len(), rp.Len())
		}
	}
}

// TestShardedObsIdentity requires the observability event stream to
// match between serial and sharded runs: lane events are staged in
// per-lane buffers and flushed at the barrier in lane order, which
// must reproduce the serial per-cycle emission order exactly.
func TestShardedObsIdentity(t *testing.T) {
	ss := obs.New(0)
	sp := obs.New(0)
	_, serial := runSuite(t, *workload.ByName("join"), func(o *core.Options) { o.Obs = ss })
	_, sharded := runSuite(t, *workload.ByName("join"), func(o *core.Options) {
		o.Obs = sp
		o.Shards = 8
	})
	if !bytes.Equal(serial, sharded) {
		t.Error("join: observed sharded report diverged from serial")
	}
	sev, pev := ss.Events(), sp.Events()
	if len(sev) != len(pev) {
		t.Fatalf("join: obs event counts diverged: serial %d, sharded %d", len(sev), len(pev))
	}
	for i := range sev {
		if sev[i] != pev[i] {
			t.Fatalf("join: obs event %d diverged:\nserial:  %+v\nsharded: %+v", i, sev[i], pev[i])
		}
	}
}
