package baseline

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/workload"
)

// The scheduler refactor (DESIGN.md §17) moved the dynamic and static
// dispatch policies behind the core.Scheduler interface. These tests
// pin that the move changed nothing observable: the committed testdata
// files hold the canonical report encoding of every suite workload
// captured from the pre-refactor coordinator, and the refactored
// schedulers must reproduce them byte for byte — with fast-forwarding
// on or off and at any shard count.

// readGolden parses testdata/<name>: one "<workload> <report-json>"
// line per suite workload.
func readGolden(t *testing.T, name string) map[string][]byte {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	defer f.Close()
	out := make(map[string][]byte)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		sp := bytes.IndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("golden file %s: malformed line %q", name, line)
		}
		out[string(line[:sp])] = append([]byte(nil), line[sp+1:]...)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("golden file %s: %v", name, err)
	}
	return out
}

// goldenVariants are the execution strategies that must all reproduce
// the committed pre-refactor bytes: plain, fast-forward disabled, and
// sharded (both contracts say the strategy never changes the result).
var goldenVariants = []struct {
	name string
	mut  func(*core.Options)
}{
	{"base", nil},
	{"noff", func(o *core.Options) { o.DisableFastForward = true }},
	{"shards8", func(o *core.Options) { o.Shards = 8 }},
}

func testPolicyGolden(t *testing.T, variant Variant, goldenFile string) {
	golden := readGolden(t, goldenFile)
	for _, nb := range workload.Suite() {
		want, ok := golden[nb.Name]
		if !ok {
			t.Fatalf("golden file %s is missing workload %s", goldenFile, nb.Name)
		}
		nb := nb
		t.Run(nb.Name, func(t *testing.T) {
			for _, gv := range goldenVariants {
				w := nb.Build()
				cfg, opts := variant.Configure(config.Default8())
				if gv.mut != nil {
					gv.mut(&opts)
				}
				rep, err := RunCfg(cfg, opts, w.Prog, w.Storage)
				if err != nil {
					t.Fatalf("%s: %v", gv.name, err)
				}
				if err := w.Verify(); err != nil {
					t.Fatalf("%s: wrong result: %v", gv.name, err)
				}
				enc, err := core.EncodeReport(rep)
				if err != nil {
					t.Fatalf("%s: encode: %v", gv.name, err)
				}
				if !bytes.Equal(enc, want) {
					t.Errorf("%s: report diverged from pre-refactor golden\ngot:  %s\nwant: %s",
						gv.name, enc, want)
				}
			}
		})
	}
}

// TestDefaultPolicyGoldenSuite: the refactored dynamic scheduler is
// byte-identical to the pre-refactor coordinator on the full suite.
func TestDefaultPolicyGoldenSuite(t *testing.T) {
	testPolicyGolden(t, Delta, "default_policy_golden.txt")
}

// TestStaticPolicyGoldenSuite: same pin for the static comparator.
func TestStaticPolicyGoldenSuite(t *testing.T) {
	testPolicyGolden(t, Static, "static_policy_golden.txt")
}

// TestNewPolicySuiteIdentity extends the two execution-strategy
// contracts (§11 fast-forwarding, §16 sharding) to the new schedulers:
// streamgraph and pipeline runs must also be byte-identical with
// fast-forwarding off and when sharded, and must still verify.
func TestNewPolicySuiteIdentity(t *testing.T) {
	for _, policy := range []core.Policy{core.PolicyStreamGraph, core.PolicyPipeline} {
		for _, name := range []string{"spmv", "sort", "join", "kmeans"} {
			nb := workload.ByName(name)
			if nb == nil {
				t.Fatalf("suite workload %q missing", name)
			}
			t.Run(fmt.Sprintf("%s/%s", policy, name), func(t *testing.T) {
				var base []byte
				for _, gv := range goldenVariants {
					w := nb.Build()
					cfg, opts := Delta.Configure(config.Default8())
					opts.Policy = policy
					if gv.mut != nil {
						gv.mut(&opts)
					}
					rep, err := RunCfg(cfg, opts, w.Prog, w.Storage)
					if err != nil {
						t.Fatalf("%s: %v", gv.name, err)
					}
					if err := w.Verify(); err != nil {
						t.Fatalf("%s: wrong result: %v", gv.name, err)
					}
					enc, err := core.EncodeReport(rep)
					if err != nil {
						t.Fatalf("%s: encode: %v", gv.name, err)
					}
					if base == nil {
						base = enc
					} else if !bytes.Equal(base, enc) {
						t.Errorf("%s: report diverged from base run\nbase: %s\ngot:  %s",
							gv.name, base, enc)
					}
				}
			})
		}
	}
}
