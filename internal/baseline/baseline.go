// Package baseline defines the execution-model variants Delta is
// compared against, most importantly the paper's comparator: an
// equivalent static-parallel design — the same lanes, fabric, stream
// engines, NoC, and DRAM, driven by compile-time work partitioning with
// phase barriers, memory-mediated dependences, and unicast fetches.
//
// The intermediate variants stage the three TaskStream mechanisms one
// at a time for the ablation experiment.
package baseline

import (
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/mem"

	// Register the delta-vet verifier so every Configure'd run gets
	// pre-flight checking via core.Options.Vet.
	_ "taskstream/internal/analysis"
)

// Variant names one execution model in the Static→Delta spectrum.
type Variant int

const (
	// Static is the paper's comparator: compile-time block
	// partitioning, barriers, memory-mediated dependences, unicast.
	Static Variant = iota
	// DynamicRR adds run-time dispatch (round-robin, work-oblivious)
	// but none of the TaskStream mechanisms.
	DynamicRR
	// LB adds work-aware load balancing.
	LB
	// LBMC adds multicast read sharing on top of LB.
	LBMC
	// Delta is the full TaskStream model: LB + multicast + pipelined
	// dependence forwarding.
	Delta
	// NumVariants counts the variants.
	NumVariants
)

// String returns the variant's display name.
func (v Variant) String() string {
	switch v {
	case Static:
		return "static"
	case DynamicRR:
		return "dyn-rr"
	case LB:
		return "+lb"
	case LBMC:
		return "+lb+mc"
	case Delta:
		return "delta"
	default:
		return "unknown"
	}
}

// Configure returns the machine configuration and options realizing the
// variant on top of the given datapath description. Every variant vets
// the program statically before wiring the machine (Options.Vet).
//
// The run-time-dispatch variants resolve their scheduler through
// core.AmbientPolicy (TASKSTREAM_POLICY / delta-bench -policy), so the
// whole experiment suite can be swept under an alternative policy; the
// Static variant stays pinned to PolicyStatic — it is the comparator.
// The resolved policy lands in Options.Policy and therefore in every
// spec's cache key.
func (v Variant) Configure(cfg config.Config) (config.Config, core.Options) {
	switch v {
	case Static:
		return cfg.StaticModel(), core.Options{Policy: core.PolicyStatic, Vet: true}
	case DynamicRR:
		c := cfg.StaticModel()
		return c, core.Options{Policy: core.AmbientPolicy(), Vet: true}
	case LB:
		c := cfg.StaticModel()
		c.Task.EnableWorkAwareLB = true
		return c, core.Options{Policy: core.AmbientPolicy(), Vet: true}
	case LBMC:
		c := cfg.StaticModel()
		c.Task.EnableWorkAwareLB = true
		c.Task.EnableMulticast = true
		return c, core.Options{Policy: core.AmbientPolicy(), Vet: true}
	default:
		c := cfg
		c.Task.EnableWorkAwareLB = true
		c.Task.EnableMulticast = true
		c.Task.EnableForwarding = true
		return c, core.Options{Policy: core.AmbientPolicy(), Vet: true}
	}
}

// Run executes prog under the variant and returns the report. The
// storage carries the workload's pre-initialized data and receives its
// results.
func Run(v Variant, cfg config.Config, prog *core.Program, st *mem.Storage) (core.Report, error) {
	mcfg, opts := v.Configure(cfg)
	return RunCfg(mcfg, opts, prog, st)
}

// RunCfg executes prog under an explicit configuration and options —
// the escape hatch sensitivity sweeps use to vary machine parameters
// beyond the named variants.
func RunCfg(cfg config.Config, opts core.Options, prog *core.Program, st *mem.Storage) (core.Report, error) {
	m, err := core.NewMachine(cfg, prog, st, opts)
	if err != nil {
		return core.Report{}, err
	}
	return m.Run()
}
