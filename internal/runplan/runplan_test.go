package runplan

import (
	"strings"
	"sync"
	"testing"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/trace"
	"taskstream/internal/workload"
)

// histSpec is the cheapest suite workload under the delta variant —
// the test fixture for runner behavior.
func histSpec() Spec {
	return ForVariant(*workload.ByName("hist"), baseline.Delta, config.Default8())
}

func TestSpecKeyIdentity(t *testing.T) {
	a, b := histSpec(), histSpec()
	if a.Key() != b.Key() {
		t.Fatalf("equal specs produced different keys:\n%s\n%s", a.Key(), b.Key())
	}
	// Every axis of the spec must reach the key.
	other := histSpec()
	other.Workload.Name = "hist2"
	if other.Key() == a.Key() {
		t.Error("workload name does not affect the key")
	}
	other = histSpec()
	other.Config.Lanes = 4
	if other.Key() == a.Key() {
		t.Error("config does not affect the key")
	}
	other = histSpec()
	other.Opts.Hints = core.HintNone
	if other.Key() == a.Key() {
		t.Error("options do not affect the key")
	}
	// Variants must never alias: static and delta configure different
	// machines for the same workload.
	if ForVariant(*workload.ByName("hist"), baseline.Static, config.Default8()).Key() == a.Key() {
		t.Error("static and delta variants share a key")
	}
}

func TestSpecKeyIgnoresTrace(t *testing.T) {
	a := histSpec()
	b := histSpec()
	b.Opts.Trace = trace.New(0)
	if a.Key() != b.Key() {
		t.Error("trace recorder leaked into the cache key")
	}
	if a.Cacheable() == false {
		t.Error("untraced spec should be cacheable")
	}
	if b.Cacheable() {
		t.Error("traced spec must not be cacheable")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	first, err := r.Run(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cycles != second.Cycles {
		t.Fatalf("cached run disagrees: %d vs %d cycles", first.Cycles, second.Cycles)
	}
	c := r.Counters()
	if c.Misses != 1 || c.Hits != 1 || c.Bypasses != 0 {
		t.Fatalf("counters = %+v, want 1 miss + 1 hit", c)
	}

	// Copy-out: mutating a handed-out report must not corrupt the cache.
	second.LaneBusy[0] = -1
	second.Stats.SetVal("cycles", -1)
	third, err := r.Run(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	if third.LaneBusy[0] == -1 || third.Stats.Get("cycles") == -1 {
		t.Fatal("mutation of a returned report reached the cached result")
	}
}

func TestRunnerSingleFlight(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	const n = 8
	reps := make([]core.Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps[i], errs[i] = r.Run(histSpec())
		}()
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if reps[i].Cycles != reps[0].Cycles {
			t.Fatalf("request %d saw %d cycles, request 0 saw %d", i, reps[i].Cycles, reps[0].Cycles)
		}
	}
	c := r.Counters()
	if c.Misses != 1 {
		t.Fatalf("%d misses for one spec requested %d times concurrently, want exactly 1", c.Misses, n)
	}
	if c.Hits+c.Dedups != n-1 {
		t.Fatalf("hits %d + dedups %d != %d", c.Hits, c.Dedups, n-1)
	}
}

func TestRunnerDisabledAndTraceBypass(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(true)
	if _, err := r.Run(histSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(histSpec()); err != nil {
		t.Fatal(err)
	}
	if c := r.Counters(); c.Bypasses != 2 || c.Misses != 0 || c.Hits != 0 {
		t.Fatalf("disabled runner counters = %+v, want 2 bypasses only", c)
	}

	r.SetDisabled(false)
	s := histSpec()
	s.Opts.Trace = trace.New(0)
	if _, err := r.Run(s); err != nil {
		t.Fatal(err)
	}
	if c := r.Counters(); c.Bypasses != 3 {
		t.Fatalf("traced spec did not bypass the cache: %+v", c)
	}
}

func TestRunnerMemoizesErrors(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	bad := histSpec()
	bad.Config.Lanes = 0 // fails config validation inside the machine build
	_, err1 := r.Run(bad)
	if err1 == nil {
		t.Fatal("invalid config ran successfully")
	}
	if !strings.Contains(err1.Error(), "hist") {
		t.Fatalf("error not attributed to the workload: %v", err1)
	}
	_, err2 := r.Run(bad)
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("cached error differs: %v vs %v", err2, err1)
	}
	if c := r.Counters(); c.Misses != 1 || c.Hits != 1 {
		t.Fatalf("failing spec counters = %+v, want 1 miss + 1 hit", c)
	}
}

func TestRunnerReset(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	if _, err := r.Run(histSpec()); err != nil {
		t.Fatal(err)
	}
	r.Reset()
	if c := r.Counters(); c != (Counters{}) {
		t.Fatalf("counters after Reset = %+v", c)
	}
	if _, err := r.Run(histSpec()); err != nil {
		t.Fatal(err)
	}
	if c := r.Counters(); c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("counters after Reset+Run = %+v, want a fresh miss", c)
	}
}
