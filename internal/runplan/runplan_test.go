package runplan

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/hostobs"
	"taskstream/internal/trace"
	"taskstream/internal/workload"
)

// histSpec is the cheapest suite workload under the delta variant —
// the test fixture for runner behavior.
func histSpec() Spec {
	return ForVariant(*workload.ByName("hist"), baseline.Delta, config.Default8())
}

func TestSpecKeyIdentity(t *testing.T) {
	a, b := histSpec(), histSpec()
	if a.Key() != b.Key() {
		t.Fatalf("equal specs produced different keys:\n%s\n%s", a.Key(), b.Key())
	}
	// Every axis of the spec must reach the key.
	other := histSpec()
	other.Workload.Name = "hist2"
	if other.Key() == a.Key() {
		t.Error("workload name does not affect the key")
	}
	other = histSpec()
	other.Config.Lanes = 4
	if other.Key() == a.Key() {
		t.Error("config does not affect the key")
	}
	other = histSpec()
	other.Opts.Hints = core.HintNone
	if other.Key() == a.Key() {
		t.Error("options do not affect the key")
	}
	// Variants must never alias: static and delta configure different
	// machines for the same workload.
	if ForVariant(*workload.ByName("hist"), baseline.Static, config.Default8()).Key() == a.Key() {
		t.Error("static and delta variants share a key")
	}
}

func TestSpecKeyIgnoresTrace(t *testing.T) {
	a := histSpec()
	b := histSpec()
	b.Opts.Trace = trace.New(0)
	if a.Key() != b.Key() {
		t.Error("trace recorder leaked into the cache key")
	}
	if a.Cacheable() == false {
		t.Error("untraced spec should be cacheable")
	}
	if b.Cacheable() {
		t.Error("traced spec must not be cacheable")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	first, err := r.Run(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cycles != second.Cycles {
		t.Fatalf("cached run disagrees: %d vs %d cycles", first.Cycles, second.Cycles)
	}
	c := r.Counters()
	if c.Misses != 1 || c.Hits != 1 || c.Bypasses != 0 {
		t.Fatalf("counters = %+v, want 1 miss + 1 hit", c)
	}

	// Copy-out: mutating a handed-out report must not corrupt the cache.
	second.LaneBusy[0] = -1
	second.Stats.SetVal("cycles", -1)
	third, err := r.Run(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	if third.LaneBusy[0] == -1 || third.Stats.Get("cycles") == -1 {
		t.Fatal("mutation of a returned report reached the cached result")
	}
}

func TestRunnerSingleFlight(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	const n = 8
	reps := make([]core.Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps[i], errs[i] = r.Run(histSpec())
		}()
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if reps[i].Cycles != reps[0].Cycles {
			t.Fatalf("request %d saw %d cycles, request 0 saw %d", i, reps[i].Cycles, reps[0].Cycles)
		}
	}
	c := r.Counters()
	if c.Misses != 1 {
		t.Fatalf("%d misses for one spec requested %d times concurrently, want exactly 1", c.Misses, n)
	}
	if c.Hits+c.Dedups != n-1 {
		t.Fatalf("hits %d + dedups %d != %d", c.Hits, c.Dedups, n-1)
	}
}

func TestRunnerDisabledAndTraceBypass(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(true)
	if _, err := r.Run(histSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(histSpec()); err != nil {
		t.Fatal(err)
	}
	if c := r.Counters(); c.Bypasses != 2 || c.Misses != 0 || c.Hits != 0 {
		t.Fatalf("disabled runner counters = %+v, want 2 bypasses only", c)
	}

	r.SetDisabled(false)
	s := histSpec()
	s.Opts.Trace = trace.New(0)
	if _, err := r.Run(s); err != nil {
		t.Fatal(err)
	}
	if c := r.Counters(); c.Bypasses != 3 {
		t.Fatalf("traced spec did not bypass the cache: %+v", c)
	}
}

func TestRunnerDoesNotMemoizeErrors(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	bad := histSpec()
	bad.Config.Lanes = 0 // fails config validation inside the machine build
	_, err1 := r.Run(bad)
	if err1 == nil {
		t.Fatal("invalid config ran successfully")
	}
	if !strings.Contains(err1.Error(), "hist") {
		t.Fatalf("error not attributed to the workload: %v", err1)
	}
	// The failed flight must be evicted, not memoized: a retry
	// re-executes (and here fails again, since the spec is always bad).
	_, err2 := r.Run(bad)
	if err2 == nil {
		t.Fatal("retry of a failing spec reported success")
	}
	if c := r.Counters(); c.Misses != 2 || c.Hits != 0 {
		t.Fatalf("failing spec counters = %+v, want 2 misses (retry re-executed)", c)
	}
	if r.Len() != 0 {
		t.Fatalf("failed flight left %d poisoned cache entries", r.Len())
	}
}

// TestRunnerRetriesAfterTransientFailure pins the error-poisoning fix
// end to end: a spec that fails exactly once (injected verification
// failure) must succeed on the next Run instead of serving the stale
// error forever.
func TestRunnerRetriesAfterTransientFailure(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	var failures atomic.Int32
	failures.Store(1)
	s := histSpec()
	inner := s.Workload.Build
	s.Workload = workload.NamedBuilder{
		Name: "hist-transient",
		Build: func() *workload.Workload {
			w := inner()
			if failures.Add(-1) >= 0 {
				w.Verify = func() error { return errors.New("injected transient fault") }
			}
			return w
		},
	}
	if _, err := r.Run(s); err == nil {
		t.Fatal("injected failure did not surface")
	}
	rep, err := r.Run(s)
	if err != nil {
		t.Fatalf("retry after transient failure still fails: %v", err)
	}
	if rep.Cycles <= 0 {
		t.Fatalf("retry produced an empty report: %+v", rep)
	}
	// And the recovered result is now cached like any other.
	if _, err := r.Run(s); err != nil {
		t.Fatal(err)
	}
	if c := r.Counters(); c.Misses != 2 || c.Hits != 1 {
		t.Fatalf("counters = %+v, want 2 misses (fail + retry) and 1 hit", c)
	}
}

// TestRunnerPanicReleasesWaiters pins the waiter-deadlock fix: a
// panicking workload builder must fail the request (and its deduped
// waiters) with an error instead of leaving f.done unclosed forever.
func TestRunnerPanicReleasesWaiters(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	started := make(chan struct{})
	release := make(chan struct{})
	s := histSpec()
	s.Workload = workload.NamedBuilder{
		Name: "hist-panics",
		Build: func() *workload.Workload {
			close(started)
			<-release // hold the flight open until a waiter dedups onto it
			panic("injected builder panic")
		},
	}

	errc := make(chan error, 2)
	go func() {
		_, err := r.Run(s)
		errc <- err
	}()
	<-started
	go func() {
		_, err := r.Run(s)
		errc <- err
	}()
	// Wait for the second request to park on the flight, then let the
	// builder panic.
	deadline := time.After(5 * time.Second)
	for r.Counters().Dedups == 0 {
		select {
		case <-deadline:
			t.Fatal("second request never deduped onto the flight")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if err == nil || !strings.Contains(err.Error(), "panic") {
				t.Fatalf("request %d: got %v, want a panic-converted error", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("waiter deadlocked on a panicked flight")
		}
	}
	// The panicked flight is evicted like any failure: a retry with a
	// healthy builder under the same name must execute and succeed.
	if r.Len() != 0 {
		t.Fatalf("panicked flight left %d cache entries", r.Len())
	}
}

// TestRunnerHonorsEnvAtRunTime pins the env-snapshot fix: flipping
// TASKSTREAM_NO_RUNCACHE after the runner was constructed must take
// effect on the next Run (the documented whole-binary contract), not
// be silently ignored because NewRunner read it once.
func TestRunnerHonorsEnvAtRunTime(t *testing.T) {
	t.Setenv("TASKSTREAM_NO_RUNCACHE", "")
	r := NewRunner() // constructed while the cache is enabled
	t.Setenv("TASKSTREAM_NO_RUNCACHE", "1")
	if !r.Disabled() {
		t.Fatal("env set after NewRunner was ignored")
	}
	if _, err := r.Run(histSpec()); err != nil {
		t.Fatal(err)
	}
	if c := r.Counters(); c.Bypasses != 1 || c.Misses != 0 {
		t.Fatalf("counters with env disable = %+v, want 1 bypass", c)
	}
	t.Setenv("TASKSTREAM_NO_RUNCACHE", "")
	if r.Disabled() {
		t.Fatal("env cleared after NewRunner was ignored")
	}
	if _, err := r.Run(histSpec()); err != nil {
		t.Fatal(err)
	}
	if c := r.Counters(); c.Misses != 1 {
		t.Fatalf("counters after env re-enable = %+v, want 1 miss", c)
	}
	// An explicit SetDisabled pins the state over the environment.
	t.Setenv("TASKSTREAM_NO_RUNCACHE", "1")
	r.SetDisabled(false)
	if r.Disabled() {
		t.Fatal("SetDisabled(false) did not override the environment")
	}
}

// fakeStore is an in-memory Store for hook tests.
type fakeStore struct {
	mu    sync.Mutex
	m     map[string]core.Report
	loads int
	saves int
}

func newFakeStore() *fakeStore { return &fakeStore{m: make(map[string]core.Report)} }

func (fs *fakeStore) Load(key string) (core.Report, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.loads++
	rep, ok := fs.m[key]
	return rep.Clone(), ok
}

func (fs *fakeStore) Save(key string, rep core.Report) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.saves++
	fs.m[key] = rep.Clone()
}

func TestRunnerSecondLevelStore(t *testing.T) {
	fs := newFakeStore()
	r := NewRunner()
	r.SetDisabled(false)
	r.SetStore(fs)

	rep, src, err := r.RunInfo(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceExecuted {
		t.Fatalf("cold run source = %v, want miss", src)
	}
	if fs.saves != 1 {
		t.Fatalf("store saves = %d, want 1", fs.saves)
	}

	// In-memory hit wins before the store is consulted.
	loadsBefore := fs.loads
	_, src, err = r.RunInfo(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceMemory || fs.loads != loadsBefore {
		t.Fatalf("warm run source = %v (loads %d→%d), want memory with no store load",
			src, loadsBefore, fs.loads)
	}

	// Dropping the in-memory entry falls back to the store, not a
	// re-execution.
	r.Evict(histSpec().Key())
	rep2, src, err := r.RunInfo(histSpec())
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceDisk {
		t.Fatalf("post-evict source = %v, want disk", src)
	}
	if rep2.Cycles != rep.Cycles {
		t.Fatalf("store round-trip changed the result: %d vs %d cycles", rep2.Cycles, rep.Cycles)
	}
	c := r.Counters()
	if c.Misses != 1 || c.DiskHits != 1 {
		t.Fatalf("counters = %+v, want 1 miss + 1 disk hit", c)
	}
}

func TestRunnerReset(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	if _, err := r.Run(histSpec()); err != nil {
		t.Fatal(err)
	}
	r.Reset()
	if c := r.Counters(); c != (Counters{}) {
		t.Fatalf("counters after Reset = %+v", c)
	}
	if _, err := r.Run(histSpec()); err != nil {
		t.Fatal(err)
	}
	if c := r.Counters(); c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("counters after Reset+Run = %+v, want a fresh miss", c)
	}
}

// TestInstrumentHostReconciles pins the single-source-of-truth
// contract: a /metrics scrape of an instrumented runner and a
// Counters() snapshot report the same tier tallies, and the latency
// histograms record exactly one observation per resolution.
func TestInstrumentHostReconciles(t *testing.T) {
	r := NewRunner()
	r.SetDisabled(false)
	reg := hostobs.NewRegistry()
	r.InstrumentHost(reg)

	if _, err := r.Run(histSpec()); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := r.Run(histSpec()); err != nil { // memory hit
		t.Fatal(err)
	}
	traced := histSpec()
	traced.Opts.Trace = trace.New(0)
	if _, _, err := r.RunInfo(traced); err != nil { // bypass
		t.Fatal(err)
	}

	c := r.Counters()
	if c.Misses != 1 || c.Hits != 1 || c.Bypasses != 1 {
		t.Fatalf("counters = %+v, want 1 miss + 1 hit + 1 bypass", c)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, want := range []string{
		`runner_resolves_total{tier="miss"} 1`,
		`runner_resolves_total{tier="memory"} 1`,
		`runner_resolves_total{tier="bypass"} 1`,
		`runner_resolves_total{tier="disk"} 0`,
		`runner_resolves_total{tier="dedup"} 0`,
		`runner_memory_entries 1`,
		`runner_resolve_seconds_count{tier="miss"} 1`,
		`runner_resolve_seconds_count{tier="memory"} 1`,
		`runner_resolve_seconds_count{tier="bypass"} 1`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q:\n%s", want, scrape)
		}
	}

	// Counter identity survives Reset: the registry holds the runner's
	// own instances, so the scrape tracks the snapshot after zeroing.
	r.Reset()
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `runner_resolves_total{tier="miss"} 0`) {
		t.Fatalf("scrape after Reset still shows stale counts:\n%s", buf.String())
	}
}
