package runplan_test

import (
	"encoding/json"
	"testing"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/runplan"
	"taskstream/internal/trace"
	"taskstream/internal/workload"

	// Extends the workload name grammar with "+inferred", which E15's
	// wire specs need.
	_ "taskstream/internal/analysis/infer"
)

// roundTrip pushes a spec through Wire → JSON → WireSpec → Spec and
// fails unless the reconstructed spec has the identical content
// address (the property that makes remote resolution transparent to
// the cache).
func roundTrip(t *testing.T, s runplan.Spec) runplan.Spec {
	t.Helper()
	w, err := s.Wire()
	if err != nil {
		t.Fatalf("%s: Wire: %v", s.Workload.Name, err)
	}
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var w2 runplan.WireSpec
	if err := json.Unmarshal(b, &w2); err != nil {
		t.Fatal(err)
	}
	s2, err := w2.Spec()
	if err != nil {
		t.Fatalf("%s: WireSpec.Spec: %v", s.Workload.Name, err)
	}
	if s2.Key() != s.Key() {
		t.Fatalf("wire round-trip changed the content address:\n  %s\n  %s", s.Key(), s2.Key())
	}
	return s2
}

func TestWireRoundTripSuite(t *testing.T) {
	cfg := config.Default8()
	for _, nb := range workload.Suite() {
		roundTrip(t, runplan.ForVariant(nb, baseline.Static, cfg))
		roundTrip(t, runplan.ForVariant(nb, baseline.Delta, cfg))
	}
}

func TestWireRoundTripParameterizedNames(t *testing.T) {
	cfg := config.Default8().WithLanes(16)
	grain, err := workload.Resolve("spmv-g64")
	if err != nil {
		t.Fatal(err)
	}
	s2 := roundTrip(t, runplan.ForVariant(grain, baseline.Delta, cfg))
	if s2.Config.Lanes != 16 {
		t.Fatalf("config lost in transit: lanes = %d", s2.Config.Lanes)
	}

	inferred, err := workload.Resolve("hist+inferred")
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, runplan.ForVariant(inferred, baseline.Delta, cfg))
}

func TestWireRejectsUncacheable(t *testing.T) {
	s := runplan.ForVariant(*workload.ByName("hist"), baseline.Delta, config.Default8())
	s.Opts.Trace = trace.New(0)
	if _, err := s.Wire(); err == nil {
		t.Fatal("traced spec crossed the wire")
	}
}

func TestWireSpecRejectsBadInputs(t *testing.T) {
	good, err := runplan.ForVariant(*workload.ByName("hist"), baseline.Delta, config.Default8()).Wire()
	if err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Workload = "no-such-workload"
	if _, err := bad.Spec(); err == nil {
		t.Error("unknown workload name resolved")
	}
	bad = good
	bad.Config.Lanes = 0
	if _, err := bad.Spec(); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestWirePolicyRoundTrip pins that the policy crosses the wire by its
// canonical name: every policy survives the round-trip with its content
// address intact, an omitted name means dynamic, and an unknown name is
// rejected before anything executes.
func TestWirePolicyRoundTrip(t *testing.T) {
	cfg := config.Default8()
	nb := *workload.ByName("hist")
	for p := core.Policy(0); p < core.NumPolicies; p++ {
		s := runplan.ForVariant(nb, baseline.Delta, cfg)
		s.Opts.Policy = p
		s2 := roundTrip(t, s)
		if s2.Opts.Policy != p {
			t.Errorf("policy %s arrived as %s", p, s2.Opts.Policy)
		}
	}

	w, err := runplan.ForVariant(nb, baseline.Delta, cfg).Wire()
	if err != nil {
		t.Fatal(err)
	}
	w.Opts.Policy = ""
	s, err := w.Spec()
	if err != nil {
		t.Fatalf("empty policy name rejected: %v", err)
	}
	if s.Opts.Policy != core.PolicyDynamic {
		t.Fatalf("empty policy name resolved to %s, want dynamic", s.Opts.Policy)
	}

	w.Opts.Policy = "fifo"
	if _, err := w.Spec(); err == nil {
		t.Fatal("unknown policy name resolved")
	}
}
