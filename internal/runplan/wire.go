package runplan

import (
	"fmt"

	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/sim"
	"taskstream/internal/workload"
)

// WireSpec is a Spec crossing a process boundary: the workload
// reduced to its canonical name (rebuilt on the far side via
// workload.Resolve — the spec-identity contract says the name
// determines the builder), the full machine config, and the
// normalized options. Trace recorders and observability sinks cannot
// cross the wire; a spec carrying one is not cacheable and must be
// executed locally instead of serialized.
type WireSpec struct {
	Workload string        `json:"workload"`
	Config   config.Config `json:"config"`
	Opts     WireOptions   `json:"opts"`
}

// WireOptions is the serializable subset of core.Options — exactly
// the fields Options.CacheKey encodes, so a wire round-trip preserves
// the spec's content address. The policy crosses the wire by its
// canonical name rather than its enum value, so the protocol stays
// readable and unknown policies fail with a client-attributable error;
// an empty name means "the daemon's default policy" (delta-serve
// -policy, dynamic unless overridden).
type WireOptions struct {
	Policy             string `json:"policy,omitempty"`
	Hints              uint8  `json:"hints"`
	MaxCycles          int64  `json:"max_cycles,omitempty"`
	Vet                bool   `json:"vet,omitempty"`
	DisableFastForward bool   `json:"disable_fast_forward,omitempty"`
}

// Wire converts the spec to its serialized form. Uncacheable specs
// (live trace recorder or obs sink) are rejected: their side channels
// cannot cross a process boundary, so sending one would silently
// change its meaning.
func (s Spec) Wire() (WireSpec, error) {
	if !s.Cacheable() {
		return WireSpec{}, fmt.Errorf("runplan: spec %s is not cacheable (attached trace/obs side channel) and cannot cross the wire", s.Workload.Name)
	}
	n := s.Opts.Normalized()
	return WireSpec{
		Workload: s.Workload.Name,
		Config:   s.Config,
		Opts: WireOptions{
			Policy:             n.Policy.String(),
			Hints:              uint8(n.Hints),
			MaxCycles:          int64(n.MaxCycles),
			Vet:                n.Vet,
			DisableFastForward: n.DisableFastForward,
		},
	}, nil
}

// Spec rebuilds the runnable spec: the workload name resolves to its
// builder, the policy name parses, and the config is validated before
// anything executes, so a malformed wire spec fails fast with a
// client-attributable error. An empty policy name means PolicyDynamic;
// daemons with a different default rewrite it before calling Spec.
func (w WireSpec) Spec() (Spec, error) {
	nb, err := workload.Resolve(w.Workload)
	if err != nil {
		return Spec{}, err
	}
	policy := core.PolicyDynamic
	if w.Opts.Policy != "" {
		if policy, err = core.ParsePolicy(w.Opts.Policy); err != nil {
			return Spec{}, err
		}
	}
	if err := w.Config.Validate(); err != nil {
		return Spec{}, err
	}
	return Spec{
		Workload: nb,
		Config:   w.Config,
		Opts: core.Options{
			Policy:             policy,
			Hints:              core.HintMode(w.Opts.Hints),
			MaxCycles:          sim.Cycle(w.Opts.MaxCycles),
			Vet:                w.Opts.Vet,
			DisableFastForward: w.Opts.DisableFastForward,
		},
	}, nil
}
