// Package runplan makes one simulation a declarative, comparable
// value. A Spec names everything that determines a run's result —
// which workload to build, the machine configuration, and the
// execution-model options — and canonically fingerprints it, so two
// experiments that describe the same simulation describe *equal*
// specs. The memoizing Runner exploits that: each distinct spec
// executes at most once process-wide, concurrent requests for an
// in-flight spec wait on it instead of duplicating it (single-flight),
// and every caller receives a deep copy of the cached report so no
// experiment can mutate another's input. The experiment harness
// resolves all of its runs through the shared Runner, which is what
// eliminates the suite's duplicated full-suite sweeps (DESIGN.md §12).
//
// A Runner can also be layered over a second-level Store (SetStore) —
// a persistent, typically disk-backed cache keyed by the same content
// addresses — which is how delta-serve survives restarts with a warm
// cache (DESIGN.md §15, internal/store).
package runplan

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/hostobs"
	"taskstream/internal/workload"
)

// Spec declares one simulation: build Workload fresh, wire a machine
// from Config and Opts, run it, verify the results. The workload's
// Name is part of the spec's identity, so it must canonically
// determine what Build constructs — two builders may share a name only
// if they build equivalent workloads (the suite's parameterized
// builders, e.g. "spmv-g64", encode their parameters in the name).
type Spec struct {
	Workload workload.NamedBuilder
	Config   config.Config
	Opts     core.Options
}

// ForVariant is the common constructor: the spec realizing one
// baseline variant of a workload on the given datapath, exactly as
// baseline.Run would configure it.
func ForVariant(nb workload.NamedBuilder, v baseline.Variant, cfg config.Config) Spec {
	mcfg, opts := v.Configure(cfg)
	return Spec{Workload: nb, Config: mcfg, Opts: opts}
}

// Key returns the spec's content address: workload name plus the
// canonical encodings of config and normalized options. No maps are
// ranged anywhere on this path, so the key is stable across processes
// and runs.
func (s Spec) Key() string {
	return s.Workload.Name + "|" + s.Config.Canonical() + "|" + s.Opts.CacheKey()
}

// Cacheable reports whether the spec may be memoized; traced runs
// (Opts.Trace != nil) have an observable side channel and always
// execute fresh.
func (s Spec) Cacheable() bool { return s.Opts.Cacheable() }

// execute runs the spec from scratch and verifies the workload's
// results — the uncached path every cache entry is filled from. A
// panic anywhere in the workload builder or the simulation is
// converted into an error: the runner serves arbitrary (possibly
// inferred, possibly hostile) specs from a long-lived daemon, where
// one bad program must fail its request, not the process — and must
// never leave single-flight waiters parked on a flight that will
// never complete.
func (s Spec) execute() (rep core.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			rep = core.Report{}
			err = fmt.Errorf("%s: panic during execution: %v", s.Workload.Name, p)
		}
	}()
	w := s.Workload.Build()
	rep, rerr := baseline.RunCfg(s.Config, s.Opts, w.Prog, w.Storage)
	if rerr != nil {
		return core.Report{}, fmt.Errorf("%s: %w", s.Workload.Name, rerr)
	}
	if verr := w.Verify(); verr != nil {
		return core.Report{}, fmt.Errorf("%s: verification failed: %w", s.Workload.Name, verr)
	}
	return rep, nil
}

// Store is a second-level cache layered under the in-memory flight
// map: a persistent content-addressed map from Spec.Key() to Report.
// Load returns (report, true) on a hit; a store that detects a
// corrupt entry must return a miss (the runner then re-executes)
// rather than surface garbage. Save may evict other entries (LRU,
// size bounds) and may fail silently — the store is a cache, never
// the source of truth. Implementations must be safe for concurrent
// use; the runner guarantees at most one Load/Save per key is in
// flight at a time (single-flight), but different keys proceed
// concurrently.
type Store interface {
	Load(key string) (core.Report, bool)
	Save(key string, rep core.Report)
}

// Source says where a Run's answer came from — the provenance
// delta-serve reports to its clients.
type Source int

const (
	// SourceExecuted: the request executed the simulation (a miss).
	SourceExecuted Source = iota
	// SourceMemory: answered from a completed in-memory entry.
	SourceMemory
	// SourceDisk: answered by the second-level store.
	SourceDisk
	// SourceDeduped: waited on a concurrent in-flight execution.
	SourceDeduped
	// SourceBypass: executed fresh because the spec is uncacheable or
	// the cache is disabled.
	SourceBypass
)

// String renders the source the way the delta-serve API reports it.
func (s Source) String() string {
	switch s {
	case SourceExecuted:
		return "miss"
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	case SourceDeduped:
		return "dedup"
	case SourceBypass:
		return "bypass"
	default:
		return "unknown"
	}
}

// Counters is a snapshot of a Runner's accounting.
type Counters struct {
	// Misses counts specs executed by the runner (cache fills).
	Misses int64
	// Hits counts requests answered from a completed cache entry.
	Hits int64
	// Dedups counts requests that found their spec already in flight
	// and waited for it instead of re-running it.
	Dedups int64
	// Bypasses counts uncacheable or cache-disabled executions.
	Bypasses int64
	// DiskHits counts requests answered by the second-level store.
	DiskHits int64
}

// String renders the snapshot the way delta-bench reports it; the
// disk-hit column only appears when a second-level store produced any.
func (c Counters) String() string {
	s := fmt.Sprintf("%d runs, %d hits, %d dedups, %d bypasses",
		c.Misses, c.Hits, c.Dedups, c.Bypasses)
	if c.DiskHits > 0 {
		s += fmt.Sprintf(", %d disk hits", c.DiskHits)
	}
	return s
}

// flight is one cache entry: closed done publishes rep/err.
type flight struct {
	done chan struct{}
	rep  core.Report
	err  error
}

// Tri-state cache switch: until SetDisabled pins a value, Disabled
// consults the TASKSTREAM_NO_RUNCACHE environment variable on every
// call, so flipping it after program start (tests, daemon config
// reload) takes effect immediately.
const (
	followEnv int32 = iota // honor TASKSTREAM_NO_RUNCACHE per call
	forcedOn               // SetDisabled(false): memoize regardless of env
	forcedOff              // SetDisabled(true): bypass regardless of env
)

// Runner executes specs, memoizing by content address. The zero value
// is not usable; call NewRunner. Safe for concurrent use.
type Runner struct {
	mu      sync.Mutex
	flights map[string]*flight

	storeMu sync.RWMutex
	store   Store

	disabled atomic.Int32 // followEnv | forcedOn | forcedOff

	// Tier counters are hostobs primitives so one atomic serves both
	// Counters() snapshots and a /metrics scrape (InstrumentHost adopts
	// these same instances — the reconciliation contract delta-serve's
	// CI job asserts). Indexing is by Source.
	misses   hostobs.Counter
	hits     hostobs.Counter
	dedups   hostobs.Counter
	bypasses hostobs.Counter
	diskHits hostobs.Counter

	// lat[src] is the wall-clock resolve latency distribution of
	// requests answered with that provenance — always recorded (three
	// atomic adds per Run), named for export only via InstrumentHost.
	lat [5]*hostobs.Histogram
}

// NewRunner returns an empty runner. Until SetDisabled pins a state,
// the cache is disabled exactly while TASKSTREAM_NO_RUNCACHE is set in
// the environment — the whole-binary A/B switch the CI byte-identity
// job flips — re-checked on every Run, not snapshotted at
// construction.
func NewRunner() *Runner {
	r := &Runner{flights: make(map[string]*flight)}
	for i := range r.lat {
		r.lat[i] = hostobs.NewHistogram(nil)
	}
	return r
}

// counterFor maps a provenance to its tier counter.
func (r *Runner) counterFor(src Source) *hostobs.Counter {
	switch src {
	case SourceMemory:
		return &r.hits
	case SourceDisk:
		return &r.diskHits
	case SourceDeduped:
		return &r.dedups
	case SourceBypass:
		return &r.bypasses
	default:
		return &r.misses
	}
}

// InstrumentHost names the runner's tier counters and resolve-latency
// histograms in reg for export:
//
//	runner_resolves_total{tier="memory"|"disk"|"dedup"|"miss"|"bypass"}
//	runner_resolve_seconds{tier=...}  (histogram)
//	runner_memory_entries             (gauge, live Len())
//
// The registered counters are the Runner's own instances, so a
// /metrics scrape and a Counters() snapshot can never disagree.
func (r *Runner) InstrumentHost(reg *hostobs.Registry) {
	const (
		cname = "runner_resolves_total"
		chelp = "Run requests resolved, by cache tier (provenance)."
		hname = "runner_resolve_seconds"
		hhelp = "Wall-clock latency of Run requests, by cache tier."
	)
	for _, src := range []Source{SourceExecuted, SourceMemory, SourceDisk, SourceDeduped, SourceBypass} {
		reg.RegisterCounter(cname, chelp, r.counterFor(src), "tier", src.String())
		reg.RegisterHistogram(hname, hhelp, r.lat[src], "tier", src.String())
	}
	reg.GaugeFunc("runner_memory_entries", "In-memory run-cache entries (completed or in flight).",
		func() int64 { return int64(r.Len()) })
}

// Shared is the process-wide runner the experiment harness resolves
// every spec through; sharing it is what dedups runs across
// concurrently executing experiments.
var Shared = NewRunner()

// SetDisabled turns memoization off (every Run executes fresh) or back
// on, overriding TASKSTREAM_NO_RUNCACHE from then on.
// Already-cached results are kept and served again once re-enabled.
func (r *Runner) SetDisabled(v bool) {
	if v {
		r.disabled.Store(forcedOff)
	} else {
		r.disabled.Store(forcedOn)
	}
}

// Disabled reports whether memoization is off: the last SetDisabled
// value if one was ever pinned, the live TASKSTREAM_NO_RUNCACHE
// environment state otherwise.
func (r *Runner) Disabled() bool {
	switch r.disabled.Load() {
	case forcedOn:
		return false
	case forcedOff:
		return true
	}
	return os.Getenv("TASKSTREAM_NO_RUNCACHE") != ""
}

// SetStore installs (or, with nil, removes) the second-level store
// consulted on in-memory misses and filled on successful executions.
func (r *Runner) SetStore(s Store) {
	r.storeMu.Lock()
	defer r.storeMu.Unlock()
	r.store = s
}

func (r *Runner) secondLevel() Store {
	r.storeMu.RLock()
	defer r.storeMu.RUnlock()
	return r.store
}

// Reset drops every cached in-memory result and zeroes the counters
// (the second-level store, if any, is untouched). Not safe to call
// while runs are in flight.
func (r *Runner) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flights = make(map[string]*flight)
	r.misses.Reset()
	r.hits.Reset()
	r.dedups.Reset()
	r.bypasses.Reset()
	r.diskHits.Reset()
	for _, h := range r.lat {
		h.Reset()
	}
}

// Evict removes the in-memory entry for key, reporting whether one
// existed. Safe at any time: waiters on an in-flight entry hold their
// own pointer to it and still complete; only future Runs re-execute.
// This is the eviction-safe surface delta-serve uses to bound the
// daemon's resident set.
func (r *Runner) Evict(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.flights[key]
	delete(r.flights, key)
	return ok
}

// Len reports the number of in-memory entries (completed or in
// flight).
func (r *Runner) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.flights)
}

// Counters returns a snapshot of the runner's accounting.
func (r *Runner) Counters() Counters {
	return Counters{
		Misses:   r.misses.Value(),
		Hits:     r.hits.Value(),
		Dedups:   r.dedups.Value(),
		Bypasses: r.bypasses.Value(),
		DiskHits: r.diskHits.Value(),
	}
}

// Run resolves the spec: from the cache when an equal spec already
// completed, by waiting when one is in flight, by executing otherwise.
// Concurrent requesters of a failing spec all receive its error, but
// the failure is not memoized — the failed entry is evicted once its
// waiters are released, so a later Run retries (one transient fault
// must not poison the key forever). The returned report is always a
// deep copy; callers own it outright.
func (r *Runner) Run(s Spec) (core.Report, error) {
	rep, _, err := r.RunInfo(s)
	return rep, err
}

// RunInfo is Run plus provenance: where the answer came from. Every
// resolution is timed into the per-tier latency histogram (host-side
// accounting only; see InstrumentHost).
func (r *Runner) RunInfo(s Spec) (core.Report, Source, error) {
	t0 := time.Now()
	rep, src, err := r.runInfo(s)
	r.lat[src].Observe(time.Since(t0))
	return rep, src, err
}

func (r *Runner) runInfo(s Spec) (core.Report, Source, error) {
	if r.Disabled() || !s.Cacheable() {
		r.bypasses.Add(1)
		rep, err := s.execute()
		return rep, SourceBypass, err
	}
	key := s.Key()
	r.mu.Lock()
	f, ok := r.flights[key]
	if !ok {
		f = &flight{done: make(chan struct{})}
		r.flights[key] = f
		r.mu.Unlock()
		src := r.fill(key, f, s)
		return f.rep.Clone(), src, f.err
	}
	r.mu.Unlock()
	select {
	case <-f.done:
		r.hits.Add(1)
		return f.rep.Clone(), SourceMemory, f.err
	default:
		r.dedups.Add(1)
		<-f.done
		return f.rep.Clone(), SourceDeduped, f.err
	}
}

// fill completes a freshly created flight: from the second-level store
// when it holds the key, by executing otherwise (populating the store
// on success). done is always closed — execute converts panics into
// errors, so no waiter can park forever — and a failed flight is
// evicted after release so the next Run retries.
func (r *Runner) fill(key string, f *flight, s Spec) Source {
	src := SourceExecuted
	func() {
		defer close(f.done)
		if st := r.secondLevel(); st != nil {
			if rep, ok := st.Load(key); ok {
				r.diskHits.Add(1)
				f.rep = rep
				src = SourceDisk
				return
			}
		}
		r.misses.Add(1)
		f.rep, f.err = s.execute()
		if f.err == nil {
			if st := r.secondLevel(); st != nil {
				st.Save(key, f.rep)
			}
		}
	}()
	if f.err != nil {
		r.mu.Lock()
		// Only evict our own flight: a concurrent Run may already have
		// replaced the slot after an earlier eviction.
		if r.flights[key] == f {
			delete(r.flights, key)
		}
		r.mu.Unlock()
	}
	return src
}
