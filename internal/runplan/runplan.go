// Package runplan makes one simulation a declarative, comparable
// value. A Spec names everything that determines a run's result —
// which workload to build, the machine configuration, and the
// execution-model options — and canonically fingerprints it, so two
// experiments that describe the same simulation describe *equal*
// specs. The memoizing Runner exploits that: each distinct spec
// executes at most once process-wide, concurrent requests for an
// in-flight spec wait on it instead of duplicating it (single-flight),
// and every caller receives a deep copy of the cached report so no
// experiment can mutate another's input. The experiment harness
// resolves all of its runs through the shared Runner, which is what
// eliminates the suite's duplicated full-suite sweeps (DESIGN.md §12).
package runplan

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/workload"
)

// Spec declares one simulation: build Workload fresh, wire a machine
// from Config and Opts, run it, verify the results. The workload's
// Name is part of the spec's identity, so it must canonically
// determine what Build constructs — two builders may share a name only
// if they build equivalent workloads (the suite's parameterized
// builders, e.g. "spmv-g64", encode their parameters in the name).
type Spec struct {
	Workload workload.NamedBuilder
	Config   config.Config
	Opts     core.Options
}

// ForVariant is the common constructor: the spec realizing one
// baseline variant of a workload on the given datapath, exactly as
// baseline.Run would configure it.
func ForVariant(nb workload.NamedBuilder, v baseline.Variant, cfg config.Config) Spec {
	mcfg, opts := v.Configure(cfg)
	return Spec{Workload: nb, Config: mcfg, Opts: opts}
}

// Key returns the spec's content address: workload name plus the
// canonical encodings of config and normalized options. No maps are
// ranged anywhere on this path, so the key is stable across processes
// and runs.
func (s Spec) Key() string {
	return s.Workload.Name + "|" + s.Config.Canonical() + "|" + s.Opts.CacheKey()
}

// Cacheable reports whether the spec may be memoized; traced runs
// (Opts.Trace != nil) have an observable side channel and always
// execute fresh.
func (s Spec) Cacheable() bool { return s.Opts.Cacheable() }

// execute runs the spec from scratch and verifies the workload's
// results — the uncached path every cache entry is filled from.
func (s Spec) execute() (core.Report, error) {
	w := s.Workload.Build()
	rep, err := baseline.RunCfg(s.Config, s.Opts, w.Prog, w.Storage)
	if err != nil {
		return core.Report{}, fmt.Errorf("%s: %w", s.Workload.Name, err)
	}
	if err := w.Verify(); err != nil {
		return core.Report{}, fmt.Errorf("%s: verification failed: %w", s.Workload.Name, err)
	}
	return rep, nil
}

// Counters is a snapshot of a Runner's accounting.
type Counters struct {
	// Misses counts specs executed by the runner (cache fills).
	Misses int64
	// Hits counts requests answered from a completed cache entry.
	Hits int64
	// Dedups counts requests that found their spec already in flight
	// and waited for it instead of re-running it.
	Dedups int64
	// Bypasses counts uncacheable or cache-disabled executions.
	Bypasses int64
}

// String renders the snapshot the way delta-bench reports it.
func (c Counters) String() string {
	return fmt.Sprintf("%d runs, %d hits, %d dedups, %d bypasses",
		c.Misses, c.Hits, c.Dedups, c.Bypasses)
}

// flight is one cache entry: closed done publishes rep/err.
type flight struct {
	done chan struct{}
	rep  core.Report
	err  error
}

// Runner executes specs, memoizing by content address. The zero value
// is not usable; call NewRunner. Safe for concurrent use.
type Runner struct {
	mu      sync.Mutex
	flights map[string]*flight

	disabled atomic.Bool
	misses   atomic.Int64
	hits     atomic.Int64
	dedups   atomic.Int64
	bypasses atomic.Int64
}

// NewRunner returns an empty runner. The cache starts disabled when
// TASKSTREAM_NO_RUNCACHE is set in the environment — the whole-binary
// A/B switch the CI byte-identity job flips.
func NewRunner() *Runner {
	r := &Runner{flights: make(map[string]*flight)}
	r.disabled.Store(os.Getenv("TASKSTREAM_NO_RUNCACHE") != "")
	return r
}

// Shared is the process-wide runner the experiment harness resolves
// every spec through; sharing it is what dedups runs across
// concurrently executing experiments.
var Shared = NewRunner()

// SetDisabled turns memoization off (every Run executes fresh) or back
// on. Already-cached results are kept and served again once re-enabled.
func (r *Runner) SetDisabled(v bool) { r.disabled.Store(v) }

// Disabled reports whether memoization is off.
func (r *Runner) Disabled() bool { return r.disabled.Load() }

// Reset drops every cached result and zeroes the counters. Not safe to
// call while runs are in flight.
func (r *Runner) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flights = make(map[string]*flight)
	r.misses.Store(0)
	r.hits.Store(0)
	r.dedups.Store(0)
	r.bypasses.Store(0)
}

// Counters returns a snapshot of the runner's accounting.
func (r *Runner) Counters() Counters {
	return Counters{
		Misses:   r.misses.Load(),
		Hits:     r.hits.Load(),
		Dedups:   r.dedups.Load(),
		Bypasses: r.bypasses.Load(),
	}
}

// Run resolves the spec: from the cache when an equal spec already
// completed, by waiting when one is in flight, by executing otherwise.
// Errors are memoized like results — a failing spec fails every
// requester identically. The returned report is always a deep copy;
// callers own it outright.
func (r *Runner) Run(s Spec) (core.Report, error) {
	if r.Disabled() || !s.Cacheable() {
		r.bypasses.Add(1)
		return s.execute()
	}
	key := s.Key()
	r.mu.Lock()
	f, ok := r.flights[key]
	if !ok {
		f = &flight{done: make(chan struct{})}
		r.flights[key] = f
		r.mu.Unlock()
		r.misses.Add(1)
		f.rep, f.err = s.execute()
		close(f.done)
		return f.rep.Clone(), f.err
	}
	r.mu.Unlock()
	select {
	case <-f.done:
		r.hits.Add(1)
	default:
		r.dedups.Add(1)
		<-f.done
	}
	return f.rep.Clone(), f.err
}
