package workload

import (
	"taskstream/internal/core"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
)

// JoinParams sizes the partitioned hash-join workload.
type JoinParams struct {
	// NR and NS are build/probe relation sizes.
	NR, NS int
	// Partitions is the partition count (one build + one probe task each).
	Partitions int
	// ZipfS is the key skew (0 = uniform; 1 ≈ web skew). Skewed keys
	// produce skewed partitions under range partitioning.
	ZipfS float64
	// Universe is the key domain size.
	Universe int
	Seed     uint64
}

// DefaultJoin returns the reference configuration.
func DefaultJoin() JoinParams {
	return JoinParams{NR: 24576, NS: 24576, Partitions: 48, ZipfS: 0.9,
		Universe: 1 << 16, Seed: 3}
}

// Join builds a two-phase partitioned hash join. Phase 0 build tasks
// construct one open-addressing table per partition and *forward* the
// table stream to the matching phase-1 probe task — the pipelined
// inter-task dependence TaskStream recovers. Range partitioning of
// zipf-distributed keys skews partition sizes, exercising load
// balancing at the same time.
func Join(p JoinParams) *Workload {
	rng := NewRNG(p.Seed)
	zipf := NewZipf(rng, p.Universe, p.ZipfS)
	st := mem.NewStorage()
	al := mem.NewAllocator()

	// Draw keys and range-partition them (partition = key / stripe).
	stripe := (p.Universe + p.Partitions - 1) / p.Partitions
	rPart := make([][]uint64, p.Partitions)
	sPart := make([][]uint64, p.Partitions)
	for i := 0; i < p.NR; i++ {
		k := zipf.Next()
		rPart[k/stripe] = append(rPart[k/stripe], uint64(k))
	}
	for i := 0; i < p.NS; i++ {
		k := zipf.Next()
		sPart[k/stripe] = append(sPart[k/stripe], uint64(k))
	}

	// Layout.
	rBase := make([]mem.Addr, p.Partitions)
	sBase := make([]mem.Addr, p.Partitions)
	htBase := make([]mem.Addr, p.Partitions)
	outBase := make([]mem.Addr, p.Partitions)
	slots := make([]int, p.Partitions)
	for i := 0; i < p.Partitions; i++ {
		rBase[i] = al.AllocElems(len(rPart[i]) + 1)
		st.WriteElems(rBase[i], rPart[i])
		sBase[i] = al.AllocElems(len(sPart[i]) + 1)
		st.WriteElems(sBase[i], sPart[i])
		n := 2 * (len(rPart[i]) + 1)
		sl := 1
		for sl < n {
			sl <<= 1
		}
		slots[i] = sl
		htBase[i] = al.AllocElems(sl)
		outBase[i] = al.AllocElems(len(sPart[i]) + 1)
	}

	// Hash-table convention: slot holds key+1; 0 = empty. The hash is
	// the fabric's Mix64, so the DFG and kernel agree.
	hashSlot := func(key uint64, mask int) int {
		return int(fabric.Mix64(key)) & mask
	}

	build := &core.TaskType{
		Name: "join-build",
		DFG:  hashProbeDFG("join-build"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			sl := int(t.Scalars[0])
			table := make([]uint64, sl)
			for _, k := range in[0] {
				i := hashSlot(k, sl-1)
				for table[i] != 0 && table[i] != k+1 {
					i = (i + 1) & (sl - 1)
				}
				table[i] = k + 1
			}
			return core.Result{Out: [][]uint64{table}}
		},
	}
	probe := &core.TaskType{
		Name: "join-probe",
		DFG:  hashProbeDFG("join-probe"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			table := in[0]
			sl := len(table)
			out := make([]uint64, len(in[1]))
			for j, k := range in[1] {
				i := hashSlot(k, sl-1)
				for table[i] != 0 {
					if table[i] == k+1 {
						out[j] = 1
						break
					}
					i = (i + 1) & (sl - 1)
				}
			}
			return core.Result{Out: [][]uint64{nil, out}}
		},
	}

	var tasks []core.Task
	sizes := []int{}
	for i := 0; i < p.Partitions; i++ {
		tag := uint64(i + 1)
		nR, nS := len(rPart[i]), len(sPart[i])
		tasks = append(tasks, core.Task{
			Type: 0, Phase: 0, Key: uint64(i),
			Scalars:  []uint64{uint64(slots[i])},
			Ins:      []core.InArg{{Kind: core.ArgDRAMLinear, Base: rBase[i], N: nR}},
			Outs:     []core.OutArg{{Kind: core.OutForward, Base: htBase[i], N: slots[i], Tag: tag}},
			WorkHint: int64(nR + slots[i]),
		})
		tasks = append(tasks, core.Task{
			Type: 1, Phase: 1, Key: uint64(i),
			Ins: []core.InArg{
				{Kind: core.ArgForwardIn, Base: htBase[i], N: slots[i], Tag: tag},
				{Kind: core.ArgDRAMLinear, Base: sBase[i], N: nS},
			},
			Outs:     []core.OutArg{{}, {Kind: core.OutDRAMLinear, Base: outBase[i], N: nS}},
			WorkHint: int64(nS + slots[i]),
		})
		sizes = append(sizes, nR+slots[i], nS+slots[i])
	}

	verify := func() error {
		for i := 0; i < p.Partitions; i++ {
			inR := make(map[uint64]bool, len(rPart[i]))
			for _, k := range rPart[i] {
				inR[k] = true
			}
			for j, k := range sPart[i] {
				want := uint64(0)
				if inR[k] {
					want = 1
				}
				if got := st.Read8(outBase[i] + mem.Addr(j*8)); got != want {
					return errf("join: partition %d probe %d (key %d) = %d, want %d", i, j, k, got, want)
				}
			}
		}
		return nil
	}

	return &Workload{
		Name: "join",
		Prog: &core.Program{Name: "join", Types: []*core.TaskType{build, probe},
			NumPhases: 2, Tasks: tasks},
		Storage:      st,
		Verify:       verify,
		TaskSizes:    sizesHistogram(sizes),
		BytesTouched: int64((p.NR + p.NS) * 8 * 2),
	}
}
