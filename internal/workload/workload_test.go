package workload

import (
	"testing"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
)

// runAndVerify executes a workload under a variant and checks results.
func runAndVerify(t *testing.T, mk func() *Workload, v baseline.Variant, lanes int) int64 {
	t.Helper()
	w := mk()
	rep, err := baseline.Run(v, config.Default8().WithLanes(lanes), w.Prog, w.Storage)
	if err != nil {
		t.Fatalf("%s/%v: %v", w.Name, v, err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s/%v: %v", w.Name, v, err)
	}
	return rep.Cycles
}

func small(p func() *Workload) func() *Workload { return p }

// Small-instance constructors keep unit tests fast; defaults are
// exercised by the experiment harness and benchmarks.
func smallSpMV() *Workload {
	return SpMV(SpMVParams{Rows: 512, Cols: 512, Alpha: 1.5, MinRow: 2, MaxRow: 256,
		RowsPerTask: 8, Clustered: true, Seed: 1})
}

func smallBFS() *Workload { return BFS(BFSParams{Scale: 8, AvgDeg: 6, Seed: 2}) }

func smallJoin() *Workload {
	return Join(JoinParams{NR: 2048, NS: 2048, Partitions: 12, ZipfS: 0.9,
		Universe: 1 << 12, Seed: 3})
}

func TestSpMVAllVariants(t *testing.T) {
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		runAndVerify(t, smallSpMV, v, 4)
	}
}

func TestBFSAllVariants(t *testing.T) {
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		runAndVerify(t, smallBFS, v, 4)
	}
}

func TestJoinAllVariants(t *testing.T) {
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		runAndVerify(t, smallJoin, v, 4)
	}
}

func TestSpMVDeltaBeatsStatic(t *testing.T) {
	d := runAndVerify(t, smallSpMV, baseline.Delta, 4)
	s := runAndVerify(t, smallSpMV, baseline.Static, 4)
	if d >= s {
		t.Fatalf("delta (%d) should beat static (%d) on skewed spmv", d, s)
	}
}

func TestJoinForwardingHelps(t *testing.T) {
	d := runAndVerify(t, smallJoin, baseline.Delta, 4)
	lbmc := runAndVerify(t, smallJoin, baseline.LBMC, 4)
	if d >= lbmc {
		t.Fatalf("forwarding (%d) should beat +lb+mc (%d) on join", d, lbmc)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := runAndVerify(t, smallBFS, baseline.Delta, 4)
	b := runAndVerify(t, smallBFS, baseline.Delta, 4)
	if a != b {
		t.Fatalf("bfs non-deterministic: %d vs %d", a, b)
	}
}

func TestGenerators(t *testing.T) {
	rng := NewRNG(7)
	sizes := PowerLawSizes(rng, 1000, 1.6, 2, 1024)
	minS, maxS := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if minS < 2 || maxS > 1024 {
		t.Fatalf("power-law sizes out of bounds: [%d,%d]", minS, maxS)
	}
	if maxS < 100 {
		t.Fatal("power law should produce a heavy tail")
	}

	g := RMAT(NewRNG(5), 8, 6)
	if g.N != 256 {
		t.Fatalf("RMAT N = %d", g.N)
	}
	if g.Edges() < 256*5 {
		t.Fatalf("RMAT edges = %d, want ≈%d", g.Edges(), 256*6)
	}
	// Degree skew: max degree well above average.
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > maxDeg {
			maxDeg = g.Degree(v)
		}
		adj := g.Neighbors(v)
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatal("adjacency must be sorted and deduplicated")
			}
		}
	}
	if maxDeg < 3*6 {
		t.Fatalf("RMAT max degree %d shows no skew", maxDeg)
	}

	z := NewZipf(NewRNG(9), 1000, 1.0)
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		k := z.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("zipf key %d out of range", k)
		}
		counts[k]++
	}
	most := 0
	for _, c := range counts {
		if c > most {
			most = c
		}
	}
	if most < 300 {
		t.Fatalf("zipf hottest key only %d/10000 draws; want heavy skew", most)
	}

	m := PowerLawCSR(NewRNG(11), 128, 128, 1.7, 2, 64)
	if m.NNZ() == 0 {
		t.Fatal("empty CSR")
	}
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] < 0 || int(m.ColIdx[k]) >= m.Cols {
				t.Fatalf("col index %d out of range", m.ColIdx[k])
			}
			if m.Vals[k] == 0 {
				t.Fatal("zero stored value")
			}
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("RNG must be deterministic")
		}
	}
	if NewRNG(0).Next() == 0 {
		t.Fatal("zero seed must be remapped")
	}
}
