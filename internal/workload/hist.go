package workload

import (
	"taskstream/internal/core"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
)

// HistParams sizes the histogram workload.
type HistParams struct {
	// N input elements into Bins buckets, processed by Blocks tasks.
	N, Bins, Blocks int
	Seed            uint64
}

// DefaultHist returns the reference configuration.
func DefaultHist() HistParams {
	return HistParams{N: 1 << 16, Bins: 256, Blocks: 64, Seed: 9}
}

// Hist builds a two-phase histogram: per-block tasks accumulate private
// bins (phase 0), a reduction task merges them (phase 1). Work is
// near-regular (equal blocks); only the reduction briefly serializes.
// The third parity-control workload.
func Hist(p HistParams) *Workload {
	rng := NewRNG(p.Seed)
	st := mem.NewStorage()
	al := mem.NewAllocator()

	dataB := al.AllocElems(p.N)
	data := make([]uint64, p.N)
	for i := range data {
		data[i] = rng.Next()
	}
	st.WriteElems(dataB, data)

	privAll := al.AllocElems(p.Blocks * p.Bins)
	finalB := al.AllocElems(p.Bins)
	binOf := func(v uint64) int { return int(fabric.Mix64(v) % uint64(p.Bins)) }

	blockT := &core.TaskType{
		Name: "hist-block",
		DFG:  binDFG("hist-block"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			bins := make([]uint64, p.Bins)
			for _, v := range in[0] {
				bins[binOf(v)]++
			}
			return core.Result{Out: [][]uint64{bins}}
		},
	}
	mergeT := &core.TaskType{
		Name: "hist-merge",
		DFG:  binDFG("hist-merge"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			out := make([]uint64, p.Bins)
			for b := 0; b < p.Blocks; b++ {
				for i := 0; i < p.Bins; i++ {
					out[i] += in[0][b*p.Bins+i]
				}
			}
			return core.Result{Out: [][]uint64{out}}
		},
	}

	blockSize := (p.N + p.Blocks - 1) / p.Blocks
	var tasks []core.Task
	sizes := []int{}
	for b := 0; b < p.Blocks; b++ {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > p.N {
			hi = p.N
		}
		if hi <= lo {
			continue
		}
		tasks = append(tasks, core.Task{
			Type: 0, Phase: 0, Key: uint64(b),
			Ins:      []core.InArg{{Kind: core.ArgDRAMLinear, Base: dataB + mem.Addr(lo*8), N: hi - lo}},
			Outs:     []core.OutArg{{Kind: core.OutDRAMLinear, Base: privAll + mem.Addr(b*p.Bins*8), N: p.Bins}},
			WorkHint: int64(hi - lo),
		})
		sizes = append(sizes, hi-lo)
	}
	tasks = append(tasks, core.Task{
		Type: 1, Phase: 1, Key: 1 << 20,
		Ins:      []core.InArg{{Kind: core.ArgDRAMLinear, Base: privAll, N: p.Blocks * p.Bins}},
		Outs:     []core.OutArg{{Kind: core.OutDRAMLinear, Base: finalB, N: p.Bins}},
		WorkHint: int64(p.Blocks * p.Bins),
	})
	sizes = append(sizes, p.Blocks*p.Bins)

	verify := func() error {
		want := make([]uint64, p.Bins)
		for _, v := range data {
			want[binOf(v)]++
		}
		for i := 0; i < p.Bins; i++ {
			if got := st.Read8(finalB + mem.Addr(i*8)); got != want[i] {
				return errf("hist: bin[%d] = %d, want %d", i, got, want[i])
			}
		}
		return nil
	}

	return &Workload{
		Name: "hist",
		Prog: &core.Program{Name: "hist", Types: []*core.TaskType{blockT, mergeT},
			NumPhases: 2, Tasks: tasks},
		Storage:      st,
		Verify:       verify,
		TaskSizes:    sizesHistogram(sizes),
		BytesTouched: int64(p.N*8 + p.Blocks*p.Bins*8),
	}
}
