package workload

import "taskstream/internal/fabric"

// The DFGs below are the spatial datapaths the workload task types are
// compiled to. Their shapes (node counts, depths) drive the fabric
// mapper's II and latency; their semantics mirror what the kernels
// compute element-wise (the kernels remain the functional authority —
// see DESIGN.md §3).

// macDFG: out = acc(in0 * in1) — inner products (spmv, gemm).
func macDFG(name string) *fabric.DFG {
	b := fabric.NewBuilder(name, 2, 1)
	m := b.Add(fabric.OpMul, fabric.InPort(0), fabric.InPort(1))
	s := b.Add(fabric.OpAcc, m)
	b.Out(0, s)
	return b.MustBuild()
}

// visitDFG: frontier expansion — compare visited flag, select level.
func visitDFG(name string) *fabric.DFG {
	b := fabric.NewBuilder(name, 2, 1)
	unvis := b.Add(fabric.OpCmpEQ, fabric.InPort(0), fabric.InPort(1))
	lvl := b.Add(fabric.OpAdd, fabric.InPort(1), unvis)
	sel := b.Add(fabric.OpSelect, unvis, lvl, fabric.InPort(0))
	b.Out(0, sel)
	return b.MustBuild()
}

// hashProbeDFG: hash a key, mask to a slot, compare — join build/probe.
func hashProbeDFG(name string) *fabric.DFG {
	b := fabric.NewBuilder(name, 2, 1)
	h := b.Add(fabric.OpHash, fabric.InPort(0))
	slot := b.Add(fabric.OpAnd, h, fabric.InPort(1))
	eq := b.Add(fabric.OpCmpEQ, slot, fabric.InPort(0))
	sel := b.Add(fabric.OpSelect, eq, fabric.InPort(0), slot)
	b.Out(0, sel)
	return b.MustBuild()
}

// intersectDFG: sorted-list intersection step — compares, advances.
func intersectDFG(name string) *fabric.DFG {
	b := fabric.NewBuilder(name, 2, 1)
	lt := b.Add(fabric.OpCmpLT, fabric.InPort(0), fabric.InPort(1))
	eq := b.Add(fabric.OpCmpEQ, fabric.InPort(0), fabric.InPort(1))
	hit := b.Add(fabric.OpAnd, eq, eq)
	cnt := b.Add(fabric.OpAcc, hit)
	sel := b.Add(fabric.OpSelect, lt, cnt, hit)
	b.Out(0, sel)
	return b.MustBuild()
}

// mergeDFG: two sorted streams in, min out — mergesort node.
func mergeDFG(name string) *fabric.DFG {
	b := fabric.NewBuilder(name, 2, 1)
	mn := b.Add(fabric.OpMin, fabric.InPort(0), fabric.InPort(1))
	b.Out(0, mn)
	return b.MustBuild()
}

// distDFG: squared-distance accumulation then argmin — kmeans assign.
func distDFG(name string) *fabric.DFG {
	b := fabric.NewBuilder(name, 2, 1)
	d := b.Add(fabric.OpSub, fabric.InPort(0), fabric.InPort(1))
	sq := b.Add(fabric.OpMul, d, d)
	acc := b.Add(fabric.OpAcc, sq)
	best := b.Add(fabric.OpMin, acc, fabric.InPort(1))
	b.Out(0, best)
	return b.MustBuild()
}

// stencilDFG: 5-point weighted sum.
func stencilDFG(name string) *fabric.DFG {
	b := fabric.NewBuilder(name, 2, 1)
	s1 := b.Add(fabric.OpAdd, fabric.InPort(0), fabric.InPort(1))
	s2 := b.Add(fabric.OpAdd, s1, fabric.InPort(0))
	s3 := b.Add(fabric.OpAdd, s2, fabric.InPort(1))
	sh := b.Add(fabric.OpShr, s3, fabric.InPort(1))
	b.Out(0, sh)
	return b.MustBuild()
}

// binDFG: histogram binning — shift to bin, count.
func binDFG(name string) *fabric.DFG {
	b := fabric.NewBuilder(name, 1, 1)
	h := b.Add(fabric.OpHash, fabric.InPort(0))
	sh := b.Add(fabric.OpShr, h, h)
	acc := b.Add(fabric.OpAcc, sh)
	b.Out(0, acc)
	return b.MustBuild()
}
