package workload

import (
	"testing"

	"taskstream/internal/core"
)

// Structural invariants of each workload's generated program — checked
// without running the simulator.

func TestJoinStructure(t *testing.T) {
	w := smallJoin()
	builds, probes := 0, 0
	tags := map[uint64]int{}
	for i := range w.Prog.Tasks {
		task := &w.Prog.Tasks[i]
		switch task.Phase {
		case 0:
			builds++
			tag := task.ProducesTag()
			if tag == 0 {
				t.Fatal("build task without a forward tag")
			}
			tags[tag]++
		case 1:
			probes++
			tag := task.ConsumesTag()
			if tag == 0 {
				t.Fatal("probe task without a consumed tag")
			}
			tags[tag] += 10
		}
	}
	if builds != probes {
		t.Fatalf("builds %d != probes %d", builds, probes)
	}
	for tag, v := range tags {
		if v != 11 {
			t.Fatalf("tag %d has producer/consumer mismatch (%d)", tag, v)
		}
	}
}

func TestSortTreeStructure(t *testing.T) {
	w := smallSort()
	// 8 leaves → 8+4+2+1 = 15 tasks, phases 0..3.
	if len(w.Prog.Tasks) != 15 {
		t.Fatalf("tasks = %d, want 15", len(w.Prog.Tasks))
	}
	if w.Prog.NumPhases != 4 {
		t.Fatalf("phases = %d, want 4", w.Prog.NumPhases)
	}
	// Every forward tag is produced exactly once and consumed exactly
	// once, except the root which writes memory.
	prod := map[uint64]int{}
	cons := map[uint64]int{}
	for i := range w.Prog.Tasks {
		task := &w.Prog.Tasks[i]
		if tag := task.ProducesTag(); tag != 0 {
			prod[tag]++
		}
		for _, in := range task.Ins {
			if in.Kind == core.ArgForwardIn {
				cons[in.Tag]++
			}
		}
	}
	if len(prod) != 14 {
		t.Fatalf("produced tags = %d, want 14 (all non-root nodes)", len(prod))
	}
	for tag, n := range prod {
		if n != 1 || cons[tag] != 1 {
			t.Fatalf("tag %d: produced %d consumed %d", tag, n, cons[tag])
		}
	}
}

func TestBFSTaskPhasesMatchLevels(t *testing.T) {
	w := smallBFS()
	if len(w.Prog.Tasks) != 1 {
		t.Fatalf("bfs starts with %d tasks, want 1 (root)", len(w.Prog.Tasks))
	}
	if w.Prog.Tasks[0].Phase != 0 {
		t.Fatal("root must be phase 0")
	}
	if w.Prog.NumPhases < 2 {
		t.Fatalf("bfs phases = %d; graph should have depth", w.Prog.NumPhases)
	}
}

func TestSpMVTaskCoverage(t *testing.T) {
	p := SpMVParams{Rows: 128, Cols: 128, Alpha: 1.6, MinRow: 2, MaxRow: 32,
		RowsPerTask: 16, Clustered: true, Seed: 1}
	w := SpMV(p)
	// Every task covers a disjoint row range; ranges cover all rows
	// with nonzero entries.
	covered := map[uint64]bool{}
	for i := range w.Prog.Tasks {
		task := &w.Prog.Tasks[i]
		r0, r1 := task.Scalars[0], task.Scalars[1]
		if r1 <= r0 {
			t.Fatalf("empty row range [%d,%d)", r0, r1)
		}
		for r := r0; r < r1; r++ {
			if covered[r] {
				t.Fatalf("row %d covered twice", r)
			}
			covered[r] = true
		}
		// Gather port must agree with the value port's length.
		if task.Ins[0].N != task.Ins[2].N {
			t.Fatal("vals and gather ports disagree on nnz")
		}
		if task.WorkHint != int64(task.Ins[0].N) {
			t.Fatal("work hint must equal block nnz")
		}
	}
}

func TestClusteredSortActuallySorts(t *testing.T) {
	rng := NewRNG(3)
	m := PowerLawCSR(rng, 64, 64, 1.6, 2, 32)
	sortRowsByLengthDesc(m)
	prev := m.RowPtr[1] - m.RowPtr[0]
	var total int32
	for r := 1; r < m.Rows; r++ {
		l := m.RowPtr[r+1] - m.RowPtr[r]
		if l > prev {
			t.Fatalf("row %d longer than predecessor (%d > %d)", r, l, prev)
		}
		prev = l
		total += l
	}
	if int(m.RowPtr[m.Rows]) != m.NNZ() {
		t.Fatal("row pointers corrupt after sort")
	}
}

func TestKMeansPhaseStructure(t *testing.T) {
	w := smallKMeans()
	// 3 phases per iteration: assign, mid-reduce, final.
	if w.Prog.NumPhases%3 != 0 {
		t.Fatalf("kmeans phases = %d, want multiple of 3", w.Prog.NumPhases)
	}
	perPhase := map[int]int{}
	for i := range w.Prog.Tasks {
		perPhase[w.Prog.Tasks[i].Phase]++
	}
	for it := 0; it*3 < w.Prog.NumPhases; it++ {
		if perPhase[3*it] < 2 {
			t.Fatalf("iteration %d has %d assign tasks", it, perPhase[3*it])
		}
		if perPhase[3*it+2] != 1 {
			t.Fatalf("iteration %d has %d final tasks, want 1", it, perPhase[3*it+2])
		}
	}
	// The centroid port must be marked shared (multicast candidate).
	found := false
	for i := range w.Prog.Tasks {
		for _, in := range w.Prog.Tasks[i].Ins {
			if in.Shared {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("kmeans must mark the centroid read shared")
	}
}

func TestGEMMSharingStructure(t *testing.T) {
	w := smallGEMM()
	// Every task shares both A and B blocks; distinct (i,j) tasks with
	// the same i share the same A base.
	bases := map[uint64][]int{}
	for i := range w.Prog.Tasks {
		task := &w.Prog.Tasks[i]
		if !task.Ins[0].Shared || !task.Ins[1].Shared {
			t.Fatal("gemm blocks must be marked shared")
		}
		bases[uint64(task.Ins[0].Base)] = append(bases[uint64(task.Ins[0].Base)], i)
	}
	for base, tasks := range bases {
		if len(tasks) < 2 {
			t.Fatalf("A block %#x shared by only %d tasks", base, len(tasks))
		}
	}
}

func TestHistStructure(t *testing.T) {
	w := smallHist()
	if w.Prog.NumPhases != 2 {
		t.Fatalf("hist phases = %d, want 2", w.Prog.NumPhases)
	}
	merge := 0
	for i := range w.Prog.Tasks {
		if w.Prog.Tasks[i].Phase == 1 {
			merge++
		}
	}
	if merge != 1 {
		t.Fatalf("hist merge tasks = %d, want 1", merge)
	}
}

func TestAllProgramsValidate(t *testing.T) {
	for _, nb := range Suite() {
		w := nb.Build()
		if err := w.Prog.Validate(); err != nil {
			t.Fatalf("%s: %v", nb.Name, err)
		}
	}
}

func TestWorkloadsDeterministicConstruction(t *testing.T) {
	for _, nb := range Suite() {
		a, b := nb.Build(), nb.Build()
		if len(a.Prog.Tasks) != len(b.Prog.Tasks) {
			t.Fatalf("%s: task count differs across builds", nb.Name)
		}
		for i := range a.Prog.Tasks {
			ta, tb := &a.Prog.Tasks[i], &b.Prog.Tasks[i]
			if ta.Key != tb.Key || ta.WorkHint != tb.WorkHint || ta.Phase != tb.Phase {
				t.Fatalf("%s: task %d differs across builds", nb.Name, i)
			}
		}
	}
}
