package workload

import (
	"taskstream/internal/core"
	"taskstream/internal/mem"
)

// BFSParams sizes the breadth-first-search workload.
type BFSParams struct {
	// Scale gives 2^Scale vertices; AvgDeg edges per vertex on average
	// (R-MAT: heavily skewed degrees).
	Scale  int
	AvgDeg int
	Seed   uint64
}

// DefaultBFS returns the reference configuration.
func DefaultBFS() BFSParams { return BFSParams{Scale: 12, AvgDeg: 8, Seed: 2} }

const bfsUnvisited = ^uint64(0)

// BFS builds level-synchronous breadth-first search: one task per
// frontier vertex, spawning a child task for every newly discovered
// neighbor into the next phase (hierarchical dataflow). Degree skew
// makes frontier work irregular; the dynamic frontier makes static
// partitioning wait on stragglers at every level barrier.
func BFS(p BFSParams) *Workload {
	rng := NewRNG(p.Seed)
	g := RMAT(rng, p.Scale, p.AvgDeg)
	st := mem.NewStorage()
	al := mem.NewAllocator()

	adjB := al.AllocElems(g.Edges())
	lvlB := al.AllocElems(g.N)
	for i, c := range g.Col {
		st.Write8(adjB+mem.Addr(i*8), uint64(c))
	}
	for v := 0; v < g.N; v++ {
		st.Write8(lvlB+mem.Addr(v*8), bfsUnvisited)
	}

	// Root: the highest-degree vertex, so the traversal covers the
	// giant component.
	root := 0
	for v := 1; v < g.N; v++ {
		if g.Degree(v) > g.Degree(root) {
			root = v
		}
	}

	// Reference BFS fixes the phase count.
	refLevel := make([]uint64, g.N)
	for i := range refLevel {
		refLevel[i] = bfsUnvisited
	}
	refLevel[root] = 0
	frontier := []int32{int32(root)}
	levels := 0
	for len(frontier) > 0 {
		levels++
		var next []int32
		for _, u := range frontier {
			for _, w := range g.Neighbors(int(u)) {
				if refLevel[w] == bfsUnvisited {
					refLevel[w] = uint64(levels)
					next = append(next, w)
				}
			}
		}
		frontier = next
	}

	numPhases := levels + 1

	var mkTask func(v int, level int) core.Task
	tt := &core.TaskType{
		Name: "bfs-visit",
		DFG:  visitDFG("bfs"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			level := t.Scalars[1]
			var spawns []core.Spawn
			pw := 4
			for k, w := range in[0] {
				if s.Read8(lvlB+mem.Addr(w*8)) == bfsUnvisited {
					s.Write8(lvlB+mem.Addr(w*8), level+1)
					spawns = append(spawns, core.Spawn{
						AtFiring: k / pw,
						Task:     mkTask(int(w), int(level)+1),
					})
				}
			}
			return core.Result{Out: [][]uint64{nil, in[0]}, Spawns: spawns}
		},
	}

	mkTask = func(v, level int) core.Task {
		deg := g.Degree(v)
		off := int(g.RowPtr[v])
		return core.Task{
			Type:     0,
			Phase:    level,
			Key:      uint64(v),
			Scalars:  []uint64{uint64(v), uint64(level)},
			Ins:      []core.InArg{{Kind: core.ArgDRAMLinear, Base: adjB + mem.Addr(off*8), N: deg}},
			Outs:     []core.OutArg{{}, {Kind: core.OutDiscard, N: deg}},
			WorkHint: int64(deg) + 1,
		}
	}

	st.Write8(lvlB+mem.Addr(root*8), 0)
	tasks := []core.Task{mkTask(root, 0)}

	sizes := make([]int, 0, g.N)
	for v := 0; v < g.N; v++ {
		if refLevel[v] != bfsUnvisited {
			sizes = append(sizes, g.Degree(v)+1)
		}
	}

	verify := func() error {
		for v := 0; v < g.N; v++ {
			if got := st.Read8(lvlB + mem.Addr(v*8)); got != refLevel[v] {
				return errf("bfs: level[%d] = %d, want %d", v, got, refLevel[v])
			}
		}
		return nil
	}

	return &Workload{
		Name:         "bfs",
		Prog:         &core.Program{Name: "bfs", Types: []*core.TaskType{tt}, NumPhases: numPhases, Tasks: tasks},
		Storage:      st,
		Verify:       verify,
		TaskSizes:    sizesHistogram(sizes),
		BytesTouched: int64(g.Edges()*8 + g.N*8),
	}
}
