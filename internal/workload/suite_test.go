package workload

import (
	"testing"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
)

func smallTri() *Workload  { return Tri(TriParams{Scale: 7, AvgDeg: 8, Seed: 4}) }
func smallSort() *Workload { return MergeSort(SortParams{N: 1 << 12, Leaves: 8, Seed: 5}) }
func smallKMeans() *Workload {
	return KMeans(KMeansParams{Points: 2048, K: 8, Dims: 4, Iters: 2, Blocks: 16, Seed: 6})
}
func smallGEMM() *Workload    { return GEMM(GEMMParams{N: 64, Tile: 16, Seed: 7}) }
func smallStencil() *Workload { return Stencil(StencilParams{Rows: 64, Cols: 128, Band: 8, Seed: 8}) }
func smallHist() *Workload    { return Hist(HistParams{N: 1 << 12, Bins: 64, Blocks: 16, Seed: 9}) }

func TestTriAllVariants(t *testing.T) {
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		runAndVerify(t, smallTri, v, 4)
	}
}

func TestSortAllVariants(t *testing.T) {
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		runAndVerify(t, smallSort, v, 4)
	}
}

func TestKMeansAllVariants(t *testing.T) {
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		runAndVerify(t, smallKMeans, v, 4)
	}
}

func TestGEMMAllVariants(t *testing.T) {
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		runAndVerify(t, smallGEMM, v, 4)
	}
}

func TestStencilAllVariants(t *testing.T) {
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		runAndVerify(t, smallStencil, v, 4)
	}
}

func TestHistAllVariants(t *testing.T) {
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		runAndVerify(t, smallHist, v, 4)
	}
}

func TestTriDeltaBeatsStatic(t *testing.T) {
	d := runAndVerify(t, smallTri, baseline.Delta, 4)
	s := runAndVerify(t, smallTri, baseline.Static, 4)
	if d >= s {
		t.Fatalf("delta (%d) should beat static (%d) on tri", d, s)
	}
}

func TestSortForwardingHelps(t *testing.T) {
	d := runAndVerify(t, smallSort, baseline.Delta, 4)
	lbmc := runAndVerify(t, smallSort, baseline.LBMC, 4)
	if d >= lbmc {
		t.Fatalf("forwarding (%d) should beat +lb+mc (%d) on sort", d, lbmc)
	}
}

func TestKMeansMulticastHelps(t *testing.T) {
	lbmc := runAndVerify(t, smallKMeans, baseline.LBMC, 4)
	lb := runAndVerify(t, smallKMeans, baseline.LB, 4)
	if lbmc > lb {
		t.Fatalf("multicast (%d) should not lose to +lb (%d) on kmeans", lbmc, lb)
	}
}

func TestRegularWorkloadsParity(t *testing.T) {
	// On regular workloads Delta must stay within a few percent of
	// static (the execution model must not tax structured code).
	for _, mk := range []func() *Workload{smallGEMM, smallStencil, smallHist} {
		d := runAndVerify(t, mk, baseline.Delta, 4)
		s := runAndVerify(t, mk, baseline.Static, 4)
		if float64(d) > 1.10*float64(s) {
			t.Fatalf("%s: delta (%d) more than 10%% behind static (%d)", mk().Name, d, s)
		}
	}
}

func TestSuiteRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, nb := range Suite() {
		if names[nb.Name] {
			t.Fatalf("duplicate suite entry %q", nb.Name)
		}
		names[nb.Name] = true
		if nb.Build == nil {
			t.Fatalf("%s has no builder", nb.Name)
		}
	}
	if len(names) != 9 {
		t.Fatalf("suite has %d entries, want 9", len(names))
	}
	if ByName("spmv") == nil || ByName("nope") != nil {
		t.Fatal("ByName lookup broken")
	}
}

func TestSuiteBuildersAreFresh(t *testing.T) {
	nb := ByName("hist")
	a, b := nb.Build(), nb.Build()
	if a.Storage == b.Storage {
		t.Fatal("builders must not share storage between runs")
	}
}

func TestWorkloadCharacteristics(t *testing.T) {
	// Irregular workloads must show high task-size variance; regular
	// ones low. This pins the E1 characterization claims.
	w := smallTri()
	if cv := w.TaskSizes.CV(); cv < 1.0 {
		t.Fatalf("tri task-size CV = %.2f, want ≥1 (heavy skew)", cv)
	}
	g := smallGEMM()
	if cv := g.TaskSizes.CV(); cv > 0.01 {
		t.Fatalf("gemm task-size CV = %.2f, want ≈0 (regular)", cv)
	}
}

func fullConfig() config.Config { return config.Default8() }
