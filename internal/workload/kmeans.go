package workload

import (
	"taskstream/internal/core"
	"taskstream/internal/mem"
)

// KMeansParams sizes the k-means workload.
type KMeansParams struct {
	// Points, K clusters, Dims dimensions, Iters Lloyd iterations,
	// Blocks assignment tasks per iteration.
	Points, K, Dims, Iters, Blocks int
	Seed                           uint64
}

// DefaultKMeans returns the reference configuration: a
// classification-scale centroid table (K·Dims comparable to the
// per-task point stripe), the regime where centroid re-reads dominate
// traffic and read sharing matters.
func DefaultKMeans() KMeansParams {
	return KMeansParams{Points: 16384, K: 128, Dims: 8, Iters: 2, Blocks: 32, Seed: 6}
}

// midFan is the width of the update-reduction tree's first level.
const midFan = 8

// KMeans builds Lloyd's algorithm: each iteration has an assignment
// phase (one task per point block, all reading the same centroid table
// — the multicast shared read) and a two-level reduction (midFan mid
// tasks, one final task) producing the next centroids. Work is
// regular; k-means isolates the read-sharing mechanism.
func KMeans(p KMeansParams) *Workload {
	rng := NewRNG(p.Seed)
	st := mem.NewStorage()
	al := mem.NewAllocator()

	ptsB := al.AllocElems(p.Points * p.Dims)
	pts := make([]uint64, p.Points*p.Dims)
	for i := range pts {
		pts[i] = uint64(rng.Intn(1024))
	}
	st.WriteElems(ptsB, pts)

	// Centroid double buffers, one per iteration parity.
	centB := [2]mem.Addr{al.AllocElems(p.K * p.Dims), al.AllocElems(p.K * p.Dims)}
	cent0 := make([]uint64, p.K*p.Dims)
	for i := range cent0 {
		cent0[i] = uint64(rng.Intn(1024))
	}
	st.WriteElems(centB[0], cent0)

	assignB := al.AllocElems(p.Points)
	// partials: one contiguous region of Blocks × K*(Dims+1) sums+counts
	// (contiguity lets the update task read it as one linear stream).
	pw := p.K * (p.Dims + 1)
	partAll := al.AllocElems(p.Blocks * pw)
	partB := make([]mem.Addr, p.Blocks)
	for b := range partB {
		partB[b] = partAll + mem.Addr(b*pw*8)
	}
	// Mid-reduction buffers, double-buffered across iteration parity.
	midB := al.AllocElems(2 * midFan * pw)

	blockSize := (p.Points + p.Blocks - 1) / p.Blocks

	dist2 := func(pt, c []uint64) uint64 {
		var d uint64
		for j := range pt {
			df := int64(pt[j]) - int64(c[j])
			d += uint64(df * df)
		}
		return d
	}

	assign := &core.TaskType{
		Name: "kmeans-assign",
		DFG:  distDFG("kmeans-assign"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			pts, cents := in[0], in[1]
			n := len(pts) / p.Dims
			out := make([]uint64, n)
			part := make([]uint64, pw)
			for i := 0; i < n; i++ {
				pt := pts[i*p.Dims : (i+1)*p.Dims]
				best, bestD := 0, ^uint64(0)
				for k := 0; k < p.K; k++ {
					d := dist2(pt, cents[k*p.Dims:(k+1)*p.Dims])
					if d < bestD {
						best, bestD = k, d
					}
				}
				out[i] = uint64(best)
				for j := 0; j < p.Dims; j++ {
					part[best*(p.Dims+1)+j] += pt[j]
				}
				part[best*(p.Dims+1)+p.Dims]++
			}
			return core.Result{Out: [][]uint64{nil, nil, out, part}}
		},
	}
	// The update is a two-level reduction tree: mid tasks each sum a
	// stripe of block partials; the final task divides sums by counts.
	mid := &core.TaskType{
		Name: "kmeans-mid",
		DFG:  distDFG("kmeans-mid"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			out := make([]uint64, pw)
			for off := 0; off < len(in[0]); off += pw {
				for i := 0; i < pw; i++ {
					out[i] += in[0][off+i]
				}
			}
			return core.Result{Out: [][]uint64{nil, out}}
		},
	}
	update := &core.TaskType{
		Name: "kmeans-update",
		DFG:  distDFG("kmeans-update"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			sums := make([]uint64, pw)
			for off := 0; off < len(in[0]); off += pw {
				for i := 0; i < pw; i++ {
					sums[i] += in[0][off+i]
				}
			}
			next := make([]uint64, p.K*p.Dims)
			prev := int(t.Scalars[0])
			for k := 0; k < p.K; k++ {
				cnt := sums[k*(p.Dims+1)+p.Dims]
				for j := 0; j < p.Dims; j++ {
					if cnt > 0 {
						next[k*p.Dims+j] = sums[k*(p.Dims+1)+j] / cnt
					} else {
						next[k*p.Dims+j] = s.Read8(centB[prev] + mem.Addr((k*p.Dims+j)*8))
					}
				}
			}
			return core.Result{Out: [][]uint64{nil, next}}
		},
	}

	var tasks []core.Task
	sizes := []int{}
	for it := 0; it < p.Iters; it++ {
		cur, nxt := it%2, (it+1)%2
		for b := 0; b < p.Blocks; b++ {
			lo := b * blockSize
			hi := lo + blockSize
			if hi > p.Points {
				hi = p.Points
			}
			n := hi - lo
			if n <= 0 {
				continue
			}
			tasks = append(tasks, core.Task{
				Type: 0, Phase: 3 * it, Key: uint64(it*p.Blocks + b),
				Ins: []core.InArg{
					{Kind: core.ArgDRAMLinear, Base: ptsB + mem.Addr(lo*p.Dims*8), N: n * p.Dims},
					{Kind: core.ArgDRAMLinear, Base: centB[cur], N: p.K * p.Dims, Shared: true},
				},
				Outs: []core.OutArg{{}, {},
					{Kind: core.OutDRAMLinear, Base: assignB + mem.Addr(lo*8), N: n},
					{Kind: core.OutDRAMLinear, Base: partB[b], N: pw},
				},
				WorkHint: int64(n * p.Dims * p.K / 4),
			})
			sizes = append(sizes, n*p.Dims)
		}
		// Reduction tree: 8 mid tasks sum block stripes, the final task
		// produces the next centroids.
		stripe := (p.Blocks + midFan - 1) / midFan
		nMid := (p.Blocks + stripe - 1) / stripe
		for g := 0; g < nMid; g++ {
			lo := g * stripe
			hi := lo + stripe
			if hi > p.Blocks {
				hi = p.Blocks
			}
			tasks = append(tasks, core.Task{
				Type: 1, Phase: 3*it + 1, Key: uint64(2000 + it*midFan + g),
				Ins:      []core.InArg{{Kind: core.ArgDRAMLinear, Base: partB[lo], N: (hi - lo) * pw}},
				Outs:     []core.OutArg{{}, {Kind: core.OutDRAMLinear, Base: midB + mem.Addr((it%2*midFan+g)*pw*8), N: pw}},
				WorkHint: int64((hi - lo) * pw),
			})
			sizes = append(sizes, (hi-lo)*pw)
		}
		tasks = append(tasks, core.Task{
			Type: 2, Phase: 3*it + 2, Key: uint64(1000 + it),
			Scalars:  []uint64{uint64(cur)},
			Ins:      []core.InArg{{Kind: core.ArgDRAMLinear, Base: midB + mem.Addr(it%2*midFan*pw*8), N: nMid * pw}},
			Outs:     []core.OutArg{{}, {Kind: core.OutDRAMLinear, Base: centB[nxt], N: p.K * p.Dims}},
			WorkHint: int64(nMid * pw),
		})
		sizes = append(sizes, nMid*pw)
	}

	// Reference: the same algorithm in plain Go.
	verify := func() error {
		cents := append([]uint64(nil), cent0...)
		var lastAssign []uint64
		for it := 0; it < p.Iters; it++ {
			assignRef := make([]uint64, p.Points)
			sums := make([]uint64, p.K*p.Dims)
			cnts := make([]uint64, p.K)
			for i := 0; i < p.Points; i++ {
				pt := pts[i*p.Dims : (i+1)*p.Dims]
				best, bestD := 0, ^uint64(0)
				for k := 0; k < p.K; k++ {
					d := dist2(pt, cents[k*p.Dims:(k+1)*p.Dims])
					if d < bestD {
						best, bestD = k, d
					}
				}
				assignRef[i] = uint64(best)
				for j := 0; j < p.Dims; j++ {
					sums[best*p.Dims+j] += pt[j]
				}
				cnts[best]++
			}
			for k := 0; k < p.K; k++ {
				for j := 0; j < p.Dims; j++ {
					if cnts[k] > 0 {
						cents[k*p.Dims+j] = sums[k*p.Dims+j] / cnts[k]
					}
				}
			}
			lastAssign = assignRef
		}
		for i := 0; i < p.Points; i++ {
			if got := st.Read8(assignB + mem.Addr(i*8)); got != lastAssign[i] {
				return errf("kmeans: assign[%d] = %d, want %d", i, got, lastAssign[i])
			}
		}
		final := (p.Iters) % 2
		for i := 0; i < p.K*p.Dims; i++ {
			if got := st.Read8(centB[final] + mem.Addr(i*8)); got != cents[i] {
				return errf("kmeans: centroid[%d] = %d, want %d", i, got, cents[i])
			}
		}
		return nil
	}

	return &Workload{
		Name: "kmeans",
		Prog: &core.Program{Name: "kmeans", Types: []*core.TaskType{assign, mid, update},
			NumPhases: 3 * p.Iters, Tasks: tasks},
		Storage:      st,
		Verify:       verify,
		TaskSizes:    sizesHistogram(sizes),
		BytesTouched: int64(p.Points*p.Dims*8*p.Iters + p.Points*8),
	}
}
