package workload

import (
	"taskstream/internal/core"
	"taskstream/internal/mem"
)

// GEMMParams sizes the dense matrix-multiply workload.
type GEMMParams struct {
	// N is the square matrix dimension; Tile the square tile size.
	N, Tile int
	Seed    uint64
}

// DefaultGEMM returns the reference configuration.
func DefaultGEMM() GEMMParams { return GEMMParams{N: 128, Tile: 32, Seed: 7} }

// GEMM builds C = A·B with one task per output tile. A row-blocks and
// B column-blocks (B stored transposed, so both are contiguous) are
// marked shared: every task in a tile row re-reads the same A block and
// every task in a tile column the same B block — dense-kernel read
// sharing that multicast recovers. Work is perfectly regular, so this
// workload doubles as the "TaskStream must not lose to static on
// regular code" control.
func GEMM(p GEMMParams) *Workload {
	if p.N%p.Tile != 0 {
		panic("workload: N must be a multiple of Tile")
	}
	rng := NewRNG(p.Seed)
	st := mem.NewStorage()
	al := mem.NewAllocator()

	n, t := p.N, p.Tile
	nt := n / t
	aB := al.AllocElems(n * n)  // row-major A
	btB := al.AllocElems(n * n) // row-major Bᵀ
	cB := al.AllocElems(n * n)  // tile-major C
	spadB := al.AllocElems(4096)

	a := make([]uint64, n*n)
	bt := make([]uint64, n*n)
	for i := range a {
		a[i] = uint64(rng.Intn(64))
		bt[i] = uint64(rng.Intn(64))
	}
	st.WriteElems(aB, a)
	st.WriteElems(btB, bt)

	tt := &core.TaskType{
		Name: "gemm-tile",
		DFG:  macDFG("gemm"),
		Kernel: func(task *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			ab, bb := in[0], in[1] // t×n row block of A, t×n row block of Bᵀ
			out := make([]uint64, t*t)
			for i := 0; i < t; i++ {
				for j := 0; j < t; j++ {
					var sum uint64
					for k := 0; k < n; k++ {
						sum += ab[i*n+k] * bb[j*n+k]
					}
					out[i*t+j] = sum
				}
			}
			return core.Result{Out: [][]uint64{nil, nil, nil, out}}
		},
	}

	var tasks []core.Task
	sizes := []int{}
	for ti := 0; ti < nt; ti++ {
		for tj := 0; tj < nt; tj++ {
			work := t * t * n / 4 // MACs per task at fabric width 4
			tasks = append(tasks, core.Task{
				Type: 0, Key: uint64(ti*nt + tj),
				Ins: []core.InArg{
					{Kind: core.ArgDRAMLinear, Base: aB + mem.Addr(ti*t*n*8), N: t * n, Shared: true},
					{Kind: core.ArgDRAMLinear, Base: btB + mem.Addr(tj*t*n*8), N: t * n, Shared: true},
					// Accumulator/operand-reuse traffic staged in the
					// lane scratchpad: t*t*n MACs at fabric width 4.
					{Kind: core.ArgSpadLinear, Base: spadB, N: work},
				},
				Outs: []core.OutArg{{}, {}, {},
					{Kind: core.OutDRAMLinear, Base: cB + mem.Addr((ti*nt+tj)*t*t*8), N: t * t}},
				WorkHint: int64(work),
			})
			sizes = append(sizes, work)
		}
	}

	verify := func() error {
		for ti := 0; ti < nt; ti++ {
			for tj := 0; tj < nt; tj++ {
				base := cB + mem.Addr((ti*nt+tj)*t*t*8)
				for i := 0; i < t; i++ {
					for j := 0; j < t; j++ {
						var want uint64
						row, col := ti*t+i, tj*t+j
						for k := 0; k < n; k++ {
							want += a[row*n+k] * bt[col*n+k]
						}
						if got := st.Read8(base + mem.Addr((i*t+j)*8)); got != want {
							return errf("gemm: C[%d,%d] = %d, want %d", row, col, got, want)
						}
					}
				}
			}
		}
		return nil
	}

	return &Workload{
		Name: "gemm",
		Prog: &core.Program{Name: "gemm", Types: []*core.TaskType{tt},
			NumPhases: 1, Tasks: tasks},
		Storage:      st,
		Verify:       verify,
		TaskSizes:    sizesHistogram(sizes),
		BytesTouched: int64(3 * n * n * 8),
	}
}
