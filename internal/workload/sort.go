package workload

import (
	"sort"

	"taskstream/internal/core"
	"taskstream/internal/mem"
)

// SortParams sizes the mergesort workload.
type SortParams struct {
	// N is the total element count; Leaves the number of leaf chunks
	// (must be a power of two). The merge tree has log2(Leaves) levels.
	N, Leaves int
	Seed      uint64
}

// DefaultSort returns the reference configuration.
func DefaultSort() SortParams { return SortParams{N: 1 << 16, Leaves: 32, Seed: 5} }

// MergeSort builds a mergesort task tree: leaf tasks sort chunks, each
// internal task merges two children. Every edge of the tree is a tagged
// producer→consumer stream, so TaskStream's forwarding recovers a
// pipeline across the whole tree — the signature case for pipelined
// inter-task dependences. Under the static model every level is a
// barrier with a DRAM round trip.
func MergeSort(p SortParams) *Workload {
	if p.Leaves&(p.Leaves-1) != 0 || p.Leaves < 2 {
		panic("workload: Leaves must be a power of two ≥ 2")
	}
	rng := NewRNG(p.Seed)
	st := mem.NewStorage()
	al := mem.NewAllocator()

	inB := al.AllocElems(p.N)
	input := make([]uint64, p.N)
	for i := range input {
		input[i] = rng.Next() >> 16
	}
	st.WriteElems(inB, input)

	chunk := p.N / p.Leaves
	levels := 0
	for l := p.Leaves; l > 1; l >>= 1 {
		levels++
	}
	// buf[l][i]: output buffer for node i at level l (level 0 = leaves).
	buf := make([][]mem.Addr, levels+1)
	for l := 0; l <= levels; l++ {
		nodes := p.Leaves >> l
		buf[l] = make([]mem.Addr, nodes)
		for i := 0; i < nodes; i++ {
			buf[l][i] = al.AllocElems(chunk << l)
		}
	}
	tag := func(l, i int) uint64 { return uint64(l+1)<<24 | uint64(i+1) }

	leaf := &core.TaskType{
		Name: "sort-leaf",
		DFG:  mergeDFG("sort-leaf"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			out := append([]uint64(nil), in[0]...)
			sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
			return core.Result{Out: [][]uint64{out}}
		},
	}
	merge := &core.TaskType{
		Name: "sort-merge",
		DFG:  mergeDFG("sort-merge"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			a, b := in[0], in[1]
			out := make([]uint64, 0, len(a)+len(b))
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				if a[i] <= b[j] {
					out = append(out, a[i])
					i++
				} else {
					out = append(out, b[j])
					j++
				}
			}
			out = append(out, a[i:]...)
			out = append(out, b[j:]...)
			return core.Result{Out: [][]uint64{nil, nil, out}}
		},
	}

	var tasks []core.Task
	sizes := []int{}
	for i := 0; i < p.Leaves; i++ {
		tasks = append(tasks, core.Task{
			Type: 0, Phase: 0, Key: uint64(i),
			Ins:      []core.InArg{{Kind: core.ArgDRAMLinear, Base: inB + mem.Addr(i*chunk*8), N: chunk}},
			Outs:     []core.OutArg{{Kind: core.OutForward, Base: buf[0][i], N: chunk, Tag: tag(0, i)}},
			WorkHint: int64(chunk),
		})
		sizes = append(sizes, chunk)
	}
	for l := 1; l <= levels; l++ {
		nodes := p.Leaves >> l
		n := chunk << l
		for i := 0; i < nodes; i++ {
			out := core.OutArg{Kind: core.OutForward, Base: buf[l][i], N: n, Tag: tag(l, i)}
			if l == levels {
				out = core.OutArg{Kind: core.OutDRAMLinear, Base: buf[l][i], N: n}
			}
			tasks = append(tasks, core.Task{
				Type: 1, Phase: l, Key: uint64(l)<<32 | uint64(i),
				Ins: []core.InArg{
					{Kind: core.ArgForwardIn, Base: buf[l-1][2*i], N: n / 2, Tag: tag(l-1, 2*i)},
					{Kind: core.ArgForwardIn, Base: buf[l-1][2*i+1], N: n / 2, Tag: tag(l-1, 2*i+1)},
				},
				Outs:     []core.OutArg{{}, {}, out},
				WorkHint: int64(n),
			})
			sizes = append(sizes, n)
		}
	}

	verify := func() error {
		want := append([]uint64(nil), input...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		got := st.ReadElems(buf[levels][0], p.N)
		for i := range want {
			if got[i] != want[i] {
				return errf("sort: out[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}

	return &Workload{
		Name: "sort",
		Prog: &core.Program{Name: "sort", Types: []*core.TaskType{leaf, merge},
			NumPhases: levels + 1, Tasks: tasks},
		Storage:      st,
		Verify:       verify,
		TaskSizes:    sizesHistogram(sizes),
		BytesTouched: int64(p.N * 8 * (levels + 2)),
	}
}
