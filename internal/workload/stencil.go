package workload

import (
	"taskstream/internal/core"
	"taskstream/internal/mem"
)

// StencilParams sizes the 2-D stencil workload.
type StencilParams struct {
	// Rows×Cols grid; Band rows per task.
	Rows, Cols, Band int
	Seed             uint64
}

// DefaultStencil returns the reference configuration.
func DefaultStencil() StencilParams {
	return StencilParams{Rows: 256, Cols: 512, Band: 16, Seed: 8}
}

// Stencil builds one 5-point smoothing sweep with one task per row
// band (each reading its band plus one halo row on each side). Work is
// perfectly regular and memory access fully streaming — the second
// "static should already be fine" control workload.
func Stencil(p StencilParams) *Workload {
	rng := NewRNG(p.Seed)
	st := mem.NewStorage()
	al := mem.NewAllocator()

	inB := al.AllocElems(p.Rows * p.Cols)
	outB := al.AllocElems(p.Rows * p.Cols)
	grid := make([]uint64, p.Rows*p.Cols)
	for i := range grid {
		grid[i] = uint64(rng.Intn(4096))
	}
	st.WriteElems(inB, grid)

	at := func(r, c int) uint64 {
		if r < 0 || r >= p.Rows || c < 0 || c >= p.Cols {
			return 0
		}
		return grid[r*p.Cols+c]
	}
	point := func(r, c int) uint64 {
		return (at(r, c) + at(r-1, c) + at(r+1, c) + at(r, c-1) + at(r, c+1)) / 5
	}

	tt := &core.TaskType{
		Name: "stencil-band",
		DFG:  stencilDFG("stencil"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			r0, r1 := int(t.Scalars[0]), int(t.Scalars[1])
			out := make([]uint64, (r1-r0)*p.Cols)
			for r := r0; r < r1; r++ {
				for c := 0; c < p.Cols; c++ {
					out[(r-r0)*p.Cols+c] = point(r, c)
				}
			}
			return core.Result{Out: [][]uint64{out}}
		},
	}

	var tasks []core.Task
	sizes := []int{}
	for r0 := 0; r0 < p.Rows; r0 += p.Band {
		r1 := r0 + p.Band
		if r1 > p.Rows {
			r1 = p.Rows
		}
		lo := r0 - 1
		if lo < 0 {
			lo = 0
		}
		hi := r1 + 1
		if hi > p.Rows {
			hi = p.Rows
		}
		inN := (hi - lo) * p.Cols
		tasks = append(tasks, core.Task{
			Type:     0,
			Key:      uint64(r0),
			Scalars:  []uint64{uint64(r0), uint64(r1)},
			Ins:      []core.InArg{{Kind: core.ArgDRAMLinear, Base: inB + mem.Addr(lo*p.Cols*8), N: inN}},
			Outs:     []core.OutArg{{Kind: core.OutDRAMLinear, Base: outB + mem.Addr(r0*p.Cols*8), N: (r1 - r0) * p.Cols}},
			WorkHint: int64(inN),
		})
		sizes = append(sizes, inN)
	}

	verify := func() error {
		for r := 0; r < p.Rows; r++ {
			for c := 0; c < p.Cols; c++ {
				want := point(r, c)
				if got := st.Read8(outB + mem.Addr((r*p.Cols+c)*8)); got != want {
					return errf("stencil: out[%d,%d] = %d, want %d", r, c, got, want)
				}
			}
		}
		return nil
	}

	return &Workload{
		Name: "stencil",
		Prog: &core.Program{Name: "stencil", Types: []*core.TaskType{tt},
			NumPhases: 1, Tasks: tasks},
		Storage:      st,
		Verify:       verify,
		TaskSizes:    sizesHistogram(sizes),
		BytesTouched: int64(2 * p.Rows * p.Cols * 8),
	}
}
