package workload

// Suite is the ordered benchmark suite used by the experiment harness:
// irregular workloads first (where TaskStream should win), regular
// controls last (where it must hold parity).
func Suite() []NamedBuilder {
	return []NamedBuilder{
		{"spmv", func() *Workload { return SpMV(DefaultSpMV()) }},
		{"bfs", func() *Workload { return BFS(DefaultBFS()) }},
		{"join", func() *Workload { return Join(DefaultJoin()) }},
		{"tri", func() *Workload { return Tri(DefaultTri()) }},
		{"sort", func() *Workload { return MergeSort(DefaultSort()) }},
		{"kmeans", func() *Workload { return KMeans(DefaultKMeans()) }},
		{"gemm", func() *Workload { return GEMM(DefaultGEMM()) }},
		{"stencil", func() *Workload { return Stencil(DefaultStencil()) }},
		{"hist", func() *Workload { return Hist(DefaultHist()) }},
	}
}

// NamedBuilder pairs a workload name with its default constructor. The
// builder is called fresh for every run so that storage state never
// leaks between runs.
type NamedBuilder struct {
	Name  string
	Build func() *Workload
}

// ByName returns the suite builder with the given name, or nil.
func ByName(name string) *NamedBuilder {
	for _, nb := range Suite() {
		if nb.Name == name {
			nb := nb
			return &nb
		}
	}
	return nil
}
