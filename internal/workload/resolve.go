package workload

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Resolver tries to turn a workload name into a builder; ok=false
// means the name is not in this resolver's grammar (the next one is
// consulted). Registered resolvers extend the name grammar across
// package boundaries — internal/analysis/infer registers the
// "+inferred" suffix this way, so the delta-serve daemon can rebuild
// any workload the experiment suite names from the wire.
type Resolver func(name string) (NamedBuilder, bool)

var (
	resolversMu sync.RWMutex
	resolvers   []Resolver
)

// RegisterResolver appends an extension resolver, consulted by Resolve
// in registration order after the built-in grammar.
func RegisterResolver(r Resolver) {
	resolversMu.Lock()
	defer resolversMu.Unlock()
	resolvers = append(resolvers, r)
}

// Resolve parses a workload name into the builder it canonically
// denotes — the inverse of the spec-identity contract ("the name
// determines what Build constructs"). It accepts the suite names
// ("spmv", …, "hist"), the parameterized grain grammar the E7 sweep
// uses ("spmv-g64" = SpMV with 64 rows per task), and anything a
// registered extension resolver claims. Unknown names error; the
// daemon turns that into a client-visible rejection rather than
// guessing.
func Resolve(name string) (NamedBuilder, error) {
	if nb := ByName(name); nb != nil {
		return *nb, nil
	}
	if base, param, ok := strings.Cut(name, "-g"); ok && base == "spmv" {
		grain, err := strconv.Atoi(param)
		if err != nil || grain <= 0 || strconv.Itoa(grain) != param {
			return NamedBuilder{}, fmt.Errorf("workload: bad grain in %q", name)
		}
		p := DefaultSpMV()
		p.RowsPerTask = grain
		return NamedBuilder{
			Name:  name,
			Build: func() *Workload { return SpMV(p) },
		}, nil
	}
	if base, param, ok := strings.Cut(name, "-a"); ok && base == "spmv" {
		// "spmv-a<N>": SpMV with power-law exponent N/100 — the E16 skew
		// sweep's grammar (smaller alpha = heavier row-length tail).
		centi, err := strconv.Atoi(param)
		if err != nil || centi <= 0 || strconv.Itoa(centi) != param {
			return NamedBuilder{}, fmt.Errorf("workload: bad alpha in %q", name)
		}
		p := DefaultSpMV()
		p.Alpha = float64(centi) / 100
		return NamedBuilder{
			Name:  name,
			Build: func() *Workload { return SpMV(p) },
		}, nil
	}
	// Snapshot under the lock, iterate outside it: resolvers may
	// themselves call Resolve (the "+inferred" suffix recurses on its
	// base name), and a recursive RLock could deadlock against a
	// queued writer.
	resolversMu.RLock()
	rs := resolvers
	resolversMu.RUnlock()
	for _, r := range rs {
		if nb, ok := r(name); ok {
			return nb, nil
		}
	}
	return NamedBuilder{}, fmt.Errorf("workload: unknown workload %q", name)
}
