package workload

import (
	"taskstream/internal/core"
	"taskstream/internal/mem"
)

// SpMVParams sizes the sparse matrix-vector workload.
type SpMVParams struct {
	Rows, Cols int
	// Alpha is the power-law exponent of row lengths (smaller = more
	// skew); MinRow/MaxRow clamp them.
	Alpha          float64
	MinRow, MaxRow int
	// RowsPerTask is the task granularity (E7 sweeps it).
	RowsPerTask int
	// Clustered sorts rows heaviest-first (degree-ordered storage, the
	// common web-graph/matrix layout), which concentrates work in a few
	// contiguous blocks — the pattern that defeats static partitioning.
	Clustered bool
	Seed      uint64
}

// DefaultSpMV returns the reference configuration: strongly skewed,
// degree-ordered rows, the canonical load-imbalance victim.
func DefaultSpMV() SpMVParams {
	return SpMVParams{Rows: 4096, Cols: 4096, Alpha: 1.5, MinRow: 2, MaxRow: 1024,
		RowsPerTask: 32, Clustered: true, Seed: 1}
}

// SpMV builds y = A·x with one task per block of matrix rows. Tasks
// stream the block's values and column indices linearly from DRAM and
// gather x from the lane scratchpad (x is small and replicated as
// resident data, as stream-dataflow SpMV implementations stage it).
// The work hint is the block's non-zero count, which varies wildly
// across blocks under the power-law row distribution.
func SpMV(p SpMVParams) *Workload {
	rng := NewRNG(p.Seed)
	m := PowerLawCSR(rng, p.Rows, p.Cols, p.Alpha, p.MinRow, p.MaxRow)
	if p.Clustered {
		sortRowsByLengthDesc(m)
	}
	st := mem.NewStorage()
	al := mem.NewAllocator()

	valsB := al.AllocElems(m.NNZ())
	colB := al.AllocElems(m.NNZ())
	xB := al.AllocElems(p.Cols)
	yB := al.AllocElems(p.Rows)
	rpB := al.AllocElems(p.Rows + 1)

	for i, v := range m.Vals {
		st.Write8(valsB+mem.Addr(i*8), v)
	}
	for i, c := range m.ColIdx {
		st.Write8(colB+mem.Addr(i*8), uint64(c))
	}
	x := make([]uint64, p.Cols)
	for i := range x {
		x[i] = uint64(rng.Intn(100))
	}
	st.WriteElems(xB, x)
	for i, rp := range m.RowPtr {
		st.Write8(rpB+mem.Addr(i*8), uint64(rp))
	}

	tt := &core.TaskType{
		Name: "spmv-block",
		DFG:  macDFG("spmv"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			r0, r1 := int(t.Scalars[0]), int(t.Scalars[1])
			vals, xs := in[0], in[2]
			out := make([]uint64, r1-r0)
			base := s.Read8(rpB + mem.Addr(r0*8))
			for r := r0; r < r1; r++ {
				lo := s.Read8(rpB+mem.Addr(r*8)) - base
				hi := s.Read8(rpB+mem.Addr((r+1)*8)) - base
				var sum uint64
				for k := lo; k < hi; k++ {
					sum += vals[k] * xs[k]
				}
				out[r-r0] = sum
			}
			return core.Result{Out: [][]uint64{out}}
		},
	}

	var tasks []core.Task
	sizes := []int{}
	for r0 := 0; r0 < p.Rows; r0 += p.RowsPerTask {
		r1 := r0 + p.RowsPerTask
		if r1 > p.Rows {
			r1 = p.Rows
		}
		lo, hi := int(m.RowPtr[r0]), int(m.RowPtr[r1])
		nnz := hi - lo
		if nnz == 0 {
			continue
		}
		tasks = append(tasks, core.Task{
			Type:    0,
			Key:     uint64(r0),
			Scalars: []uint64{uint64(r0), uint64(r1)},
			Ins: []core.InArg{
				{Kind: core.ArgDRAMLinear, Base: valsB + mem.Addr(lo*8), N: nnz},
				{Kind: core.ArgDRAMLinear, Base: colB + mem.Addr(lo*8), N: nnz},
				{Kind: core.ArgSpadGather, Base: xB, IdxBase: colB + mem.Addr(lo*8), N: nnz},
			},
			Outs:     []core.OutArg{{Kind: core.OutDRAMLinear, Base: yB + mem.Addr(r0*8), N: r1 - r0}},
			WorkHint: int64(nnz),
		})
		sizes = append(sizes, nnz)
	}

	verify := func() error {
		for r := 0; r < p.Rows; r++ {
			var want uint64
			for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
				want += m.Vals[k] * x[m.ColIdx[k]]
			}
			if got := st.Read8(yB + mem.Addr(r*8)); got != want {
				return errf("spmv: y[%d] = %d, want %d", r, got, want)
			}
		}
		return nil
	}

	return &Workload{
		Name:         "spmv",
		Prog:         &core.Program{Name: "spmv", Types: []*core.TaskType{tt}, NumPhases: 1, Tasks: tasks},
		Storage:      st,
		Verify:       verify,
		TaskSizes:    sizesHistogram(sizes),
		BytesTouched: int64(m.NNZ()*16 + p.Cols*8 + p.Rows*8),
	}
}
