package workload

import "testing"

func TestResolveSuiteNames(t *testing.T) {
	for _, nb := range Suite() {
		got, err := Resolve(nb.Name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", nb.Name, err)
		}
		if got.Name != nb.Name {
			t.Fatalf("Resolve(%q) returned builder named %q", nb.Name, got.Name)
		}
		if got.Build == nil || got.Build() == nil {
			t.Fatalf("Resolve(%q) returned a non-building builder", nb.Name)
		}
	}
}

func TestResolveGrainGrammar(t *testing.T) {
	nb, err := Resolve("spmv-g64")
	if err != nil {
		t.Fatal(err)
	}
	w := nb.Build()
	// The grain builder must actually change the task decomposition
	// versus the default (rows/task 64 vs DefaultSpMV's).
	def := SpMV(DefaultSpMV())
	if DefaultSpMV().RowsPerTask == 64 {
		t.Fatal("test fixture degenerate: default grain is already 64")
	}
	if w.TaskSizes.Count() == def.TaskSizes.Count() {
		t.Fatalf("spmv-g64 has the same task count as default spmv (%d)", def.TaskSizes.Count())
	}

	for _, bad := range []string{"spmv-g", "spmv-g0", "spmv-g-8", "spmv-gx", "spmv-g08"} {
		if _, err := Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) accepted a malformed grain", bad)
		}
	}
}

func TestResolveUnknown(t *testing.T) {
	for _, bad := range []string{"", "nope", "gemm-g8", "spmv+nope"} {
		if _, err := Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) did not fail", bad)
		}
	}
}

func TestResolveAlphaGrammar(t *testing.T) {
	nb, err := Resolve("spmv-a110")
	if err != nil {
		t.Fatal(err)
	}
	w := nb.Build()
	// Alpha 1.10 skews the power-law row lengths harder than the
	// default 1.5, so the task-size distribution must actually differ.
	def := SpMV(DefaultSpMV())
	if DefaultSpMV().Alpha == 1.10 {
		t.Fatal("test fixture degenerate: default alpha is already 1.10")
	}
	if w.TaskSizes.Sum() == def.TaskSizes.Sum() {
		t.Fatalf("spmv-a110 has the same total work as default spmv (%d)", def.TaskSizes.Sum())
	}

	for _, bad := range []string{"spmv-a", "spmv-a0", "spmv-a-9", "spmv-ax", "spmv-a099"} {
		if _, err := Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) accepted a malformed alpha", bad)
		}
	}
}
