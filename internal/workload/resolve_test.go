package workload

import "testing"

func TestResolveSuiteNames(t *testing.T) {
	for _, nb := range Suite() {
		got, err := Resolve(nb.Name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", nb.Name, err)
		}
		if got.Name != nb.Name {
			t.Fatalf("Resolve(%q) returned builder named %q", nb.Name, got.Name)
		}
		if got.Build == nil || got.Build() == nil {
			t.Fatalf("Resolve(%q) returned a non-building builder", nb.Name)
		}
	}
}

func TestResolveGrainGrammar(t *testing.T) {
	nb, err := Resolve("spmv-g64")
	if err != nil {
		t.Fatal(err)
	}
	w := nb.Build()
	// The grain builder must actually change the task decomposition
	// versus the default (rows/task 64 vs DefaultSpMV's).
	def := SpMV(DefaultSpMV())
	if DefaultSpMV().RowsPerTask == 64 {
		t.Fatal("test fixture degenerate: default grain is already 64")
	}
	if w.TaskSizes.Count() == def.TaskSizes.Count() {
		t.Fatalf("spmv-g64 has the same task count as default spmv (%d)", def.TaskSizes.Count())
	}

	for _, bad := range []string{"spmv-g", "spmv-g0", "spmv-g-8", "spmv-gx", "spmv-g08"} {
		if _, err := Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) accepted a malformed grain", bad)
		}
	}
}

func TestResolveUnknown(t *testing.T) {
	for _, bad := range []string{"", "nope", "gemm-g8", "spmv+nope"} {
		if _, err := Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) did not fail", bad)
		}
	}
}
