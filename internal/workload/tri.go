package workload

import (
	"taskstream/internal/core"
	"taskstream/internal/mem"
)

// TriParams sizes the triangle-counting workload.
type TriParams struct {
	// Scale gives 2^Scale vertices; AvgDeg average degree (R-MAT).
	Scale  int
	AvgDeg int
	Seed   uint64
}

// DefaultTri returns the reference configuration.
func DefaultTri() TriParams { return TriParams{Scale: 10, AvgDeg: 10, Seed: 4} }

// Tri counts triangles with one task per vertex: task u intersects
// adj(u) with adj(w) for each neighbor w > u. Intersection operands are
// staged in the lane scratchpad (port 1 models that traffic), so task
// work scales with Σ_w min(deg u, deg w) — quadratically skewed under
// R-MAT degrees, the harshest load-balancing test in the suite.
func Tri(p TriParams) *Workload {
	rng := NewRNG(p.Seed)
	g := RMAT(rng, p.Scale, p.AvgDeg)
	st := mem.NewStorage()
	al := mem.NewAllocator()

	adjB := al.AllocElems(g.Edges())
	cntB := al.AllocElems(g.N)
	for i, c := range g.Col {
		st.Write8(adjB+mem.Addr(i*8), uint64(c))
	}
	// Lane-scratchpad staging region for intersection operands.
	spadB := al.AllocElems(8192)

	// work(u) = Σ_{w∈adj(u), w>u} min(deg u, deg w): the merge-style
	// intersection cost.
	work := make([]int, g.N)
	for u := 0; u < g.N; u++ {
		du := g.Degree(u)
		for _, w := range g.Neighbors(u) {
			if int(w) <= u {
				continue
			}
			dw := g.Degree(int(w))
			if du < dw {
				work[u] += du
			} else {
				work[u] += dw
			}
		}
	}

	intersectCount := func(a, b []int32) uint64 {
		var n uint64
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				n++
				i++
				j++
			}
		}
		return n
	}

	tt := &core.TaskType{
		Name: "tri-vertex",
		DFG:  intersectDFG("tri"),
		Kernel: func(t *core.Task, in [][]uint64, s *mem.Storage) core.Result {
			u := int(t.Scalars[0])
			var count uint64
			for _, w := range g.Neighbors(u) {
				if int(w) <= u {
					continue
				}
				count += intersectCount(g.Neighbors(u), g.Neighbors(int(w)))
			}
			return core.Result{Out: [][]uint64{nil, nil, {count}}}
		},
	}

	var tasks []core.Task
	sizes := []int{}
	for u := 0; u < g.N; u++ {
		deg := g.Degree(u)
		if deg == 0 {
			continue
		}
		w := work[u]
		spadN := w
		if spadN > 1<<16 {
			spadN = 1 << 16
		}
		tasks = append(tasks, core.Task{
			Type:    0,
			Key:     uint64(u),
			Scalars: []uint64{uint64(u)},
			Ins: []core.InArg{
				{Kind: core.ArgDRAMLinear, Base: adjB + mem.Addr(int(g.RowPtr[u])*8), N: deg},
				{Kind: core.ArgSpadLinear, Base: spadB, N: spadN},
			},
			Outs:     []core.OutArg{{}, {}, {Kind: core.OutDRAMLinear, Base: cntB + mem.Addr(u*8), N: 1}},
			WorkHint: int64(w + deg + 1),
		})
		sizes = append(sizes, w+deg+1)
	}

	// Reference count via hash-set lookups (independent algorithm).
	refTotal := uint64(0)
	edgeSet := make(map[int64]bool, g.Edges())
	for u := 0; u < g.N; u++ {
		for _, w := range g.Neighbors(u) {
			edgeSet[int64(u)<<32|int64(w)] = true
		}
	}
	refPer := make([]uint64, g.N)
	for u := 0; u < g.N; u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) <= u {
				continue
			}
			for _, z := range g.Neighbors(u) {
				if edgeSet[int64(w)<<32|int64(z)] {
					refPer[u]++
				}
			}
		}
	}
	for _, c := range refPer {
		refTotal += c
	}

	verify := func() error {
		var total uint64
		for u := 0; u < g.N; u++ {
			got := st.Read8(cntB + mem.Addr(u*8))
			if got != refPer[u] {
				return errf("tri: count[%d] = %d, want %d", u, got, refPer[u])
			}
			total += got
		}
		if total != refTotal {
			return errf("tri: total = %d, want %d", total, refTotal)
		}
		return nil
	}

	return &Workload{
		Name: "tri",
		Prog: &core.Program{Name: "tri", Types: []*core.TaskType{tt},
			NumPhases: 1, Tasks: tasks},
		Storage:      st,
		Verify:       verify,
		TaskSizes:    sizesHistogram(sizes),
		BytesTouched: int64(g.Edges()*8 + g.N*8),
	}
}
