// Package workload provides the task-parallel benchmark suite and its
// synthetic input generators. Each workload constructs a core.Program
// plus pre-initialized storage, and can verify the machine's results
// against a plain-Go reference — so every simulated run is checked
// end to end, under every execution model.
//
// Generators are deterministic: a Workload built twice from the same
// parameters is bit-identical.
package workload

import (
	"fmt"
	"math"

	"taskstream/internal/core"
	"taskstream/internal/mem"
	"taskstream/internal/stats"
)

// Workload couples a program with its data and its checker.
type Workload struct {
	Name    string
	Prog    *core.Program
	Storage *mem.Storage
	// Verify checks the results left in Storage after a run.
	Verify func() error
	// TaskSizes holds the per-task work estimates used for
	// characterization (E1).
	TaskSizes *stats.Histogram
	// BytesTouched estimates the unique bytes the workload reads+writes.
	BytesTouched int64
}

// RNG is a small deterministic generator (xorshift*), so workloads do
// not depend on math/rand ordering guarantees across Go versions.
type RNG struct {
	s uint64
}

// NewRNG seeds a generator; seed 0 is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{s: seed}
}

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// PowerLawSizes draws n sizes from a discrete power-law (Pareto-ish)
// distribution with the given exponent alpha (>1), minimum size min,
// capped at max. Smaller alpha = heavier tail = more skew.
func PowerLawSizes(rng *RNG, n int, alpha float64, min, max int) []int {
	if alpha <= 1 {
		panic("workload: power-law alpha must exceed 1")
	}
	out := make([]int, n)
	for i := range out {
		u := rng.Float64()
		// Inverse-CDF sampling of a Pareto distribution.
		v := float64(min) / math.Pow(1-u, 1/(alpha-1))
		s := int(v)
		if s < min {
			s = min
		}
		if s > max {
			s = max
		}
		out[i] = s
	}
	return out
}

// Zipf draws n keys in [0, universe) with a Zipfian rank distribution
// of skew s (s=0 is uniform; s≈1 is classic web skew).
type Zipf struct {
	rng  *RNG
	cdf  []float64
	perm []int
}

// NewZipf precomputes the distribution.
func NewZipf(rng *RNG, universe int, s float64) *Zipf {
	cdf := make([]float64, universe)
	sum := 0.0
	for i := 0; i < universe; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	// Random permutation so hot keys are spread over the key space.
	perm := make([]int, universe)
	for i := range perm {
		perm[i] = i
	}
	for i := universe - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return &Zipf{rng: rng, cdf: cdf, perm: perm}
}

// Next draws one key.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return z.perm[lo]
}

// Graph is a CSR-format directed graph.
type Graph struct {
	N      int
	RowPtr []int32 // len N+1
	Col    []int32 // len = edges
}

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int { return int(g.RowPtr[v+1] - g.RowPtr[v]) }

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.Col) }

// Neighbors returns v's adjacency slice.
func (g *Graph) Neighbors(v int) []int32 {
	return g.Col[g.RowPtr[v]:g.RowPtr[v+1]]
}

// RMAT generates a scale-free graph with n = 2^scale vertices and
// roughly avgDeg*n edges using the R-MAT recursive quadrant model
// (a=0.57, b=c=0.19), deduplicated, self-loops removed, adjacency
// sorted. The result's degree distribution is heavily skewed — the
// irregularity the paper's workloads exhibit.
func RMAT(rng *RNG, scale int, avgDeg int) *Graph {
	n := 1 << scale
	target := n * avgDeg
	type edge struct{ u, v int32 }
	seen := make(map[int64]bool, target)
	edges := make([]edge, 0, target)
	const a, b, c = 0.57, 0.19, 0.19
	for len(edges) < target {
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		key := int64(u)<<32 | int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, edge{int32(u), int32(v)})
	}
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.u]++
	}
	g := &Graph{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		g.RowPtr[i+1] = g.RowPtr[i] + deg[i]
	}
	g.Col = make([]int32, len(edges))
	cursor := make([]int32, n)
	copy(cursor, g.RowPtr[:n])
	for _, e := range edges {
		g.Col[cursor[e.u]] = e.v
		cursor[e.u]++
	}
	// Sort each adjacency list (insertion sort; lists are short).
	for v := 0; v < n; v++ {
		adj := g.Neighbors(v)
		for i := 1; i < len(adj); i++ {
			for j := i; j > 0 && adj[j-1] > adj[j]; j-- {
				adj[j-1], adj[j] = adj[j], adj[j-1]
			}
		}
	}
	return g
}

// CSRMatrix is a sparse matrix with power-law row lengths.
type CSRMatrix struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Vals       []uint64
}

// NNZ returns the stored-element count.
func (m *CSRMatrix) NNZ() int { return len(m.Vals) }

// PowerLawCSR builds a rows×cols CSR matrix whose row lengths follow a
// power law with the given alpha; values are small non-zero integers.
func PowerLawCSR(rng *RNG, rows, cols int, alpha float64, minRow, maxRow int) *CSRMatrix {
	lens := PowerLawSizes(rng, rows, alpha, minRow, maxRow)
	m := &CSRMatrix{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i, l := range lens {
		if l > cols {
			l = cols
		}
		m.RowPtr[i+1] = m.RowPtr[i] + int32(l)
	}
	nnz := int(m.RowPtr[rows])
	m.ColIdx = make([]int32, nnz)
	m.Vals = make([]uint64, nnz)
	for r := 0; r < rows; r++ {
		l := int(m.RowPtr[r+1] - m.RowPtr[r])
		// Distinct sorted column picks via a strided-random walk.
		c := rng.Intn(cols)
		stride := cols/(l+1) + 1
		for k := 0; k < l; k++ {
			m.ColIdx[m.RowPtr[r]+int32(k)] = int32(c % cols)
			m.Vals[m.RowPtr[r]+int32(k)] = uint64(rng.Intn(9) + 1)
			c += 1 + rng.Intn(stride)
		}
	}
	return m
}

// sortRowsByLengthDesc reorders a CSR matrix so the heaviest rows come
// first — degree-ordered storage, the layout web graphs and many
// benchmark matrices ship in. It rebuilds RowPtr/ColIdx/Vals in place.
func sortRowsByLengthDesc(m *CSRMatrix) {
	order := make([]int, m.Rows)
	for i := range order {
		order[i] = i
	}
	lens := func(r int) int32 { return m.RowPtr[r+1] - m.RowPtr[r] }
	// Stable mergesort by descending length keeps determinism.
	tmp := make([]int, m.Rows)
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if lens(order[i]) >= lens(order[j]) {
				tmp[k] = order[i]
				i++
			} else {
				tmp[k] = order[j]
				j++
			}
			k++
		}
		for i < mid {
			tmp[k] = order[i]
			i, k = i+1, k+1
		}
		for j < hi {
			tmp[k] = order[j]
			j, k = j+1, k+1
		}
		copy(order[lo:hi], tmp[lo:hi])
	}
	ms(0, m.Rows)
	newPtr := make([]int32, m.Rows+1)
	newCol := make([]int32, len(m.ColIdx))
	newVal := make([]uint64, len(m.Vals))
	pos := int32(0)
	for nr, or := range order {
		l := lens(or)
		newPtr[nr+1] = newPtr[nr] + l
		copy(newCol[pos:pos+l], m.ColIdx[m.RowPtr[or]:m.RowPtr[or+1]])
		copy(newVal[pos:pos+l], m.Vals[m.RowPtr[or]:m.RowPtr[or+1]])
		pos += l
	}
	m.RowPtr, m.ColIdx, m.Vals = newPtr, newCol, newVal
}

// sizesHistogram builds the E1 characterization histogram from per-task
// work estimates.
func sizesHistogram(sizes []int) *stats.Histogram {
	h := stats.NewHistogram()
	for _, s := range sizes {
		h.Observe(int64(s))
	}
	return h
}

// errf is fmt.Errorf shorthand for verifiers.
func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
