package analysis

import (
	"fmt"
	"strings"
)

// Severity ranks a diagnostic.
type Severity uint8

const (
	// Warn marks dead annotations and suspicious structure: the program
	// still computes the right answer, but an annotation does nothing
	// (or does less than the author believed) and the schedule quietly
	// degrades — the failure mode the paper's sensitivity experiments
	// sweep deliberately.
	Warn Severity = iota
	// Error marks structure that produces wrong results, deadlock, or a
	// runtime fault once the program is dispatched.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warn"
}

// Code identifies one diagnostic category. Codes are stable strings so
// tests, CI logs, and docs can reference them.
type Code string

// Diagnostic codes, grouped by check family.
const (
	// Forward-tag graph (fwd-*): the producer/consumer structure
	// declared by OutForward / ArgForwardIn tags.

	// CodeDanglingConsumer: an ArgForwardIn names a tag no task
	// produces (or carries tag 0). The consumer can never resolve.
	CodeDanglingConsumer Code = "fwd-dangling-consumer"
	// CodeDupProducer: two or more tasks produce the same tag; the
	// coordinator's tag table holds one stream per tag, so one
	// producer's data silently overwrites the other's.
	CodeDupProducer Code = "fwd-duplicate-producer"
	// CodePhaseOrder: a tag is produced in a later phase than it is
	// consumed — the consumer dispatches before its data can exist.
	CodePhaseOrder Code = "fwd-phase-order"
	// CodeTagCycle: tasks in the same phase form a tag cycle; no
	// member can resolve first, a static deadlock.
	CodeTagCycle Code = "fwd-phase-cycle"
	// CodeUnconsumed: an OutForward tag no task consumes — a dead
	// annotation; the stream always falls back to memory.
	CodeUnconsumed Code = "fwd-unconsumed-producer"
	// CodeMultiConsumer: a tag consumed by several tasks; only one can
	// be paired for forwarding, the rest read the memory fallback.
	CodeMultiConsumer Code = "fwd-multi-consumer"
	// CodeFallbackMismatch: producer and consumer disagree on the
	// memory-fallback region (base or length) backing a tag; with
	// forwarding disabled the consumer reads the wrong data.
	CodeFallbackMismatch Code = "fwd-fallback-mismatch"

	// Memory regions (mem-*): interval-overlap analysis of statically
	// sized regions touched by concurrently runnable (same-phase) tasks.

	// CodeOutputOverlap: two output regions in the same phase overlap;
	// the final contents depend on dispatch order.
	CodeOutputOverlap Code = "mem-output-overlap"
	// CodeWriteRead: a task reads a region another same-phase task
	// writes; the value read depends on dispatch order.
	CodeWriteRead Code = "mem-write-read-race"

	// Multicast (mcast-*): shared-read marks.

	// CodeSharedIllegal: Shared set on an ArgKind that cannot
	// multicast at all (gathers, constants, forward-ins, scratchpad).
	CodeSharedIllegal Code = "mcast-illegal-shared"
	// CodeSharedDead: a Shared mark that can never coalesce — an
	// affine read (the coalescer joins linear DRAM reads only), or a
	// linear read whose exact (base, length) range no other task in
	// the phase shares.
	CodeSharedDead Code = "mcast-uncoalesced-shared"

	// Work hints (hint-*).

	// CodeHintSkew: an explicit WorkHint more than the skew factor
	// (default 10×) below the statically derivable element count. A
	// task's true work is bounded below by its longest port stream, so
	// such a hint is statically impossible — the mis-annotation the
	// E12 sensitivity sweep shows degrading load balance.
	CodeHintSkew Code = "hint-skew"

	// DFG / port structure (dfg-*).

	// CodePortOverflow: a task uses more input or output ports than
	// the fabric physically has; resolution would fault at dispatch.
	CodePortOverflow Code = "dfg-port-overflow"
	// CodePortSignature: instances of one task type disagree on port
	// shape (count or active pattern); kernels index ports
	// positionally, so divergent shapes indicate a construction bug.
	CodePortSignature Code = "dfg-port-signature"
	// CodeDFGUnreachable: a DFG node whose value reaches no output
	// port — dead hardware in the mapped fabric configuration.
	CodeDFGUnreachable Code = "dfg-unreachable-node"
	// CodeDFGUnusedPort: a DFG input port no node or output reads.
	CodeDFGUnusedPort Code = "dfg-unused-port"
	// CodeDFGInvalid: the DFG itself fails structural validation.
	CodeDFGInvalid Code = "dfg-invalid"

	// CodeBadTask: a task that is malformed before structure can be
	// analyzed (type/phase out of range, untagged OutForward).
	CodeBadTask Code = "prog-bad-task"
)

// Diagnostic is one typed, positioned finding.
type Diagnostic struct {
	Code Code
	Sev  Severity
	// Task indexes Program.Tasks; -1 for program- or type-level findings.
	Task int
	// Key is the task's program-chosen identity (valid when Task >= 0).
	Key uint64
	// Type is the task type name ("" when not type-specific).
	Type string
	// Phase is the task's phase (-1 when not phase-specific).
	Phase int
	// Port is the input/output port index (-1 when not port-specific).
	Port int
	Msg  string
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s:", d.Sev, d.Code)
	switch {
	case d.Task >= 0:
		fmt.Fprintf(&b, " task %d (key %d", d.Task, d.Key)
		if d.Type != "" {
			fmt.Fprintf(&b, ", %s", d.Type)
		}
		if d.Phase >= 0 {
			fmt.Fprintf(&b, ", phase %d", d.Phase)
		}
		b.WriteByte(')')
	case d.Type != "":
		fmt.Fprintf(&b, " type %s", d.Type)
	}
	if d.Port >= 0 {
		fmt.Fprintf(&b, " port %d", d.Port)
	}
	fmt.Fprintf(&b, ": %s", d.Msg)
	return b.String()
}

// Report collects the diagnostics of one Analyze run.
type Report struct {
	Program string
	Diags   []Diagnostic
}

func (r *Report) add(d Diagnostic) { r.Diags = append(r.Diags, d) }

// Empty reports whether the program vetted clean.
func (r *Report) Empty() bool { return len(r.Diags) == 0 }

// Errors counts error-severity diagnostics.
func (r *Report) Errors() int { return r.count(Error) }

// Warnings counts warn-severity diagnostics.
func (r *Report) Warnings() int { return r.count(Warn) }

func (r *Report) count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Sev == s {
			n++
		}
	}
	return n
}

// ByCode returns the diagnostics carrying the given code.
func (r *Report) ByCode(c Code) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Code == c {
			out = append(out, d)
		}
	}
	return out
}

// String renders one line per diagnostic, prefixed by the program name.
func (r *Report) String() string {
	if r.Empty() {
		return fmt.Sprintf("%s: clean\n", r.Program)
	}
	var b strings.Builder
	for _, d := range r.Diags {
		fmt.Fprintf(&b, "%s: %s\n", r.Program, d.String())
	}
	return b.String()
}
