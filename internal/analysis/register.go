package analysis

import (
	"fmt"

	"taskstream/internal/core"
)

// Vet runs the analyzer and fails if any error-severity diagnostic is
// found. Warnings are tolerated: they mark dead annotations, not wrong
// results. This is the function core.Options.Vet invokes.
func Vet(p *core.Program, numPorts int) error {
	rep := AnalyzeOpts(p, Options{NumPorts: numPorts})
	if rep.Errors() == 0 {
		return nil
	}
	return fmt.Errorf("analysis: program %q has %d error(s), %d warning(s):\n%s",
		p.Name, rep.Errors(), rep.Warnings(), rep.String())
}

func init() { core.RegisterVetter(Vet) }
