package analysis_test

import (
	"encoding/binary"
	"testing"

	"taskstream/internal/analysis"
	"taskstream/internal/analysis/infer"
	"taskstream/internal/core"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
	"taskstream/internal/workload"
)

// FuzzAnalyze drives the whole analyzer — and the delta-infer
// synthesizer behind it — with arbitrary mutated programs: out-of-range
// types and phases, nil-DFG types, negative and huge stream lengths,
// degenerate affine shapes, colliding forward tags. Both must never
// panic; they report diagnostics (or refuse) instead. The corpus is
// seeded from the real suite programs, the structural companion to
// FuzzDecodeTask's per-descriptor fuzzing.

// fuzzTypes is the fixed type library fuzz programs index into. The
// last entry has no DFG, the malformed-type case the analyzer reports.
var fuzzTypes = []*core.TaskType{
	{Name: "fz-mac", DFG: fuzzDFG("fz-mac", 2)},
	{Name: "fz-deep", DFG: fuzzDFG("fz-deep", 6)},
	{Name: "fz-thin", DFG: fuzzDFG("fz-thin", 1)},
	{Name: "fz-nodfg"},
}

func fuzzDFG(name string, n int) *fabric.DFG {
	b := fabric.NewBuilder(name, 2, 1)
	cur := b.Add(fabric.OpAdd, fabric.InPort(0), fabric.InPort(1))
	for i := 1; i < n; i++ {
		cur = b.Add(fabric.OpAdd, cur, fabric.InPort(0))
	}
	b.Out(0, cur)
	return b.MustBuild()
}

// cursor reads the fuzz payload, yielding zeroes once exhausted so
// every prefix decodes to some program.
type cursor struct {
	data []byte
	pos  int
}

func (c *cursor) b() byte {
	if c.pos >= len(c.data) {
		return 0
	}
	v := c.data[c.pos]
	c.pos++
	return v
}

func (c *cursor) u16() uint16 { return binary.LittleEndian.Uint16([]byte{c.b(), c.b()}) }
func (c *cursor) u32() uint32 {
	return binary.LittleEndian.Uint32([]byte{c.b(), c.b(), c.b(), c.b()})
}
func (c *cursor) addr() mem.Addr { return mem.Addr(uint64(c.b()) | uint64(c.b())<<8 | uint64(c.b())<<16) }

const (
	fuzzMaxTasks  = 64
	fuzzMaxPorts  = 6 // beyond the 4-port fabric, exercising overflow
	fuzzMaxPhases = 16
)

// decodeProgram turns an arbitrary byte string into a Program. The
// format is the encodeProgram inverse; modulo reductions keep sizes
// bounded but leave every analyzer-visible field unconstrained.
func decodeProgram(data []byte) *core.Program {
	c := &cursor{data: data}
	nTypes := int(c.b())%len(fuzzTypes) + 1
	nPhases := int(c.b())%fuzzMaxPhases + 1
	nTasks := int(c.b()) % (fuzzMaxTasks + 1)
	p := &core.Program{Name: "fuzz", Types: fuzzTypes[:nTypes], NumPhases: nPhases}
	for i := 0; i < nTasks; i++ {
		t := core.Task{
			Type:     int(int8(c.b())), // may be negative or out of range
			Phase:    int(int8(c.b())),
			Key:      uint64(c.u16()),
			WorkHint: int64(int32(c.u32())),
		}
		nIns := int(c.b()) % (fuzzMaxPorts + 1)
		nOuts := int(c.b()) % (fuzzMaxPorts + 1)
		for j := 0; j < nIns; j++ {
			in := core.InArg{
				Kind:    core.ArgKind(c.b() % 10), // includes invalid kinds
				Base:    c.addr(),
				N:       int(int32(c.u32())),
				Rows:    int(int16(c.u16())),
				RowLen:  int(int16(c.u16())),
				Pitch:   int(int16(c.u16())),
				IdxBase: c.addr(),
				Value:   uint64(c.b()),
				Tag:     uint64(c.u32()),
			}
			in.Shared = c.b()&1 != 0
			t.Ins = append(t.Ins, in)
		}
		for j := 0; j < nOuts; j++ {
			t.Outs = append(t.Outs, core.OutArg{
				Kind: core.OutKind(c.b() % 7), // includes invalid kinds
				Base: c.addr(),
				N:    int(int32(c.u32())),
				Tag:  uint64(c.u32()),
			})
		}
		p.Tasks = append(p.Tasks, t)
	}
	return p
}

// encodeProgram is the decodeProgram inverse (modulo the size caps),
// used to seed the corpus with the real suite programs' structure.
func encodeProgram(p *core.Program) []byte {
	var buf []byte
	b8 := func(v byte) { buf = append(buf, v) }
	b16 := func(v uint16) { buf = binary.LittleEndian.AppendUint16(buf, v) }
	b32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	a24 := func(a mem.Addr) { b8(byte(a)); b8(byte(a >> 8)); b8(byte(a >> 16)) }
	nTypes := len(p.Types)
	if nTypes > len(fuzzTypes) {
		nTypes = len(fuzzTypes)
	}
	b8(byte(nTypes - 1))
	b8(byte(p.NumPhases - 1))
	nTasks := len(p.Tasks)
	if nTasks > fuzzMaxTasks {
		nTasks = fuzzMaxTasks
	}
	b8(byte(nTasks))
	for i := 0; i < nTasks; i++ {
		t := &p.Tasks[i]
		b8(byte(int8(t.Type)))
		b8(byte(int8(t.Phase)))
		b16(uint16(t.Key))
		b32(uint32(t.WorkHint))
		nIns, nOuts := len(t.Ins), len(t.Outs)
		if nIns > fuzzMaxPorts {
			nIns = fuzzMaxPorts
		}
		if nOuts > fuzzMaxPorts {
			nOuts = fuzzMaxPorts
		}
		b8(byte(nIns))
		b8(byte(nOuts))
		for _, in := range t.Ins[:nIns] {
			b8(byte(in.Kind))
			a24(in.Base)
			b32(uint32(in.N))
			b16(uint16(in.Rows))
			b16(uint16(in.RowLen))
			b16(uint16(in.Pitch))
			a24(in.IdxBase)
			b8(byte(in.Value))
			b32(uint32(in.Tag))
			if in.Shared {
				b8(1)
			} else {
				b8(0)
			}
		}
		for _, o := range t.Outs[:nOuts] {
			b8(byte(o.Kind))
			a24(o.Base)
			b32(uint32(o.N))
			b32(uint32(o.Tag))
		}
	}
	return buf
}

func FuzzAnalyze(f *testing.F) {
	for _, nb := range workload.Suite() {
		f.Add(encodeProgram(nb.Build().Prog), int8(4), int8(10))
	}
	f.Add([]byte{}, int8(0), int8(0))
	f.Add([]byte{0xff, 0xff, 0xff}, int8(-1), int8(-1))
	f.Fuzz(func(t *testing.T, data []byte, ports, skew int8) {
		p := decodeProgram(data)
		opts := analysis.Options{NumPorts: int(ports), HintSkew: int64(skew)}
		rep := analysis.AnalyzeOpts(p, opts)
		_ = rep.String() // rendering must not panic either
		// The synthesizer must also hold up: it either refuses (vet
		// errors in, or synthesis cannot reach a clean program) or
		// returns a program that re-vets with zero errors.
		iopts := infer.Options{NumPorts: int(ports), CoarsenThreshold: int64(skew)}
		q, _, err := infer.Infer(p, iopts)
		if err == nil {
			if rep2 := analysis.AnalyzeOpts(q, analysis.Options{NumPorts: int(ports)}); rep2.Errors() > 0 {
				t.Fatalf("Infer accepted a program whose annotated form has %d vet errors:\n%s",
					rep2.Errors(), rep2)
			}
		}
	})
}
