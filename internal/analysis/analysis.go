// Package analysis implements delta-vet: a whole-program static
// verifier for TaskStream programs. The paper's claim is that a few
// dependence annotations — work hints, forward tags, shared-read marks
// — are sufficient for the hardware to recover inter-task structure.
// The flip side is that a mis-annotated program fails silently: a
// dangling tag deadlocks or faults at dispatch, overlapping output
// regions make results dispatch-order dependent, a dead shared mark
// quietly forfeits multicast, and a low work hint quietly wrecks load
// balance. This pass rebuilds the structure the coordinator would
// recover — the forward-tag graph, the per-phase memory footprint, the
// multicast groups — from the Program alone and reports typed,
// positioned diagnostics before any cycle is simulated.
//
// Scope: the analysis covers the initial task list. Tasks spawned at
// run time (hierarchical dataflow, e.g. the BFS frontier) are outside
// the static view; their annotations are validated per-task when they
// arrive at the coordinator.
package analysis

import (
	"fmt"
	"sort"

	"taskstream/internal/core"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
)

// Options tune program-independent analyzer limits.
type Options struct {
	// NumPorts, when positive, is the fabric's physical input/output
	// port count; tasks using more ports are reported. 0 disables the
	// check (program-only analysis with no target machine in mind).
	NumPorts int
	// HintSkew is the work-hint divergence factor; hints more than
	// HintSkew× below the statically derivable element count are
	// reported. 0 means the default of 10.
	HintSkew int64
}

// Analyze runs every check with default options.
func Analyze(p *core.Program) *Report { return AnalyzeOpts(p, Options{}) }

// AnalyzeOpts runs every check and returns the collected diagnostics.
// Unlike Program.Validate it never stops at the first problem, needs no
// kernels (it is purely structural), and reasons across tasks.
func AnalyzeOpts(p *core.Program, opts Options) *Report {
	if opts.HintSkew <= 0 {
		opts.HintSkew = 10
	}
	a := &analyzer{prog: p, opts: opts, rep: &Report{Program: p.Name}}
	a.checkTypes()
	a.checkTasks()
	a.checkTags()
	a.checkRegions()
	return a.rep
}

type analyzer struct {
	prog *core.Program
	opts Options
	rep  *Report
}

// typeName returns a task's type name, tolerating out-of-range types.
func (a *analyzer) typeName(t *core.Task) string {
	if t.Type >= 0 && t.Type < len(a.prog.Types) {
		return a.prog.Types[t.Type].Name
	}
	return ""
}

// taskDiag positions a diagnostic at task index ti, port port.
func (a *analyzer) taskDiag(code Code, sev Severity, ti, port int, format string, args ...any) {
	t := &a.prog.Tasks[ti]
	a.rep.add(Diagnostic{
		Code: code, Sev: sev,
		Task: ti, Key: t.Key, Type: a.typeName(t), Phase: t.Phase, Port: port,
		Msg: fmt.Sprintf(format, args...),
	})
}

// ---------------------------------------------------------------------
// Check family 1: task types and their DFGs.

func (a *analyzer) checkTypes() {
	for _, tt := range a.prog.Types {
		if tt.DFG == nil {
			a.rep.add(Diagnostic{Code: CodeDFGInvalid, Sev: Error, Task: -1,
				Type: tt.Name, Phase: -1, Port: -1, Msg: "task type has no DFG"})
			continue
		}
		g := tt.DFG
		if err := g.Validate(); err != nil {
			a.rep.add(Diagnostic{Code: CodeDFGInvalid, Sev: Error, Task: -1,
				Type: tt.Name, Phase: -1, Port: -1, Msg: err.Error()})
			continue
		}
		// Reachability: mark every node and input port that transitively
		// feeds an output. Anything unmarked is dead fabric.
		reach := make([]bool, len(g.Nodes))
		portUsed := make([]bool, g.NumIn)
		var mark func(r fabric.PortRef)
		mark = func(r fabric.PortRef) {
			if r.IsPort() {
				if pt := r.Port(); pt < len(portUsed) {
					portUsed[pt] = true
				}
				return
			}
			i := int(r)
			if reach[i] {
				return
			}
			reach[i] = true
			for _, in := range g.Nodes[i].In {
				mark(in)
			}
		}
		for _, r := range g.OutSrc {
			mark(r)
		}
		for i, ok := range reach {
			if !ok {
				a.rep.add(Diagnostic{Code: CodeDFGUnreachable, Sev: Warn, Task: -1,
					Type: tt.Name, Phase: -1, Port: -1,
					Msg: fmt.Sprintf("node %d (%v) feeds no output port", i, g.Nodes[i].Op)})
			}
		}
		for pt, ok := range portUsed {
			if !ok {
				a.rep.add(Diagnostic{Code: CodeDFGUnusedPort, Sev: Warn, Task: -1,
					Type: tt.Name, Phase: -1, Port: pt,
					Msg: "declared input port is read by no node or output"})
			}
		}
	}
}

// ---------------------------------------------------------------------
// Check family 2: per-task structure — port bounds, per-type port
// signatures, shared-mark legality, work-hint plausibility.

// portSig is the positional port shape of a task: kernels index their
// in[][]/Out[][] slices by port, so every instance of a type must agree.
type portSig struct {
	ins, outs int
	inActive  uint64
	outActive uint64
}

func sigOf(t *core.Task) portSig {
	s := portSig{ins: len(t.Ins), outs: len(t.Outs)}
	for i, in := range t.Ins {
		if in.Kind != core.ArgNone && i < 64 {
			s.inActive |= 1 << uint(i)
		}
	}
	for i, o := range t.Outs {
		if o.Kind != core.OutNone && i < 64 {
			s.outActive |= 1 << uint(i)
		}
	}
	return s
}

func (a *analyzer) checkTasks() {
	first := make(map[int]portSig) // type → signature of first instance
	firstAt := make(map[int]int)   // type → task index defining it
	for ti := range a.prog.Tasks {
		t := &a.prog.Tasks[ti]
		if t.Type < 0 || t.Type >= len(a.prog.Types) {
			a.taskDiag(CodeBadTask, Error, ti, -1, "type %d out of range (%d types)", t.Type, len(a.prog.Types))
			continue
		}
		if t.Phase < 0 || t.Phase >= a.prog.NumPhases {
			a.taskDiag(CodeBadTask, Error, ti, -1, "phase %d out of range (%d phases)", t.Phase, a.prog.NumPhases)
		}
		if np := a.opts.NumPorts; np > 0 && (len(t.Ins) > np || len(t.Outs) > np) {
			a.taskDiag(CodePortOverflow, Error, ti, -1,
				"%d in / %d out ports exceed the fabric's %d", len(t.Ins), len(t.Outs), np)
		}
		sig := sigOf(t)
		if prev, ok := first[t.Type]; !ok {
			first[t.Type], firstAt[t.Type] = sig, ti
		} else if prev != sig {
			a.taskDiag(CodePortSignature, Warn, ti, -1,
				"port shape %d in/%d out (active %b/%b) differs from task %d's %d in/%d out (active %b/%b)",
				sig.ins, sig.outs, sig.inActive, sig.outActive,
				firstAt[t.Type], prev.ins, prev.outs, prev.inActive, prev.outActive)
		}
		a.checkShared(ti, t)
		a.checkHint(ti, t)
	}
}

func (a *analyzer) checkShared(ti int, t *core.Task) {
	for pi, in := range t.Ins {
		if !in.Shared {
			continue
		}
		switch in.Kind {
		case core.ArgDRAMLinear:
			// Coalescing legality is phase-global; checkRegions decides.
		case core.ArgDRAMAffine:
			a.taskDiag(CodeSharedDead, Warn, ti, pi,
				"Shared on an affine read never coalesces (the coalescer joins linear DRAM reads only)")
		default:
			a.taskDiag(CodeSharedIllegal, Error, ti, pi,
				"Shared requires a linear/affine DRAM read, not %v", kindName(in.Kind))
		}
	}
}

// checkHint flags statically impossible work hints. The bound is
// one-sided on purpose: a task's true work is at least its longest port
// stream (the fabric must cycle every element through a port), so a
// hint far below that is provably wrong. Hints far *above* the streamed
// count are legal — compute-bound kernels (GEMM tiles, k-means distance
// evaluations) perform many operations per streamed element.
func (a *analyzer) checkHint(ti int, t *core.Task) {
	if t.WorkHint <= 0 {
		return
	}
	floor := 0
	for _, in := range t.Ins {
		if in.Kind != core.ArgNone && in.Kind != core.ArgConst && in.N > floor {
			floor = in.N
		}
	}
	for _, o := range t.Outs {
		if o.Kind != core.OutNone && o.N > floor {
			floor = o.N
		}
	}
	if floor > 0 && t.WorkHint*a.opts.HintSkew < int64(floor) {
		a.taskDiag(CodeHintSkew, Error, ti, -1,
			"work hint %d is over %d× below the %d-element port floor; load balancing will treat this task as near-free",
			t.WorkHint, a.opts.HintSkew, floor)
	}
}

// ---------------------------------------------------------------------
// Check family 3: the forward-tag graph.

type endpoint struct{ task, port int }

func (a *analyzer) checkTags() {
	prods := make(map[uint64][]endpoint)
	cons := make(map[uint64][]endpoint)
	for ti := range a.prog.Tasks {
		t := &a.prog.Tasks[ti]
		for pi, o := range t.Outs {
			if o.Kind != core.OutForward {
				continue
			}
			if o.Tag == 0 {
				a.taskDiag(CodeBadTask, Error, ti, pi, "OutForward without a tag")
				continue
			}
			prods[o.Tag] = append(prods[o.Tag], endpoint{ti, pi})
		}
		for pi, in := range t.Ins {
			if in.Kind != core.ArgForwardIn {
				continue
			}
			if in.Tag == 0 {
				a.taskDiag(CodeDanglingConsumer, Error, ti, pi, "ArgForwardIn without a tag")
				continue
			}
			cons[in.Tag] = append(cons[in.Tag], endpoint{ti, pi})
		}
	}

	tags := make([]uint64, 0, len(prods)+len(cons))
	seen := make(map[uint64]bool)
	for tag := range prods {
		tags = append(tags, tag)
		seen[tag] = true
	}
	for tag := range cons {
		if !seen[tag] {
			tags = append(tags, tag)
		}
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })

	// edges[u] lists same-phase consumer tasks of tags task u produces.
	edges := make(map[int][]int)
	for _, tag := range tags {
		ps, cs := prods[tag], cons[tag]
		if len(ps) == 0 {
			for _, c := range cs {
				a.taskDiag(CodeDanglingConsumer, Error, c.task, c.port,
					"consumes tag %d, which no task produces", tag)
			}
			continue
		}
		if len(ps) > 1 {
			others := make([]int, 0, len(ps)-1)
			for _, p := range ps[:len(ps)-1] {
				others = append(others, p.task)
			}
			a.taskDiag(CodeDupProducer, Error, ps[len(ps)-1].task, ps[len(ps)-1].port,
				"tag %d is also produced by task(s) %v; one stream will overwrite the other", tag, others)
		}
		if len(cs) == 0 {
			a.taskDiag(CodeUnconsumed, Warn, ps[0].task, ps[0].port,
				"tag %d is consumed by no task; the stream always falls back to memory", tag)
			continue
		}
		if len(cs) > 1 {
			a.taskDiag(CodeMultiConsumer, Warn, cs[len(cs)-1].task, cs[len(cs)-1].port,
				"tag %d has %d consumers; at most one can be paired for forwarding", tag, len(cs))
		}
		p := ps[0]
		po := &a.prog.Tasks[p.task].Outs[p.port]
		for _, c := range cs {
			ct := &a.prog.Tasks[c.task]
			ci := &ct.Ins[c.port]
			if pt := a.prog.Tasks[p.task].Phase; pt > ct.Phase {
				a.taskDiag(CodePhaseOrder, Error, c.task, c.port,
					"consumes tag %d in phase %d, but it is produced in phase %d", tag, ct.Phase, pt)
			} else if pt == ct.Phase {
				edges[p.task] = append(edges[p.task], c.task)
			}
			if ci.Base != po.Base {
				a.taskDiag(CodeFallbackMismatch, Error, c.task, c.port,
					"fallback base %#x differs from producer task %d's %#x for tag %d",
					uint64(ci.Base), p.task, uint64(po.Base), tag)
			} else if po.N >= 0 && ci.N != po.N {
				a.taskDiag(CodeFallbackMismatch, Error, c.task, c.port,
					"fallback length %d differs from producer task %d's %d for tag %d",
					ci.N, p.task, po.N, tag)
			}
		}
	}
	a.findCycles(edges)
}

// findCycles reports each same-phase tag cycle once. Within one phase
// neither end of a cyclic tag chain can resolve first: a static
// deadlock (with forwarding enabled no forward group can form; with it
// disabled every member waits on memory that is never written).
func (a *analyzer) findCycles(edges map[int][]int) {
	const (
		white = iota
		grey
		black
	)
	color := make(map[int]int)
	var stack []int
	nodes := make([]int, 0, len(edges))
	for u := range edges {
		nodes = append(nodes, u)
	}
	sort.Ints(nodes)
	var dfs func(u int)
	dfs = func(u int) {
		color[u] = grey
		stack = append(stack, u)
		for _, v := range edges[u] {
			switch color[v] {
			case white:
				dfs(v)
			case grey:
				// Slice the cycle out of the DFS stack.
				start := len(stack) - 1
				for start >= 0 && stack[start] != v {
					start--
				}
				cyc := append([]int(nil), stack[start:]...)
				a.taskDiag(CodeTagCycle, Error, v, -1,
					"same-phase forward-tag cycle through tasks %v: no member can be resolved first", cyc)
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
	}
	for _, u := range nodes {
		if color[u] == white {
			dfs(u)
		}
	}
}

// ---------------------------------------------------------------------
// Check family 4: per-phase memory-region analysis — output/output
// overlap, write/read races, and shared-read coalescing.

// maxAffineRows bounds per-row expansion of strided affine reads; taller
// shapes fall back to a single conservative hull span.
const maxAffineRows = 4096

// region is a statically sized [lo, hi) byte range one task port touches.
type region struct {
	task, port int
	lo, hi     mem.Addr
}

// mcKey mirrors the multicast manager's group key: shared reads
// coalesce only on an exact (base, length) match.
type mcKey struct {
	base mem.Addr
	n    int
}

func (a *analyzer) checkRegions() {
	phases := a.prog.NumPhases
	if phases <= 0 {
		return
	}
	writes := make([][]region, phases)
	reads := make([][]region, phases)
	shared := make([]map[mcKey][]endpoint, phases)
	for ti := range a.prog.Tasks {
		t := &a.prog.Tasks[ti]
		ph := t.Phase
		if ph < 0 || ph >= phases {
			continue // reported by checkTasks
		}
		for pi, o := range t.Outs {
			// N < 0 means kernel-determined extent: statically unknown,
			// skipped. OutDiscard/OutNone touch no memory.
			if o.N <= 0 {
				continue
			}
			switch o.Kind {
			case core.OutDRAMLinear, core.OutSpadLinear, core.OutForward:
				writes[ph] = append(writes[ph], span(ti, pi, o.Base, o.N))
			}
		}
		for pi, in := range t.Ins {
			switch in.Kind {
			case core.ArgDRAMLinear, core.ArgSpadLinear:
				if in.N > 0 {
					reads[ph] = append(reads[ph], span(ti, pi, in.Base, in.N))
					if in.Shared && in.Kind == core.ArgDRAMLinear {
						if shared[ph] == nil {
							shared[ph] = make(map[mcKey][]endpoint)
						}
						k := mcKey{in.Base, in.N}
						shared[ph][k] = append(shared[ph][k], endpoint{ti, pi})
					}
				}
			case core.ArgDRAMAffine:
				if in.Rows > 0 && in.RowLen > 0 {
					switch {
					case in.Pitch == in.RowLen:
						reads[ph] = append(reads[ph], span(ti, pi, in.Base, in.Rows*in.RowLen))
					case in.Pitch > 0 && in.Rows <= maxAffineRows:
						for r := 0; r < in.Rows; r++ {
							base := in.Base + mem.Addr(r*in.Pitch*mem.ElemBytes)
							reads[ph] = append(reads[ph], span(ti, pi, base, in.RowLen))
						}
					default:
						// Degenerate pitch or a row count too large to
						// expand: cover the shape with one conservative
						// hull span. Over-approximate (may report
						// overlaps the gaps between rows would avoid),
						// but bounded — a hostile Rows value must not
						// make the analyzer allocate per row.
						lastOff := int64(in.Rows-1) * int64(in.Pitch)
						lo, hi := int64(0), int64(0)
						if lastOff < 0 {
							lo = lastOff
						} else {
							hi = lastOff
						}
						hi += int64(in.RowLen)
						reads[ph] = append(reads[ph], region{task: ti, port: pi,
							lo: in.Base + mem.Addr(lo*mem.ElemBytes),
							hi: in.Base + mem.Addr(hi*mem.ElemBytes)})
					}
				}
			case core.ArgDRAMGather, core.ArgSpadGather:
				// The gathered data addresses are run-time values; only
				// the index array itself is statically known.
				if in.N > 0 {
					reads[ph] = append(reads[ph], span(ti, pi, in.IdxBase, in.N))
				}
			case core.ArgForwardIn:
				// The fallback read is ordered behind the producer's
				// write by the tag dependence; checkTags verifies the
				// pairing, so it is not a race.
			}
		}
	}
	for ph := 0; ph < phases; ph++ {
		a.checkPhaseOverlaps(writes[ph], reads[ph])
		keys := make([]mcKey, 0, len(shared[ph]))
		for k := range shared[ph] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return keys[i].base < keys[j].base || (keys[i].base == keys[j].base && keys[i].n < keys[j].n)
		})
		for _, k := range keys {
			if eps := shared[ph][k]; len(eps) == 1 {
				a.taskDiag(CodeSharedDead, Warn, eps[0].task, eps[0].port,
					"no other task in phase %d shares the read of [%#x, +%d elems); the mark never coalesces",
					ph, uint64(k.base), k.n)
			}
		}
	}
}

func span(task, port int, base mem.Addr, n int) region {
	return region{task: task, port: port, lo: base, hi: base + mem.Addr(n*mem.ElemBytes)}
}

// checkPhaseOverlaps reports write/write and write/read interval
// overlaps among one phase's regions via a sort-and-scan sweep.
func (a *analyzer) checkPhaseOverlaps(writes, reads []region) {
	if len(writes) == 0 {
		return
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i].lo < writes[j].lo })
	// One diagnostic per (port, conflicting task) pair: affine reads
	// expand to many spans and a port can overlap the same offender
	// through every one of them, which on adversarial inputs multiplies
	// into millions of identical reports.
	type pair struct {
		task, port, other int
	}
	seen := make(map[pair]bool)
	for i := range writes {
		for j := i + 1; j < len(writes) && writes[j].lo < writes[i].hi; j++ {
			w, x := writes[i], writes[j]
			if seen[pair{x.task, x.port, w.task}] {
				continue
			}
			seen[pair{x.task, x.port, w.task}] = true
			if w.task == x.task {
				a.taskDiag(CodeOutputOverlap, Error, w.task, x.port,
					"output overlaps the same task's out port %d ([%#x,%#x) vs [%#x,%#x))",
					w.port, uint64(x.lo), uint64(x.hi), uint64(w.lo), uint64(w.hi))
			} else {
				a.taskDiag(CodeOutputOverlap, Error, x.task, x.port,
					"output [%#x,%#x) overlaps task %d's output [%#x,%#x) in the same phase",
					uint64(x.lo), uint64(x.hi), w.task, uint64(w.lo), uint64(w.hi))
			}
		}
	}
	seen = make(map[pair]bool)
	for _, rd := range reads {
		// First write that could overlap: the one before the first with
		// lo >= rd.hi is not enough — binary search the first write whose
		// lo is past rd.hi, then walk left while intervals can reach rd.
		// Writes are sorted by lo but his are unordered, so walk the
		// candidate prefix.
		end := sort.Search(len(writes), func(i int) bool { return writes[i].lo >= rd.hi })
		for i := 0; i < end; i++ {
			w := writes[i]
			if w.hi <= rd.lo || w.task == rd.task || seen[pair{rd.task, rd.port, w.task}] {
				continue
			}
			seen[pair{rd.task, rd.port, w.task}] = true
			a.taskDiag(CodeWriteRead, Error, rd.task, rd.port,
				"reads [%#x,%#x), which task %d writes ([%#x,%#x)) in the same phase",
				uint64(rd.lo), uint64(rd.hi), w.task, uint64(w.lo), uint64(w.hi))
		}
	}
}

// kindName names an ArgKind for messages.
func kindName(k core.ArgKind) string {
	switch k {
	case core.ArgNone:
		return "ArgNone"
	case core.ArgDRAMLinear:
		return "ArgDRAMLinear"
	case core.ArgDRAMAffine:
		return "ArgDRAMAffine"
	case core.ArgDRAMGather:
		return "ArgDRAMGather"
	case core.ArgSpadLinear:
		return "ArgSpadLinear"
	case core.ArgSpadGather:
		return "ArgSpadGather"
	case core.ArgConst:
		return "ArgConst"
	case core.ArgForwardIn:
		return "ArgForwardIn"
	}
	return fmt.Sprintf("ArgKind(%d)", k)
}
