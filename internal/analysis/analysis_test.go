package analysis_test

import (
	"strings"
	"testing"

	"taskstream/internal/analysis"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/fabric"
	"taskstream/internal/workload"
)

// TestSuiteVetClean is the golden gate: every workload in the suite
// must produce zero diagnostics on the default machine shape.
func TestSuiteVetClean(t *testing.T) {
	opts := analysis.Options{NumPorts: config.Default8().Fabric.NumPorts}
	for _, nb := range workload.Suite() {
		w := nb.Build()
		rep := analysis.AnalyzeOpts(w.Prog, opts)
		if !rep.Empty() {
			t.Errorf("%s: expected clean, got:\n%s", nb.Name, rep.String())
		}
	}
}

// passDFG is the minimal valid graph: one input passed to one output.
func passDFG() *fabric.DFG {
	b := fabric.NewBuilder("pass", 1, 1)
	b.Out(0, fabric.InPort(0))
	return b.MustBuild()
}

// fix builds a fixture program. Three types (all sharing the trivial
// DFG) are provided so tasks with different port shapes can use
// different types without tripping the port-signature check.
func fix(tasks ...core.Task) *core.Program {
	return &core.Program{
		Name: "fixture",
		Types: []*core.TaskType{
			{Name: "alpha", DFG: passDFG()},
			{Name: "beta", DFG: passDFG()},
			{Name: "gamma", DFG: passDFG()},
		},
		Tasks:     tasks,
		NumPhases: 4,
	}
}

func TestNegativeFixtures(t *testing.T) {
	cases := []struct {
		name string
		prog *core.Program
		opts analysis.Options
		code analysis.Code
		sev  analysis.Severity
	}{
		{
			name: "dangling forward tag",
			prog: fix(core.Task{Ins: []core.InArg{
				{Kind: core.ArgForwardIn, Tag: 7, Base: 0x1000, N: 8}}}),
			code: analysis.CodeDanglingConsumer, sev: analysis.Error,
		},
		{
			name: "same-phase tag cycle",
			prog: fix(
				core.Task{Phase: 1,
					Ins:  []core.InArg{{Kind: core.ArgForwardIn, Tag: 2, Base: 0x2000, N: 8}},
					Outs: []core.OutArg{{Kind: core.OutForward, Tag: 1, Base: 0x1000, N: 8}}},
				core.Task{Phase: 1,
					Ins:  []core.InArg{{Kind: core.ArgForwardIn, Tag: 1, Base: 0x1000, N: 8}},
					Outs: []core.OutArg{{Kind: core.OutForward, Tag: 2, Base: 0x2000, N: 8}}},
			),
			code: analysis.CodeTagCycle, sev: analysis.Error,
		},
		{
			name: "overlapping output regions",
			prog: fix(
				core.Task{Outs: []core.OutArg{{Kind: core.OutDRAMLinear, Base: 0x1000, N: 16}}},
				core.Task{Outs: []core.OutArg{{Kind: core.OutDRAMLinear, Base: 0x1040, N: 16}}},
			),
			code: analysis.CodeOutputOverlap, sev: analysis.Error,
		},
		{
			name: "illegal shared mark",
			prog: fix(core.Task{Ins: []core.InArg{
				{Kind: core.ArgDRAMGather, Base: 0x1000, IdxBase: 0x2000, N: 8, Shared: true}}}),
			code: analysis.CodeSharedIllegal, sev: analysis.Error,
		},
		{
			name: "work-hint skew",
			prog: fix(core.Task{WorkHint: 5, Ins: []core.InArg{
				{Kind: core.ArgDRAMLinear, Base: 0x1000, N: 1000}}}),
			code: analysis.CodeHintSkew, sev: analysis.Error,
		},
		{
			name: "duplicate producer",
			prog: fix(
				core.Task{Phase: 0, Outs: []core.OutArg{{Kind: core.OutForward, Tag: 5, Base: 0x1000, N: 8}}},
				core.Task{Phase: 1, Outs: []core.OutArg{{Kind: core.OutForward, Tag: 5, Base: 0x3000, N: 8}}},
				core.Task{Type: 1, Phase: 2, Ins: []core.InArg{
					{Kind: core.ArgForwardIn, Tag: 5, Base: 0x1000, N: 8}}},
			),
			code: analysis.CodeDupProducer, sev: analysis.Error,
		},
		{
			name: "fallback mismatch",
			prog: fix(
				core.Task{Phase: 0, Outs: []core.OutArg{{Kind: core.OutForward, Tag: 3, Base: 0x1000, N: 8}}},
				core.Task{Type: 1, Phase: 1, Ins: []core.InArg{
					{Kind: core.ArgForwardIn, Tag: 3, Base: 0x2000, N: 8}}},
			),
			code: analysis.CodeFallbackMismatch, sev: analysis.Error,
		},
		{
			name: "phase order",
			prog: fix(
				core.Task{Phase: 2, Outs: []core.OutArg{{Kind: core.OutForward, Tag: 4, Base: 0x1000, N: 8}}},
				core.Task{Type: 1, Phase: 1, Ins: []core.InArg{
					{Kind: core.ArgForwardIn, Tag: 4, Base: 0x1000, N: 8}}},
			),
			code: analysis.CodePhaseOrder, sev: analysis.Error,
		},
		{
			name: "write-read race",
			prog: fix(
				core.Task{Outs: []core.OutArg{{Kind: core.OutDRAMLinear, Base: 0x1000, N: 16}}},
				core.Task{Type: 1, Ins: []core.InArg{
					{Kind: core.ArgDRAMLinear, Base: 0x1000, N: 16}}},
			),
			code: analysis.CodeWriteRead, sev: analysis.Error,
		},
		{
			name: "port overflow",
			prog: fix(core.Task{Ins: []core.InArg{
				{Kind: core.ArgDRAMLinear, Base: 0x1000, N: 8},
				{Kind: core.ArgDRAMLinear, Base: 0x2000, N: 8},
				{Kind: core.ArgDRAMLinear, Base: 0x3000, N: 8},
				{Kind: core.ArgDRAMLinear, Base: 0x4000, N: 8},
				{Kind: core.ArgDRAMLinear, Base: 0x5000, N: 8}}}),
			opts: analysis.Options{NumPorts: 4},
			code: analysis.CodePortOverflow, sev: analysis.Error,
		},
		{
			name: "unconsumed producer",
			prog: fix(core.Task{Outs: []core.OutArg{
				{Kind: core.OutForward, Tag: 9, Base: 0x1000, N: 8}}}),
			code: analysis.CodeUnconsumed, sev: analysis.Warn,
		},
		{
			name: "uncoalesced shared read",
			prog: fix(core.Task{Ins: []core.InArg{
				{Kind: core.ArgDRAMLinear, Base: 0x1000, N: 64, Shared: true}}}),
			code: analysis.CodeSharedDead, sev: analysis.Warn,
		},
		{
			name: "shared affine read",
			prog: fix(core.Task{Ins: []core.InArg{
				{Kind: core.ArgDRAMAffine, Base: 0x1000, Rows: 4, RowLen: 16, Pitch: 16, N: 64, Shared: true}}}),
			code: analysis.CodeSharedDead, sev: analysis.Warn,
		},
		{
			name: "port signature drift",
			prog: fix(
				core.Task{Ins: []core.InArg{{Kind: core.ArgDRAMLinear, Base: 0x1000, N: 8}}},
				core.Task{},
			),
			code: analysis.CodePortSignature, sev: analysis.Warn,
		},
		{
			name: "bad phase",
			prog: fix(core.Task{Phase: 99}),
			code: analysis.CodeBadTask, sev: analysis.Error,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := analysis.AnalyzeOpts(tc.prog, tc.opts)
			if len(rep.Diags) != 1 {
				t.Fatalf("want exactly 1 diagnostic, got %d:\n%s", len(rep.Diags), rep.String())
			}
			d := rep.Diags[0]
			if d.Code != tc.code {
				t.Errorf("code = %s, want %s (%s)", d.Code, tc.code, d)
			}
			if d.Sev != tc.sev {
				t.Errorf("severity = %s, want %s (%s)", d.Sev, tc.sev, d)
			}
			if got := rep.ByCode(tc.code); len(got) != 1 {
				t.Errorf("ByCode(%s) = %d diagnostics, want 1", tc.code, len(got))
			}
		})
	}
}

// TestDFGDiagnostics covers the type-level structural checks, which
// fire with no task instances at all.
func TestDFGDiagnostics(t *testing.T) {
	t.Run("unreachable node", func(t *testing.T) {
		b := fabric.NewBuilder("dead-node", 1, 1)
		live := b.Add(fabric.OpAdd, fabric.InPort(0), fabric.InPort(0))
		b.Add(fabric.OpAdd, fabric.InPort(0), fabric.InPort(0)) // dead
		b.Out(0, live)
		p := &core.Program{Name: "fixture", NumPhases: 1,
			Types: []*core.TaskType{{Name: "alpha", DFG: b.MustBuild()}}}
		rep := analysis.Analyze(p)
		if len(rep.Diags) != 1 || rep.Diags[0].Code != analysis.CodeDFGUnreachable {
			t.Fatalf("want one %s, got:\n%s", analysis.CodeDFGUnreachable, rep.String())
		}
	})
	t.Run("unused input port", func(t *testing.T) {
		b := fabric.NewBuilder("dead-port", 2, 1)
		b.Out(0, fabric.InPort(0)) // port 1 never read
		p := &core.Program{Name: "fixture", NumPhases: 1,
			Types: []*core.TaskType{{Name: "alpha", DFG: b.MustBuild()}}}
		rep := analysis.Analyze(p)
		if len(rep.Diags) != 1 || rep.Diags[0].Code != analysis.CodeDFGUnusedPort {
			t.Fatalf("want one %s, got:\n%s", analysis.CodeDFGUnusedPort, rep.String())
		}
		if rep.Diags[0].Port != 1 {
			t.Errorf("port = %d, want 1", rep.Diags[0].Port)
		}
	})
	t.Run("missing DFG", func(t *testing.T) {
		p := &core.Program{Name: "fixture", NumPhases: 1,
			Types: []*core.TaskType{{Name: "alpha"}}}
		rep := analysis.Analyze(p)
		if len(rep.Diags) != 1 || rep.Diags[0].Code != analysis.CodeDFGInvalid {
			t.Fatalf("want one %s, got:\n%s", analysis.CodeDFGInvalid, rep.String())
		}
	})
}

// TestMachineVetOption exercises the NewMachine wiring: a clean suite
// program passes with Vet set; the same program with a statically
// impossible work hint is rejected before any hardware is built.
func TestMachineVetOption(t *testing.T) {
	cfg := config.Default8()
	w := workload.ByName("gemm").Build()
	if _, err := core.NewMachine(cfg, w.Prog, w.Storage, core.Options{Vet: true}); err != nil {
		t.Fatalf("clean program rejected: %v", err)
	}

	bad := workload.ByName("gemm").Build()
	bad.Prog.Tasks[0].WorkHint = 1 // far below the streamed tile size
	_, err := core.NewMachine(cfg, bad.Prog, bad.Storage, core.Options{Vet: true})
	if err == nil {
		t.Fatal("mis-hinted program accepted with Vet set")
	}
	if !strings.Contains(err.Error(), string(analysis.CodeHintSkew)) {
		t.Errorf("error does not carry %s: %v", analysis.CodeHintSkew, err)
	}
}
