package infer_test

import (
	"reflect"
	"testing"

	"taskstream/internal/analysis"
	"taskstream/internal/analysis/infer"
	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/workload"
)

// wantExact are the suite workloads whose annotations inference
// recovers exactly: hints land on the hand value (the DFG op model
// meets or the port floor clamps to it), every forward pair and shared
// mark is found, and nothing spurious is added — so the simulated
// schedule must be identical to the hand-annotated run.
var wantExact = map[string]bool{
	"spmv": true, "sort": true, "gemm": true, "stencil": true, "hist": true,
}

// TestStripInferRoundTrip strips every suite workload, re-infers its
// annotations, and checks: the stripped program vets clean, the
// inferred program vets with zero errors, inference is deterministic,
// precision/recall against the hand annotations is perfect on the
// suite, and (unless -short) the inferred program still computes
// correct results — with a cycle-identical schedule where recovery is
// exact.
func TestStripInferRoundTrip(t *testing.T) {
	cfg := config.Default8()
	vetOpts := analysis.Options{NumPorts: cfg.Fabric.NumPorts}
	inferOpts := infer.Options{NumPorts: cfg.Fabric.NumPorts, PortWidth: cfg.Fabric.PortWidth}
	var agg infer.Accuracy
	for _, nb := range workload.Suite() {
		nb := nb
		t.Run(nb.Name, func(t *testing.T) {
			hand := nb.Build()
			stripped := infer.Strip(hand.Prog)
			if rep := analysis.AnalyzeOpts(stripped, vetOpts); rep.Errors() > 0 {
				t.Fatalf("stripped program has vet errors:\n%s", rep)
			}
			inferred, patch, err := infer.Infer(stripped, inferOpts)
			if err != nil {
				t.Fatal(err)
			}
			if rep := analysis.AnalyzeOpts(inferred, vetOpts); rep.Errors() > 0 {
				t.Fatalf("inferred program has vet errors:\n%s", rep)
			}
			if _, patch2, err := infer.Infer(stripped, inferOpts); err != nil {
				t.Fatal(err)
			} else if !reflect.DeepEqual(patch, patch2) {
				t.Errorf("inference is not deterministic:\n%s\nvs\n%s", patch, patch2)
			}
			acc, err := infer.Compare(hand.Prog, inferred)
			if err != nil {
				t.Fatal(err)
			}
			agg.Add(acc)
			if acc.Forwards.FP > 0 || acc.Shared.FP > 0 {
				t.Errorf("false positives against hand annotations: forwards %+v shared %+v",
					acc.Forwards, acc.Shared)
			}
			if wantExact[nb.Name] && !acc.Exact() {
				t.Errorf("expected exact recovery, got forwards %+v shared %+v hints %d/%d:\n%s",
					acc.Forwards, acc.Shared, acc.HintsExact, acc.HintsTotal, patch)
			}
			if testing.Short() {
				return
			}

			// Run both under the full Delta machine: the inferred program
			// must compute correct results, and where every annotation was
			// recovered exactly the schedule must be cycle-identical.
			mcfg, mopts := baseline.Delta.Configure(cfg)
			handRep, err := baseline.RunCfg(mcfg, mopts, hand.Prog, hand.Storage)
			if err != nil {
				t.Fatalf("hand run: %v", err)
			}
			w2 := nb.Build()
			inferred2, _, err := infer.Infer(infer.Strip(w2.Prog), inferOpts)
			if err != nil {
				t.Fatal(err)
			}
			infRep, err := baseline.RunCfg(mcfg, mopts, inferred2, w2.Storage)
			if err != nil {
				t.Fatalf("inferred run: %v", err)
			}
			if err := w2.Verify(); err != nil {
				t.Errorf("inferred program computes wrong results: %v", err)
			}
			if acc.Exact() {
				if infRep.Cycles != handRep.Cycles {
					t.Errorf("exact recovery but cycles differ: hand %d inferred %d",
						handRep.Cycles, infRep.Cycles)
				}
				if !reflect.DeepEqual(infRep.LaneBusy, handRep.LaneBusy) {
					t.Errorf("exact recovery but per-lane busy cycles differ")
				}
			}
		})
	}
	if p, r := agg.Forwards.Precision(), agg.Forwards.Recall(); p < 1.0 || r < 1.0 {
		t.Errorf("suite forward P/R = %.3f/%.3f, want 1.0/1.0 (%+v)", p, r, agg.Forwards)
	}
	if p, r := agg.Shared.Precision(), agg.Shared.Recall(); p < 1.0 || r < 1.0 {
		t.Errorf("suite shared P/R = %.3f/%.3f, want 1.0/1.0 (%+v)", p, r, agg.Shared)
	}
}

// TestStrip checks Strip erases every annotation kind and leaves the
// original program untouched.
func TestStrip(t *testing.T) {
	hand := workload.MergeSort(workload.DefaultSort())
	s := infer.Strip(hand.Prog)
	for ti := range s.Tasks {
		st := &s.Tasks[ti]
		if st.WorkHint != 0 {
			t.Fatalf("task %d: WorkHint %d survived Strip", ti, st.WorkHint)
		}
		if tag := st.ProducesTag(); tag != 0 {
			t.Fatalf("task %d: forward out tag %d survived Strip", ti, tag)
		}
		if tag := st.ConsumesTag(); tag != 0 {
			t.Fatalf("task %d: forward in tag %d survived Strip", ti, tag)
		}
		for pi := range st.Ins {
			if st.Ins[pi].Shared {
				t.Fatalf("task %d port %d: Shared survived Strip", ti, pi)
			}
		}
	}
	// The original is untouched (Strip deep-copies).
	if core.MaxTag(hand.Prog.Tasks) == 0 {
		t.Fatal("Strip mutated the hand-annotated original")
	}
}
