package infer

import (
	"fmt"
	"strings"
)

// Patch records every annotation Infer added, in the deterministic
// order it was synthesized — a reviewable (and JSON-serializable) diff
// against the unannotated program.
type Patch struct {
	Program  string          `json:"program"`
	Merges   []MergeChange   `json:"merges,omitempty"`
	Forwards []ForwardChange `json:"forwards"`
	Shared   []SharedChange  `json:"shared"`
	Hints    []HintChange    `json:"hints"`
}

// HintChange is one synthesized work hint.
type HintChange struct {
	Task int    `json:"task"`
	Key  uint64 `json:"key"`
	Hint int64  `json:"hint"`
}

// ForwardChange is one synthesized producer→consumer forward pair.
type ForwardChange struct {
	Tag      uint64 `json:"tag"`
	Producer int    `json:"producer"`
	ProdPort int    `json:"producer_port"`
	Consumer int    `json:"consumer"`
	ConsPort int    `json:"consumer_port"`
	// Base/N is the shared memory-fallback region.
	Base uint64 `json:"base"`
	N    int    `json:"n"`
}

// SharedChange is one synthesized shared-read mark.
type SharedChange struct {
	Task int    `json:"task"`
	Port int    `json:"port"`
	Base uint64 `json:"base"`
	N    int    `json:"n"`
}

// MergeChange is one coarsening merge: the original task indices fused
// into a single composite task.
type MergeChange struct {
	Type  string `json:"type"`
	Tasks []int  `json:"tasks"`
}

// Counts returns a one-line summary of the patch.
func (p *Patch) Counts() string {
	s := fmt.Sprintf("%d forward tag(s), %d shared mark(s), %d work hint(s)",
		len(p.Forwards), len(p.Shared), len(p.Hints))
	if len(p.Merges) > 0 {
		s = fmt.Sprintf("%d merge(s), %s", len(p.Merges), s)
	}
	return s
}

// String renders the full patch, one line per change.
func (p *Patch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", p.Program, p.Counts())
	for _, m := range p.Merges {
		fmt.Fprintf(&b, "  merge %s: tasks %v\n", m.Type, m.Tasks)
	}
	for _, f := range p.Forwards {
		fmt.Fprintf(&b, "  +forward tag %d: task %d out %d -> task %d in %d  [0x%x, %d elems)\n",
			f.Tag, f.Producer, f.ProdPort, f.Consumer, f.ConsPort, f.Base, f.N)
	}
	for _, s := range p.Shared {
		fmt.Fprintf(&b, "  +shared: task %d in %d  [0x%x, %d elems)\n", s.Task, s.Port, s.Base, s.N)
	}
	for _, h := range p.Hints {
		fmt.Fprintf(&b, "  +hint: task %d (key %d) = %d\n", h.Task, h.Key, h.Hint)
	}
	return b.String()
}
