package infer

import (
	"fmt"
	"strings"

	"taskstream/internal/config"
	"taskstream/internal/workload"
)

// Builder wraps nb so Build yields the workload with its hand
// annotations stripped and re-synthesized by delta-infer. The
// "+inferred" suffix keeps the runplan identity distinct from the
// hand-annotated variant, and because inference is deterministic the
// name still canonically determines what Build constructs — the cache
// contract runplan.Spec requires. Inference over the whole suite is
// proven clean by the round-trip tests, so a failure here is a
// programming error; Build has no error path, hence the panic (the
// runner converts it into a request-scoped error).
func Builder(nb workload.NamedBuilder, opts Options) workload.NamedBuilder {
	return workload.NamedBuilder{
		Name: nb.Name + "+inferred",
		Build: func() *workload.Workload {
			w := nb.Build()
			p, _, err := Infer(Strip(w.Prog), opts)
			if err != nil {
				panic(fmt.Sprintf("infer: inference failed on workload %s: %v", nb.Name, err))
			}
			w.Prog = p
			return w
		},
	}
}

// DefaultOptions returns the inference options every "+inferred" suite
// spec uses: the reference machine's fabric port geometry
// (config.Default8), matching the E15 experiment.
func DefaultOptions() Options {
	cfg := config.Default8()
	return Options{NumPorts: cfg.Fabric.NumPorts, PortWidth: cfg.Fabric.PortWidth}
}

// The "+inferred" name grammar resolves through Builder with the
// default options, so a delta-serve daemon can rebuild E15's inferred
// specs from their wire names.
func init() {
	workload.RegisterResolver(func(name string) (workload.NamedBuilder, bool) {
		base, ok := strings.CutSuffix(name, "+inferred")
		if !ok || base == "" {
			return workload.NamedBuilder{}, false
		}
		inner, err := workload.Resolve(base)
		if err != nil {
			return workload.NamedBuilder{}, false
		}
		return Builder(inner, DefaultOptions()), true
	})
}
