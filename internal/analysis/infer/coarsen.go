package infer

import (
	"fmt"

	"taskstream/internal/core"
	"taskstream/internal/mem"
)

// coarsenProgram merges runs of adjacent same-type same-phase tasks
// whose estimated work falls below Options.CoarsenThreshold —
// DiscoPoP-style task merging: tiny tasks are dominated by dispatch
// and configuration overhead, so neighbours are fused until the merged
// workload estimate reaches the threshold (or the fabric's port budget
// is spent). A merged group becomes one composite task of a derived
// "<base>-xK" type whose kernel decodes the member layout from the
// scalar header and runs the base kernel per member, so results are
// unchanged. Only plain tasks merge: forward ports, shared marks, and
// kernel-determined output extents pin a task to its own dispatch.
func coarsenProgram(p *core.Program, opts Options, patch *Patch) *core.Program {
	thr := opts.CoarsenThreshold
	portCap := opts.NumPorts
	if portCap <= 0 {
		portCap = 8
	}
	const maxGroup = 8
	types := append([]*core.TaskType(nil), p.Types...)
	compIdx := make(map[[2]int]int) // {base type, group size} → composite type
	var out []core.Task
	for i := 0; i < len(p.Tasks); {
		t := &p.Tasks[i]
		if !mergeable(p, t, thr) {
			out = append(out, p.Tasks[i])
			i++
			continue
		}
		ins, outs := len(t.Ins), len(t.Outs)
		work := t.DefaultWorkHint()
		idxs := []int{i}
		for j := i + 1; j < len(p.Tasks) && len(idxs) < maxGroup && work < thr; j++ {
			nx := &p.Tasks[j]
			if nx.Type != t.Type || nx.Phase != t.Phase || !mergeable(p, nx, thr) ||
				ins+len(nx.Ins) > portCap || outs+len(nx.Outs) > portCap {
				break
			}
			ins += len(nx.Ins)
			outs += len(nx.Outs)
			work += nx.DefaultWorkHint()
			idxs = append(idxs, j)
		}
		if len(idxs) < 2 {
			out = append(out, p.Tasks[i])
			i++
			continue
		}
		k := len(idxs)
		ckey := [2]int{t.Type, k}
		ci, ok := compIdx[ckey]
		if !ok {
			base := types[t.Type]
			ci = len(types)
			types = append(types, &core.TaskType{
				Name:   fmt.Sprintf("%s-x%d", base.Name, k),
				DFG:    base.DFG, // same mapped graph, fired per member
				Kernel: compositeKernel(base),
			})
			compIdx[ckey] = ci
		}
		merged := core.Task{Type: ci, Phase: t.Phase, Key: t.Key}
		// Scalar header: [K, (nScalars, nIns, nOuts) × K, member scalars...]
		scal := []uint64{uint64(k)}
		for _, idx := range idxs {
			m := &p.Tasks[idx]
			scal = append(scal, uint64(len(m.Scalars)), uint64(len(m.Ins)), uint64(len(m.Outs)))
		}
		for _, idx := range idxs {
			m := &p.Tasks[idx]
			scal = append(scal, m.Scalars...)
			merged.Ins = append(merged.Ins, m.Ins...)
			merged.Outs = append(merged.Outs, m.Outs...)
		}
		merged.Scalars = scal
		out = append(out, merged)
		patch.Merges = append(patch.Merges, MergeChange{Type: types[ci].Name, Tasks: idxs})
		i = idxs[k-1] + 1
	}
	q := p.WithTasks(out)
	q.Types = types
	return q
}

// mergeable reports whether a task can join a coarsening group: its
// work estimate is below the threshold and nothing about it (forward
// ports, shared marks, kernel-determined extents) requires a dispatch
// of its own.
func mergeable(p *core.Program, t *core.Task, thr int64) bool {
	if t.Type < 0 || t.Type >= len(p.Types) {
		return false
	}
	if t.DefaultWorkHint() >= thr {
		return false
	}
	for _, in := range t.Ins {
		if in.Kind == core.ArgForwardIn || in.Shared {
			return false
		}
	}
	for _, o := range t.Outs {
		if o.Kind == core.OutForward || o.N < 0 {
			return false
		}
	}
	return true
}

// compositeKernel decodes the member layout written by coarsenProgram
// and runs the base kernel once per member, splicing each member's
// scalar/port slices back into the shapes the base kernel expects.
func compositeKernel(base *core.TaskType) core.KernelFunc {
	return func(t *core.Task, in [][]uint64, st *mem.Storage) core.Result {
		k := int(t.Scalars[0])
		meta := t.Scalars[1 : 1+3*k]
		scal := t.Scalars[1+3*k:]
		res := core.Result{Out: make([][]uint64, len(t.Outs))}
		inOff, outOff, scalOff := 0, 0, 0
		for m := 0; m < k; m++ {
			ns, ni, no := int(meta[3*m]), int(meta[3*m+1]), int(meta[3*m+2])
			sub := core.Task{
				Type: t.Type, Phase: t.Phase, Key: t.Key,
				Scalars: scal[scalOff : scalOff+ns],
				Ins:     t.Ins[inOff : inOff+ni],
				Outs:    t.Outs[outOff : outOff+no],
			}
			r := base.Kernel(&sub, in[inOff:inOff+ni], st)
			for j := 0; j < no && j < len(r.Out); j++ {
				res.Out[outOff+j] = r.Out[j]
			}
			res.Spawns = append(res.Spawns, r.Spawns...)
			scalOff, inOff, outOff = scalOff+ns, inOff+ni, outOff+no
		}
		return res
	}
}
