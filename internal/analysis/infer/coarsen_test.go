package infer_test

import (
	"reflect"
	"testing"

	"taskstream/internal/analysis/infer"
	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/workload"
)

// TestCoarsenHist merges the histogram workload's below-threshold
// block tasks and checks the coarsened program still vets (Infer's
// gate), still computes the right histogram, and actually got smaller.
func TestCoarsenHist(t *testing.T) {
	cfg := config.Default8()
	hand := workload.Hist(workload.DefaultHist())
	nTasks := len(hand.Prog.Tasks)
	stripped := infer.Strip(hand.Prog)
	opts := infer.Options{
		NumPorts:         cfg.Fabric.NumPorts,
		PortWidth:        cfg.Fabric.PortWidth,
		CoarsenThreshold: 1 << 20,
	}
	coarse, patch, err := infer.Infer(stripped, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(patch.Merges) == 0 {
		t.Fatal("threshold far above every task's work, yet nothing merged")
	}
	if len(coarse.Tasks) >= nTasks {
		t.Errorf("coarsening did not shrink the program: %d -> %d tasks", nTasks, len(coarse.Tasks))
	}
	for _, m := range patch.Merges {
		if len(m.Tasks) < 2 {
			t.Errorf("merge group %v has fewer than 2 members", m.Tasks)
		}
	}
	// Port budget respected: no merged task may exceed the fabric.
	for ti := range coarse.Tasks {
		ct := &coarse.Tasks[ti]
		if len(ct.Ins) > cfg.Fabric.NumPorts || len(ct.Outs) > cfg.Fabric.NumPorts {
			t.Errorf("task %d: %d in / %d out ports exceed the fabric's %d",
				ti, len(ct.Ins), len(ct.Outs), cfg.Fabric.NumPorts)
		}
	}
	// Deterministic under repetition.
	if _, patch2, err := infer.Infer(stripped, opts); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(patch, patch2) {
		t.Errorf("coarsening is not deterministic")
	}
	if testing.Short() {
		return
	}
	// The composite kernels must reproduce the exact histogram.
	mcfg, mopts := baseline.Delta.Configure(cfg)
	if _, err := baseline.RunCfg(mcfg, mopts, coarse, hand.Storage); err != nil {
		t.Fatalf("coarsened run: %v", err)
	}
	if err := hand.Verify(); err != nil {
		t.Errorf("coarsened program computes wrong results: %v", err)
	}
}
