package infer

import (
	"fmt"

	"taskstream/internal/core"
)

// PR is a precision/recall counter for one annotation kind.
type PR struct {
	TP int `json:"tp"`
	FP int `json:"fp"`
	FN int `json:"fn"`
}

// Precision is TP/(TP+FP); 1.0 when nothing was predicted.
func (c PR) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1.0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN); 1.0 when there was nothing to find.
func (c PR) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1.0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

func (c *PR) add(o PR) { c.TP += o.TP; c.FP += o.FP; c.FN += o.FN }

// Accuracy scores inferred annotations against a hand-annotated
// reference program.
type Accuracy struct {
	// Forwards scores producer→consumer pairs by endpoint (task, port)
	// identity; tag values are scheduling-neutral and ignored.
	Forwards PR `json:"forwards"`
	// Shared scores marked (task, port) endpoints.
	Shared PR `json:"shared"`
	// HintsExact counts tasks whose inferred WorkHint equals the hand
	// hint; HintsTotal is the task count.
	HintsExact int `json:"hints_exact"`
	HintsTotal int `json:"hints_total"`
}

// Exact reports whether every annotation was recovered exactly — the
// condition under which the simulated schedule is identical to the
// hand-annotated run.
func (a Accuracy) Exact() bool {
	return a.Forwards.FP == 0 && a.Forwards.FN == 0 &&
		a.Shared.FP == 0 && a.Shared.FN == 0 &&
		a.HintsExact == a.HintsTotal
}

// Add accumulates o into a.
func (a *Accuracy) Add(o Accuracy) {
	a.Forwards.add(o.Forwards)
	a.Shared.add(o.Shared)
	a.HintsExact += o.HintsExact
	a.HintsTotal += o.HintsTotal
}

// fwdPair identifies one forward stream by its endpoints.
type fwdPair struct {
	prodTask, prodPort int
	consTask, consPort int
}

// forwardPairs extracts the producer→consumer pairs a program's tags
// declare. Tag values don't matter — only which ports are wired.
func forwardPairs(p *core.Program) map[fwdPair]bool {
	prods := make(map[uint64]endpoint)
	for ti := range p.Tasks {
		for pi, o := range p.Tasks[ti].Outs {
			if o.Kind == core.OutForward && o.Tag != 0 {
				if _, dup := prods[o.Tag]; !dup {
					prods[o.Tag] = endpoint{ti, pi}
				}
			}
		}
	}
	pairs := make(map[fwdPair]bool)
	for ti := range p.Tasks {
		for pi, in := range p.Tasks[ti].Ins {
			if in.Kind != core.ArgForwardIn || in.Tag == 0 {
				continue
			}
			pr, ok := prods[in.Tag]
			if !ok {
				continue
			}
			pairs[fwdPair{pr.task, pr.port, ti, pi}] = true
		}
	}
	return pairs
}

// sharedEndpoints extracts the (task, port) set carrying Shared marks.
func sharedEndpoints(p *core.Program) map[endpoint]bool {
	eps := make(map[endpoint]bool)
	for ti := range p.Tasks {
		for pi, in := range p.Tasks[ti].Ins {
			if in.Shared {
				eps[endpoint{ti, pi}] = true
			}
		}
	}
	return eps
}

// Compare scores inferred against the hand-annotated reference. The
// two programs must describe the same task list (coarsened programs
// cannot be compared — their task indices no longer line up).
func Compare(hand, inferred *core.Program) (Accuracy, error) {
	var a Accuracy
	if len(hand.Tasks) != len(inferred.Tasks) {
		return a, fmt.Errorf("infer: compare %q: task counts differ (%d hand vs %d inferred); was the program coarsened?",
			hand.Name, len(hand.Tasks), len(inferred.Tasks))
	}
	handFwd, infFwd := forwardPairs(hand), forwardPairs(inferred)
	for pr := range infFwd {
		if handFwd[pr] {
			a.Forwards.TP++
		} else {
			a.Forwards.FP++
		}
	}
	for pr := range handFwd {
		if !infFwd[pr] {
			a.Forwards.FN++
		}
	}
	handSh, infSh := sharedEndpoints(hand), sharedEndpoints(inferred)
	for ep := range infSh {
		if handSh[ep] {
			a.Shared.TP++
		} else {
			a.Shared.FP++
		}
	}
	for ep := range handSh {
		if !infSh[ep] {
			a.Shared.FN++
		}
	}
	a.HintsTotal = len(hand.Tasks)
	for ti := range hand.Tasks {
		if hand.Tasks[ti].WorkHint == inferred.Tasks[ti].WorkHint {
			a.HintsExact++
		}
	}
	return a, nil
}
