package infer_test

import (
	"reflect"
	"testing"

	"taskstream/internal/analysis/infer"
	"taskstream/internal/core"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
)

// chainDFG builds a valid 2-in/1-out DFG with exactly n nodes, so
// tests can pin the op count the hint model sees.
func chainDFG(name string, n int) *fabric.DFG {
	b := fabric.NewBuilder(name, 2, 1)
	cur := b.Add(fabric.OpAdd, fabric.InPort(0), fabric.InPort(1))
	for i := 1; i < n; i++ {
		cur = b.Add(fabric.OpAdd, cur, fabric.InPort(0))
	}
	b.Out(0, cur)
	return b.MustBuild()
}

func lin(base mem.Addr, n int) core.InArg {
	return core.InArg{Kind: core.ArgDRAMLinear, Base: base, N: n}
}

func out(base mem.Addr, n int) core.OutArg {
	return core.OutArg{Kind: core.OutDRAMLinear, Base: base, N: n}
}

func mustInfer(t *testing.T, p *core.Program) (*core.Program, *infer.Patch) {
	t.Helper()
	q, patch, err := infer.Infer(p, infer.Options{NumPorts: 4, PortWidth: 4})
	if err != nil {
		t.Fatalf("Infer(%s): %v", p.Name, err)
	}
	return q, patch
}

func TestInferHints(t *testing.T) {
	p := &core.Program{
		Name: "hints",
		Types: []*core.TaskType{
			{Name: "wide", DFG: chainDFG("wide", 5)},
			{Name: "narrow", DFG: chainDFG("narrow", 1)},
		},
		NumPhases: 1,
		Tasks: []core.Task{
			// 5 ops over 8 elems at width 4 → ceil(40/4) = 10.
			{Type: 0, Key: 0, Ins: []core.InArg{lin(0x1000, 8)}, Outs: []core.OutArg{out(0x2000, 4)}},
			// 1 op: model says 2, clamped up to the 8-elem port floor.
			{Type: 1, Key: 1, Ins: []core.InArg{lin(0x3000, 8)}, Outs: []core.OutArg{out(0x4000, 4)}},
			// Existing hint is kept, never overwritten.
			{Type: 1, Key: 2, Ins: []core.InArg{lin(0x5000, 8)}, Outs: []core.OutArg{out(0x6000, 4)}, WorkHint: 3},
		},
	}
	q, patch := mustInfer(t, p)
	want := []int64{10, 8, 3}
	for i, w := range want {
		if got := q.Tasks[i].WorkHint; got != w {
			t.Errorf("task %d: hint = %d, want %d", i, got, w)
		}
	}
	if len(patch.Hints) != 2 {
		t.Errorf("patch has %d hint changes, want 2", len(patch.Hints))
	}
	if p.Tasks[0].WorkHint != 0 {
		t.Errorf("Infer mutated its input program")
	}
}

func TestInferForwardBasic(t *testing.T) {
	p := &core.Program{
		Name:      "fwd",
		Types:     []*core.TaskType{{Name: "t", DFG: chainDFG("t", 2)}},
		NumPhases: 2,
		Tasks: []core.Task{
			{Type: 0, Key: 0, Phase: 0, Ins: []core.InArg{lin(0x1000, 4)}, Outs: []core.OutArg{out(0x2000, 4)}},
			{Type: 0, Key: 1, Phase: 1, Ins: []core.InArg{lin(0x2000, 4)}, Outs: []core.OutArg{out(0x3000, 4)}},
		},
	}
	q, patch := mustInfer(t, p)
	if len(patch.Forwards) != 1 {
		t.Fatalf("got %d forwards, want 1:\n%s", len(patch.Forwards), patch)
	}
	po, ci := q.Tasks[0].Outs[0], q.Tasks[1].Ins[0]
	if po.Kind != core.OutForward || ci.Kind != core.ArgForwardIn {
		t.Fatalf("ports not converted: out %v in %v", po.Kind, ci.Kind)
	}
	if po.Tag == 0 || po.Tag != ci.Tag {
		t.Errorf("tag mismatch: producer %d consumer %d", po.Tag, ci.Tag)
	}
	if po.Base != 0x2000 || po.N != 4 || ci.Base != 0x2000 || ci.N != 4 {
		t.Errorf("fallback region not preserved: out %+v in %+v", po, ci)
	}
}

// A consumer whose other input reads a region some producer-phase task
// writes cannot be co-dispatched into that phase: forwarding resolves
// the consumer's remaining ports eagerly, racing with the write.
func TestInferForwardUnsafeCoDispatch(t *testing.T) {
	p := &core.Program{
		Name: "unsafe",
		Types: []*core.TaskType{
			{Name: "p", DFG: chainDFG("p", 2)},
			{Name: "c", DFG: chainDFG("c", 2)},
		},
		NumPhases: 2,
		Tasks: []core.Task{
			{Type: 0, Key: 0, Phase: 0, Ins: []core.InArg{lin(0x1000, 4)}, Outs: []core.OutArg{out(0x2000, 4)}},
			{Type: 0, Key: 1, Phase: 0, Ins: []core.InArg{lin(0x1100, 4)}, Outs: []core.OutArg{out(0x4000, 4)}},
			{Type: 1, Key: 2, Phase: 1,
				Ins:  []core.InArg{lin(0x2000, 4), lin(0x4000, 2)}, // 0x4000 read: n differs from the write, no pair — but still racy
				Outs: []core.OutArg{out(0x5000, 4)}},
		},
	}
	_, patch := mustInfer(t, p)
	if len(patch.Forwards) != 0 {
		t.Errorf("got %d forwards, want 0 (consumer's second read races phase-0 writes):\n%s",
			len(patch.Forwards), patch)
	}
}

// Two pending streams into one consumer are delivered as one dispatch
// group (the mergesort shape), so sibling candidates exempt each other
// — but if one of them is rejected, the survivor must be rejected too.
func TestInferForwardSiblings(t *testing.T) {
	mk := func(prod0Fwd bool) *core.Program {
		p0 := core.Task{Type: 0, Key: 0, Phase: 0,
			Ins: []core.InArg{lin(0x1000, 4)}, Outs: []core.OutArg{out(0x2000, 4)}}
		if prod0Fwd {
			// Producer already drives a forward stream of its own; its
			// write to 0x2000 can no longer be converted.
			p0.Outs = append(p0.Outs, core.OutArg{Kind: core.OutForward, Base: 0x7000, N: 4, Tag: 99})
		}
		return &core.Program{
			Name: "siblings",
			Types: []*core.TaskType{
				{Name: "p", DFG: chainDFG("p", 2)},
				{Name: "c", DFG: chainDFG("c", 2)},
			},
			NumPhases: 2,
			Tasks: []core.Task{
				p0,
				{Type: 0, Key: 1, Phase: 0, Ins: []core.InArg{lin(0x1100, 4)}, Outs: []core.OutArg{out(0x3000, 4)}},
				{Type: 1, Key: 2, Phase: 1,
					Ins:  []core.InArg{lin(0x2000, 4), lin(0x3000, 4)},
					Outs: []core.OutArg{out(0x5000, 4)}},
			},
		}
	}

	// Clean case: both streams convert as one dispatch group.
	_, patch := mustInfer(t, mk(false))
	if len(patch.Forwards) != 2 {
		t.Errorf("dual-stream merge: got %d forwards, want 2:\n%s", len(patch.Forwards), patch)
	}

	// Producer 0 is unavailable → its region stays a plain phase-0
	// write → the sibling stream must be dropped by the fixpoint.
	_, patch = mustInfer(t, mk(true))
	if len(patch.Forwards) != 0 {
		t.Errorf("cascade: got %d forwards, want 0:\n%s", len(patch.Forwards), patch)
	}
}

func TestInferShared(t *testing.T) {
	p := &core.Program{
		Name:      "shared",
		Types:     []*core.TaskType{{Name: "t", DFG: chainDFG("t", 2)}},
		NumPhases: 1,
		Tasks: []core.Task{
			{Type: 0, Key: 0, Ins: []core.InArg{lin(0x1000, 8)}, Outs: []core.OutArg{out(0x2000, 4)}},
			{Type: 0, Key: 1, Ins: []core.InArg{lin(0x1000, 8)}, Outs: []core.OutArg{out(0x3000, 4)}},
			// Prefix of the same range: different (base, n), no coalesce.
			{Type: 0, Key: 2, Ins: []core.InArg{lin(0x1000, 4)}, Outs: []core.OutArg{out(0x4000, 4)}},
		},
	}
	q, patch := mustInfer(t, p)
	if len(patch.Shared) != 2 {
		t.Fatalf("got %d shared marks, want 2:\n%s", len(patch.Shared), patch)
	}
	if !q.Tasks[0].Ins[0].Shared || !q.Tasks[1].Ins[0].Shared || q.Tasks[2].Ins[0].Shared {
		t.Errorf("wrong endpoints marked: %v %v %v",
			q.Tasks[0].Ins[0].Shared, q.Tasks[1].Ins[0].Shared, q.Tasks[2].Ins[0].Shared)
	}
}

func TestInferDeterministic(t *testing.T) {
	p := &core.Program{
		Name:      "det",
		Types:     []*core.TaskType{{Name: "t", DFG: chainDFG("t", 3)}},
		NumPhases: 2,
		Tasks: []core.Task{
			{Type: 0, Key: 0, Phase: 0, Ins: []core.InArg{lin(0x1000, 4)}, Outs: []core.OutArg{out(0x2000, 4)}},
			{Type: 0, Key: 1, Phase: 0, Ins: []core.InArg{lin(0x1100, 4)}, Outs: []core.OutArg{out(0x2100, 4)}},
			{Type: 0, Key: 2, Phase: 1, Ins: []core.InArg{lin(0x2000, 4)}, Outs: []core.OutArg{out(0x3000, 4)}},
			{Type: 0, Key: 3, Phase: 1, Ins: []core.InArg{lin(0x2100, 4)}, Outs: []core.OutArg{out(0x3100, 4)}},
		},
	}
	q1, patch1 := mustInfer(t, p)
	q2, patch2 := mustInfer(t, p)
	if !reflect.DeepEqual(patch1, patch2) {
		t.Errorf("patches differ across runs:\n%s\nvs\n%s", patch1, patch2)
	}
	if !reflect.DeepEqual(q1.Tasks, q2.Tasks) {
		t.Errorf("annotated task lists differ across runs")
	}
	// Fresh tags start above the existing watermark.
	if got := core.MaxTag(p.Tasks); got != 0 {
		t.Fatalf("test program unexpectedly carries tags (max %d)", got)
	}
	for i, f := range patch1.Forwards {
		if f.Tag != uint64(i+1) {
			t.Errorf("forward %d: tag %d, want %d (sequential from watermark)", i, f.Tag, i+1)
		}
	}
}
