package infer

import "taskstream/internal/core"

// Strip returns a copy of p with every annotation erased: work hints
// zeroed, forward tags lowered to their memory fallbacks (OutForward →
// OutDRAMLinear, ArgForwardIn → ArgDRAMLinear, tags cleared), and
// shared-read marks dropped. The result computes the same values —
// forwards always have a memory fallback, so lowering a tagged pair to
// a plain cross-phase write→read preserves semantics — and is the
// ground-truth input for measuring what Infer recovers.
func Strip(p *core.Program) *core.Program {
	tasks := core.CloneTasks(p.Tasks)
	for ti := range tasks {
		t := &tasks[ti]
		t.WorkHint = 0
		for pi := range t.Ins {
			in := &t.Ins[pi]
			in.Shared = false
			if in.Kind == core.ArgForwardIn {
				in.Kind = core.ArgDRAMLinear
				in.Tag = 0
			}
		}
		for pi := range t.Outs {
			o := &t.Outs[pi]
			if o.Kind == core.OutForward {
				o.Kind = core.OutDRAMLinear
				o.Tag = 0
			}
		}
	}
	return p.WithTasks(tasks)
}
