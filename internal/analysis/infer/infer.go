// Package infer runs the delta-vet analysis in reverse: instead of
// checking the annotations of a TaskStream program it synthesizes
// them. Given a plain task program — no work hints, no forward tags,
// no shared-read marks — the pass rebuilds the inter-task structure
// the annotations would declare, from exactly the static facts the
// verifier reasons over (per-port stream lengths, DFG op counts, and
// the per-phase memory-region footprint):
//
//   - Work hints: a task's streamed element count is a hard lower
//     bound on its work (the fabric cycles every element through a
//     port), and its DFG op count scales that per element, so the
//     synthesized hint is max(maxN, ceil(maxN·|DFG|/PortWidth)).
//
//   - Forward tags: a region written by exactly one task in phase p
//     and read — with the identical (base, length) — by exactly one
//     task in phase p+1 is a point-to-point producer→consumer stream;
//     the pair is tagged with a fresh tag and the matching memory
//     fallback. Because OutForward always writes its fallback region,
//     later readers of the region are unaffected.
//
//   - Shared-read marks: an identical linear DRAM range read by two
//     or more tasks of one phase is a multicast group; every endpoint
//     is marked Shared.
//
// Forwarding additionally moves the consumer's dispatch into the
// producer's phase window, so a pair is only tagged when the
// consumer's remaining statically-known regions cannot race with
// producer-phase traffic (see forwardSafe). Inference is additive
// (existing annotations are kept, never overwritten), deterministic
// (fresh tags are assigned in phase-then-region order, so equal inputs
// produce byte-equal outputs and stable runplan cache keys), and gated
// by the verifier on both sides: a program that fails delta-vet is
// refused, and the annotated result must itself vet clean.
package infer

import (
	"fmt"
	"sort"
	"strings"

	"taskstream/internal/analysis"
	"taskstream/internal/core"
	"taskstream/internal/mem"
)

// Options tunes the synthesizer.
type Options struct {
	// NumPorts is the fabric's physical port count, passed to the
	// gating verifier and used as the port budget when coarsening.
	// 0 disables the port bound (program-only analysis).
	NumPorts int
	// PortWidth is the fabric's vector port width, the per-cycle
	// element throughput the work-hint model divides DFG ops by.
	// 0 means the default of 4.
	PortWidth int
	// CoarsenThreshold, when positive, first merges runs of adjacent
	// same-type same-phase tasks whose estimated work falls below the
	// threshold (DiscoPoP-style task merging), then annotates the
	// coarsened program.
	CoarsenThreshold int64
}

const defaultPortWidth = 4

// Infer synthesizes annotations for p and returns the annotated
// program (a deep copy; p is never mutated) plus the patch describing
// every change. It fails if p itself has delta-vet errors, or — the
// synthesizer's own gate — if the annotated result does.
func Infer(p *core.Program, opts Options) (*core.Program, *Patch, error) {
	if opts.PortWidth <= 0 {
		opts.PortWidth = defaultPortWidth
	}
	vetOpts := analysis.Options{NumPorts: opts.NumPorts}
	if rep := analysis.AnalyzeOpts(p, vetOpts); rep.Errors() > 0 {
		return nil, nil, fmt.Errorf("infer: %q fails delta-vet with %d error(s); refusing to annotate:\n%s",
			p.Name, rep.Errors(), firstErrors(rep, 3))
	}
	q := p.WithTasks(core.CloneTasks(p.Tasks))
	patch := &Patch{Program: p.Name}
	if opts.CoarsenThreshold > 0 {
		q = coarsenProgram(q, opts, patch)
	}
	inferForwards(q, patch)
	inferShared(q, patch)
	inferHints(q, opts.PortWidth, patch)
	if rep := analysis.AnalyzeOpts(q, vetOpts); rep.Errors() > 0 {
		return nil, nil, fmt.Errorf("infer: synthesized annotations for %q fail delta-vet with %d error(s):\n%s",
			p.Name, rep.Errors(), firstErrors(rep, 3))
	}
	return q, patch, nil
}

// firstErrors renders up to n error diagnostics for error messages.
func firstErrors(rep *analysis.Report, n int) string {
	var b strings.Builder
	for _, d := range rep.Diags {
		if d.Sev != analysis.Error {
			continue
		}
		fmt.Fprintf(&b, "  %s\n", d.String())
		if n--; n == 0 {
			break
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// regKey identifies a linear region the way the multicast manager and
// the forwarding fallback contract do: exact (base, element count).
type regKey struct {
	base mem.Addr
	n    int
}

type endpoint struct{ task, port int }

// fspan is one statically-known [lo, hi) byte range of a phase's
// memory footprint.
type fspan struct{ lo, hi mem.Addr }

func (s fspan) overlaps(t fspan) bool { return s.lo < t.hi && t.lo < s.hi }

func mkspan(base mem.Addr, n int) fspan {
	return fspan{lo: base, hi: base + mem.Addr(n*mem.ElemBytes)}
}

// candidate is one forward pair under consideration.
type candidate struct {
	key  regKey
	prod endpoint
	cons endpoint
}

// inferForwards tags every safe point-to-point cross-phase stream.
func inferForwards(p *core.Program, patch *Patch) {
	if p.NumPhases < 2 {
		return
	}
	// Index exact linear DRAM writes and reads by phase and region,
	// and collect each phase's full static footprint for safety checks.
	writes := make([]map[regKey][]endpoint, p.NumPhases)
	reads := make([]map[regKey][]endpoint, p.NumPhases)
	writeFP := make([][]fspan, p.NumPhases)
	readFP := make([][]fspan, p.NumPhases)
	hasFwdOut := make([]bool, len(p.Tasks))
	for ti := range p.Tasks {
		t := &p.Tasks[ti]
		ph := t.Phase
		if ph < 0 || ph >= p.NumPhases {
			continue
		}
		for pi, o := range t.Outs {
			if o.Kind == core.OutForward {
				hasFwdOut[ti] = true
			}
			if o.N <= 0 {
				continue
			}
			switch o.Kind {
			case core.OutDRAMLinear:
				if o.Base != 0 {
					k := regKey{o.Base, o.N}
					if writes[ph] == nil {
						writes[ph] = make(map[regKey][]endpoint)
					}
					writes[ph][k] = append(writes[ph][k], endpoint{ti, pi})
				}
				writeFP[ph] = append(writeFP[ph], mkspan(o.Base, o.N))
			case core.OutSpadLinear, core.OutForward:
				writeFP[ph] = append(writeFP[ph], mkspan(o.Base, o.N))
			}
		}
		for pi, in := range t.Ins {
			if in.N <= 0 {
				continue
			}
			switch in.Kind {
			case core.ArgDRAMLinear:
				k := regKey{in.Base, in.N}
				if reads[ph] == nil {
					reads[ph] = make(map[regKey][]endpoint)
				}
				reads[ph][k] = append(reads[ph][k], endpoint{ti, pi})
				readFP[ph] = append(readFP[ph], mkspan(in.Base, in.N))
			case core.ArgSpadLinear, core.ArgForwardIn:
				readFP[ph] = append(readFP[ph], mkspan(in.Base, in.N))
			case core.ArgDRAMGather, core.ArgSpadGather:
				readFP[ph] = append(readFP[ph], mkspan(in.IdxBase, in.N))
			}
		}
	}

	nextTag := core.MaxTag(p.Tasks) + 1
	for ph := 0; ph+1 < p.NumPhases; ph++ {
		cands := collectCandidates(p, writes[ph], reads[ph+1], hasFwdOut)
		cands = pruneUnsafe(p, cands, writeFP[ph], readFP[ph])
		for _, c := range cands {
			po := &p.Tasks[c.prod.task].Outs[c.prod.port]
			ci := &p.Tasks[c.cons.task].Ins[c.cons.port]
			po.Kind, po.Tag = core.OutForward, nextTag
			ci.Kind, ci.Tag, ci.Shared = core.ArgForwardIn, nextTag, false
			hasFwdOut[c.prod.task] = true
			patch.Forwards = append(patch.Forwards, ForwardChange{
				Tag:      nextTag,
				Producer: c.prod.task, ProdPort: c.prod.port,
				Consumer: c.cons.task, ConsPort: c.cons.port,
				Base: uint64(c.key.base), N: c.key.n,
			})
			nextTag++
		}
	}
}

// collectCandidates pairs each region written by exactly one phase-p
// task with its single exact-match reader in phase p+1. A producer can
// drive at most one forward stream (the resolver selects one OutForward
// tag per dispatch), so only its first region in sorted order is kept.
func collectCandidates(p *core.Program, writes, reads map[regKey][]endpoint, hasFwdOut []bool) []candidate {
	keys := make([]regKey, 0, len(writes))
	for k := range writes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i].base < keys[j].base ||
			(keys[i].base == keys[j].base && keys[i].n < keys[j].n)
	})
	taken := make(map[int]bool)
	var out []candidate
	for _, k := range keys {
		ws, rs := writes[k], reads[k]
		if len(ws) != 1 || len(rs) != 1 {
			continue
		}
		w, r := ws[0], rs[0]
		if hasFwdOut[w.task] || taken[w.task] {
			continue
		}
		// A consumer that already mixes pre-existing forward-ins with
		// new ones would need a dispatch group the pass cannot reason
		// about; leave it alone.
		if p.Tasks[r.task].ConsumesTag() != 0 {
			continue
		}
		taken[w.task] = true
		out = append(out, candidate{key: k, prod: w, cons: r})
	}
	return out
}

// pruneUnsafe drops candidates whose consumer cannot be co-dispatched
// into the producer's phase window. Forwarding moves the consumer's
// eager resolution from phase p+1 into phase p, so every OTHER
// statically-known region the consumer touches must be disjoint from
// phase p's footprint: its remaining reads must not hit phase-p
// writes (they would observe dispatch-order-dependent data), and its
// writes must not hit phase-p reads or writes (phase-p tasks would).
// Ports being converted together are exempt — their ordering is the
// tag dependence itself, the case of a consumer fed by two forwarded
// streams. Rejecting one candidate turns its port back into a plain
// phase-p-written read for sibling candidates of the same consumer,
// so the filter iterates to a fixed point.
func pruneUnsafe(p *core.Program, cands []candidate, phWrites, phReads []fspan) []candidate {
	for {
		converted := make(map[endpoint]bool, len(cands))
		for _, c := range cands {
			converted[c.cons] = true
		}
		keep := cands[:0:len(cands)]
		changed := false
		for _, c := range cands {
			if consumerSafe(p, c.cons.task, converted, phWrites, phReads) {
				keep = append(keep, c)
			} else {
				changed = true
			}
		}
		cands = keep
		if !changed {
			return cands
		}
	}
}

// consumerSafe checks one consumer task against the producer phase's
// footprint (see pruneUnsafe).
func consumerSafe(p *core.Program, task int, converted map[endpoint]bool, phWrites, phReads []fspan) bool {
	t := &p.Tasks[task]
	for pi, in := range t.Ins {
		if converted[endpoint{task, pi}] {
			continue
		}
		var rd fspan
		switch in.Kind {
		case core.ArgNone, core.ArgConst:
			continue
		case core.ArgDRAMLinear, core.ArgSpadLinear, core.ArgForwardIn:
			if in.N <= 0 {
				continue
			}
			rd = mkspan(in.Base, in.N)
		case core.ArgDRAMAffine:
			if in.N <= 0 {
				continue
			}
			rd = affineHull(in)
		default:
			// Gathers read data at run-time addresses the pass cannot
			// bound; refuse to move the task.
			return false
		}
		for _, w := range phWrites {
			if rd.overlaps(w) {
				return false
			}
		}
	}
	for _, o := range t.Outs {
		switch o.Kind {
		case core.OutNone, core.OutDiscard:
			continue
		}
		if o.N < 0 {
			return false // kernel-determined extent: unknown write set
		}
		if o.N == 0 {
			continue
		}
		wr := mkspan(o.Base, o.N)
		for _, w := range phWrites {
			if wr.overlaps(w) {
				return false
			}
		}
		for _, r := range phReads {
			if wr.overlaps(r) {
				return false
			}
		}
	}
	return true
}

// affineHull covers an affine shape with one conservative span.
func affineHull(in core.InArg) fspan {
	lastOff := int64(in.Rows-1) * int64(in.Pitch)
	lo, hi := int64(0), int64(0)
	if lastOff < 0 {
		lo = lastOff
	} else {
		hi = lastOff
	}
	hi += int64(in.RowLen)
	return fspan{lo: in.Base + mem.Addr(lo*mem.ElemBytes), hi: in.Base + mem.Addr(hi*mem.ElemBytes)}
}

// inferShared marks every identical linear DRAM range read by two or
// more distinct tasks of one phase — the exact-match condition under
// which the multicast manager coalesces.
func inferShared(p *core.Program, patch *Patch) {
	if p.NumPhases <= 0 {
		return
	}
	groups := make([]map[regKey][]endpoint, p.NumPhases)
	for ti := range p.Tasks {
		t := &p.Tasks[ti]
		ph := t.Phase
		if ph < 0 || ph >= p.NumPhases {
			continue
		}
		for pi, in := range t.Ins {
			if in.Kind != core.ArgDRAMLinear || in.N <= 0 {
				continue
			}
			if groups[ph] == nil {
				groups[ph] = make(map[regKey][]endpoint)
			}
			k := regKey{in.Base, in.N}
			groups[ph][k] = append(groups[ph][k], endpoint{ti, pi})
		}
	}
	for ph := 0; ph < p.NumPhases; ph++ {
		keys := make([]regKey, 0, len(groups[ph]))
		for k := range groups[ph] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return keys[i].base < keys[j].base ||
				(keys[i].base == keys[j].base && keys[i].n < keys[j].n)
		})
		for _, k := range keys {
			eps := groups[ph][k]
			distinct := make(map[int]bool, len(eps))
			for _, ep := range eps {
				distinct[ep.task] = true
			}
			if len(distinct) < 2 {
				continue
			}
			for _, ep := range eps {
				in := &p.Tasks[ep.task].Ins[ep.port]
				if in.Shared {
					continue
				}
				in.Shared = true
				patch.Shared = append(patch.Shared, SharedChange{
					Task: ep.task, Port: ep.port, Base: uint64(k.base), N: k.n,
				})
			}
		}
	}
}

// inferHints fills every unset work hint from the static work model:
// the longest port stream maxN bounds work from below, and the task
// type's DFG performs |nodes| ops per element at PortWidth elements
// per cycle, so the estimate is max(maxN, ceil(maxN·|nodes|/width)).
// The result is always at or above the verifier's hint floor.
func inferHints(p *core.Program, portWidth int, patch *Patch) {
	for ti := range p.Tasks {
		t := &p.Tasks[ti]
		if t.WorkHint > 0 {
			continue
		}
		maxN := 0
		for _, in := range t.Ins {
			if in.Kind != core.ArgNone && in.Kind != core.ArgConst && in.N > maxN {
				maxN = in.N
			}
		}
		for _, o := range t.Outs {
			if o.Kind != core.OutNone && o.N > maxN {
				maxN = o.N
			}
		}
		if maxN <= 0 {
			continue
		}
		nodes := 1
		if t.Type >= 0 && t.Type < len(p.Types) && p.Types[t.Type].DFG != nil {
			if n := len(p.Types[t.Type].DFG.Nodes); n > 0 {
				nodes = n
			}
		}
		est := (int64(maxN)*int64(nodes) + int64(portWidth) - 1) / int64(portWidth)
		if est < int64(maxN) {
			est = int64(maxN) // ops model can't go below the port floor
		}
		t.WorkHint = est
		patch.Hints = append(patch.Hints, HintChange{Task: ti, Key: t.Key, Hint: est})
	}
}
