package core

import (
	"testing"

	"taskstream/internal/mem"
	"taskstream/internal/obs"
)

// TestObsNoPerturbation pins the observability layer's passivity:
// attaching a sink (which also disables fast-forwarding for the run)
// must change no simulated cycle count and no stats counter, across
// multiple workload shapes.
func TestObsNoPerturbation(t *testing.T) {
	cases := []struct {
		name  string
		build func(st *mem.Storage) *Program
		lanes int
		cfg   func(c *configMut)
	}{
		{"skewed", func(st *mem.Storage) *Program { return skewedProgram(t, st) }, 4, nil},
		{"forward", func(st *mem.Storage) *Program { return forwardProgram(st, 512) }, 2,
			func(c *configMut) { c.fwd = true }},
		{"shared-read", func(st *mem.Storage) *Program { return sharedReadProgram(st, 8, 1024, 64) }, 8,
			func(c *configMut) { c.mcast = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(sink *obs.Sink) Report {
				st := mem.NewStorage()
				prog := tc.build(st)
				cfg := testConfig(tc.lanes)
				if tc.cfg != nil {
					var m configMut
					tc.cfg(&m)
					cfg.Task.EnableForwarding = cfg.Task.EnableForwarding || m.fwd
					cfg.Task.EnableMulticast = cfg.Task.EnableMulticast || m.mcast
				}
				return buildAndRun(t, cfg, prog, st, Options{Obs: sink})
			}
			plain := run(nil)
			sink := obs.New(0)
			traced := run(sink)
			if plain.Cycles != traced.Cycles {
				t.Fatalf("tracing changed cycles: %d vs %d", plain.Cycles, traced.Cycles)
			}
			if a, b := plain.Stats.String(), traced.Stats.String(); a != b {
				t.Fatalf("tracing changed stats:\nuntraced:\n%s\ntraced:\n%s", a, b)
			}
			if sink.Len() == 0 {
				t.Fatal("traced run emitted no events")
			}
		})
	}
}

type configMut struct{ fwd, mcast bool }

// TestObsLaneSpansCoverRun pins the lane-state span invariant: every
// lane's cause breakdown partitions the full run — the per-lane span
// cycles sum exactly to the cycle count.
func TestObsLaneSpansCoverRun(t *testing.T) {
	st := mem.NewStorage()
	prog := skewedProgram(t, st)
	sink := obs.New(0)
	rep := buildAndRun(t, testConfig(4), prog, st, Options{Obs: sink})
	m := sink.Metrics()
	for lane := 0; lane < 4; lane++ {
		var sum int64
		for c := obs.Cause(0); c < obs.NumCauses; c++ {
			sum += m.LaneCause(lane, c)
		}
		if sum != rep.Cycles {
			t.Fatalf("lane %d spans cover %d cycles, run took %d", lane, sum, rep.Cycles)
		}
	}
	if m.Dispatches != rep.Stats.Get("tasks_dispatched") {
		t.Fatalf("obs dispatches = %d, stats say %d",
			m.Dispatches, rep.Stats.Get("tasks_dispatched"))
	}
}

// TestObsMulticastMatchesTrafficCounters pins the multicast event
// stream against the E9 traffic counters: hits+misses = table joins,
// misses = groups opened, and the hit events' lines-saved arguments sum
// to the machine's mcast_lines_saved counter.
func TestObsMulticastMatchesTrafficCounters(t *testing.T) {
	st := mem.NewStorage()
	prog := sharedReadProgram(st, 8, 1024, 64)
	cfg := testConfig(8)
	cfg.Task.EnableMulticast = true
	sink := obs.New(0)
	rep := buildAndRun(t, cfg, prog, st, Options{Obs: sink})
	m := sink.Metrics()
	if m.McastHits == 0 {
		t.Fatal("no multicast hit events observed")
	}
	if got, want := m.McastHits+m.McastMisses, rep.Stats.Get("mcast_joins"); got != want {
		t.Fatalf("hit+miss events = %d, mcast_joins = %d", got, want)
	}
	if got, want := m.McastMisses, rep.Stats.Get("mcast_groups"); got != want {
		t.Fatalf("miss events = %d, mcast_groups = %d", got, want)
	}
	if got, want := m.McastLinesSaved, rep.Stats.Get("mcast_lines_saved"); got != want {
		t.Fatalf("hit events' lines saved = %d, mcast_lines_saved = %d", got, want)
	}
	// Every group line leaving a memory controller is one forward event.
	if m.McastForwards == 0 {
		t.Fatal("no multicast forward events observed")
	}
	var hitLines int64
	for _, ev := range sink.Events() {
		if ev.Kind == obs.KindMcastHit {
			hitLines += ev.B
		}
	}
	if hitLines != m.McastLinesSaved {
		t.Fatalf("raw hit events sum to %d lines saved, metrics folded %d",
			hitLines, m.McastLinesSaved)
	}
}

// TestObsForwardSpansOverlap pins the pipelined inter-task dependence:
// under forwarding, the producer's and consumer's run spans on their
// distinct lanes must overlap in time (the consumer starts before the
// producer finishes — the pipelining the forward group exists for).
func TestObsForwardSpansOverlap(t *testing.T) {
	st := mem.NewStorage()
	prog := forwardProgram(st, 512)
	cfg := testConfig(2)
	cfg.Task.EnableForwarding = true
	sink := obs.New(0)
	rep := buildAndRun(t, cfg, prog, st, Options{Obs: sink})
	if rep.Stats.Get("fwd_pairs") != 1 {
		t.Fatalf("fwd_pairs = %d, want 1", rep.Stats.Get("fwd_pairs"))
	}
	// Collect each task type's busy interval: the union of its config,
	// run, and stall spans (everything from task start to completion).
	type interval struct {
		lane       int32
		start, end int64
		seen       bool
	}
	busy := map[string]*interval{}
	for _, ev := range sink.Events() {
		if ev.Kind != obs.KindLaneState || ev.Name == "" {
			continue
		}
		iv := busy[ev.Name]
		if iv == nil {
			iv = &interval{lane: ev.Comp, start: ev.Cycle, end: ev.Cycle + ev.Dur, seen: true}
			busy[ev.Name] = iv
			continue
		}
		if ev.Comp != iv.lane {
			t.Fatalf("type %s observed on lanes %d and %d, want one lane each",
				ev.Name, iv.lane, ev.Comp)
		}
		if ev.Cycle < iv.start {
			iv.start = ev.Cycle
		}
		if ev.Cycle+ev.Dur > iv.end {
			iv.end = ev.Cycle + ev.Dur
		}
	}
	prod, cons := busy["copy"], busy["addk"]
	if prod == nil || cons == nil {
		t.Fatalf("missing producer/consumer spans (saw %d types)", len(busy))
	}
	if prod.lane == cons.lane {
		t.Fatalf("forward pair shares lane %d, want distinct lanes", prod.lane)
	}
	if cons.start >= prod.end || prod.start >= cons.end {
		t.Fatalf("producer [%d,%d) and consumer [%d,%d) do not overlap — not pipelined",
			prod.start, prod.end, cons.start, cons.end)
	}
}

// TestObsDisablesCaching pins the run-cache composition: a run with a
// sink attached is an observable side channel and must never memoize.
func TestObsDisablesCaching(t *testing.T) {
	if (Options{Obs: obs.New(0)}).Cacheable() {
		t.Fatal("options with an obs sink must not be cacheable")
	}
	if !(Options{}).Cacheable() {
		t.Fatal("plain options must be cacheable")
	}
	n := Options{Obs: obs.New(0)}.Normalized()
	if n.Obs != nil {
		t.Fatal("Normalized must drop the sink")
	}
}
