package core

import (
	"fmt"
	"sync"
)

// Vetter is a whole-program static verifier: it inspects a Program's
// inter-task structure (forward tags, memory regions, shared-read
// marks, work hints) before any cycle is simulated. numPorts is the
// fabric's physical port count, so the verifier can reject tasks that
// could never be resolved onto the machine.
//
// The verifier lives in internal/analysis, which imports this package;
// the indirection through RegisterVetter is what lets NewMachine invoke
// it without an import cycle (the same pattern database/sql uses for
// drivers). Importing internal/analysis — directly or through
// internal/baseline — registers it.
type Vetter func(p *Program, numPorts int) error

// vetMu guards the registry: registration normally happens once from
// an init func, but machines are constructed concurrently by the
// parallel experiment harness, so the read side must be synchronized
// too (go test -race covers this).
var (
	vetMu  sync.RWMutex
	vetter Vetter
)

// RegisterVetter installs the verifier run by Options.Vet.
func RegisterVetter(v Vetter) {
	vetMu.Lock()
	defer vetMu.Unlock()
	vetter = v
}

// runVet invokes the registered verifier.
func runVet(p *Program, numPorts int) error {
	vetMu.RLock()
	v := vetter
	vetMu.RUnlock()
	if v == nil {
		return fmt.Errorf("core: Options.Vet set but no verifier registered (import taskstream/internal/analysis)")
	}
	return v(p, numPorts)
}
