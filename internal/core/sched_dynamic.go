package core

import "taskstream/internal/sim"

// dynamicSched is the TaskStream dispatch policy (PolicyDynamic):
// run-time dispatch of the queue head, work-aware least-loaded when
// the config enables it and round-robin otherwise, with forward-group
// co-dispatch when the head task produces a tagged stream.
type dynamicSched struct {
	rr int // round-robin cursor
}

func (d *dynamicSched) Name() string { return PolicyDynamic.String() }

// Dispatch implements the TaskStream policy. When the head task
// produces a tagged stream and forwarding is enabled, the coordinator
// tries to co-dispatch the whole forward group — every still-pending
// producer the consumer needs, plus the consumer — onto distinct
// lanes, recovering the pipelined inter-task dependence. If the group
// cannot be formed (consumer missing, producers missing, too few free
// lanes) the task runs alone with memory-mediated output.
func (d *dynamicSched) Dispatch(s *SchedState, now sim.Cycle) bool {
	t := s.Pending()[0]
	if tag := t.ProducesTag(); tag != 0 && s.ForwardingEnabled() {
		if s.TryForwardGroup(0, func(w []int64) []int { return d.distinctLanes(s, len(w)) }) {
			return true
		}
	}
	lane := d.pickLane(s)
	if lane < 0 {
		return false
	}
	s.Dispatch(0, lane)
	return true
}

// pickLane chooses a dispatch target with queue space, or -1.
// Work-aware: least outstanding work; otherwise round-robin.
func (d *dynamicSched) pickLane(s *SchedState) int {
	n := s.NumLanes()
	if s.WorkAware() {
		best, bestWork := -1, int64(0)
		for i := 0; i < n; i++ {
			if s.QueueFree(i) == 0 {
				continue
			}
			if best < 0 || s.LaneWork(i) < bestWork {
				best, bestWork = i, s.LaneWork(i)
			}
		}
		return best
	}
	for k := 0; k < n; k++ {
		i := (d.rr + k) % n
		if s.QueueFree(i) == 0 {
			continue
		}
		d.rr = (i + 1) % n
		return i
	}
	return -1
}

// distinctLanes picks k distinct lanes with queue space by the active
// dispatch preference — least outstanding work under work-aware
// balancing, round-robin order (advancing the shared cursor per pick)
// otherwise — or nil if impossible.
func (d *dynamicSched) distinctLanes(s *SchedState, k int) []int {
	n := s.NumLanes()
	chosen := make([]int, 0, k)
	used := make(map[int]bool, k)
	for len(chosen) < k {
		best := -1
		if s.WorkAware() {
			var bestWork int64
			for i := 0; i < n; i++ {
				if used[i] || s.QueueFree(i) == 0 {
					continue
				}
				if best < 0 || s.LaneWork(i) < bestWork {
					best, bestWork = i, s.LaneWork(i)
				}
			}
		} else {
			for j := 0; j < n; j++ {
				i := (d.rr + j) % n
				if used[i] || s.QueueFree(i) == 0 {
					continue
				}
				d.rr = (i + 1) % n
				best = i
				break
			}
		}
		if best < 0 {
			return nil
		}
		used[best] = true
		chosen = append(chosen, best)
	}
	return chosen
}

func (d *dynamicSched) PhaseStart(s *SchedState, p int)                {}
func (d *dynamicSched) TaskCompleted(s *SchedState, lane int, h int64) {}
func (d *dynamicSched) NextEvent(now sim.Cycle) sim.Cycle              { return sim.Never }
func (d *dynamicSched) Skip(from, to sim.Cycle)                        {}
