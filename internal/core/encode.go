package core

import (
	"encoding/json"
	"fmt"

	"taskstream/internal/stats"
)

// wireReport is Report's serialized form. Every field is explicit so
// the encoding is a contract, not an accident of struct layout; the
// stats set serializes as an order-preserving pair array
// (stats.Set.MarshalJSON), so equal reports encode to identical bytes
// — the property the content-addressed store's integrity re-hash
// depends on.
type wireReport struct {
	Cycles   int64      `json:"cycles"`
	LaneBusy []int64    `json:"lane_busy"`
	Stats    *stats.Set `json:"stats"`
}

// EncodeReport serializes the report into its stable wire form.
// Encoding is deterministic: encoding the same report (or a Clone of
// it) always yields the same bytes.
func EncodeReport(r Report) ([]byte, error) {
	return json.Marshal(wireReport{
		Cycles:   r.Cycles,
		LaneBusy: r.LaneBusy,
		Stats:    r.Stats,
	})
}

// DecodeReport parses bytes produced by EncodeReport. The result is
// fully owned by the caller (no aliasing into b).
func DecodeReport(b []byte) (Report, error) {
	var w wireReport
	if err := json.Unmarshal(b, &w); err != nil {
		return Report{}, fmt.Errorf("core: decode report: %w", err)
	}
	return Report{Cycles: w.Cycles, LaneBusy: w.LaneBusy, Stats: w.Stats}, nil
}
