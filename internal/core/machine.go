package core

import (
	"fmt"
	"os"

	"taskstream/internal/config"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
	"taskstream/internal/noc"
	"taskstream/internal/obs"
	"taskstream/internal/proto"
	"taskstream/internal/sim"
	"taskstream/internal/stats"
	"taskstream/internal/stream"
	"taskstream/internal/trace"
)

// Options select the execution model variant for a run.
type Options struct {
	// Policy picks TaskStream dispatch or the static-parallel baseline.
	Policy Policy
	// Hints controls work-hint fidelity (E12).
	Hints HintMode
	// MaxCycles overrides the safety limit (0 = default).
	MaxCycles sim.Cycle
	// Trace, when non-nil, records task lifecycle events.
	Trace *trace.Recorder
	// Obs, when non-nil, receives the machine-wide observability event
	// stream (package obs): dispatch decisions, lane state spans with
	// stall attribution, stream-engine spans, multicast table activity,
	// NoC hop and DRAM channel occupancy. Attaching a sink disables
	// event-horizon fast-forwarding for the run so attribution is
	// observed per cycle rather than synthesized — a switch the §11
	// byte-identity contract guarantees changes no cycle count or stat.
	Obs *obs.Sink
	// Vet runs the registered whole-program static verifier (see
	// RegisterVetter; internal/analysis provides it) before the machine
	// is wired. NewMachine fails if the program does not vet clean.
	Vet bool
	// DisableFastForward forces cycle-by-cycle execution. Fast-forward
	// is on by default and byte-identical to it (DESIGN.md §11); this
	// switch exists for the equality tests and for debugging. The
	// TASKSTREAM_NO_FASTFORWARD environment variable disables it
	// machine-wide for whole-binary A/B comparison.
	DisableFastForward bool
	// Shards opts the run into sharded execution (DESIGN.md §16):
	// lanes tick on worker goroutines with a deterministic epoch
	// barrier per cycle, byte-identical to serial execution at any
	// shard count and never entering result identity (Normalized drops
	// it). 0 reads the TASKSTREAM_SHARDS environment variable; values
	// ≤1 run serial. Machines with fewer than minShardLanes lanes fall
	// back to serial (documented auto-fallback: the per-cycle fork/join
	// would cost more than the parallelism recovers).
	Shards int
}

// Machine is one fully wired accelerator instance executing one
// program under one execution model.
type Machine struct {
	cfg     config.Config
	opts    Options
	prog    *Program
	topo    proto.Topology
	storage *mem.Storage

	engine   *sim.Engine
	shEngine *sim.ShardedEngine // non-nil iff sharded; engine aliases its Engine
	mesh     *noc.Mesh
	channels []*mem.Channel
	memctrls []*memCtrl
	lanes    []*Lane
	coord    *coordinator
	mcast    *mcastManager

	// pool is the central recycled-message-body pool; lanes hold
	// shard-local façades over it under sharded execution (shard.go).
	pool    *proto.Pool
	sharded bool
	// gateGroups / laneCoupled track forward-group start gates whose
	// lanes must tick serially until the gate flips (shard.go).
	gateGroups  []gateGroup
	laneCoupled []bool

	mappings []fabric.Mapping
	tagData  map[uint64][]uint64
	// tagForwarded records whether a tag was delivered by forwarding
	// (paired dispatch) rather than through memory.
	tagForwarded map[uint64]bool

	now sim.Cycle
	set *stats.Set
}

// Report summarizes one run.
type Report struct {
	// Cycles is the total execution time.
	Cycles int64
	// LaneBusy is per-lane busy cycles (imbalance analysis).
	LaneBusy []int64
	// Stats holds every counter the machine collected.
	Stats *stats.Set
}

// NewMachine validates, maps every task type onto the fabric, and wires
// the hardware.
func NewMachine(cfg config.Config, prog *Program, storage *mem.Storage, opts Options) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Policy >= NumPolicies {
		return nil, fmt.Errorf("core: unknown policy %d (valid: %v)",
			uint8(opts.Policy), PolicyNames())
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if opts.Vet {
		if err := runVet(prog, cfg.Fabric.NumPorts); err != nil {
			return nil, err
		}
	}
	topo := proto.Topology{Lanes: cfg.Lanes, Channels: cfg.DRAM.Channels}
	if topo.Nodes() > noc.MaxNodes {
		return nil, fmt.Errorf("core: %d nodes exceed the %d-node mesh limit", topo.Nodes(), noc.MaxNodes)
	}
	m := &Machine{
		cfg:          cfg,
		opts:         opts,
		prog:         prog,
		topo:         topo,
		storage:      storage,
		tagData:      make(map[uint64][]uint64),
		tagForwarded: make(map[uint64]bool),
		set:          stats.NewSet(),
	}
	m.mappings = make([]fabric.Mapping, len(prog.Types))
	for i, tt := range prog.Types {
		mp, err := fabric.Map(tt.DFG, cfg.Fabric.Rows, cfg.Fabric.Cols)
		if err != nil {
			return nil, fmt.Errorf("core: mapping type %s: %w", tt.Name, err)
		}
		m.mappings[i] = mp
	}
	shards := resolveShards(opts.Shards)
	m.sharded = shards > 1 && cfg.Lanes >= minShardLanes
	m.pool = proto.NewPool()
	m.mesh = noc.NewMesh(cfg.NoC, topo.Nodes())
	m.mcast = newMcastManager(sim.Cycle(cfg.Task.CoalesceWindowCycles), cfg.DRAM.LineBytes)
	for c := 0; c < cfg.DRAM.Channels; c++ {
		ch := mem.NewChannel(cfg.DRAM)
		m.channels = append(m.channels, ch)
		m.memctrls = append(m.memctrls, newMemCtrl(m, c, ch))
	}
	if m.sharded {
		m.laneCoupled = make([]bool, cfg.Lanes)
	}
	for i := 0; i < cfg.Lanes; i++ {
		m.lanes = append(m.lanes, newLane(i, m))
	}
	m.coord = newCoordinator(m, opts.Policy)
	if opts.Obs != nil {
		opts.Obs.Lanes = cfg.Lanes
		opts.Obs.Channels = cfg.DRAM.Channels
		m.mesh.SetObs(opts.Obs)
		for c, ch := range m.channels {
			ch.SetObs(opts.Obs, int32(c))
		}
		for _, l := range m.lanes {
			if m.sharded {
				// Parallel-phase emissions stage in a per-lane buffer
				// flushed to the shared sink at the epoch barrier in
				// lane order — the serial per-cycle emission order.
				l.buf = obs.NewBuffer(opts.Obs)
				l.sink = l.buf
			} else {
				l.sink = opts.Obs
			}
			l.eng.SetObs(l.sink)
		}
		m.mcast.obs = opts.Obs
	}

	if m.sharded {
		// Worker count: one execution stream per requested shard
		// (capped by lanes), minus the driving goroutine, which
		// participates in the parallel phase.
		streams := shards
		if streams > cfg.Lanes {
			streams = cfg.Lanes
		}
		m.shEngine = sim.NewShardedEngine(streams - 1)
		m.engine = &m.shEngine.Engine
	} else {
		m.engine = sim.NewEngine()
	}
	m.engine.FastForward = !opts.DisableFastForward && opts.Obs == nil &&
		os.Getenv("TASKSTREAM_NO_FASTFORWARD") == ""
	// Per-ticker micro-skip inside executed cycles: byte-identical by
	// the Forecaster contract. Off under observation for the same
	// reason fast-forwarding is — per-cycle attribution (lane state
	// classification, span extension) must be observed, not skipped.
	m.engine.SkipIdle = opts.Obs == nil
	if opts.MaxCycles > 0 {
		m.engine.MaxCycles = opts.MaxCycles
	}
	m.engine.Register("clock", clockTicker{m: m})
	m.engine.Register("coordinator", m.coord)
	for i, l := range m.lanes {
		if m.sharded {
			m.shEngine.RegisterParallel(fmt.Sprintf("lane%d", i), l, l.outbox)
		} else {
			m.engine.Register(fmt.Sprintf("lane%d", i), l)
		}
	}
	if m.sharded {
		m.shEngine.SetCoupled(func(k int) bool { return m.laneCoupled[k] })
		for _, l := range m.lanes {
			m.shEngine.AddBarrierHook(l.barrierSync)
		}
	}
	m.engine.Register("mesh", m.mesh)
	for c, mc := range m.memctrls {
		m.engine.Register(fmt.Sprintf("memctrl%d", c), mc)
	}
	for c, ch := range m.channels {
		m.engine.Register(fmt.Sprintf("dram%d", c), chanTicker{ch: ch})
	}
	return m, nil
}

// clockTicker publishes the engine's cycle into m.now and, under
// sharded execution, prunes flipped forward-group gates before the
// lanes tick. Registered first, so every other component's Tick sees
// the fresh value. It never originates events.
type clockTicker struct{ m *Machine }

func (c clockTicker) Tick(now sim.Cycle) {
	c.m.now = now
	if c.m.sharded {
		c.m.pruneGates()
	}
}

func (c clockTicker) NextEvent(now sim.Cycle) sim.Cycle { return sim.Never }

// Skip replays the clock's only per-cycle effect in bulk: after ticking
// cycles [from, to) the last published value would be to-1 (gate
// pruning is a pure optimization, safe to run at any point). This is
// what lets the forever-quiet clock participate in SkipIdle — its Skip
// is exactly its Tick — without ever leaving m.now stale for the
// components that read it (coordinator pipe stamps, trace records).
func (c clockTicker) Skip(from, to sim.Cycle) {
	c.m.now = to - 1
	if c.m.sharded {
		c.m.pruneGates()
	}
}

// chanTicker adapts a DRAM channel (its responses are drained by the
// memory controller, so the channel itself only ticks).
type chanTicker struct{ ch *mem.Channel }

func (c chanTicker) Tick(now sim.Cycle) { c.ch.Tick(now) }
func (c chanTicker) Idle() bool         { return c.ch.Idle() }

func (c chanTicker) NextEvent(now sim.Cycle) sim.Cycle { return c.ch.NextEvent(now) }

func (c chanTicker) Skip(from, to sim.Cycle) { c.ch.Skip(from, to) }

// Storage returns the functional store (for result verification).
func (m *Machine) Storage() *mem.Storage { return m.storage }

// effectiveHint applies the configured hint fidelity.
func (m *Machine) effectiveHint(t *Task) int64 {
	switch m.opts.Hints {
	case HintNone:
		return 1
	case HintNoisy:
		// Deterministic per-task factor in {1/4, 1/2, 1, 2, 4}.
		h := t.DefaultWorkHint()
		switch fabric.Mix64(t.Key^0x9e3779b97f4a7c15) % 5 {
		case 0:
			h /= 4
		case 1:
			h /= 2
		case 3:
			h *= 2
		case 4:
			h *= 4
		}
		if h < 1 {
			h = 1
		}
		return h
	default:
		return t.DefaultWorkHint()
	}
}

// submitMcast feeds a coordinator group-fetch line into its DRAM
// channel, registering the delivery directory entry.
func (m *Machine) submitMcast(req proto.McastReq) bool {
	c := mem.ChannelOf(req.Line, m.cfg.DRAM.LineBytes, m.cfg.DRAM.Channels)
	id := proto.MakeReqID(0xFF, false, 0, int64(req.Group)<<16|int64(req.Seq))
	if !m.channels[c].Submit(mem.Request{ID: id, Line: req.Line}) {
		return false
	}
	m.mcast.register(id, req)
	return true
}

// Run executes the program to completion and reports.
func (m *Machine) Run() (Report, error) {
	var cycles sim.Cycle
	var err error
	if m.shEngine != nil {
		cycles, err = m.shEngine.Run(m.coord.AllDone)
	} else {
		cycles, err = m.engine.Run(m.coord.AllDone)
	}
	if ffDebug {
		obs.Global.Add("ff_runs", 1)
		obs.Global.Add("ff_executed_cycles", m.engine.ExecutedCycles)
		obs.Global.Add("ff_skipped_cycles", m.engine.SkippedCycles)
	}
	if err != nil {
		return Report{}, err
	}
	if m.opts.Obs != nil {
		for _, l := range m.lanes {
			l.obsFlush(cycles)
			if l.buf != nil {
				l.buf.Flush() // final span staged after the last barrier
			}
		}
	}
	return m.report(int64(cycles)), nil
}

// ffDebug (TASKSTREAM_FF_DEBUG) meters per-run fast-forward cycle
// accounting — cycles individually executed versus skipped — into the
// process-wide obs.Global registry, where delta-bench -json and the
// CLIs surface it.
var ffDebug = os.Getenv("TASKSTREAM_FF_DEBUG") != ""

// report assembles the statistics snapshot.
func (m *Machine) report(cycles int64) Report {
	s := m.set
	s.SetVal("cycles", cycles)
	s.SetVal("tasks_dispatched", m.coord.Dispatched)
	s.SetVal("tasks_spawned", m.coord.Spawned)
	s.SetVal("fwd_pairs", m.coord.FwdPairs)
	s.SetVal("mcast_groups", m.mcast.Groups)
	s.SetVal("mcast_joins", m.mcast.MemberJoins)
	s.SetVal("mcast_lines_saved", m.mcast.LinesSaved)
	var busy []int64
	var fireCycles, tasksRun, cfgStalls int64
	var dramReq, dramWr, spadAcc, fwdSent, fwdElems int64
	stallKinds := []struct {
		kind stream.SrcKind
		name string
	}{
		{stream.SrcDRAM, "stall_in_dram"},
		{stream.SrcSpad, "stall_in_spad"},
		{stream.SrcForward, "stall_in_fwd"},
		{stream.SrcMulticast, "stall_in_mcast"},
	}
	var stallOut int64
	for _, sk := range stallKinds {
		s.SetVal(sk.name, 0)
	}
	for _, l := range m.lanes {
		for _, sk := range stallKinds {
			s.Add(sk.name, l.StallIn[sk.kind])
		}
		stallOut += l.StallOut
		busy = append(busy, l.BusyCycles)
		fireCycles += l.FireCycles
		tasksRun += l.TasksRun
		cfgStalls += l.ConfigStalls
		dramReq += l.eng.DRAMLinesRequested
		dramWr += l.eng.DRAMLinesWritten
		spadAcc += l.eng.SpadAccesses
		fwdSent += l.eng.FwdMsgsSent
		fwdElems += l.eng.FwdElemsRecv
	}
	s.SetVal("stall_out", stallOut)
	s.SetVal("fire_cycles", fireCycles)
	s.SetVal("tasks_run", tasksRun)
	s.SetVal("config_stalls", cfgStalls)
	s.SetVal("lane_dram_line_reads", dramReq)
	s.SetVal("lane_dram_line_writes", dramWr)
	s.SetVal("spad_accesses", spadAcc)
	s.SetVal("fwd_msgs", fwdSent)
	s.SetVal("fwd_elems", fwdElems)
	var rd, wr, busyCh int64
	for _, ch := range m.channels {
		rd += ch.ReadLines
		wr += ch.WriteLines
		busyCh += ch.BusyCycles
	}
	s.SetVal("dram_lines_read", rd)
	s.SetVal("dram_lines_written", wr)
	s.SetVal("dram_bytes", (rd+wr)*int64(m.cfg.DRAM.LineBytes))
	s.SetVal("dram_busy_cycles", busyCh)
	s.SetVal("noc_msgs", m.mesh.MsgsSent)
	s.SetVal("noc_flit_cycles", m.mesh.FlitCycles)
	s.SetVal("noc_replicas", m.mesh.Replicas)
	return Report{Cycles: cycles, LaneBusy: busy, Stats: s}
}

// memCtrl bridges one DRAM channel to the NoC: requests in, responses
// (unicast or multicast) out.
type memCtrl struct {
	m    *Machine
	chn  int
	node int // cached NoC node id
	ch   *mem.Channel
	held *noc.Message // response that could not inject (backpressure)
}

func newMemCtrl(m *Machine, chn int, ch *mem.Channel) *memCtrl {
	return &memCtrl{m: m, chn: chn, node: m.topo.MemNode(chn), ch: ch}
}

// Tick drains NoC requests into the channel and channel responses back
// into the NoC.
func (mc *memCtrl) Tick(now sim.Cycle) {
	node := mc.node
	// Requests: accept while the channel has queue space.
	for mc.ch.QueueSpace() > 0 {
		msg, ok := mc.m.mesh.Pop(node)
		if !ok {
			break
		}
		body, ok := msg.Body.(*proto.MemReqBody)
		if !ok {
			panic(fmt.Sprintf("core: memctrl got %T", msg.Body))
		}
		mc.ch.Submit(mem.Request{ID: body.ReqID, Line: body.Line, Write: body.Write})
		// The controller is the single consumer of request bodies;
		// recycle through the central pool (serial context).
		mc.m.pool.PutReq(body)
	}
	// Responses: one injection attempt per cycle, holding under
	// backpressure.
	if mc.held != nil {
		if mc.m.mesh.TryInject(*mc.held) {
			mc.held = nil
		}
		return
	}
	r, ok := mc.ch.PopResponse(now)
	if !ok {
		return
	}
	var msg noc.Message
	if req, isMcast := mc.m.mcast.lookup(r.ID); isMcast {
		msg = noc.Message{
			Kind:  noc.KindMemResp,
			Src:   node,
			Dests: req.Dests,
			Bytes: mc.m.cfg.DRAM.LineBytes,
			Body:  proto.McastLineBody{Group: req.Group, Seq: req.Seq},
		}
		if s := mc.m.opts.Obs; s != nil {
			s.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindMcastForward,
				Comp: int32(mc.chn), A: int64(req.Group), B: int64(req.Seq)})
		}
	} else {
		lane, _, _, _ := proto.SplitReqID(r.ID)
		bytes := mc.m.cfg.DRAM.LineBytes
		if r.Write {
			bytes = 0 // ack only
		}
		body := mc.m.pool.GetResp()
		body.Line, body.Write, body.ReqID = r.Line, r.Write, r.ID
		msg = noc.Message{
			Kind:  noc.KindMemResp,
			Src:   node,
			Dests: noc.DestMask(mc.m.lanes[lane].node),
			Bytes: bytes,
			Body:  body,
		}
	}
	if !mc.m.mesh.TryInject(msg) {
		mc.held = &msg
	}
}

// Idle reports controller quiescence.
func (mc *memCtrl) Idle() bool { return mc.held == nil && mc.ch.Idle() }

// NextEvent reports when the controller can next act: immediately when
// a held response can retry injection, NoC requests wait and the
// channel can accept, or a matured response waits; at response maturity
// otherwise.
func (mc *memCtrl) NextEvent(now sim.Cycle) sim.Cycle {
	if mc.held != nil {
		return now
	}
	if mc.m.mesh.Deliverable(mc.node) && mc.ch.QueueSpace() > 0 {
		return now
	}
	return mc.ch.RespNextAt()
}
