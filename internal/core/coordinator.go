package core

import (
	"fmt"

	"taskstream/internal/obs"
	"taskstream/internal/sim"
	"taskstream/internal/trace"
)

// HintMode controls the fidelity of work hints (experiment E12).
type HintMode uint8

const (
	// HintExact uses the task's annotation (or the default estimate).
	HintExact HintMode = iota
	// HintNone treats every task as unit work (work-oblivious).
	HintNone
	// HintNoisy perturbs hints by a deterministic per-task factor in
	// [1/4, 4], modeling inaccurate programmer estimates.
	HintNoisy
)

// ctlLatency models the coordinator's control-network round trip.
const ctlLatency sim.Cycle = 4

// coordinator is the TaskStream hardware shared by every dispatch
// policy: global task queues, phase tracking, the per-lane
// outstanding-work load model, forward-group formation, and control
// pipes. The policy itself — which task goes to which lane — is the
// pluggable Scheduler (scheduler.go, DESIGN.md §17).
type coordinator struct {
	m     *Machine
	sched Scheduler
	state SchedState

	// pending[phase] is the FIFO of undispatched tasks per phase.
	pending [][]Task
	// pendingCount counts undispatched tasks per phase; active counts
	// dispatched-but-incomplete.
	pendingCount []int
	activeCount  []int
	phase        int

	// laneWork is the outstanding work estimate per lane.
	laneWork []int64

	// consumersByTag indexes pending tasks that consume a forward tag.
	consumersByTag map[uint64]int // tag → phase (lookup hint)

	// completions and spawns arrive through control pipes.
	completions   *sim.Pipe[completeEvt]
	spawnsPipe    *sim.Pipe[Task]
	spawnInFlight int

	// Stats.
	Dispatched   int64
	Spawned      int64
	FwdPairs     int64
	BarrierWaits int64
}

func newCoordinator(m *Machine, policy Policy) *coordinator {
	sched, err := newScheduler(policy)
	if err != nil {
		panic(err) // NewMachine validates the policy first
	}
	c := &coordinator{
		m:              m,
		sched:          sched,
		pending:        make([][]Task, m.prog.NumPhases),
		pendingCount:   make([]int, m.prog.NumPhases),
		activeCount:    make([]int, m.prog.NumPhases),
		laneWork:       make([]int64, m.cfg.Lanes),
		consumersByTag: make(map[uint64]int),
		completions:    sim.NewPipe[completeEvt](ctlLatency),
		spawnsPipe:     sim.NewPipe[Task](ctlLatency),
	}
	c.state = SchedState{c: c}
	for _, t := range m.prog.Tasks {
		c.accept(t)
	}
	return c
}

// accept registers a task into its phase queue.
func (c *coordinator) accept(t Task) {
	c.pending[t.Phase] = append(c.pending[t.Phase], t)
	c.pendingCount[t.Phase]++
	if tag := t.ConsumesTag(); tag != 0 {
		c.consumersByTag[tag] = t.Phase
	}
}

// spawn is called by lanes announcing a child task (already delayed by
// pipeline latency; the control-network latency is added here).
func (c *coordinator) spawn(t Task) {
	c.spawnInFlight++
	c.spawnsPipe.Send(c.m.now, t)
}

// complete is called by lanes when a task finishes.
func (c *coordinator) complete(ev completeEvt) {
	c.completions.Send(c.m.now, ev)
}

// AllDone reports whether every task in every phase has completed and
// no control traffic is in flight.
func (c *coordinator) AllDone() bool {
	if c.spawnInFlight > 0 || !c.completions.Empty() {
		return false
	}
	for p := range c.pendingCount {
		if c.pendingCount[p] > 0 || c.activeCount[p] > 0 {
			return false
		}
	}
	return c.m.mcast.drained()
}

// NextEvent reports when the coordinator can next act: at control-pipe
// maturity (completions, spawns), at the multicast manager's next
// deadline, at the scheduler's own next deadline, or immediately when
// the current phase has pending tasks and some lane has queue space.
// Pending tasks with every lane queue full contribute no event:
// dispatch (including forward-group formation, which also needs free
// lanes) cannot progress until a lane drains, and lanes with queued
// tasks always forecast their own activity.
func (c *coordinator) NextEvent(now sim.Cycle) sim.Cycle {
	ev := c.completions.NextAt()
	if ev <= now {
		return now
	}
	if at := c.spawnsPipe.NextAt(); at <= now {
		return now
	} else if at < ev {
		ev = at
	}
	if mc := c.m.mcast.nextEvent(now); mc <= now {
		return now
	} else if mc < ev {
		ev = mc
	}
	if sv := c.sched.NextEvent(now); sv <= now {
		return now
	} else if sv < ev {
		ev = sv
	}
	if c.pendingCount[c.phase] > 0 {
		for i := 0; i < c.m.cfg.Lanes; i++ {
			if c.m.lanes[i].QueueSpace() > 0 {
				return now
			}
		}
	}
	return ev
}

// Skip replays the barrier-wait accounting of skipped cycles — every
// cycle with an empty current-phase queue but active tasks records one
// wait (the first dispatchOne call of that cycle's Tick would have) —
// and forwards the range to the scheduler for its own per-cycle
// accounting.
func (c *coordinator) Skip(from, to sim.Cycle) {
	if c.pendingCount[c.phase] == 0 && c.activeCount[c.phase] > 0 {
		c.BarrierWaits += int64(to - from)
	}
	c.sched.Skip(from, to)
}

// Tick drains control pipes, advances phases, runs the multicast
// manager, and dispatches under the per-cycle budget.
func (c *coordinator) Tick(now sim.Cycle) {
	for {
		ev, ok := c.completions.Recv(now)
		if !ok {
			break
		}
		c.laneWork[ev.lane] -= ev.hint
		c.activeCount[ev.phase]--
		if c.activeCount[ev.phase] < 0 {
			panic("core: completion underflow")
		}
		c.sched.TaskCompleted(&c.state, ev.lane, ev.hint)
	}
	for {
		t, ok := c.spawnsPipe.Recv(now)
		if !ok {
			break
		}
		c.spawnInFlight--
		if err := c.m.prog.validateTask(&t); err != nil {
			panic(fmt.Sprintf("core: invalid spawned task: %v", err))
		}
		c.accept(t)
		c.Spawned++
	}

	// Advance past completed phases. Dynamic mode also requires no
	// in-flight spawns (they may target the next phase about to open;
	// the ≤4-cycle conservatism is negligible).
	for c.phase < len(c.pending)-1 &&
		c.pendingCount[c.phase] == 0 && c.activeCount[c.phase] == 0 &&
		c.spawnInFlight == 0 {
		c.phase++
		c.sched.PhaseStart(&c.state, c.phase)
	}

	c.m.mcast.tick(now, 8, c.m.submitMcast)

	budget := c.m.cfg.Task.DispatchPerCycle
	for budget > 0 {
		if !c.dispatchOne(now) {
			break
		}
		budget--
	}
}

// dispatchOne dispatches the next eligible task through the scheduler,
// reporting success.
func (c *coordinator) dispatchOne(now sim.Cycle) bool {
	if len(c.pending[c.phase]) == 0 {
		if c.activeCount[c.phase] > 0 {
			c.BarrierWaits++
		}
		return false
	}
	return c.sched.Dispatch(&c.state, now)
}

// tryForwardGroup attempts to co-dispatch the forward group seeded by
// the producer at index idx of the current phase queue: the consumer
// of its tag, and any other pending producers that consumer requires.
// choose supplies the policy's lane selection: given the group
// members' effective work hints (producers in order, consumer last)
// it returns that many distinct lanes with queue space, aligned to the
// weights, or nil to refuse. Reports whether the group dispatched.
func (c *coordinator) tryForwardGroup(idx int, choose func(weights []int64) []int) bool {
	t := c.pending[c.phase][idx]
	tag := t.ProducesTag()
	if tag == 0 {
		return false
	}
	ph, ok := c.consumersByTag[tag]
	if !ok {
		return false
	}
	ci := c.findPending(ph, func(x *Task) bool { return x.ConsumesTag() == tag })
	if ci < 0 {
		return false
	}
	consumer := c.pending[ph][ci]
	// Collect every producer the consumer still needs. The seed task t
	// is one of them; others must be pending in the current phase.
	type pick struct {
		phase, idx int
	}
	producers := []Task{t}
	removals := []pick{{c.phase, idx}, {ph, ci}}
	fwdTags := map[uint64]bool{tag: true}
	for _, in := range consumer.Ins {
		if in.Kind != ArgForwardIn || in.Tag == tag {
			continue
		}
		if _, have := c.m.tagData[in.Tag]; have {
			continue // producer already ran; memory fallback serves it
		}
		pj := c.findPending(c.phase, func(x *Task) bool { return x.ProducesTag() == in.Tag })
		if pj < 0 {
			return false // producer not available: cannot form the group
		}
		producers = append(producers, c.pending[c.phase][pj])
		removals = append(removals, pick{c.phase, pj})
		fwdTags[in.Tag] = true
	}
	weights := make([]int64, len(producers)+1)
	for i, p := range producers {
		weights[i] = c.m.effectiveHint(&p)
	}
	weights[len(producers)] = c.m.effectiveHint(&consumer)
	lanes := choose(weights)
	if lanes == nil {
		return false
	}
	// Remove group members from pending, higher indices first so that
	// removals within the same phase queue do not shift one another
	// (removals in different phases are independent).
	for i := 1; i < len(removals); i++ {
		for j := i; j > 0 && removals[j-1].idx < removals[j].idx; j-- {
			removals[j-1], removals[j] = removals[j], removals[j-1]
		}
	}
	for _, rm := range removals {
		c.removePending(rm.phase, rm.idx)
	}
	delete(c.consumersByTag, tag)

	gate := new(bool)
	resolvedProds := make([]*resolved, len(producers))
	for i, p := range producers {
		r, err := c.m.resolve(p, lanes[i], resolveOpts{fwdOutTag: p.ProducesTag(), gate: gate})
		if err != nil {
			panic(err)
		}
		resolvedProds[i] = r
	}
	clane := lanes[len(producers)]
	cr, err := c.m.resolve(consumer, clane, resolveOpts{fwdInTags: fwdTags, gate: gate})
	if err != nil {
		panic(err)
	}
	// Patch each producer's forward destination to the consumer's port.
	for i, p := range producers {
		ptag := p.ProducesTag()
		cport := -1
		for cp, in := range consumer.Ins {
			if in.Kind == ArgForwardIn && in.Tag == ptag {
				cport = cp
			}
		}
		if cport < 0 {
			panic("core: forward group consumer lost its port")
		}
		for op := range resolvedProds[i].outSet {
			if resolvedProds[i].outSet[op].ConsumerLane == -1 {
				resolvedProds[i].outSet[op].ConsumerLane = clane
				resolvedProds[i].outSet[op].ConsumerPort = cport
			}
		}
		c.send(resolvedProds[i], lanes[i])
	}
	c.send(cr, clane)
	// Under sharded execution the group's lanes share the start gate:
	// couple them (serial ticking, lane order) until the consumer
	// flips it (shard.go).
	c.m.addCoupling(gate, lanes)
	c.FwdPairs += int64(len(producers))
	return true
}

// findPending returns the index of the first task in phase ph matching
// pred, or -1.
func (c *coordinator) findPending(ph int, pred func(*Task) bool) int {
	for i := range c.pending[ph] {
		if pred(&c.pending[ph][i]) {
			return i
		}
	}
	return -1
}

func (c *coordinator) removePending(ph, i int) {
	q := c.pending[ph]
	c.pending[ph] = append(q[:i:i], q[i+1:]...)
	c.pendingCount[ph]--
}

// send hands a resolved task to a lane and books the accounting.
func (c *coordinator) send(r *resolved, lane int) {
	if s := c.m.opts.Obs; s != nil {
		// Losing candidates: every other lane that also had queue space
		// when the decision was made (computed before enqueue mutates
		// occupancy). Lanes past bit 62 are left out of the mask.
		var losing int64
		for i := 0; i < c.m.cfg.Lanes && i < 63; i++ {
			if i != lane && c.m.lanes[i].QueueSpace() > 0 {
				losing |= 1 << uint(i)
			}
		}
		s.Emit(obs.Event{Cycle: int64(c.m.now), Kind: obs.KindDispatch,
			Comp: int32(lane), A: r.hint, B: losing,
			Name: c.m.prog.Types[r.typeID].Name})
	}
	c.m.lanes[lane].enqueue(r)
	c.laneWork[lane] += r.hint
	c.activeCount[r.task.Phase]++
	c.Dispatched++
	c.m.opts.Trace.Record(trace.Event{
		Cycle: int64(c.m.now), Kind: trace.Dispatch, Lane: lane,
		TaskKey: r.task.Key, TypeName: c.m.prog.Types[r.typeID].Name,
		Phase: r.task.Phase,
	})
}

// laneBusy returns the per-lane busy-cycle vector for reporting.
func (c *coordinator) laneBusy() []int64 {
	out := make([]int64, len(c.m.lanes))
	for i, l := range c.m.lanes {
		out[i] = l.BusyCycles
	}
	return out
}
