package core

import (
	"fmt"

	"taskstream/internal/obs"
	"taskstream/internal/sim"
	"taskstream/internal/trace"
)

// Policy selects how the machine distributes tasks over lanes.
type Policy uint8

const (
	// PolicyDynamic is the TaskStream coordinator: run-time dispatch,
	// work-aware when the config enables it, round-robin otherwise.
	PolicyDynamic Policy = iota
	// PolicyStatic is the equivalent static-parallel design: tasks are
	// block-partitioned over lanes before each phase begins and strict
	// phase barriers apply.
	PolicyStatic
)

// HintMode controls the fidelity of work hints (experiment E12).
type HintMode uint8

const (
	// HintExact uses the task's annotation (or the default estimate).
	HintExact HintMode = iota
	// HintNone treats every task as unit work (work-oblivious).
	HintNone
	// HintNoisy perturbs hints by a deterministic per-task factor in
	// [1/4, 4], modeling inaccurate programmer estimates.
	HintNoisy
)

// ctlLatency models the coordinator's control-network round trip.
const ctlLatency sim.Cycle = 4

// coordinator is the TaskStream hardware: global task queues, the
// dispatch policy, forwarding pairing, and phase tracking.
type coordinator struct {
	m      *Machine
	policy Policy

	// pending[phase] is the FIFO of undispatched tasks per phase.
	pending [][]Task
	// pendingCount counts undispatched tasks per phase; active counts
	// dispatched-but-incomplete.
	pendingCount []int
	activeCount  []int
	phase        int

	// laneWork is the outstanding work estimate per lane.
	laneWork []int64
	rr       int // round-robin cursor

	// consumersByTag indexes pending tasks that consume a forward tag.
	consumersByTag map[uint64]int // tag → phase (lookup hint)

	// completions and spawns arrive through control pipes.
	completions   *sim.Pipe[completeEvt]
	spawnsPipe    *sim.Pipe[Task]
	spawnInFlight int

	// Static policy state: per-lane assignment built at phase start.
	staticAssigned []int // index into pending list → lane (parallel)

	// Stats.
	Dispatched   int64
	Spawned      int64
	FwdPairs     int64
	BarrierWaits int64
}

func newCoordinator(m *Machine, policy Policy) *coordinator {
	c := &coordinator{
		m:              m,
		policy:         policy,
		pending:        make([][]Task, m.prog.NumPhases),
		pendingCount:   make([]int, m.prog.NumPhases),
		activeCount:    make([]int, m.prog.NumPhases),
		laneWork:       make([]int64, m.cfg.Lanes),
		consumersByTag: make(map[uint64]int),
		completions:    sim.NewPipe[completeEvt](ctlLatency),
		spawnsPipe:     sim.NewPipe[Task](ctlLatency),
	}
	for _, t := range m.prog.Tasks {
		c.accept(t)
	}
	return c
}

// accept registers a task into its phase queue.
func (c *coordinator) accept(t Task) {
	c.pending[t.Phase] = append(c.pending[t.Phase], t)
	c.pendingCount[t.Phase]++
	if tag := t.ConsumesTag(); tag != 0 {
		c.consumersByTag[tag] = t.Phase
	}
}

// spawn is called by lanes announcing a child task (already delayed by
// pipeline latency; the control-network latency is added here).
func (c *coordinator) spawn(t Task) {
	c.spawnInFlight++
	c.spawnsPipe.Send(c.m.now, t)
}

// complete is called by lanes when a task finishes.
func (c *coordinator) complete(ev completeEvt) {
	c.completions.Send(c.m.now, ev)
}

// AllDone reports whether every task in every phase has completed and
// no control traffic is in flight.
func (c *coordinator) AllDone() bool {
	if c.spawnInFlight > 0 || !c.completions.Empty() {
		return false
	}
	for p := range c.pendingCount {
		if c.pendingCount[p] > 0 || c.activeCount[p] > 0 {
			return false
		}
	}
	return c.m.mcast.drained()
}

// NextEvent reports when the coordinator can next act: at control-pipe
// maturity (completions, spawns), at the multicast manager's next
// deadline, or immediately when the current phase has pending tasks and
// some lane has queue space. Pending tasks with every lane queue full
// contribute no event: dispatch (including forward-group formation,
// which also needs free lanes) cannot progress until a lane drains, and
// lanes with queued tasks always forecast their own activity.
func (c *coordinator) NextEvent(now sim.Cycle) sim.Cycle {
	ev := c.completions.NextAt()
	if ev <= now {
		return now
	}
	if at := c.spawnsPipe.NextAt(); at <= now {
		return now
	} else if at < ev {
		ev = at
	}
	if mc := c.m.mcast.nextEvent(now); mc <= now {
		return now
	} else if mc < ev {
		ev = mc
	}
	if c.pendingCount[c.phase] > 0 {
		for i := 0; i < c.m.cfg.Lanes; i++ {
			if c.m.lanes[i].QueueSpace() > 0 {
				return now
			}
		}
	}
	return ev
}

// Skip replays the barrier-wait accounting of skipped cycles: every
// cycle with an empty current-phase queue but active tasks records one
// wait (the first dispatchOne call of that cycle's Tick would have).
func (c *coordinator) Skip(from, to sim.Cycle) {
	if c.pendingCount[c.phase] == 0 && c.activeCount[c.phase] > 0 {
		c.BarrierWaits += int64(to - from)
	}
}

// Tick drains control pipes, advances phases, runs the multicast
// manager, and dispatches under the per-cycle budget.
func (c *coordinator) Tick(now sim.Cycle) {
	for {
		ev, ok := c.completions.Recv(now)
		if !ok {
			break
		}
		c.laneWork[ev.lane] -= ev.hint
		c.activeCount[ev.phase]--
		if c.activeCount[ev.phase] < 0 {
			panic("core: completion underflow")
		}
	}
	for {
		t, ok := c.spawnsPipe.Recv(now)
		if !ok {
			break
		}
		c.spawnInFlight--
		if err := c.m.prog.validateTask(&t); err != nil {
			panic(fmt.Sprintf("core: invalid spawned task: %v", err))
		}
		c.accept(t)
		c.Spawned++
	}

	// Advance past completed phases. Dynamic mode also requires no
	// in-flight spawns (they may target the next phase about to open;
	// the ≤4-cycle conservatism is negligible).
	for c.phase < len(c.pending)-1 &&
		c.pendingCount[c.phase] == 0 && c.activeCount[c.phase] == 0 &&
		c.spawnInFlight == 0 {
		c.phase++
		c.staticAssigned = nil
	}

	c.m.mcast.tick(now, 8, c.m.submitMcast)

	budget := c.m.cfg.Task.DispatchPerCycle
	for budget > 0 {
		if !c.dispatchOne(now) {
			break
		}
		budget--
	}
}

// dispatchOne dispatches the next eligible task, reporting success.
func (c *coordinator) dispatchOne(now sim.Cycle) bool {
	q := c.pending[c.phase]
	if len(q) == 0 {
		if c.activeCount[c.phase] > 0 {
			c.BarrierWaits++
		}
		return false
	}
	switch c.policy {
	case PolicyStatic:
		return c.dispatchStatic(now)
	default:
		return c.dispatchDynamic(now)
	}
}

// dispatchDynamic implements the TaskStream policies. When the head
// task produces a tagged stream and forwarding is enabled, the
// coordinator tries to co-dispatch the whole forward group — every
// still-pending producer the consumer needs, plus the consumer — onto
// distinct lanes, recovering the pipelined inter-task dependence. If
// the group cannot be formed (consumer missing, producers missing,
// too few free lanes) the task runs alone with memory-mediated output.
func (c *coordinator) dispatchDynamic(now sim.Cycle) bool {
	t := c.pending[c.phase][0]
	if tag := t.ProducesTag(); tag != 0 && c.m.cfg.Task.EnableForwarding {
		if c.tryForwardGroup(t, tag) {
			return true
		}
	}
	lane := c.pickLane()
	if lane < 0 {
		return false
	}
	c.popCurrent(0)
	r, err := c.m.resolve(t, lane, resolveOpts{})
	if err != nil {
		panic(err)
	}
	c.send(r, lane)
	return true
}

// tryForwardGroup attempts to co-dispatch the head producer t, the
// consumer of its tag, and any other pending producers that consumer
// requires. Reports whether the group dispatched.
func (c *coordinator) tryForwardGroup(t Task, tag uint64) bool {
	ph, ok := c.consumersByTag[tag]
	if !ok {
		return false
	}
	ci := c.findPending(ph, func(x *Task) bool { return x.ConsumesTag() == tag })
	if ci < 0 {
		return false
	}
	consumer := c.pending[ph][ci]
	// Collect every producer the consumer still needs. The head task t
	// is one of them; others must be pending in the current phase.
	type pick struct {
		phase, idx int
	}
	producers := []Task{t}
	removals := []pick{{c.phase, 0}, {ph, ci}}
	fwdTags := map[uint64]bool{tag: true}
	for _, in := range consumer.Ins {
		if in.Kind != ArgForwardIn || in.Tag == tag {
			continue
		}
		if _, have := c.m.tagData[in.Tag]; have {
			continue // producer already ran; memory fallback serves it
		}
		pj := c.findPending(c.phase, func(x *Task) bool { return x.ProducesTag() == in.Tag })
		if pj < 0 {
			return false // producer not available: cannot form the group
		}
		producers = append(producers, c.pending[c.phase][pj])
		removals = append(removals, pick{c.phase, pj})
		fwdTags[in.Tag] = true
	}
	lanes := c.chooseDistinctLanes(len(producers) + 1)
	if lanes == nil {
		return false
	}
	// Remove group members from pending, higher indices first so that
	// removals within the same phase queue do not shift one another
	// (removals in different phases are independent).
	for i := 1; i < len(removals); i++ {
		for j := i; j > 0 && removals[j-1].idx < removals[j].idx; j-- {
			removals[j-1], removals[j] = removals[j], removals[j-1]
		}
	}
	for _, rm := range removals {
		c.removePending(rm.phase, rm.idx)
	}
	delete(c.consumersByTag, tag)

	gate := new(bool)
	resolvedProds := make([]*resolved, len(producers))
	for i, p := range producers {
		r, err := c.m.resolve(p, lanes[i], resolveOpts{fwdOutTag: p.ProducesTag(), gate: gate})
		if err != nil {
			panic(err)
		}
		resolvedProds[i] = r
	}
	clane := lanes[len(producers)]
	cr, err := c.m.resolve(consumer, clane, resolveOpts{fwdInTags: fwdTags, gate: gate})
	if err != nil {
		panic(err)
	}
	// Patch each producer's forward destination to the consumer's port.
	for i, p := range producers {
		ptag := p.ProducesTag()
		cport := -1
		for cp, in := range consumer.Ins {
			if in.Kind == ArgForwardIn && in.Tag == ptag {
				cport = cp
			}
		}
		if cport < 0 {
			panic("core: forward group consumer lost its port")
		}
		for op := range resolvedProds[i].outSet {
			if resolvedProds[i].outSet[op].ConsumerLane == -1 {
				resolvedProds[i].outSet[op].ConsumerLane = clane
				resolvedProds[i].outSet[op].ConsumerPort = cport
			}
		}
		c.send(resolvedProds[i], lanes[i])
	}
	c.send(cr, clane)
	// Under sharded execution the group's lanes share the start gate:
	// couple them (serial ticking, lane order) until the consumer
	// flips it (shard.go).
	c.m.addCoupling(gate, lanes)
	c.FwdPairs += int64(len(producers))
	return true
}

// findPending returns the index of the first task in phase ph matching
// pred, or -1.
func (c *coordinator) findPending(ph int, pred func(*Task) bool) int {
	for i := range c.pending[ph] {
		if pred(&c.pending[ph][i]) {
			return i
		}
	}
	return -1
}

// chooseDistinctLanes picks k distinct lanes with queue space (by the
// active dispatch policy's preference), or nil if impossible.
func (c *coordinator) chooseDistinctLanes(k int) []int {
	chosen := make([]int, 0, k)
	used := make(map[int]bool, k)
	for len(chosen) < k {
		best := -1
		var bestWork int64
		for i := 0; i < c.m.cfg.Lanes; i++ {
			if used[i] || c.m.lanes[i].QueueSpace() == 0 {
				continue
			}
			if best < 0 || c.laneWork[i] < bestWork {
				best, bestWork = i, c.laneWork[i]
			}
		}
		if best < 0 {
			return nil
		}
		used[best] = true
		chosen = append(chosen, best)
	}
	return chosen
}

// popCurrent removes index i from the current phase queue.
func (c *coordinator) popCurrent(i int) { c.removePending(c.phase, i) }

func (c *coordinator) removePending(ph, i int) {
	q := c.pending[ph]
	c.pending[ph] = append(q[:i:i], q[i+1:]...)
	c.pendingCount[ph]--
}

// send hands a resolved task to a lane and books the accounting.
func (c *coordinator) send(r *resolved, lane int) {
	if s := c.m.opts.Obs; s != nil {
		// Losing candidates: every other lane that also had queue space
		// when the decision was made (computed before enqueue mutates
		// occupancy). Lanes past bit 62 are left out of the mask.
		var losing int64
		for i := 0; i < c.m.cfg.Lanes && i < 63; i++ {
			if i != lane && c.m.lanes[i].QueueSpace() > 0 {
				losing |= 1 << uint(i)
			}
		}
		s.Emit(obs.Event{Cycle: int64(c.m.now), Kind: obs.KindDispatch,
			Comp: int32(lane), A: r.hint, B: losing,
			Name: c.m.prog.Types[r.typeID].Name})
	}
	c.m.lanes[lane].enqueue(r)
	c.laneWork[lane] += r.hint
	c.activeCount[r.task.Phase]++
	c.Dispatched++
	c.m.opts.Trace.Record(trace.Event{
		Cycle: int64(c.m.now), Kind: trace.Dispatch, Lane: lane,
		TaskKey: r.task.Key, TypeName: c.m.prog.Types[r.typeID].Name,
		Phase: r.task.Phase,
	})
}

// pickLane chooses a dispatch target with queue space, or -1.
func (c *coordinator) pickLane() int { return c.pickLaneExcluding(-1) }

// pickLaneExcluding chooses a lane other than skip (unless none
// qualifies). Work-aware: least outstanding work; otherwise
// round-robin.
func (c *coordinator) pickLaneExcluding(skip int) int {
	n := c.m.cfg.Lanes
	if c.m.cfg.Task.EnableWorkAwareLB {
		best, bestWork := -1, int64(0)
		for i := 0; i < n; i++ {
			if i == skip || c.m.lanes[i].QueueSpace() == 0 {
				continue
			}
			if best < 0 || c.laneWork[i] < bestWork {
				best, bestWork = i, c.laneWork[i]
			}
		}
		return best
	}
	for k := 0; k < n; k++ {
		i := (c.rr + k) % n
		if i == skip || c.m.lanes[i].QueueSpace() == 0 {
			continue
		}
		c.rr = (i + 1) % n
		return i
	}
	return -1
}

// dispatchStatic implements the static-parallel comparator: at phase
// start, the phase's task list is block-partitioned over lanes in
// arrival order; each task may only run on its assigned lane.
func (c *coordinator) dispatchStatic(now sim.Cycle) bool {
	q := c.pending[c.phase]
	if c.staticAssigned == nil {
		// Build the partition once per phase: contiguous blocks, the
		// compile-time division the paper's baseline uses.
		n := len(q)
		c.staticAssigned = make([]int, n)
		lanes := c.m.cfg.Lanes
		for i := 0; i < n; i++ {
			c.staticAssigned[i] = i * lanes / n
		}
	}
	// Dispatch the first task whose assigned lane has queue space.
	for i := 0; i < len(q); i++ {
		lane := c.staticAssigned[i]
		if c.m.lanes[lane].QueueSpace() == 0 {
			continue
		}
		t := q[i]
		c.removePending(c.phase, i)
		c.staticAssigned = append(c.staticAssigned[:i:i], c.staticAssigned[i+1:]...)
		r, err := c.m.resolve(t, lane, resolveOpts{})
		if err != nil {
			panic(err)
		}
		c.send(r, lane)
		return true
	}
	return false
}

// Imbalance returns the per-lane busy-cycle vector for reporting.
func (c *coordinator) laneBusy() []int64 {
	out := make([]int64, len(c.m.lanes))
	for i, l := range c.m.lanes {
		out[i] = l.BusyCycles
	}
	return out
}
