package core

import "fmt"

// This file gives runs an identity and results a copy-out path, the
// two properties the memoizing run-plan layer (internal/runplan)
// needs from core: equal-keyed runs are interchangeable, and cached
// reports can be handed to many callers without aliasing.

// Cacheable reports whether a run under these options is a pure
// function of (config, program, options). A live trace recorder or
// observability sink is an observable side channel — two runs that
// share one are not interchangeable — so traced runs must never be
// memoized.
func (o Options) Cacheable() bool { return o.Trace == nil && o.Obs == nil }

// Normalized returns options reduced to the fields that determine the
// run's observable result: the trace recorder and observability sink
// are dropped (neither alters simulation behavior), Shards is dropped
// (sharded execution is byte-identical to serial by contract,
// DESIGN.md §16, so a cached serial result answers a sharded request
// and vice versa), and non-positive MaxCycles collapses to zero, since
// every value <= 0 means "engine default".
func (o Options) Normalized() Options {
	o.Trace = nil
	o.Obs = nil
	o.Shards = 0
	if o.MaxCycles <= 0 {
		o.MaxCycles = 0
	}
	return o
}

// CacheKey returns a stable canonical encoding of the normalized
// options, field by field in a fixed order — the options half of a run
// spec's content address. DisableFastForward participates even though
// fast-forward is byte-identical by contract (DESIGN.md §11): keying
// on it keeps the cache trivially sound if that contract ever breaks,
// at the cost of never deduping across the two modes (no experiment
// mixes them).
func (o Options) CacheKey() string {
	n := o.Normalized()
	return fmt.Sprintf("Policy=%d;Hints=%d;MaxCycles=%d;Vet=%t;DisableFastForward=%t;",
		n.Policy, n.Hints, n.MaxCycles, n.Vet, n.DisableFastForward)
}

// Clone returns a deep copy of the report: mutating the copy's
// LaneBusy slice or Stats set never touches the original. Memoized
// runs hand out clones so no caller can corrupt the cached result.
func (r Report) Clone() Report {
	return Report{
		Cycles:   r.Cycles,
		LaneBusy: append([]int64(nil), r.LaneBusy...),
		Stats:    r.Stats.Clone(),
	}
}
