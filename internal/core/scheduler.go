package core

import (
	"fmt"
	"os"
	"strings"

	"taskstream/internal/config"
	"taskstream/internal/sim"
)

// Policy selects how the machine distributes tasks over lanes. Each
// value names one Scheduler implementation (DESIGN.md §17); the policy
// participates in Options.CacheKey, so runs under distinct policies
// never share a memoized result.
type Policy uint8

const (
	// PolicyDynamic is the TaskStream coordinator: run-time dispatch,
	// work-aware when the config enables it, round-robin otherwise.
	PolicyDynamic Policy = iota
	// PolicyStatic is the equivalent static-parallel design: tasks are
	// block-partitioned over lanes before each phase begins and strict
	// phase barriers apply.
	PolicyStatic
	// PolicyStreamGraph is the De Matteis-style streaming task-graph
	// scheduler: lanes are spatially partitioned among task types in
	// proportion to their pending work, with temporal re-balancing when
	// observed lane load skews past the configured threshold.
	PolicyStreamGraph
	// PolicyPipeline is the Pipeflow-style pipeline scheduler:
	// stage-affine dispatch that prices fabric reconfiguration into the
	// lane choice and keeps repeated producer→consumer forward groups
	// on stable lanes, scanning past the queue head to form groups the
	// head-only dynamic policy misses.
	PolicyPipeline
	// NumPolicies counts the registered policies.
	NumPolicies
)

// policyNames holds the canonical CLI/wire spelling of each policy.
var policyNames = [NumPolicies]string{"dynamic", "static", "streamgraph", "pipeline"}

// String returns the policy's canonical name.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// PolicyNames returns the canonical names in enum order, for usage
// strings and sweeps.
func PolicyNames() []string {
	return append([]string(nil), policyNames[:]...)
}

// ParsePolicy resolves a canonical policy name. Unknown names error
// with the full valid set so CLIs can surface it verbatim.
func ParsePolicy(name string) (Policy, error) {
	for i, n := range policyNames {
		if n == name {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown policy %q (valid: %s)",
		name, strings.Join(policyNames[:], ", "))
}

// AmbientPolicy resolves the process-wide default dispatch policy for
// the dynamic-dispatch baseline variants: TASKSTREAM_POLICY names one
// of the registered policies (delta-bench -policy sets it, mirroring
// -shards/TASKSTREAM_SHARDS); unset or unparseable values mean
// PolicyDynamic, matching the env-junk tolerance of resolveShards.
// Unlike Shards, the resolved policy lands in Options.Policy and so in
// every spec's cache key — distinct policies never share cache entries.
func AmbientPolicy() Policy {
	if v := os.Getenv("TASKSTREAM_POLICY"); v != "" {
		if p, err := ParsePolicy(v); err == nil {
			return p
		}
	}
	return PolicyDynamic
}

// Scheduler is the pluggable dispatch policy behind the coordinator
// (DESIGN.md §17). The coordinator owns everything every policy
// shares — phase queues and barriers, control pipes, the outstanding-
// work load model, forward-group formation, obs/trace emission — and
// delegates only the decisions: which pending task goes to which lane,
// and when to form a forward group.
//
// Contract:
//   - Dispatch is called only when the current phase has pending
//     tasks; it either dispatches exactly one task (or one whole
//     forward group) through SchedState and returns true, or returns
//     false meaning no dispatch is possible this cycle.
//   - All methods run in the coordinator's serial context (the serial
//     prefix under sharded execution, DESIGN.md §16), so policies need
//     no locking.
//   - §11 fast-forwarding: policy decisions must be event-driven.
//     State may change on Dispatch, PhaseStart, and TaskCompleted —
//     all of which fire identically with fast-forwarding on or off —
//     never as a function of how often Tick happens to run. A policy
//     with a genuine time-based deadline must expose it via NextEvent
//     and replay skipped-cycle accounting in Skip.
type Scheduler interface {
	// Name returns the policy's canonical name (Policy.String).
	Name() string
	// Dispatch attempts to dispatch one task (or forward group) from
	// the current phase queue, reporting success. The coordinator calls
	// it up to DispatchPerCycle times per cycle, stopping at the first
	// false.
	Dispatch(s *SchedState, now sim.Cycle) bool
	// PhaseStart announces that the coordinator advanced to phase p;
	// per-phase policy state (partitions, assignments) resets here.
	PhaseStart(s *SchedState, p int)
	// TaskCompleted announces one task completion on lane, after the
	// load model dropped its hint — the event-driven trigger for
	// temporal re-balancing.
	TaskCompleted(s *SchedState, lane int, hint int64)
	// NextEvent contributes the policy's next self-scheduled deadline
	// to the coordinator's forecast (sim.Never if none). The
	// coordinator already wakes for control-pipe maturities and
	// dispatch opportunities; only genuinely time-based policy logic
	// needs this.
	NextEvent(now sim.Cycle) sim.Cycle
	// Skip replays any per-cycle policy accounting for the skipped
	// range [from, to) (§11). Policies without per-cycle state no-op.
	Skip(from, to sim.Cycle)
}

// newScheduler constructs the policy's scheduler. NewMachine validates
// the policy value first, so an unknown one here is an internal error.
func newScheduler(p Policy) (Scheduler, error) {
	switch p {
	case PolicyDynamic:
		return &dynamicSched{}, nil
	case PolicyStatic:
		return &staticSched{}, nil
	case PolicyStreamGraph:
		return &streamGraphSched{}, nil
	case PolicyPipeline:
		return newPipelineSched(), nil
	default:
		return nil, fmt.Errorf("core: unknown policy %d (valid: %s)",
			uint8(p), strings.Join(policyNames[:], ", "))
	}
}

// SchedState is the machine view a Scheduler decides over: the current
// phase's task queue, the per-lane load model (queue occupancy plus
// outstanding-work estimates), the mechanism toggles, and the two
// actions — dispatching one task and forming a forward group. It is a
// facade over the coordinator; policies hold no machine references of
// their own, which is what keeps them portable to per-chip
// coordinators later.
type SchedState struct {
	c *coordinator
}

// NumLanes returns the lane count.
func (s *SchedState) NumLanes() int { return s.c.m.cfg.Lanes }

// NumTypes returns the number of task types in the program.
func (s *SchedState) NumTypes() int { return len(s.c.m.prog.Types) }

// Phase returns the current phase index.
func (s *SchedState) Phase() int { return s.c.phase }

// Pending returns the current phase's undispatched task FIFO. The
// slice is the coordinator's live queue: read-only for policies, and
// invalidated by Dispatch/TryForwardGroup.
func (s *SchedState) Pending() []Task { return s.c.pending[s.c.phase] }

// QueueFree returns the lane's remaining hardware task-queue slots.
func (s *SchedState) QueueFree(lane int) int { return s.c.m.lanes[lane].QueueSpace() }

// LaneWork returns the lane's outstanding work estimate: the sum of
// effective hints of dispatched-but-incomplete tasks.
func (s *SchedState) LaneWork(lane int) int64 { return s.c.laneWork[lane] }

// LaneConfigured returns the task type the lane's fabric currently
// holds, or -1 before the first task — dispatching a matching type
// skips the ConfigCycles reconfiguration stall.
func (s *SchedState) LaneConfigured(lane int) int { return s.c.m.lanes[lane].curType }

// WorkAware reports whether the config enables work-aware load
// balancing (false means round-robin preference).
func (s *SchedState) WorkAware() bool { return s.c.m.cfg.Task.EnableWorkAwareLB }

// ForwardingEnabled reports whether forward-group formation is on.
func (s *SchedState) ForwardingEnabled() bool { return s.c.m.cfg.Task.EnableForwarding }

// Sched returns the policy-tuning config block.
func (s *SchedState) Sched() config.Sched { return s.c.m.cfg.Sched }

// ConfigPenalty returns a fabric reconfiguration stall expressed in
// work-hint units: ConfigCycles at the fabric's full per-port pump
// rate. Affinity-aware policies price a type switch into the lane
// choice with it.
func (s *SchedState) ConfigPenalty() int64 {
	f := s.c.m.cfg.Fabric
	return int64(f.ConfigCycles) * int64(f.PortWidth)
}

// Hint returns the task's effective work hint under the run's
// configured hint fidelity (E12) — the same estimate the load model
// books on dispatch.
func (s *SchedState) Hint(t *Task) int64 { return s.c.m.effectiveHint(t) }

// LaneDistance returns the NoC Manhattan hop distance between two
// lanes' mesh nodes. Forwarded streams pay per-hop latency and flit
// occupancy, so placement policies use this to keep producer→consumer
// pairs close.
func (s *SchedState) LaneDistance(a, b int) int {
	return s.c.m.mesh.Dist(s.c.m.lanes[a].node, s.c.m.lanes[b].node)
}

// Dispatch pops the idx-th task of the current phase queue and sends
// it to lane, booking the load model, obs dispatch event, and trace
// record. The lane must have queue space.
func (s *SchedState) Dispatch(idx, lane int) {
	c := s.c
	t := c.pending[c.phase][idx]
	c.removePending(c.phase, idx)
	r, err := c.m.resolve(t, lane, resolveOpts{})
	if err != nil {
		panic(err)
	}
	c.send(r, lane)
}

// TryForwardGroup attempts to co-dispatch the forward group seeded by
// the idx-th pending task (which must produce a forward tag): the
// consumer of its tag plus every other still-pending producer that
// consumer needs. The group-formation mechanics — membership, queue
// removal, gate coupling, destination patching — live in the
// coordinator; the policy supplies only choose, which is handed the
// group members' effective work hints (producers in order, consumer
// last) and returns one distinct lane with queue space per member,
// aligned to the weights (or nil to refuse). Reports whether the group
// dispatched.
func (s *SchedState) TryForwardGroup(idx int, choose func(weights []int64) []int) bool {
	return s.c.tryForwardGroup(idx, choose)
}
