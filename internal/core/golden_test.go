package core

import (
	"testing"

	"taskstream/internal/mem"
)

// Golden timing regression: exact cycle counts for a small fixed
// program on a fixed machine. These pin the simulator's timing model —
// if a change legitimately alters timing (a new mechanism, a fixed
// inaccuracy), update the constants and say why in the commit.
func TestGoldenCycles(t *testing.T) {
	build := func() (*Program, *mem.Storage) {
		st := mem.NewStorage()
		al := mem.NewAllocator()
		var tasks []Task
		for i := 0; i < 6; i++ {
			n := 64 * (i + 1)
			src := al.AllocElems(n)
			dst := al.AllocElems(n)
			v := make([]uint64, n)
			for j := range v {
				v[j] = uint64(j)
			}
			st.WriteElems(src, v)
			tasks = append(tasks, Task{
				Type: 0, Key: uint64(i), Scalars: []uint64{2},
				Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: n}},
				Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: n}},
			})
		}
		return &Program{Name: "golden", Types: []*TaskType{addKType()},
			NumPhases: 1, Tasks: tasks}, st
	}
	progD, stD := build()
	delta := buildAndRun(t, testConfig(2), progD, stD, Options{})
	progS, stS := build()
	static := buildAndRun(t, testConfig(2).StaticModel(), progS, stS, Options{Policy: PolicyStatic})

	// Measured goldens (Default8 datapath, 2 lanes).
	const wantDelta, wantStatic = 630, 643
	if delta.Cycles != wantDelta {
		t.Errorf("delta golden drifted: %d cycles, want %d", delta.Cycles, wantDelta)
	}
	if static.Cycles != wantStatic {
		t.Errorf("static golden drifted: %d cycles, want %d", static.Cycles, wantStatic)
	}
	// Traffic goldens: 6 tasks moving 64+128+...+384 = 1344 elements
	// each way = 168 read + 168 written lines.
	if got := delta.Stats.Get("dram_lines_read"); got != 168 {
		t.Errorf("lines read = %d, want 168", got)
	}
	if got := delta.Stats.Get("dram_lines_written"); got != 168 {
		t.Errorf("lines written = %d, want 168", got)
	}
}
