// Package core implements the TaskStream execution model — the paper's
// contribution — and the Delta machine that runs it: multi-lane
// reconfigurable dataflow hardware in which tasks and their
// communication structure are first-class primitives.
//
// A program is a set of task types (dataflow graphs mapped onto the
// lane fabric) plus task instances annotated with the information the
// hardware needs to recover inter-task structure: work hints for
// load balancing, produce/consume stream tags for pipelined
// dependences, and shared-read marks for multicast.
package core

import (
	"fmt"

	"taskstream/internal/fabric"
	"taskstream/internal/mem"
)

// ArgKind identifies an input stream argument's source pattern.
type ArgKind uint8

// Input argument kinds.
const (
	// ArgNone marks an unused port slot.
	ArgNone ArgKind = iota
	// ArgDRAMLinear streams N consecutive elements from Base.
	ArgDRAMLinear
	// ArgDRAMAffine streams Rows×RowLen elements with a row pitch.
	ArgDRAMAffine
	// ArgDRAMGather streams Base[idx] for each index in the N-element
	// index array at IdxBase.
	ArgDRAMGather
	// ArgSpadLinear streams N consecutive elements from lane scratchpad.
	ArgSpadLinear
	// ArgSpadGather gathers from lane scratchpad through IdxBase.
	ArgSpadGather
	// ArgConst delivers the scalar Value (a dwelling operand).
	ArgConst
	// ArgForwardIn consumes the stream tagged Tag from a producer task.
	// Base gives the memory fallback region the producer writes when
	// forwarding is disabled.
	ArgForwardIn
)

// InArg is one input stream argument of a task instance.
type InArg struct {
	Kind ArgKind
	// Base is the data base address (value array for gathers).
	Base mem.Addr
	// N is the element count.
	N int
	// Rows, RowLen, Pitch describe ArgDRAMAffine shapes (N = Rows*RowLen).
	Rows, RowLen, Pitch int
	// IdxBase is the gather-index array base.
	IdxBase mem.Addr
	// Value is the ArgConst scalar.
	Value uint64
	// Tag names the producer stream for ArgForwardIn.
	Tag uint64
	// Shared marks this read as shared across tasks: a multicast
	// candidate (ArgDRAMLinear/ArgDRAMAffine only).
	Shared bool
}

// OutKind identifies an output stream argument's destination.
type OutKind uint8

// Output argument kinds.
const (
	// OutNone marks an unused port slot.
	OutNone OutKind = iota
	// OutDRAMLinear writes N consecutive elements to Base.
	OutDRAMLinear
	// OutSpadLinear writes N consecutive elements to lane scratchpad.
	OutSpadLinear
	// OutForward forwards the stream to the consumer task holding the
	// matching ArgForwardIn Tag; Base is the memory fallback used when
	// forwarding is disabled.
	OutForward
	// OutDiscard drops elements (reductions whose result the kernel
	// writes through Storage directly).
	OutDiscard
)

// OutArg is one output stream argument of a task instance.
type OutArg struct {
	Kind OutKind
	Base mem.Addr
	// N is the expected element count; -1 lets the kernel determine it.
	N   int
	Tag uint64
}

// Task is one task instance: the unit of hardware scheduling.
type Task struct {
	// Type indexes Program.Types.
	Type int
	// Phase orders bulk-synchronous execution: the static model
	// barriers between phases; TaskStream relaxes the barrier for
	// tagged producer/consumer pairs.
	Phase int
	// Key is a program-chosen identity used for debugging, hint-noise
	// seeding, and deterministic tie-breaks.
	Key uint64
	// Scalars are small immediate operands passed to the kernel.
	Scalars []uint64
	// Ins and Outs are the stream arguments, indexed by fabric port.
	Ins  []InArg
	Outs []OutArg
	// WorkHint is the TaskStream work annotation. Zero means "use the
	// default estimate" (the sum of input lengths).
	WorkHint int64
}

// ProducesTag returns the forward tag this task produces, or 0.
func (t *Task) ProducesTag() uint64 {
	for _, o := range t.Outs {
		if o.Kind == OutForward {
			return o.Tag
		}
	}
	return 0
}

// ConsumesTag returns the forward tag this task consumes, or 0.
func (t *Task) ConsumesTag() uint64 {
	for _, in := range t.Ins {
		if in.Kind == ArgForwardIn {
			return in.Tag
		}
	}
	return 0
}

// DefaultWorkHint estimates task work as the total input elements.
func (t *Task) DefaultWorkHint() int64 {
	if t.WorkHint > 0 {
		return t.WorkHint
	}
	var sum int64
	for _, in := range t.Ins {
		if in.Kind != ArgNone && in.Kind != ArgConst {
			sum += int64(in.N)
		}
	}
	if sum <= 0 {
		sum = 1
	}
	return sum
}

// Result is what a kernel evaluation returns.
type Result struct {
	// Out holds the produced element values per output port. Entries
	// for OutNone ports may be nil.
	Out [][]uint64
	// Spawns are the child tasks created by this execution, stamped
	// with the firing index at which the hardware would emit them.
	Spawns []Spawn
}

// Spawn is a dynamically created task (hierarchical dataflow).
type Spawn struct {
	// AtFiring is the pipeline firing after which the spawn is
	// announced to the coordinator.
	AtFiring int
	Task     Task
}

// KernelFunc is the functional semantics of a task type. in[p] holds
// the resolved element values of input port p (nil for ArgConst and
// ArgNone ports — kernels read those from the task's args). Kernels may
// read and write st for scratch structures the fabric would hold in
// scratchpad (visited bitmaps, hash buckets); see DESIGN.md §3 for the
// eager-evaluation discipline that keeps this correct.
type KernelFunc func(t *Task, in [][]uint64, st *mem.Storage) Result

// TaskType couples a dataflow graph with its functional semantics.
type TaskType struct {
	Name string
	// DFG is the graph placed onto the lane fabric; its mapping yields
	// the II and latency used by the timing model.
	DFG *fabric.DFG
	// Kernel is the functional semantics.
	Kernel KernelFunc
}

// Program is a complete task-parallel workload instance.
type Program struct {
	Name  string
	Types []*TaskType
	// Tasks are the initial task instances; more may be spawned.
	Tasks []Task
	// NumPhases is 1 + the highest phase index that can occur
	// (including spawned tasks).
	NumPhases int
}

// Validate reports the first structural problem with the program.
func (p *Program) Validate() error {
	if len(p.Types) == 0 {
		return fmt.Errorf("core: program %q has no task types", p.Name)
	}
	if p.NumPhases <= 0 {
		return fmt.Errorf("core: program %q has no phases", p.Name)
	}
	for i, tt := range p.Types {
		if tt.Kernel == nil {
			return fmt.Errorf("core: program %q type %d (%s) has no kernel", p.Name, i, tt.Name)
		}
		if tt.DFG == nil {
			return fmt.Errorf("core: program %q type %d (%s) has no DFG", p.Name, i, tt.Name)
		}
		if err := tt.DFG.Validate(); err != nil {
			return err
		}
	}
	for i := range p.Tasks {
		if err := p.validateTask(&p.Tasks[i]); err != nil {
			return fmt.Errorf("core: program %q task %d: %w", p.Name, i, err)
		}
	}
	return nil
}

func (p *Program) validateTask(t *Task) error {
	if t.Type < 0 || t.Type >= len(p.Types) {
		return fmt.Errorf("type %d out of range", t.Type)
	}
	if t.Phase < 0 || t.Phase >= p.NumPhases {
		return fmt.Errorf("phase %d out of range (%d phases)", t.Phase, p.NumPhases)
	}
	for pi, in := range t.Ins {
		switch in.Kind {
		case ArgNone, ArgConst, ArgForwardIn:
		case ArgDRAMLinear, ArgSpadLinear:
			if in.N < 0 {
				return fmt.Errorf("port %d: negative N", pi)
			}
		case ArgDRAMAffine:
			if in.Rows*in.RowLen != in.N {
				return fmt.Errorf("port %d: affine shape %dx%d != N %d", pi, in.Rows, in.RowLen, in.N)
			}
		case ArgDRAMGather, ArgSpadGather:
			if in.IdxBase == 0 {
				return fmt.Errorf("port %d: gather without index base", pi)
			}
		default:
			return fmt.Errorf("port %d: unknown ArgKind %d", pi, in.Kind)
		}
		if in.Shared && in.Kind != ArgDRAMLinear && in.Kind != ArgDRAMAffine {
			return fmt.Errorf("port %d: Shared requires a linear/affine DRAM read", pi)
		}
	}
	for pi, o := range t.Outs {
		switch o.Kind {
		case OutNone, OutDiscard:
		case OutDRAMLinear, OutSpadLinear:
			if o.Base == 0 {
				return fmt.Errorf("out port %d: missing base", pi)
			}
		case OutForward:
			if o.Tag == 0 {
				return fmt.Errorf("out port %d: forward without tag", pi)
			}
			if o.Base == 0 {
				return fmt.Errorf("out port %d: forward without memory fallback base", pi)
			}
		default:
			return fmt.Errorf("out port %d: unknown OutKind %d", pi, o.Kind)
		}
	}
	return nil
}
