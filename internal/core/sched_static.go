package core

import "taskstream/internal/sim"

// staticSched is the static-parallel comparator (PolicyStatic): at
// phase start, the phase's task list is block-partitioned over lanes
// in arrival order; each task may only run on its assigned lane. It
// never forms forward groups — dependences stay memory-mediated, as
// in the paper's baseline.
type staticSched struct {
	// assigned is the per-task lane assignment, parallel to the current
	// phase's pending queue; nil until the first dispatch attempt of
	// the phase builds it.
	assigned []int
}

func (st *staticSched) Name() string { return PolicyStatic.String() }

func (st *staticSched) Dispatch(s *SchedState, now sim.Cycle) bool {
	q := s.Pending()
	if st.assigned == nil {
		// Build the partition once per phase: contiguous blocks, the
		// compile-time division the paper's baseline uses.
		n := len(q)
		st.assigned = make([]int, n)
		lanes := s.NumLanes()
		for i := 0; i < n; i++ {
			st.assigned[i] = i * lanes / n
		}
	}
	// Dispatch the first task whose assigned lane has queue space.
	for i := 0; i < len(q) && i < len(st.assigned); i++ {
		lane := st.assigned[i]
		if s.QueueFree(lane) == 0 {
			continue
		}
		st.assigned = append(st.assigned[:i:i], st.assigned[i+1:]...)
		s.Dispatch(i, lane)
		return true
	}
	return false
}

// PhaseStart drops the previous phase's partition; the next dispatch
// attempt rebuilds it over the new phase's queue.
func (st *staticSched) PhaseStart(s *SchedState, p int) { st.assigned = nil }

func (st *staticSched) TaskCompleted(s *SchedState, lane int, h int64) {}
func (st *staticSched) NextEvent(now sim.Cycle) sim.Cycle              { return sim.Never }
func (st *staticSched) Skip(from, to sim.Cycle)                        {}
