package core

import (
	"os"
	"strconv"

	"taskstream/internal/noc"
	"taskstream/internal/sim"
	"taskstream/internal/trace"
)

// Sharded execution support (DESIGN.md §16). The machine's component-
// dependency partition puts each lane — with its stream engine,
// scratchpad, fabric state, and task queue — on its own shard, ticked
// in parallel, while the clock, coordinator, mesh, memory controllers,
// and DRAM channels stay serial (the boundary shard). Cross-shard
// effects a lane produces during the parallel phase (spawn/complete
// control messages, trace records) are deferred through its Outbox and
// drained at the epoch barrier in lane order, which reproduces the
// serial pipe/recorder ordering exactly.

// minShardLanes is the auto-fallback threshold: below it the per-cycle
// fork/join overhead outweighs the parallelism, so the machine runs
// serial regardless of Options.Shards (documented in DESIGN.md §16).
const minShardLanes = 4

// resolveShards applies the TASKSTREAM_SHARDS environment default when
// the option is unset.
func resolveShards(opt int) int {
	if opt != 0 {
		return opt
	}
	if v := os.Getenv("TASKSTREAM_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 0
}

// gateGroup tracks one dispatched forward group's start gate and the
// lanes that share it. While the gate is unflipped, those lanes are
// coupled: the consumer's startTask writes the gate the producers'
// stream engines read, so they must tick serially (in lane order, as a
// serial run would) rather than in parallel. Gates are monotonic —
// once true they never change — so a flipped gate is a constant the
// parallel phase may read freely, and the group is pruned.
type gateGroup struct {
	gate  *bool
	lanes []int
}

// addCoupling registers a forward group's gate for coupled execution.
// Called at dispatch time (coordinator Tick, serial prefix). No-op on
// a serial machine.
func (m *Machine) addCoupling(gate *bool, lanes []int) {
	if !m.sharded {
		return
	}
	m.gateGroups = append(m.gateGroups, gateGroup{gate: gate, lanes: lanes})
	for _, l := range lanes {
		m.laneCoupled[l] = true
	}
}

// pruneGates drops groups whose gate has flipped and recomputes the
// per-lane coupling mask. Runs every executed cycle from the clock
// ticker (serial prefix), so a gate flipped in cycle c serializes its
// lanes through cycle c and frees them from c+1 on.
func (m *Machine) pruneGates() {
	if len(m.gateGroups) == 0 {
		return
	}
	kept := m.gateGroups[:0]
	for _, g := range m.gateGroups {
		if !*g.gate {
			kept = append(kept, g)
		}
	}
	if len(kept) == len(m.gateGroups) {
		return
	}
	m.gateGroups = kept
	for i := range m.laneCoupled {
		m.laneCoupled[i] = false
	}
	for _, g := range m.gateGroups {
		for _, l := range g.lanes {
			m.laneCoupled[l] = true
		}
	}
}

// laneIO abstracts the lane operations whose implementation differs
// between serial and sharded execution: popping NoC deliveries (mesh
// counters are shared) and notifying the coordinator / trace recorder
// (shared state, deferred to the barrier under sharding).
type laneIO interface {
	pop() (noc.Message, bool)
	spawn(t Task)
	complete(ev completeEvt)
	record(ev trace.Event)
}

// serialIO is the direct implementation a serial machine uses.
type serialIO struct{ l *Lane }

func (io serialIO) pop() (noc.Message, bool) { return io.l.m.mesh.Pop(io.l.node) }
func (io serialIO) spawn(t Task)             { io.l.m.coord.spawn(t) }
func (io serialIO) complete(ev completeEvt)  { io.l.m.coord.complete(ev) }
func (io serialIO) record(ev trace.Event)    { io.l.m.opts.Trace.Record(ev) }

// shardIO routes deliveries through the lane's private mesh port and
// defers coordinator/trace effects to the epoch barrier. The deferred
// calls observe the same m.now they would have seen inline: the clock
// ticks in the serial prefix, so m.now is constant from there through
// the barrier.
type shardIO struct {
	l    *Lane
	port *noc.ShardPort
	ob   *sim.Outbox
}

func (io shardIO) pop() (noc.Message, bool) { return io.port.Pop() }

func (io shardIO) spawn(t Task) {
	c := io.l.m.coord
	io.ob.Defer(func() { c.spawn(t) })
}

func (io shardIO) complete(ev completeEvt) {
	c := io.l.m.coord
	io.ob.Defer(func() { c.complete(ev) })
}

func (io shardIO) record(ev trace.Event) {
	r := io.l.m.opts.Trace
	if r == nil {
		return
	}
	io.ob.Defer(func() { r.Record(ev) })
}

// barrierSync is the lane's epoch-barrier hook: flush staged obs
// events to the shared sink, fold the deferred mesh counter deltas,
// and rebalance the lane's body pool against the central one. The
// engine runs hooks in lane order after draining every outbox.
func (l *Lane) barrierSync() {
	if l.buf != nil {
		l.buf.Flush()
	}
	l.port.Flush()
	l.bodies.Recycle()
}
