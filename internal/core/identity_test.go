package core

import (
	"strings"
	"testing"

	"taskstream/internal/stats"
	"taskstream/internal/trace"
)

func TestOptionsCacheKeyNormalization(t *testing.T) {
	base := Options{Policy: PolicyDynamic, Vet: true}
	if !base.Cacheable() {
		t.Fatal("untraced options must be cacheable")
	}

	traced := base
	traced.Trace = trace.New(8)
	if traced.Cacheable() {
		t.Fatal("traced options must not be cacheable")
	}
	if traced.CacheKey() != base.CacheKey() {
		t.Error("trace recorder reached the cache key")
	}
	if traced.Normalized().Trace != nil {
		t.Error("Normalized kept the trace recorder")
	}

	neg := base
	neg.MaxCycles = -5
	if neg.CacheKey() != base.CacheKey() {
		t.Error("negative MaxCycles (= engine default) keyed differently from zero")
	}
	capped := base
	capped.MaxCycles = 1000
	if capped.CacheKey() == base.CacheKey() {
		t.Error("explicit MaxCycles did not reach the cache key")
	}

	// Shards selects an execution strategy, not a result: sharded runs
	// are byte-identical to serial by contract (DESIGN.md §16), so the
	// field must never reach the key — a cached serial result answers a
	// sharded request and vice versa.
	sharded := base
	sharded.Shards = 8
	if sharded.CacheKey() != base.CacheKey() {
		t.Error("Shards reached the cache key")
	}
	if sharded.Normalized().Shards != 0 {
		t.Error("Normalized kept Shards")
	}

	// Every result-determining field must reach the key.
	for name, mut := range map[string]func(*Options){
		"Policy":             func(o *Options) { o.Policy = PolicyStatic },
		"Hints":              func(o *Options) { o.Hints = HintNoisy },
		"Vet":                func(o *Options) { o.Vet = false },
		"DisableFastForward": func(o *Options) { o.DisableFastForward = true },
	} {
		o := base
		mut(&o)
		if o.CacheKey() == base.CacheKey() {
			t.Errorf("perturbing %s did not change CacheKey()", name)
		}
	}
	if !strings.Contains(base.CacheKey(), "Policy=") {
		t.Errorf("CacheKey %q not in canonical field=value form", base.CacheKey())
	}
}

func TestReportClone(t *testing.T) {
	s := stats.NewSet()
	s.SetVal("cycles", 42)
	s.SetVal("tasks_run", 7)
	orig := Report{Cycles: 42, LaneBusy: []int64{10, 20}, Stats: s}
	c := orig.Clone()

	c.LaneBusy[0] = -1
	c.Stats.SetVal("cycles", -1)
	c.Stats.SetVal("new_counter", 1)
	if orig.LaneBusy[0] != 10 {
		t.Error("clone aliases LaneBusy")
	}
	if orig.Stats.Get("cycles") != 42 || orig.Stats.Get("new_counter") != 0 {
		t.Error("clone aliases Stats")
	}
	if len(orig.Stats.Names()) != 2 {
		t.Errorf("original stats names mutated: %v", orig.Stats.Names())
	}

	// Zero reports (the error path) must clone without panicking.
	var zero Report
	if z := zero.Clone(); z.Stats != nil || z.LaneBusy != nil {
		t.Errorf("zero report cloned to non-zero: %+v", z)
	}
}
