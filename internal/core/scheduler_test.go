package core

import (
	"testing"

	"taskstream/internal/mem"
)

// newPolicyMachine builds an idle machine running the given policy with
// nt task types, for direct unit testing of scheduler internals.
func newPolicyMachine(t *testing.T, lanes, nt int, p Policy) *Machine {
	t.Helper()
	types := make([]*TaskType, nt)
	for i := range types {
		types[i] = copyType()
	}
	prog := &Program{Name: "idle", Types: types, NumPhases: 1}
	m, err := NewMachine(testConfig(lanes), prog, mem.NewStorage(), Options{Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for p := Policy(0); p < NumPolicies; p++ {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p, err)
		}
		if got != p {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", p, got, p)
		}
	}
	if _, err := ParsePolicy("fifo"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
	if _, err := ParsePolicy("Dynamic"); err == nil {
		t.Fatal("ParsePolicy is case-sensitive; accepted Dynamic")
	}
}

// TestSchedulerNamesMatchPolicies pins every registered scheduler's
// Name to its policy's canonical string.
func TestSchedulerNamesMatchPolicies(t *testing.T) {
	for p := Policy(0); p < NumPolicies; p++ {
		sched, err := newScheduler(p)
		if err != nil {
			t.Fatalf("newScheduler(%v): %v", p, err)
		}
		if sched.Name() != p.String() {
			t.Fatalf("scheduler for %v names itself %q", p, sched.Name())
		}
	}
	if _, err := newScheduler(NumPolicies); err == nil {
		t.Fatal("newScheduler accepted an unregistered policy")
	}
}

// TestWeightedLanesPlacement pins the pipeline policy's group
// placement: the consumer (last weight) anchors on the least-loaded
// lane, the heaviest producer takes the next-least-loaded, and the
// result stays aligned to member order.
func TestWeightedLanesPlacement(t *testing.T) {
	m := newPolicyMachine(t, 4, 1, PolicyPipeline)
	s := &m.coord.state
	m.coord.laneWork[0] = 400
	m.coord.laneWork[1] = 300
	m.coord.laneWork[2] = 200
	m.coord.laneWork[3] = 100

	// Members: light producer (w=10), heavy producer (w=90), consumer.
	lanes := weightedLanes(s, []int64{10, 90, 50})
	if len(lanes) != 3 {
		t.Fatalf("got %d lanes, want 3", len(lanes))
	}
	if lanes[2] != 3 {
		t.Fatalf("consumer on lane %d, want 3 (least loaded)", lanes[2])
	}
	if lanes[1] != 2 {
		t.Fatalf("heavy producer on lane %d, want 2 (next least loaded)", lanes[1])
	}
	if lanes[0] != 1 {
		t.Fatalf("light producer on lane %d, want 1", lanes[0])
	}
}

// TestWeightedLanesRefusesWhenFull reports nil when fewer free lanes
// exist than group members.
func TestWeightedLanesRefusesWhenFull(t *testing.T) {
	m := newPolicyMachine(t, 2, 1, PolicyPipeline)
	s := &m.coord.state
	if lanes := weightedLanes(s, []int64{1, 2, 3}); lanes != nil {
		t.Fatalf("got %v for a 3-member group on 2 lanes, want nil", lanes)
	}
}

// TestWeightedLanesHopToll verifies the NoC locality price: with a
// dominant toll, the producer picks the free lane closest to the
// anchor over an emptier but distant one.
func TestWeightedLanesHopToll(t *testing.T) {
	cfg := testConfig(8)
	cfg.Sched.HopToll = 1 << 20
	prog := &Program{Name: "idle", Types: []*TaskType{copyType()}, NumPhases: 1}
	m, err := NewMachine(cfg, prog, mem.NewStorage(), Options{Policy: PolicyPipeline})
	if err != nil {
		t.Fatal(err)
	}
	s := &m.coord.state
	// Lane 0 anchors (least loaded). Every other lane carries equal
	// work, so only distance to the anchor separates them.
	for i := 1; i < 8; i++ {
		m.coord.laneWork[i] = 1000
	}
	lanes := weightedLanes(s, []int64{1, 1})
	if lanes[1] != 0 {
		t.Fatalf("consumer on lane %d, want 0", lanes[1])
	}
	want, wantDist := -1, 0
	for i := 1; i < 8; i++ {
		d := s.LaneDistance(i, 0)
		if want < 0 || d < wantDist {
			want, wantDist = i, d
		}
	}
	if lanes[0] != want {
		t.Fatalf("producer on lane %d (dist %d), want %d (dist %d)",
			lanes[0], s.LaneDistance(lanes[0], 0), want, wantDist)
	}
}

// TestStreamGraphApportionment pins the spatial partition: per-type
// lane regions proportional to pending work by largest remainder, at
// least one lane per active type, contiguous blocks in type order.
func TestStreamGraphApportionment(t *testing.T) {
	m := newPolicyMachine(t, 8, 3, PolicyStreamGraph)
	g, ok := m.coord.sched.(*streamGraphSched)
	if !ok {
		t.Fatalf("scheduler is %T, want *streamGraphSched", m.coord.sched)
	}
	s := &m.coord.state
	// Pending work 600/200/200 over 8 lanes → regions of 4/2/2.
	add := func(typ int, hint int64, n int) {
		for i := 0; i < n; i++ {
			m.coord.pending[0] = append(m.coord.pending[0], Task{Type: typ, WorkHint: hint})
		}
	}
	add(0, 100, 6)
	add(1, 100, 2)
	add(2, 100, 2)
	g.rebuild(s)
	want := [][]int{{0, 1, 2, 3}, {4, 5}, {6, 7}}
	for typ, region := range want {
		if len(g.regions[typ]) != len(region) {
			t.Fatalf("type %d region %v, want %v", typ, g.regions[typ], region)
		}
		for i, l := range region {
			if g.regions[typ][i] != l {
				t.Fatalf("type %d region %v, want %v", typ, g.regions[typ], region)
			}
		}
	}
}

// TestStreamGraphMoreTypesThanLanes shares lanes round-robin when the
// active type count exceeds the lane count.
func TestStreamGraphMoreTypesThanLanes(t *testing.T) {
	m := newPolicyMachine(t, 2, 3, PolicyStreamGraph)
	g := m.coord.sched.(*streamGraphSched)
	s := &m.coord.state
	for typ := 0; typ < 3; typ++ {
		m.coord.pending[0] = append(m.coord.pending[0], Task{Type: typ, WorkHint: 10})
	}
	g.rebuild(s)
	for typ, wantLane := range []int{0, 1, 0} {
		if len(g.regions[typ]) != 1 || g.regions[typ][0] != wantLane {
			t.Fatalf("type %d region %v, want [%d]", typ, g.regions[typ], wantLane)
		}
	}
}
