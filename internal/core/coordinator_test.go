package core

import (
	"testing"

	"taskstream/internal/mem"
	"taskstream/internal/proto"
	"taskstream/internal/sim"
)

// newIdleMachine builds a machine with one trivial pending-free program
// so coordinator internals can be unit-tested directly.
func newIdleMachine(t *testing.T, lanes int) *Machine {
	t.Helper()
	prog := &Program{Name: "idle", Types: []*TaskType{copyType()}, NumPhases: 1}
	m, err := NewMachine(testConfig(lanes), prog, mem.NewStorage(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// dynSched returns the machine's dynamic scheduler and its state view
// for direct unit testing.
func dynSched(t *testing.T, m *Machine) (*dynamicSched, *SchedState) {
	t.Helper()
	d, ok := m.coord.sched.(*dynamicSched)
	if !ok {
		t.Fatalf("scheduler is %T, want *dynamicSched", m.coord.sched)
	}
	return d, &m.coord.state
}

func TestChooseDistinctLanes(t *testing.T) {
	m := newIdleMachine(t, 4)
	d, s := dynSched(t, m)
	lanes := d.distinctLanes(s, 3)
	if len(lanes) != 3 {
		t.Fatalf("got %d lanes, want 3", len(lanes))
	}
	seen := map[int]bool{}
	for _, l := range lanes {
		if seen[l] {
			t.Fatalf("lane %d chosen twice", l)
		}
		seen[l] = true
	}
	if d.distinctLanes(s, 5) != nil {
		t.Fatal("choosing more lanes than exist must fail")
	}
	// Work-aware preference: load lane 0 heavily, it must come last or
	// not at all in a partial pick.
	m.coord.laneWork[0] = 1000
	pick := d.distinctLanes(s, 1)
	if pick[0] == 0 {
		t.Fatal("least-loaded pick chose the most loaded lane")
	}
}

// TestChooseDistinctLanesRoundRobinWhenLBOff pins the fix for the
// group-lane chooser ignoring the round-robin preference: with
// work-aware balancing off, distinctLanes must follow the rotating
// cursor, not silently fall back to least-work order.
func TestChooseDistinctLanesRoundRobinWhenLBOff(t *testing.T) {
	m := newIdleMachine(t, 4)
	m.cfg.Task.EnableWorkAwareLB = false
	d, s := dynSched(t, m)
	// A heavy load on lane 0 must not matter in round-robin mode.
	m.coord.laneWork[0] = 1000
	if got := d.distinctLanes(s, 2); got[0] != 0 || got[1] != 1 {
		t.Fatalf("rr group pick from cursor 0 = %v, want [0 1]", got)
	}
	if d.rr != 2 {
		t.Fatalf("cursor after group pick = %d, want 2", d.rr)
	}
	// The cursor keeps rotating across picks, wrapping at the end.
	if got := d.distinctLanes(s, 3); got[0] != 2 || got[1] != 3 || got[2] != 0 {
		t.Fatalf("rr group pick from cursor 2 = %v, want [2 3 0]", got)
	}
}

func TestPickLaneRoundRobinWhenLBOff(t *testing.T) {
	m := newIdleMachine(t, 4)
	m.cfg.Task.EnableWorkAwareLB = false
	d, s := dynSched(t, m)
	a := d.pickLane(s)
	b := d.pickLane(s)
	c := d.pickLane(s)
	if a == b && b == c {
		t.Fatalf("round-robin must rotate, got %d,%d,%d", a, b, c)
	}
}

func TestEffectiveHintModes(t *testing.T) {
	m := newIdleMachine(t, 2)
	task := &Task{Key: 7, WorkHint: 100}
	if got := m.effectiveHint(task); got != 100 {
		t.Fatalf("exact hint = %d, want 100", got)
	}
	m.opts.Hints = HintNone
	if got := m.effectiveHint(task); got != 1 {
		t.Fatalf("hint-none = %d, want 1", got)
	}
	m.opts.Hints = HintNoisy
	h := m.effectiveHint(task)
	if h < 25 || h > 400 {
		t.Fatalf("noisy hint = %d, want within [hint/4, hint*4]", h)
	}
	if h2 := m.effectiveHint(task); h2 != h {
		t.Fatal("noisy hints must be deterministic per task key")
	}
	// Default estimate when no hint is set: sum of input lengths.
	m.opts.Hints = HintExact
	task2 := &Task{Ins: []InArg{{Kind: ArgDRAMLinear, N: 40}, {Kind: ArgConst}}}
	if got := m.effectiveHint(task2); got != 40 {
		t.Fatalf("default hint = %d, want 40", got)
	}
}

func TestStaticPartitionIsContiguousBlocks(t *testing.T) {
	// 8 tasks over 4 lanes → tasks i*4/8: 0,0,1,1,2,2,3,3.
	m := newIdleMachine(t, 4)
	c := newCoordinator(m, PolicyStatic)
	for i := 0; i < 8; i++ {
		c.accept(Task{Type: 0, Key: uint64(i),
			Ins:  []InArg{{Kind: ArgDRAMLinear, Base: 64, N: 0}},
			Outs: []OutArg{{Kind: OutDiscard, N: 0}}})
	}
	// Trigger the partition build via one dispatch attempt.
	st := c.sched.(*staticSched)
	st.Dispatch(&c.state, 0)
	// After one dispatch the assignment list has 7 entries left; the
	// original pattern is block-contiguous.
	want := []int{0, 1, 1, 2, 2, 3, 3}
	if len(st.assigned) != len(want) {
		t.Fatalf("assigned = %v", st.assigned)
	}
	for i, w := range want {
		if st.assigned[i] != w {
			t.Fatalf("assignment[%d] = %d, want %d (%v)", i, st.assigned[i], w, st.assigned)
		}
	}
}

func TestMcastManagerGrouping(t *testing.T) {
	mm := newMcastManager(10, 64)
	g1 := mm.join(0x1000, 16, 0, 0)
	g2 := mm.join(0x1000, 16, 3, 5) // same range within window: joins
	if g1 != g2 {
		t.Fatal("same-range joins within the window must share a group")
	}
	if g1.members != 2 || g1.dests != (1<<0|1<<3) {
		t.Fatalf("group = %+v", g1)
	}
	if g1.lines != 2 {
		t.Fatalf("16 elems from 0x1000 = 2 lines, got %d", g1.lines)
	}
	g3 := mm.join(0x2000, 16, 1, 5) // different range: new group
	if g3 == g1 {
		t.Fatal("different ranges must not share a group")
	}
	if mm.Groups != 2 || mm.MemberJoins != 3 {
		t.Fatalf("stats: groups=%d joins=%d", mm.Groups, mm.MemberJoins)
	}
	if mm.LinesSaved != int64(g1.lines) {
		t.Fatalf("lines saved = %d, want %d", mm.LinesSaved, g1.lines)
	}
}

func TestMcastManagerWindowCloses(t *testing.T) {
	mm := newMcastManager(10, 64)
	g1 := mm.join(0x1000, 8, 0, 0)
	var issued []proto.McastReq
	submit := func(r proto.McastReq) bool { issued = append(issued, r); return true }
	mm.tick(5, 8, submit) // window not expired
	if len(issued) != 0 {
		t.Fatal("group issued before its window closed")
	}
	mm.tick(10, 8, submit) // closes and issues
	if len(issued) != g1.lines {
		t.Fatalf("issued %d lines, want %d", len(issued), g1.lines)
	}
	// A join after closing opens a fresh group.
	g2 := mm.join(0x1000, 8, 1, 11)
	if g2 == g1 {
		t.Fatal("closed group must not accept joiners")
	}
	if mm.drained() {
		t.Fatal("manager with an open group is not drained")
	}
}

func TestMcastManagerBackpressureRotates(t *testing.T) {
	mm := newMcastManager(0, 64)
	mm.join(0x1000, 64, 0, 0) // 8 lines
	mm.join(0x9000, 64, 1, 0) // 8 lines
	refuse := func(proto.McastReq) bool { return false }
	mm.tick(1, 8, refuse) // everything refused: nothing issued, no spin
	var got []proto.McastReq
	accept := func(r proto.McastReq) bool { got = append(got, r); return true }
	mm.tick(2, 4, accept)
	if len(got) != 4 {
		t.Fatalf("budget 4 must issue 4 lines, got %d", len(got))
	}
	// Round-robin: both groups progress.
	groups := map[uint64]bool{}
	for _, r := range got {
		groups[r.Group] = true
	}
	if len(groups) != 2 {
		t.Fatalf("issue must round-robin across groups, saw %v", groups)
	}
}

func TestMcastDirectory(t *testing.T) {
	mm := newMcastManager(0, 64)
	req := proto.McastReq{Line: 0x40, Group: 9, Seq: 3, Dests: 0b110}
	mm.register(77, req)
	got, ok := mm.lookup(77)
	if !ok || got.Group != 9 || got.Seq != 3 {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if _, again := mm.lookup(77); again {
		t.Fatal("directory entries must be consumed once")
	}
}

func TestSpawnControlLatency(t *testing.T) {
	// A spawn announced at cycle c is not visible to dispatch before
	// c+ctlLatency.
	m := newIdleMachine(t, 2)
	m.now = 100
	m.coord.spawn(Task{Type: 0, Phase: 0,
		Ins:  []InArg{{Kind: ArgDRAMLinear, Base: 64, N: 0}},
		Outs: []OutArg{{Kind: OutDiscard, N: 0}}})
	m.coord.Tick(100)
	if m.coord.pendingCount[0]+m.coord.activeCount[0] != 0 {
		t.Fatal("spawn visible before control latency elapsed")
	}
	m.coord.Tick(100 + ctlLatency)
	if m.coord.pendingCount[0]+m.coord.activeCount[0] != 1 {
		t.Fatal("spawn lost after control latency")
	}
	if m.coord.spawnInFlight != 0 {
		t.Fatal("in-flight counter must drain")
	}
}

func TestAllDoneAccounting(t *testing.T) {
	m := newIdleMachine(t, 2)
	if !m.coord.AllDone() {
		t.Fatal("empty program must be done")
	}
	m.coord.accept(Task{Type: 0, Phase: 0})
	if m.coord.AllDone() {
		t.Fatal("pending task must block completion")
	}
}

func TestLaneQueueOverflowPanics(t *testing.T) {
	m := newIdleMachine(t, 1)
	l := m.lanes[0]
	for i := 0; i < m.cfg.Task.QueueDepth; i++ {
		l.enqueue(&resolved{})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("enqueue beyond QueueDepth must panic")
		}
	}()
	l.enqueue(&resolved{})
}

func TestCtlLatencyPositive(t *testing.T) {
	if ctlLatency <= 0 {
		t.Fatal("control network must have non-zero latency")
	}
}

func TestMachineRejectsTooManyNodes(t *testing.T) {
	prog := &Program{Name: "x", Types: []*TaskType{copyType()}, NumPhases: 1}
	cfg := testConfig(64) // 64 lanes + 4 channels > 64-node mesh
	if _, err := NewMachine(cfg, prog, mem.NewStorage(), Options{}); err == nil {
		t.Fatal("node overflow must be rejected")
	}
}

func TestPortDelta(t *testing.T) {
	// Proportional progress covers exactly N over F firings.
	for _, tc := range []struct{ n, f int }{{10, 4}, {7, 7}, {1, 5}, {0, 3}, {16, 4}} {
		sum := 0
		for f := 0; f < tc.f; f++ {
			d := portDelta(tc.n, f, tc.f)
			if d < 0 {
				t.Fatalf("negative delta n=%d f=%d", tc.n, f)
			}
			sum += d
		}
		if sum != tc.n {
			t.Fatalf("n=%d F=%d: deltas sum to %d", tc.n, tc.f, sum)
		}
	}
	if portDelta(5, 0, 0) != 0 {
		t.Fatal("zero firings must produce zero delta")
	}
}

func TestLaneIdleAtReset(t *testing.T) {
	m := newIdleMachine(t, 2)
	for _, l := range m.lanes {
		if !l.Idle() {
			t.Fatal("fresh lane must be idle")
		}
		l.Tick(sim.Cycle(0))
		if l.BusyCycles != 0 {
			t.Fatal("idle tick must not count as busy")
		}
	}
}
