package core

import (
	"sort"

	"taskstream/internal/sim"
)

// pipelineSched is the Pipeflow-style pipeline scheduler
// (PolicyPipeline) for forward-chained task types. Two mechanisms:
//
//   - Group-first dispatch: it scans up to Sched.PipelineWindow queued
//     tasks for a formable forward group instead of only trying the
//     queue head, so producer→consumer pairs co-dispatch even when an
//     unrelated task blocks the head — raising forwarding hits over
//     the dynamic policy on forward-heavy workloads.
//   - Stage affinity: scalar dispatch prices the fabric
//     reconfiguration stall into the lane choice (laneWork plus
//     ConfigPenalty on lanes configured for another type), and
//     repeated groups with the same producer-type signature reuse
//     their previous lanes when free — stable stages, fewer config
//     switches.
type pipelineSched struct {
	// pairLanes remembers, per group signature (seed producer type and
	// group size), the lane tuple the last such group used.
	pairLanes map[int64][]int
}

func newPipelineSched() *pipelineSched {
	return &pipelineSched{pairLanes: make(map[int64][]int)}
}

func (p *pipelineSched) Name() string { return PolicyPipeline.String() }

func (p *pipelineSched) Dispatch(s *SchedState, now sim.Cycle) bool {
	q := s.Pending()
	window := s.Sched().PipelineWindow
	if s.ForwardingEnabled() {
		for i := 0; i < len(q) && i < window; i++ {
			if q[i].ProducesTag() == 0 {
				continue
			}
			seedType := q[i].Type
			if s.TryForwardGroup(i, func(w []int64) []int { return p.stableLanes(s, seedType, w) }) {
				return true
			}
		}
	}
	// Stage-affine scalar dispatch of the head task: cheapest lane
	// counting both outstanding work and a pending reconfiguration.
	t := &q[0]
	penalty := s.ConfigPenalty()
	best, bestCost := -1, int64(0)
	for i, n := 0, s.NumLanes(); i < n; i++ {
		if s.QueueFree(i) == 0 {
			continue
		}
		cost := s.LaneWork(i)
		if s.LaneConfigured(i) != t.Type {
			cost += penalty
		}
		if best < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	if best < 0 {
		return false
	}
	s.Dispatch(0, best)
	return true
}

// stableLanes chooses distinct free lanes for a forward group (one per
// member weight), reusing the tuple the last group of the same
// signature ran on when every one of those lanes is idle — the
// producers and consumer land on fabrics already configured for their
// types without serializing behind a busy stage.
func (p *pipelineSched) stableLanes(s *SchedState, seedType int, w []int64) []int {
	key := int64(seedType)<<32 | int64(len(w))
	if prev, ok := p.pairLanes[key]; ok && len(prev) == len(w) {
		idle := true
		for _, l := range prev {
			if s.QueueFree(l) == 0 || s.LaneWork(l) > 0 {
				idle = false
				break
			}
		}
		if idle {
			return prev
		}
	}
	lanes := weightedLanes(s, w)
	if lanes != nil {
		p.pairLanes[key] = append([]int(nil), lanes...)
	}
	return lanes
}

// weightedLanes places a forward group consumer-first: the consumer
// (last member) anchors on the least-loaded free lane — the whole
// group streams through it, so it must reach the fabric fast — then
// the producers, heaviest work hint first, each take the free lane
// minimizing outstanding work plus a per-hop toll toward the anchor,
// so the heavy stage gets the emptiest remaining queue and the
// forwarded stream crosses as little mesh as the load balance allows.
// The result is aligned to w's member order; ties break toward lower
// lane ids for determinism.
func weightedLanes(s *SchedState, w []int64) []int {
	order := make([]int, len(w))
	for i := range order {
		order[i] = i
	}
	order[0], order[len(w)-1] = order[len(w)-1], order[0]
	rest := order[1:]
	sort.SliceStable(rest, func(a, b int) bool { return w[rest[a]] > w[rest[b]] })
	lanes := make([]int, len(w))
	taken := make(map[int]bool, len(w))
	anchor := -1
	for _, m := range order {
		best, bestCost := -1, int64(0)
		for i, n := 0, s.NumLanes(); i < n; i++ {
			if taken[i] || s.QueueFree(i) == 0 {
				continue
			}
			cost := s.LaneWork(i)
			if anchor >= 0 {
				cost += int64(s.LaneDistance(i, anchor)) * s.Sched().HopToll
			}
			if best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		if best < 0 {
			return nil
		}
		if anchor < 0 {
			anchor = best
		}
		taken[best] = true
		lanes[m] = best
	}
	return lanes
}

// PhaseStart keeps the pair-lane memory: stage stability across phases
// is the point — a merge stage re-entered next phase reuses its lanes.
func (p *pipelineSched) PhaseStart(s *SchedState, ph int)               {}
func (p *pipelineSched) TaskCompleted(s *SchedState, lane int, h int64) {}
func (p *pipelineSched) NextEvent(now sim.Cycle) sim.Cycle              { return sim.Never }
func (p *pipelineSched) Skip(from, to sim.Cycle)                        {}
