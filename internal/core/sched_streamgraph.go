package core

import "taskstream/internal/sim"

// streamGraphSched is the De Matteis-style streaming task-graph
// scheduler (PolicyStreamGraph, HPDC'23): lanes are spatially
// partitioned into per-task-type regions sized in proportion to each
// type's pending work, so one type's burst cannot crowd every lane and
// lanes rarely switch fabric configurations. Temporal re-balancing
// recomputes the partition after Sched.RebalanceTasks completions when
// the observed lane load skew exceeds Sched.SkewPct — an event-driven
// trigger (completion counts are identical with §11 fast-forwarding on
// or off), never a per-tick one.
type streamGraphSched struct {
	// regions[typeID] lists the lanes of that type's spatial region;
	// nil until the first dispatch attempt of a phase builds it.
	regions [][]int
	// sinceRebalance counts completions since the partition was last
	// (re)built.
	sinceRebalance int
}

func (g *streamGraphSched) Name() string { return PolicyStreamGraph.String() }

func (g *streamGraphSched) Dispatch(s *SchedState, now sim.Cycle) bool {
	if g.regions == nil || g.rebalanceDue(s) {
		g.rebuild(s)
	}
	q := s.Pending()
	// Head-first forward groups, as in the dynamic policy; group lanes
	// are chosen least-loaded across regions, since a group inherently
	// spans the producer and consumer types' partitions.
	if t := &q[0]; t.ProducesTag() != 0 && s.ForwardingEnabled() {
		if s.TryForwardGroup(0, func(w []int64) []int { return leastLoadedDistinct(s, len(w)) }) {
			return true
		}
	}
	// Spatial dispatch: the first pending task whose region has a free
	// lane. Scanning past a region-blocked head keeps other types'
	// regions fed instead of head-of-line blocking the whole machine.
	for i := range q {
		lane := g.pickInRegion(s, q[i].Type)
		if lane < 0 {
			continue
		}
		s.Dispatch(i, lane)
		return true
	}
	return false
}

// rebalanceDue applies the temporal trigger: enough completions since
// the last partition, and lane load skewed past the threshold. The
// completion counter resets on every check so a balanced machine is
// re-examined only every RebalanceTasks completions, not every
// dispatch.
func (g *streamGraphSched) rebalanceDue(s *SchedState) bool {
	cad := s.Sched().RebalanceTasks
	if cad <= 0 || g.sinceRebalance < cad {
		return false
	}
	g.sinceRebalance = 0
	n := s.NumLanes()
	min, max, total := s.LaneWork(0), s.LaneWork(0), int64(0)
	for i := 0; i < n; i++ {
		w := s.LaneWork(i)
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
		total += w
	}
	mean := total / int64(n)
	return max-min > mean*int64(s.Sched().SkewPct)/100
}

// rebuild computes the spatial partition from the current phase's
// pending work per type: every active type gets at least one lane,
// the rest are apportioned by largest remainder of the work shares.
// With more active types than lanes, types share lanes round-robin.
// Fully deterministic: ties break toward lower type ids.
func (g *streamGraphSched) rebuild(s *SchedState) {
	nt, n := s.NumTypes(), s.NumLanes()
	g.regions = make([][]int, nt)
	g.sinceRebalance = 0
	work := make([]int64, nt)
	var total int64
	q := s.Pending()
	for i := range q {
		h := s.Hint(&q[i])
		work[q[i].Type] += h
		total += h
	}
	var active []int
	for t := 0; t < nt; t++ {
		if work[t] > 0 {
			active = append(active, t)
		}
	}
	if len(active) == 0 {
		return
	}
	if len(active) >= n {
		for r, t := range active {
			g.regions[t] = []int{r % n}
		}
		return
	}
	// One lane each, then largest-remainder apportionment of the rest.
	counts := make([]int, len(active))
	spare := n - len(active)
	type rem struct {
		idx  int
		frac int64
	}
	rems := make([]rem, len(active))
	given := 0
	for i, t := range active {
		counts[i] = 1
		share := work[t] * int64(spare) / total
		counts[i] += int(share)
		given += int(share)
		rems[i] = rem{i, work[t]*int64(spare) - share*total}
	}
	for left := spare - given; left > 0; left-- {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].frac > rems[best].frac {
				best = i
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
	}
	// Contiguous lane blocks in type-id order.
	lane := 0
	for i, t := range active {
		for k := 0; k < counts[i]; k++ {
			g.regions[t] = append(g.regions[t], lane)
			lane++
		}
	}
}

// pickInRegion chooses the least-loaded free lane in the type's
// region, falling back to a global least-loaded pick for types that
// appeared (via spawn) after the partition was built.
func (g *streamGraphSched) pickInRegion(s *SchedState, typeID int) int {
	region := g.regions[typeID]
	if len(region) == 0 {
		return leastLoadedLane(s)
	}
	best, bestWork := -1, int64(0)
	for _, i := range region {
		if s.QueueFree(i) == 0 {
			continue
		}
		if best < 0 || s.LaneWork(i) < bestWork {
			best, bestWork = i, s.LaneWork(i)
		}
	}
	return best
}

// PhaseStart drops the partition; the next dispatch attempt rebuilds
// it over the new phase's type mix.
func (g *streamGraphSched) PhaseStart(s *SchedState, p int) { g.regions = nil }

// TaskCompleted drives the temporal re-balancing cadence.
func (g *streamGraphSched) TaskCompleted(s *SchedState, lane int, h int64) {
	g.sinceRebalance++
}

func (g *streamGraphSched) NextEvent(now sim.Cycle) sim.Cycle { return sim.Never }
func (g *streamGraphSched) Skip(from, to sim.Cycle)           {}

// leastLoadedLane picks the free lane with least outstanding work, or
// -1. Shared by the streamgraph and pipeline policies.
func leastLoadedLane(s *SchedState) int {
	best, bestWork := -1, int64(0)
	for i, n := 0, s.NumLanes(); i < n; i++ {
		if s.QueueFree(i) == 0 {
			continue
		}
		if best < 0 || s.LaneWork(i) < bestWork {
			best, bestWork = i, s.LaneWork(i)
		}
	}
	return best
}

// leastLoadedDistinct picks k distinct free lanes by least outstanding
// work, or nil if impossible.
func leastLoadedDistinct(s *SchedState, k int) []int {
	n := s.NumLanes()
	chosen := make([]int, 0, k)
	used := make(map[int]bool, k)
	for len(chosen) < k {
		best, bestWork := -1, int64(0)
		for i := 0; i < n; i++ {
			if used[i] || s.QueueFree(i) == 0 {
				continue
			}
			if best < 0 || s.LaneWork(i) < bestWork {
				best, bestWork = i, s.LaneWork(i)
			}
		}
		if best < 0 {
			return nil
		}
		used[best] = true
		chosen = append(chosen, best)
	}
	return chosen
}
