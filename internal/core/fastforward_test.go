package core

import (
	"fmt"
	"reflect"
	"testing"

	"taskstream/internal/config"
	"taskstream/internal/mem"
	"taskstream/internal/trace"
)

// runSnapshot executes a freshly generated program and captures
// everything externally observable: cycle count, every statistic in
// report order, per-lane busy vector, the full task-lifecycle trace,
// and the output memory regions.
type runSnapshot struct {
	cycles   int64
	stats    string
	laneBusy []int64
	trace    []trace.Event
	outs     [][]uint64
}

func snapshotRandom(t *testing.T, seed uint64, cfg config.Config, opts Options) runSnapshot {
	t.Helper()
	prog, st, outs := randomProgram(seed)
	rec := trace.New(0)
	opts.Trace = rec
	m, err := NewMachine(cfg, prog, st, opts)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	snap := runSnapshot{
		cycles:   rep.Cycles,
		stats:    rep.Stats.String(),
		laneBusy: rep.LaneBusy,
		trace:    rec.Events(),
	}
	for _, r := range outs {
		snap.outs = append(snap.outs, st.ReadElems(r.base, r.n))
	}
	return snap
}

func diffSnapshots(t *testing.T, label string, ff, slow runSnapshot) {
	t.Helper()
	if ff.cycles != slow.cycles {
		t.Errorf("%s: cycles: ff=on %d, ff=off %d", label, ff.cycles, slow.cycles)
	}
	if ff.stats != slow.stats {
		t.Errorf("%s: stats diverge:\n--- ff=on ---\n%s--- ff=off ---\n%s", label, ff.stats, slow.stats)
	}
	if !reflect.DeepEqual(ff.laneBusy, slow.laneBusy) {
		t.Errorf("%s: lane busy: ff=on %v, ff=off %v", label, ff.laneBusy, slow.laneBusy)
	}
	if !reflect.DeepEqual(ff.trace, slow.trace) {
		t.Errorf("%s: traces diverge (%d vs %d events)", label, len(ff.trace), len(slow.trace))
	}
	if !reflect.DeepEqual(ff.outs, slow.outs) {
		t.Errorf("%s: output memory diverges", label)
	}
}

// TestFastForwardByteIdentical is the tentpole invariant: for arbitrary
// programs under every execution model, fast-forwarding must change
// nothing observable — cycle counts, all statistics, per-lane busy
// vectors, full lifecycle traces, and results.
func TestFastForwardByteIdentical(t *testing.T) {
	variants := []struct {
		name string
		cfg  func() config.Config
		opts Options
	}{
		{"delta", func() config.Config { return testConfig(4) }, Options{}},
		{"static", func() config.Config { return testConfig(4).StaticModel() }, Options{Policy: PolicyStatic}},
		{"noisy-hints", func() config.Config { return testConfig(4) }, Options{Hints: HintNoisy}},
		{"single-lane", func() config.Config { return testConfig(1) }, Options{}},
	}
	for _, v := range variants {
		for seed := uint64(1); seed <= 8; seed++ {
			ffOpts, slowOpts := v.opts, v.opts
			slowOpts.DisableFastForward = true
			ff := snapshotRandom(t, seed, v.cfg(), ffOpts)
			slow := snapshotRandom(t, seed, v.cfg(), slowOpts)
			diffSnapshots(t, fmt.Sprintf("%s seed %d", v.name, seed), ff, slow)
		}
	}
}

// TestFastForwardByteIdenticalUnderStress repeats the invariant with
// tiny buffers everywhere: backpressure keeps components busy at every
// horizon, exercising the retry-every-cycle forecast paths.
func TestFastForwardByteIdenticalUnderStress(t *testing.T) {
	stress := testConfig(3)
	stress.NoC.VCDepth = 1
	stress.NoC.FlitBytes = 8
	stress.DRAM.QueueDepth = 1
	stress.DRAM.Channels = 2
	stress.Task.QueueDepth = 1
	stress.Task.DispatchPerCycle = 1
	for seed := uint64(30); seed <= 38; seed++ {
		ff := snapshotRandom(t, seed, stress, Options{})
		slow := snapshotRandom(t, seed, stress, Options{DisableFastForward: true})
		diffSnapshots(t, fmt.Sprintf("stress seed %d", seed), ff, slow)
	}
}

// TestGoldenCyclesFastForwardOff pins the golden timing with skipping
// disabled; together with TestGoldenCycles (which runs the default,
// fast-forwarding path) it anchors both sides of the equality.
func TestGoldenCyclesFastForwardOff(t *testing.T) {
	st := mem.NewStorage()
	al := mem.NewAllocator()
	var tasks []Task
	for i := 0; i < 6; i++ {
		n := 64 * (i + 1)
		src := al.AllocElems(n)
		dst := al.AllocElems(n)
		v := make([]uint64, n)
		for j := range v {
			v[j] = uint64(j)
		}
		st.WriteElems(src, v)
		tasks = append(tasks, Task{
			Type: 0, Key: uint64(i), Scalars: []uint64{2},
			Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: n}},
			Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: n}},
		})
	}
	prog := &Program{Name: "golden", Types: []*TaskType{addKType()},
		NumPhases: 1, Tasks: tasks}
	rep := buildAndRun(t, testConfig(2), prog, st, Options{DisableFastForward: true})
	if rep.Cycles != 630 {
		t.Errorf("slow-path golden drifted: %d cycles, want 630", rep.Cycles)
	}
}
