package core

// Annotation plumbing shared by passes that rewrite task lists (the
// delta-infer synthesizer, annotation sweeps). A Program's Types are
// immutable descriptions and safe to alias; Tasks carry the mutable
// annotations, so rewriting passes deep-copy them first.

// CloneTasks returns a deep copy of tasks: Scalars, Ins, and Outs are
// fresh slices, so the copy can be re-annotated without aliasing the
// original program.
func CloneTasks(tasks []Task) []Task {
	out := make([]Task, len(tasks))
	for i := range tasks {
		t := tasks[i]
		if t.Scalars != nil {
			t.Scalars = append([]uint64(nil), t.Scalars...)
		}
		if t.Ins != nil {
			t.Ins = append([]InArg(nil), t.Ins...)
		}
		if t.Outs != nil {
			t.Outs = append([]OutArg(nil), t.Outs...)
		}
		out[i] = t
	}
	return out
}

// WithTasks returns a shallow copy of p carrying the given task list.
// Types and NumPhases are shared with the receiver.
func (p *Program) WithTasks(tasks []Task) *Program {
	q := *p
	q.Tasks = tasks
	return &q
}

// MaxTag returns the highest forward tag any task produces or consumes
// (0 when no task carries one) — the watermark above which fresh tags
// are collision-free.
func MaxTag(tasks []Task) uint64 {
	var max uint64
	for i := range tasks {
		t := &tasks[i]
		for _, o := range t.Outs {
			if o.Kind == OutForward && o.Tag > max {
				max = o.Tag
			}
		}
		for _, in := range t.Ins {
			if in.Kind == ArgForwardIn && in.Tag > max {
				max = in.Tag
			}
		}
	}
	return max
}
