package core

import (
	"fmt"
	"testing"

	"taskstream/internal/config"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
)

// randomProgram generates a structurally varied two-phase program:
// copy tasks, gather tasks, shared-read reductions, and forwarded
// producer/consumer pairs, with sizes drawn from a seeded generator.
// It returns the program, pre-initialized storage, and the list of
// output regions to compare across execution models.
type region struct {
	base mem.Addr
	n    int
}

func randomProgram(seed uint64) (*Program, *mem.Storage, []region) {
	rng := seed
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	st := mem.NewStorage()
	al := mem.NewAllocator()

	pass := func(name string) *fabric.DFG {
		b := fabric.NewBuilder(name, 1, 1)
		n := b.Add(fabric.OpPass, fabric.InPort(0))
		b.Out(0, n)
		return b.MustBuild()
	}
	types := []*TaskType{
		{Name: "copy", DFG: pass("copy"),
			Kernel: func(t *Task, in [][]uint64, s *mem.Storage) Result {
				return Result{Out: [][]uint64{append([]uint64(nil), in[0]...)}}
			}},
		{Name: "sum2", DFG: pass("sum2"),
			Kernel: func(t *Task, in [][]uint64, s *mem.Storage) Result {
				var sum uint64
				for _, v := range in[0] {
					sum += v
				}
				for _, v := range in[1] {
					sum += v * 3
				}
				return Result{Out: [][]uint64{nil, nil, {sum}}}
			}},
		{Name: "scale", DFG: pass("scale"),
			Kernel: func(t *Task, in [][]uint64, s *mem.Storage) Result {
				out := make([]uint64, len(in[0]))
				for i, v := range in[0] {
					out[i] = v*t.Scalars[0] + 1
				}
				return Result{Out: [][]uint64{out}}
			}},
	}

	shared := al.AllocElems(64)
	for i := 0; i < 64; i++ {
		st.Write8(shared+mem.Addr(i*8), uint64(next(1000)))
	}

	var tasks []Task
	var outs []region
	nTasks := 6 + next(20)
	for i := 0; i < nTasks; i++ {
		n := 1 + next(120)
		src := al.AllocElems(n)
		for j := 0; j < n; j++ {
			st.Write8(src+mem.Addr(j*8), uint64(next(1<<20)))
		}
		switch next(4) {
		case 0: // plain copy
			dst := al.AllocElems(n)
			tasks = append(tasks, Task{Type: 0, Key: uint64(i),
				Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: n}},
				Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: n}}})
			outs = append(outs, region{dst, n})
		case 1: // gather copy
			idx := al.AllocElems(n)
			for j := 0; j < n; j++ {
				st.Write8(idx+mem.Addr(j*8), uint64(next(64)))
			}
			dst := al.AllocElems(n)
			tasks = append(tasks, Task{Type: 0, Key: uint64(i),
				Ins:  []InArg{{Kind: ArgDRAMGather, Base: shared, IdxBase: idx, N: n}},
				Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: n}}})
			outs = append(outs, region{dst, n})
		case 2: // shared-read reduction
			res := al.AllocElems(1)
			tasks = append(tasks, Task{Type: 1, Key: uint64(i),
				Ins: []InArg{
					{Kind: ArgDRAMLinear, Base: shared, N: 64, Shared: true},
					{Kind: ArgDRAMLinear, Base: src, N: n},
				},
				Outs: []OutArg{{}, {}, {Kind: OutDRAMLinear, Base: res, N: 1}}})
			outs = append(outs, region{res, 1})
		default: // forwarded pair across phases
			mid := al.AllocElems(n)
			dst := al.AllocElems(n)
			tag := uint64(1000 + i)
			tasks = append(tasks, Task{Type: 0, Phase: 0, Key: uint64(i),
				Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: n}},
				Outs: []OutArg{{Kind: OutForward, Base: mid, N: n, Tag: tag}}})
			tasks = append(tasks, Task{Type: 2, Phase: 1, Key: uint64(i + 500),
				Scalars: []uint64{uint64(next(9) + 1)},
				Ins:     []InArg{{Kind: ArgForwardIn, Base: mid, N: n, Tag: tag}},
				Outs:    []OutArg{{Kind: OutDRAMLinear, Base: dst, N: n}}})
			outs = append(outs, region{dst, n})
		}
	}
	return &Program{Name: fmt.Sprintf("rand%d", seed), Types: types,
		NumPhases: 2, Tasks: tasks}, st, outs
}

// runRandom executes one generated program under a model and returns
// the output snapshot.
func runRandom(t *testing.T, seed uint64, cfg config.Config, opts Options) [][]uint64 {
	t.Helper()
	prog, st, outs := randomProgram(seed)
	m, err := NewMachine(cfg, prog, st, opts)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	snap := make([][]uint64, len(outs))
	for i, r := range outs {
		snap[i] = st.ReadElems(r.base, r.n)
	}
	return snap
}

func TestRandomProgramsModelsAgree(t *testing.T) {
	// Property: for arbitrary programs, every execution-model variant
	// completes (no deadlock) and produces bit-identical results.
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := testConfig(4)
		static := runRandom(t, seed, cfg.StaticModel(), Options{Policy: PolicyStatic})
		delta := runRandom(t, seed, cfg, Options{})
		if len(static) != len(delta) {
			t.Fatalf("seed %d: snapshot shape differs", seed)
		}
		for i := range static {
			for j := range static[i] {
				if static[i][j] != delta[i][j] {
					t.Fatalf("seed %d: region %d elem %d: static %d, delta %d",
						seed, i, j, static[i][j], delta[i][j])
				}
			}
		}
	}
}

func TestRandomProgramsUnderStressConfigs(t *testing.T) {
	// Tiny buffers everywhere: backpressure paths must still complete.
	stress := testConfig(3)
	stress.NoC.VCDepth = 1
	stress.NoC.FlitBytes = 8
	stress.DRAM.QueueDepth = 1
	stress.DRAM.Channels = 2
	stress.Task.QueueDepth = 1
	stress.Task.DispatchPerCycle = 1
	for seed := uint64(30); seed <= 40; seed++ {
		normal := runRandom(t, seed, testConfig(3), Options{})
		tight := runRandom(t, seed, stress, Options{})
		for i := range normal {
			for j := range normal[i] {
				if normal[i][j] != tight[i][j] {
					t.Fatalf("seed %d: stress config changed results", seed)
				}
			}
		}
	}
}

func TestRandomProgramsHintModesAgree(t *testing.T) {
	for seed := uint64(50); seed <= 56; seed++ {
		a := runRandom(t, seed, testConfig(4), Options{Hints: HintExact})
		b := runRandom(t, seed, testConfig(4), Options{Hints: HintNoisy})
		c := runRandom(t, seed, testConfig(4), Options{Hints: HintNone})
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] || a[i][j] != c[i][j] {
					t.Fatalf("seed %d: hint mode changed results", seed)
				}
			}
		}
	}
}

func TestRandomProgramsSingleLane(t *testing.T) {
	// Forward pairs must degrade gracefully when only one lane exists
	// (no second lane for the consumer → memory fallback).
	for seed := uint64(60); seed <= 66; seed++ {
		multi := runRandom(t, seed, testConfig(4), Options{})
		single := runRandom(t, seed, testConfig(1), Options{})
		for i := range multi {
			for j := range multi[i] {
				if multi[i][j] != single[i][j] {
					t.Fatalf("seed %d: lane count changed results", seed)
				}
			}
		}
	}
}
