package core

import (
	"taskstream/internal/mem"
	"taskstream/internal/obs"
	"taskstream/internal/proto"
	"taskstream/internal/sim"
)

// mcastManager implements the coordinator's shared-read recovery: tasks
// whose dispatch falls within the coalescing window and whose shared
// read names the same address range join one group; the group issues a
// single line-fetch sequence whose responses the NoC multicasts to
// every member lane.
type mcastManager struct {
	window    sim.Cycle
	lineBytes int
	nextID    uint64
	nextReq   int64
	// open groups by range key, still accepting joiners.
	open map[mcastKey]*mcastGroup
	// issuing groups that still have lines to submit to DRAM.
	issuing []*mcastGroup
	// directory maps an in-flight request ID to its delivery info; the
	// memory controllers consult it when a response surfaces.
	directory map[uint64]proto.McastReq

	// Stats.
	Groups      int64
	MemberJoins int64
	LinesSaved  int64 // unicast line fetches avoided by sharing

	// obs, when non-nil, receives table hit/miss events (nil-safe).
	obs *obs.Sink
}

type mcastKey struct {
	base mem.Addr
	n    int
}

type mcastGroup struct {
	id       uint64
	key      mcastKey
	dests    uint64 // lane-node mask
	members  int
	lines    int
	headSkip int
	closes   sim.Cycle
	nextLine int // issue cursor
}

func newMcastManager(window sim.Cycle, lineBytes int) *mcastManager {
	return &mcastManager{
		window:    window,
		lineBytes: lineBytes,
		nextID:    1,
		open:      make(map[mcastKey]*mcastGroup),
		directory: make(map[uint64]proto.McastReq),
	}
}

// join adds a lane (by NoC node id) to the open group covering
// [base, base+n*8), opening a new group if none is collecting. Returns
// the group for the lane's stream setup.
func (mm *mcastManager) join(base mem.Addr, n int, laneNode int, now sim.Cycle) *mcastGroup {
	key := mcastKey{base: base, n: n}
	if g, ok := mm.open[key]; ok {
		g.dests |= 1 << uint(laneNode)
		g.members++
		mm.MemberJoins++
		mm.LinesSaved += int64(g.lines)
		mm.obs.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindMcastHit,
			Comp: int32(laneNode), A: int64(g.id), B: int64(g.lines)})
		return g
	}
	first := mem.LineOf(base, mm.lineBytes)
	last := mem.LineOf(base+mem.Addr((n-1)*mem.ElemBytes), mm.lineBytes)
	lines := int((last-first)/mem.Addr(mm.lineBytes)) + 1
	if n == 0 {
		lines = 0
	}
	g := &mcastGroup{
		id:       mm.nextID,
		key:      key,
		dests:    1 << uint(laneNode),
		members:  1,
		lines:    lines,
		headSkip: int(base-first) / mem.ElemBytes,
		closes:   now + mm.window,
	}
	mm.nextID++
	mm.open[key] = g
	mm.Groups++
	mm.MemberJoins++
	mm.obs.Emit(obs.Event{Cycle: int64(now), Kind: obs.KindMcastMiss,
		Comp: int32(laneNode), A: int64(g.id), B: int64(lines)})
	return g
}

// tick closes expired groups and feeds issuing groups' line requests
// into the DRAM channels via submit, which reports acceptance. budget
// bounds submissions per cycle.
func (mm *mcastManager) tick(now sim.Cycle, budget int, submit func(proto.McastReq) bool) {
	// Close expired groups in deterministic (id) order.
	var toClose []*mcastGroup
	for _, g := range mm.open {
		if now >= g.closes {
			toClose = append(toClose, g)
		}
	}
	// Sort by id for determinism (map iteration order is random).
	for i := 1; i < len(toClose); i++ {
		for j := i; j > 0 && toClose[j-1].id > toClose[j].id; j-- {
			toClose[j-1], toClose[j] = toClose[j], toClose[j-1]
		}
	}
	for _, g := range toClose {
		delete(mm.open, g.key)
		if g.lines > 0 {
			mm.issuing = append(mm.issuing, g)
		}
	}
	// Issue lines round-robin across open groups so one large fetch
	// does not serialize the others (each group's lines interleave
	// across DRAM channels, so round-robin also spreads channel load).
	stuck := 0
	for budget > 0 && len(mm.issuing) > 0 && stuck < len(mm.issuing) {
		g := mm.issuing[0]
		line := mem.LineOf(g.key.base, mm.lineBytes) + mem.Addr(g.nextLine*mm.lineBytes)
		req := proto.McastReq{
			Line:  line,
			Group: g.id,
			Seq:   g.nextLine,
			Dests: g.dests,
		}
		if !submit(req) {
			// Channel backpressure: rotate and give others a chance.
			mm.issuing = append(mm.issuing[1:], g)
			stuck++
			continue
		}
		stuck = 0
		g.nextLine++
		budget--
		if g.nextLine == g.lines {
			mm.issuing = mm.issuing[1:]
		} else {
			mm.issuing = append(mm.issuing[1:], g)
		}
	}
}

// nextEvent reports when the manager's tick can next do anything:
// immediately while lines wait to issue (retried under backpressure
// every cycle), at the earliest group-close deadline otherwise.
// Directory entries are passive lookups, not events.
func (mm *mcastManager) nextEvent(now sim.Cycle) sim.Cycle {
	if len(mm.issuing) > 0 {
		return now
	}
	ev := sim.Never
	for _, g := range mm.open {
		if g.closes < ev {
			ev = g.closes
		}
	}
	return ev
}

// register records an in-flight multicast request so the memory
// controller can route its response; the controller removes it.
func (mm *mcastManager) register(reqID uint64, req proto.McastReq) {
	mm.directory[reqID] = req
}

// lookup resolves and removes a directory entry.
func (mm *mcastManager) lookup(reqID uint64) (proto.McastReq, bool) {
	req, ok := mm.directory[reqID]
	if ok {
		delete(mm.directory, reqID)
	}
	return req, ok
}

// drained reports whether no group work remains.
func (mm *mcastManager) drained() bool {
	return len(mm.open) == 0 && len(mm.issuing) == 0 && len(mm.directory) == 0
}
