package core

import (
	"taskstream/internal/mem"
	"taskstream/internal/noc"
	"taskstream/internal/obs"
	"taskstream/internal/proto"
	"taskstream/internal/sim"
	"taskstream/internal/stream"
	"taskstream/internal/trace"
)

// laneState is the task-execution FSM state of a lane.
type laneState uint8

const (
	laneIdle laneState = iota
	laneConfig
	laneRunning
)

// prodEvt is an output-port production maturing after pipeline latency.
type prodEvt struct {
	port int
	n    int
}

// spawnEvt is a spawn announcement maturing after pipeline latency.
type spawnEvt struct {
	task Task
}

// completeEvt notifies the coordinator that a lane finished a task.
type completeEvt struct {
	lane  int
	phase int
	hint  int64
}

// Lane is one compute lane: a stream-fed fabric executing one task at a
// time from its hardware task queue.
type Lane struct {
	id   int
	node int // cached NoC node id (Topology.LaneNode is O(nodes·channels))
	m    *Machine
	eng  *stream.Engine
	spad *mem.Spad

	// io routes the lane's shared-state interactions (NoC pops,
	// coordinator notifications, trace records): direct on a serial
	// machine, barrier-deferred under sharded execution (shard.go).
	io laneIO
	// sink receives the lane's observability events: the shared sink
	// when serial, the per-shard staging buffer (buf) when sharded.
	sink obs.Emitter
	// Sharded-execution plumbing, nil on a serial machine.
	outbox *sim.Outbox
	port   *noc.ShardPort
	bodies *proto.ShardPool
	buf    *obs.Buffer

	queue *sim.Queue[*resolved]
	cur   *resolved
	state laneState

	configDone sim.Cycle
	curType    int
	firing     int
	nextFire   sim.Cycle
	prod       *sim.Pipe[prodEvt]
	spawnPipe  *sim.Pipe[spawnEvt]
	reserved   []int // write-buffer space reserved by in-flight firings

	// Stats.
	BusyCycles   int64
	FireCycles   int64
	TasksRun     int64
	ConfigStalls int64
	// StallIn attributes blocked firing attempts to the input source
	// kind that gated them (indexed by stream.SrcKind); StallOut counts
	// output-space stalls.
	StallIn  [stream.NumSrcKinds]int64
	StallOut int64

	// Observability span state: the lane has been in obsCause (running
	// obsName) since cycle obsSince. Maintained only when a sink is
	// attached; see observe.
	obsCause obs.Cause
	obsName  string
	obsSince sim.Cycle
}

func newLane(id int, m *Machine) *Lane {
	spad := mem.NewSpad(m.cfg.Spad)
	l := &Lane{
		id:        id,
		node:      m.topo.LaneNode(id),
		m:         m,
		spad:      spad,
		queue:     sim.NewQueue[*resolved](m.cfg.Task.QueueDepth),
		curType:   -1,
		prod:      sim.NewPipe[prodEvt](0),
		spawnPipe: sim.NewPipe[spawnEvt](0),
		reserved:  make([]int, m.cfg.Fabric.NumPorts),
	}
	if m.sharded {
		l.outbox = &sim.Outbox{}
		l.port = m.mesh.NewShardPort(l.node)
		l.bodies = proto.NewShardPool(m.pool)
		l.io = shardIO{l: l, port: l.port, ob: l.outbox}
		l.eng = stream.NewEngine(id, m.cfg, m.topo, l.port, spad, l.bodies)
	} else {
		l.io = serialIO{l}
		l.eng = stream.NewEngine(id, m.cfg, m.topo, m.mesh, spad, m.pool)
	}
	return l
}

// QueueSpace returns free task-queue slots.
func (l *Lane) QueueSpace() int { return l.queue.Cap() - l.queue.Len() }

// enqueue accepts a dispatched task; the coordinator has verified space.
func (l *Lane) enqueue(r *resolved) {
	if !l.queue.Push(r) {
		panic("core: lane queue overflow (coordinator must check QueueSpace)")
	}
}

// Tick advances the lane one cycle.
func (l *Lane) Tick(now sim.Cycle) {
	// Deliver NoC messages to the stream engine. SetCycle first so the
	// engine's message-handler events carry this cycle's stamp.
	l.eng.SetCycle(now)
	for {
		msg, ok := l.io.pop()
		if !ok {
			break
		}
		l.eng.OnMessage(msg)
	}
	l.spad.Tick(now)
	l.eng.Tick(now)

	if l.state != laneIdle || !l.queue.Empty() {
		l.BusyCycles++
	}

	// Arm a read prefetch for the next queued task while the current
	// one runs (the task queue's argument-prefetch datapath).
	if l.cur != nil && !l.m.cfg.Task.DisablePrefetch && !l.eng.HasAhead() {
		if next, ok := l.queue.Peek(); ok {
			l.eng.SetupAhead(next.inSet)
		}
	}

	switch l.state {
	case laneIdle:
		if r, ok := l.queue.Pop(); ok {
			l.cur = r
			l.startTask(now)
		}
	case laneConfig:
		if now >= l.configDone {
			l.state = laneRunning
		}
	case laneRunning:
		l.run(now)
	}
	if l.m.opts.Obs != nil {
		l.observe(now)
	}
}

// observe classifies what the lane spent this cycle doing and extends
// the current state span, closing it into an event when the
// classification changes. Runs after the FSM so a task completed this
// cycle already reads as idle.
func (l *Lane) observe(now sim.Cycle) {
	cause, name := l.classify(now)
	if cause == l.obsCause && name == l.obsName {
		return
	}
	l.obsEmit(now)
	l.obsCause, l.obsName, l.obsSince = cause, name, now
}

// obsEmit closes the current state span at end, if it is non-empty.
func (l *Lane) obsEmit(end sim.Cycle) {
	if end > l.obsSince {
		l.sink.Emit(obs.Event{Cycle: int64(l.obsSince), Dur: int64(end - l.obsSince),
			Kind: obs.KindLaneState, Cause: l.obsCause, Comp: int32(l.id), Name: l.obsName})
	}
}

// obsFlush closes the lane's final state span when the run ends.
func (l *Lane) obsFlush(end sim.Cycle) {
	l.obsEmit(end)
	l.obsSince = end
}

// classify attributes the lane's current cycle to a cause: the stall
// taxonomy when a due firing is blocked, run/config/drain through the
// FSM, and — when idle — the phase-barrier wait whenever the current
// phase has no pending tasks but still-active ones elsewhere.
func (l *Lane) classify(now sim.Cycle) (obs.Cause, string) {
	switch l.state {
	case laneConfig:
		return obs.CauseConfig, l.m.prog.Types[l.cur.typeID].Name
	case laneRunning:
		r := l.cur
		name := l.m.prog.Types[r.typeID].Name
		if l.firing < r.firings {
			if now < l.nextFire {
				return obs.CauseRun, name // pipeline initiating at its II
			}
			in, out, ok := l.fireBlock(r)
			switch {
			case ok:
				return obs.CauseRun, name
			case out:
				return obs.CauseStallOut, name
			default:
				return stallCause(in), name
			}
		}
		return obs.CauseDrain, name
	}
	if l.queue.Empty() {
		c := l.m.coord
		if c.pendingCount[c.phase] == 0 && c.activeCount[c.phase] > 0 {
			return obs.CauseBarrier, ""
		}
	}
	return obs.CauseIdle, ""
}

// stallCause maps a blocking input source kind onto the observability
// stall taxonomy.
func stallCause(k stream.SrcKind) obs.Cause {
	switch k {
	case stream.SrcSpad:
		return obs.CauseStallSpad
	case stream.SrcForward:
		return obs.CauseStallFwd
	case stream.SrcMulticast:
		return obs.CauseStallMcast
	default:
		return obs.CauseStallDRAM
	}
}

// startTask programs the streams and begins configuration if needed.
func (l *Lane) startTask(now sim.Cycle) {
	r := l.cur
	if l.eng.HasAhead() {
		// The queue is FIFO, so an armed prefetch always belongs to
		// the task just popped.
		l.eng.Promote()
	} else {
		for p := 0; p < l.m.cfg.Fabric.NumPorts; p++ {
			l.eng.SetupRead(p, r.inSet[p])
		}
	}
	for p := 0; p < l.m.cfg.Fabric.NumPorts; p++ {
		l.eng.SetupWrite(p, r.outSet[p])
		l.reserved[p] = 0
	}
	l.firing = 0
	l.nextFire = now
	if r.startGate != nil {
		*r.startGate = true // unblock paired producers' forwarding
	}
	l.io.record(trace.Event{
		Cycle: int64(now), Kind: trace.Start, Lane: l.id,
		TaskKey: r.task.Key, TypeName: l.m.prog.Types[r.typeID].Name,
		Phase: r.task.Phase,
	})
	if r.typeID != l.curType {
		l.ConfigStalls++
		l.state = laneConfig
		l.configDone = now + sim.Cycle(l.m.cfg.Fabric.ConfigCycles)
		l.curType = r.typeID
		return
	}
	l.state = laneRunning
}

// run advances the firing pipeline and completion detection.
func (l *Lane) run(now sim.Cycle) {
	r := l.cur
	// Mature productions and spawns.
	for {
		ev, ok := l.prod.Recv(now)
		if !ok {
			break
		}
		l.eng.Produce(ev.port, ev.n)
		l.reserved[ev.port] -= ev.n
	}
	for {
		ev, ok := l.spawnPipe.Recv(now)
		if !ok {
			break
		}
		l.io.spawn(ev.task)
	}

	// Attempt one firing.
	if l.firing < r.firings && now >= l.nextFire {
		if l.canFire(r) {
			l.fire(now, r)
		}
	}

	// Completion: all firings issued, pipeline drained, streams done.
	if l.firing == r.firings && l.prod.Empty() && l.spawnPipe.Empty() && l.eng.Done() {
		l.io.complete(completeEvt{lane: l.id, phase: r.task.Phase, hint: r.hint})
		l.io.record(trace.Event{
			Cycle: int64(now), Kind: trace.Complete, Lane: l.id,
			TaskKey: r.task.Key, TypeName: l.m.prog.Types[r.typeID].Name,
			Phase: r.task.Phase,
		})
		l.TasksRun++
		l.cur = nil
		l.state = laneIdle
	}
}

// fireBlock checks element availability and output space for the next
// firing without touching statistics. ok reports whether the firing can
// proceed; when it cannot, exactly one of out (output-space stall) or
// in (the first blocking input port's source kind) identifies the
// blocker, matching the attribution order canFire has always used.
func (l *Lane) fireBlock(r *resolved) (in stream.SrcKind, out, ok bool) {
	f := l.firing
	for p := 0; p < len(r.inSet); p++ {
		if r.inSet[p].Kind == stream.SrcNone {
			continue
		}
		need := portDelta(r.inN[p], f, r.firings)
		if need > 0 && l.eng.Avail(p) < need {
			return r.inSet[p].Kind, false, false
		}
	}
	for p := 0; p < len(r.outSet); p++ {
		if r.outSet[p].Kind == stream.DstNone {
			continue
		}
		k := portDelta(r.outN[p], f, r.firings)
		if k > 0 && !l.eng.OutSpace(p, l.reserved[p]+k) {
			return 0, true, false
		}
	}
	return 0, false, true
}

// canFire checks the next firing and attributes a failed attempt to the
// blocking port.
func (l *Lane) canFire(r *resolved) bool {
	in, out, ok := l.fireBlock(r)
	if !ok {
		if out {
			l.StallOut++
		} else {
			l.StallIn[in]++
		}
	}
	return ok
}

// fire consumes one firing's inputs and schedules its outputs and
// spawns after the pipeline latency.
func (l *Lane) fire(now sim.Cycle, r *resolved) {
	f := l.firing
	lat := sim.Cycle(r.mapping.Latency)
	for p := 0; p < len(r.inSet); p++ {
		if r.inSet[p].Kind == stream.SrcNone {
			continue
		}
		if need := portDelta(r.inN[p], f, r.firings); need > 0 {
			l.eng.Consume(p, need)
		}
	}
	for p := 0; p < len(r.outSet); p++ {
		if r.outSet[p].Kind == stream.DstNone {
			continue
		}
		if k := portDelta(r.outN[p], f, r.firings); k > 0 {
			l.reserved[p] += k
			l.prod.SendAt(now+lat, prodEvt{port: p, n: k})
		}
	}
	for _, sp := range r.spawns {
		if sp.AtFiring == f {
			l.spawnPipe.SendAt(now+lat, spawnEvt{task: sp.Task})
		}
	}
	l.firing++
	l.nextFire = now + sim.Cycle(r.mapping.II)
	l.FireCycles++
}

// Idle reports lane quiescence for the simulation engine.
func (l *Lane) Idle() bool {
	return l.state == laneIdle && l.queue.Empty() && l.spad.Idle() &&
		l.prod.Empty() && l.spawnPipe.Empty()
}

// NextEvent reports when the lane can next act absent new external
// input: immediately when NoC deliveries wait, the scratchpad or stream
// engine has issuable work, a queued task can be popped or prefetched,
// or an unstalled firing is due; at a timer otherwise (config done,
// production/spawn maturity, deferred firing). A lane stalled on
// unavailable inputs or output space contributes no event — the
// component that will unblock it (mesh, DRAM, scratchpad, consumer
// lane) bounds the horizon, and the per-cycle stall attribution those
// skipped retry cycles would have recorded is replayed by Skip.
func (l *Lane) NextEvent(now sim.Cycle) sim.Cycle {
	if l.m.mesh.Deliverable(l.node) {
		return now
	}
	ev := l.spad.NextEvent(now)
	if ev <= now {
		return now
	}
	if e := l.eng.NextEvent(now); e <= now {
		return now
	} else if e < ev {
		ev = e
	}
	if at := l.prod.NextAt(); at <= now {
		return now
	} else if at < ev {
		ev = at
	}
	if at := l.spawnPipe.NextAt(); at <= now {
		return now
	} else if at < ev {
		ev = at
	}
	// The argument-prefetch datapath arms on the next tick whenever a
	// task is running and another waits unprefetched.
	if l.cur != nil && !l.m.cfg.Task.DisablePrefetch && !l.eng.HasAhead() && !l.queue.Empty() {
		return now
	}
	switch l.state {
	case laneIdle:
		if !l.queue.Empty() {
			return now
		}
	case laneConfig:
		if l.configDone <= now {
			return now
		}
		if l.configDone < ev {
			ev = l.configDone
		}
	case laneRunning:
		if l.firing < l.cur.firings {
			if _, _, ok := l.fireBlock(l.cur); ok {
				if l.nextFire <= now {
					return now
				}
				if l.nextFire < ev {
					ev = l.nextFire
				}
			}
		}
	}
	return ev
}

// Skip replays the per-cycle accounting of skipped cycles [from, to):
// busy-cycle counting whenever the lane holds work, and stall
// attribution for every due-but-blocked firing attempt. The blocking
// port cannot change during a skip (no component ticks, so no input
// arrives), which is what makes the bulk update exact.
func (l *Lane) Skip(from, to sim.Cycle) {
	if l.state != laneIdle || !l.queue.Empty() {
		l.BusyCycles += int64(to - from)
	}
	if l.state == laneRunning && l.firing < l.cur.firings {
		start := l.nextFire
		if start < from {
			start = from
		}
		if start >= to {
			return
		}
		in, out, ok := l.fireBlock(l.cur)
		if ok {
			// The forecast returns nextFire when the firing can
			// proceed, so the engine never skips past it.
			panic("core: lane skipped over a ready firing")
		}
		n := int64(to - start)
		if out {
			l.StallOut += n
		} else {
			l.StallIn[in] += n
		}
	}
}
