package core

import (
	"testing"

	"taskstream/internal/config"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
	"taskstream/internal/stats"
)

// passDFG is the minimal 1-in-1-out graph used by test task types.
func passDFG(name string) *fabric.DFG {
	b := fabric.NewBuilder(name, 1, 1)
	n := b.Add(fabric.OpPass, fabric.InPort(0))
	b.Out(0, n)
	return b.MustBuild()
}

// copyType copies input port 0 to output port 0.
func copyType() *TaskType {
	return &TaskType{
		Name: "copy",
		DFG:  passDFG("copy"),
		Kernel: func(t *Task, in [][]uint64, st *mem.Storage) Result {
			out := append([]uint64(nil), in[0]...)
			return Result{Out: [][]uint64{out}}
		},
	}
}

// addKType adds Scalars[0] to every element.
func addKType() *TaskType {
	return &TaskType{
		Name: "addk",
		DFG:  passDFG("addk"),
		Kernel: func(t *Task, in [][]uint64, st *mem.Storage) Result {
			out := make([]uint64, len(in[0]))
			for i, v := range in[0] {
				out[i] = v + t.Scalars[0]
			}
			return Result{Out: [][]uint64{out}}
		},
	}
}

func testConfig(lanes int) config.Config {
	c := config.Default8()
	c.Lanes = lanes
	return c
}

// buildAndRun constructs a machine and runs it to completion.
func buildAndRun(t *testing.T, cfg config.Config, prog *Program, st *mem.Storage, opts Options) Report {
	t.Helper()
	m, err := NewMachine(cfg, prog, st, opts)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestSingleCopyTask(t *testing.T) {
	st := mem.NewStorage()
	al := mem.NewAllocator()
	src := al.AllocElems(64)
	dst := al.AllocElems(64)
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = uint64(i * 3)
	}
	st.WriteElems(src, vals)
	prog := &Program{
		Name:      "copy1",
		Types:     []*TaskType{copyType()},
		NumPhases: 1,
		Tasks: []Task{{
			Type: 0,
			Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: 64}},
			Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: 64}},
		}},
	}
	rep := buildAndRun(t, testConfig(2), prog, st, Options{})
	got := st.ReadElems(dst, 64)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
	if rep.Cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	if rep.Stats.Get("tasks_run") != 1 {
		t.Fatalf("tasks_run = %d", rep.Stats.Get("tasks_run"))
	}
	// A 64-element copy reads 8 lines and writes 8 lines.
	if rep.Stats.Get("dram_lines_read") != 8 || rep.Stats.Get("dram_lines_written") != 8 {
		t.Fatalf("dram lines = %d read / %d written, want 8/8",
			rep.Stats.Get("dram_lines_read"), rep.Stats.Get("dram_lines_written"))
	}
}

func TestDeterministicCycles(t *testing.T) {
	run := func() int64 {
		st := mem.NewStorage()
		al := mem.NewAllocator()
		var tasks []Task
		for i := 0; i < 10; i++ {
			src := al.AllocElems(100)
			dst := al.AllocElems(100)
			v := make([]uint64, 100)
			for j := range v {
				v[j] = uint64(i*1000 + j)
			}
			st.WriteElems(src, v)
			tasks = append(tasks, Task{
				Type: 0, Key: uint64(i),
				Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: 100}},
				Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: 100}},
			})
		}
		prog := &Program{Name: "det", Types: []*TaskType{copyType()}, NumPhases: 1, Tasks: tasks}
		return buildAndRun(t, testConfig(4), prog, st, Options{}).Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d cycles", a, b)
	}
}

// skewedProgram builds tasks with strongly skewed sizes: one huge task
// and many small ones, the canonical load-balancing scenario.
func skewedProgram(t *testing.T, st *mem.Storage) *Program {
	t.Helper()
	al := mem.NewAllocator()
	sizes := []int{2000}
	for i := 0; i < 15; i++ {
		sizes = append(sizes, 100)
	}
	var tasks []Task
	for i, n := range sizes {
		src := al.AllocElems(n)
		dst := al.AllocElems(n)
		v := make([]uint64, n)
		for j := range v {
			v[j] = uint64(j)
		}
		st.WriteElems(src, v)
		tasks = append(tasks, Task{
			Type: 0, Key: uint64(i), Scalars: []uint64{1},
			Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: n}},
			Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: n}},
		})
	}
	return &Program{Name: "skew", Types: []*TaskType{addKType()}, NumPhases: 1, Tasks: tasks}
}

func TestWorkAwareBeatsStatic(t *testing.T) {
	stA, stB := mem.NewStorage(), mem.NewStorage()
	progA := skewedProgram(t, stA)
	progB := skewedProgram(t, stB)
	cfg := testConfig(4)
	dyn := buildAndRun(t, cfg, progA, stA, Options{Policy: PolicyDynamic})
	stat := buildAndRun(t, cfg.StaticModel(), progB, stB, Options{Policy: PolicyStatic})
	if dyn.Cycles >= stat.Cycles {
		t.Fatalf("work-aware (%d) should beat static (%d) on skewed tasks", dyn.Cycles, stat.Cycles)
	}
	if stats.Imbalance(dyn.LaneBusy) >= stats.Imbalance(stat.LaneBusy) {
		t.Fatalf("imbalance: dynamic %.2f should be < static %.2f",
			stats.Imbalance(dyn.LaneBusy), stats.Imbalance(stat.LaneBusy))
	}
}

func TestStaticAndDynamicSameResults(t *testing.T) {
	stA, stB := mem.NewStorage(), mem.NewStorage()
	progA := skewedProgram(t, stA)
	progB := skewedProgram(t, stB)
	cfg := testConfig(4)
	buildAndRun(t, cfg, progA, stA, Options{Policy: PolicyDynamic})
	buildAndRun(t, cfg.StaticModel(), progB, stB, Options{Policy: PolicyStatic})
	// Output regions must match bit for bit (reuse the allocators'
	// deterministic layout: outputs follow inputs pairwise).
	al := mem.NewAllocator()
	sizes := []int{2000}
	for i := 0; i < 15; i++ {
		sizes = append(sizes, 100)
	}
	for _, n := range sizes {
		al.AllocElems(n) // src
		dst := al.AllocElems(n)
		a := stA.ReadElems(dst, n)
		b := stB.ReadElems(dst, n)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("model divergence at %#x+%d: %d vs %d", dst, i, a[i], b[i])
			}
		}
	}
}

// forwardProgram: phase-0 producer transforms src and forwards to the
// phase-1 consumer, which adds 7 and writes dst.
func forwardProgram(st *mem.Storage, n int) *Program {
	al := mem.NewAllocator()
	src := al.AllocElems(n)
	mid := al.AllocElems(n)
	dst := al.AllocElems(n)
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(i * 2)
	}
	st.WriteElems(src, v)
	const tag = 99
	return &Program{
		Name:      "fwd",
		Types:     []*TaskType{copyType(), addKType()},
		NumPhases: 2,
		Tasks: []Task{
			{
				Type: 0, Phase: 0, Key: 1,
				Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: n}},
				Outs: []OutArg{{Kind: OutForward, Base: mid, N: n, Tag: tag}},
			},
			{
				Type: 1, Phase: 1, Key: 2, Scalars: []uint64{7},
				Ins:  []InArg{{Kind: ArgForwardIn, Base: mid, N: n, Tag: tag}},
				Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: n}},
			},
		},
	}
}

func TestForwardingCorrectAndFaster(t *testing.T) {
	const n = 512
	run := func(enable bool) (Report, []uint64) {
		st := mem.NewStorage()
		prog := forwardProgram(st, n)
		cfg := testConfig(2)
		cfg.Task.EnableForwarding = enable
		rep := buildAndRun(t, cfg, prog, st, Options{})
		// dst is the third allocation.
		al := mem.NewAllocator()
		al.AllocElems(n)
		al.AllocElems(n)
		dst := al.AllocElems(n)
		return rep, st.ReadElems(dst, n)
	}
	on, gotOn := run(true)
	off, gotOff := run(false)
	for i := 0; i < n; i++ {
		want := uint64(i*2 + 7)
		if gotOn[i] != want || gotOff[i] != want {
			t.Fatalf("dst[%d] = %d/%d, want %d", i, gotOn[i], gotOff[i], want)
		}
	}
	if on.Stats.Get("fwd_pairs") != 1 {
		t.Fatalf("fwd_pairs = %d, want 1", on.Stats.Get("fwd_pairs"))
	}
	if off.Stats.Get("fwd_pairs") != 0 {
		t.Fatalf("fwd_pairs (disabled) = %d, want 0", off.Stats.Get("fwd_pairs"))
	}
	if on.Cycles >= off.Cycles {
		t.Fatalf("forwarding (%d cycles) should beat memory round-trip (%d)", on.Cycles, off.Cycles)
	}
	// Forwarding must also cut DRAM traffic: the mid buffer is neither
	// written (timed) nor read back.
	if on.Stats.Get("dram_bytes") >= off.Stats.Get("dram_bytes") {
		t.Fatalf("forwarding should reduce DRAM bytes: %d vs %d",
			on.Stats.Get("dram_bytes"), off.Stats.Get("dram_bytes"))
	}
}

// sharedReadProgram: k tasks each read the same shared table plus a
// private stripe and write a private result.
func sharedReadProgram(st *mem.Storage, k, shared, private int) *Program {
	al := mem.NewAllocator()
	tbl := al.AllocElems(shared)
	tv := make([]uint64, shared)
	for i := range tv {
		tv[i] = uint64(i + 1)
	}
	st.WriteElems(tbl, tv)
	tt := &TaskType{
		Name: "dot",
		DFG:  passDFG("dot"),
		Kernel: func(t *Task, in [][]uint64, st *mem.Storage) Result {
			var sum uint64
			for _, v := range in[0] {
				sum += v
			}
			for _, v := range in[1] {
				sum += v
			}
			return Result{Out: [][]uint64{nil, nil, {sum}}}
		},
	}
	var tasks []Task
	for i := 0; i < k; i++ {
		priv := al.AllocElems(private)
		pv := make([]uint64, private)
		for j := range pv {
			pv[j] = uint64(i*j + 1)
		}
		st.WriteElems(priv, pv)
		res := al.AllocElems(1)
		tasks = append(tasks, Task{
			Type: 0, Key: uint64(i),
			Ins: []InArg{
				{Kind: ArgDRAMLinear, Base: tbl, N: shared, Shared: true},
				{Kind: ArgDRAMLinear, Base: priv, N: private},
			},
			Outs: []OutArg{{}, {}, {Kind: OutDRAMLinear, Base: res, N: 1}},
		})
	}
	return &Program{Name: "shared", Types: []*TaskType{tt}, NumPhases: 1, Tasks: tasks}
}

func TestMulticastReducesDRAMTraffic(t *testing.T) {
	const k, shared, private = 8, 1024, 64
	run := func(enable bool) Report {
		st := mem.NewStorage()
		prog := sharedReadProgram(st, k, shared, private)
		cfg := testConfig(8)
		cfg.Task.EnableMulticast = enable
		return buildAndRun(t, cfg, prog, st, Options{})
	}
	on := run(true)
	off := run(false)
	if on.Stats.Get("mcast_groups") == 0 {
		t.Fatal("no multicast groups formed")
	}
	if on.Stats.Get("dram_lines_read") >= off.Stats.Get("dram_lines_read") {
		t.Fatalf("multicast should cut DRAM reads: %d vs %d",
			on.Stats.Get("dram_lines_read"), off.Stats.Get("dram_lines_read"))
	}
	if on.Cycles >= off.Cycles {
		t.Fatalf("multicast (%d cycles) should beat unicast (%d)", on.Cycles, off.Cycles)
	}
}

func TestMulticastSameResults(t *testing.T) {
	const k, shared, private = 4, 256, 32
	results := func(enable bool) []uint64 {
		st := mem.NewStorage()
		prog := sharedReadProgram(st, k, shared, private)
		cfg := testConfig(4)
		cfg.Task.EnableMulticast = enable
		buildAndRun(t, cfg, prog, st, Options{})
		al := mem.NewAllocator()
		al.AllocElems(shared)
		var out []uint64
		for i := 0; i < k; i++ {
			al.AllocElems(private)
			res := al.AllocElems(1)
			out = append(out, st.Read8(res))
		}
		return out
	}
	a, b := results(true), results(false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// spawnProgram: a parent task spawns one child per 16-element block of
// its input; children negate their block into dst (phase 1).
func spawnProgram(st *mem.Storage, blocks int) *Program {
	al := mem.NewAllocator()
	n := blocks * 16
	src := al.AllocElems(n)
	dst := al.AllocElems(n)
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(i + 10)
	}
	st.WriteElems(v0(src), v)
	parent := &TaskType{
		Name: "parent",
		DFG:  passDFG("parent"),
		Kernel: func(t *Task, in [][]uint64, st *mem.Storage) Result {
			var spawns []Spawn
			for b := 0; b < len(in[0])/16; b++ {
				spawns = append(spawns, Spawn{
					AtFiring: b,
					Task: Task{
						Type: 1, Phase: 1, Key: uint64(b),
						Scalars: []uint64{5},
						Ins:     []InArg{{Kind: ArgDRAMLinear, Base: src + mem.Addr(b*16*8), N: 16}},
						Outs:    []OutArg{{Kind: OutDRAMLinear, Base: dst + mem.Addr(b*16*8), N: 16}},
					},
				})
			}
			return Result{Out: [][]uint64{in[0]}, Spawns: spawns}
		},
	}
	mid := al.AllocElems(n)
	_ = mid
	tasks := []Task{{
		Type: 0, Phase: 0,
		Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: n}},
		Outs: []OutArg{{Kind: OutDiscard, N: n}},
	}}
	return &Program{Name: "spawn", Types: []*TaskType{parent, addKType()}, NumPhases: 2, Tasks: tasks}
}

func v0(a mem.Addr) mem.Addr { return a }

func TestSpawnedTasksRun(t *testing.T) {
	const blocks = 6
	st := mem.NewStorage()
	prog := spawnProgram(st, blocks)
	rep := buildAndRun(t, testConfig(4), prog, st, Options{})
	if rep.Stats.Get("tasks_spawned") != blocks {
		t.Fatalf("tasks_spawned = %d, want %d", rep.Stats.Get("tasks_spawned"), blocks)
	}
	if rep.Stats.Get("tasks_run") != blocks+1 {
		t.Fatalf("tasks_run = %d, want %d", rep.Stats.Get("tasks_run"), blocks+1)
	}
	al := mem.NewAllocator()
	n := blocks * 16
	al.AllocElems(n)
	dst := al.AllocElems(n)
	got := st.ReadElems(dst, n)
	for i := range got {
		if got[i] != uint64(i+10+5) {
			t.Fatalf("dst[%d] = %d, want %d", i, got[i], i+15)
		}
	}
}

func TestSpawnStaticModeBarriers(t *testing.T) {
	// Spawns also work under the static model: children are collected
	// and partitioned at the phase barrier.
	const blocks = 6
	st := mem.NewStorage()
	prog := spawnProgram(st, blocks)
	rep := buildAndRun(t, testConfig(4).StaticModel(), prog, st, Options{Policy: PolicyStatic})
	if rep.Stats.Get("tasks_run") != blocks+1 {
		t.Fatalf("tasks_run = %d, want %d", rep.Stats.Get("tasks_run"), blocks+1)
	}
}

func TestHintModes(t *testing.T) {
	for _, h := range []HintMode{HintExact, HintNone, HintNoisy} {
		st := mem.NewStorage()
		prog := skewedProgram(t, st)
		rep := buildAndRun(t, testConfig(4), prog, st, Options{Hints: h})
		if rep.Stats.Get("tasks_run") != 16 {
			t.Fatalf("hint mode %d: tasks_run = %d", h, rep.Stats.Get("tasks_run"))
		}
	}
}

func TestGatherTask(t *testing.T) {
	st := mem.NewStorage()
	al := mem.NewAllocator()
	const n = 128
	table := al.AllocElems(1024)
	for i := 0; i < 1024; i++ {
		st.Write8(table+mem.Addr(i*8), uint64(i*i))
	}
	idx := al.AllocElems(n)
	for i := 0; i < n; i++ {
		st.Write8(idx+mem.Addr(i*8), uint64((i*37)%1024))
	}
	dst := al.AllocElems(n)
	prog := &Program{
		Name:      "gather",
		Types:     []*TaskType{copyType()},
		NumPhases: 1,
		Tasks: []Task{{
			Type: 0,
			Ins:  []InArg{{Kind: ArgDRAMGather, Base: table, IdxBase: idx, N: n}},
			Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: n}},
		}},
	}
	buildAndRun(t, testConfig(2), prog, st, Options{})
	for i := 0; i < n; i++ {
		want := uint64((i * 37) % 1024)
		want = want * want
		if got := st.Read8(dst + mem.Addr(i*8)); got != want {
			t.Fatalf("dst[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	st := mem.NewStorage()
	bad := []*Program{
		{Name: "no-types", NumPhases: 1},
		{Name: "no-phase", Types: []*TaskType{copyType()}},
		{Name: "bad-task", Types: []*TaskType{copyType()}, NumPhases: 1,
			Tasks: []Task{{Type: 5}}},
		{Name: "bad-shared", Types: []*TaskType{copyType()}, NumPhases: 1,
			Tasks: []Task{{Type: 0, Ins: []InArg{{Kind: ArgDRAMGather, Base: 64, IdxBase: 64, N: 1, Shared: true}}}}},
	}
	for _, p := range bad {
		if _, err := NewMachine(testConfig(2), p, st, Options{}); err == nil {
			t.Errorf("program %q: want error", p.Name)
		}
	}
}

func TestScalingReducesCycles(t *testing.T) {
	mk := func() (*mem.Storage, *Program) {
		st := mem.NewStorage()
		al := mem.NewAllocator()
		var tasks []Task
		for i := 0; i < 32; i++ {
			src := al.AllocElems(200)
			dst := al.AllocElems(200)
			v := make([]uint64, 200)
			for j := range v {
				v[j] = uint64(j)
			}
			st.WriteElems(src, v)
			tasks = append(tasks, Task{
				Type: 0, Key: uint64(i), Scalars: []uint64{1},
				Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: 200}},
				Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: 200}},
			})
		}
		return st, &Program{Name: "scale", Types: []*TaskType{addKType()}, NumPhases: 1, Tasks: tasks}
	}
	st1, p1 := mk()
	st4, p4 := mk()
	one := buildAndRun(t, testConfig(1), p1, st1, Options{})
	four := buildAndRun(t, testConfig(4), p4, st4, Options{})
	if four.Cycles >= one.Cycles {
		t.Fatalf("4 lanes (%d cycles) should beat 1 lane (%d)", four.Cycles, one.Cycles)
	}
}
