package core

import (
	"testing"

	"taskstream/internal/mem"
)

// twoProducerProgram builds a merge-style consumer fed by two tagged
// producers — the multi-producer forward group (sort's tree node shape).
func twoProducerProgram(st *mem.Storage, n int) (*Program, mem.Addr) {
	al := mem.NewAllocator()
	srcA := al.AllocElems(n)
	srcB := al.AllocElems(n)
	midA := al.AllocElems(n)
	midB := al.AllocElems(n)
	dst := al.AllocElems(2 * n)
	for i := 0; i < n; i++ {
		st.Write8(srcA+mem.Addr(i*8), uint64(i*2))
		st.Write8(srcB+mem.Addr(i*8), uint64(i*2+1))
	}
	merge := &TaskType{
		Name: "merge2",
		DFG:  passDFG("merge2"),
		Kernel: func(t *Task, in [][]uint64, s *mem.Storage) Result {
			out := make([]uint64, 0, len(in[0])+len(in[1]))
			i, j := 0, 0
			for i < len(in[0]) && j < len(in[1]) {
				if in[0][i] <= in[1][j] {
					out = append(out, in[0][i])
					i++
				} else {
					out = append(out, in[1][j])
					j++
				}
			}
			out = append(out, in[0][i:]...)
			out = append(out, in[1][j:]...)
			return Result{Out: [][]uint64{nil, nil, out}}
		},
	}
	prog := &Program{
		Name:      "fwd2",
		Types:     []*TaskType{copyType(), merge},
		NumPhases: 2,
		Tasks: []Task{
			{Type: 0, Phase: 0, Key: 1,
				Ins:  []InArg{{Kind: ArgDRAMLinear, Base: srcA, N: n}},
				Outs: []OutArg{{Kind: OutForward, Base: midA, N: n, Tag: 11}}},
			{Type: 0, Phase: 0, Key: 2,
				Ins:  []InArg{{Kind: ArgDRAMLinear, Base: srcB, N: n}},
				Outs: []OutArg{{Kind: OutForward, Base: midB, N: n, Tag: 12}}},
			{Type: 1, Phase: 1, Key: 3,
				Ins: []InArg{
					{Kind: ArgForwardIn, Base: midA, N: n, Tag: 11},
					{Kind: ArgForwardIn, Base: midB, N: n, Tag: 12},
				},
				Outs: []OutArg{{}, {}, {Kind: OutDRAMLinear, Base: dst, N: 2 * n}}},
		},
	}
	return prog, dst
}

func TestTwoProducerForwardGroup(t *testing.T) {
	const n = 256
	st := mem.NewStorage()
	prog, dst := twoProducerProgram(st, n)
	rep := buildAndRun(t, testConfig(4), prog, st, Options{})
	// Both producers must have paired (2 forward edges).
	if got := rep.Stats.Get("fwd_pairs"); got != 2 {
		t.Fatalf("fwd_pairs = %d, want 2", got)
	}
	// Result: interleaved merge of evens and odds = 0..2n-1.
	for i := 0; i < 2*n; i++ {
		if got := st.Read8(dst + mem.Addr(i*8)); got != uint64(i) {
			t.Fatalf("dst[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestForwardGroupNeedsThreeLanes(t *testing.T) {
	// With only 2 lanes the 2-producer group cannot form: the run must
	// fall back to memory and still be correct.
	const n = 64
	st := mem.NewStorage()
	prog, dst := twoProducerProgram(st, n)
	rep := buildAndRun(t, testConfig(2), prog, st, Options{})
	if got := rep.Stats.Get("fwd_pairs"); got != 0 {
		t.Fatalf("fwd_pairs = %d, want 0 (not enough lanes)", got)
	}
	for i := 0; i < 2*n; i++ {
		if got := st.Read8(dst + mem.Addr(i*8)); got != uint64(i) {
			t.Fatalf("fallback dst[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestForwardGroupFasterThanFallback(t *testing.T) {
	const n = 2048
	stA, stB := mem.NewStorage(), mem.NewStorage()
	progA, _ := twoProducerProgram(stA, n)
	progB, _ := twoProducerProgram(stB, n)
	cfgOn := testConfig(4)
	cfgOff := testConfig(4)
	cfgOff.Task.EnableForwarding = false
	on := buildAndRun(t, cfgOn, progA, stA, Options{})
	off := buildAndRun(t, cfgOff, progB, stB, Options{})
	if on.Cycles >= off.Cycles {
		t.Fatalf("forward group (%d) should beat memory round trip (%d)", on.Cycles, off.Cycles)
	}
}

func TestForwardConsumerAcrossManyPhases(t *testing.T) {
	// A producer in phase 0 whose consumer sits in phase 2: the pair
	// still forms, skipping the intermediate phase barrier.
	const n = 128
	st := mem.NewStorage()
	al := mem.NewAllocator()
	src := al.AllocElems(n)
	mid := al.AllocElems(n)
	other := al.AllocElems(n)
	otherDst := al.AllocElems(n)
	dst := al.AllocElems(n)
	for i := 0; i < n; i++ {
		st.Write8(src+mem.Addr(i*8), uint64(i))
		st.Write8(other+mem.Addr(i*8), uint64(i+1000))
	}
	prog := &Program{
		Name:      "span-phase",
		Types:     []*TaskType{copyType()},
		NumPhases: 3,
		Tasks: []Task{
			{Type: 0, Phase: 0, Key: 1,
				Ins:  []InArg{{Kind: ArgDRAMLinear, Base: src, N: n}},
				Outs: []OutArg{{Kind: OutForward, Base: mid, N: n, Tag: 7}}},
			{Type: 0, Phase: 1, Key: 2,
				Ins:  []InArg{{Kind: ArgDRAMLinear, Base: other, N: n}},
				Outs: []OutArg{{Kind: OutDRAMLinear, Base: otherDst, N: n}}},
			{Type: 0, Phase: 2, Key: 3,
				Ins:  []InArg{{Kind: ArgForwardIn, Base: mid, N: n, Tag: 7}},
				Outs: []OutArg{{Kind: OutDRAMLinear, Base: dst, N: n}}},
		},
	}
	rep := buildAndRun(t, testConfig(4), prog, st, Options{})
	if rep.Stats.Get("fwd_pairs") != 1 {
		t.Fatalf("fwd_pairs = %d, want 1", rep.Stats.Get("fwd_pairs"))
	}
	for i := 0; i < n; i++ {
		if got := st.Read8(dst + mem.Addr(i*8)); got != uint64(i) {
			t.Fatalf("dst[%d] = %d", i, got)
		}
	}
}

func TestStaticModeIgnoresForwardTags(t *testing.T) {
	const n = 64
	st := mem.NewStorage()
	prog, dst := twoProducerProgram(st, n)
	rep := buildAndRun(t, testConfig(4).StaticModel(), prog, st, Options{Policy: PolicyStatic})
	if rep.Stats.Get("fwd_pairs") != 0 || rep.Stats.Get("fwd_elems") != 0 {
		t.Fatal("static model must not forward")
	}
	for i := 0; i < 2*n; i++ {
		if got := st.Read8(dst + mem.Addr(i*8)); got != uint64(i) {
			t.Fatalf("static dst[%d] = %d", i, got)
		}
	}
}

func TestMulticastWindowZeroStillCorrect(t *testing.T) {
	cfg := testConfig(4)
	cfg.Task.CoalesceWindowCycles = 0
	st := mem.NewStorage()
	prog := sharedReadProgram(st, 6, 128, 32)
	rep := buildAndRun(t, cfg, prog, st, Options{})
	if rep.Stats.Get("tasks_run") != 6 {
		t.Fatalf("tasks_run = %d", rep.Stats.Get("tasks_run"))
	}
}
