package core

import (
	"fmt"

	"taskstream/internal/fabric"
	"taskstream/internal/mem"
	"taskstream/internal/stream"
)

// resolved is a dispatched task: the kernel has been evaluated (the
// functional half) and every port has a stream setup (the timing half).
type resolved struct {
	task    Task
	typeID  int
	mapping fabric.Mapping
	firings int
	inSet   []stream.ReadSetup
	outSet  []stream.WriteSetup
	inN     []int
	outN    []int
	spawns  []Spawn
	hint    int64
	lane    int
	// startGate, when non-nil, is opened when this task starts on its
	// lane; paired producers ship forwarded elements only after that.
	startGate *bool
}

// resolveOpts carry the coordinator's forwarding decisions into
// resolution.
type resolveOpts struct {
	// fwdOutTag selects which OutForward tag actually forwards over
	// the NoC this dispatch (0: all fall back to memory).
	fwdOutTag uint64
	// fwdInTags lists the ArgForwardIn tags delivered by co-dispatched
	// producers (others read the memory fallback).
	fwdInTags map[uint64]bool
	// gate is the shared consumer-started gate for this forward group.
	gate *bool
}

// resolveInputs produces the kernel's input value streams and remembers
// gather index values for the timing setup.
func (m *Machine) resolveInputs(t *Task) (vals [][]uint64, idxs [][]uint64, err error) {
	vals = make([][]uint64, len(t.Ins))
	idxs = make([][]uint64, len(t.Ins))
	for p, in := range t.Ins {
		switch in.Kind {
		case ArgNone, ArgConst:
			// Kernels read constants from the arg itself.
		case ArgDRAMLinear, ArgSpadLinear:
			vals[p] = m.storage.ReadElems(in.Base, in.N)
		case ArgDRAMAffine:
			vs := make([]uint64, 0, in.N)
			for r := 0; r < in.Rows; r++ {
				base := in.Base + mem.Addr(r*in.Pitch*mem.ElemBytes)
				vs = append(vs, m.storage.ReadElems(base, in.RowLen)...)
			}
			vals[p] = vs
		case ArgDRAMGather, ArgSpadGather:
			ix := m.storage.ReadElems(in.IdxBase, in.N)
			idxs[p] = ix
			vs := make([]uint64, in.N)
			for i, v := range ix {
				vs[i] = m.storage.Read8(in.Base + mem.Addr(v*mem.ElemBytes))
			}
			vals[p] = vs
		case ArgForwardIn:
			data, ok := m.tagData[in.Tag]
			if !ok {
				return nil, nil, fmt.Errorf("core: tag %d consumed before production", in.Tag)
			}
			vals[p] = data
		default:
			return nil, nil, fmt.Errorf("core: unknown ArgKind %d", in.Kind)
		}
	}
	return vals, idxs, nil
}

// resolve evaluates the task's kernel and builds its stream setups.
// The forwarding destination of OutForward ports is patched later by
// the coordinator once the consumer's lane is known.
func (m *Machine) resolve(t Task, lane int, opts resolveOpts) (*resolved, error) {
	tt := m.prog.Types[t.Type]
	inVals, idxVals, err := m.resolveInputs(&t)
	if err != nil {
		return nil, err
	}
	res := tt.Kernel(&t, inVals, m.storage)

	r := &resolved{
		task:    t,
		typeID:  t.Type,
		mapping: m.mappings[t.Type],
		inSet:   make([]stream.ReadSetup, m.cfg.Fabric.NumPorts),
		outSet:  make([]stream.WriteSetup, m.cfg.Fabric.NumPorts),
		inN:     make([]int, m.cfg.Fabric.NumPorts),
		outN:    make([]int, m.cfg.Fabric.NumPorts),
		spawns:  res.Spawns,
		lane:    lane,
	}
	r.hint = m.effectiveHint(&t)

	if len(t.Ins) > m.cfg.Fabric.NumPorts || len(t.Outs) > m.cfg.Fabric.NumPorts {
		return nil, fmt.Errorf("core: task type %s uses more ports than the fabric has", tt.Name)
	}

	for p, in := range t.Ins {
		switch in.Kind {
		case ArgNone:
		case ArgConst:
			r.inSet[p] = stream.ReadSetup{Kind: stream.SrcConst, N: 1}
			r.inN[p] = 1
		case ArgDRAMLinear, ArgDRAMAffine:
			var addrs []mem.Addr
			if in.Kind == ArgDRAMLinear {
				addrs = stream.LinearAddrs(in.Base, in.N)
			} else {
				addrs = stream.Affine2DAddrs(in.Base, in.Rows, in.RowLen, in.Pitch)
			}
			setup := stream.ReadSetup{Kind: stream.SrcDRAM, N: in.N, Addrs: addrs}
			if in.Shared && m.cfg.Task.EnableMulticast && in.Kind == ArgDRAMLinear {
				// Join or open a multicast group for this range.
				g := m.mcast.join(in.Base, in.N, m.lanes[lane].node, m.now)
				setup = stream.ReadSetup{
					Kind:     stream.SrcMulticast,
					N:        in.N,
					Group:    g.id,
					Lines:    g.lines,
					HeadSkip: g.headSkip,
				}
				m.set.Add("mcast_joins", 1)
			}
			r.inSet[p] = setup
			r.inN[p] = in.N
		case ArgDRAMGather:
			r.inSet[p] = stream.ReadSetup{
				Kind:     stream.SrcDRAM,
				N:        in.N,
				Addrs:    stream.GatherAddrs(in.Base, idxVals[p]),
				IdxAddrs: stream.LinearAddrs(in.IdxBase, in.N),
			}
			r.inN[p] = in.N
		case ArgSpadLinear:
			r.inSet[p] = stream.ReadSetup{Kind: stream.SrcSpad, N: in.N,
				Addrs: stream.LinearAddrs(in.Base, in.N)}
			r.inN[p] = in.N
		case ArgSpadGather:
			r.inSet[p] = stream.ReadSetup{Kind: stream.SrcSpad, N: in.N,
				Addrs: stream.GatherAddrs(in.Base, idxVals[p])}
			r.inN[p] = in.N
		case ArgForwardIn:
			n := len(inVals[p])
			if opts.fwdInTags[in.Tag] {
				r.inSet[p] = stream.ReadSetup{Kind: stream.SrcForward, N: n}
				r.startGate = opts.gate
			} else {
				// Memory-mediated dependence: read the fallback region
				// the producer wrote.
				r.inSet[p] = stream.ReadSetup{Kind: stream.SrcDRAM, N: n,
					Addrs: stream.LinearAddrs(in.Base, n)}
			}
			r.inN[p] = n
		}
	}

	for p, o := range t.Outs {
		var outVals []uint64
		if p < len(res.Out) {
			outVals = res.Out[p]
		}
		n := len(outVals)
		if o.N >= 0 && o.Kind != OutNone && n != o.N {
			return nil, fmt.Errorf("core: task type %s out port %d produced %d elements, declared %d",
				tt.Name, p, n, o.N)
		}
		switch o.Kind {
		case OutNone:
		case OutDiscard:
			r.outSet[p] = stream.WriteSetup{Kind: stream.DstDiscard, N: n}
			r.outN[p] = n
		case OutDRAMLinear:
			m.storage.WriteElems(o.Base, outVals)
			r.outSet[p] = stream.WriteSetup{Kind: stream.DstDRAM, N: n,
				Addrs: stream.LinearAddrs(o.Base, n)}
			r.outN[p] = n
		case OutSpadLinear:
			m.storage.WriteElems(o.Base, outVals)
			r.outSet[p] = stream.WriteSetup{Kind: stream.DstSpad, N: n,
				Addrs: stream.LinearAddrs(o.Base, n)}
			r.outN[p] = n
		case OutForward:
			// Values are retained for the consumer's resolution and
			// also written to the memory fallback so that both
			// execution models compute identical state.
			m.tagData[o.Tag] = outVals
			m.storage.WriteElems(o.Base, outVals)
			if o.Tag == opts.fwdOutTag && opts.fwdOutTag != 0 {
				// ConsumerLane/Port are patched by the coordinator.
				m.tagForwarded[o.Tag] = true
				r.outSet[p] = stream.WriteSetup{Kind: stream.DstForward, N: n,
					ConsumerLane: -1, ConsumerPort: -1, Gate: opts.gate}
			} else {
				r.outSet[p] = stream.WriteSetup{Kind: stream.DstDRAM, N: n,
					Addrs: stream.LinearAddrs(o.Base, n)}
			}
			r.outN[p] = n
		}
	}

	// Firing count: the longest port stream at PortWidth elements per
	// firing. Constants dwell and do not gate.
	pw := m.cfg.Fabric.PortWidth
	f := 1
	for p := range r.inSet {
		if r.inSet[p].Kind == stream.SrcConst || r.inSet[p].Kind == stream.SrcNone {
			continue
		}
		if k := (r.inN[p] + pw - 1) / pw; k > f {
			f = k
		}
	}
	for p := range r.outSet {
		if r.outSet[p].Kind == stream.DstNone {
			continue
		}
		if k := (r.outN[p] + pw - 1) / pw; k > f {
			f = k
		}
	}
	r.firings = f
	// Clamp spawn stamps into the firing range so every spawn is
	// emitted before the task completes.
	for i := range r.spawns {
		if r.spawns[i].AtFiring >= f {
			r.spawns[i].AtFiring = f - 1
		}
		if r.spawns[i].AtFiring < 0 {
			r.spawns[i].AtFiring = 0
		}
	}
	return r, nil
}

// portDelta returns how many elements of an N-element stream belong to
// firing f out of F (proportional progress: cumulative floor((f+1)N/F)).
func portDelta(n, f, total int) int {
	if total <= 0 {
		return 0
	}
	return (f+1)*n/total - f*n/total
}
