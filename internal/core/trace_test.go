package core

import (
	"strings"
	"testing"

	"taskstream/internal/mem"
	"taskstream/internal/trace"
)

func TestTraceIntegration(t *testing.T) {
	st := mem.NewStorage()
	prog := skewedProgram(t, st)
	rec := trace.New(0)
	m, err := NewMachine(testConfig(4), prog, st, Options{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every task contributes exactly three events.
	want := int(rep.Stats.Get("tasks_run")) * 3
	if rec.Len() != want {
		t.Fatalf("trace has %d events, want %d", rec.Len(), want)
	}
	spans := rec.Spans()
	if len(spans) != int(rep.Stats.Get("tasks_run")) {
		t.Fatalf("spans = %d, want %d", len(spans), rep.Stats.Get("tasks_run"))
	}
	for _, sp := range spans {
		if sp.Started < sp.Dispatched || sp.Completed <= sp.Started {
			t.Fatalf("span out of order: %+v", sp)
		}
		if sp.Completed > rep.Cycles {
			t.Fatalf("span beyond run end: %+v", sp)
		}
		if sp.TypeName != "addk" {
			t.Fatalf("unexpected type %q", sp.TypeName)
		}
	}
	tl := rec.Timeline(4, 60)
	if !strings.Contains(tl, "A = addk") {
		t.Fatalf("timeline legend missing:\n%s", tl)
	}
}

func TestTraceOffByDefault(t *testing.T) {
	st := mem.NewStorage()
	prog := skewedProgram(t, st)
	m, err := NewMachine(testConfig(2), prog, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err) // nil recorder must be harmless end to end
	}
}
