package core_test

import (
	"fmt"

	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
)

// Example runs a two-task program — a doubling task forwarding its
// stream to an adding task — on a 2-lane Delta machine, and prints the
// verified results. This is the minimal end-to-end use of the
// TaskStream API.
func Example() {
	// Task type: double every element.
	b := fabric.NewBuilder("double", 1, 1)
	b.Out(0, b.Add(fabric.OpAdd, fabric.InPort(0), fabric.InPort(0)))
	double := &core.TaskType{
		Name: "double", DFG: b.MustBuild(),
		Kernel: func(t *core.Task, in [][]uint64, st *mem.Storage) core.Result {
			out := make([]uint64, len(in[0]))
			for i, v := range in[0] {
				out[i] = 2 * v
			}
			return core.Result{Out: [][]uint64{out}}
		},
	}
	// Task type: add ten.
	b2 := fabric.NewBuilder("add10", 1, 1)
	b2.Out(0, b2.Add(fabric.OpPass, fabric.InPort(0)))
	add10 := &core.TaskType{
		Name: "add10", DFG: b2.MustBuild(),
		Kernel: func(t *core.Task, in [][]uint64, st *mem.Storage) core.Result {
			out := make([]uint64, len(in[0]))
			for i, v := range in[0] {
				out[i] = v + 10
			}
			return core.Result{Out: [][]uint64{out}}
		},
	}

	st := mem.NewStorage()
	al := mem.NewAllocator()
	src := al.AllocElems(4)
	mid := al.AllocElems(4)
	dst := al.AllocElems(4)
	st.WriteElems(src, []uint64{1, 2, 3, 4})

	prog := &core.Program{
		Name:      "example",
		Types:     []*core.TaskType{double, add10},
		NumPhases: 2,
		Tasks: []core.Task{
			{Type: 0, Phase: 0,
				Ins:  []core.InArg{{Kind: core.ArgDRAMLinear, Base: src, N: 4}},
				Outs: []core.OutArg{{Kind: core.OutForward, Base: mid, N: 4, Tag: 1}}},
			{Type: 1, Phase: 1,
				Ins:  []core.InArg{{Kind: core.ArgForwardIn, Base: mid, N: 4, Tag: 1}},
				Outs: []core.OutArg{{Kind: core.OutDRAMLinear, Base: dst, N: 4}}},
		},
	}

	m, err := core.NewMachine(config.Default8().WithLanes(2), prog, st, core.Options{})
	if err != nil {
		panic(err)
	}
	if _, err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Println(st.ReadElems(dst, 4))
	// Output: [12 14 16 18]
}
