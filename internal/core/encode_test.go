package core

import (
	"bytes"
	"testing"

	"taskstream/internal/stats"
)

func sampleReport() Report {
	set := stats.NewSet()
	set.Add("tasks_run", 42)
	set.Add("dram_bytes", 1<<20)
	set.Add("noc_flit_cycles", 7)
	return Report{Cycles: 123456, LaneBusy: []int64{10, 20, 30, 0}, Stats: set}
}

func TestEncodeReportRoundTrip(t *testing.T) {
	r := sampleReport()
	b, err := EncodeReport(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != r.Cycles {
		t.Fatalf("cycles %d != %d", got.Cycles, r.Cycles)
	}
	if len(got.LaneBusy) != len(r.LaneBusy) {
		t.Fatalf("lane busy %v != %v", got.LaneBusy, r.LaneBusy)
	}
	for i := range r.LaneBusy {
		if got.LaneBusy[i] != r.LaneBusy[i] {
			t.Fatalf("lane busy %v != %v", got.LaneBusy, r.LaneBusy)
		}
	}
	// Counter order must survive — it is part of the byte-identity
	// contract for rendered tables.
	wantNames := r.Stats.Names()
	gotNames := got.Stats.Names()
	if len(gotNames) != len(wantNames) {
		t.Fatalf("stats names %v != %v", gotNames, wantNames)
	}
	for i := range wantNames {
		if gotNames[i] != wantNames[i] || got.Stats.Get(gotNames[i]) != r.Stats.Get(wantNames[i]) {
			t.Fatalf("stats mismatch at %d: %v vs %v", i, gotNames, wantNames)
		}
	}
}

func TestEncodeReportDeterministic(t *testing.T) {
	r := sampleReport()
	a, err := EncodeReport(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeReport(r.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding a report and its clone differ:\n%s\n%s", a, b)
	}
	// And a decode→re-encode cycle is byte-stable, which is what the
	// disk store's integrity re-hash relies on.
	dec, err := DecodeReport(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := EncodeReport(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("decode→encode not byte-stable:\n%s\n%s", a, c)
	}
}

func TestEncodeReportNilStats(t *testing.T) {
	b, err := EncodeReport(Report{Cycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != nil {
		t.Fatalf("nil stats decoded as %v", got.Stats)
	}
}
