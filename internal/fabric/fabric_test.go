package fabric

import (
	"testing"
	"testing/quick"
)

// macDFG builds out = acc(a*b): the spmv/gemm inner-product pipeline.
func macDFG() *DFG {
	b := NewBuilder("mac", 2, 1)
	m := b.Add(OpMul, InPort(0), InPort(1))
	s := b.Add(OpAcc, m)
	b.Out(0, s)
	return b.MustBuild()
}

func TestBuilderAndValidate(t *testing.T) {
	g := macDFG()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 || g.NumIn != 2 || g.NumOut != 1 {
		t.Fatalf("unexpected shape: %+v", g)
	}
}

func TestValidateRejectsForwardRef(t *testing.T) {
	g := &DFG{Name: "bad", NumIn: 1, NumOut: 1,
		Nodes:  []Node{{Op: OpPass, In: []PortRef{1}}, {Op: OpPass, In: []PortRef{InPort(0)}}},
		OutSrc: []PortRef{0},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("forward reference must be rejected")
	}
}

func TestValidateRejectsBadArity(t *testing.T) {
	g := &DFG{Name: "bad", NumIn: 1, NumOut: 1,
		Nodes:  []Node{{Op: OpAdd, In: []PortRef{InPort(0)}}},
		OutSrc: []PortRef{0},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("wrong arity must be rejected")
	}
}

func TestValidateRejectsBadPort(t *testing.T) {
	g := &DFG{Name: "bad", NumIn: 1, NumOut: 1,
		Nodes:  []Node{{Op: OpPass, In: []PortRef{InPort(3)}}},
		OutSrc: []PortRef{0},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range port must be rejected")
	}
}

func TestEvalMac(t *testing.T) {
	g := macDFG()
	out, err := g.Eval([][]uint64{{1, 2, 3}, {10, 20, 30}})
	if err != nil {
		t.Fatal(err)
	}
	// Running accumulation: 10, 50, 140.
	want := []uint64{10, 50, 140}
	for i := range want {
		if out[0][i] != want[i] {
			t.Fatalf("out = %v, want %v", out[0], want)
		}
	}
}

func TestEvalScalarExtension(t *testing.T) {
	// A one-element port dwells: out = a + scalar.
	b := NewBuilder("addk", 2, 1)
	s := b.Add(OpAdd, InPort(0), InPort(1))
	b.Out(0, s)
	g := b.MustBuild()
	out, _ := g.Eval([][]uint64{{1, 2, 3}, {100}})
	want := []uint64{101, 102, 103}
	for i := range want {
		if out[0][i] != want[i] {
			t.Fatalf("out = %v, want %v", out[0], want)
		}
	}
}

func TestEvalOps(t *testing.T) {
	mk := func(op OpKind, ins ...PortRef) *DFG {
		b := NewBuilder("t", len(ins), 1)
		n := b.Add(op, ins...)
		b.Out(0, n)
		return b.MustBuild()
	}
	two := []PortRef{InPort(0), InPort(1)}
	cases := []struct {
		op   OpKind
		in   [][]uint64
		want uint64
	}{
		{OpAdd, [][]uint64{{3}, {4}}, 7},
		{OpSub, [][]uint64{{10}, {4}}, 6},
		{OpMul, [][]uint64{{3}, {4}}, 12},
		{OpAnd, [][]uint64{{0b1100}, {0b1010}}, 0b1000},
		{OpOr, [][]uint64{{0b1100}, {0b1010}}, 0b1110},
		{OpXor, [][]uint64{{0b1100}, {0b1010}}, 0b0110},
		{OpShl, [][]uint64{{1}, {4}}, 16},
		{OpShr, [][]uint64{{16}, {4}}, 1},
		{OpMin, [][]uint64{{9}, {4}}, 4},
		{OpMax, [][]uint64{{9}, {4}}, 9},
		{OpCmpLT, [][]uint64{{3}, {4}}, 1},
		{OpCmpEQ, [][]uint64{{3}, {4}}, 0},
	}
	for _, c := range cases {
		g := mk(c.op, two...)
		out, err := g.Eval(c.in)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if out[0][0] != c.want {
			t.Errorf("%v = %d, want %d", c.op, out[0][0], c.want)
		}
	}
	// Select.
	b := NewBuilder("sel", 3, 1)
	n := b.Add(OpSelect, InPort(0), InPort(1), InPort(2))
	b.Out(0, n)
	g := b.MustBuild()
	out, _ := g.Eval([][]uint64{{1, 0}, {10, 10}, {20, 20}})
	if out[0][0] != 10 || out[0][1] != 20 {
		t.Fatalf("select = %v", out[0])
	}
	// Popcnt and hash determinism.
	g2 := mk(OpPopcnt, InPort(0))
	out2, _ := g2.Eval([][]uint64{{0xFF}})
	if out2[0][0] != 8 {
		t.Fatalf("popcnt = %d", out2[0][0])
	}
	if Mix64(42) != Mix64(42) || Mix64(42) == Mix64(43) {
		t.Fatal("Mix64 must be a deterministic non-trivial hash")
	}
}

func TestEvalInputCountMismatch(t *testing.T) {
	g := macDFG()
	if _, err := g.Eval([][]uint64{{1}}); err == nil {
		t.Fatal("want error for wrong stream count")
	}
}

func TestMapSmallGraphFullyPipelined(t *testing.T) {
	m, err := Map(macDFG(), 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.II != 1 {
		t.Fatalf("II = %d, want 1 for a 2-node graph on 25 cells", m.II)
	}
	if m.Latency < 2 {
		t.Fatalf("latency = %d, want ≥2 (two FU stages)", m.Latency)
	}
	if m.Cells != 2 {
		t.Fatalf("cells = %d, want 2", m.Cells)
	}
}

func TestMapOversubscribedGridRaisesII(t *testing.T) {
	// 12-node chain on a 2x2 grid → sharing factor 3.
	b := NewBuilder("chain", 1, 1)
	prev := InPort(0)
	for i := 0; i < 12; i++ {
		prev = b.Add(OpPass, prev)
	}
	b.Out(0, prev)
	g := b.MustBuild()
	m, err := Map(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.II < 3 {
		t.Fatalf("II = %d, want ≥3 (12 nodes / 4 cells)", m.II)
	}
	big, _ := Map(g, 5, 5)
	if big.II >= m.II {
		t.Fatalf("bigger grid should lower II: %d vs %d", big.II, m.II)
	}
}

func TestMapDeterministic(t *testing.T) {
	a, _ := Map(macDFG(), 5, 5)
	b, _ := Map(macDFG(), 5, 5)
	if a.II != b.II || a.Latency != b.Latency {
		t.Fatal("mapping must be deterministic")
	}
	for i := range a.Place {
		if a.Place[i] != b.Place[i] {
			t.Fatal("placement must be deterministic")
		}
	}
}

func TestMapLatencyGrowsWithDepth(t *testing.T) {
	depthOf := func(n int) int {
		b := NewBuilder("chain", 1, 1)
		prev := InPort(0)
		for i := 0; i < n; i++ {
			prev = b.Add(OpPass, prev)
		}
		b.Out(0, prev)
		m, err := Map(b.MustBuild(), 5, 5)
		if err != nil {
			t.Fatal(err)
		}
		return m.Latency
	}
	if depthOf(10) <= depthOf(2) {
		t.Fatal("deeper graphs must have higher latency")
	}
}

func TestMapEmptyGridError(t *testing.T) {
	if _, err := Map(macDFG(), 0, 5); err == nil {
		t.Fatal("want error for empty grid")
	}
}

func TestMapProperty(t *testing.T) {
	// Property: any valid random chain/diamond graph maps with II ≥ 1,
	// latency ≥ graph depth, and every node placed in range.
	f := func(rawN uint8) bool {
		n := int(rawN%20) + 1
		b := NewBuilder("p", 2, 1)
		refs := []PortRef{InPort(0), InPort(1)}
		for i := 0; i < n; i++ {
			a := refs[i%len(refs)]
			c := refs[(i*7+3)%len(refs)]
			refs = append(refs, b.Add(OpAdd, a, c))
		}
		b.Out(0, refs[len(refs)-1])
		g, err := b.Build()
		if err != nil {
			return false
		}
		m, err := Map(g, 4, 4)
		if err != nil {
			return false
		}
		if m.II < 1 || m.Latency < 1 {
			return false
		}
		for _, p := range m.Place {
			if p < 0 || p >= 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
