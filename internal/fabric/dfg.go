// Package fabric models one lane's reconfigurable dataflow fabric: a
// grid of functional units onto which a task type's dataflow graph
// (DFG) is placed and routed ahead of time. The mapper produces the two
// numbers the timing model needs — initiation interval (II) and
// pipeline latency — and an interpreter executes simple element-wise
// DFGs so that tests can cross-check kernel semantics against fabric
// semantics.
package fabric

import (
	"fmt"
	"math/bits"
)

// OpKind is a functional-unit operation.
type OpKind uint8

// Operations supported by the fabric's FUs. All operate on 64-bit
// words; comparison results are 0/1.
const (
	OpAdd OpKind = iota
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMin
	OpMax
	OpCmpLT // a<b → 1/0
	OpCmpEQ
	OpSelect // c!=0 ? a : b (three inputs)
	OpPass   // identity (routing through an FU)
	OpHash   // cheap 64-bit mix hash of a single input
	OpPopcnt
	OpAcc // stateful accumulator: sum of all inputs seen this task
	numOps
)

// arity returns the input count of an operation.
func (op OpKind) arity() int {
	switch op {
	case OpPass, OpHash, OpPopcnt, OpAcc:
		return 1
	case OpSelect:
		return 3
	default:
		return 2
	}
}

func (op OpKind) String() string {
	names := [...]string{"add", "sub", "mul", "and", "or", "xor", "shl", "shr",
		"min", "max", "cmplt", "cmpeq", "select", "pass", "hash", "popcnt", "acc"}
	if int(op) < len(names) {
		return names[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// PortRef encodes a DFG operand: values < 0 reference input port
// (-1-port); values ≥ 0 reference a node id.
type PortRef int

// InPort returns the operand reference for fabric input port p.
func InPort(p int) PortRef { return PortRef(-1 - p) }

// IsPort reports whether the reference names an input port.
func (r PortRef) IsPort() bool { return r < 0 }

// Port returns the input port index of a port reference.
func (r PortRef) Port() int { return int(-1 - r) }

// Node is one operation instance in a DFG.
type Node struct {
	Op OpKind
	In []PortRef
}

// DFG is a dataflow graph in SSA form: node operands may reference only
// input ports or earlier nodes, which makes the graph acyclic by
// construction.
type DFG struct {
	Name string
	// NumIn and NumOut are the input/output port counts used.
	NumIn, NumOut int
	Nodes         []Node
	// OutSrc[j] is the operand feeding output port j.
	OutSrc []PortRef
}

// Validate reports the first structural problem, or nil.
func (g *DFG) Validate() error {
	if g.NumIn < 0 || g.NumOut <= 0 {
		return fmt.Errorf("fabric: %s: needs ≥0 inputs and ≥1 output", g.Name)
	}
	if len(g.OutSrc) != g.NumOut {
		return fmt.Errorf("fabric: %s: %d OutSrc entries for %d outputs", g.Name, len(g.OutSrc), g.NumOut)
	}
	checkRef := func(r PortRef, at int) error {
		if r.IsPort() {
			if p := r.Port(); p >= g.NumIn {
				return fmt.Errorf("fabric: %s: reference to input port %d (have %d)", g.Name, p, g.NumIn)
			}
			return nil
		}
		if int(r) >= at {
			return fmt.Errorf("fabric: %s: node %d references node %d (not earlier)", g.Name, at, int(r))
		}
		return nil
	}
	for i, n := range g.Nodes {
		if n.Op >= numOps {
			return fmt.Errorf("fabric: %s: node %d has unknown op", g.Name, i)
		}
		if len(n.In) != n.Op.arity() {
			return fmt.Errorf("fabric: %s: node %d op %v wants %d operands, has %d",
				g.Name, i, n.Op, n.Op.arity(), len(n.In))
		}
		for _, r := range n.In {
			if err := checkRef(r, i); err != nil {
				return err
			}
		}
	}
	for _, r := range g.OutSrc {
		if err := checkRef(r, len(g.Nodes)); err != nil {
			return err
		}
	}
	return nil
}

// Builder incrementally constructs a DFG.
type Builder struct {
	g DFG
}

// NewBuilder starts a DFG with the given name and port counts.
func NewBuilder(name string, numIn, numOut int) *Builder {
	return &Builder{g: DFG{Name: name, NumIn: numIn, NumOut: numOut,
		OutSrc: make([]PortRef, numOut)}}
}

// Add appends a node and returns its reference.
func (b *Builder) Add(op OpKind, in ...PortRef) PortRef {
	b.g.Nodes = append(b.g.Nodes, Node{Op: op, In: in})
	return PortRef(len(b.g.Nodes) - 1)
}

// Out binds output port j to the value ref.
func (b *Builder) Out(j int, ref PortRef) { b.g.OutSrc[j] = ref }

// Build validates and returns the DFG.
func (b *Builder) Build() (*DFG, error) {
	g := b.g
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// MustBuild is Build for statically known-good graphs.
func (b *Builder) MustBuild() *DFG {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Eval interprets the DFG over element streams: in[p] is the element
// sequence of input port p, all the same length n (short ports are
// extended by repeating their last element, which models a dwelling
// scalar operand). It returns one length-n sequence per output port.
// OpAcc nodes carry running state across elements, so output j at
// element i sees the accumulation of elements 0..i.
func (g *DFG) Eval(in [][]uint64) ([][]uint64, error) {
	if len(in) != g.NumIn {
		return nil, fmt.Errorf("fabric: %s: Eval got %d input streams, want %d", g.Name, len(in), g.NumIn)
	}
	n := 0
	for _, s := range in {
		if len(s) > n {
			n = len(s)
		}
	}
	acc := make([]uint64, len(g.Nodes))
	vals := make([]uint64, len(g.Nodes))
	out := make([][]uint64, g.NumOut)
	for j := range out {
		out[j] = make([]uint64, n)
	}
	read := func(r PortRef, i int) uint64 {
		if r.IsPort() {
			s := in[r.Port()]
			if len(s) == 0 {
				return 0
			}
			if i >= len(s) {
				return s[len(s)-1]
			}
			return s[i]
		}
		return vals[int(r)]
	}
	for i := 0; i < n; i++ {
		for k, node := range g.Nodes {
			a := read(node.In[0], i)
			var b, c uint64
			if len(node.In) > 1 {
				b = read(node.In[1], i)
			}
			if len(node.In) > 2 {
				c = read(node.In[2], i)
			}
			var v uint64
			switch node.Op {
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpMul:
				v = a * b
			case OpAnd:
				v = a & b
			case OpOr:
				v = a | b
			case OpXor:
				v = a ^ b
			case OpShl:
				v = a << (b & 63)
			case OpShr:
				v = a >> (b & 63)
			case OpMin:
				v = a
				if b < a {
					v = b
				}
			case OpMax:
				v = a
				if b > a {
					v = b
				}
			case OpCmpLT:
				if a < b {
					v = 1
				}
			case OpCmpEQ:
				if a == b {
					v = 1
				}
			case OpSelect:
				if a != 0 {
					v = b
				} else {
					v = c
				}
			case OpPass:
				v = a
			case OpHash:
				v = Mix64(a)
			case OpPopcnt:
				v = uint64(bits.OnesCount64(a))
			case OpAcc:
				acc[k] += a
				v = acc[k]
			}
			vals[k] = v
		}
		for j, r := range g.OutSrc {
			out[j][i] = read(r, i)
		}
	}
	return out, nil
}

// Mix64 is the fabric's hash FU function (splitmix64 finalizer); it is
// exported so kernels compute identical hashes to the hardware.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
