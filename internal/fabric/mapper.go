package fabric

import (
	"fmt"
	"sort"
)

// Mapping is the result of placing and routing a DFG onto a lane's FU
// grid: the two numbers the pipeline timing model consumes, plus the
// placement itself for inspection and area accounting.
type Mapping struct {
	// II is the initiation interval: the fabric accepts a new firing
	// every II cycles. 1 is fully pipelined; congestion or
	// time-multiplexing raise it.
	II int
	// Latency is the pipeline depth in cycles from inputs entering to
	// the corresponding outputs emerging.
	Latency int
	// Place[i] is the linear grid cell of node i (cell = row*cols+col),
	// for multiplexed nodes the cell they share.
	Place []int
	// MaxLinkLoad is the busiest routing-link load, the congestion
	// component of II.
	MaxLinkLoad int
	// Cells is the number of grid cells used.
	Cells int
}

// Map places g onto a rows×cols grid and routes its edges with
// X-then-Y Manhattan paths. The algorithm is the greedy
// proximity-placement heuristic common to CGRA toolchains: nodes are
// placed in topological (SSA) order at the free cell minimizing total
// distance to already-placed operands; when nodes outnumber cells, FUs
// are time-multiplexed and II scales by the sharing factor.
func Map(g *DFG, rows, cols int) (Mapping, error) {
	if err := g.Validate(); err != nil {
		return Mapping{}, err
	}
	cells := rows * cols
	if cells == 0 {
		return Mapping{}, fmt.Errorf("fabric: empty grid")
	}
	// Sharing factor when the DFG exceeds the grid.
	share := (len(g.Nodes) + cells - 1) / cells
	if share < 1 {
		share = 1
	}
	// occupancy[c] counts nodes mapped to cell c (≤ share).
	occupancy := make([]int, cells)
	place := make([]int, len(g.Nodes))
	// Input ports live on the west edge: port p at row p%rows, col -1.
	portCell := func(p int) (int, int) { return p % rows, -1 }
	cellRC := func(c int) (int, int) { return c / cols, c % cols }
	dist := func(r1, c1, r2, c2 int) int {
		dr, dc := r1-r2, c1-c2
		if dr < 0 {
			dr = -dr
		}
		if dc < 0 {
			dc = -dc
		}
		return dr + dc
	}
	for i, n := range g.Nodes {
		best, bestCost := -1, 1<<30
		for c := 0; c < cells; c++ {
			if occupancy[c] >= share {
				continue
			}
			r1, c1 := cellRC(c)
			cost := 0
			for _, ref := range n.In {
				var r2, c2 int
				if ref.IsPort() {
					r2, c2 = portCell(ref.Port())
				} else {
					r2, c2 = cellRC(place[int(ref)])
				}
				cost += dist(r1, c1, r2, c2)
			}
			// Light tie-break toward low occupancy, then low index
			// (deterministic).
			cost = cost*8 + occupancy[c]
			if cost < bestCost {
				best, bestCost = c, cost
			}
		}
		occupancy[best]++
		place[i] = best
	}
	// Route edges, accumulating per-link load. Links are identified by
	// (cell, direction); direction 0=E,1=W,2=N,3=S. Port→cell edges
	// enter from the west edge and are charged to the crossed links.
	linkLoad := map[[2]int]int{}
	route := func(r1, c1, r2, c2 int) int {
		hops := 0
		for c1 != c2 {
			dir := 0
			step := 1
			if c2 < c1 {
				dir = 1
				step = -1
			}
			linkLoad[[2]int{r1*cols + c1 + 1000*dir, dir}]++
			c1 += step
			hops++
		}
		for r1 != r2 {
			dir := 3
			step := 1
			if r2 < r1 {
				dir = 2
				step = -1
			}
			linkLoad[[2]int{r1*cols + c1 + 1000*dir, dir}]++
			r1 += step
			hops++
		}
		return hops
	}
	// depth[i] is the arrival cycle of node i's output: max over
	// operands of their depth plus routing hops, plus 1 for the FU.
	depth := make([]int, len(g.Nodes))
	maxDepth := 0
	for i, n := range g.Nodes {
		r1, c1 := cellRC(place[i])
		d := 0
		for _, ref := range n.In {
			var r2, c2, dd int
			if ref.IsPort() {
				r2, c2 = portCell(ref.Port())
				c2 = 0 // enters the grid at column 0
				dd = 0
			} else {
				r2, c2 = cellRC(place[int(ref)])
				dd = depth[int(ref)]
			}
			hops := route(r2, c2, r1, c1)
			if dd+hops > d {
				d = dd + hops
			}
		}
		depth[i] = d + 1
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
	}
	maxLoad := 0
	for _, l := range linkLoad {
		if l > maxLoad {
			maxLoad = l
		}
	}
	ii := share
	if maxLoad > ii {
		ii = maxLoad
	}
	if ii < 1 {
		ii = 1
	}
	used := 0
	for _, o := range occupancy {
		if o > 0 {
			used++
		}
	}
	lat := maxDepth
	if lat < 1 {
		lat = 1
	}
	return Mapping{II: ii, Latency: lat, Place: place, MaxLinkLoad: maxLoad, Cells: used}, nil
}

// SortedPlace returns placement cells in node order — a helper for
// deterministic golden tests.
func (m Mapping) SortedPlace() []int {
	p := append([]int(nil), m.Place...)
	sort.Ints(p)
	return p
}
