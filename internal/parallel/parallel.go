// Package parallel provides the bounded worker-pool primitives the
// experiment harness uses to fan out independent simulations. Results
// are always collected in input order, so callers that render tables
// from them produce byte-identical output at any worker count — the
// property the harness's serial-vs-parallel equality test pins down.
package parallel

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the worker count used when a caller passes n <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Limiter bounds the number of concurrently executing work units
// across any number of goroutines or Map calls sharing it, so several
// independent fan-outs together never exceed one global budget. The
// zero value is not usable; call NewLimiter.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter returns a limiter admitting up to n concurrent units
// (n <= 0 means DefaultWorkers).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = DefaultWorkers()
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// Cap returns the limiter's concurrency bound.
func (l *Limiter) Cap() int { return cap(l.sem) }

// Do runs f while holding one of the limiter's slots, blocking until a
// slot is free. Never call Do from inside another Do on the same
// limiter: a full limiter would deadlock against itself.
func (l *Limiter) Do(f func()) {
	l.sem <- struct{}{}
	defer func() { <-l.sem }()
	f()
}

// Map runs fn(i, items[i]) for every item with at most workers
// concurrent invocations (workers <= 0 means DefaultWorkers) and
// returns the results in input order.
//
// workers == 1 runs everything inline in order, stopping at the first
// error — exactly the serial behavior. With more workers every item
// still runs, and the error returned is the first one in input order,
// so error identity is deterministic too.
func Map[T, R any](workers int, items []T, fn func(int, T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers == 1 || len(items) <= 1 {
		return mapSerial(items, fn)
	}
	return mapLimited(NewLimiter(workers), items, fn)
}

// MapLimited is Map with the concurrency bound supplied by a shared
// Limiter, for fan-outs that must respect a budget spanning several
// concurrent Map calls. A limiter of capacity 1 runs inline like
// Map(1, ...).
func MapLimited[T, R any](l *Limiter, items []T, fn func(int, T) (R, error)) ([]R, error) {
	if l.Cap() == 1 || len(items) <= 1 {
		return mapSerial(items, fn)
	}
	return mapLimited(l, items, fn)
}

func mapSerial[T, R any](items []T, fn func(int, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	for i, it := range items {
		r, err := fn(i, it)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func mapLimited[T, R any](l *Limiter, items []T, fn func(int, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Do(func() { out[i], errs[i] = fn(i, items[i]) })
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
