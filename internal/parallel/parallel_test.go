package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCollectsInInputOrder(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	got, err := Map(8, items, func(i, v int) (int, error) {
		// Stagger completion so later items often finish first.
		time.Sleep(time.Duration((len(items)-i)%7) * time.Millisecond)
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := Map(workers, make([]struct{}, 50), func(int, struct{}) (struct{}, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMapReturnsFirstErrorInInputOrder(t *testing.T) {
	e1, e5 := errors.New("item 1"), errors.New("item 5")
	_, err := Map(4, []int{0, 1, 2, 3, 4, 5}, func(i, _ int) (int, error) {
		switch i {
		case 1:
			time.Sleep(5 * time.Millisecond) // finish after item 5's error
			return 0, e1
		case 5:
			return 0, e5
		}
		return 0, nil
	})
	if !errors.Is(err, e1) {
		t.Fatalf("err = %v, want first-in-order error %v", err, e1)
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	calls := 0
	_, err := Map(1, []int{0, 1, 2, 3}, func(i, _ int) (int, error) {
		calls++
		if i == 1 {
			return 0, fmt.Errorf("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if calls != 2 {
		t.Fatalf("serial Map made %d calls after error, want 2", calls)
	}
}

func TestMapLimitedSharesBudgetAcrossMaps(t *testing.T) {
	lim := NewLimiter(2)
	var inFlight, peak atomic.Int64
	job := func(int, struct{}) (struct{}, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return struct{}{}, nil
	}
	var wg sync.WaitGroup
	for m := 0; m < 4; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := MapLimited(lim, make([]struct{}, 10), job); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > int64(lim.Cap()) {
		t.Fatalf("peak concurrency %d exceeds shared limit %d", p, lim.Cap())
	}
}

func TestNewLimiterDefaults(t *testing.T) {
	if got := NewLimiter(0).Cap(); got != DefaultWorkers() {
		t.Fatalf("NewLimiter(0).Cap() = %d, want %d", got, DefaultWorkers())
	}
	if got := NewLimiter(5).Cap(); got != 5 {
		t.Fatalf("NewLimiter(5).Cap() = %d, want 5", got)
	}
}
