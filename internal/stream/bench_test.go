package stream

import "testing"

// BenchmarkAddressGeneration measures the stream-descriptor address and
// span builders that run at every task dispatch.
func BenchmarkAddressGeneration(b *testing.B) {
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			addrs := LinearAddrs(0x1000, 512)
			if BuildSpans(addrs, 64) == nil {
				b.Fatal("no spans")
			}
		}
	})
	b.Run("affine2d", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			addrs := Affine2DAddrs(0x1000, 16, 32, 128)
			if BuildSpans(addrs, 64) == nil {
				b.Fatal("no spans")
			}
		}
	})
	b.Run("gather", func(b *testing.B) {
		idxs := make([]uint64, 512)
		for i := range idxs {
			idxs[i] = uint64(i*7) % 4096
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			addrs := GatherAddrs(0x1000, idxs)
			if BuildGatherSpans(addrs, 64) == nil {
				b.Fatal("no spans")
			}
		}
	})
}
