package stream

import (
	"testing"

	"taskstream/internal/config"
	"taskstream/internal/mem"
	"taskstream/internal/noc"
	"taskstream/internal/proto"
	"taskstream/internal/sim"
)

func testCfg() config.Config { return config.Default8() }

// loopback is a test harness standing in for NoC+DRAM: it accepts
// injected requests and reflects responses back to the engine after a
// fixed delay. Forward messages are delivered to a sibling engine if
// present.
type loopback struct {
	delay    sim.Cycle
	pipe     *sim.Pipe[noc.Message]
	now      sim.Cycle
	engines  map[int]*Engine
	topo     proto.Topology
	rejected bool // when true, TryInject refuses everything
	sent     []noc.Message
}

func newLoopback(delay sim.Cycle, topo proto.Topology) *loopback {
	return &loopback{delay: delay, pipe: sim.NewPipe[noc.Message](0), engines: map[int]*Engine{}, topo: topo}
}

func (l *loopback) TryInject(msg noc.Message) bool {
	if l.rejected {
		return false
	}
	l.sent = append(l.sent, msg)
	switch body := msg.Body.(type) {
	case *proto.MemReqBody:
		resp := noc.Message{
			Kind:  noc.KindMemResp,
			Dests: noc.DestMask(msg.Src),
			Body:  &proto.MemRespBody{Line: body.Line, Write: body.Write, ReqID: body.ReqID},
		}
		l.pipe.SendAt(l.now+l.delay, resp)
	case *proto.ForwardBody:
		l.pipe.SendAt(l.now+l.delay, msg)
	}
	return true
}

// tick advances one cycle: run each engine, deliver matured messages.
func (l *loopback) tick(e *Engine) {
	e.Tick(l.now)
	for {
		msg, ok := l.pipe.Recv(l.now)
		if !ok {
			break
		}
		if msg.Kind == noc.KindForward {
			// Map the destination node back to its lane index.
			node := destNode(msg.Dests)
			var dst *Engine
			for lane := 0; lane < l.topo.Lanes; lane++ {
				if l.topo.LaneNode(lane) == node {
					dst = l.engines[lane]
				}
			}
			dst.OnMessage(msg)
		} else {
			e.OnMessage(msg)
		}
	}
	l.now++
}

func destNode(mask uint64) int {
	n := 0
	for mask&1 == 0 {
		mask >>= 1
		n++
	}
	return n
}

func TestBuildSpansLinear(t *testing.T) {
	spans := BuildSpans(LinearAddrs(0x1000, 16), 64)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Line != 0x1000 || spans[0].Elems != 8 {
		t.Fatalf("span0 = %+v", spans[0])
	}
	if spans[1].Line != 0x1040 || spans[1].Elems != 8 {
		t.Fatalf("span1 = %+v", spans[1])
	}
}

func TestBuildSpansUnalignedStart(t *testing.T) {
	// 4 elements starting mid-line: addresses 0x1030..0x1048 span two lines.
	spans := BuildSpans(LinearAddrs(0x1030, 4), 64)
	if len(spans) != 2 || spans[0].Elems != 2 || spans[1].Elems != 2 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestBuildSpansGatherCoalescing(t *testing.T) {
	// Two consecutive same-line gathers coalesce; a revisit does not.
	addrs := []mem.Addr{0x1000, 0x1008, 0x2000, 0x1010}
	spans := BuildSpans(addrs, 64)
	if len(spans) != 3 {
		t.Fatalf("spans = %+v, want 3", spans)
	}
	if spans[0].Elems != 2 {
		t.Fatalf("first span should coalesce 2 elems: %+v", spans[0])
	}
}

func TestBuildGatherSpansNeedIdx(t *testing.T) {
	addrs := []mem.Addr{0x1000, 0x1008, 0x2000}
	spans := BuildGatherSpans(addrs, 64)
	if spans[0].NeedIdx != 2 || spans[1].NeedIdx != 3 {
		t.Fatalf("NeedIdx = %d,%d want 2,3", spans[0].NeedIdx, spans[1].NeedIdx)
	}
}

func TestAffine2DAddrs(t *testing.T) {
	// 2 rows of 3 elements, pitch 10 elements.
	a := Affine2DAddrs(0, 2, 3, 10)
	want := []mem.Addr{0, 8, 16, 80, 88, 96}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("addrs = %v, want %v", a, want)
		}
	}
}

func TestGatherAddrs(t *testing.T) {
	a := GatherAddrs(0x1000, []uint64{0, 7, 2})
	want := []mem.Addr{0x1000, 0x1038, 0x1010}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("addrs = %v, want %v", a, want)
		}
	}
}

func newTestEngine(lb *loopback, lane int) *Engine {
	cfg := testCfg()
	spad := mem.NewSpad(cfg.Spad)
	e := NewEngine(lane, cfg, lb.topo, lb, spad, nil)
	lb.engines[lane] = e
	return e
}

func TestLinearDRAMRead(t *testing.T) {
	lb := newLoopback(20, proto.Topology{Lanes: 2, Channels: 2})
	e := newTestEngine(lb, 0)
	e.SetupRead(0, ReadSetup{Kind: SrcDRAM, N: 16, Addrs: LinearAddrs(0x1000, 16)})
	for i := 0; i < 100 && e.Avail(0) < 16; i++ {
		lb.tick(e)
	}
	if e.Avail(0) != 16 {
		t.Fatalf("avail = %d, want 16", e.Avail(0))
	}
	if e.DRAMLinesRequested != 2 {
		t.Fatalf("lines requested = %d, want 2", e.DRAMLinesRequested)
	}
	e.Consume(0, 16)
	if !e.Done() {
		t.Fatal("engine should be done after full consume")
	}
}

func TestReadLatencyRespected(t *testing.T) {
	lb := newLoopback(30, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	e.SetupRead(0, ReadSetup{Kind: SrcDRAM, N: 8, Addrs: LinearAddrs(0x1000, 8)})
	var firstAvail sim.Cycle = -1
	for i := sim.Cycle(0); i < 100; i++ {
		lb.tick(e)
		if firstAvail < 0 && e.Avail(0) > 0 {
			firstAvail = i
		}
	}
	if firstAvail < 30 {
		t.Fatalf("data available at cycle %d, before the 30-cycle latency", firstAvail)
	}
}

func TestGatherGatedOnIndices(t *testing.T) {
	lb := newLoopback(10, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	// Gather: value fetches must wait for the index stream.
	e.SetupRead(0, ReadSetup{
		Kind:     SrcDRAM,
		N:        4,
		Addrs:    []mem.Addr{0x8000, 0x9000, 0xa000, 0xb000},
		IdxAddrs: LinearAddrs(0x1000, 4),
	})
	// First injected request must be the index line, not a value line.
	lb.tick(e)
	if len(lb.sent) == 0 {
		t.Fatal("no request issued")
	}
	first := lb.sent[0].Body.(*proto.MemReqBody)
	if first.Line != 0x1000 {
		t.Fatalf("first request line %#x, want index line 0x1000", first.Line)
	}
	// Values become available only after idx (10) + value (10) round trips.
	var availAt sim.Cycle = -1
	for i := sim.Cycle(1); i < 200; i++ {
		lb.tick(e)
		if availAt < 0 && e.Avail(0) == 4 {
			availAt = i
		}
	}
	if availAt < 20 {
		t.Fatalf("gather complete at %d, want ≥20 (two dependent round trips)", availAt)
	}
	e.Consume(0, 4)
	if !e.Done() {
		t.Fatal("should be done")
	}
}

func TestDRAMWriteLifecycle(t *testing.T) {
	lb := newLoopback(15, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	e.SetupWrite(0, WriteSetup{Kind: DstDRAM, N: 16, Addrs: LinearAddrs(0x2000, 16)})
	if e.Done() {
		t.Fatal("not done before producing")
	}
	if !e.OutSpace(0, 16) {
		t.Fatal("write buffer should have space")
	}
	e.Produce(0, 16)
	for i := 0; i < 100 && !e.Done(); i++ {
		lb.tick(e)
	}
	if !e.Done() {
		t.Fatal("write never acked")
	}
	if e.DRAMLinesWritten != 2 {
		t.Fatalf("lines written = %d, want 2", e.DRAMLinesWritten)
	}
}

func TestPartialTrailingLineWrite(t *testing.T) {
	lb := newLoopback(5, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	// 10 elements = one full line + 2-element partial line.
	e.SetupWrite(0, WriteSetup{Kind: DstDRAM, N: 10, Addrs: LinearAddrs(0x2000, 10)})
	e.Produce(0, 10)
	for i := 0; i < 100 && !e.Done(); i++ {
		lb.tick(e)
	}
	if !e.Done() || e.DRAMLinesWritten != 2 {
		t.Fatalf("done=%v lines=%d, want true,2", e.Done(), e.DRAMLinesWritten)
	}
}

func TestForwardBetweenEngines(t *testing.T) {
	lb := newLoopback(8, proto.Topology{Lanes: 2, Channels: 1})
	prod := newTestEngine(lb, 0)
	cons := newTestEngine(lb, 1)
	prod.SetupWrite(0, WriteSetup{Kind: DstForward, N: 12, ConsumerLane: 1, ConsumerPort: 2})
	cons.SetupRead(2, ReadSetup{Kind: SrcForward, N: 12})
	prod.Produce(0, 12)
	for i := 0; i < 100; i++ {
		lb.tick(prod)
		cons.Tick(lb.now)
		if cons.Avail(2) == 12 {
			break
		}
	}
	if cons.Avail(2) != 12 {
		t.Fatalf("consumer avail = %d, want 12", cons.Avail(2))
	}
	if !prod.Done() {
		t.Fatal("producer should be done after shipping")
	}
	cons.Consume(2, 12)
	if !cons.Done() {
		t.Fatal("consumer should be done")
	}
	if prod.FwdMsgsSent == 0 || cons.FwdElemsRecv != 12 {
		t.Fatalf("fwd stats: sent=%d recv=%d", prod.FwdMsgsSent, cons.FwdElemsRecv)
	}
}

func TestConstAlwaysAvailable(t *testing.T) {
	lb := newLoopback(1, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	e.SetupRead(1, ReadSetup{Kind: SrcConst, N: 5})
	if e.Avail(1) != 5 {
		t.Fatalf("const avail = %d, want 5", e.Avail(1))
	}
	e.Consume(1, 5)
	if !e.Done() {
		t.Fatal("done after consuming const")
	}
}

func TestSpadReadWrite(t *testing.T) {
	lb := newLoopback(1, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	e.SetupRead(0, ReadSetup{Kind: SrcSpad, N: 8, Addrs: LinearAddrs(0x100, 8)})
	e.SetupWrite(1, WriteSetup{Kind: DstSpad, N: 8, Addrs: LinearAddrs(0x300, 8)})
	e.Produce(1, 8)
	for i := 0; i < 100 && !(e.Avail(0) == 8 && e.Done() == false); i++ {
		lb.tick(e)
		e.spad.Tick(lb.now - 1)
	}
	// Drain fully.
	for i := 0; i < 100 && e.Avail(0) < 8; i++ {
		e.spad.Tick(lb.now)
		lb.tick(e)
	}
	if e.Avail(0) != 8 {
		t.Fatalf("spad read avail = %d, want 8", e.Avail(0))
	}
	e.Consume(0, 8)
	for i := 0; i < 100 && !e.Done(); i++ {
		e.spad.Tick(lb.now)
		lb.tick(e)
	}
	if !e.Done() {
		t.Fatal("spad write never acked")
	}
	if e.SpadAccesses != 16 {
		t.Fatalf("spad accesses = %d, want 16", e.SpadAccesses)
	}
}

func TestMulticastArrival(t *testing.T) {
	lb := newLoopback(1, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	// Group fetch of 3 lines; this port's data starts 2 elements into
	// the first line and runs 20 elements.
	e.SetupRead(0, ReadSetup{Kind: SrcMulticast, N: 20, Group: 7, Lines: 3, HeadSkip: 2})
	deliver := func(seq int) {
		e.OnMessage(noc.Message{Kind: noc.KindMemResp, Body: proto.McastLineBody{Group: 7, Seq: seq}})
	}
	// Landing-buffer semantics: availability tracks arrived-line count
	// (out-of-order arrivals are buffered and drained in stream order).
	deliver(1)
	if e.Avail(0) != 6 {
		t.Fatalf("avail after one line = %d, want 6 (8 - 2 headskip)", e.Avail(0))
	}
	deliver(1) // duplicate delivery must not double-count
	if e.Avail(0) != 6 {
		t.Fatalf("avail after duplicate = %d, want 6", e.Avail(0))
	}
	deliver(0) // two lines = 16 elems - 2 skip = 14
	if e.Avail(0) != 14 {
		t.Fatalf("avail = %d, want 14", e.Avail(0))
	}
	deliver(2) // all 3 lines: 24-2=22, capped at N=20
	if e.Avail(0) != 20 {
		t.Fatalf("avail = %d, want 20", e.Avail(0))
	}
	e.Consume(0, 20)
	if !e.Done() {
		t.Fatal("should be done")
	}
}

func TestOutSpaceBounded(t *testing.T) {
	lb := newLoopback(1000, proto.Topology{Lanes: 1, Channels: 1}) // acks never arrive in time
	e := newTestEngine(lb, 0)
	e.SetupWrite(0, WriteSetup{Kind: DstDRAM, N: 1000, Addrs: LinearAddrs(0x2000, 1000)})
	n := 0
	for e.OutSpace(0, 4) {
		e.Produce(0, 4)
		n += 4
		if n > 500 {
			t.Fatal("write buffer never fills")
		}
	}
	if n == 0 {
		t.Fatal("write buffer should accept some elements")
	}
}

func TestConsumePanicsWhenUnavailable(t *testing.T) {
	lb := newLoopback(1, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	e.SetupRead(0, ReadSetup{Kind: SrcDRAM, N: 8, Addrs: LinearAddrs(0x1000, 8)})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic consuming unavailable elements")
		}
	}()
	e.Consume(0, 1)
}

func TestInjectBackpressureStallsIssue(t *testing.T) {
	lb := newLoopback(1, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	lb.rejected = true
	e.SetupRead(0, ReadSetup{Kind: SrcDRAM, N: 8, Addrs: LinearAddrs(0x1000, 8)})
	for i := 0; i < 10; i++ {
		lb.tick(e)
	}
	if e.DRAMLinesRequested != 0 {
		t.Fatal("requests counted despite rejection")
	}
	lb.rejected = false
	for i := 0; i < 50 && e.Avail(0) < 8; i++ {
		lb.tick(e)
	}
	if e.Avail(0) != 8 {
		t.Fatalf("avail = %d after backpressure clears, want 8", e.Avail(0))
	}
}
