package stream

import (
	"testing"

	"taskstream/internal/noc"
	"taskstream/internal/proto"
)

func TestSetupAheadAndPromote(t *testing.T) {
	lb := newLoopback(10, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	// Current task on port 0.
	e.SetupRead(0, ReadSetup{Kind: SrcDRAM, N: 8, Addrs: LinearAddrs(0x1000, 8)})
	// Prefetch the next task's port 0 while current runs.
	setups := make([]ReadSetup, 4)
	setups[0] = ReadSetup{Kind: SrcDRAM, N: 8, Addrs: LinearAddrs(0x2000, 8)}
	e.SetupAhead(setups)
	if !e.HasAhead() {
		t.Fatal("prefetch must be armed")
	}
	// Run until both streams' data arrived.
	for i := 0; i < 100; i++ {
		lb.tick(e)
	}
	if e.Avail(0) != 8 {
		t.Fatalf("current avail = %d, want 8", e.Avail(0))
	}
	e.Consume(0, 8)
	// Promote: the prefetched context becomes current with its data
	// already arrived — zero startup latency.
	e.Promote()
	if e.HasAhead() {
		t.Fatal("prefetch must be consumed by Promote")
	}
	if e.Avail(0) != 8 {
		t.Fatalf("promoted avail = %d, want 8 (prefetched data lost)", e.Avail(0))
	}
	e.Consume(0, 8)
	if !e.Done() {
		t.Fatal("engine should be done")
	}
}

func TestPrefetchUsesLeftoverBudgetOnly(t *testing.T) {
	lb := newLoopback(1000, proto.Topology{Lanes: 1, Channels: 1}) // responses never return
	e := newTestEngine(lb, 0)
	// Current task wants many lines; it must win the request budget.
	e.SetupRead(0, ReadSetup{Kind: SrcDRAM, N: 512, Addrs: LinearAddrs(0x1000, 512)})
	setups := make([]ReadSetup, 4)
	setups[0] = ReadSetup{Kind: SrcDRAM, N: 512, Addrs: LinearAddrs(0x8000, 512)}
	e.SetupAhead(setups)
	lb.tick(e)
	// All first-cycle requests must target the current stream.
	for _, msg := range lb.sent {
		body := msg.Body.(*proto.MemReqBody)
		if body.Line >= 0x8000 {
			t.Fatalf("prefetch request issued ahead of current task: %#x", body.Line)
		}
	}
	if len(lb.sent) == 0 {
		t.Fatal("no requests issued")
	}
}

func TestPrefetchNonPrefetchableKindsDeferred(t *testing.T) {
	lb := newLoopback(5, proto.Topology{Lanes: 2, Channels: 1})
	e := newTestEngine(lb, 0)
	setups := make([]ReadSetup, 4)
	setups[0] = ReadSetup{Kind: SrcForward, N: 4}
	setups[1] = ReadSetup{Kind: SrcConst, N: 1}
	e.SetupAhead(setups)
	e.Promote()
	// Forward/const ports are programmed at Promote time.
	if e.Avail(1) != 1 {
		t.Fatalf("const port avail = %d, want 1", e.Avail(1))
	}
	e.OnMessage(mkForward(2, 0, 4))
	if e.Avail(0) != 4 {
		t.Fatalf("forward port avail = %d, want 4", e.Avail(0))
	}
}

func TestDropAhead(t *testing.T) {
	lb := newLoopback(5, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	setups := make([]ReadSetup, 4)
	setups[0] = ReadSetup{Kind: SrcDRAM, N: 8, Addrs: LinearAddrs(0x2000, 8)}
	e.SetupAhead(setups)
	e.DropAhead()
	if e.HasAhead() {
		t.Fatal("DropAhead must clear the prefetch")
	}
	// In-flight responses for the dropped context must not crash.
	for i := 0; i < 50; i++ {
		lb.tick(e)
	}
}

func TestPromoteWithoutAheadPanics(t *testing.T) {
	lb := newLoopback(1, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Promote without SetupAhead must panic")
		}
	}()
	e.Promote()
}

func TestSetupAheadWrongLengthPanics(t *testing.T) {
	lb := newLoopback(1, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("SetupAhead with wrong port count must panic")
		}
	}()
	e.SetupAhead([]ReadSetup{{}})
}

func TestCtxIDsRecycleAcrossManyTasks(t *testing.T) {
	// Run far more tasks than the 64-entry context-id space: retired
	// contexts must free their ids.
	lb := newLoopback(3, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	for task := 0; task < 300; task++ {
		e.SetupRead(0, ReadSetup{Kind: SrcDRAM, N: 8, Addrs: LinearAddrs(0x1000, 8)})
		e.SetupWrite(0, WriteSetup{Kind: DstDiscard, N: 0})
		for i := 0; i < 30 && e.Avail(0) < 8; i++ {
			lb.tick(e)
		}
		if e.Avail(0) != 8 {
			t.Fatalf("task %d never received data", task)
		}
		e.Consume(0, 8)
		if !e.Done() {
			t.Fatalf("task %d not done", task)
		}
	}
}

func TestEmptyStreamRetiresImmediately(t *testing.T) {
	// Zero-length DRAM streams (e.g. BFS leaves) must not leak
	// context-routing entries.
	lb := newLoopback(1, proto.Topology{Lanes: 1, Channels: 1})
	e := newTestEngine(lb, 0)
	for i := 0; i < 200; i++ {
		e.SetupRead(0, ReadSetup{Kind: SrcDRAM, N: 0})
	}
	if len(e.ctxByID) != 0 {
		t.Fatalf("%d contexts leaked for empty streams", len(e.ctxByID))
	}
}

// mkForward builds a forward-delivery message for tests.
func mkForward(srcNode, port, count int) noc.Message {
	return noc.Message{
		Kind: noc.KindForward,
		Src:  srcNode,
		Body: &proto.ForwardBody{Port: port, Count: count},
	}
}
