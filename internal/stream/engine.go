package stream

import (
	"fmt"

	"taskstream/internal/config"
	"taskstream/internal/mem"
	"taskstream/internal/noc"
	"taskstream/internal/obs"
	"taskstream/internal/proto"
	"taskstream/internal/sim"
)

// Injector is the engine's view of the NoC injection port.
type Injector interface {
	TryInject(noc.Message) bool
}

// Engine is one lane's stream engine: a set of read contexts feeding
// the fabric's input ports and write contexts draining its output
// ports. It issues line requests over the NoC, tracks arrivals, and
// exposes element availability to the fabric.
type Engine struct {
	lane      int
	topo      proto.Topology
	cfg       config.Config
	inj       Injector
	spad      *mem.Spad
	pool      proto.BodyPool
	reads     []*readCtx
	writes    []*writeCtx
	maxOut    int // per-context outstanding line requests
	reqBudget int // request injections per cycle

	// selfNode, laneNodes, and memNodes cache the Topology node lookups
	// (O(nodes·channels) each) off the per-message path.
	selfNode  int
	laneNodes []int
	memNodes  []int

	// mcBuf buffers multicast line arrivals for groups whose consuming
	// task has not yet programmed its port (the lane-level multicast
	// fill buffer). Entries persist for the machine's lifetime; see
	// DESIGN.md on memory accounting simplifications.
	mcBuf map[uint64]map[int]bool

	// Response routing: memory-path read contexts are addressed by a
	// small rotating id so that current and prefetched contexts can
	// have responses in flight simultaneously.
	ctxSeq      int
	ctxByID     map[int]*readCtx
	aheadSetups []ReadSetup
	aheadCtxs   []*readCtx

	// Stats.
	DRAMLinesRequested int64
	DRAMLinesWritten   int64
	SpadAccesses       int64
	FwdMsgsSent        int64
	FwdElemsRecv       int64

	// obs, when non-nil, receives span issue/complete events; now is
	// the engine's view of the current cycle (messages are delivered
	// outside Tick, so the lane refreshes it via SetCycle). Under
	// sharded execution it is the lane's per-shard obs.Buffer rather
	// than the shared sink.
	obs obs.Emitter
	now sim.Cycle
}

// idxPortBias distinguishes gather-index requests from value requests
// in the ReqID routing field; ctxIDSpace bounds rotating context ids
// below it.
const (
	idxPortBias = 64
	ctxIDSpace  = 64
)

// NewEngine builds a stream engine for the given lane. pool supplies
// the recycled message bodies the engine sends and frees (a lane-local
// proto.ShardPool under sharded execution, the machine's central
// proto.Pool otherwise); nil means a private unshared pool, which
// keeps standalone construction simple in tests.
func NewEngine(lane int, cfg config.Config, topo proto.Topology, inj Injector, spad *mem.Spad, pool proto.BodyPool) *Engine {
	if pool == nil {
		pool = proto.NewPool()
	}
	e := &Engine{
		lane:      lane,
		topo:      topo,
		cfg:       cfg,
		inj:       inj,
		spad:      spad,
		pool:      pool,
		maxOut:    32,
		reqBudget: 4,
		mcBuf:     make(map[uint64]map[int]bool),
		ctxByID:   make(map[int]*readCtx),
	}
	e.selfNode = topo.LaneNode(lane)
	e.laneNodes = make([]int, topo.Lanes)
	for i := range e.laneNodes {
		e.laneNodes[i] = topo.LaneNode(i)
	}
	e.memNodes = make([]int, topo.Channels)
	for c := range e.memNodes {
		e.memNodes[c] = topo.MemNode(c)
	}
	e.reads = make([]*readCtx, cfg.Fabric.NumPorts)
	e.writes = make([]*writeCtx, cfg.Fabric.NumPorts)
	for i := range e.reads {
		e.reads[i] = &readCtx{}
		e.writes[i] = &writeCtx{}
	}
	return e
}

// SetObs attaches the observability emitter (the shared sink, or a
// per-shard staging buffer under sharded execution). Callers must pass
// nil — not a typed-nil sink — to detach.
func (e *Engine) SetObs(s obs.Emitter) { e.obs = s }

// SetCycle refreshes the engine's notion of the current cycle so that
// events emitted from message handlers (which run outside Tick) carry
// the right stamp.
func (e *Engine) SetCycle(now sim.Cycle) { e.now = now }

// readCtx tracks one input port's stream progress.
type readCtx struct {
	kind     SrcKind
	id       int // response-routing id (SrcDRAM/SrcSpad)
	n        int
	consumed int
	avail    int // elements deliverable to the fabric

	// SrcDRAM / SrcSpad value spans.
	spans    []Span
	issued   int
	arrived  []bool
	prefix   int // spans arrived in prefix order
	outst    int
	elemsArr int // elements covered by the arrived prefix

	// Gather index spans (SrcDRAM only).
	idxSpans   []Span
	idxIssued  int
	idxArrived []bool
	idxPrefix  int
	idxElems   int
	idxOutst   int

	// SrcSpad per-element tracking.
	spadAddrs   []mem.Addr
	spadIssued  int
	spadArrived []bool
	spadPrefix  int

	// SrcMulticast.
	group    uint64
	mcLines  int
	mcArr    []bool
	mcCount  int
	headSkip int
}

// writeCtx tracks one output port's stream progress.
type writeCtx struct {
	kind     DstKind
	n        int
	produced int // elements pushed by the fabric
	pending  int // produced but not yet shipped

	spans   []Span
	shipped int // spans shipped (DstDRAM)
	acked   int // spans acked (DstDRAM)

	spadAddrs   []mem.Addr
	spadShipped int
	spadAcked   int

	consumerLane int
	consumerPort int
	fwdShipped   int
	gate         *bool
}

// newReadCtx builds a read context and, for kinds whose responses
// return over the memory path, registers it for response routing.
func (e *Engine) newReadCtx(s ReadSetup) *readCtx {
	ctx := &readCtx{kind: s.Kind, n: s.N}
	switch s.Kind {
	case SrcNone:
	case SrcConst:
		ctx.avail = s.N
	case SrcDRAM:
		if len(s.IdxAddrs) > 0 {
			ctx.spans = BuildGatherSpans(s.Addrs, e.cfg.DRAM.LineBytes)
			ctx.idxSpans = BuildSpans(s.IdxAddrs, e.cfg.DRAM.LineBytes)
			ctx.idxArrived = make([]bool, len(ctx.idxSpans))
		} else {
			ctx.spans = BuildSpans(s.Addrs, e.cfg.DRAM.LineBytes)
		}
		ctx.arrived = make([]bool, len(ctx.spans))
	case SrcSpad:
		ctx.spadAddrs = s.Addrs
		ctx.spadArrived = make([]bool, s.N)
	case SrcForward:
	case SrcMulticast:
		ctx.group = s.Group
		ctx.mcLines = s.Lines
		ctx.mcArr = make([]bool, s.Lines)
		ctx.headSkip = s.HeadSkip
		// Replay lines that arrived before the port was programmed.
		for seq := range e.mcBuf[s.Group] {
			if seq < len(ctx.mcArr) && !ctx.mcArr[seq] {
				ctx.mcArr[seq] = true
				ctx.mcCount++
			}
		}
		e.advanceMcast(ctx)
	default:
		panic(fmt.Sprintf("stream: unknown SrcKind %d", s.Kind))
	}
	if s.Kind == SrcDRAM || s.Kind == SrcSpad {
		e.ctxSeq = (e.ctxSeq + 1) % ctxIDSpace
		if _, clash := e.ctxByID[e.ctxSeq]; clash {
			panic("stream: read-context id space exhausted")
		}
		ctx.id = e.ctxSeq
		e.ctxByID[ctx.id] = ctx
		e.retireIfDone(ctx) // empty streams route no responses
	}
	return ctx
}

// retireIfDone removes a fully arrived context from response routing.
func (e *Engine) retireIfDone(c *readCtx) {
	switch c.kind {
	case SrcDRAM:
		if c.prefix == len(c.arrived) && c.idxPrefix == len(c.idxArrived) {
			delete(e.ctxByID, c.id)
		}
	case SrcSpad:
		if c.spadPrefix == c.n {
			delete(e.ctxByID, c.id)
		}
	}
}

// SetupRead programs input port p for the coming task.
func (e *Engine) SetupRead(p int, s ReadSetup) {
	e.reads[p] = e.newReadCtx(s)
}

// SetupAhead arms a prefetch for the next queued task: DRAM and
// scratchpad read streams begin issuing immediately (with leftover
// request budget), hiding the next task's startup latency behind the
// current task — the task-queue argument prefetch of the execution
// model. Forward, multicast, and constant ports are not prefetched
// (their landing buffers and gates already decouple arrival from
// setup); their setups are stored and applied at Promote.
func (e *Engine) SetupAhead(setups []ReadSetup) {
	if len(setups) != len(e.reads) {
		panic("stream: SetupAhead needs one setup per port")
	}
	e.aheadSetups = append([]ReadSetup(nil), setups...)
	e.aheadCtxs = make([]*readCtx, len(setups))
	for p, s := range setups {
		if s.Kind == SrcDRAM || s.Kind == SrcSpad {
			e.aheadCtxs[p] = e.newReadCtx(s)
		}
	}
}

// HasAhead reports whether a prefetch is armed.
func (e *Engine) HasAhead() bool { return e.aheadCtxs != nil }

// Promote installs the prefetched task's read contexts as current.
func (e *Engine) Promote() {
	if e.aheadCtxs == nil {
		panic("stream: Promote without SetupAhead")
	}
	for p := range e.reads {
		if e.aheadCtxs[p] != nil {
			e.reads[p] = e.aheadCtxs[p]
		} else {
			e.SetupRead(p, e.aheadSetups[p])
		}
	}
	e.aheadCtxs, e.aheadSetups = nil, nil
}

// DropAhead cancels an armed prefetch (contexts stay registered until
// their in-flight responses drain; they are simply never consumed).
func (e *Engine) DropAhead() {
	e.aheadCtxs, e.aheadSetups = nil, nil
}

// SetupWrite programs output port p for the coming task.
func (e *Engine) SetupWrite(p int, s WriteSetup) {
	ctx := &writeCtx{kind: s.Kind, n: s.N,
		consumerLane: s.ConsumerLane, consumerPort: s.ConsumerPort, gate: s.Gate}
	switch s.Kind {
	case DstNone, DstDiscard, DstForward:
	case DstDRAM:
		ctx.spans = BuildSpans(s.Addrs, e.cfg.DRAM.LineBytes)
	case DstSpad:
		ctx.spadAddrs = s.Addrs
	default:
		panic(fmt.Sprintf("stream: unknown DstKind %d", s.Kind))
	}
	e.writes[p] = ctx
}

// Avail returns how many elements input port p can deliver right now.
func (e *Engine) Avail(p int) int {
	c := e.reads[p]
	return c.avail - c.consumed
}

// InN returns the programmed element count of input port p.
func (e *Engine) InN(p int) int { return e.reads[p].n }

// OutN returns the programmed element count of output port p.
func (e *Engine) OutN(p int) int { return e.writes[p].n }

// Consume removes k elements from input port p (fabric firing).
func (e *Engine) Consume(p, k int) {
	c := e.reads[p]
	if c.consumed+k > c.avail {
		panic("stream: consuming unavailable elements")
	}
	c.consumed += k
}

// OutSpace reports whether output port p can accept k more elements.
// DRAM and scratchpad writes are bounded by a write buffer; forwarding
// and discard are never a stall source (see DESIGN.md on deadlock
// freedom).
func (e *Engine) OutSpace(p, k int) bool {
	c := e.writes[p]
	switch c.kind {
	case DstDRAM, DstSpad:
		return c.pending+k <= writeBufElems
	default:
		return true
	}
}

// writeBufElems is the per-port write-coalescing buffer capacity.
const writeBufElems = 64

// Produce pushes k elements into output port p (fabric firing).
func (e *Engine) Produce(p, k int) {
	c := e.writes[p]
	c.produced += k
	c.pending += k
	if c.produced > c.n {
		panic("stream: producing beyond programmed length")
	}
}

// Done reports whether every programmed stream has fully drained: all
// input elements consumed and all output elements shipped and
// acknowledged.
func (e *Engine) Done() bool {
	for _, c := range e.reads {
		if c.kind == SrcNone {
			continue
		}
		if c.consumed < c.n {
			return false
		}
	}
	for _, c := range e.writes {
		switch c.kind {
		case DstNone:
		case DstDiscard:
			if c.produced < c.n {
				return false
			}
		case DstDRAM:
			if c.produced < c.n || c.acked < len(c.spans) {
				return false
			}
		case DstSpad:
			if c.produced < c.n || c.spadAcked < c.n {
				return false
			}
		case DstForward:
			if c.fwdShipped < c.n {
				return false
			}
		}
	}
	return true
}

// Tick advances the engine: collect scratchpad responses, issue new
// requests under the per-cycle budget (current task first, armed
// prefetch with the leftovers), and ship pending writes.
func (e *Engine) Tick(now sim.Cycle) {
	e.now = now
	e.collectSpad(now)
	budget := e.reqBudget
	for _, c := range e.reads {
		budget = e.issueRead(c, budget)
	}
	for p := 0; p < len(e.writes); p++ {
		budget = e.issueWrite(p, budget)
	}
	if e.aheadCtxs != nil {
		for _, c := range e.aheadCtxs {
			if c == nil {
				continue
			}
			budget = e.issueRead(c, budget)
		}
	}
}

// NextEvent reports when the engine's own Tick can next act: now if any
// read context (current or prefetched) can issue a request or any write
// context can ship elements, Never otherwise. Arrivals are not engine
// events — the NoC, DRAM channels, and scratchpad forecast them; a
// gated forward port wakes when the consumer's lane flips the shared
// gate, which happens on a cycle the consumer's own forecast keeps
// executed.
func (e *Engine) NextEvent(now sim.Cycle) sim.Cycle {
	for _, c := range e.reads {
		if e.readIssuable(c) {
			return now
		}
	}
	for _, c := range e.aheadCtxs {
		if c != nil && e.readIssuable(c) {
			return now
		}
	}
	for _, c := range e.writes {
		if e.writeIssuable(c) {
			return now
		}
	}
	return sim.Never
}

// readIssuable mirrors issueRead's issue conditions: true when the
// context could inject at least one request this cycle given budget and
// a willing network (backpressure retries keep the forecast at "now",
// which is conservative and therefore sound).
func (e *Engine) readIssuable(c *readCtx) bool {
	switch c.kind {
	case SrcDRAM:
		if c.idxIssued < len(c.idxSpans) && c.idxOutst < e.maxOut {
			return true
		}
		return c.issued < len(c.spans) && c.outst < e.maxOut &&
			c.spans[c.issued].NeedIdx <= c.idxElems
	case SrcSpad:
		return c.spadIssued < c.n
	}
	return false
}

// writeIssuable mirrors issueWrite's shipping conditions.
func (e *Engine) writeIssuable(c *writeCtx) bool {
	switch c.kind {
	case DstDiscard, DstSpad:
		return c.pending > 0
	case DstDRAM:
		return c.shipped < len(c.spans) && c.pending >= c.spans[c.shipped].Elems
	case DstForward:
		return c.pending > 0 && (c.gate == nil || *c.gate)
	}
	return false
}

// issueRead issues requests for a read context, returning remaining
// budget.
func (e *Engine) issueRead(c *readCtx, budget int) int {
	switch c.kind {
	case SrcDRAM:
		// Index spans first: gathers are gated on index arrival.
		for budget > 0 && c.idxIssued < len(c.idxSpans) && c.idxOutst < e.maxOut {
			sp := c.idxSpans[c.idxIssued]
			if !e.sendLineReq(sp.Line, false, c.id+idxPortBias, int64(c.idxIssued)) {
				return 0
			}
			c.idxIssued++
			c.idxOutst++
			budget--
		}
		for budget > 0 && c.issued < len(c.spans) && c.outst < e.maxOut {
			sp := c.spans[c.issued]
			if sp.NeedIdx > c.idxElems {
				break // gather gated on indices not yet arrived
			}
			if !e.sendLineReq(sp.Line, false, c.id, int64(c.issued)) {
				return 0
			}
			if e.obs != nil {
				e.obs.Emit(obs.Event{Cycle: int64(e.now), Kind: obs.KindSpanIssue,
					Comp: int32(e.lane), A: int64(sp.Line), B: int64(sp.Elems)})
			}
			c.issued++
			c.outst++
			budget--
		}
	case SrcSpad:
		// Up to PortWidth element requests per cycle.
		for i := 0; i < e.cfg.Fabric.PortWidth && c.spadIssued < c.n; i++ {
			a := c.spadAddrs[c.spadIssued]
			ok := e.spad.Submit(mem.Request{
				ID:   proto.MakeReqID(e.lane, false, c.id, int64(c.spadIssued)),
				Line: a,
			})
			if !ok {
				break
			}
			e.SpadAccesses++
			c.spadIssued++
		}
	}
	return budget
}

// issueWrite ships pending output elements for port p.
func (e *Engine) issueWrite(p, budget int) int {
	c := e.writes[p]
	switch c.kind {
	case DstDiscard:
		c.pending = 0
	case DstDRAM:
		for budget > 0 && c.shipped < len(c.spans) {
			sp := c.spans[c.shipped]
			if c.pending < sp.Elems {
				break
			}
			if !e.sendLineReq(sp.Line, true, p, int64(c.shipped)) {
				return 0
			}
			c.pending -= sp.Elems
			c.shipped++
			budget--
		}
	case DstSpad:
		for i := 0; i < e.cfg.Fabric.PortWidth && c.pending > 0; i++ {
			a := c.spadAddrs[c.spadShipped]
			ok := e.spad.Submit(mem.Request{
				ID:    proto.MakeReqID(e.lane, true, p, int64(c.spadShipped)),
				Line:  a,
				Write: true,
			})
			if !ok {
				break
			}
			e.SpadAccesses++
			c.spadShipped++
			c.pending--
		}
	case DstForward:
		if c.gate != nil && !*c.gate {
			break // consumer not yet started; hold shipments
		}
		if c.pending > 0 {
			k := c.pending
			if k > e.cfg.Fabric.PortWidth {
				k = e.cfg.Fabric.PortWidth
			}
			body := e.pool.GetFwd()
			body.Port, body.Count = c.consumerPort, k
			msg := noc.Message{
				Kind:  noc.KindForward,
				Src:   e.selfNode,
				Dests: noc.DestMask(e.laneNodes[c.consumerLane]),
				Bytes: k * mem.ElemBytes,
				Body:  body,
			}
			if e.inj.TryInject(msg) {
				c.pending -= k
				c.fwdShipped += k
				e.FwdMsgsSent++
			} else {
				e.pool.PutFwd(body)
			}
		}
	}
	return budget
}

// sendLineReq injects one line request, reporting success.
func (e *Engine) sendLineReq(line mem.Addr, write bool, port int, seq int64) bool {
	chn := mem.ChannelOf(line, e.cfg.DRAM.LineBytes, e.topo.Channels)
	bytes := 8
	if write {
		bytes = e.cfg.DRAM.LineBytes // write data travels with the request
	}
	body := e.pool.GetReq()
	body.Line = line
	body.Write = write
	body.ReqID = proto.MakeReqID(e.lane, write, port, seq)
	msg := noc.Message{
		Kind:  noc.KindMemReq,
		Src:   e.selfNode,
		Dests: noc.DestMask(e.memNodes[chn]),
		Bytes: bytes,
		Body:  body,
	}
	if !e.inj.TryInject(msg) {
		e.pool.PutReq(body)
		return false
	}
	if write {
		e.DRAMLinesWritten++
	} else {
		e.DRAMLinesRequested++
	}
	return true
}

// OnMessage handles a NoC delivery addressed to this lane. The lane is
// the single consumer of *MemRespBody and *ForwardBody deliveries, so
// it frees them back to its pool here — immediately after extracting
// their fields, before any early return.
func (e *Engine) OnMessage(msg noc.Message) {
	switch body := msg.Body.(type) {
	case *proto.MemRespBody:
		lane, write, route, seq := proto.SplitReqID(body.ReqID)
		e.pool.PutResp(body)
		if lane != e.lane {
			panic("stream: response for another lane")
		}
		if write {
			e.writes[route].acked++
			return
		}
		isIdx := route >= idxPortBias
		if isIdx {
			route -= idxPortBias
		}
		c := e.ctxByID[route]
		if c == nil {
			panic("stream: response for unknown read context")
		}
		if isIdx {
			c.idxArrived[seq] = true
			c.idxOutst--
			for c.idxPrefix < len(c.idxArrived) && c.idxArrived[c.idxPrefix] {
				c.idxElems += c.idxSpans[c.idxPrefix].Elems
				c.idxPrefix++
			}
			e.retireIfDone(c)
			return
		}
		c.arrived[seq] = true
		c.outst--
		before := c.avail
		for c.prefix < len(c.arrived) && c.arrived[c.prefix] {
			c.avail += c.spans[c.prefix].Elems
			c.prefix++
		}
		if e.obs != nil {
			e.obs.Emit(obs.Event{Cycle: int64(e.now), Kind: obs.KindSpanComplete,
				Comp: int32(e.lane), A: seq, B: int64(c.avail - before)})
		}
		e.retireIfDone(c)
	case proto.McastLineBody:
		buf := e.mcBuf[body.Group]
		if buf == nil {
			buf = make(map[int]bool)
			e.mcBuf[body.Group] = buf
		}
		buf[body.Seq] = true
		for _, c := range e.reads {
			if c.kind != SrcMulticast || c.group != body.Group {
				continue
			}
			if body.Seq < len(c.mcArr) && !c.mcArr[body.Seq] {
				c.mcArr[body.Seq] = true
				c.mcCount++
				e.advanceMcast(c)
			}
		}
	case *proto.ForwardBody:
		port, count := body.Port, body.Count
		e.pool.PutFwd(body)
		c := e.reads[port]
		if c.kind != SrcForward {
			panic("stream: forward delivery to non-forward port")
		}
		c.avail += count
		e.FwdElemsRecv += int64(count)
	default:
		panic(fmt.Sprintf("stream: unexpected message body %T", msg.Body))
	}
}

// advanceMcast recomputes a multicast context's availability from its
// arrived-line count. Multicast fills land in the lane's per-group
// landing buffer (mcBuf), which the port drains in stream order with
// full-buffer visibility — so availability tracks the count of arrived
// lines rather than the in-order prefix (lines from different channels
// and multicast tree branches legitimately arrive out of order).
func (e *Engine) advanceMcast(c *readCtx) {
	elemsPerLine := e.cfg.DRAM.LineBytes / mem.ElemBytes
	av := c.mcCount*elemsPerLine - c.headSkip
	if av < 0 {
		av = 0
	}
	if av > c.n {
		av = c.n
	}
	c.avail = av
}

// collectSpad drains matured scratchpad responses.
func (e *Engine) collectSpad(now sim.Cycle) {
	for {
		r, ok := e.spad.PopResponse(now)
		if !ok {
			return
		}
		_, write, route, seq := proto.SplitReqID(r.ID)
		if write {
			e.writes[route].spadAcked++
			continue
		}
		c := e.ctxByID[route]
		if c == nil {
			panic("stream: scratchpad response for unknown read context")
		}
		c.spadArrived[seq] = true
		for c.spadPrefix < len(c.spadArrived) && c.spadArrived[c.spadPrefix] {
			c.spadPrefix++
		}
		c.avail = c.spadPrefix
		e.retireIfDone(c)
	}
}
