// Package stream implements the per-lane stream engines of the
// accelerator: the hardware that turns stream descriptors into timed
// memory traffic and feeds the fabric's vector ports.
//
// The repository-wide simulation discipline (DESIGN.md §3) splits
// function from timing: kernels are evaluated eagerly against
// mem.Storage when a task is dispatched, so the engines here move
// element *counts* with correct addresses, sizes, orders, and
// contention — never data values.
package stream

import (
	"taskstream/internal/mem"
)

// SrcKind identifies where a read stream's elements come from.
type SrcKind uint8

// Read-stream sources.
const (
	// SrcNone marks an unused port.
	SrcNone SrcKind = iota
	// SrcDRAM streams lines from main memory (linear, affine, or
	// gather — the shape is captured by the element address list).
	SrcDRAM
	// SrcSpad streams elements from the lane-private scratchpad.
	SrcSpad
	// SrcConst delivers a constant; always available.
	SrcConst
	// SrcForward receives elements forwarded from a producer task over
	// the NoC (pipelined inter-task dependence).
	SrcForward
	// SrcMulticast receives lines of a coordinator-managed shared-read
	// group fetch (inter-task read sharing).
	SrcMulticast
	// NumSrcKinds counts the source kinds; dense per-kind counter
	// arrays (lane stall attribution) are sized by it.
	NumSrcKinds
)

// DstKind identifies where a write stream's elements go.
type DstKind uint8

// Write-stream destinations.
const (
	// DstNone marks an unused port.
	DstNone DstKind = iota
	// DstDRAM coalesces elements into line writes to main memory.
	DstDRAM
	// DstSpad writes elements to the lane-private scratchpad.
	DstSpad
	// DstForward ships elements to a consumer task's input port.
	DstForward
	// DstDiscard drops elements (reductions returned as scalars).
	DstDiscard
)

// ReadSetup programs one input port for one task execution.
type ReadSetup struct {
	Kind SrcKind
	// N is the element count the port will deliver.
	N int
	// Addrs lists the element addresses in stream order (SrcDRAM,
	// SrcSpad). Linear streams have consecutive addresses; gathers are
	// arbitrary.
	Addrs []mem.Addr
	// IdxAddrs optionally lists the gather-index element addresses that
	// gate Addrs: element k of Addrs may be fetched only after index
	// element k has arrived (SrcDRAM gathers).
	IdxAddrs []mem.Addr
	// Group and Lines describe a SrcMulticast membership: the group id
	// and the expected line count of the group fetch.
	Group uint64
	Lines int
	// HeadSkip is the number of elements in the group fetch's first
	// line that precede this port's first element (SrcMulticast).
	HeadSkip int
}

// WriteSetup programs one output port for one task execution.
type WriteSetup struct {
	Kind DstKind
	// N is the element count the port will produce.
	N int
	// Addrs lists the element addresses in stream order (DstDRAM,
	// DstSpad); always consecutive for DstDRAM.
	Addrs []mem.Addr
	// ConsumerLane and ConsumerPort address forwarded elements
	// (DstForward).
	ConsumerLane int
	ConsumerPort int
	// Gate, when non-nil, holds forwarded shipments until the consumer
	// task has started on its lane and programmed the receiving port
	// (set true by the consumer's lane). Nil means always open.
	Gate *bool
}

// Span is a run of consecutive stream elements that share one memory
// line; one Span turns into one line request.
type Span struct {
	Line mem.Addr
	// Elems is the number of stream elements the span covers.
	Elems int
	// NeedIdx is the number of gather-index elements that must have
	// arrived before this span may issue (0 for linear streams).
	NeedIdx int
}

// BuildSpans groups an ordered element-address list into line spans.
// Consecutive elements hitting the same line coalesce; revisiting a
// line after leaving it creates a new span (no MSHR-style merging
// across time, a documented simplification).
func BuildSpans(addrs []mem.Addr, lineBytes int) []Span {
	var spans []Span
	for _, a := range addrs {
		line := mem.LineOf(a, lineBytes)
		if n := len(spans); n > 0 && spans[n-1].Line == line {
			spans[n-1].Elems++
			continue
		}
		spans = append(spans, Span{Line: line, Elems: 1})
	}
	return spans
}

// BuildGatherSpans groups gather addresses into spans and stamps each
// span with its index-gating requirement: a span covering elements
// [e0,e1) needs e1 index elements delivered first.
func BuildGatherSpans(addrs []mem.Addr, lineBytes int) []Span {
	spans := BuildSpans(addrs, lineBytes)
	e := 0
	for i := range spans {
		e += spans[i].Elems
		spans[i].NeedIdx = e
	}
	return spans
}

// LinearAddrs returns n consecutive element addresses from base.
func LinearAddrs(base mem.Addr, n int) []mem.Addr {
	out := make([]mem.Addr, n)
	for i := range out {
		out[i] = base + mem.Addr(i*mem.ElemBytes)
	}
	return out
}

// Affine2DAddrs returns rows×rowLen element addresses with a row pitch
// of pitch elements (a 2-D affine stream, e.g. a matrix tile).
func Affine2DAddrs(base mem.Addr, rows, rowLen, pitch int) []mem.Addr {
	out := make([]mem.Addr, 0, rows*rowLen)
	for r := 0; r < rows; r++ {
		rowBase := base + mem.Addr(r*pitch*mem.ElemBytes)
		for i := 0; i < rowLen; i++ {
			out = append(out, rowBase+mem.Addr(i*mem.ElemBytes))
		}
	}
	return out
}

// GatherAddrs returns base+idx*8 for each index.
func GatherAddrs(base mem.Addr, idxs []uint64) []mem.Addr {
	out := make([]mem.Addr, len(idxs))
	for i, ix := range idxs {
		out[i] = base + mem.Addr(ix*mem.ElemBytes)
	}
	return out
}
