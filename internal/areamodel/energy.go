package areamodel

import "taskstream/internal/stats"

// Energy pricing: per-event constants (pJ, 28nm-class estimates — as
// with area, the absolute numbers are modeled; the reproduced result is
// the *composition* of energy and how the TaskStream mechanisms shift
// it from DRAM toward the cheap on-chip structures).
const (
	pjDRAMLine   = 2200.0 // one 64B DRAM line access (≈34 pJ/B)
	pjNoCFlit    = 6.0    // one flit traversing one link
	pjSpadAccess = 8.0    // one 8B scratchpad access
	pjFire       = 12.0   // one fabric firing (vector-width datapath)
	pjDispatch   = 20.0   // one coordinator dispatch decision
	pjSpawn      = 24.0   // one spawn round trip
	pjLeakPerCyc = 50.0   // machine-wide static power per cycle
)

// EnergyBreakdown prices one run's event counts.
type EnergyBreakdown struct {
	DRAM    float64
	NoC     float64
	Spad    float64
	Fabric  float64
	Control float64
	Static  float64
}

// Total returns the sum in pJ.
func (e EnergyBreakdown) Total() float64 {
	return e.DRAM + e.NoC + e.Spad + e.Fabric + e.Control + e.Static
}

// EnergyOf prices a run from its statistics counters (the names are
// the ones core.Machine reports).
func EnergyOf(s *stats.Set) EnergyBreakdown {
	lines := s.Get("dram_lines_read") + s.Get("dram_lines_written")
	return EnergyBreakdown{
		DRAM:    float64(lines) * pjDRAMLine,
		NoC:     float64(s.Get("noc_flit_cycles")) * pjNoCFlit,
		Spad:    float64(s.Get("spad_accesses")) * pjSpadAccess,
		Fabric:  float64(s.Get("fire_cycles")) * pjFire,
		Control: float64(s.Get("tasks_dispatched"))*pjDispatch + float64(s.Get("tasks_spawned"))*pjSpawn,
		Static:  float64(s.Get("cycles")) * pjLeakPerCyc,
	}
}
