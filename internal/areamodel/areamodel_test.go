package areamodel

import (
	"testing"

	"taskstream/internal/config"
)

func TestOverheadIsSmall(t *testing.T) {
	m := New(config.Default8())
	base, added, total := m.Totals()
	if base <= 0 || added <= 0 {
		t.Fatalf("totals: base=%v added=%v", base, added)
	}
	if total != base+added {
		t.Fatalf("total %v != base+added %v", total, base+added)
	}
	// The reproduced claim: TaskStream hardware is a few percent of
	// the accelerator — between 0.5% and 10%.
	f := m.OverheadFraction()
	if f < 0.005 || f > 0.10 {
		t.Fatalf("overhead fraction %.4f outside the plausible band [0.005, 0.10]", f)
	}
}

func TestOverheadShrinksWithBiggerFabric(t *testing.T) {
	small := config.Default8()
	big := config.Default8()
	big.Fabric.Rows, big.Fabric.Cols = 8, 8
	if New(big).OverheadFraction() >= New(small).OverheadFraction() {
		t.Fatal("a larger fabric should dilute the TaskStream overhead")
	}
}

func TestPerLaneScaling(t *testing.T) {
	// Doubling lanes should roughly double total area (per-lane parts
	// dominate) but keep the overhead fraction in the same band.
	a := New(config.Default8().WithLanes(8))
	b := New(config.Default8().WithLanes(16))
	_, _, ta := a.Totals()
	_, _, tb := b.Totals()
	if tb < 1.6*ta || tb > 2.4*ta {
		t.Fatalf("16-lane area %v vs 8-lane %v: expected ≈2x", tb, ta)
	}
	fa, fb := a.OverheadFraction(), b.OverheadFraction()
	if fb > 2*fa {
		t.Fatalf("overhead fraction should not blow up with lanes: %v → %v", fa, fb)
	}
}

func TestComponentsCategorized(t *testing.T) {
	m := New(config.Default8())
	sawTS, sawBase := false, false
	for _, c := range m.Components {
		if c.Area <= 0 {
			t.Fatalf("component %s has non-positive area", c.Name)
		}
		if c.TaskStream {
			sawTS = true
		} else {
			sawBase = true
		}
	}
	if !sawTS || !sawBase {
		t.Fatal("model must contain both baseline and TaskStream components")
	}
}
