package areamodel

import (
	"testing"

	"taskstream/internal/stats"
)

func sampleStats() *stats.Set {
	s := stats.NewSet()
	s.SetVal("dram_lines_read", 1000)
	s.SetVal("dram_lines_written", 500)
	s.SetVal("noc_flit_cycles", 20000)
	s.SetVal("spad_accesses", 30000)
	s.SetVal("fire_cycles", 40000)
	s.SetVal("tasks_dispatched", 100)
	s.SetVal("tasks_spawned", 20)
	s.SetVal("cycles", 50000)
	return s
}

func TestEnergyComposition(t *testing.T) {
	e := EnergyOf(sampleStats())
	if e.DRAM != 1500*pjDRAMLine {
		t.Fatalf("DRAM = %v", e.DRAM)
	}
	if e.NoC != 20000*pjNoCFlit || e.Spad != 30000*pjSpadAccess || e.Fabric != 40000*pjFire {
		t.Fatal("per-event pricing wrong")
	}
	if e.Control != 100*pjDispatch+20*pjSpawn {
		t.Fatalf("control = %v", e.Control)
	}
	if e.Static != 50000*pjLeakPerCyc {
		t.Fatalf("static = %v", e.Static)
	}
	sum := e.DRAM + e.NoC + e.Spad + e.Fabric + e.Control + e.Static
	if e.Total() != sum {
		t.Fatalf("Total %v != sum %v", e.Total(), sum)
	}
}

func TestDRAMDominatesAtTypicalMix(t *testing.T) {
	// At a realistic event mix, DRAM must be the top contributor — the
	// premise of the traffic-saving mechanisms' energy story.
	e := EnergyOf(sampleStats())
	for _, other := range []float64{e.NoC, e.Spad, e.Fabric, e.Control} {
		if e.DRAM <= other {
			t.Fatalf("DRAM energy %v should dominate (other %v)", e.DRAM, other)
		}
	}
}

func TestEnergyMonotoneInTraffic(t *testing.T) {
	a := EnergyOf(sampleStats())
	s := sampleStats()
	s.SetVal("dram_lines_read", 2000)
	b := EnergyOf(s)
	if b.Total() <= a.Total() {
		t.Fatal("more DRAM lines must cost more energy")
	}
}

func TestEnergyZeroStats(t *testing.T) {
	if got := EnergyOf(stats.NewSet()).Total(); got != 0 {
		t.Fatalf("empty stats energy = %v, want 0", got)
	}
}
