// Package areamodel provides the analytical hardware-cost accounting
// behind the paper's "TaskStream support is a small fraction of the
// accelerator" claim (experiment E10). RTL synthesis is out of reach
// for this reproduction, so the model prices each structure from its
// dominant component — SRAM bits, CAM bits, FU datapaths, router
// crossbars — using per-bit/per-unit constants calibrated to published
// CGRA and NoC area breakdowns at a 28nm-class node. The absolute
// numbers are estimates; the *ratio* of TaskStream additions to the
// baseline datapath is the reproduced result.
package areamodel

import (
	"taskstream/internal/config"
)

// Component is one priced hardware structure.
type Component struct {
	Name string
	// Area in mm² (model units).
	Area float64
	// TaskStream marks structures added by the TaskStream model (the
	// overhead under study); false marks baseline datapath.
	TaskStream bool
	// PerLane marks structures replicated per lane.
	PerLane bool
}

// Model prices a configuration.
type Model struct {
	Components []Component
	cfg        config.Config
}

// Area constants (mm², 28nm-class estimates).
const (
	fuArea          = 0.0035  // one 64-bit FU with routing share
	portArea        = 0.0020  // one vector port (width-4) incl. buffers
	sramMm2PerKB    = 0.0018  // dense SRAM
	camMm2PerEntry  = 0.00009 // 64-bit CAM entry (tag/range match)
	routerArea      = 0.012   // 5-port mesh router, 128-bit links
	dispatchLogic   = 0.010   // coordinator pick/argmin tree
	streamCtxArea   = 0.0011  // one stream-engine context (AG + tracking)
	mcastTableEntry = 0.00012 // multicast group entry (range + mask + cursor)
)

// New builds the model for a configuration.
func New(cfg config.Config) *Model {
	m := &Model{cfg: cfg}
	fab := cfg.Fabric
	add := func(name string, area float64, ts, perLane bool) {
		m.Components = append(m.Components, Component{Name: name, Area: area, TaskStream: ts, PerLane: perLane})
	}

	// Baseline per-lane datapath.
	add("fabric FUs", float64(fab.Rows*fab.Cols)*fuArea, false, true)
	add("vector ports", float64(2*fab.NumPorts)*portArea, false, true)
	add("stream contexts", float64(2*fab.NumPorts)*streamCtxArea, false, true)
	add("scratchpad", float64(cfg.Spad.Bytes)/1024*sramMm2PerKB, false, true)
	add("config store", 4*sramMm2PerKB, false, true)
	// Baseline shared structures.
	add("mesh routers", float64(cfg.Lanes+cfg.DRAM.Channels)*routerArea, false, false)
	add("memory controllers", float64(cfg.DRAM.Channels)*0.05, false, false)

	// TaskStream additions.
	taskEntryBits := 512.0 // type + scalars + stream descriptors + annotations
	queueKB := float64(cfg.Task.QueueDepth) * taskEntryBits / 8 / 1024
	add("task queues", float64(1)*queueKB*sramMm2PerKB, true, true)
	add("coordinator dispatch", dispatchLogic, true, false)
	add("work-hint table", float64(cfg.Lanes)*64/8/1024*sramMm2PerKB+0.002, true, false)
	add("tag CAM", 64*camMm2PerEntry, true, false)
	add("multicast table", 32*mcastTableEntry, true, false)
	add("spawn/completion network", float64(cfg.Lanes)*0.0008, true, false)
	add("forward gating", float64(fab.NumPorts)*0.0002, true, true)
	return m
}

// Totals returns baseline, TaskStream-added, and total area in mm².
func (m *Model) Totals() (baseline, added, total float64) {
	for _, c := range m.Components {
		a := c.Area
		if c.PerLane {
			a *= float64(m.cfg.Lanes)
		}
		if c.TaskStream {
			added += a
		} else {
			baseline += a
		}
	}
	return baseline, added, baseline + added
}

// OverheadFraction returns added/total — the headline overhead number.
func (m *Model) OverheadFraction() float64 {
	_, added, total := m.Totals()
	if total == 0 {
		return 0
	}
	return added / total
}
