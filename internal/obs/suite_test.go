package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/obs"
	"taskstream/internal/workload"
)

// TestTracedSuiteExport runs one observed simulation per workload
// family (irregular sparse, relational, regular dense) on the default
// config and pins the acceptance criterion: the export is valid
// trace-event JSON whose every event carries ph/ts/pid/tid, with lane,
// stream-engine, NoC, and DRAM tracks all populated.
func TestTracedSuiteExport(t *testing.T) {
	families := []string{"spmv", "join", "stencil"}
	for _, name := range families {
		t.Run(name, func(t *testing.T) {
			nb := workload.ByName(name)
			if nb == nil {
				t.Fatalf("unknown workload %q", name)
			}
			w := nb.Build()
			cfg, opts := baseline.Delta.Configure(config.Default8())
			sink := obs.New(100000)
			opts.Obs = sink
			rep, err := baseline.RunCfg(cfg, opts, w.Prog, w.Storage)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := w.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			if rep.Cycles <= 0 || sink.Len() == 0 {
				t.Fatalf("cycles=%d events=%d", rep.Cycles, sink.Len())
			}

			var buf bytes.Buffer
			if err := obs.WriteChromeTrace(&buf, sink); err != nil {
				t.Fatalf("export: %v", err)
			}
			if !json.Valid(buf.Bytes()) {
				t.Fatal("export is not valid JSON")
			}
			var top struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			// pid 2..5 = lanes, stream-engines, noc, dram (export.go).
			tracks := map[float64]int{}
			for i, ev := range top.TraceEvents {
				for _, field := range []string{"ph", "ts", "pid", "tid"} {
					if _, ok := ev[field]; !ok {
						t.Fatalf("event %d missing %q", i, field)
					}
				}
				if ev["ph"] != "M" {
					tracks[ev["pid"].(float64)]++
				}
			}
			for pid, label := range map[float64]string{2: "lane", 3: "stream-engine", 4: "noc", 5: "dram"} {
				if tracks[pid] == 0 {
					t.Fatalf("no %s events in the %s trace (tracks: %v)", label, name, tracks)
				}
			}
		})
	}
}
