package obs

// Emitter is the interface emit sites hold: a *Sink (serial execution)
// or a *Buffer (a sharded lane's per-shard staging area). The nil-sink
// convention carries over — emit sites never check for observation
// being enabled; they hold a nil *Sink when it is off.
type Emitter interface {
	Emit(Event)
}

// Buffer stages events emitted during a sharded cycle's parallel phase
// so they can be forwarded to the shared Sink at the epoch barrier, in
// shard registration order. That reproduces the serial per-cycle
// emission order exactly: within one cycle a serial run emits each
// lane's events contiguously, lane 0 before lane 1, which is precisely
// the order the barrier flushes buffers in.
//
// A Buffer belongs to one parallel ticker; Emit must only be called
// from that ticker's Tick, Flush only from the barrier.
type Buffer struct {
	sink   *Sink
	events []Event
}

// NewBuffer returns a staging buffer that flushes into sink.
func NewBuffer(sink *Sink) *Buffer { return &Buffer{sink: sink} }

// Emit stages one event.
func (b *Buffer) Emit(ev Event) { b.events = append(b.events, ev) }

// Flush forwards the staged events to the sink in emission order and
// clears the buffer, keeping its capacity for the next cycle.
func (b *Buffer) Flush() {
	for i := range b.events {
		b.sink.Emit(b.events[i])
	}
	clear := b.events[:0]
	for i := range b.events {
		b.events[i] = Event{}
	}
	b.events = clear
}
