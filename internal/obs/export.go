package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event process ids, one per component class. Perfetto
// and chrome://tracing render each pid as a process group with one
// track per tid.
const (
	pidCoordinator = 1
	pidLanes       = 2
	pidStreams     = 3
	pidNoC         = 4
	pidDRAM        = 5
	pidMcast       = 6
)

// chromeEvent is one entry of the trace-event JSON array. Every event
// carries ph/ts/pid/tid — including metadata events, which the format
// allows to omit ts but downstream validators here require uniformly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the exported JSON object. displayTimeUnit only
// affects on-screen formatting: ts values are simulated cycles,
// exported 1 cycle = 1 µs.
type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	DisplayUnit string         `json:"displayTimeUnit"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the sink's event stream as Chrome
// trace-event / Perfetto-compatible JSON: a thread per lane, stream
// engine, NoC link, and DRAM channel; complete ("X") events for spans
// with their kind-specific arguments; instant ("i") events for
// decisions. Load the file at https://ui.perfetto.dev or
// chrome://tracing.
func WriteChromeTrace(w io.Writer, s *Sink) error {
	events := s.Events()
	out := chromeTrace{
		DisplayUnit: "ms",
		OtherData: map[string]any{
			"cycles_per_ts_unit": 1,
			"events":             len(events),
			"dropped":            s.Dropped(),
		},
	}
	out.TraceEvents = append(out.TraceEvents, metadataEvents(s, events)...)
	for _, ev := range events {
		out.TraceEvents = append(out.TraceEvents, convert(ev))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// metadataEvents names every process and every thread the trace uses,
// in deterministic order.
func metadataEvents(s *Sink, events []Event) []chromeEvent {
	procs := []struct {
		pid  int
		name string
	}{
		{pidCoordinator, "coordinator"},
		{pidLanes, "lanes"},
		{pidStreams, "stream-engines"},
		{pidNoC, "noc"},
		{pidDRAM, "dram"},
		{pidMcast, "multicast"},
	}
	var out []chromeEvent
	for _, p := range procs {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Ts: 0, Pid: p.pid, Tid: 0,
			Args: map[string]any{"name": p.name},
		})
	}
	out = append(out, chromeEvent{
		Name: "thread_name", Ph: "M", Ts: 0, Pid: pidCoordinator, Tid: 0,
		Args: map[string]any{"name": "dispatch"},
	})
	out = append(out, chromeEvent{
		Name: "thread_name", Ph: "M", Ts: 0, Pid: pidMcast, Tid: 0,
		Args: map[string]any{"name": "table"},
	})
	for lane := 0; lane < s.Lanes; lane++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Ts: 0, Pid: pidLanes, Tid: lane,
			Args: map[string]any{"name": fmt.Sprintf("lane %d", lane)},
		})
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Ts: 0, Pid: pidStreams, Tid: lane,
			Args: map[string]any{"name": fmt.Sprintf("engine %d", lane)},
		})
	}
	for c := 0; c < s.Channels; c++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Ts: 0, Pid: pidDRAM, Tid: c,
			Args: map[string]any{"name": fmt.Sprintf("channel %d", c)},
		})
	}
	// NoC links: name only the links the trace actually touches, so an
	// idle 64-node mesh does not add 200+ empty tracks.
	used := map[int32]bool{}
	for _, ev := range events {
		if ev.Kind == KindNoCHop {
			used[ev.Comp] = true
		}
	}
	links := make([]int, 0, len(used))
	for l := range used {
		links = append(links, int(l))
	}
	sort.Ints(links)
	for _, l := range links {
		label := fmt.Sprintf("link %d", l)
		if l < len(s.LinkLabels) {
			label = s.LinkLabels[l]
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Ts: 0, Pid: pidNoC, Tid: l,
			Args: map[string]any{"name": label},
		})
	}
	return out
}

// convert maps one observed event onto its trace-event form.
func convert(ev Event) chromeEvent {
	switch ev.Kind {
	case KindDispatch:
		return chromeEvent{
			Name: "dispatch " + ev.Name, Ph: "i", Ts: ev.Cycle,
			Pid: pidCoordinator, Tid: 0, Cat: "dispatch", S: "t",
			Args: map[string]any{
				"lane":        ev.Comp,
				"work_hint":   ev.A,
				"losing_mask": fmt.Sprintf("%#x", uint64(ev.B)),
			},
		}
	case KindLaneState:
		name := ev.Cause.String()
		if ev.Cause == CauseRun && ev.Name != "" {
			name = ev.Name
		}
		return chromeEvent{
			Name: name, Ph: "X", Ts: ev.Cycle, Dur: ev.Dur,
			Pid: pidLanes, Tid: int(ev.Comp), Cat: "lane",
			Args: map[string]any{"cause": ev.Cause.String(), "task": ev.Name},
		}
	case KindSpanIssue:
		return chromeEvent{
			Name: "span-issue", Ph: "i", Ts: ev.Cycle,
			Pid: pidStreams, Tid: int(ev.Comp), Cat: "stream", S: "t",
			Args: map[string]any{"line": fmt.Sprintf("%#x", ev.A), "elems": ev.B},
		}
	case KindSpanComplete:
		return chromeEvent{
			Name: "span-complete", Ph: "i", Ts: ev.Cycle,
			Pid: pidStreams, Tid: int(ev.Comp), Cat: "stream", S: "t",
			Args: map[string]any{"seq": ev.A, "elems": ev.B},
		}
	case KindMcastHit, KindMcastMiss, KindMcastForward:
		return chromeEvent{
			Name: ev.Kind.String(), Ph: "i", Ts: ev.Cycle,
			Pid: pidMcast, Tid: 0, Cat: "mcast", S: "t",
			Args: map[string]any{"comp": ev.Comp, "group": ev.A, "lines": ev.B},
		}
	case KindNoCHop:
		return chromeEvent{
			Name: "xmit", Ph: "X", Ts: ev.Cycle, Dur: ev.Dur,
			Pid: pidNoC, Tid: int(ev.Comp), Cat: "noc",
			Args: map[string]any{"bytes": ev.A, "kind": ev.B},
		}
	case KindDRAM:
		name := "read"
		if ev.B != 0 {
			name = "write"
		}
		return chromeEvent{
			Name: name, Ph: "X", Ts: ev.Cycle, Dur: ev.Dur,
			Pid: pidDRAM, Tid: int(ev.Comp), Cat: "dram",
			Args: map[string]any{"line": fmt.Sprintf("%#x", ev.A)},
		}
	default:
		return chromeEvent{
			Name: ev.Kind.String(), Ph: "i", Ts: ev.Cycle,
			Pid: pidCoordinator, Tid: 0, S: "t",
		}
	}
}
