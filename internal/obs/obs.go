// Package obs is the machine-wide observability layer: a generalized
// cycle-stamped event stream every hardware model emits into, a
// per-component metrics registry folding those events into utilization
// and stall-breakdown counters, and exporters (Chrome trace-event /
// Perfetto JSON, per-lane stall-attribution text) over the collected
// stream.
//
// The emission pattern mirrors trace.Recorder: a *Sink travels through
// the machine, every emit site calls Emit unconditionally, and a nil
// sink makes the call a single predictable branch. Observation is
// strictly passive — emitting events never alters simulation behavior —
// and the machine disables event-horizon fast-forwarding while a sink
// is attached so per-cycle attribution is observed rather than
// synthesized, which the kernel's byte-identity contract (DESIGN.md
// §11) guarantees changes no cycle count or statistic.
package obs

// Kind is the typed class of an observed event. The component class an
// event belongs to (lane, stream engine, NoC link, DRAM channel, ...)
// is implied by the kind; Comp indexes the instance within that class.
type Kind uint8

// Event kinds, one per instrumented decision or activity.
const (
	// KindDispatch is a coordinator dispatch decision. Comp is the
	// chosen lane, A the task's effective work-hint value, B the
	// bitmask of losing candidate lanes that were considered (lanes
	// with queue space, minus the winner), Name the task type.
	KindDispatch Kind = iota
	// KindLaneState is a lane-state span: the lane spent cycles
	// [Cycle, Cycle+Dur) in the state named by Cause. Comp is the
	// lane, Name the resident task type (empty outside a task).
	KindLaneState
	// KindSpanIssue marks a stream engine injecting the request for
	// one DRAM line span. Comp is the lane, A the line address, B the
	// element count the span covers.
	KindSpanIssue
	// KindSpanComplete marks a stream-engine line span fully arrived.
	// Comp is the lane, A the span sequence number, B the elements
	// newly deliverable to the fabric.
	KindSpanComplete
	// KindMcastHit is a multicast-table join that found an open group.
	// Comp is the joining lane's NoC node, A the group id, B the
	// unicast line fetches the hit avoided.
	KindMcastHit
	// KindMcastMiss is a multicast-table join that opened a new group.
	// Comp is the lane's NoC node, A the new group id, B its line
	// count.
	KindMcastMiss
	// KindMcastForward is one multicast line response leaving a memory
	// controller for every member lane. Comp is the DRAM channel, A
	// the group id, B the line sequence number.
	KindMcastForward
	// KindNoCHop is one link transmission: the link was occupied for
	// [Cycle, Cycle+Dur) serializing a message. Comp is the link
	// index (see Sink.LinkLabels), A the payload bytes, B the message
	// kind.
	KindNoCHop
	// KindDRAM is one channel service: the data bus was occupied for
	// [Cycle, Cycle+Dur). Comp is the channel, A the line address, B
	// 1 for a write.
	KindDRAM
	// NumKinds counts the event kinds.
	NumKinds
)

// String names the kind for summaries and exporter track labels.
func (k Kind) String() string {
	switch k {
	case KindDispatch:
		return "dispatch"
	case KindLaneState:
		return "lane-state"
	case KindSpanIssue:
		return "span-issue"
	case KindSpanComplete:
		return "span-complete"
	case KindMcastHit:
		return "mcast-hit"
	case KindMcastMiss:
		return "mcast-miss"
	case KindMcastForward:
		return "mcast-forward"
	case KindNoCHop:
		return "noc-hop"
	case KindDRAM:
		return "dram"
	default:
		return "unknown"
	}
}

// Cause classifies what a lane spent a state span doing — the stall
// attribution taxonomy. Stall causes name the resource whose
// unavailability gated the next firing.
type Cause uint8

// Lane-state causes.
const (
	// CauseIdle: no task resident and none queued.
	CauseIdle Cause = iota
	// CauseRun: a firing issued this cycle or the pipeline is
	// initiating at its II.
	CauseRun
	// CauseConfig: the fabric is being reconfigured for a new task
	// type.
	CauseConfig
	// CauseStallDRAM: the next firing waits on a DRAM-sourced stream.
	CauseStallDRAM
	// CauseStallSpad: waits on a scratchpad-sourced stream.
	CauseStallSpad
	// CauseStallFwd: waits on a forwarded dependence (producer has not
	// shipped enough elements yet).
	CauseStallFwd
	// CauseStallMcast: waits on a multicast group line.
	CauseStallMcast
	// CauseStallOut: waits on output write-buffer space.
	CauseStallOut
	// CauseDrain: all firings issued; output streams draining.
	CauseDrain
	// CauseBarrier: idle with the current phase's queue empty but
	// tasks still active — the phase-barrier wait.
	CauseBarrier
	// NumCauses counts the causes; dense per-cause arrays use it.
	NumCauses
)

// String names the cause for summaries and exporter span labels.
func (c Cause) String() string {
	switch c {
	case CauseIdle:
		return "idle"
	case CauseRun:
		return "run"
	case CauseConfig:
		return "config"
	case CauseStallDRAM:
		return "stall-dram"
	case CauseStallSpad:
		return "stall-spad"
	case CauseStallFwd:
		return "stall-fwd"
	case CauseStallMcast:
		return "stall-mcast"
	case CauseStallOut:
		return "stall-out"
	case CauseDrain:
		return "drain"
	case CauseBarrier:
		return "barrier"
	default:
		return "unknown"
	}
}

// Event is one cycle-stamped observation. Field semantics are
// kind-specific; see the Kind constants.
type Event struct {
	// Cycle is the event's (or span's start) cycle.
	Cycle int64
	// Dur is the span length in cycles for span-shaped kinds
	// (KindLaneState, KindNoCHop, KindDRAM); 0 for instants.
	Dur int64
	// Kind is the event class.
	Kind Kind
	// Cause attributes KindLaneState spans.
	Cause Cause
	// Comp is the emitting component instance within the kind's class.
	Comp int32
	// A, B are kind-specific arguments.
	A, B int64
	// Name carries the task-type name where one applies.
	Name string
}

// Sink accumulates events and folds them into metrics as they arrive.
// A nil *Sink ignores all emissions at the cost of one branch — the
// same contract trace.Recorder established — so every hardware model
// emits unconditionally.
type Sink struct {
	events  []Event
	limit   int
	dropped int64
	metrics Metrics

	// Topology metadata the exporters need to label tracks; the
	// machine fills these while wiring the sink through its models.
	Lanes      int
	Channels   int
	LinkLabels []string
}

// New returns a sink bounded to limit buffered events (0 = unbounded).
// Metrics keep folding past the limit; only the raw event buffer stops
// growing, with the overflow counted in Dropped.
func New(limit int) *Sink {
	return &Sink{limit: limit, metrics: newMetrics()}
}

// Emit records one event; nil-safe and limit-respecting.
func (s *Sink) Emit(ev Event) {
	if s == nil {
		return
	}
	s.metrics.fold(ev)
	if s.limit > 0 && len(s.events) >= s.limit {
		s.dropped++
		return
	}
	s.events = append(s.events, ev)
}

// Events returns the buffered events in emission order.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.events...)
}

// Len returns the buffered event count.
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Dropped returns how many events exceeded the buffer limit (their
// metrics were still folded).
func (s *Sink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// Metrics returns the per-component registry folded from every emitted
// event (including ones the buffer dropped). Nil-safe: a nil sink
// returns an empty registry.
func (s *Sink) Metrics() *Metrics {
	if s == nil {
		m := newMetrics()
		return &m
	}
	return &s.metrics
}
