package obs

import (
	"fmt"
	"strings"
	"sync"

	"taskstream/internal/stats"
)

// Metrics is the per-component registry folded incrementally from the
// event stream: per-lane per-cause cycle breakdowns, per-channel and
// per-link occupancy, and machine-wide event counts. It is built by
// Sink.Emit; read it through Sink.Metrics after a run.
type Metrics struct {
	// laneCause[lane][cause] is the cycles lane spent in cause-state
	// spans (KindLaneState Dur totals).
	laneCause map[int32]*[NumCauses]int64
	// linkBusy and dramBusy are per-component occupied cycles.
	linkBusy map[int32]int64
	dramBusy map[int32]int64

	// Machine-wide event counts.
	Dispatches      int64
	SpansIssued     int64
	SpansCompleted  int64
	McastHits       int64
	McastMisses     int64
	McastLinesSaved int64
	McastForwards   int64
	NoCHops         int64
	NoCBusyCycles   int64
	DRAMServices    int64
	DRAMBusyCycles  int64
}

func newMetrics() Metrics {
	return Metrics{
		laneCause: make(map[int32]*[NumCauses]int64),
		linkBusy:  make(map[int32]int64),
		dramBusy:  make(map[int32]int64),
	}
}

// fold accumulates one event into the registry.
func (m *Metrics) fold(ev Event) {
	switch ev.Kind {
	case KindDispatch:
		m.Dispatches++
	case KindLaneState:
		lc := m.laneCause[ev.Comp]
		if lc == nil {
			lc = new([NumCauses]int64)
			m.laneCause[ev.Comp] = lc
		}
		if ev.Cause < NumCauses {
			lc[ev.Cause] += ev.Dur
		}
	case KindSpanIssue:
		m.SpansIssued++
	case KindSpanComplete:
		m.SpansCompleted++
	case KindMcastHit:
		m.McastHits++
		m.McastLinesSaved += ev.B
	case KindMcastMiss:
		m.McastMisses++
	case KindMcastForward:
		m.McastForwards++
	case KindNoCHop:
		m.NoCHops++
		m.NoCBusyCycles += ev.Dur
		m.linkBusy[ev.Comp] += ev.Dur
	case KindDRAM:
		m.DRAMServices++
		m.DRAMBusyCycles += ev.Dur
		m.dramBusy[ev.Comp] += ev.Dur
	}
}

// LaneCause returns the cycles lane spent in cause-state spans.
func (m *Metrics) LaneCause(lane int, cause Cause) int64 {
	if lc := m.laneCause[int32(lane)]; lc != nil && cause < NumCauses {
		return lc[cause]
	}
	return 0
}

// CauseTotal returns the cycles all lanes together spent in cause.
func (m *Metrics) CauseTotal(cause Cause) int64 {
	var t int64
	for _, lc := range m.laneCause {
		if cause < NumCauses {
			t += lc[cause]
		}
	}
	return t
}

// Stats folds the registry into a named counter set — the surface the
// experiment harness and CLIs print. Counter order is fixed, so the
// output is deterministic.
func (m *Metrics) Stats() *stats.Set {
	s := stats.NewSet()
	s.SetVal("obs_dispatches", m.Dispatches)
	for c := Cause(0); c < NumCauses; c++ {
		s.SetVal("obs_lane_cycles_"+c.String(), m.CauseTotal(c))
	}
	s.SetVal("obs_spans_issued", m.SpansIssued)
	s.SetVal("obs_spans_completed", m.SpansCompleted)
	s.SetVal("obs_mcast_hits", m.McastHits)
	s.SetVal("obs_mcast_misses", m.McastMisses)
	s.SetVal("obs_mcast_lines_saved", m.McastLinesSaved)
	s.SetVal("obs_mcast_forwards", m.McastForwards)
	s.SetVal("obs_noc_hops", m.NoCHops)
	s.SetVal("obs_noc_busy_cycles", m.NoCBusyCycles)
	s.SetVal("obs_dram_services", m.DRAMServices)
	s.SetVal("obs_dram_busy_cycles", m.DRAMBusyCycles)
	return s
}

// StallSummary renders the per-lane stall-attribution table: one row
// per lane, one column per cause, each cell the cycles (and share of
// totalCycles) the lane spent there. totalCycles ≤ 0 suppresses the
// percentage column.
func (m *Metrics) StallSummary(lanes int, totalCycles int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall attribution (cycles per lane per cause):\n")
	causes := []Cause{CauseRun, CauseConfig, CauseStallDRAM, CauseStallSpad,
		CauseStallFwd, CauseStallMcast, CauseStallOut, CauseDrain, CauseBarrier}
	fmt.Fprintf(&b, "%-8s", "lane")
	for _, c := range causes {
		fmt.Fprintf(&b, "%12s", c.String())
	}
	b.WriteByte('\n')
	for lane := 0; lane < lanes; lane++ {
		fmt.Fprintf(&b, "%-8d", lane)
		for _, c := range causes {
			fmt.Fprintf(&b, "%12d", m.LaneCause(lane, c))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-8s", "total")
	for _, c := range causes {
		fmt.Fprintf(&b, "%12d", m.CauseTotal(c))
	}
	b.WriteByte('\n')
	if totalCycles > 0 {
		fmt.Fprintf(&b, "%-8s", "share")
		denom := float64(totalCycles) * float64(lanes)
		for _, c := range causes {
			fmt.Fprintf(&b, "%11.1f%%", 100*float64(m.CauseTotal(c))/denom)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Registry is a mutex-guarded process-wide counter set for metrics
// that aggregate across runs rather than within one — the
// fast-forward executed/skipped meters flow through it so harness
// binaries can report them without every run printing ad hoc.
type Registry struct {
	mu  sync.Mutex
	set *stats.Set
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{set: stats.NewSet()} }

// Add increments counter name by delta.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.set.Add(name, delta)
}

// Snapshot returns an independent copy of the current counters.
func (r *Registry) Snapshot() *stats.Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.set.Clone()
}

// Line renders the registry's counters as one "name=value ..." line in
// first-use order, for stderr summaries.
func (r *Registry) Line() string {
	s := r.Snapshot()
	var b strings.Builder
	for i, n := range s.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, s.Get(n))
	}
	return b.String()
}

// Empty reports whether nothing has been recorded.
func (r *Registry) Empty() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.set.Names()) == 0
}

// Global is the process-wide registry harness binaries report from
// (delta-bench appends it to -json output, delta-sim prints it to
// stderr when TASKSTREAM_FF_DEBUG is set).
var Global = NewRegistry()
