package obs

import (
	"strings"
	"testing"
)

// TestNilSinkSafe pins the nil-safe contract every hardware model
// relies on: all methods of a nil *Sink are no-ops.
func TestNilSinkSafe(t *testing.T) {
	var s *Sink
	s.Emit(Event{Kind: KindDispatch})
	if s.Len() != 0 || s.Dropped() != 0 || s.Events() != nil {
		t.Fatal("nil sink must observe nothing")
	}
	if s.Metrics() == nil {
		t.Fatal("nil sink must still return an (empty) metrics registry")
	}
	if s.Metrics().Dispatches != 0 {
		t.Fatal("nil sink metrics must be empty")
	}
}

// TestSinkLimitDropsEventsNotMetrics pins the overflow behavior: the
// raw buffer stops at the limit, but metrics keep folding so counters
// stay exact however small the buffer.
func TestSinkLimitDropsEventsNotMetrics(t *testing.T) {
	s := New(2)
	for i := 0; i < 5; i++ {
		s.Emit(Event{Kind: KindDispatch, Cycle: int64(i)})
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", s.Dropped())
	}
	if s.Metrics().Dispatches != 5 {
		t.Fatalf("Dispatches = %d, want 5 (metrics must survive drops)", s.Metrics().Dispatches)
	}
}

// TestEnumStrings pins that every declared kind and cause has a real
// name (exporter labels and summaries depend on it).
func TestEnumStrings(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("Kind %d has no name", k)
		}
	}
	for c := Cause(0); c < NumCauses; c++ {
		if c.String() == "unknown" || c.String() == "" {
			t.Errorf("Cause %d has no name", c)
		}
	}
	if NumKinds.String() != "unknown" || NumCauses.String() != "unknown" {
		t.Error("out-of-range enums must stringify as unknown")
	}
}

// TestMetricsFold pins the per-kind folding rules.
func TestMetricsFold(t *testing.T) {
	s := New(0)
	s.Emit(Event{Kind: KindLaneState, Comp: 0, Cause: CauseRun, Dur: 10})
	s.Emit(Event{Kind: KindLaneState, Comp: 0, Cause: CauseStallDRAM, Dur: 4})
	s.Emit(Event{Kind: KindLaneState, Comp: 1, Cause: CauseRun, Dur: 7})
	s.Emit(Event{Kind: KindNoCHop, Comp: 3, Dur: 2})
	s.Emit(Event{Kind: KindDRAM, Comp: 1, Dur: 8})
	s.Emit(Event{Kind: KindMcastHit, B: 16})
	s.Emit(Event{Kind: KindSpanIssue})
	s.Emit(Event{Kind: KindSpanComplete})
	m := s.Metrics()
	if m.LaneCause(0, CauseRun) != 10 || m.LaneCause(0, CauseStallDRAM) != 4 {
		t.Fatalf("lane 0 cause cycles wrong: run=%d dram=%d",
			m.LaneCause(0, CauseRun), m.LaneCause(0, CauseStallDRAM))
	}
	if m.CauseTotal(CauseRun) != 17 {
		t.Fatalf("CauseTotal(run) = %d, want 17", m.CauseTotal(CauseRun))
	}
	if m.NoCHops != 1 || m.NoCBusyCycles != 2 {
		t.Fatalf("noc: hops=%d busy=%d", m.NoCHops, m.NoCBusyCycles)
	}
	if m.DRAMServices != 1 || m.DRAMBusyCycles != 8 {
		t.Fatalf("dram: services=%d busy=%d", m.DRAMServices, m.DRAMBusyCycles)
	}
	if m.McastHits != 1 || m.McastLinesSaved != 16 {
		t.Fatalf("mcast: hits=%d saved=%d", m.McastHits, m.McastLinesSaved)
	}
	if m.SpansIssued != 1 || m.SpansCompleted != 1 {
		t.Fatalf("spans: issued=%d completed=%d", m.SpansIssued, m.SpansCompleted)
	}
	set := m.Stats()
	if set.Get("obs_lane_cycles_run") != 17 || set.Get("obs_noc_hops") != 1 {
		t.Fatalf("Stats() fold wrong: %s", set.String())
	}
}

// TestStallSummaryRenders pins the table shape: a row per lane, a
// total row, and a share row when a cycle count is supplied.
func TestStallSummaryRenders(t *testing.T) {
	s := New(0)
	s.Emit(Event{Kind: KindLaneState, Comp: 0, Cause: CauseRun, Dur: 80})
	s.Emit(Event{Kind: KindLaneState, Comp: 1, Cause: CauseBarrier, Dur: 20})
	out := s.Metrics().StallSummary(2, 100)
	for _, want := range []string{"lane", "run", "barrier", "total", "share", "80", "20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(s.Metrics().StallSummary(2, 0), "share") {
		t.Fatal("share row must be suppressed without a cycle count")
	}
}

// TestRegistry pins the process-wide counter registry delta-bench and
// the CLIs report from.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if !r.Empty() {
		t.Fatal("new registry must be empty")
	}
	r.Add("ff_runs", 1)
	r.Add("ff_skipped_cycles", 10)
	r.Add("ff_runs", 1)
	if r.Empty() {
		t.Fatal("registry with counters must not be empty")
	}
	snap := r.Snapshot()
	if snap.Get("ff_runs") != 2 || snap.Get("ff_skipped_cycles") != 10 {
		t.Fatalf("snapshot wrong: %s", snap.String())
	}
	// Snapshot is a copy: later adds must not leak in.
	r.Add("ff_runs", 5)
	if snap.Get("ff_runs") != 2 {
		t.Fatal("snapshot must be independent of later adds")
	}
	if got := r.Line(); got != "ff_runs=7 ff_skipped_cycles=10" {
		t.Fatalf("Line() = %q", got)
	}
}
