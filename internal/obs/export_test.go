package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeTrace unmarshals an exported trace generically, as a validator
// that knows nothing of chromeEvent's field set would.
func decodeTrace(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	if !json.Valid(b) {
		t.Fatal("exported trace is not valid JSON")
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &top); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return top.TraceEvents
}

// TestWriteChromeTraceRequiredFields pins the exporter contract the CI
// validator enforces: every event — metadata included — carries ph,
// ts, pid, and tid.
func TestWriteChromeTraceRequiredFields(t *testing.T) {
	s := New(0)
	s.Lanes = 2
	s.Channels = 1
	s.LinkLabels = []string{"n0→n1"}
	s.Emit(Event{Cycle: 5, Dur: 3, Kind: KindLaneState, Cause: CauseRun, Comp: 0, Name: "copy"})
	s.Emit(Event{Cycle: 6, Kind: KindDispatch, Comp: 1, A: 100, B: 0x1, Name: "copy"})
	s.Emit(Event{Cycle: 7, Kind: KindSpanIssue, Comp: 0, A: 0x40, B: 8})
	s.Emit(Event{Cycle: 9, Kind: KindSpanComplete, Comp: 0, A: 0, B: 8})
	s.Emit(Event{Cycle: 10, Dur: 4, Kind: KindNoCHop, Comp: 0, A: 64, B: 1})
	s.Emit(Event{Cycle: 12, Dur: 8, Kind: KindDRAM, Comp: 0, A: 0x80, B: 1})
	s.Emit(Event{Cycle: 13, Kind: KindMcastHit, Comp: 1, A: 1, B: 16})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, s); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())
	if len(events) == 0 {
		t.Fatal("no events exported")
	}
	for i, ev := range events {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, ev)
			}
		}
	}
	// The emitted kinds must land on their component-class processes.
	pids := map[float64]bool{}
	for _, ev := range events {
		if ev["ph"] != "M" {
			pids[ev["pid"].(float64)] = true
		}
	}
	for _, pid := range []float64{pidCoordinator, pidLanes, pidStreams, pidNoC, pidDRAM, pidMcast} {
		if !pids[pid] {
			t.Fatalf("no events on pid %v (have %v)", pid, pids)
		}
	}
}

// TestWriteChromeTraceMetadata pins the track naming: processes for
// every component class, threads for the lanes/engines/channels the
// sink declares, and NoC threads only for links the trace touches.
func TestWriteChromeTraceMetadata(t *testing.T) {
	s := New(0)
	s.Lanes = 2
	s.Channels = 2
	s.LinkLabels = []string{"n0→n1", "n1→n0"}
	s.Emit(Event{Cycle: 1, Dur: 1, Kind: KindNoCHop, Comp: 1})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, s); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())
	threadNames := map[string]bool{}
	processNames := map[string]bool{}
	for _, ev := range events {
		if ev["ph"] != "M" {
			continue
		}
		args := ev["args"].(map[string]any)
		name := args["name"].(string)
		switch ev["name"] {
		case "process_name":
			processNames[name] = true
		case "thread_name":
			threadNames[name] = true
		}
	}
	for _, want := range []string{"coordinator", "lanes", "stream-engines", "noc", "dram", "multicast"} {
		if !processNames[want] {
			t.Fatalf("missing process %q (have %v)", want, processNames)
		}
	}
	for _, want := range []string{"lane 0", "lane 1", "engine 0", "engine 1", "channel 0", "channel 1", "n1→n0"} {
		if !threadNames[want] {
			t.Fatalf("missing thread %q (have %v)", want, threadNames)
		}
	}
	if threadNames["n0→n1"] {
		t.Fatal("untouched link 0 must not get a thread track")
	}
}
