package proto

import "taskstream/internal/sim"

// Body pooling. The simulator's heap profile is dominated by interface
// boxing of message bodies: every line request, line response, and
// forward notification allocates a fresh body to place inside
// noc.Message's interface field. Pooling the three body types removes
// ~95% of steady-state allocations (see DESIGN.md §16). Bodies travel
// as pointers (*MemReqBody, *MemRespBody, *ForwardBody) with
// single-consumer ownership: whoever consumes the message frees the
// body back to its pool. McastLineBody is deliberately NOT pooled — a
// multicast delivery shares one Body value across every replica, so
// per-consumer frees would double-free; it stays a by-value body.
//
// Ownership map for this machine:
//   - *MemReqBody: allocated by a stream engine (or freed-on-inject-
//     fail), freed by the memory controller after Submit.
//   - *MemRespBody: allocated by the memory controller, freed by the
//     receiving stream engine in OnMessage (every arm, including write
//     acks and index arrivals).
//   - *ForwardBody: allocated by the producer stream engine, freed by
//     the consumer in OnMessage.

// BodyPool allocates and recycles the pooled message body types. Get
// methods return zeroed bodies.
type BodyPool interface {
	GetReq() *MemReqBody
	PutReq(*MemReqBody)
	GetResp() *MemRespBody
	PutResp(*MemRespBody)
	GetFwd() *ForwardBody
	PutFwd(*ForwardBody)
}

// Pool is the central body pool, for serial execution contexts: the
// memory controllers (always serial — boundary shard), and the lanes
// of a non-sharded machine. Not safe for concurrent use.
type Pool struct {
	req  sim.Slab[MemReqBody]
	resp sim.Slab[MemRespBody]
	fwd  sim.Slab[ForwardBody]
}

// NewPool returns an empty central pool.
func NewPool() *Pool { return &Pool{} }

func (p *Pool) GetReq() *MemReqBody    { return p.req.Get() }
func (p *Pool) PutReq(b *MemReqBody)   { p.req.Put(b) }
func (p *Pool) GetResp() *MemRespBody  { return p.resp.Get() }
func (p *Pool) PutResp(b *MemRespBody) { p.resp.Put(b) }
func (p *Pool) GetFwd() *ForwardBody   { return p.fwd.Get() }
func (p *Pool) PutFwd(b *ForwardBody)  { p.fwd.Put(b) }

// ShardPool is a lane's shard-local body pool over a shared central
// Pool. Gets and Puts touch only lane-local free lists, so the
// parallel phase never contends on the pool; Recycle — called at the
// epoch barrier, serial context — rebalances each type against the
// central pool.
//
// The per-type stocking targets encode the cross-shard body flow: a
// lane allocates requests and forwards (keep a working stock local)
// but only frees responses (target 0 — every response body a lane
// frees drains back to the central pool, where the memory controllers
// reallocate them).
type ShardPool struct {
	req  *sim.ShardSlab[MemReqBody]
	resp *sim.ShardSlab[MemRespBody]
	fwd  *sim.ShardSlab[ForwardBody]
}

// Per-type local stocking targets (see ShardPool).
const (
	reqStock  = 64
	respStock = 0
	fwdStock  = 8
)

// NewShardPool returns a lane-local pool over central.
func NewShardPool(central *Pool) *ShardPool {
	return &ShardPool{
		req:  sim.NewShardSlab(&central.req, reqStock),
		resp: sim.NewShardSlab(&central.resp, respStock),
		fwd:  sim.NewShardSlab(&central.fwd, fwdStock),
	}
}

func (p *ShardPool) GetReq() *MemReqBody    { return p.req.Get() }
func (p *ShardPool) PutReq(b *MemReqBody)   { p.req.Put(b) }
func (p *ShardPool) GetResp() *MemRespBody  { return p.resp.Get() }
func (p *ShardPool) PutResp(b *MemRespBody) { p.resp.Put(b) }
func (p *ShardPool) GetFwd() *ForwardBody   { return p.fwd.Get() }
func (p *ShardPool) PutFwd(b *ForwardBody)  { p.fwd.Put(b) }

// Recycle rebalances the lane-local stocks against the central pool.
// Serial context (epoch barrier) only.
func (p *ShardPool) Recycle() {
	p.req.Recycle()
	p.resp.Recycle()
	p.fwd.Recycle()
}
