package proto

import (
	"testing"
	"testing/quick"
)

func TestTopologyMapping(t *testing.T) {
	tp := Topology{Lanes: 8, Channels: 4}
	if tp.Nodes() != 12 {
		t.Fatalf("Nodes = %d, want 12", tp.Nodes())
	}
	// Every lane and channel maps to a distinct node in range.
	seen := map[int]string{}
	for i := 0; i < tp.Lanes; i++ {
		n := tp.LaneNode(i)
		if n < 0 || n >= tp.Nodes() {
			t.Fatalf("lane %d node %d out of range", i, n)
		}
		if prev, dup := seen[n]; dup {
			t.Fatalf("node %d assigned twice (%s and lane%d)", n, prev, i)
		}
		seen[n] = "lane"
	}
	for c := 0; c < tp.Channels; c++ {
		n := tp.MemNode(c)
		if n < 0 || n >= tp.Nodes() {
			t.Fatalf("channel %d node %d out of range", c, n)
		}
		if prev, dup := seen[n]; dup {
			t.Fatalf("node %d assigned twice (%s and ch%d)", n, prev, c)
		}
		seen[n] = "mem"
	}
	if len(seen) != tp.Nodes() {
		t.Fatalf("mapping covers %d of %d nodes", len(seen), tp.Nodes())
	}
	// Controllers are spread: not all in the last Channels ids.
	clustered := true
	for c := 0; c < tp.Channels; c++ {
		if tp.MemNode(c) < tp.Lanes {
			clustered = false
		}
	}
	if clustered {
		t.Fatal("memory controllers must be interleaved, not clustered at the end")
	}
}

func TestTopologyMappingProperty(t *testing.T) {
	for lanes := 1; lanes <= 32; lanes *= 2 {
		for ch := 1; ch <= 8; ch *= 2 {
			tp := Topology{Lanes: lanes, Channels: ch}
			seen := map[int]bool{}
			for i := 0; i < lanes; i++ {
				seen[tp.LaneNode(i)] = true
			}
			for c := 0; c < ch; c++ {
				n := tp.MemNode(c)
				if seen[n] {
					t.Fatalf("lanes=%d ch=%d: node %d double-assigned", lanes, ch, n)
				}
				seen[n] = true
			}
			if len(seen) != tp.Nodes() {
				t.Fatalf("lanes=%d ch=%d: %d of %d nodes covered", lanes, ch, len(seen), tp.Nodes())
			}
		}
	}
}

func TestTopologyPanics(t *testing.T) {
	tp := Topology{Lanes: 2, Channels: 1}
	for _, f := range []func(){
		func() { tp.LaneNode(2) },
		func() { tp.LaneNode(-1) },
		func() { tp.MemNode(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic for out-of-range node query")
				}
			}()
			f()
		}()
	}
}

func TestReqIDRoundTrip(t *testing.T) {
	f := func(lane uint8, write bool, port uint8, seq uint32) bool {
		id := MakeReqID(int(lane), write, int(port), int64(seq))
		l, w, p, s := SplitReqID(id)
		return l == int(lane) && w == write && p == int(port) && s == int64(seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReqIDDistinct(t *testing.T) {
	a := MakeReqID(1, false, 2, 3)
	b := MakeReqID(1, true, 2, 3)
	c := MakeReqID(2, false, 2, 3)
	d := MakeReqID(1, false, 3, 3)
	e := MakeReqID(1, false, 2, 4)
	seen := map[uint64]bool{}
	for _, id := range []uint64{a, b, c, d, e} {
		if seen[id] {
			t.Fatalf("collision among distinct requests: %#x", id)
		}
		seen[id] = true
	}
}
