// Package proto defines the on-chip protocol shared by the stream
// engines, the memory controllers, and the TaskStream coordinator: the
// node topology, the message body types carried over the NoC, and the
// request-ID codec that routes responses back to their issuing stream
// context.
package proto

import (
	"fmt"

	"taskstream/internal/mem"
)

// Topology fixes the mapping from architectural entities to NoC nodes.
// Memory-channel controllers are interleaved evenly through the node id
// space (node ids are row-major mesh positions, so even id spacing
// spreads the controllers across the die, as real meshes place them).
// Lanes fill the remaining ids in order.
type Topology struct {
	Lanes    int
	Channels int
}

// Nodes returns the total NoC node count.
func (t Topology) Nodes() int { return t.Lanes + t.Channels }

// MemNode returns the NoC node of memory channel c: channels sit at
// evenly spaced ids so their return traffic does not converge on one
// mesh corner.
func (t Topology) MemNode(c int) int {
	if c < 0 || c >= t.Channels {
		panic(fmt.Sprintf("proto: channel %d out of range", c))
	}
	n := t.Nodes()
	return (2*c + 1) * n / (2 * t.Channels)
}

// LaneNode returns the NoC node of lane i: the i-th id not taken by a
// memory controller.
func (t Topology) LaneNode(i int) int {
	if i < 0 || i >= t.Lanes {
		panic(fmt.Sprintf("proto: lane %d out of range", i))
	}
	seen := 0
	for node := 0; ; node++ {
		if t.isMemNode(node) {
			continue
		}
		if seen == i {
			return node
		}
		seen++
	}
}

func (t Topology) isMemNode(node int) bool {
	for c := 0; c < t.Channels; c++ {
		if t.MemNode(c) == node {
			return true
		}
	}
	return false
}

// MemReqBody is a lane→memory line request.
type MemReqBody struct {
	Line  mem.Addr
	Write bool
	// ReqID identifies the issuing stream context (see MakeReqID).
	ReqID uint64
}

// MemRespBody is a memory→lane unicast line response or write ack.
type MemRespBody struct {
	Line  mem.Addr
	Write bool
	ReqID uint64
}

// McastReq is a coordinator-issued group fetch handed directly to a
// memory controller (the paper's task-management control path).
type McastReq struct {
	Line  mem.Addr
	Group uint64
	Seq   int
	Dests uint64 // lane-node destination mask for the response
}

// McastLineBody is a memory→lanes multicast line delivery.
type McastLineBody struct {
	Group uint64
	Seq   int
}

// ForwardBody is producer→consumer pipelined task data: Count elements
// for the consumer's input port Port.
type ForwardBody struct {
	Port  int
	Count int
}

// Request-ID codec. A ReqID packs (lane, write-flag, port, sequence) so
// that a memory response can be routed back to the exact stream context
// that issued it.
const (
	reqLaneShift = 56
	reqKindShift = 55
	reqPortShift = 47
	reqSeqMask   = (1 << 47) - 1
)

// MakeReqID packs a request identifier.
func MakeReqID(lane int, write bool, port int, seq int64) uint64 {
	w := uint64(0)
	if write {
		w = 1
	}
	return uint64(lane)<<reqLaneShift | w<<reqKindShift |
		uint64(port)<<reqPortShift | (uint64(seq) & reqSeqMask)
}

// SplitReqID unpacks a request identifier.
func SplitReqID(id uint64) (lane int, write bool, port int, seq int64) {
	lane = int(id >> reqLaneShift)
	write = id>>reqKindShift&1 == 1
	port = int(id >> reqPortShift & 0xFF)
	seq = int64(id & reqSeqMask)
	return
}
