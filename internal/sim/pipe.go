package sim

// Pipe models a fixed-latency, unbounded-in-flight delivery channel:
// items pushed at cycle c become visible to the consumer at cycle
// c+latency. DRAM responses and wire delays use it. Delivery order for
// items that mature on the same cycle is insertion order, keeping runs
// deterministic.
//
// The backing store is a hand-rolled binary min-heap rather than
// container/heap: Push/Pop on the stdlib interface box every item into
// an `any`, which costs one allocation per send on the simulator's
// hottest paths (DRAM responses, NoC link delivery). The heap slice is
// reused across the run, so a warmed pipe sends and receives without
// allocating.
type Pipe[T any] struct {
	latency Cycle
	h       []pipeItem[T]
	seq     int64
}

type pipeItem[T any] struct {
	at  Cycle
	seq int64
	v   T
}

// NewPipe returns a pipe with the given delivery latency in cycles.
// Latency may be zero (same-cycle visibility).
func NewPipe[T any](latency Cycle) *Pipe[T] {
	if latency < 0 {
		panic("sim: negative pipe latency")
	}
	return &Pipe[T]{latency: latency}
}

// less orders the heap by maturity cycle, then send order.
func (p *Pipe[T]) less(i, j int) bool {
	if p.h[i].at != p.h[j].at {
		return p.h[i].at < p.h[j].at
	}
	return p.h[i].seq < p.h[j].seq
}

func (p *Pipe[T]) push(it pipeItem[T]) {
	p.h = append(p.h, it)
	i := len(p.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !p.less(i, parent) {
			break
		}
		p.h[i], p.h[parent] = p.h[parent], p.h[i]
		i = parent
	}
}

func (p *Pipe[T]) pop() pipeItem[T] {
	top := p.h[0]
	n := len(p.h) - 1
	p.h[0] = p.h[n]
	var zero pipeItem[T]
	p.h[n] = zero // release references held by pointer-ish payloads
	p.h = p.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && p.less(l, small) {
			small = l
		}
		if r < n && p.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		p.h[i], p.h[small] = p.h[small], p.h[i]
		i = small
	}
	return top
}

// Send schedules v for delivery at now+latency.
func (p *Pipe[T]) Send(now Cycle, v T) {
	p.push(pipeItem[T]{at: now + p.latency, seq: p.seq, v: v})
	p.seq++
}

// SendAt schedules v for delivery at the explicit cycle at, which must
// not be in the past relative to the caller's now.
func (p *Pipe[T]) SendAt(at Cycle, v T) {
	p.push(pipeItem[T]{at: at, seq: p.seq, v: v})
	p.seq++
}

// Recv pops the oldest item whose delivery time has arrived.
func (p *Pipe[T]) Recv(now Cycle) (v T, ok bool) {
	if len(p.h) == 0 || p.h[0].at > now {
		return v, false
	}
	return p.pop().v, true
}

// NextAt returns the earliest delivery cycle among in-flight items, or
// Never when the pipe is empty — the pipe's event-horizon contribution
// for forecasting components.
func (p *Pipe[T]) NextAt() Cycle {
	if len(p.h) == 0 {
		return Never
	}
	return p.h[0].at
}

// Len returns the number of in-flight items.
func (p *Pipe[T]) Len() int { return len(p.h) }

// Empty reports whether nothing is in flight.
func (p *Pipe[T]) Empty() bool { return len(p.h) == 0 }
