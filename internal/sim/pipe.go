package sim

import "container/heap"

// Pipe models a fixed-latency, unbounded-in-flight delivery channel:
// items pushed at cycle c become visible to the consumer at cycle
// c+latency. DRAM responses and wire delays use it. Delivery order for
// items that mature on the same cycle is insertion order, keeping runs
// deterministic.
type Pipe[T any] struct {
	latency Cycle
	h       pipeHeap[T]
	seq     int64
}

type pipeItem[T any] struct {
	at  Cycle
	seq int64
	v   T
}

type pipeHeap[T any] []pipeItem[T]

func (h pipeHeap[T]) Len() int { return len(h) }
func (h pipeHeap[T]) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h pipeHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pipeHeap[T]) Push(x any)   { *h = append(*h, x.(pipeItem[T])) }
func (h *pipeHeap[T]) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// NewPipe returns a pipe with the given delivery latency in cycles.
// Latency may be zero (same-cycle visibility).
func NewPipe[T any](latency Cycle) *Pipe[T] {
	if latency < 0 {
		panic("sim: negative pipe latency")
	}
	return &Pipe[T]{latency: latency}
}

// Send schedules v for delivery at now+latency.
func (p *Pipe[T]) Send(now Cycle, v T) {
	heap.Push(&p.h, pipeItem[T]{at: now + p.latency, seq: p.seq, v: v})
	p.seq++
}

// SendAt schedules v for delivery at the explicit cycle at, which must
// not be in the past relative to the caller's now.
func (p *Pipe[T]) SendAt(at Cycle, v T) {
	heap.Push(&p.h, pipeItem[T]{at: at, seq: p.seq, v: v})
	p.seq++
}

// Recv pops the oldest item whose delivery time has arrived.
func (p *Pipe[T]) Recv(now Cycle) (v T, ok bool) {
	if len(p.h) == 0 || p.h[0].at > now {
		return v, false
	}
	it := heap.Pop(&p.h).(pipeItem[T])
	return it.v, true
}

// Len returns the number of in-flight items.
func (p *Pipe[T]) Len() int { return len(p.h) }

// Empty reports whether nothing is in flight.
func (p *Pipe[T]) Empty() bool { return len(p.h) == 0 }
