package sim

import (
	"strings"
	"testing"
)

// pulser acts every period cycles until it has fired count times, and
// counts every cycle it still has work as busy — a miniature of the
// hardware models' time-linear accounting. It implements the full
// forecast/skip protocol.
type pulser struct {
	period Cycle
	count  int

	fired int
	next  Cycle
	busy  int64
	ticks int64
}

func (p *pulser) Tick(now Cycle) {
	p.ticks++
	if p.fired < p.count {
		p.busy++
	}
	if p.fired < p.count && now >= p.next {
		p.fired++
		p.next = now + p.period
	}
}

func (p *pulser) Idle() bool { return p.fired >= p.count }

func (p *pulser) NextEvent(now Cycle) Cycle {
	if p.fired >= p.count {
		return Never
	}
	if p.next <= now {
		return now
	}
	return p.next
}

func (p *pulser) Skip(from, to Cycle) {
	if p.fired < p.count {
		p.busy += int64(to - from)
	}
}

func runPulsers(t *testing.T, ff bool, specs [][2]int) (Cycle, []int64, int64) {
	t.Helper()
	e := NewEngine()
	e.FastForward = ff
	var ps []*pulser
	for _, s := range specs {
		p := &pulser{period: Cycle(s[0]), count: s[1]}
		ps = append(ps, p)
		e.Register("pulser", p)
	}
	cycles, err := e.Run(nil)
	if err != nil {
		t.Fatalf("Run(ff=%v): %v", ff, err)
	}
	var busy []int64
	var ticks int64
	for _, p := range ps {
		busy = append(busy, p.busy)
		ticks += p.ticks
	}
	return cycles, busy, ticks
}

func TestFastForwardByteIdentical(t *testing.T) {
	// Mixed periods so horizons interleave; cycle counts and every
	// time-linear counter must match a cycle-by-cycle run exactly.
	specs := [][2]int{{7, 5}, {13, 3}, {1, 40}, {100, 2}}
	slowC, slowB, slowT := runPulsers(t, false, specs)
	fastC, fastB, fastT := runPulsers(t, true, specs)
	if slowC != fastC {
		t.Fatalf("cycles: ff=off %d, ff=on %d", slowC, fastC)
	}
	for i := range slowB {
		if slowB[i] != fastB[i] {
			t.Fatalf("pulser %d busy: ff=off %d, ff=on %d", i, slowB[i], fastB[i])
		}
	}
	if fastT >= slowT {
		t.Fatalf("fast-forward executed %d ticks, cycle-by-cycle %d; expected fewer", fastT, slowT)
	}
}

func TestFastForwardNeedsEveryForecaster(t *testing.T) {
	// One non-forecasting component must disable skipping machine-wide.
	e := NewEngine()
	e.FastForward = true
	p := &pulser{period: 50, count: 2}
	e.Register("pulser", p)
	e.Register("counter", &counter{target: 3})
	cycles, err := e.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.ticks != int64(cycles) {
		t.Fatalf("pulser ticked %d of %d cycles; skipping engaged without full coverage", p.ticks, cycles)
	}
}

func TestFastForwardCycleLimit(t *testing.T) {
	// A stuck forecastable machine (event beyond the limit) must hit the
	// limit with the same cycle count and diagnostics as a slow run.
	run := func(ff bool) (Cycle, int64, error) {
		e := NewEngine()
		e.FastForward = ff
		e.MaxCycles = 1000
		p := &pulser{period: 5000, count: 1}
		p.next = 5000 // first event beyond the limit
		e.Register("stuck", p)
		c, err := e.Run(nil)
		return c, p.busy, err
	}
	slowC, slowB, slowErr := run(false)
	fastC, fastB, fastErr := run(true)
	if slowErr == nil || fastErr == nil {
		t.Fatalf("want cycle-limit errors, got %v / %v", slowErr, fastErr)
	}
	if slowC != fastC || slowB != fastB {
		t.Fatalf("limit behavior differs: ff=off (%d cycles, busy %d), ff=on (%d cycles, busy %d)",
			slowC, slowB, fastC, fastB)
	}
	if !strings.Contains(fastErr.Error(), "stuck") {
		t.Fatalf("error should name the busy component: %v", fastErr)
	}
}

func TestBusyNamesListsExactlyNonIdle(t *testing.T) {
	// Deadlock diagnostics must name each non-idle component once, in
	// registration order, and skip idle ones and non-Idlers.
	e := NewEngine()
	e.Register("done", &counter{target: 0})
	e.Register("stuck-a", spinner{})
	e.Register("anonymous", tickFunc(func(Cycle) {})) // no Idler: never listed
	e.Register("stuck-b", spinner{})
	got := e.busyNames()
	want := []string{"stuck-a", "stuck-b"}
	if len(got) != len(want) {
		t.Fatalf("busyNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("busyNames = %v, want %v", got, want)
		}
	}
}

func TestPipeNextAt(t *testing.T) {
	p := NewPipe[int](0)
	if p.NextAt() != Never {
		t.Fatal("empty pipe should forecast Never")
	}
	p.SendAt(9, 1)
	p.SendAt(4, 2)
	p.SendAt(6, 3)
	if at := p.NextAt(); at != 4 {
		t.Fatalf("NextAt = %d, want 4 (earliest maturity)", at)
	}
	if _, ok := p.Recv(4); !ok {
		t.Fatal("item due at 4 not delivered")
	}
	if at := p.NextAt(); at != 6 {
		t.Fatalf("NextAt after pop = %d, want 6", at)
	}
}
