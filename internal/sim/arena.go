package sim

// This file provides the hot-path allocation machinery for sharded
// execution (DESIGN.md §16): LIFO free lists ("slabs") for the message
// structs that dominate the simulator's heap profile, and the Outbox
// that carries a parallel ticker's cross-shard side effects to the
// deterministic epoch barrier.
//
// The kernel's own containers (Pipe, Queue, Deque) are already
// allocation-free in steady state — they recycle ring and heap slots in
// place — so the slabs exist for the protocol bodies that cross
// component boundaries inside noc.Message's interface field, where each
// send would otherwise box a fresh heap object.

// Slab is a LIFO free list of *T for single-goroutine use. Get returns
// a zeroed object (recycled when possible, freshly allocated
// otherwise); Put recycles one. The zero value is ready to use.
//
// A Slab must only be touched from serial execution contexts — under a
// ShardedEngine that means the serial prefix/suffix tickers and the
// barrier. Parallel tickers go through ShardSlab.
type Slab[T any] struct {
	free []*T
}

// Get returns a zeroed *T.
func (s *Slab[T]) Get() *T {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return p
	}
	return new(T)
}

// Put zeroes p and pushes it onto the free list. p must not be used
// after Put.
func (s *Slab[T]) Put(p *T) {
	var zero T
	*p = zero
	s.free = append(s.free, p)
}

// Len returns the free-list depth (tests pin recycling with it).
func (s *Slab[T]) Len() int { return len(s.free) }

// ShardSlab is a shard-local façade over a central Slab: Get and Put
// touch only the local stock, so a parallel ticker allocates and frees
// without synchronizing on the shared heap or the central list. Recycle
// — called at the epoch barrier, from serial context — rebalances the
// local stock against the central slab: excess frees flow back, and the
// stock is refilled up to target so the next parallel phase starts
// provisioned.
//
// The flow handles producer/consumer asymmetry across shard boundaries:
// a lane shard frees response structs it never allocates and allocates
// request structs it never frees; the barrier exchange routes each
// type's surplus to its allocator.
type ShardSlab[T any] struct {
	central *Slab[T]
	local   []*T
	target  int
}

// NewShardSlab returns a shard-local slab over central, keeping up to
// target objects stocked locally across barriers.
func NewShardSlab[T any](central *Slab[T], target int) *ShardSlab[T] {
	return &ShardSlab[T]{central: central, target: target}
}

// Get returns a zeroed *T from the local stock, allocating only when
// the stock is dry.
func (s *ShardSlab[T]) Get() *T {
	if n := len(s.local); n > 0 {
		p := s.local[n-1]
		s.local[n-1] = nil
		s.local = s.local[:n-1]
		return p
	}
	return new(T)
}

// Put zeroes p and returns it to the local stock, where a Get later in
// the same parallel phase can reuse it immediately.
func (s *ShardSlab[T]) Put(p *T) {
	var zero T
	*p = zero
	s.local = append(s.local, p)
}

// Recycle rebalances the local stock against the central slab. Must be
// called from serial context (the epoch barrier).
func (s *ShardSlab[T]) Recycle() {
	for len(s.local) > s.target {
		n := len(s.local) - 1
		s.central.free = append(s.central.free, s.local[n])
		s.local[n] = nil
		s.local = s.local[:n]
	}
	for len(s.local) < s.target && len(s.central.free) > 0 {
		n := len(s.central.free) - 1
		s.local = append(s.local, s.central.free[n])
		s.central.free[n] = nil
		s.central.free = s.central.free[:n]
	}
}

// Outbox collects the cross-shard side effects a parallel ticker defers
// during the parallel phase of a sharded cycle. The sharded engine
// drains every outbox at the epoch barrier in shard registration order,
// so deferred effects land in the same relative order serial execution
// would have produced. Each Outbox belongs to exactly one parallel
// ticker and must only be written from that ticker's Tick.
type Outbox struct {
	fns []func()
}

// Defer queues fn to run at the epoch barrier.
func (o *Outbox) Defer(fn func()) { o.fns = append(o.fns, fn) }

// drain runs and clears the deferred effects in FIFO order.
func (o *Outbox) drain() {
	for i := range o.fns {
		o.fns[i]()
		o.fns[i] = nil
	}
	o.fns = o.fns[:0]
}
