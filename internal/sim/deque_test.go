package sim

import (
	"testing"
	"testing/quick"
)

func TestDequeFIFO(t *testing.T) {
	var d Deque[int]
	if !d.Empty() || d.Len() != 0 {
		t.Fatal("zero Deque should be empty")
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("pop from empty deque should fail")
	}
	for i := 0; i < 20; i++ {
		d.Push(i)
	}
	if v, ok := d.Peek(); !ok || v != 0 {
		t.Fatalf("peek = %d,%v want 0,true", v, ok)
	}
	for i := 0; i < 20; i++ {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d,true", v, ok, i)
		}
	}
	if !d.Empty() {
		t.Fatal("deque should drain empty")
	}
}

func TestDequeWraparound(t *testing.T) {
	// Interleaved pushes and pops force the ring head past the physical
	// end repeatedly; order must survive every grow-and-unwrap.
	var d Deque[int]
	next := 0
	for i := 0; i < 200; i++ {
		for k := 0; k < 3; k++ {
			d.Push(i*3 + k)
		}
		for k := 0; k < 2; k++ {
			v, ok := d.Pop()
			if !ok || v != next {
				t.Fatalf("got %d,%v want %d,true", v, ok, next)
			}
			next++
		}
	}
	for !d.Empty() {
		v, _ := d.Pop()
		if v != next {
			t.Fatalf("drain order broken: got %d want %d", v, next)
		}
		next++
	}
	if next != 600 {
		t.Fatalf("drained %d items, want 600", next)
	}
}

func TestDequeProperty(t *testing.T) {
	// Property: an arbitrary push/pop interleaving matches a slice model.
	f := func(ops []bool) bool {
		var d Deque[int]
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				d.Push(next)
				model = append(model, next)
				next++
			} else {
				v, ok := d.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if d.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
