package sim

import (
	"reflect"
	"strings"
	"testing"
)

// TestHostProfIdentity pins the feedback-free contract at the engine
// level: a profiled sharded run produces exactly the cycle count,
// per-lane state, and ordered effect log of an unprofiled one.
func TestHostProfIdentity(t *testing.T) {
	for _, ff := range []bool{false, true} {
		run := func() (Cycle, []*toyLane, []string) {
			e, lanes, log := buildToy(6, 2, ff)
			c, err := e.Run(nil)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			return c, lanes, append([]string(nil), *log...)
		}
		cPlain, lanesPlain, logPlain := run()

		SetHostProf(true)
		ResetHostProf()
		cProf, lanesProf, logProf := run()
		snap := HostProfSnapshot()
		SetHostProf(false)

		if cPlain != cProf {
			t.Fatalf("ff=%v: profiled run cycles %d != plain %d", ff, cProf, cPlain)
		}
		if !reflect.DeepEqual(logPlain, logProf) {
			t.Fatalf("ff=%v: effect logs diverge:\nplain: %v\nprof:  %v", ff, logPlain, logProf)
		}
		for i := range lanesPlain {
			if lanesPlain[i].fired != lanesProf[i].fired || lanesPlain[i].busy != lanesProf[i].busy {
				t.Fatalf("ff=%v: lane %d state diverges: plain {fired %d busy %d} prof {fired %d busy %d}",
					ff, i, lanesPlain[i].fired, lanesPlain[i].busy, lanesProf[i].fired, lanesProf[i].busy)
			}
		}
		if snap.Runs != 1 || snap.ShardedRuns != 1 {
			t.Fatalf("ff=%v: snapshot runs = %+v, want 1 sharded run", ff, snap)
		}
		if snap.TotalNS <= 0 {
			t.Fatalf("ff=%v: no wall time recorded: %+v", ff, snap)
		}
		if len(snap.ShardBusyNS) != 6 {
			t.Fatalf("ff=%v: shard busy slots = %d, want 6", ff, len(snap.ShardBusyNS))
		}
		if snap.ExecutedCycles <= 0 {
			t.Fatalf("ff=%v: no executed cycles recorded", ff)
		}
	}
}

// TestHostProfSerialEngine checks a plain Engine contributes run
// totals (but no phase attribution) to the aggregate.
func TestHostProfSerialEngine(t *testing.T) {
	SetHostProf(true)
	defer SetHostProf(false)
	ResetHostProf()
	e, _, _ := buildToy(4, 0, false)
	if _, err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	snap := HostProfSnapshot()
	if snap.Runs != 1 || snap.ShardedRuns != 0 {
		t.Fatalf("snapshot = %+v, want 1 serial run", snap)
	}
	rep := snap.Report()
	if !strings.Contains(rep, "no sharded runs") {
		t.Fatalf("serial-only report should say attribution is unavailable:\n%s", rep)
	}
}

// TestHostProfReportShape checks the -hostprof rendering carries the
// barrier-wait attribution and the Amdahl split.
func TestHostProfReportShape(t *testing.T) {
	SetHostProf(true)
	defer SetHostProf(false)
	ResetHostProf()
	e, _, _ := buildToy(8, 3, false)
	if _, err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	snap := HostProfSnapshot()
	rep := snap.Report()
	for _, want := range []string{
		"barrier wait", "serial prefix", "serial suffix", "outbox drain",
		"parallel fraction p =", "per-shard busy",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if snap.ParallelFraction() < 0 || snap.ParallelFraction() > 1 {
		t.Fatalf("parallel fraction out of range: %v", snap.ParallelFraction())
	}
	if snap.Streams != 4 {
		t.Fatalf("streams = %d, want 4 (3 workers + driver)", snap.Streams)
	}
}

// TestHostProfMerge checks aggregate folding across runs and slices of
// different lengths.
func TestHostProfMerge(t *testing.T) {
	var p HostProf
	p.merge(&HostProf{Runs: 1, ShardBusyNS: []int64{5, 5}, Streams: 2, TotalNS: 10})
	p.merge(&HostProf{Runs: 1, ShardedRuns: 1, ShardBusyNS: []int64{1, 2, 3, 4}, Streams: 4, TotalNS: 20})
	if p.Runs != 2 || p.ShardedRuns != 1 || p.TotalNS != 30 || p.Streams != 4 {
		t.Fatalf("merge totals wrong: %+v", p)
	}
	if !reflect.DeepEqual(p.ShardBusyNS, []int64{6, 7, 3, 4}) {
		t.Fatalf("merged shard busy = %v", p.ShardBusyNS)
	}
	if p.ShardBusyTotalNS() != 20 {
		t.Fatalf("shard busy total = %d", p.ShardBusyTotalNS())
	}
}
