package sim

// Queue is a bounded FIFO used for cross-component communication. It is
// the only sanctioned way for two components to exchange data inside a
// machine: bounded capacity models real buffering and provides
// backpressure.
type Queue[T any] struct {
	buf  []T
	head int
	size int
	cap  int
}

// NewQueue returns a queue holding at most capacity items.
// Capacity must be positive.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("sim: queue capacity must be positive")
	}
	return &Queue[T]{buf: make([]T, capacity), cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return q.size }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Empty reports whether no items are buffered.
func (q *Queue[T]) Empty() bool { return q.size == 0 }

// Full reports whether the queue cannot accept another item.
func (q *Queue[T]) Full() bool { return q.size == q.cap }

// Push appends an item, reporting false (and dropping nothing) if the
// queue is full. Callers treat a false return as backpressure and retry
// on a later cycle.
func (q *Queue[T]) Push(v T) bool {
	if q.size == q.cap {
		return false
	}
	q.buf[(q.head+q.size)%q.cap] = v
	q.size++
	return true
}

// Peek returns the oldest item without removing it. ok is false when
// the queue is empty.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the oldest item. ok is false when the queue
// is empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % q.cap
	q.size--
	return v, true
}
