package sim

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Host profiling (DESIGN.md §18): wall-clock attribution of where the
// simulator process spends time inside the sharded run loop — the
// serial prefix, coupled-lane ticking, the parallel phase and its
// barrier wait, outbox drains, barrier hooks, and the serial suffix —
// plus per-shard busy time, so shard imbalance and the §16 Amdahl
// serial/parallel split are measured rather than projected.
//
// Profiling is strictly feedback-free: it reads the host clock around
// existing phases and never touches simulated state, so results are
// byte-identical with it on or off (pinned by TestHostProfIdentity and
// the host-metrics CI cmp job). It is opt-in (SetHostProf) because the
// clock reads cost real time per simulated cycle; the default path
// pays one nil check per cycle.

// HostProf is a wall-clock attribution record. Engines accumulate one
// per run when profiling is enabled and merge it into the process-wide
// aggregate that HostProfSnapshot reads.
type HostProf struct {
	// Runs counts completed engine runs; ShardedRuns the subset driven
	// by a ShardedEngine (only those carry phase attribution).
	Runs        int64
	ShardedRuns int64
	// ExecutedCycles and SkippedCycles mirror the engine's fast-forward
	// meters, summed over profiled runs.
	ExecutedCycles int64
	SkippedCycles  int64
	// TotalNS is wall time inside Engine.Run / ShardedEngine.Run.
	TotalNS int64
	// Per-phase wall time of the sharded cycle loop. Phases sum to less
	// than TotalNS; the remainder is loop overhead (quiescence scans,
	// horizon folds, skip fan-outs).
	SerialPrefixNS int64 // clock + coordinator
	CoupledNS      int64 // gate-coupled lanes ticked serially
	ParallelNS     int64 // dispatch wall time (own work + barrier wait)
	BarrierWaitNS  int64 // driver idle inside ParallelNS waiting on stragglers
	OutboxDrainNS  int64 // deferred cross-shard effect replay
	HookNS         int64 // barrier hooks (obs flush, port fold, slab rebalance)
	SerialSuffixNS int64 // mesh + memory controllers + DRAM
	// ShardBusyNS[k] is wall time spent ticking parallel-group member k
	// (lane k), summed across cycles — the shard-imbalance signal.
	ShardBusyNS []int64
	// Streams is the maximum number of parallel execution streams
	// (workers + driver) seen across merged runs.
	Streams int
}

// merge folds o into p.
func (p *HostProf) merge(o *HostProf) {
	p.Runs += o.Runs
	p.ShardedRuns += o.ShardedRuns
	p.ExecutedCycles += o.ExecutedCycles
	p.SkippedCycles += o.SkippedCycles
	p.TotalNS += o.TotalNS
	p.SerialPrefixNS += o.SerialPrefixNS
	p.CoupledNS += o.CoupledNS
	p.ParallelNS += o.ParallelNS
	p.BarrierWaitNS += o.BarrierWaitNS
	p.OutboxDrainNS += o.OutboxDrainNS
	p.HookNS += o.HookNS
	p.SerialSuffixNS += o.SerialSuffixNS
	for len(p.ShardBusyNS) < len(o.ShardBusyNS) {
		p.ShardBusyNS = append(p.ShardBusyNS, 0)
	}
	for i, v := range o.ShardBusyNS {
		p.ShardBusyNS[i] += v
	}
	if o.Streams > p.Streams {
		p.Streams = o.Streams
	}
}

// SerialNS returns the attributed serial wall time — every phase that
// runs on the driving goroutine alone. This is the numerator of the
// measured Amdahl serial fraction.
func (p *HostProf) SerialNS() int64 {
	return p.SerialPrefixNS + p.CoupledNS + p.OutboxDrainNS + p.HookNS + p.SerialSuffixNS
}

// ShardBusyTotalNS returns the summed per-shard busy time — the
// parallel work that would run serially on one stream.
func (p *HostProf) ShardBusyTotalNS() int64 {
	var t int64
	for _, v := range p.ShardBusyNS {
		t += v
	}
	return t
}

// ParallelFraction estimates the Amdahl parallel fraction p from the
// attribution: parallelizable work (summed shard busy time) over the
// equivalent single-stream total (that work plus every serial phase).
// Returns 0 when nothing was attributed.
func (p *HostProf) ParallelFraction() float64 {
	par := float64(p.ShardBusyTotalNS())
	ser := float64(p.SerialNS())
	if par+ser <= 0 {
		return 0
	}
	return par / (par + ser)
}

// Imbalance returns max/mean of per-shard busy time (1.0 = perfectly
// balanced; 0 when no shard ran).
func (p *HostProf) Imbalance() float64 {
	if len(p.ShardBusyNS) == 0 {
		return 0
	}
	var sum, max int64
	for _, v := range p.ShardBusyNS {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(p.ShardBusyNS))
	return float64(max) / mean
}

// ms renders nanoseconds as milliseconds with a stable width.
func ms(ns int64) string { return fmt.Sprintf("%9.2fms", float64(ns)/1e6) }

// pct renders part/whole as a percentage, "-" when whole is 0.
func pct(part, whole int64) string {
	if whole <= 0 {
		return "     -"
	}
	return fmt.Sprintf("%5.1f%%", 100*float64(part)/float64(whole))
}

// Report renders the -hostprof stderr report: run totals, the sharded
// phase attribution with each phase's share of attributed time, and
// the per-shard busy distribution.
func (p *HostProf) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "host profile: %d runs (%d sharded, %d streams), wall %s\n",
		p.Runs, p.ShardedRuns, p.Streams, ms(p.TotalNS))
	fmt.Fprintf(&b, "  cycles: %d executed, %d fast-forwarded\n",
		p.ExecutedCycles, p.SkippedCycles)
	if p.ShardedRuns == 0 {
		b.WriteString("  (no sharded runs — phase attribution needs -shards > 1 on >=4 lanes)\n")
		return b.String()
	}
	attributed := p.SerialNS() + p.ParallelNS
	other := p.TotalNS - attributed
	fmt.Fprintf(&b, "sharded cycle-loop attribution (share of attributed %s):\n", ms(attributed))
	fmt.Fprintf(&b, "  serial prefix   %s  %s   (clock + coordinator)\n", ms(p.SerialPrefixNS), pct(p.SerialPrefixNS, attributed))
	fmt.Fprintf(&b, "  coupled lanes   %s  %s   (unflipped forward-group gates)\n", ms(p.CoupledNS), pct(p.CoupledNS, attributed))
	fmt.Fprintf(&b, "  parallel phase  %s  %s   (lane ticks on %d streams)\n", ms(p.ParallelNS), pct(p.ParallelNS, attributed), p.Streams)
	fmt.Fprintf(&b, "    barrier wait  %s  %s   (driver idle at the epoch barrier)\n", ms(p.BarrierWaitNS), pct(p.BarrierWaitNS, attributed))
	fmt.Fprintf(&b, "  outbox drain    %s  %s   (deferred cross-shard effects)\n", ms(p.OutboxDrainNS), pct(p.OutboxDrainNS, attributed))
	fmt.Fprintf(&b, "  barrier hooks   %s  %s   (obs flush, port fold, slab rebalance)\n", ms(p.HookNS), pct(p.HookNS, attributed))
	fmt.Fprintf(&b, "  serial suffix   %s  %s   (mesh + memctrl + DRAM)\n", ms(p.SerialSuffixNS), pct(p.SerialSuffixNS, attributed))
	fmt.Fprintf(&b, "  loop overhead   %s         (horizon folds, quiescence, skips)\n", ms(other))
	fmt.Fprintf(&b, "amdahl split: serial %s, shard busy %s -> parallel fraction p = %.3f\n",
		ms(p.SerialNS()), ms(p.ShardBusyTotalNS()), p.ParallelFraction())
	if len(p.ShardBusyNS) > 0 {
		fmt.Fprintf(&b, "per-shard busy (imbalance max/mean = %.2f):\n", p.Imbalance())
		for k, v := range p.ShardBusyNS {
			fmt.Fprintf(&b, "  shard %-3d %s  %s\n", k, ms(v), pct(v, p.ShardBusyTotalNS()))
		}
	}
	return b.String()
}

// Process-wide profiling switch and aggregate. Engines check the
// switch once per Run; the aggregate is mutex-folded at run end, never
// on the cycle path.
var (
	hostProfOn  atomic.Bool
	hostProfMu  sync.Mutex
	hostProfAgg HostProf
)

// SetHostProf turns host profiling on or off process-wide. Runs
// already in flight keep the setting they started with.
func SetHostProf(on bool) { hostProfOn.Store(on) }

// HostProfEnabled reports whether host profiling is on.
func HostProfEnabled() bool { return hostProfOn.Load() }

// ResetHostProf clears the process-wide aggregate.
func ResetHostProf() {
	hostProfMu.Lock()
	defer hostProfMu.Unlock()
	hostProfAgg = HostProf{}
}

// HostProfSnapshot returns an independent copy of the process-wide
// aggregate.
func HostProfSnapshot() HostProf {
	hostProfMu.Lock()
	defer hostProfMu.Unlock()
	p := hostProfAgg
	p.ShardBusyNS = append([]int64(nil), hostProfAgg.ShardBusyNS...)
	return p
}

// mergeHostProf folds one run's record into the aggregate.
func mergeHostProf(p *HostProf) {
	hostProfMu.Lock()
	defer hostProfMu.Unlock()
	hostProfAgg.merge(p)
}

// profBase anchors the profiling clock so nowNS differences ride Go's
// monotonic clock, immune to wall-time adjustments.
var profBase = time.Now()

// nowNS is the profiling clock: monotonic nanoseconds since start.
func nowNS() int64 { return int64(time.Since(profBase)) }
