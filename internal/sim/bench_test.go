package sim

import "testing"

// BenchmarkEngineStep measures the kernel's per-cycle dispatch cost in
// the two regimes the fast-forward work cares about: a machine of
// mostly idle components (the case skipping optimizes away) and a
// machine where every component acts every cycle.
func BenchmarkEngineStep(b *testing.B) {
	bench := func(b *testing.B, busyEvery Cycle) {
		e := NewEngine()
		for i := 0; i < 16; i++ {
			e.Register("pulser", &pulser{period: busyEvery, count: 1 << 62})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	}
	b.Run("idle-heavy", func(b *testing.B) { bench(b, 1000) })
	b.Run("busy", func(b *testing.B) { bench(b, 1) })
}

// BenchmarkEngineRunFastForward compares whole-run cost with skipping
// on and off over an idle-heavy machine.
func BenchmarkEngineRunFastForward(b *testing.B) {
	bench := func(b *testing.B, ff bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := NewEngine()
			e.FastForward = ff
			for j := 0; j < 16; j++ {
				e.Register("pulser", &pulser{period: 500, count: 100})
			}
			if _, err := e.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("on", func(b *testing.B) { bench(b, true) })
	b.Run("off", func(b *testing.B) { bench(b, false) })
}
