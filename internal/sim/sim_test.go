package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

// counter ticks until it reaches a target, then idles.
type counter struct {
	n, target int
}

func (c *counter) Tick(Cycle) {
	if c.n < c.target {
		c.n++
	}
}
func (c *counter) Idle() bool { return c.n >= c.target }

func TestEngineRunsUntilQuiescent(t *testing.T) {
	e := NewEngine()
	c := &counter{target: 17}
	e.Register("counter", c)
	cycles, err := e.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if cycles != 17 {
		t.Fatalf("cycles = %d, want 17", cycles)
	}
	if c.n != 17 {
		t.Fatalf("counter = %d, want 17", c.n)
	}
}

func TestEngineDonePredicate(t *testing.T) {
	// A done predicate that requires more progress than quiescence: the
	// counter idles at 5, but done demands the engine reach cycle 9.
	e := NewEngine()
	e.Register("counter", &counter{target: 5})
	cycles, err := e.Run(func() bool { return e.Now() >= 9 })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if cycles != 9 {
		t.Fatalf("cycles = %d, want 9", cycles)
	}
}

// spinner never idles; used to exercise the cycle limit.
type spinner struct{}

func (spinner) Tick(Cycle) {}
func (spinner) Idle() bool { return false }

func TestEngineCycleLimit(t *testing.T) {
	e := NewEngine()
	e.MaxCycles = 100
	e.Register("spin", spinner{})
	cycles, err := e.Run(nil)
	if err == nil {
		t.Fatal("want cycle-limit error, got nil")
	}
	if cycles != 100 {
		t.Fatalf("cycles = %d, want 100", cycles)
	}
	if !strings.Contains(err.Error(), "spin") {
		t.Fatalf("error should name busy component: %v", err)
	}
}

func TestEngineTickOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	mk := func(name string) Ticker {
		return tickFunc(func(Cycle) { order = append(order, name) })
	}
	e.Register("a", mk("a"))
	e.Register("b", mk("b"))
	e.Register("c", mk("c"))
	e.Step()
	e.Step()
	want := "abcabc"
	if got := strings.Join(order, ""); got != want {
		t.Fatalf("tick order = %q, want %q", got, want)
	}
}

type tickFunc func(Cycle)

func (f tickFunc) Tick(c Cycle) { f(c) }

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](3)
	if !q.Empty() || q.Full() {
		t.Fatal("new queue should be empty")
	}
	for i := 0; i < 3; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push into full queue should fail")
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("peek = %d,%v want 0,true", v, ok)
	}
	for i := 0; i < 3; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue should fail")
	}
}

func TestQueueWraparound(t *testing.T) {
	q := NewQueue[int](2)
	next := 0
	for i := 0; i < 50; i++ {
		q.Push(i * 2)
		q.Push(i*2 + 1)
		for !q.Empty() {
			v, _ := q.Pop()
			if v != next {
				t.Fatalf("wraparound order broken: got %d want %d", v, next)
			}
			next++
		}
	}
}

func TestQueuePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for capacity 0")
		}
	}()
	NewQueue[int](0)
}

func TestQueueProperty(t *testing.T) {
	// Property: any interleaving of pushes and pops preserves FIFO
	// order and never loses or duplicates an accepted item.
	f := func(ops []bool) bool {
		q := NewQueue[int](4)
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				accepted := q.Push(next)
				if accepted != (len(model) < 4) {
					return false
				}
				if accepted {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipeLatency(t *testing.T) {
	p := NewPipe[string](5)
	p.Send(10, "x")
	for now := Cycle(10); now < 15; now++ {
		if _, ok := p.Recv(now); ok {
			t.Fatalf("item visible at %d, before latency elapsed", now)
		}
	}
	v, ok := p.Recv(15)
	if !ok || v != "x" {
		t.Fatalf("Recv(15) = %q,%v want x,true", v, ok)
	}
	if !p.Empty() {
		t.Fatal("pipe should be empty after delivery")
	}
}

func TestPipeOrdering(t *testing.T) {
	p := NewPipe[int](0)
	p.SendAt(7, 1)
	p.SendAt(3, 0)
	p.SendAt(7, 2) // same cycle as the first: insertion order
	got := []int{}
	for now := Cycle(0); now < 10; now++ {
		for {
			v, ok := p.Recv(now)
			if !ok {
				break
			}
			got = append(got, v)
		}
	}
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order = %v, want %v", got, want)
		}
	}
}

func TestPipeZeroLatency(t *testing.T) {
	p := NewPipe[int](0)
	p.Send(4, 42)
	if v, ok := p.Recv(4); !ok || v != 42 {
		t.Fatalf("zero-latency pipe should deliver same cycle, got %d,%v", v, ok)
	}
}

func TestPipeProperty(t *testing.T) {
	// Property: every item sent is received exactly once, never before
	// its maturity cycle, and same-cycle items arrive in send order.
	f := func(delays []uint8) bool {
		p := NewPipe[int](3)
		for i, d := range delays {
			p.SendAt(Cycle(d), i)
		}
		seen := make(map[int]Cycle)
		var lastAt Cycle
		var lastSeq int
		for now := Cycle(0); now < 300; now++ {
			for {
				v, ok := p.Recv(now)
				if !ok {
					break
				}
				if _, dup := seen[v]; dup {
					return false
				}
				seen[v] = now
				if Cycle(delays[v]) > now {
					return false // delivered early
				}
				if now == lastAt && Cycle(delays[v]) == Cycle(delays[lastSeq]) && v < lastSeq {
					return false // same maturity cycle, out of send order
				}
				lastAt, lastSeq = now, v
			}
		}
		return len(seen) == len(delays) && p.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
