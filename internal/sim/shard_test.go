package sim

import (
	"fmt"
	"testing"
)

// toyLane is a minimal parallel-safe component: it owns a counter,
// "fires" on cycles determined by a per-lane deterministic schedule,
// and reports every firing to a shared log — directly when serial,
// via its Outbox when sharded. Firing n times completes it.
type toyLane struct {
	id      int
	period  Cycle
	limit   int
	fired   int
	busy    int64 // time-linear accounting replayed by Skip
	log     *[]string
	ob      *Outbox
	skipped int64
}

func (t *toyLane) Tick(now Cycle) {
	t.busy++
	if t.fired < t.limit && now%t.period == Cycle(t.id)%t.period {
		t.fired++
		ev := fmt.Sprintf("c%d lane%d fire%d", now, t.id, t.fired)
		if t.ob != nil {
			t.ob.Defer(func() { *t.log = append(*t.log, ev) })
		} else {
			*t.log = append(*t.log, ev)
		}
	}
}

func (t *toyLane) Idle() bool { return t.fired >= t.limit }

func (t *toyLane) NextEvent(now Cycle) Cycle {
	if t.fired >= t.limit {
		return Never
	}
	for c := now; ; c++ {
		if c%t.period == Cycle(t.id)%t.period {
			return c
		}
	}
}

func (t *toyLane) Skip(from, to Cycle) {
	t.busy += int64(to - from)
	t.skipped += int64(to - from)
}

// buildToy wires nLanes toy lanes plus a serial boundary ticker that
// appends a per-cycle marker, over either engine kind.
func buildToy(nLanes int, workers int, ff bool) (interface {
	Run(func() bool) (Cycle, error)
}, []*toyLane, *[]string) {
	log := &[]string{}
	lanes := make([]*toyLane, nLanes)
	mk := func(i int) *toyLane {
		return &toyLane{id: i, period: Cycle(3 + i%4), limit: 5 + i%3, log: log}
	}
	boundary := &toyLane{id: 99, period: 1000, limit: 0, log: log}
	if workers <= 0 {
		e := NewEngine()
		e.FastForward = ff
		for i := range lanes {
			lanes[i] = mk(i)
			e.Register(fmt.Sprintf("lane%d", i), lanes[i])
		}
		e.Register("boundary", boundary)
		return e, lanes, log
	}
	s := NewShardedEngine(workers)
	s.FastForward = ff
	for i := range lanes {
		lanes[i] = mk(i)
		lanes[i].ob = &Outbox{}
		s.RegisterParallel(fmt.Sprintf("lane%d", i), lanes[i], lanes[i].ob)
	}
	s.Register("boundary", boundary)
	return s, lanes, log
}

// TestShardedIdentity pins the core contract: a sharded run produces
// the same cycle count, the same per-component statistics, and the same
// ordered effect log as the serial run, at several worker counts, with
// fast-forwarding on and off.
func TestShardedIdentity(t *testing.T) {
	for _, ff := range []bool{false, true} {
		ser, serLanes, serLog := buildToy(8, 0, ff)
		serCycles, err := ser.Run(nil)
		if err != nil {
			t.Fatalf("serial run (ff=%v): %v", ff, err)
		}
		for _, workers := range []int{1, 2, 7} {
			sh, shLanes, shLog := buildToy(8, workers, ff)
			shCycles, err := sh.Run(nil)
			if err != nil {
				t.Fatalf("sharded run (workers=%d ff=%v): %v", workers, ff, err)
			}
			if shCycles != serCycles {
				t.Fatalf("workers=%d ff=%v: cycles %d != serial %d", workers, ff, shCycles, serCycles)
			}
			for i := range serLanes {
				a, b := *serLanes[i], *shLanes[i]
				a.log, a.ob, b.log, b.ob = nil, nil, nil, nil
				if a != b {
					t.Fatalf("workers=%d ff=%v lane%d state diverged:\nserial  %+v\nsharded %+v",
						workers, ff, i, a, b)
				}
			}
			if fmt.Sprint(*serLog) != fmt.Sprint(*shLog) {
				t.Fatalf("workers=%d ff=%v: effect log diverged\nserial  %v\nsharded %v",
					workers, ff, *serLog, *shLog)
			}
		}
	}
}

// TestShardedFFSkips pins that fast-forwarding actually engages on the
// sharded engine (skipped cycles accounted, lanes' Skip replayed).
func TestShardedFFSkips(t *testing.T) {
	sh, lanes, _ := buildToy(4, 2, true)
	s := sh.(*ShardedEngine)
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	if s.SkippedCycles == 0 {
		t.Fatal("expected skipped cycles on sparse toy machine with FF on")
	}
	var replayed int64
	for _, l := range lanes {
		replayed += l.skipped
	}
	if replayed == 0 {
		t.Fatal("parallel Skip fan-out never reached the lanes")
	}
}

// coupledProbe records tick order into an unsynchronized slice — safe
// only if the engine really runs coupled members serially.
type coupledProbe struct {
	toyLane
	order *[]int
}

func (c *coupledProbe) Tick(now Cycle) {
	*c.order = append(*c.order, c.id)
	c.toyLane.Tick(now)
}

// TestCoupledSerialOrder pins that members flagged by the coupling
// predicate tick on the driving goroutine in group-index order: the
// shared unsynchronized order slice must come out sorted per cycle and
// race-clean (run under -race in CI).
func TestCoupledSerialOrder(t *testing.T) {
	log := &[]string{}
	order := &[]int{}
	s := NewShardedEngine(3)
	n := 6
	for i := 0; i < n; i++ {
		p := &coupledProbe{toyLane: toyLane{id: i, period: 2, limit: 3, log: log, ob: &Outbox{}}, order: order}
		s.RegisterParallel(fmt.Sprintf("lane%d", i), p, p.toyLane.ob)
	}
	s.SetCoupled(func(k int) bool { return true }) // everything coupled
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(*order)%n != 0 {
		t.Fatalf("order length %d not a multiple of %d", len(*order), n)
	}
	for c := 0; c < len(*order); c += n {
		for i := 0; i < n; i++ {
			if (*order)[c+i] != i {
				t.Fatalf("cycle %d: coupled tick order %v, want 0..%d ascending", c/n, (*order)[c:c+n], n-1)
			}
		}
	}
}

// TestBarrierHookOrder pins that hooks run after outbox drains, in
// registration order, every cycle.
func TestBarrierHookOrder(t *testing.T) {
	log := &[]string{}
	s := NewShardedEngine(2)
	l := &toyLane{id: 0, period: 1, limit: 2, log: log, ob: &Outbox{}}
	s.RegisterParallel("lane0", l, l.ob)
	s.AddBarrierHook(func() { *log = append(*log, "hookA") })
	s.AddBarrierHook(func() { *log = append(*log, "hookB") })
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	want := []string{"c0 lane0 fire1", "hookA", "hookB", "c1 lane0 fire2", "hookA", "hookB"}
	if fmt.Sprint(*log) != fmt.Sprint(want) {
		t.Fatalf("barrier sequence %v, want %v", *log, want)
	}
}

type panicker struct{ toyLane }

func (p *panicker) Tick(now Cycle) {
	if now == 3 {
		panic("boom at cycle 3")
	}
	p.toyLane.Tick(now)
}

// TestShardedPanicPropagates pins that a panic inside a parallel tick
// surfaces on the driving goroutine (not a dead worker + hang).
func TestShardedPanicPropagates(t *testing.T) {
	log := &[]string{}
	s := NewShardedEngine(2)
	for i := 0; i < 4; i++ {
		var tk Ticker
		l := toyLane{id: i, period: 2, limit: 100, log: log, ob: &Outbox{}}
		if i == 2 {
			tk = &panicker{l}
		} else {
			lp := l
			tk = &lp
		}
		var ob *Outbox
		switch v := tk.(type) {
		case *panicker:
			ob = v.ob
		case *toyLane:
			ob = v.ob
		}
		s.RegisterParallel(fmt.Sprintf("lane%d", i), tk, ob)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate out of Run")
		}
		if fmt.Sprint(r) != "boom at cycle 3" {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	_, _ = s.Run(nil)
	t.Fatal("run returned normally despite panicking ticker")
}

// TestRegisterParallelContiguity pins the wiring guard: interleaving a
// serial Register inside the parallel group panics.
func TestRegisterParallelContiguity(t *testing.T) {
	log := &[]string{}
	s := NewShardedEngine(1)
	l0 := &toyLane{id: 0, period: 2, limit: 1, log: log, ob: &Outbox{}}
	s.RegisterParallel("lane0", l0, l0.ob)
	s.Register("boundary", &toyLane{id: 9, period: 2, limit: 0, log: log})
	defer func() {
		if recover() == nil {
			t.Fatal("expected contiguity panic")
		}
	}()
	l1 := &toyLane{id: 1, period: 2, limit: 1, log: log, ob: &Outbox{}}
	s.RegisterParallel("lane1", l1, l1.ob)
}

// skipIdleProbe counts real ticks vs skips so the test can prove the
// micro-skip substituted Skip for Tick on idle cycles.
type skipIdleProbe struct {
	next  Cycle
	ticks int64
	busy  int64
}

func (p *skipIdleProbe) Tick(now Cycle) {
	p.ticks++
	p.busy++
	if now >= p.next {
		p.next = now + 10
	}
}
func (p *skipIdleProbe) Idle() bool { return p.next >= 40 }
func (p *skipIdleProbe) NextEvent(now Cycle) Cycle {
	if p.next < now {
		return now
	}
	return p.next
}
func (p *skipIdleProbe) Skip(from, to Cycle) { p.busy += int64(to - from) }

// nonForecaster keeps FF from engaging so SkipIdle is exercised on the
// plain executed-cycle path.
type nonForecaster struct{ n Cycle }

func (x *nonForecaster) Tick(now Cycle) { x.n = now }
func (x *nonForecaster) Idle() bool     { return true }

// TestSkipIdleMicroSkip pins the satellite: with SkipIdle on, idle
// forecasting components get their one-cycle Skip instead of Tick, and
// time-linear accounting stays byte-identical.
func TestSkipIdleMicroSkip(t *testing.T) {
	run := func(skipIdle bool) *skipIdleProbe {
		e := NewEngine()
		e.SkipIdle = skipIdle
		p := &skipIdleProbe{}
		e.Register("probe", p)
		e.Register("plain", &nonForecaster{})
		e.MaxCycles = 40
		_, err := e.Run(func() bool { return p.next >= 40 })
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := run(false)
	fast := run(true)
	if fast.busy != base.busy {
		t.Fatalf("SkipIdle changed accounting: busy %d != %d", fast.busy, base.busy)
	}
	if fast.ticks >= base.ticks {
		t.Fatalf("SkipIdle did not suppress idle ticks: %d >= %d", fast.ticks, base.ticks)
	}
}
