package sim

import (
	"runtime"
	"sync/atomic"
)

// ShardedEngine ticks a designated contiguous group of components — the
// parallel group — on worker goroutines, while everything registered
// before the group (the serial prefix) and after it (the serial
// suffix/boundary) ticks on the driving goroutine in registration
// order. One simulated cycle executes as:
//
//	serial prefix → coupled members (in order) → parallel members
//	→ epoch barrier → serial suffix
//
// The epoch barrier drains every parallel member's Outbox in
// registration order and then runs the registered barrier hooks, so all
// cross-shard effects land in a fixed, shard-index order — the property
// that makes a sharded run byte-identical to a serial one (DESIGN.md
// §16 states the full identity argument).
//
// Parallel members must satisfy the shard invariant during Tick: read
// and write only their own state plus state no other component mutates
// this phase (single-owner queues), and route every other effect
// through their Outbox. Members that transiently violate the invariant
// against each other — in this machine, lanes sharing an unopened
// forward-group gate — are "coupled" via SetCoupled and tick serially,
// in order, before the parallel phase, which preserves exact serial
// semantics for same-cycle gate visibility.
//
// Fast-forwarding composes: the horizon fold asks the parallel group's
// Forecasters concurrently (forecasts are read-only) and Skip fans out
// in parallel (skips write only component-local accounting).
type ShardedEngine struct {
	Engine

	workers      int
	pstart, pend int // [pstart, pend) is the parallel group in regs
	outboxes     []*Outbox
	coupled      func(k int) bool // k indexes within the parallel group
	hooks        []func()

	pool     *workerPool
	parWork  []int // uncoupled parallel-group indices this cycle
	horizons []Cycle
	skipA    Cycle
	skipB    Cycle

	stepFn func(int)
	horFn  func(int)
	skipFn func(int)

	// Host profiling (hostprof.go): non-nil only for the duration of a
	// profiled Run. profStepFn is the per-item timing variant of
	// stepFn; per-shard busy accumulates into prof.ShardBusyNS, whose
	// distinct elements are written by at most one goroutine per
	// dispatch and read by the driver only after the barrier join.
	prof       *HostProf
	profStepFn func(int)
}

// NewShardedEngine returns an engine that runs its parallel group on
// workers goroutines (the driving goroutine also participates, so the
// parallel phase uses workers+1 execution streams). workers must be
// ≥ 1; callers wanting a serial machine should use NewEngine.
func NewShardedEngine(workers int) *ShardedEngine {
	if workers < 1 {
		panic("sim: sharded engine needs at least one worker")
	}
	return &ShardedEngine{workers: workers, pstart: -1, pend: -1}
}

// RegisterParallel appends a component to the parallel group. The group
// must be contiguous in registration order: every RegisterParallel call
// must follow either another RegisterParallel or only serial-prefix
// Registers. ob receives the component's deferred cross-shard effects;
// it is drained at the epoch barrier in registration order.
func (s *ShardedEngine) RegisterParallel(name string, t Ticker, ob *Outbox) {
	if s.pstart < 0 {
		s.pstart = len(s.regs)
	} else if s.pend != len(s.regs) {
		panic("sim: parallel group must be contiguous in registration order")
	}
	s.Register(name, t)
	s.pend = len(s.regs)
	s.outboxes = append(s.outboxes, ob)
}

// SetCoupled installs the coupling predicate: parallel-group member k
// (0-based within the group) ticks serially, in group order, before the
// parallel phase whenever coupled(k) reports true. The predicate is
// consulted once per member per cycle, from the driving goroutine.
func (s *ShardedEngine) SetCoupled(coupled func(k int) bool) { s.coupled = coupled }

// AddBarrierHook registers fn to run at every epoch barrier, after the
// outboxes drain, in registration order. Hooks run on the driving
// goroutine; machines use them to fold shard-deferred counters and
// recycle shard-local slabs.
func (s *ShardedEngine) AddBarrierHook(fn func()) { s.hooks = append(s.hooks, fn) }

// Run executes the sharded run loop. The worker pool exists only for
// the duration of the run.
func (s *ShardedEngine) Run(done func() bool) (Cycle, error) {
	if s.pstart < 0 {
		s.pstart, s.pend = len(s.regs), len(s.regs)
	}
	n := s.pend - s.pstart
	s.parWork = make([]int, 0, n)
	s.horizons = make([]Cycle, n)
	// Bind the dispatch bodies once; per-cycle dispatches then allocate
	// nothing.
	s.stepFn = func(j int) { s.tickOne(s.pstart + s.parWork[j]) }
	s.horFn = func(k int) { s.horizons[k] = s.regs[s.pstart+k].f.NextEvent(s.now) }
	s.skipFn = func(k int) {
		if sk := s.regs[s.pstart+k].s; sk != nil {
			sk.Skip(s.skipA, s.skipB)
		}
	}
	s.pool = newWorkerPool(s.workers)
	defer s.pool.stop()
	if !hostProfOn.Load() {
		return s.runLoop(s, done)
	}
	s.prof = &HostProf{
		Runs: 1, ShardedRuns: 1,
		ShardBusyNS: make([]int64, n),
		Streams:     s.workers + 1,
	}
	s.profStepFn = func(j int) {
		k := s.parWork[j]
		t := nowNS()
		s.tickOne(s.pstart + k)
		s.prof.ShardBusyNS[k] += nowNS() - t
	}
	t0 := nowNS()
	c, err := s.runLoop(s, done)
	s.prof.TotalNS = nowNS() - t0
	s.prof.ExecutedCycles = s.ExecutedCycles
	s.prof.SkippedCycles = s.SkippedCycles
	mergeHostProf(s.prof)
	s.prof, s.profStepFn = nil, nil
	return c, err
}

// step executes one sharded cycle (see the type comment for the phase
// structure).
func (s *ShardedEngine) step() {
	if s.prof != nil {
		s.stepProf()
		return
	}
	for i := 0; i < s.pstart; i++ {
		s.tickOne(i)
	}
	s.parWork = s.parWork[:0]
	if s.coupled != nil {
		for k := 0; k < s.pend-s.pstart; k++ {
			if s.coupled(k) {
				s.tickOne(s.pstart + k)
			} else {
				s.parWork = append(s.parWork, k)
			}
		}
	} else {
		for k := 0; k < s.pend-s.pstart; k++ {
			s.parWork = append(s.parWork, k)
		}
	}
	s.pool.dispatch(len(s.parWork), s.stepFn)
	// Epoch barrier: deferred cross-shard effects in registration
	// order, then the merge hooks.
	for _, ob := range s.outboxes {
		ob.drain()
	}
	for _, h := range s.hooks {
		h()
	}
	for i := s.pend; i < len(s.regs); i++ {
		s.tickOne(i)
	}
	s.now++
	s.ExecutedCycles++
}

// stepProf is step with the host-profiling clock read around every
// phase (hostprof.go). Kept as a separate body so the unprofiled hot
// path pays exactly one nil check per cycle. The phase structure must
// mirror step exactly; TestHostProfIdentity pins that the results do.
func (s *ShardedEngine) stepProf() {
	p := s.prof
	t := nowNS()
	for i := 0; i < s.pstart; i++ {
		s.tickOne(i)
	}
	t1 := nowNS()
	p.SerialPrefixNS += t1 - t
	t = t1
	s.parWork = s.parWork[:0]
	if s.coupled != nil {
		for k := 0; k < s.pend-s.pstart; k++ {
			if s.coupled(k) {
				s.tickOne(s.pstart + k)
			} else {
				s.parWork = append(s.parWork, k)
			}
		}
	} else {
		for k := 0; k < s.pend-s.pstart; k++ {
			s.parWork = append(s.parWork, k)
		}
	}
	t1 = nowNS()
	p.CoupledNS += t1 - t
	t = t1
	p.BarrierWaitNS += s.pool.dispatchTimed(len(s.parWork), s.profStepFn)
	t1 = nowNS()
	p.ParallelNS += t1 - t
	t = t1
	for _, ob := range s.outboxes {
		ob.drain()
	}
	t1 = nowNS()
	p.OutboxDrainNS += t1 - t
	t = t1
	for _, h := range s.hooks {
		h()
	}
	t1 = nowNS()
	p.HookNS += t1 - t
	t = t1
	for i := s.pend; i < len(s.regs); i++ {
		s.tickOne(i)
	}
	p.SerialSuffixNS += nowNS() - t
	s.now++
	s.ExecutedCycles++
}

// horizon folds per-component forecasts: serial components in order
// (with early exit), the parallel group concurrently. Min is
// commutative, so the concurrent fold is deterministic.
func (s *ShardedEngine) horizon() Cycle {
	h := Never
	for i := 0; i < s.pstart; i++ {
		ev := s.regs[i].f.NextEvent(s.now)
		if ev <= s.now {
			return s.now
		}
		if ev < h {
			h = ev
		}
	}
	for i := s.pend; i < len(s.regs); i++ {
		ev := s.regs[i].f.NextEvent(s.now)
		if ev <= s.now {
			return s.now
		}
		if ev < h {
			h = ev
		}
	}
	s.pool.dispatch(s.pend-s.pstart, s.horFn)
	for _, ev := range s.horizons {
		if ev < h {
			h = ev
		}
	}
	if h < s.now {
		h = s.now
	}
	return h
}

// skipTo fans Skip out over the parallel group concurrently; skips
// mutate only component-local accounting, so order is immaterial.
func (s *ShardedEngine) skipTo(h Cycle) {
	for i := 0; i < s.pstart; i++ {
		if sk := s.regs[i].s; sk != nil {
			sk.Skip(s.now, h)
		}
	}
	for i := s.pend; i < len(s.regs); i++ {
		if sk := s.regs[i].s; sk != nil {
			sk.Skip(s.now, h)
		}
	}
	s.skipA, s.skipB = s.now, h
	s.pool.dispatch(s.pend-s.pstart, s.skipFn)
	s.SkippedCycles += int64(h - s.now)
	s.now = h
}

// workerPool executes index-addressed work items on spinning worker
// goroutines. The simulator needs a sub-microsecond fork/join per
// simulated cycle — channel-based handoff costs more than many of the
// ticks it would parallelize — so release and completion ride atomics,
// with Gosched-yielding spins keeping single-core hosts live.
type workerPool struct {
	workers int
	items   int
	run     func(int)

	epoch   atomic.Int64
	cursor  atomic.Int64
	done    atomic.Int64
	stopped atomic.Bool
	panics  chan any
}

// newWorkerPool starts n spinning workers. Callers must stop the pool;
// its goroutines otherwise spin (yielding) forever.
func newWorkerPool(n int) *workerPool {
	p := &workerPool{workers: n, panics: make(chan any, n+1)}
	for w := 0; w < n; w++ {
		go p.worker()
	}
	return p
}

// dispatch runs run(0..items-1) across the workers plus the calling
// goroutine and returns when all items completed. A panic in any item
// is re-raised on the calling goroutine after the join, so the barrier
// is never torn.
func (p *workerPool) dispatch(items int, run func(int)) {
	if items == 0 {
		return
	}
	p.items = items
	p.run = run
	p.cursor.Store(0)
	p.done.Store(0)
	// The epoch increment publishes items/run/cursor/done to the
	// workers (atomic release; their epoch load acquires).
	p.epoch.Add(1)
	p.work()
	for p.done.Load() < int64(p.workers) {
		runtime.Gosched()
	}
	p.run = nil
	select {
	case r := <-p.panics:
		panic(r)
	default:
	}
}

// dispatchTimed is dispatch plus barrier-wait attribution: it returns
// the wall nanoseconds the calling goroutine spent spinning at the
// join after finishing its own share of items — the host-profiling
// measure of shard imbalance (a perfectly balanced epoch waits ~0).
// Kept separate from dispatch so the unprofiled per-cycle path carries
// no clock reads.
func (p *workerPool) dispatchTimed(items int, run func(int)) (waitNS int64) {
	if items == 0 {
		return 0
	}
	p.items = items
	p.run = run
	p.cursor.Store(0)
	p.done.Store(0)
	p.epoch.Add(1)
	p.work()
	t := nowNS()
	for p.done.Load() < int64(p.workers) {
		runtime.Gosched()
	}
	waitNS = nowNS() - t
	p.run = nil
	select {
	case r := <-p.panics:
		panic(r)
	default:
	}
	return waitNS
}

// work claims and runs items until the cursor is exhausted, trapping
// panics for the dispatcher to re-raise.
func (p *workerPool) work() {
	defer func() {
		if r := recover(); r != nil {
			p.panics <- r
		}
	}()
	for {
		i := int(p.cursor.Add(1)) - 1
		if i >= p.items {
			return
		}
		p.run(i)
	}
}

// worker is the spin loop each pool goroutine runs: wait for the next
// epoch, process it, report done.
func (p *workerPool) worker() {
	last := int64(0)
	for {
		for p.epoch.Load() == last {
			if p.stopped.Load() {
				return
			}
			runtime.Gosched()
		}
		last++
		p.work()
		p.done.Add(1)
	}
}

// stop releases the workers; they exit at their next spin check.
func (p *workerPool) stop() { p.stopped.Store(true) }
