package sim

// Deque is an unbounded FIFO backed by a growable ring buffer. Unlike
// Queue it has no capacity bound (and therefore no backpressure); it
// exists for structures the model declares unbounded — NoC ejection
// queues — where the previous append/shift-slice representation leaked
// capacity at the head and reallocated under steady-state traffic. The
// ring reuses its storage, so a warmed deque pushes and pops without
// allocating.
type Deque[T any] struct {
	buf  []T
	head int
	size int
}

// Len returns the number of buffered items.
func (d *Deque[T]) Len() int { return d.size }

// Empty reports whether no items are buffered.
func (d *Deque[T]) Empty() bool { return d.size == 0 }

// Push appends an item, growing the ring if needed.
func (d *Deque[T]) Push(v T) {
	if d.size == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.size)%len(d.buf)] = v
	d.size++
}

// Pop removes and returns the oldest item. ok is false when empty.
func (d *Deque[T]) Pop() (v T, ok bool) {
	if d.size == 0 {
		return v, false
	}
	v = d.buf[d.head]
	var zero T
	d.buf[d.head] = zero
	d.head = (d.head + 1) % len(d.buf)
	d.size--
	return v, true
}

// Peek returns the oldest item without removing it. ok is false when
// empty.
func (d *Deque[T]) Peek() (v T, ok bool) {
	if d.size == 0 {
		return v, false
	}
	return d.buf[d.head], true
}

// grow doubles the ring (minimum 8), unwrapping the contents.
func (d *Deque[T]) grow() {
	n := len(d.buf) * 2
	if n < 8 {
		n = 8
	}
	buf := make([]T, n)
	for i := 0; i < d.size; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}
