package sim

import "testing"

type body struct {
	A, B int64
}

func TestSlabRecyclesZeroed(t *testing.T) {
	var s Slab[body]
	p := s.Get()
	p.A, p.B = 7, 9
	s.Put(p)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	q := s.Get()
	if q != p {
		t.Fatal("Get did not reuse the recycled object")
	}
	if q.A != 0 || q.B != 0 {
		t.Fatalf("recycled object not zeroed: %+v", *q)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Get, want 0", s.Len())
	}
}

func TestShardSlabRecycleRebalances(t *testing.T) {
	var central Slab[body]
	sh := NewShardSlab(&central, 2)

	// Free more than the local target; Recycle must push the excess back.
	for i := 0; i < 5; i++ {
		sh.Put(new(body))
	}
	sh.Recycle()
	if got := len(sh.local); got != 2 {
		t.Fatalf("local stock = %d after Recycle, want target 2", got)
	}
	if central.Len() != 3 {
		t.Fatalf("central = %d after Recycle, want 3", central.Len())
	}

	// Drain the local stock; Recycle must refill from central.
	sh.Get()
	sh.Get()
	sh.Recycle()
	if got := len(sh.local); got != 2 {
		t.Fatalf("local stock = %d after refill, want 2", got)
	}
	if central.Len() != 1 {
		t.Fatalf("central = %d after refill, want 1", central.Len())
	}
}

func TestShardSlabGetPutSamePhase(t *testing.T) {
	var central Slab[body]
	sh := NewShardSlab(&central, 0)
	p := sh.Get()
	p.A = 42
	sh.Put(p)
	q := sh.Get()
	if q != p || q.A != 0 {
		t.Fatalf("same-phase reuse broken: q==p %v, q=%+v", q == p, *q)
	}
}

func TestOutboxDrainOrderAndReuse(t *testing.T) {
	var ob Outbox
	var got []int
	ob.Defer(func() { got = append(got, 1) })
	ob.Defer(func() { got = append(got, 2) })
	ob.drain()
	ob.Defer(func() { got = append(got, 3) })
	ob.drain()
	ob.drain() // empty drain is a no-op
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("drain order = %v, want [1 2 3]", got)
	}
}

// BenchmarkSlabGetPut pins the steady-state cost of the free list.
func BenchmarkSlabGetPut(b *testing.B) {
	var s Slab[body]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := s.Get()
		p.A = int64(i)
		s.Put(p)
	}
}
