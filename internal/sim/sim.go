// Package sim provides the deterministic cycle-level simulation kernel
// used by every hardware model in the repository.
//
// The kernel is intentionally simple: a machine is a fixed, ordered list
// of Tickers. Each simulated cycle the engine calls Tick on every
// component in registration order. All cross-component communication
// happens through bounded queues and latency pipes from this package, so
// a run is bit-deterministic: identical inputs produce identical cycle
// counts on every platform.
//
// Single-phase ticking means registration order is part of the machine
// definition. Models in this repository always register components in
// a fixed architectural order (memory, NoC, lanes by index) and
// communicate only through Queue/Pipe, which decouple producer and
// consumer by at least one cycle of visibility where it matters.
//
// # Event-horizon fast-forwarding
//
// Run supports an opt-in discrete-event acceleration: when every
// registered component implements Forecaster, the engine computes the
// minimum "event horizon" after each executed cycle — the earliest
// future cycle at which any component's externally visible state can
// change — and advances time directly to it instead of executing the
// intervening empty cycles. Components whose per-cycle behavior during
// those empty cycles is pure time-linear accounting (busy counters,
// stall attribution) implement Skipper so the engine can replay that
// accounting in bulk, keeping every statistic byte-identical to a
// cycle-by-cycle run. See DESIGN.md §11 for the full contract.
//
// SkipIdle applies the same contract at per-component granularity
// within executed cycles: a component whose forecast is beyond now has
// promised its Tick would do nothing beyond Skipper-declared
// accounting, so the engine replays that accounting (Skip(now, now+1))
// instead of ticking it. Because the forecast is evaluated at the
// component's own position in the tick order, it sees exactly the
// state its Tick would have seen, which keeps the substitution exact.
//
// # Sharded execution
//
// ShardedEngine (shard.go) extends the kernel to tick an independent
// group of components on worker goroutines with a deterministic epoch
// barrier per cycle; see DESIGN.md §16.
package sim

import (
	"fmt"
	"math"
)

// Cycle is a point in simulated time, measured in clock cycles from
// machine reset (cycle 0 is the first executed cycle).
type Cycle int64

// Never is the forecast of a component that cannot act again without
// new external input. It compares greater than every reachable cycle.
const Never Cycle = math.MaxInt64

// Ticker is a hardware component advanced once per simulated cycle.
type Ticker interface {
	// Tick advances the component by one cycle. now is the cycle being
	// executed.
	Tick(now Cycle)
}

// Idler is implemented by components that can report quiescence. The
// engine stops when every registered Idler reports Idle and the run's
// Done predicate (if any) holds.
type Idler interface {
	// Idle reports whether the component has no pending work: empty
	// queues, no in-flight requests, no buffered state awaiting drain.
	Idle() bool
}

// Forecaster is the event-horizon protocol. A component implementing it
// promises: if NextEvent(now) returns h, then Tick at every cycle in
// [now, h) would change no externally visible state and no statistic —
// except time-linear accounting declared via Skipper — provided the
// component receives no new input before h. Since nothing ticks during
// a skip, no new input can appear, which makes the promise sound.
//
// The contract in detail:
//
//   - now is the next cycle the engine would execute. Return now (or
//     anything ≤ now) when the component may act immediately; return
//     Never when it cannot act again without external input (a new
//     message, a queue push, a shared gate flipping). Values below now
//     are treated as now, so stale-but-conservative forecasts are safe.
//   - The forecast must account for everything already buffered inside
//     the component: a queued message, an in-flight pipe item, a timer
//     such as a link busy-until or a config-done cycle.
//   - It must never be optimistic. Forecasting h when the component
//     would in fact act at some cycle < h silently corrupts the
//     simulation; forecasting too early only wastes a tick.
//   - The engine re-asks after every executed cycle, so a forecast only
//     needs to be valid until the next event anywhere in the machine —
//     reacting to another component's action is handled by that
//     component bounding the horizon.
//
// Fast-forwarding engages only when every registered Ticker implements
// Forecaster; a machine with one non-forecasting component simply runs
// cycle by cycle, which keeps the protocol incrementally adoptable.
type Forecaster interface {
	// NextEvent returns the earliest cycle ≥ now at which the
	// component's Tick could do anything beyond Skipper-declared
	// time-linear accounting, or Never.
	NextEvent(now Cycle) Cycle
}

// Skipper is implemented by Forecasters whose per-cycle effects during
// event-free cycles are time-linear (busy-cycle counters, stall
// attribution) and can therefore be applied in bulk. When the engine
// fast-forwards from cycle from to cycle to, it calls Skip(from, to) in
// registration order; the component must mutate its counters exactly as
// to-from individual Ticks over [from, to) would have.
type Skipper interface {
	Skip(from, to Cycle)
}

// reg is one registered component with its optional protocol facets
// resolved once, so the per-cycle loops never re-type-assert.
type reg struct {
	t Ticker
	f Forecaster // nil when the component does not forecast
	s Skipper    // nil when it has no time-linear accounting
}

// Engine drives a fixed set of components through simulated time.
type Engine struct {
	regs  []reg
	names []string
	// idlers and idlerNames hold the Idler subset of tickers (resolved
	// once at Register so quiescence scans and deadlock diagnostics
	// never re-type-assert).
	idlers     []Idler
	idlerNames []string
	// nForecast counts registered Forecasters; fast-forwarding engages
	// only when it covers every ticker.
	nForecast int
	now       Cycle
	// MaxCycles aborts a run that fails to quiesce; a safety net for
	// model bugs (deadlocked credit loops and the like). Zero means the
	// DefaultMaxCycles limit.
	MaxCycles Cycle
	// FastForward opts the run into event-horizon fast-forwarding. It
	// has no effect unless every registered component implements
	// Forecaster. Results are byte-identical either way; only wall
	// time changes. Done predicates passed to Run must depend on
	// component state only, never on Now() directly, since skipped
	// cycles are not individually observed.
	FastForward bool
	// SkipIdle replaces the Tick of any component whose forecast is
	// beyond the current cycle with its (bulk-exact) one-cycle Skip,
	// inside executed cycles — the per-component analogue of
	// fast-forwarding, effective even when FastForward is off or
	// cannot engage. Byte-identical by the Forecaster contract.
	SkipIdle bool
	// ExecutedCycles and SkippedCycles meter fast-forwarding: cycles
	// individually ticked versus cycles jumped over. They never enter
	// simulation results — purely wall-time diagnostics.
	ExecutedCycles int64
	SkippedCycles  int64
}

// DefaultMaxCycles bounds runs whose Engine.MaxCycles is unset.
const DefaultMaxCycles Cycle = 2_000_000_000

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Register appends a component to the tick order. The name is used in
// deadlock diagnostics. If the component implements Idler it also
// participates in quiescence detection; if it implements Forecaster it
// participates in event-horizon fast-forwarding.
func (e *Engine) Register(name string, t Ticker) {
	r := reg{t: t}
	if f, ok := t.(Forecaster); ok {
		r.f = f
		e.nForecast++
	}
	if s, ok := t.(Skipper); ok {
		r.s = s
	}
	e.regs = append(e.regs, r)
	e.names = append(e.names, name)
	if id, ok := t.(Idler); ok {
		e.idlers = append(e.idlers, id)
		e.idlerNames = append(e.idlerNames, name)
	}
}

// Now returns the current cycle (the number of fully executed cycles).
func (e *Engine) Now() Cycle { return e.now }

// tickOne advances component i by one cycle, substituting its bulk
// accounting when SkipIdle applies. It mutates no engine state, so the
// sharded engine can call it concurrently for independent components.
func (e *Engine) tickOne(i int) {
	r := &e.regs[i]
	if e.SkipIdle && r.f != nil && r.f.NextEvent(e.now) > e.now {
		if r.s != nil {
			r.s.Skip(e.now, e.now+1)
		}
		return
	}
	r.t.Tick(e.now)
}

// Step executes exactly one cycle.
func (e *Engine) Step() {
	for i := range e.regs {
		e.tickOne(i)
	}
	e.now++
	e.ExecutedCycles++
}

// quiescent reports whether every Idler is idle.
func (e *Engine) quiescent() bool {
	for _, id := range e.idlers {
		if !id.Idle() {
			return false
		}
	}
	return true
}

// horizon returns the earliest cycle ≥ e.now at which any component may
// act, or Never. It early-exits as soon as any component reports an
// immediate event, bounding the scan cost on busy cycles.
func (e *Engine) horizon() Cycle {
	h := Never
	for i := range e.regs {
		ev := e.regs[i].f.NextEvent(e.now)
		if ev <= e.now {
			return e.now
		}
		if ev < h {
			h = ev
		}
	}
	return h
}

// skipTo replays time-linear accounting over [e.now, h) and jumps to h.
func (e *Engine) skipTo(h Cycle) {
	for i := range e.regs {
		if s := e.regs[i].s; s != nil {
			s.Skip(e.now, h)
		}
	}
	e.SkippedCycles += int64(h - e.now)
	e.now = h
}

// step is the engine's single-cycle driver hook (see driver).
func (e *Engine) step() { e.Step() }

// driver abstracts how one cycle executes and how the fast-forward
// protocol fans out, so the serial Engine and the ShardedEngine share
// one run loop — and therefore exactly one termination, limit, and
// skip policy.
type driver interface {
	step()
	horizon() Cycle
	skipTo(h Cycle)
}

// Run executes cycles until done() returns true and all components are
// idle, returning the total executed cycles. done may be nil, in which
// case only quiescence terminates the run. Run returns an error if the
// cycle limit is exceeded, identifying the non-idle components.
//
// When FastForward is set and every component forecasts, Run skips
// provably event-free stretches of cycles (see the package comment);
// cycle counts, statistics, and termination are byte-identical to a
// cycle-by-cycle run.
func (e *Engine) Run(done func() bool) (Cycle, error) {
	if !hostProfOn.Load() {
		return e.runLoop(e, done)
	}
	// Host profiling (hostprof.go): a serial engine carries no phase
	// attribution, only run totals.
	t0 := nowNS()
	c, err := e.runLoop(e, done)
	mergeHostProf(&HostProf{
		Runs:           1,
		ExecutedCycles: e.ExecutedCycles,
		SkippedCycles:  e.SkippedCycles,
		TotalNS:        nowNS() - t0,
		Streams:        1,
	})
	return c, err
}

// ffEngaged reports whether fast-forwarding can run: opted in and every
// component forecasts.
func (e *Engine) ffEngaged() bool {
	return e.FastForward && e.nForecast == len(e.regs)
}

// runLoop is the shared cycle loop; d supplies the execution strategy.
func (e *Engine) runLoop(d driver, done func() bool) (Cycle, error) {
	limit := e.MaxCycles
	if limit <= 0 {
		limit = DefaultMaxCycles
	}
	ff := e.ffEngaged()
	for {
		if (done == nil || done()) && e.quiescent() {
			return e.now, nil
		}
		if e.now >= limit {
			return e.now, fmt.Errorf("sim: cycle limit %d exceeded; busy components: %v", limit, e.busyNames())
		}
		d.step()
		if !ff {
			continue
		}
		h := d.horizon()
		if h <= e.now {
			continue
		}
		// The run may have completed on the cycle just executed; return
		// before skipping so no idle tail is fabricated (time-linear
		// counters would otherwise run past the true finish cycle).
		if (done == nil || done()) && e.quiescent() {
			return e.now, nil
		}
		if h > limit {
			// Deadlock (or a horizon legitimately past the limit):
			// jump to the limit so the next iteration reports it, with
			// skipped-cycle accounting intact.
			h = limit
		}
		if h > e.now {
			d.skipTo(h)
		}
	}
}

// busyNames lists registered names of components that are not idle.
func (e *Engine) busyNames() []string {
	var busy []string
	for i, id := range e.idlers {
		if !id.Idle() {
			busy = append(busy, e.idlerNames[i])
		}
	}
	return busy
}
