// Package sim provides the deterministic cycle-level simulation kernel
// used by every hardware model in the repository.
//
// The kernel is intentionally simple: a machine is a fixed, ordered list
// of Tickers. Each simulated cycle the engine calls Tick on every
// component in registration order. All cross-component communication
// happens through bounded queues and latency pipes from this package, so
// a run is bit-deterministic: identical inputs produce identical cycle
// counts on every platform.
//
// Single-phase ticking means registration order is part of the machine
// definition. Models in this repository always register components in
// a fixed architectural order (memory, NoC, lanes by index) and
// communicate only through Queue/Pipe, which decouple producer and
// consumer by at least one cycle of visibility where it matters.
package sim

import "fmt"

// Cycle is a point in simulated time, measured in clock cycles from
// machine reset (cycle 0 is the first executed cycle).
type Cycle int64

// Ticker is a hardware component advanced once per simulated cycle.
type Ticker interface {
	// Tick advances the component by one cycle. now is the cycle being
	// executed.
	Tick(now Cycle)
}

// Idler is implemented by components that can report quiescence. The
// engine stops when every registered Idler reports Idle and the run's
// Done predicate (if any) holds.
type Idler interface {
	// Idle reports whether the component has no pending work: empty
	// queues, no in-flight requests, no buffered state awaiting drain.
	Idle() bool
}

// Engine drives a fixed set of components through simulated time.
type Engine struct {
	tickers []Ticker
	idlers  []Idler
	names   []string
	now     Cycle
	// MaxCycles aborts a run that fails to quiesce; a safety net for
	// model bugs (deadlocked credit loops and the like). Zero means the
	// DefaultMaxCycles limit.
	MaxCycles Cycle
}

// DefaultMaxCycles bounds runs whose Engine.MaxCycles is unset.
const DefaultMaxCycles Cycle = 2_000_000_000

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Register appends a component to the tick order. The name is used in
// deadlock diagnostics. If the component implements Idler it also
// participates in quiescence detection.
func (e *Engine) Register(name string, t Ticker) {
	e.tickers = append(e.tickers, t)
	e.names = append(e.names, name)
	if id, ok := t.(Idler); ok {
		e.idlers = append(e.idlers, id)
	}
}

// Now returns the current cycle (the number of fully executed cycles).
func (e *Engine) Now() Cycle { return e.now }

// Step executes exactly one cycle.
func (e *Engine) Step() {
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
	e.now++
}

// quiescent reports whether every Idler is idle.
func (e *Engine) quiescent() bool {
	for _, id := range e.idlers {
		if !id.Idle() {
			return false
		}
	}
	return true
}

// Run executes cycles until done() returns true and all components are
// idle, returning the total executed cycles. done may be nil, in which
// case only quiescence terminates the run. Run returns an error if the
// cycle limit is exceeded, identifying the non-idle components.
func (e *Engine) Run(done func() bool) (Cycle, error) {
	limit := e.MaxCycles
	if limit <= 0 {
		limit = DefaultMaxCycles
	}
	for {
		if (done == nil || done()) && e.quiescent() {
			return e.now, nil
		}
		if e.now >= limit {
			return e.now, fmt.Errorf("sim: cycle limit %d exceeded; busy components: %v", limit, e.busyNames())
		}
		e.Step()
	}
}

// busyNames lists registered names of components that are not idle.
func (e *Engine) busyNames() []string {
	var busy []string
	for i, t := range e.tickers {
		if id, ok := t.(Idler); ok && !id.Idle() {
			busy = append(busy, e.names[i])
		}
	}
	return busy
}
