package isa

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"taskstream/internal/core"
	"taskstream/internal/mem"
)

func sampleTask() *core.Task {
	return &core.Task{
		Type:    3,
		Phase:   2,
		Key:     0xABCDEF,
		Scalars: []uint64{7, 8, 9},
		Ins: []core.InArg{
			{Kind: core.ArgDRAMLinear, Base: 0x1000, N: 128, Shared: true},
			{Kind: core.ArgDRAMGather, Base: 0x2000, IdxBase: 0x3000, N: 64},
			{Kind: core.ArgConst, Value: 42},
			{Kind: core.ArgForwardIn, Base: 0x4000, N: 32, Tag: 17},
			{Kind: core.ArgDRAMAffine, Base: 0x5000, N: 12, Rows: 3, RowLen: 4, Pitch: 100},
		},
		Outs: []core.OutArg{
			{Kind: core.OutDRAMLinear, Base: 0x6000, N: 128},
			{Kind: core.OutForward, Base: 0x7000, N: 64, Tag: 18},
			{Kind: core.OutDiscard, N: 5},
		},
		WorkHint: 999,
	}
}

func TestRoundTrip(t *testing.T) {
	task := sampleTask()
	buf, err := EncodeTask(task)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTask(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != task.Type || got.Phase != task.Phase || got.Key != task.Key ||
		got.WorkHint != task.WorkHint {
		t.Fatalf("header mismatch: %+v vs %+v", got, task)
	}
	if len(got.Scalars) != 3 || got.Scalars[2] != 9 {
		t.Fatalf("scalars = %v", got.Scalars)
	}
	for i, in := range task.Ins {
		g := got.Ins[i]
		if g.Kind != in.Kind || g.Base != in.Base || g.N != in.N || g.Shared != in.Shared ||
			g.IdxBase != in.IdxBase || g.Value != in.Value || g.Tag != in.Tag ||
			g.Rows != in.Rows || g.RowLen != in.RowLen || g.Pitch != in.Pitch {
			t.Fatalf("in[%d]: %+v vs %+v", i, g, in)
		}
	}
	for i, o := range task.Outs {
		g := got.Outs[i]
		if g.Kind != o.Kind || g.Base != o.Base || g.N != o.N || g.Tag != o.Tag {
			t.Fatalf("out[%d]: %+v vs %+v", i, g, o)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	buf, _ := EncodeTask(sampleTask())
	if _, err := DecodeTask(buf[:10]); err == nil {
		t.Fatal("truncated descriptor must fail")
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	if _, err := DecodeTask(bad); err == nil {
		t.Fatal("bad magic must fail")
	}
	long := append(append([]byte(nil), buf...), 0)
	if _, err := DecodeTask(long); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	if _, err := DecodeTask(nil); err == nil {
		t.Fatal("empty buffer must fail")
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	if _, err := EncodeTask(&core.Task{Type: 1 << 17}); err == nil {
		t.Fatal("type out of u16 range must fail")
	}
	big := &core.Task{Scalars: make([]uint64, 300)}
	if _, err := EncodeTask(big); err == nil {
		t.Fatal("too many scalars must fail")
	}
}

// TestEncodeRejects32BitOverflow pins the truncation fix: descriptor
// count/shape fields ride in 4-byte wire slots, so an int beyond int32
// range must be an encode error, not a silent roundtrip corruption.
func TestEncodeRejects32BitOverflow(t *testing.T) {
	if strconv.IntSize < 64 {
		t.Skip("int cannot exceed 32 bits on this platform")
	}
	big := int(math.MaxInt32) + 1
	cases := []struct {
		name string
		task *core.Task
	}{
		{"in.N", &core.Task{Ins: []core.InArg{{Kind: core.ArgDRAMLinear, Base: 0x100, N: big}}}},
		{"in.Rows", &core.Task{Ins: []core.InArg{{Kind: core.ArgDRAMAffine, Base: 0x100, Rows: big, RowLen: 1, N: 1}}}},
		{"in.RowLen", &core.Task{Ins: []core.InArg{{Kind: core.ArgDRAMAffine, Base: 0x100, Rows: 1, RowLen: big, N: 1}}}},
		{"in.Pitch", &core.Task{Ins: []core.InArg{{Kind: core.ArgDRAMAffine, Base: 0x100, Rows: 1, RowLen: 1, N: 1, Pitch: big}}}},
		{"out.N", &core.Task{Outs: []core.OutArg{{Kind: core.OutDRAMLinear, Base: 0x100, N: big}}}},
		{"negative in.N", &core.Task{Ins: []core.InArg{{Kind: core.ArgDRAMLinear, Base: 0x100, N: math.MinInt32 - 1}}}},
	}
	for _, c := range cases {
		if _, err := EncodeTask(c.task); err == nil {
			t.Errorf("%s overflow must fail to encode", c.name)
		}
	}
}

// TestRoundTripBoundaryFields covers the extremes that DO fit the wire
// slots: MaxInt32 shapes and the −1 kernel-determined output length.
func TestRoundTripBoundaryFields(t *testing.T) {
	task := &core.Task{
		Ins: []core.InArg{{Kind: core.ArgDRAMAffine, Base: 0x100,
			N: math.MaxInt32, Rows: math.MaxInt32, RowLen: math.MaxInt32, Pitch: math.MaxInt32}},
		Outs: []core.OutArg{{Kind: core.OutForward, Base: 0x200, Tag: 9, N: -1}},
	}
	buf, err := EncodeTask(task)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTask(buf)
	if err != nil {
		t.Fatal(err)
	}
	in := got.Ins[0]
	if in.N != math.MaxInt32 || in.Rows != math.MaxInt32 || in.RowLen != math.MaxInt32 || in.Pitch != math.MaxInt32 {
		t.Fatalf("boundary in fields corrupted: %+v", in)
	}
	if got.Outs[0].N != -1 {
		t.Fatalf("kernel-determined out length: got %d, want -1", got.Outs[0].N)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ty uint16, key uint64, hint int32, base uint32, n uint16, shared bool) bool {
		task := &core.Task{
			Type: int(ty), Key: key, WorkHint: int64(hint),
			Ins: []core.InArg{{Kind: core.ArgDRAMLinear, Base: mem.Addr(base),
				N: int(n), Shared: shared}},
			Outs: []core.OutArg{{Kind: core.OutDRAMLinear, Base: mem.Addr(base) + 8, N: int(n)}},
		}
		buf, err := EncodeTask(task)
		if err != nil {
			return false
		}
		got, err := DecodeTask(buf)
		if err != nil {
			return false
		}
		return got.Type == task.Type && got.Key == key && got.WorkHint == int64(hint) &&
			got.Ins[0].Base == mem.Addr(base) && got.Ins[0].N == int(n) &&
			got.Ins[0].Shared == shared
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationFuzz(t *testing.T) {
	// Decoding any prefix of a valid descriptor must error, never panic.
	buf, _ := EncodeTask(sampleTask())
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeTask(buf[:cut]); err == nil {
			t.Fatalf("prefix of %d bytes decoded successfully", cut)
		}
	}
}
