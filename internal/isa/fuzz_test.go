package isa_test

import (
	"math"
	"reflect"
	"testing"

	"taskstream/internal/core"
	"taskstream/internal/isa"
	"taskstream/internal/workload"
)

// seedTasks returns a diverse set of real encoded descriptors: SpMV
// exercises gathers, scratchpad reads, and work hints; mergesort
// exercises forward tags on both ports and kernel-determined (-1)
// output lengths.
func seedTasks(f *testing.F) [][]byte {
	var seeds [][]byte
	add := func(w *workload.Workload, limit int) {
		for i, t := range w.Prog.Tasks {
			if i >= limit {
				break
			}
			buf, err := isa.EncodeTask(&w.Prog.Tasks[i])
			if err != nil {
				f.Fatalf("encoding seed task %d (%v): %v", i, t.Key, err)
			}
			seeds = append(seeds, buf)
		}
	}
	add(workload.SpMV(workload.SpMVParams{Rows: 64, Cols: 64, Alpha: 1.5,
		MinRow: 1, MaxRow: 16, RowsPerTask: 8, Clustered: true, Seed: 1}), 8)
	add(workload.MergeSort(workload.SortParams{N: 256, Leaves: 4, Seed: 5}), 8)
	// Boundary descriptor: shape fields at the 32-bit wire-slot extremes
	// (MaxInt32 shapes, −1 kernel-determined output length) — the edge
	// the encode-truncation guard protects.
	boundary := &core.Task{
		Key: 0xB0DA, WorkHint: 1,
		Ins: []core.InArg{{Kind: core.ArgDRAMAffine, Base: 0x100,
			N: math.MaxInt32, Rows: math.MaxInt32, RowLen: math.MaxInt32, Pitch: math.MaxInt32}},
		Outs: []core.OutArg{{Kind: core.OutForward, Base: 0x200, Tag: 7, N: -1}},
	}
	buf, err := isa.EncodeTask(boundary)
	if err != nil {
		f.Fatalf("encoding boundary seed: %v", err)
	}
	seeds = append(seeds, buf)
	return seeds
}

// FuzzDecodeTask checks that DecodeTask never lets its internal
// panic/recover short path escape, and that any descriptor it accepts
// is semantically stable: re-encoding the decoded task and decoding
// again yields the identical task. (Byte-level identity is not
// guaranteed — decode ignores padding bytes that encode zeroes.)
func FuzzDecodeTask(f *testing.F) {
	for _, buf := range seedTasks(f) {
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x53, 0x4b, 0x31}) // magic only, truncated header
	f.Fuzz(func(t *testing.T, data []byte) {
		task, err := isa.DecodeTask(data)
		if err != nil {
			return
		}
		buf, err := isa.EncodeTask(task)
		if err != nil {
			// Every field DecodeTask can produce fits the descriptor
			// limits (counts are single bytes, type/phase two), so an
			// accepted descriptor must re-encode.
			t.Fatalf("decoded task does not re-encode: %v", err)
		}
		again, err := isa.DecodeTask(buf)
		if err != nil {
			t.Fatalf("re-encoded descriptor does not decode: %v", err)
		}
		if !reflect.DeepEqual(task, again) {
			t.Fatalf("descriptor not semantically stable:\nfirst:  %+v\nsecond: %+v", task, again)
		}
	})
}
