// Package isa defines the binary task-descriptor encoding — the wire
// format in which the host enqueues TaskStream work and in which lanes
// spawn child tasks. The paper's point that "tasks and their
// communication structure are first-class primitives in the hardware"
// is concretely this: every annotation the coordinator acts on (work
// hint, forward tags, shared-read marks) has dedicated descriptor bits.
package isa

import (
	"encoding/binary"
	"fmt"
	"math"

	"taskstream/internal/core"
	"taskstream/internal/mem"
)

// Magic identifies an encoded task descriptor.
const Magic = 0x314b5354 // "TSK1"

// maxCounts bound descriptor fields so a corrupt header cannot force a
// huge allocation during decode.
const (
	maxScalars = 255
	maxPorts   = 255
)

// check32 rejects a count/shape field that would not survive its
// 4-byte wire slot. Descriptor fields are interpreted as signed 32-bit
// ints on decode (−1 marks kernel-determined output lengths), so any
// int outside [MinInt32, MaxInt32] would silently truncate and corrupt
// the roundtrip instead of erroring.
func check32(port string, pi int, field string, v int) error {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return fmt.Errorf("isa: %s port %d: %s=%d overflows the 32-bit descriptor field", port, pi, field, v)
	}
	return nil
}

// EncodeTask serializes a task descriptor.
func EncodeTask(t *core.Task) ([]byte, error) {
	if len(t.Scalars) > maxScalars || len(t.Ins) > maxPorts || len(t.Outs) > maxPorts {
		return nil, fmt.Errorf("isa: task exceeds descriptor field limits")
	}
	if t.Type < 0 || t.Type > 0xFFFF || t.Phase < 0 || t.Phase > 0xFFFF {
		return nil, fmt.Errorf("isa: type/phase out of u16 range")
	}
	for pi, in := range t.Ins {
		for _, f := range []struct {
			name string
			v    int
		}{{"N", in.N}, {"Rows", in.Rows}, {"RowLen", in.RowLen}, {"Pitch", in.Pitch}} {
			if err := check32("in", pi, f.name, f.v); err != nil {
				return nil, err
			}
		}
	}
	for pi, o := range t.Outs {
		if err := check32("out", pi, "N", o.N); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 0, 64+len(t.Scalars)*8+len(t.Ins)*48+len(t.Outs)*24)
	p := func(v uint64, n int) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	p(Magic, 4)
	p(uint64(t.Type), 2)
	p(uint64(t.Phase), 2)
	p(t.Key, 8)
	p(uint64(t.WorkHint), 8)
	p(uint64(len(t.Scalars)), 1)
	p(uint64(len(t.Ins)), 1)
	p(uint64(len(t.Outs)), 1)
	p(0, 1)
	for _, s := range t.Scalars {
		p(s, 8)
	}
	for _, in := range t.Ins {
		flags := uint64(0)
		if in.Shared {
			flags = 1
		}
		p(uint64(in.Kind), 1)
		p(flags, 1)
		p(0, 2)
		p(uint64(uint32(in.N)), 4)
		p(uint64(in.Base), 8)
		p(uint64(in.IdxBase), 8)
		if in.Kind == core.ArgConst {
			p(in.Value, 8)
		} else {
			p(in.Tag, 8)
		}
		p(uint64(uint32(in.Rows)), 4)
		p(uint64(uint32(in.RowLen)), 4)
		p(uint64(uint32(in.Pitch)), 4)
		p(0, 4)
	}
	for _, o := range t.Outs {
		p(uint64(o.Kind), 1)
		p(0, 3)
		p(uint64(uint32(o.N)), 4)
		p(uint64(o.Base), 8)
		p(o.Tag, 8)
	}
	return buf, nil
}

// DecodeTask parses an encoded descriptor.
func DecodeTask(buf []byte) (*core.Task, error) {
	off := 0
	g := func(n int) (uint64, error) {
		if off+n > len(buf) {
			return 0, fmt.Errorf("isa: truncated descriptor at byte %d", off)
		}
		var tmp [8]byte
		copy(tmp[:], buf[off:off+n])
		off += n
		return binary.LittleEndian.Uint64(tmp[:]), nil
	}
	must := func(n int) uint64 {
		v, err := g(n)
		if err != nil {
			panic(err)
		}
		return v
	}
	// Header is validated with explicit errors; the rest uses a
	// recover-based short path to keep the parser readable.
	magic, err := g(4)
	if err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, fmt.Errorf("isa: bad magic %#x", magic)
	}
	var t core.Task
	var perr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(error); ok {
					perr = e
					return
				}
				panic(r)
			}
		}()
		t.Type = int(must(2))
		t.Phase = int(must(2))
		t.Key = must(8)
		t.WorkHint = int64(must(8))
		ns := int(must(1))
		ni := int(must(1))
		no := int(must(1))
		must(1)
		for i := 0; i < ns; i++ {
			t.Scalars = append(t.Scalars, must(8))
		}
		for i := 0; i < ni; i++ {
			var in core.InArg
			in.Kind = core.ArgKind(must(1))
			in.Shared = must(1)&1 == 1
			must(2)
			in.N = int(int32(must(4)))
			in.Base = mem.Addr(must(8))
			in.IdxBase = mem.Addr(must(8))
			vt := must(8)
			if in.Kind == core.ArgConst {
				in.Value = vt
			} else {
				in.Tag = vt
			}
			in.Rows = int(int32(must(4)))
			in.RowLen = int(int32(must(4)))
			in.Pitch = int(int32(must(4)))
			must(4)
			t.Ins = append(t.Ins, in)
		}
		for i := 0; i < no; i++ {
			var o core.OutArg
			o.Kind = core.OutKind(must(1))
			must(3)
			o.N = int(int32(must(4)))
			o.Base = mem.Addr(must(8))
			o.Tag = must(8)
			t.Outs = append(t.Outs, o)
		}
		if off != len(buf) {
			perr = fmt.Errorf("isa: %d trailing bytes", len(buf)-off)
		}
	}()
	if perr != nil {
		return nil, perr
	}
	return &t, nil
}
