package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetOrderAndValues(t *testing.T) {
	s := NewSet()
	s.Add("b", 2)
	s.Add("a", 1)
	s.Add("b", 3)
	if got := s.Get("b"); got != 5 {
		t.Fatalf("b = %d, want 5", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names = %v, want [b a] (first-use order)", names)
	}
	s.SetVal("a", 100)
	if s.Get("a") != 100 {
		t.Fatalf("a = %d, want 100", s.Get("a"))
	}
}

func TestSetMerge(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merge: x=%d y=%d, want 3 3", a.Get("x"), a.Get("y"))
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{4, 1, 9, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 18 {
		t.Fatalf("count=%d sum=%d, want 4 18", h.Count(), h.Sum())
	}
	if h.Mean() != 4.5 {
		t.Fatalf("mean = %v, want 4.5", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 9 {
		t.Fatalf("min/max = %d/%d, want 1/9", h.Min(), h.Max())
	}
	// population stddev of {4,1,9,4}: mean 4.5, squared devs .25+12.25+20.25+.25=33 → sqrt(8.25)
	want := math.Sqrt(8.25)
	if math.Abs(h.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", h.Stddev(), want)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	cases := []struct {
		p    float64
		want int64
	}{{0, 1}, {1, 1}, {50, 50}, {99, 99}, {100, 100}}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %d, want %d", c.p, got, c.want)
		}
	}
	// Observing after a percentile query must still work (re-sort).
	h.Observe(1000)
	if got := h.Percentile(100); got != 1000 {
		t.Fatalf("P100 after new observation = %d, want 1000", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Stddev() != 0 || h.CV() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should return zeros everywhere")
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]int64{10, 10, 10, 10}); got != 1.0 {
		t.Fatalf("balanced imbalance = %v, want 1.0", got)
	}
	if got := Imbalance([]int64{40, 0, 0, 0}); got != 4.0 {
		t.Fatalf("worst-case imbalance = %v, want 4.0", got)
	}
	if got := Imbalance(nil); got != 0 {
		t.Fatalf("nil imbalance = %v, want 0", got)
	}
	if got := Imbalance([]int64{0, 0}); got != 0 {
		t.Fatalf("all-zero imbalance = %v, want 0", got)
	}
}

func TestImbalanceProperty(t *testing.T) {
	// Property: imbalance is always ≥ 1 for nonzero work and ≤ worker count.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]int64, len(raw))
		var sum int64
		for i, v := range raw {
			w[i] = int64(v)
			sum += int64(v)
		}
		im := Imbalance(w)
		if sum == 0 {
			return im == 0
		}
		return im >= 1.0-1e-9 && im <= float64(len(w))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeomean(t *testing.T) {
	if got, skipped := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 || skipped != 0 {
		t.Fatalf("geomean(2,8) = %v (skipped %d), want 4 (skipped 0)", got, skipped)
	}
	if got, skipped := Geomean([]float64{3, 3, 3}); math.Abs(got-3) > 1e-12 || skipped != 0 {
		t.Fatalf("geomean(3,3,3) = %v (skipped %d), want 3 (skipped 0)", got, skipped)
	}
	if got, skipped := Geomean(nil); got != 0 || skipped != 0 {
		t.Fatalf("geomean(nil) = %v (skipped %d), want 0 (skipped 0)", got, skipped)
	}
}

func TestGeomeanReportsSkipped(t *testing.T) {
	// Non-positive values cannot silently inflate the mean: they are
	// excluded from the product AND reported, so callers can fail loudly.
	got, skipped := Geomean([]float64{0, -1, 4})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("geomean with junk = %v, want 4", got)
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if got, skipped := Geomean([]float64{0, -3}); got != 0 || skipped != 2 {
		t.Fatalf("all-junk geomean = %v (skipped %d), want 0 (skipped 2)", got, skipped)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != 2.0 {
		t.Fatalf("speedup = %v, want 2.0", got)
	}
	if got := Speedup(200, 0); got != 0 {
		t.Fatalf("speedup w/ zero denominator = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "workload", "cycles", "speedup")
	tb.AddRow("spmv", "1234", "2.10x")
	tb.AddRow("bfs", "99", "3.00x")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// All data lines align: same column start for "cycles" numbers.
	if !strings.Contains(lines[1], "workload") || !strings.Contains(lines[3], "spmv") {
		t.Fatalf("unexpected layout:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestTableRowTooLongRejected(t *testing.T) {
	tb := NewTable("x", "a")
	if err := tb.AddRow("1", "2"); err == nil {
		t.Fatal("want error for oversized row")
	}
	if tb.NumRows() != 0 {
		t.Fatalf("rejected row was appended: NumRows = %d", tb.NumRows())
	}
	if err := tb.AddRow("1"); err != nil {
		t.Fatalf("exact-width row rejected: %v", err)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.234) != "1.23" || Fx(2.5) != "2.50x" || I(7) != "7" || Pct(0.125) != "12.5%" {
		t.Fatal("formatter output changed")
	}
	cases := []struct {
		v    int64
		want string
	}{{512, "512B"}, {2048, "2.00KiB"}, {3 << 20, "3.00MiB"}, {5 << 30, "5.00GiB"}}
	for _, c := range cases {
		if got := Bytes(c.v); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSetClone(t *testing.T) {
	s := NewSet()
	s.Add("a", 1)
	s.Add("b", 2)
	c := s.Clone()
	c.Add("a", 10)
	c.Add("z", 1)
	if s.Get("a") != 1 || s.Get("z") != 0 {
		t.Errorf("clone aliases the original: a=%d z=%d", s.Get("a"), s.Get("z"))
	}
	if got, want := strings.Join(c.Names(), ","), "a,b,z"; got != want {
		t.Errorf("clone order %q, want %q", got, want)
	}
	if s.String() == c.String() {
		t.Error("mutated clone renders identically to the original")
	}
	var nilSet *Set
	if nilSet.Clone() != nil {
		t.Error("nil set should clone to nil")
	}
}
