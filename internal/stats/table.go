package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for experiment output. Cells
// are strings; callers format numbers with the helpers below so that
// every experiment table in the repository reads the same way.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row. Short rows are padded with empty cells; a row
// longer than the header is rejected (and not appended), since it would
// silently drop data — callers assembling rows dynamically should check
// the error, statically shaped call sites may ignore it.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) > len(t.header) {
		return fmt.Errorf("stats: row has %d cells, table %q has %d columns", len(cells), t.title, len(t.header))
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with a title line, a header, a rule, and
// aligned columns (left-aligned first column, right-aligned the rest —
// the first column is a label and the rest are nearly always numeric).
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float with two decimals, the standard numeric cell format.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// Fx formats a ratio as "N.NNx".
func Fx(v float64) string { return fmt.Sprintf("%.2fx", v) }

// I formats an integer cell.
func I(v int64) string { return fmt.Sprintf("%d", v) }

// Pct formats a fraction (0..1) as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Bytes formats a byte count with a binary-unit suffix.
func Bytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}
