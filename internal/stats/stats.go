// Package stats collects and reports simulation statistics: named
// counters, value histograms, load-imbalance metrics, and the aligned
// text tables used by the experiment harness.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Set is an ordered collection of named int64 counters. Order of first
// Add/Set determines report order, keeping output deterministic.
type Set struct {
	names []string
	vals  map[string]int64
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{vals: make(map[string]int64)} }

// Add increments counter name by delta, creating it at zero first.
func (s *Set) Add(name string, delta int64) {
	if _, ok := s.vals[name]; !ok {
		s.names = append(s.names, name)
	}
	s.vals[name] += delta
}

// SetVal sets counter name to v, creating it if needed.
func (s *Set) SetVal(name string, v int64) {
	if _, ok := s.vals[name]; !ok {
		s.names = append(s.names, name)
	}
	s.vals[name] = v
}

// Get returns the value of counter name (zero if absent).
func (s *Set) Get(name string) int64 { return s.vals[name] }

// Names returns the counter names in first-use order.
func (s *Set) Names() []string { return append([]string(nil), s.names...) }

// Clone returns a deep copy of the set: same counters in the same
// first-use order, fully independent storage. A nil receiver clones to
// nil, so cached reports without stats copy out safely.
func (s *Set) Clone() *Set {
	if s == nil {
		return nil
	}
	c := &Set{
		names: append([]string(nil), s.names...),
		vals:  make(map[string]int64, len(s.vals)),
	}
	for k, v := range s.vals {
		c.vals[k] = v
	}
	return c
}

// setEntry is one counter in the Set's JSON form.
type setEntry struct {
	N string `json:"n"`
	V int64  `json:"v"`
}

// MarshalJSON encodes the set as an array of {n, v} pairs in
// first-use order — no map is ranged, so equal sets always encode to
// identical bytes. That determinism is what lets the content-addressed
// run store (internal/store) integrity-check a report by re-hashing
// its serialized form.
func (s *Set) MarshalJSON() ([]byte, error) {
	entries := make([]setEntry, len(s.names))
	for i, n := range s.names {
		entries[i] = setEntry{N: n, V: s.vals[n]}
	}
	return json.Marshal(entries)
}

// UnmarshalJSON rebuilds the set from its pair-array form, restoring
// the original counter order.
func (s *Set) UnmarshalJSON(b []byte) error {
	var entries []setEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		return err
	}
	s.names = s.names[:0]
	s.vals = make(map[string]int64, len(entries))
	for _, e := range entries {
		if _, dup := s.vals[e.N]; dup {
			return fmt.Errorf("stats: duplicate counter %q in encoded set", e.N)
		}
		s.names = append(s.names, e.N)
		s.vals[e.N] = e.V
	}
	return nil
}

// Merge adds every counter of other into s.
func (s *Set) Merge(other *Set) {
	for _, n := range other.names {
		s.Add(n, other.vals[n])
	}
}

// String renders the set as "name=value" pairs, one per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.names {
		fmt.Fprintf(&b, "%s=%d\n", n, s.vals[n])
	}
	return b.String()
}

// Histogram accumulates int64 samples and reports distribution
// statistics. It stores raw samples; simulation histograms here hold at
// most a few million entries.
type Histogram struct {
	samples []int64
	sorted  bool
	sum     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sample total.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return float64(h.sum) / float64(len(h.samples))
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 {
	var m int64
	for i, v := range h.samples {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 {
	var m int64
	for i, v := range h.samples {
		if i == 0 || v < m {
			m = v
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// CV returns the coefficient of variation (stddev/mean), the task-size
// skew measure used in workload characterization; 0 when mean is 0.
func (h *Histogram) CV() float64 {
	m := h.Mean()
	if m == 0 {
		return 0
	}
	return h.Stddev() / m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank; 0 when empty.
func (h *Histogram) Percentile(p float64) int64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return h.samples[rank-1]
}

// Imbalance quantifies load imbalance over per-worker totals as
// max/mean. Perfectly balanced work yields 1.0. Returns 0 for empty or
// all-zero input.
func Imbalance(perWorker []int64) float64 {
	if len(perWorker) == 0 {
		return 0
	}
	var sum, max int64
	for _, v := range perWorker {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(perWorker))
	return float64(max) / mean
}

// Geomean returns the geometric mean of the positive values together
// with the number of values it had to skip because they were ≤ 0 (a
// geometric mean is undefined there). Callers must check skipped — a
// degenerate input would otherwise silently inflate the mean, which is
// exactly how a collapsed per-workload speedup could hide in a
// headline number. Returns (0, skipped) when no positive values exist.
func Geomean(vals []float64) (g float64, skipped int) {
	var logs float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			logs += math.Log(v)
			n++
		} else {
			skipped++
		}
	}
	if n == 0 {
		return 0, skipped
	}
	return math.Exp(logs / float64(n)), skipped
}

// Speedup returns base/new as a ratio, guarding against a zero
// denominator.
func Speedup(baseCycles, newCycles int64) float64 {
	if newCycles == 0 {
		return 0
	}
	return float64(baseCycles) / float64(newCycles)
}
