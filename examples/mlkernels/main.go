// ML kernels on Delta: tiled GEMM and k-means, where the win comes
// from recovering inter-task *read sharing* — every tile task re-reads
// the same A/B blocks, every assignment task the same centroid table.
// The coordinator coalesces those reads into single fetches that the
// NoC multicasts.
//
//	go run ./examples/mlkernels
package main

import (
	"fmt"
	"log"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/workload"
)

func main() {
	fmt.Println("ML kernels: read sharing recovered by multicast")
	fmt.Println()

	fmt.Println("GEMM (128x128, 32x32 tiles): A row-blocks and B column-blocks shared")
	fmt.Println("variant   cycles   DRAM-read-lines   NoC-flit-cycles")
	for _, v := range []baseline.Variant{baseline.Static, baseline.LB, baseline.Delta} {
		w := workload.GEMM(workload.DefaultGEMM())
		rep := mustRun(w, v)
		fmt.Printf("%-7v  %7d  %16d  %15d\n", v, rep.Cycles,
			rep.Stats.Get("dram_lines_read"), rep.Stats.Get("noc_flit_cycles"))
	}

	fmt.Println()
	fmt.Println("k-means (16k points, K=128, d=8): centroid table shared by every task")
	fmt.Println("variant   cycles   mcast-joins   lines-saved")
	for _, v := range []baseline.Variant{baseline.Static, baseline.LB, baseline.Delta} {
		w := workload.KMeans(workload.DefaultKMeans())
		rep := mustRun(w, v)
		fmt.Printf("%-7v  %7d  %11d  %11d\n", v, rep.Cycles,
			rep.Stats.Get("mcast_joins"), rep.Stats.Get("mcast_lines_saved"))
	}

	fmt.Println()
	fmt.Println("Reading: with multicast on (delta), the same machine moves a")
	fmt.Println("fraction of the DRAM lines — bandwidth headroom that the task")
	fmt.Println("prefetcher then converts into cycles.")
}

func mustRun(w *workload.Workload, v baseline.Variant) core.Report {
	rep, err := baseline.Run(v, config.Default8(), w.Prog, w.Storage)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		log.Fatalf("%s/%v: %v", w.Name, v, err)
	}
	return rep
}
