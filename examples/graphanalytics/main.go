// Graph analytics on Delta: run BFS and triangle counting over R-MAT
// graphs of growing scale and show how the TaskStream mechanisms hold
// up as degree skew grows — the workload class the paper's introduction
// motivates.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/stats"
	"taskstream/internal/workload"
)

func main() {
	fmt.Println("graph analytics: BFS and triangle counting on R-MAT graphs")
	fmt.Println()

	fmt.Println("BFS, level-synchronous, task-per-frontier-vertex (spawned):")
	fmt.Println("scale  vertices   static-cyc    delta-cyc  speedup  imbalance(static→delta)")
	for _, scale := range []int{10, 11, 12} {
		p := workload.BFSParams{Scale: scale, AvgDeg: 8, Seed: 2}
		sRep := mustRun(func() *workload.Workload { return workload.BFS(p) }, baseline.Static)
		dRep := mustRun(func() *workload.Workload { return workload.BFS(p) }, baseline.Delta)
		fmt.Printf("%5d  %8d  %11d  %11d  %6.2fx  %.2f → %.2f\n",
			scale, 1<<scale, sRep.cycles, dRep.cycles,
			float64(sRep.cycles)/float64(dRep.cycles), sRep.imb, dRep.imb)
	}

	fmt.Println()
	fmt.Println("Triangle counting, task-per-vertex (quadratic skew):")
	fmt.Println("scale  vertices   static-cyc    delta-cyc  speedup  imbalance(static→delta)")
	for _, scale := range []int{8, 9, 10} {
		p := workload.TriParams{Scale: scale, AvgDeg: 10, Seed: 4}
		sRep := mustRun(func() *workload.Workload { return workload.Tri(p) }, baseline.Static)
		dRep := mustRun(func() *workload.Workload { return workload.Tri(p) }, baseline.Delta)
		fmt.Printf("%5d  %8d  %11d  %11d  %6.2fx  %.2f → %.2f\n",
			scale, 1<<scale, sRep.cycles, dRep.cycles,
			float64(sRep.cycles)/float64(dRep.cycles), sRep.imb, dRep.imb)
	}

	fmt.Println()
	fmt.Println("Reading: the static design's imbalance grows with skew while")
	fmt.Println("work-aware dispatch holds max/mean busy near 1.0 — recovering")
	fmt.Println("the structure the task decomposition destroyed.")
}

type runOut struct {
	cycles int64
	imb    float64
}

func mustRun(build func() *workload.Workload, v baseline.Variant) runOut {
	w := build()
	rep, err := baseline.Run(v, config.Default8(), w.Prog, w.Storage)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		log.Fatalf("%s/%v: %v", w.Name, v, err)
	}
	return runOut{cycles: rep.Cycles, imb: stats.Imbalance(rep.LaneBusy)}
}
