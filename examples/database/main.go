// Database operators on Delta: a partitioned hash join whose build
// tables are *forwarded* to probe tasks over the NoC (pipelined
// inter-task dependence), swept across key skew. With forwarding off,
// every table round-trips through DRAM behind a phase barrier.
//
//	go run ./examples/database
package main

import (
	"fmt"
	"log"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/workload"
)

func main() {
	fmt.Println("partitioned hash join: build → probe pipelining under key skew")
	fmt.Println()
	fmt.Println("zipf-s  static-cyc  +lb+mc-cyc  delta-cyc  fwd-pairs  dram(delta/static)")
	for _, s := range []float64{0.0, 0.5, 0.9, 1.1} {
		p := workload.JoinParams{NR: 24576, NS: 24576, Partitions: 48,
			ZipfS: s, Universe: 1 << 16, Seed: 3}
		st := result(p, baseline.Static)
		lm := result(p, baseline.LBMC)
		dl := result(p, baseline.Delta)
		fmt.Printf("%6.1f  %10d  %10d  %9d  %9d  %17.1f%%\n",
			s, st.cycles, lm.cycles, dl.cycles, dl.fwdPairs,
			100*float64(dl.dramBytes)/float64(st.dramBytes))
	}
	fmt.Println()
	fmt.Println("Reading: forwarding (delta vs +lb+mc) removes the build-table")
	fmt.Println("round trip and overlaps the two phases; higher skew widens the")
	fmt.Println("static design's barrier penalty, which load balancing absorbs.")
}

type out struct {
	cycles    int64
	fwdPairs  int64
	dramBytes int64
}

func result(p workload.JoinParams, v baseline.Variant) out {
	w := workload.Join(p)
	rep, err := baseline.Run(v, config.Default8(), w.Prog, w.Storage)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		log.Fatalf("join/%v: %v", v, err)
	}
	return out{
		cycles:    rep.Cycles,
		fwdPairs:  rep.Stats.Get("fwd_pairs"),
		dramBytes: rep.Stats.Get("dram_bytes"),
	}
}
