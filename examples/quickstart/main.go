// Quickstart: build a task-parallel program against the TaskStream API
// from scratch — define a task type (dataflow graph + kernel), create
// annotated task instances, and run them on Delta and on the
// static-parallel baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/fabric"
	"taskstream/internal/mem"
)

func main() {
	// A task type: y[i] = a*x[i] + b, as a dataflow graph for the lane
	// fabric plus a kernel giving its functional semantics.
	b := fabric.NewBuilder("axpb", 3, 1)
	mul := b.Add(fabric.OpMul, fabric.InPort(0), fabric.InPort(1))
	add := b.Add(fabric.OpAdd, mul, fabric.InPort(2))
	b.Out(0, add)
	axpb := &core.TaskType{
		Name: "axpb",
		DFG:  b.MustBuild(),
		Kernel: func(t *core.Task, in [][]uint64, st *mem.Storage) core.Result {
			a, c := t.Scalars[0], t.Scalars[1]
			out := make([]uint64, len(in[0]))
			for i, x := range in[0] {
				out[i] = a*x + c
			}
			return core.Result{Out: [][]uint64{out}}
		},
	}

	// Data: 64 chunks with clustered skew — the first 8 chunks are 16x
	// the rest, like the degree-ordered layouts real sparse data ships
	// in. Contiguous static partitioning piles all of them onto one
	// lane; work-aware dispatch spreads them.
	st := mem.NewStorage()
	al := mem.NewAllocator()
	sizes := make([]int, 64)
	for i := range sizes {
		if i < 8 {
			sizes[i] = 2048
		} else {
			sizes[i] = 128
		}
	}
	var tasks []core.Task
	total := 0
	for i, n := range sizes {
		src := al.AllocElems(n)
		dst := al.AllocElems(n)
		vals := make([]uint64, n)
		for j := range vals {
			vals[j] = uint64(j)
		}
		st.WriteElems(src, vals)
		tasks = append(tasks, core.Task{
			Type:    0,
			Key:     uint64(i),
			Scalars: []uint64{3, 7},
			Ins: []core.InArg{
				{Kind: core.ArgDRAMLinear, Base: src, N: n},
				{Kind: core.ArgConst, Value: 3},
				{Kind: core.ArgConst, Value: 7},
			},
			Outs: []core.OutArg{{Kind: core.OutDRAMLinear, Base: dst, N: n}},
			// The TaskStream annotation that enables work-aware
			// balancing: this task's estimated work.
			WorkHint: int64(n),
		})
		total += n
	}
	prog := &core.Program{Name: "axpb", Types: []*core.TaskType{axpb},
		NumPhases: 1, Tasks: tasks}

	fmt.Printf("quickstart: %d tasks, %d total elements, sizes %d..%d\n",
		len(tasks), total, minInt(sizes), maxInt(sizes))

	// Run the same program under both execution models. Each run needs
	// fresh storage (results are written into it) — rebuild.
	var cycles [2]int64
	for i, v := range []baseline.Variant{baseline.Static, baseline.Delta} {
		runSt := mem.NewStorage()
		for j, task := range tasks {
			n := sizes[j]
			vals := make([]uint64, n)
			for k := range vals {
				vals[k] = uint64(k)
			}
			runSt.WriteElems(task.Ins[0].Base, vals)
		}
		rep, err := baseline.Run(v, config.Default8(), prog, runSt)
		if err != nil {
			log.Fatal(err)
		}
		// Check a few results: dst[j] = 3*j + 7.
		for j := 0; j < 5; j++ {
			got := runSt.Read8(tasks[0].Outs[0].Base + mem.Addr(j*8))
			if got != uint64(3*j+7) {
				log.Fatalf("wrong result: dst[%d] = %d", j, got)
			}
		}
		cycles[i] = rep.Cycles
		fmt.Printf("  %-7v %8d cycles\n", v, rep.Cycles)
	}
	fmt.Printf("TaskStream speedup on skewed tasks: %.2fx\n",
		float64(cycles[0])/float64(cycles[1]))
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
