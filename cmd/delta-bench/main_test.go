package main

import (
	"strings"
	"testing"
)

// TestSelectExperiments pins -only resolution. The regression case:
// once every requested id has matched, the want set goes empty — that
// must NOT flip the filter into select-everything mode for the rest of
// the registry (E1,E10 used to drag in E11–E14).
func TestSelectExperiments(t *testing.T) {
	ids := func(only string) string {
		sel, unknown := selectExperiments(only)
		if len(unknown) > 0 {
			t.Fatalf("selectExperiments(%q): unexpected unknown ids %v", only, unknown)
		}
		var got []string
		for _, e := range sel {
			got = append(got, e.ID)
		}
		return strings.Join(got, ",")
	}

	if got := ids("E1,E10"); got != "E1,E10" {
		t.Errorf("-only E1,E10 selected %s", got)
	}
	if got := ids("E10,e1"); got != "E1,E10" { // registry order, case-insensitive
		t.Errorf("-only E10,e1 selected %s", got)
	}
	if got := ids(" E3 , ,E3 "); got != "E3" { // whitespace + duplicates
		t.Errorf("-only ' E3 , ,E3 ' selected %s", got)
	}
	if got := ids(""); !strings.HasPrefix(got, "E1,E2,") || !strings.HasSuffix(got, ",E14") {
		t.Errorf("empty -only selected %s", got)
	}

	if _, unknown := selectExperiments("E3,E99,bogus"); strings.Join(unknown, ",") != "BOGUS,E99" {
		t.Errorf("unknown ids = %v, want [BOGUS E99]", unknown)
	}
}
