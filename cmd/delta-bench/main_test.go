package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taskstream/internal/experiments"
)

// TestSelectExperiments pins -only resolution. The regression case:
// once every requested id has matched, the want set goes empty — that
// must NOT flip the filter into select-everything mode for the rest of
// the registry (E1,E10 used to drag in E11–E14).
func TestSelectExperiments(t *testing.T) {
	ids := func(only string) string {
		sel, unknown := selectExperiments(only)
		if len(unknown) > 0 {
			t.Fatalf("selectExperiments(%q): unexpected unknown ids %v", only, unknown)
		}
		var got []string
		for _, e := range sel {
			got = append(got, e.ID)
		}
		return strings.Join(got, ",")
	}

	if got := ids("E1,E10"); got != "E1,E10" {
		t.Errorf("-only E1,E10 selected %s", got)
	}
	if got := ids("E10,e1"); got != "E1,E10" { // registry order, case-insensitive
		t.Errorf("-only E10,e1 selected %s", got)
	}
	if got := ids(" E3 , ,E3 "); got != "E3" { // whitespace + duplicates
		t.Errorf("-only ' E3 , ,E3 ' selected %s", got)
	}
	if got := ids(""); !strings.HasPrefix(got, "E1,E2,") || !strings.HasSuffix(got, ",E16") {
		t.Errorf("empty -only selected %s", got)
	}

	if _, unknown := selectExperiments("E3,E99,bogus"); strings.Join(unknown, ",") != "BOGUS,E99" {
		t.Errorf("unknown ids = %v, want [BOGUS E99]", unknown)
	}
}

// TestWriteJSON pins the -json dump: one {id, title, metrics} object
// per experiment, in experiment order, round-trippable, and
// byte-deterministic (encoding/json sorts metric keys).
func TestWriteJSON(t *testing.T) {
	results := []experiments.Result{
		{ID: "E1", Title: "First", Metrics: map[string]float64{"b": 2, "a": 1.5}},
		{ID: "E2", Title: "Second", Metrics: map[string]float64{}},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeJSON(path, results); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []jsonResult
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("dump does not parse: %v\n%s", err, raw)
	}
	if len(got) != 2 || got[0].ID != "E1" || got[1].ID != "E2" {
		t.Fatalf("round-trip = %+v", got)
	}
	if got[0].Metrics["a"] != 1.5 || got[0].Metrics["b"] != 2 {
		t.Fatalf("metrics lost: %+v", got[0].Metrics)
	}
	if !strings.HasSuffix(string(raw), "\n") {
		t.Error("dump should end with a newline")
	}
	if a := strings.Index(string(raw), `"a"`); a > strings.Index(string(raw), `"b"`) {
		t.Error("metric keys not sorted")
	}
	// Writing again must be byte-identical — the diffable-trajectory
	// property BENCH_*.json files rely on.
	if err := writeJSON(path, results); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Error("writeJSON is not deterministic")
	}
}
