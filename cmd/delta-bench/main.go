// delta-bench regenerates every table and figure of the evaluation
// (experiments E1–E12 in DESIGN.md) and prints them as aligned text
// tables. Select a subset with -only.
//
// Usage:
//
//	delta-bench            # everything (a few minutes)
//	delta-bench -only E3,E4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"taskstream/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E3,E10)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	fns := []struct {
		id string
		fn func() (experiments.Result, error)
	}{
		{"E1", experiments.E1Characterization},
		{"E2", experiments.E2Configuration},
		{"E3", experiments.E3Speedup},
		{"E4", experiments.E4Ablation},
		{"E5", experiments.E5Imbalance},
		{"E6", experiments.E6Scaling},
		{"E7", experiments.E7Granularity},
		{"E8", experiments.E8Bandwidth},
		{"E9", experiments.E9Traffic},
		{"E10", experiments.E10Area},
		{"E11", experiments.E11Window},
		{"E12", experiments.E12Hints},
		{"E13", experiments.E13QueueDepth},
		{"E14", experiments.E14Energy},
	}
	for _, e := range fns {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		r, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "delta-bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		for _, tb := range r.Tables {
			fmt.Println(tb.String())
		}
		fmt.Printf("[%s done in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}
