// delta-bench regenerates every table and figure of the evaluation
// (experiments E1–E14 in DESIGN.md) and prints them as aligned text
// tables. Select a subset with -only; fan independent simulations out
// across CPUs with -j; write machine-readable per-experiment metrics
// with -json. Tables always appear on stdout in experiment order and
// are byte-identical at any -j and with the run cache on or off
// (timing and cache-counter lines go to stderr), so
// `delta-bench > bench_results.txt` is reproducible however the run
// was parallelized or memoized. Duplicate simulations across
// experiments resolve through the shared run-plan cache
// (internal/runplan, DESIGN.md §12); set TASKSTREAM_NO_RUNCACHE=1 to
// force every spec to execute.
//
// Usage:
//
//	delta-bench            # everything, one simulation per CPU
//	delta-bench -j 1       # strictly serial, today's single-core behavior
//	delta-bench -only E3,E4
//	delta-bench -json bench.json                 # also dump {id,title,metrics}
//	delta-bench -only E6 -cpuprofile cpu.pprof   # profile the hot loop
//	delta-bench -server http://localhost:8177    # resolve runs via delta-serve
//
// With -server, every simulation resolves through a delta-serve
// daemon instead of executing in-process: a warm daemon answers the
// whole suite from its content-addressed store at memory speed, and
// stdout stays byte-identical to a local run (the client-side cache
// tally goes to stderr).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"taskstream/internal/core"
	"taskstream/internal/experiments"
	"taskstream/internal/obs"
	"taskstream/internal/parallel"
	"taskstream/internal/runplan"
	"taskstream/internal/sim"
	"taskstream/internal/store"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E3,E10)")
	jsonPath := flag.String("json", "", "write per-experiment {id, title, metrics} JSON to this file")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	server := flag.String("server", "", "resolve simulations through the delta-serve daemon at this URL")
	shards := flag.Int("shards", 0,
		"intra-simulation shard count for every run (byte-identical output); 0 reads TASKSTREAM_SHARDS; 1 forces serial")
	policy := flag.String("policy", "",
		"dispatch policy for every dynamic-dispatch run ("+strings.Join(core.PolicyNames(), ", ")+"); empty reads TASKSTREAM_POLICY")
	hostprof := flag.Bool("hostprof", false,
		"profile host wall-clock time inside the engines; per-phase and per-shard attribution to stderr (stdout unchanged)")
	scaling := flag.Bool("scaling", false,
		"run the E17 shard-scaling measurement (wall-clock; shards 1,2,4,8) instead of the experiment suite")
	reps := flag.Int("reps", 3, "repetitions per shard point in -scaling mode (best-of)")
	flag.Parse()
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "delta-bench: -j must be >= 1 (got %d)\n", *jobs)
		os.Exit(1)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "delta-bench: -shards must be >= 0 (got %d)\n", *shards)
		os.Exit(1)
	}
	if *policy != "" {
		if _, err := core.ParsePolicy(*policy); err != nil {
			fmt.Fprintf(os.Stderr, "delta-bench: %v\n", err)
			os.Exit(2)
		}
	}
	if *shards > 0 {
		// The experiment definitions build their own core.Options, so
		// the shard count rides the environment default every machine
		// constructor consults (core.resolveShards).
		os.Setenv("TASKSTREAM_SHARDS", fmt.Sprint(*shards))
	}
	if *policy != "" {
		// Same route as -shards: the run-time-dispatch baseline variants
		// resolve their scheduler via core.AmbientPolicy, so the flag
		// rides the environment. Unlike shards, the policy lands in every
		// cache key (distinct policies never share entries). E16 pins its
		// own policies explicitly and is unaffected.
		os.Setenv("TASKSTREAM_POLICY", *policy)
	}
	experiments.SetWorkers(*jobs)
	if *hostprof {
		sim.SetHostProf(true)
	}

	if *scaling {
		// E17 rides its own mode: wall-clock tables must never mix into
		// the byte-identical suite stdout (see internal/experiments/scaling.go).
		r, err := experiments.RunShardScaling(nil, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "delta-bench: -scaling: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(r.Render())
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, []experiments.Result{r}); err != nil {
				fmt.Fprintf(os.Stderr, "delta-bench: -json: %v\n", err)
				os.Exit(1)
			}
		}
		if *hostprof {
			snap := sim.HostProfSnapshot()
			fmt.Fprint(os.Stderr, snap.Report())
		}
		return
	}

	var client *store.Client
	if *server != "" {
		client = store.NewClient(*server)
		if err := client.WaitReady(10 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "delta-bench: -server: %v\n", err)
			os.Exit(1)
		}
		experiments.SetResolver(client.Resolve)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "delta-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "delta-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "delta-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "delta-bench: -memprofile: %v\n", err)
			}
		}()
	}

	sel, unknown := selectExperiments(*only)
	if len(unknown) > 0 {
		for _, id := range unknown {
			fmt.Fprintf(os.Stderr, "delta-bench: unknown experiment id %q\n", id)
		}
		os.Exit(1)
	}

	// Experiments run concurrently when -j allows; the worker budget
	// inside the experiments package bounds simulations in flight.
	// Results print in experiment order regardless.
	expWorkers := 1
	if *jobs > 1 {
		expWorkers = len(sel)
	}
	start := time.Now()
	results, err := parallel.Map(expWorkers, sel, func(_ int, e experiments.Named) (experiments.Result, error) {
		t0 := time.Now()
		r, err := e.Fn()
		if err != nil {
			return experiments.Result{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(t0).Round(time.Millisecond))
		return r, nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "delta-bench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Print(r.Render())
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "delta-bench: -json: %v\n", err)
			os.Exit(1)
		}
	}
	if client != nil {
		fmt.Fprintf(os.Stderr, "[server %s: %s]\n", *server, client.CountsLine())
	} else {
		cacheState := "on"
		if runplan.Shared.Disabled() {
			cacheState = "off"
		}
		fmt.Fprintf(os.Stderr, "[run cache %s: %s]\n", cacheState, runplan.Shared.Counters())
	}
	if !obs.Global.Empty() {
		// Fast-forward cycle accounting (TASKSTREAM_FF_DEBUG), routed
		// through the process-wide observability registry.
		fmt.Fprintf(os.Stderr, "[ffstats: %s]\n", obs.Global.Line())
	}
	if *hostprof {
		// Stderr only: the suite's stdout stays byte-identical with and
		// without profiling (the feedback-free contract, DESIGN.md §18).
		snap := sim.HostProfSnapshot()
		fmt.Fprint(os.Stderr, snap.Report())
	}
	fmt.Fprintf(os.Stderr, "[all done in %v, -j %d]\n", time.Since(start).Round(time.Millisecond), *jobs)
}

// jsonResult is one experiment in the -json dump. Metrics marshal with
// sorted keys (encoding/json's map behavior), so the file is
// deterministic and diffable across runs — the BENCH_*.json perf
// trajectory future PRs compare against.
type jsonResult struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Metrics map[string]float64 `json:"metrics"`
}

// writeJSON dumps every result's headline metrics to path. When the
// process-wide observability registry collected anything (the
// TASKSTREAM_FF_DEBUG fast-forward meters flow through it), it is
// appended as a synthetic "ffstats" entry so the accounting rides the
// same machine-readable surface as the experiments.
func writeJSON(path string, results []experiments.Result) error {
	out := make([]jsonResult, len(results))
	for i, r := range results {
		out[i] = jsonResult{ID: r.ID, Title: r.Title, Metrics: r.Metrics}
	}
	if !obs.Global.Empty() {
		snap := obs.Global.Snapshot()
		m := make(map[string]float64)
		for _, n := range snap.Names() {
			m[n] = float64(snap.Get(n))
		}
		out = append(out, jsonResult{
			ID: "ffstats", Title: "fast-forward cycle accounting", Metrics: m,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// selectExperiments resolves the -only flag (comma-separated ids,
// case-insensitive, empty = everything) against the registry. The
// returned selection preserves E-number order; ids that match no
// experiment come back in unknown, sorted.
func selectExperiments(only string) (sel []experiments.Named, unknown []string) {
	want := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	all := len(want) == 0
	for _, e := range experiments.Registry() {
		if all || want[e.ID] {
			sel = append(sel, e)
			delete(want, e.ID)
		}
	}
	for id := range want {
		unknown = append(unknown, id)
	}
	sort.Strings(unknown)
	return sel, unknown
}
