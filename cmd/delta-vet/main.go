// delta-vet runs the whole-program static verifier over the workload
// suite (or one named workload) and reports every diagnostic. It is the
// pre-flight correctness gate for workload changes: exit status 1 means
// at least one diagnostic fired.
//
// With -infer the tool runs the analysis in reverse: each workload is
// stripped of its annotations (work hints, forward tags, shared-read
// marks), the delta-infer synthesizer re-derives them, and the tool
// prints the synthesized annotation patch plus per-kind
// precision/recall against the hand annotations. Exit status 1 then
// means inference failed somewhere, or an aggregate precision/recall
// fell below a -min-*-pr floor.
//
// Usage:
//
//	delta-vet                     # vet the whole suite
//	delta-vet -workload sort -v   # vet one workload, report when clean
//	delta-vet -ports 8 -hint-skew 4
//	delta-vet -json vet.json      # machine-readable diagnostics
//	delta-vet -infer              # strip → infer → vet + precision/recall
//	delta-vet -infer -min-fwd-pr 0.99 -min-shared-pr 0.99   # CI gate
//	delta-vet -infer -coarsen 4096   # also merge sub-threshold tasks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"taskstream/internal/analysis"
	"taskstream/internal/analysis/infer"
	"taskstream/internal/config"
	"taskstream/internal/workload"
)

func main() {
	name := flag.String("workload", "", "vet a single workload (default: whole suite)")
	verbose := flag.Bool("v", false, "print per-workload status even when clean (with -infer: the full patch)")
	jsonPath := flag.String("json", "", "write machine-readable results to this file")
	ports := flag.Int("ports", config.Default8().Fabric.NumPorts,
		"fabric port count for the port-overflow check (0 disables)")
	hintSkew := flag.Int64("hint-skew", 10, "work-hint divergence factor for the hint-skew check")
	doInfer := flag.Bool("infer", false, "strip annotations, re-infer them, score against hand annotations")
	coarsen := flag.Int64("coarsen", 0, "with -infer: merge adjacent tasks below this work threshold (0 disables)")
	minFwdPR := flag.Float64("min-fwd-pr", 0, "with -infer: fail if aggregate forward precision or recall drops below this floor")
	minSharedPR := flag.Float64("min-shared-pr", 0, "with -infer: fail if aggregate shared precision or recall drops below this floor")
	flag.Parse()

	switch {
	case *ports < 0:
		usage("-ports must be >= 0 (got %d)", *ports)
	case *hintSkew <= 0:
		usage("-hint-skew must be > 0 (got %d)", *hintSkew)
	case *coarsen < 0:
		usage("-coarsen must be >= 0 (got %d)", *coarsen)
	case *coarsen > 0 && !*doInfer:
		usage("-coarsen requires -infer")
	case *minFwdPR < 0 || *minFwdPR > 1:
		usage("-min-fwd-pr must be in [0, 1] (got %g)", *minFwdPR)
	case *minSharedPR < 0 || *minSharedPR > 1:
		usage("-min-shared-pr must be in [0, 1] (got %g)", *minSharedPR)
	case (*minFwdPR > 0 || *minSharedPR > 0) && !*doInfer:
		usage("-min-fwd-pr/-min-shared-pr require -infer")
	case (*minFwdPR > 0 || *minSharedPR > 0) && *coarsen > 0:
		usage("precision/recall floors cannot be combined with -coarsen (merged task lists have no hand reference)")
	case flag.NArg() > 0:
		usage("unexpected argument %q", flag.Arg(0))
	}

	builders := workload.Suite()
	if *name != "" {
		nb := workload.ByName(*name)
		if nb == nil {
			fmt.Fprintf(os.Stderr, "delta-vet: unknown workload %q\n", *name)
			os.Exit(2)
		}
		builders = []workload.NamedBuilder{*nb}
	}

	if *doInfer {
		os.Exit(runInfer(builders, *ports, *coarsen, *minFwdPR, *minSharedPR, *verbose, *jsonPath))
	}
	os.Exit(runVet(builders, analysis.Options{NumPorts: *ports, HintSkew: *hintSkew}, *verbose, *jsonPath))
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "delta-vet: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// ---------------------------------------------------------------------
// Plain vet mode.

// jsonDiag mirrors analysis.Diagnostic for the -json dump.
type jsonDiag struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Task     int    `json:"task"`
	Key      uint64 `json:"key"`
	Type     string `json:"type,omitempty"`
	Phase    int    `json:"phase"`
	Port     int    `json:"port"`
	Message  string `json:"message"`
}

type jsonVetWorkload struct {
	Workload string     `json:"workload"`
	Tasks    int        `json:"tasks"`
	Types    int        `json:"types"`
	Errors   int        `json:"errors"`
	Warnings int        `json:"warnings"`
	Diags    []jsonDiag `json:"diags"`
}

type jsonVet struct {
	Mode      string            `json:"mode"`
	Workloads []jsonVetWorkload `json:"workloads"`
	Errors    int               `json:"errors"`
	Warnings  int               `json:"warnings"`
}

func runVet(builders []workload.NamedBuilder, opts analysis.Options, verbose bool, jsonPath string) int {
	dump := jsonVet{Mode: "vet"}
	total := 0
	for _, nb := range builders {
		w := nb.Build()
		rep := analysis.AnalyzeOpts(w.Prog, opts)
		total += len(rep.Diags)
		dump.Errors += rep.Errors()
		dump.Warnings += rep.Warnings()
		jw := jsonVetWorkload{
			Workload: nb.Name,
			Tasks:    len(w.Prog.Tasks), Types: len(w.Prog.Types),
			Errors: rep.Errors(), Warnings: rep.Warnings(),
			Diags: []jsonDiag{},
		}
		for _, d := range rep.Diags {
			jw.Diags = append(jw.Diags, jsonDiag{
				Code: string(d.Code), Severity: d.Sev.String(),
				Task: d.Task, Key: d.Key, Type: d.Type,
				Phase: d.Phase, Port: d.Port, Message: d.Msg,
			})
		}
		dump.Workloads = append(dump.Workloads, jw)
		if !rep.Empty() {
			fmt.Print(rep.String())
		} else if verbose {
			fmt.Printf("%-12s %4d tasks  %2d types  clean\n",
				nb.Name, len(w.Prog.Tasks), len(w.Prog.Types))
		}
	}
	writeJSON(jsonPath, dump)
	if total > 0 {
		fmt.Printf("delta-vet: %d diagnostic(s) (%d error(s), %d warning(s)) across %d workload(s)\n",
			total, dump.Errors, dump.Warnings, len(builders))
		return 1
	}
	fmt.Printf("delta-vet: all clean (%d workload(s))\n", len(builders))
	return 0
}

// ---------------------------------------------------------------------
// Infer mode: strip → synthesize → vet → score.

type jsonPR struct {
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

func mkJSONPR(c infer.PR) jsonPR {
	return jsonPR{TP: c.TP, FP: c.FP, FN: c.FN, Precision: c.Precision(), Recall: c.Recall()}
}

type jsonAccuracy struct {
	Forwards   jsonPR `json:"forwards"`
	Shared     jsonPR `json:"shared"`
	HintsExact int    `json:"hints_exact"`
	HintsTotal int    `json:"hints_total"`
}

type jsonInferWorkload struct {
	Workload string        `json:"workload"`
	Patch    *infer.Patch  `json:"patch,omitempty"`
	Accuracy *jsonAccuracy `json:"accuracy,omitempty"`
	Error    string        `json:"error,omitempty"`
}

type jsonInfer struct {
	Mode      string              `json:"mode"`
	Workloads []jsonInferWorkload `json:"workloads"`
	Aggregate *jsonAccuracy       `json:"aggregate,omitempty"`
}

func runInfer(builders []workload.NamedBuilder, ports int, coarsen int64, minFwdPR, minSharedPR float64, verbose bool, jsonPath string) int {
	iopts := infer.Options{
		NumPorts:         ports,
		PortWidth:        config.Default8().Fabric.PortWidth,
		CoarsenThreshold: coarsen,
	}
	dump := jsonInfer{Mode: "infer"}
	var agg infer.Accuracy
	failed, scored := 0, 0
	for _, nb := range builders {
		w := nb.Build()
		inferred, patch, err := infer.Infer(infer.Strip(w.Prog), iopts)
		jw := jsonInferWorkload{Workload: nb.Name}
		if err != nil {
			failed++
			jw.Error = err.Error()
			dump.Workloads = append(dump.Workloads, jw)
			fmt.Printf("%-12s FAILED: %v\n", nb.Name, err)
			continue
		}
		jw.Patch = patch
		line := fmt.Sprintf("%-12s %4d tasks  %s", nb.Name, len(inferred.Tasks), patch.Counts())
		if coarsen == 0 {
			acc, cmpErr := infer.Compare(w.Prog, inferred)
			if cmpErr != nil {
				failed++
				jw.Error = cmpErr.Error()
				dump.Workloads = append(dump.Workloads, jw)
				fmt.Printf("%-12s FAILED: %v\n", nb.Name, cmpErr)
				continue
			}
			agg.Add(acc)
			scored++
			ja := jsonAccuracy{
				Forwards: mkJSONPR(acc.Forwards), Shared: mkJSONPR(acc.Shared),
				HintsExact: acc.HintsExact, HintsTotal: acc.HintsTotal,
			}
			jw.Accuracy = &ja
			line += fmt.Sprintf("  [fwd P/R %.2f/%.2f  shared P/R %.2f/%.2f  hints %d/%d]",
				acc.Forwards.Precision(), acc.Forwards.Recall(),
				acc.Shared.Precision(), acc.Shared.Recall(),
				acc.HintsExact, acc.HintsTotal)
		}
		dump.Workloads = append(dump.Workloads, jw)
		fmt.Println(line)
		if verbose {
			fmt.Print(patch.String())
		}
	}
	exit := 0
	if failed > 0 {
		fmt.Printf("delta-vet -infer: %d of %d workload(s) failed to infer\n", failed, len(builders))
		exit = 1
	}
	if scored > 0 {
		ja := jsonAccuracy{
			Forwards: mkJSONPR(agg.Forwards), Shared: mkJSONPR(agg.Shared),
			HintsExact: agg.HintsExact, HintsTotal: agg.HintsTotal,
		}
		dump.Aggregate = &ja
		fmt.Printf("delta-vet -infer: aggregate forward P/R %.3f/%.3f, shared P/R %.3f/%.3f, hints %d/%d exact across %d workload(s)\n",
			ja.Forwards.Precision, ja.Forwards.Recall,
			ja.Shared.Precision, ja.Shared.Recall,
			ja.HintsExact, ja.HintsTotal, scored)
		if ja.Forwards.Precision < minFwdPR || ja.Forwards.Recall < minFwdPR {
			fmt.Printf("delta-vet -infer: forward precision/recall below the %.3f floor\n", minFwdPR)
			exit = 1
		}
		if ja.Shared.Precision < minSharedPR || ja.Shared.Recall < minSharedPR {
			fmt.Printf("delta-vet -infer: shared precision/recall below the %.3f floor\n", minSharedPR)
			exit = 1
		}
	}
	writeJSON(jsonPath, dump)
	return exit
}

// writeJSON dumps v to path (no-op when path is empty); sorted keys
// and stable struct order keep the file deterministic and diffable.
func writeJSON(path string, v any) {
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "delta-vet: -json: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "delta-vet: -json: %v\n", err)
		os.Exit(1)
	}
}
