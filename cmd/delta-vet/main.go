// delta-vet runs the whole-program static verifier over the workload
// suite (or one named workload) and reports every diagnostic. It is the
// pre-flight correctness gate for workload changes: exit status 1 means
// at least one diagnostic fired.
package main

import (
	"flag"
	"fmt"
	"os"

	"taskstream/internal/analysis"
	"taskstream/internal/config"
	"taskstream/internal/workload"
)

func main() {
	name := flag.String("workload", "", "vet a single workload (default: whole suite)")
	verbose := flag.Bool("v", false, "print per-workload status even when clean")
	flag.Parse()

	builders := workload.Suite()
	if *name != "" {
		nb := workload.ByName(*name)
		if nb == nil {
			fmt.Fprintf(os.Stderr, "delta-vet: unknown workload %q\n", *name)
			os.Exit(2)
		}
		builders = []workload.NamedBuilder{*nb}
	}

	opts := analysis.Options{NumPorts: config.Default8().Fabric.NumPorts}
	total, errs, warns := 0, 0, 0
	for _, nb := range builders {
		w := nb.Build()
		rep := analysis.AnalyzeOpts(w.Prog, opts)
		errs += rep.Errors()
		warns += rep.Warnings()
		total += len(rep.Diags)
		if !rep.Empty() {
			fmt.Print(rep.String())
		} else if *verbose {
			fmt.Printf("%-12s %4d tasks  %2d types  clean\n",
				nb.Name, len(w.Prog.Tasks), len(w.Prog.Types))
		}
	}
	if total > 0 {
		fmt.Printf("delta-vet: %d diagnostic(s) (%d error(s), %d warning(s)) across %d workload(s)\n",
			total, errs, warns, len(builders))
		os.Exit(1)
	}
	fmt.Printf("delta-vet: all clean (%d workload(s))\n", len(builders))
}
