package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the up-front flag validation: bad values must
// produce a usage-style error naming the flag, never a panic or a
// partial dump.
func TestValidateFlags(t *testing.T) {
	valid := options{workload: "spmv", variant: "delta", lanes: 8, tasks: 3}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring of the error; empty = must pass
	}{
		{"defaults pass", func(o *options) {}, ""},
		{"every suite variant passes", func(o *options) { o.variant = "+lb+mc" }, ""},
		{"static passes", func(o *options) { o.variant = "static" }, ""},
		{"zero tasks pass", func(o *options) { o.tasks = 0 }, ""},
		{"one lane passes", func(o *options) { o.lanes = 1 }, ""},
		{"unknown workload", func(o *options) { o.workload = "nope" }, "unknown workload"},
		{"empty workload", func(o *options) { o.workload = "" }, "unknown workload"},
		{"unknown variant", func(o *options) { o.variant = "turbo" }, "unknown variant"},
		{"variant is case-sensitive", func(o *options) { o.variant = "Delta" }, "unknown variant"},
		{"negative tasks", func(o *options) { o.tasks = -1 }, "-tasks"},
		{"every policy passes", func(o *options) { o.policy = "pipeline" }, ""},
		{"unknown policy", func(o *options) { o.policy = "fifo" }, "unknown policy"},
		{"policy is case-sensitive", func(o *options) { o.policy = "Dynamic" }, "unknown policy"},
		{"zero lanes", func(o *options) { o.lanes = 0 }, "-lanes"},
		{"negative lanes", func(o *options) { o.lanes = -4 }, "-lanes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := valid
			c.mutate(&o)
			err := o.validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", o, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate(%+v) = nil, want error containing %q", o, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validate(%+v) = %q, want substring %q", o, err, c.wantErr)
			}
		})
	}
}

// TestVariantByNameCoversAllVariants keeps the lookup in sync with the
// baseline enum: every declared variant must resolve by display name.
func TestVariantByNameCoversAllVariants(t *testing.T) {
	for _, name := range []string{"static", "dyn-rr", "+lb", "+lb+mc", "delta"} {
		v, err := variantByName(name)
		if err != nil {
			t.Fatalf("variantByName(%q): %v", name, err)
		}
		if v.String() != name {
			t.Fatalf("variantByName(%q) = %v", name, v)
		}
	}
	if _, err := variantByName("unknown"); err == nil {
		t.Fatal("unknown variant must error")
	}
}
