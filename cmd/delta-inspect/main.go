// delta-inspect dumps machine-level detail for one workload: the task
// types with their fabric mappings, the binary task-descriptor encoding
// of sample tasks, and the per-lane execution profile of a run.
//
// Usage:
//
//	delta-inspect -workload join [-variant delta] [-lanes 8] [-tasks 3]
//	delta-inspect stalls -workload join [-variant delta] [-lanes 8] [-trace-out j.json]
//
// The stalls subcommand runs one observed simulation and prints the
// per-lane stall-attribution table plus the observability counters;
// -trace-out additionally writes the Chrome trace-event / Perfetto
// JSON trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/fabric"
	"taskstream/internal/isa"
	"taskstream/internal/obs"
	"taskstream/internal/stats"
	"taskstream/internal/trace"
	"taskstream/internal/workload"
)

// options holds the parsed flag values; validate rejects bad ones
// before any simulation or printing starts.
type options struct {
	workload string
	variant  string
	lanes    int
	tasks    int
	policy   string
	timeline bool
}

// validate checks every flag value up front, returning a usage-style
// error naming the offending flag so main can exit 1 cleanly instead
// of panicking or printing partial garbage mid-dump.
func (o options) validate() error {
	if workload.ByName(o.workload) == nil {
		return fmt.Errorf("unknown workload %q (-workload must be one of: %s)",
			o.workload, strings.Join(suiteNames(), ", "))
	}
	if _, err := variantByName(o.variant); err != nil {
		return err
	}
	if o.lanes < 1 {
		return fmt.Errorf("-lanes must be >= 1 (got %d)", o.lanes)
	}
	if o.tasks < 0 {
		return fmt.Errorf("-tasks must be >= 0 (got %d)", o.tasks)
	}
	if o.policy != "" {
		if _, err := core.ParsePolicy(o.policy); err != nil {
			return err
		}
	}
	return nil
}

// applyPolicy overrides opts.Policy when -policy was given; validate
// has already vetted the name.
func (o options) applyPolicy(opts *core.Options) {
	if o.policy != "" {
		opts.Policy, _ = core.ParsePolicy(o.policy)
	}
}

// variantByName resolves a variant display name.
func variantByName(name string) (baseline.Variant, error) {
	var names []string
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		if v.String() == name {
			return v, nil
		}
		names = append(names, v.String())
	}
	return 0, fmt.Errorf("unknown variant %q (-variant must be one of: %s)",
		name, strings.Join(names, ", "))
}

func suiteNames() []string {
	var names []string
	for _, nb := range workload.Suite() {
		names = append(names, nb.Name)
	}
	return names
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stalls" {
		runStalls(os.Args[2:])
		return
	}
	o := options{}
	flag.StringVar(&o.workload, "workload", "spmv", "suite workload name")
	flag.StringVar(&o.variant, "variant", "delta", "execution model variant")
	flag.IntVar(&o.lanes, "lanes", 8, "lane count")
	flag.IntVar(&o.tasks, "tasks", 3, "sample task descriptors to dump")
	flag.StringVar(&o.policy, "policy", "",
		"dispatch policy override: "+strings.Join(core.PolicyNames(), "|")+"; empty keeps the variant's policy")
	flag.BoolVar(&o.timeline, "timeline", false, "render a per-lane occupancy timeline")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "delta-inspect: %v\n", err)
		flag.Usage()
		os.Exit(1)
	}

	nb := workload.ByName(o.workload)
	w := nb.Build()
	cfg := config.Default8().WithLanes(o.lanes)

	fmt.Printf("== %s: task types ==\n", o.workload)
	for i, tt := range w.Prog.Types {
		mp, err := fabric.Map(tt.DFG, cfg.Fabric.Rows, cfg.Fabric.Cols)
		if err != nil {
			fatalf("mapping %s: %v", tt.Name, err)
		}
		fmt.Printf("type %d %-14s: %2d DFG nodes → %2d cells, II=%d, latency=%d\n",
			i, tt.Name, len(tt.DFG.Nodes), mp.Cells, mp.II, mp.Latency)
	}

	fmt.Printf("\n== sample task descriptors (TSK1 wire format) ==\n")
	for i := 0; i < o.tasks && i < len(w.Prog.Tasks); i++ {
		t := w.Prog.Tasks[i]
		buf, err := isa.EncodeTask(&t)
		if err != nil {
			fatalf("encode: %v", err)
		}
		rt, err := isa.DecodeTask(buf)
		if err != nil {
			fatalf("decode: %v", err)
		}
		fmt.Printf("task %d: type=%d phase=%d hint=%d ins=%d outs=%d → %d bytes (round-trip ok=%v)\n",
			i, t.Type, t.Phase, t.DefaultWorkHint(), len(t.Ins), len(t.Outs), len(buf),
			rt.Key == t.Key)
	}

	v, _ := variantByName(o.variant)
	mcfg, opts := v.Configure(cfg)
	o.applyPolicy(&opts)
	var rec *trace.Recorder
	if o.timeline {
		rec = trace.New(200000)
		opts.Trace = rec
	}
	rep, err := baseline.RunCfg(mcfg, opts, w.Prog, w.Storage)
	if err != nil {
		fatalf("run: %v", err)
	}
	if err := w.Verify(); err != nil {
		fatalf("verification: %v", err)
	}

	fmt.Printf("\n== run profile (%s, %d lanes) ==\n", o.variant, o.lanes)
	fmt.Printf("cycles %d, imbalance %.2f\n", rep.Cycles, stats.Imbalance(rep.LaneBusy))
	for i, b := range rep.LaneBusy {
		frac := float64(b) / float64(rep.Cycles)
		bar := int(frac * 40)
		fmt.Printf("lane %2d busy %8d  |%s%s| %s\n", i, b,
			repeatRune('#', bar), repeatRune('.', 40-bar), stats.Pct(frac))
	}
	fmt.Printf("\nstall attribution: dram=%d spad=%d fwd=%d mcast=%d out=%d\n",
		rep.Stats.Get("stall_in_dram"), rep.Stats.Get("stall_in_spad"),
		rep.Stats.Get("stall_in_fwd"), rep.Stats.Get("stall_in_mcast"),
		rep.Stats.Get("stall_out"))

	if rec != nil {
		fmt.Println()
		fmt.Print(rec.Timeline(o.lanes, 100))
	}
}

// runStalls implements the stalls subcommand: run one workload with an
// observability sink attached and print where every lane's cycles went.
func runStalls(args []string) {
	fs := flag.NewFlagSet("delta-inspect stalls", flag.ExitOnError)
	o := options{tasks: 0}
	var traceOut string
	var traceLimit int
	fs.StringVar(&o.workload, "workload", "spmv", "suite workload name")
	fs.StringVar(&o.variant, "variant", "delta", "execution model variant")
	fs.IntVar(&o.lanes, "lanes", 8, "lane count")
	fs.StringVar(&o.policy, "policy", "",
		"dispatch policy override: "+strings.Join(core.PolicyNames(), "|")+"; empty keeps the variant's policy")
	fs.StringVar(&traceOut, "trace-out", "",
		"also write a Chrome trace-event / Perfetto JSON trace to this path")
	fs.IntVar(&traceLimit, "trace-limit", 250000,
		"max buffered trace events (0 = unbounded)")
	fs.Parse(args)

	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "delta-inspect stalls: %v\n", err)
		fs.Usage()
		os.Exit(1)
	}
	if traceLimit < 0 {
		fatalf("stalls: -trace-limit must be >= 0 (got %d)", traceLimit)
	}

	nb := workload.ByName(o.workload)
	w := nb.Build()
	v, _ := variantByName(o.variant)
	cfg, opts := v.Configure(config.Default8().WithLanes(o.lanes))
	o.applyPolicy(&opts)
	sink := obs.New(traceLimit)
	opts.Obs = sink
	rep, err := baseline.RunCfg(cfg, opts, w.Prog, w.Storage)
	if err != nil {
		fatalf("stalls: run: %v", err)
	}
	if err := w.Verify(); err != nil {
		fatalf("stalls: verification: %v", err)
	}

	fmt.Printf("== %s stall attribution (%s, %d lanes, %d cycles) ==\n",
		o.workload, o.variant, o.lanes, rep.Cycles)
	m := sink.Metrics()
	fmt.Print(m.StallSummary(o.lanes, rep.Cycles))
	fmt.Println()
	fmt.Printf("events: %d buffered, %d dropped\n", sink.Len(), sink.Dropped())
	fmt.Println("observability counters:")
	fmt.Print(m.Stats().String())
	if d := sink.Dropped(); d > 0 {
		// Metrics keep folding past the buffer limit, so the attribution
		// above is complete — only an exported trace would be truncated.
		fmt.Fprintf(os.Stderr,
			"delta-inspect: warning: %d events dropped at the %d-event buffer limit; "+
				"attribution is complete, but a -trace-out export would be truncated "+
				"(raise -trace-limit or pass -trace-limit 0)\n", d, traceLimit)
	}

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatalf("stalls: -trace-out: %v", err)
		}
		if err := obs.WriteChromeTrace(f, sink); err != nil {
			f.Close()
			fatalf("stalls: -trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("stalls: -trace-out: %v", err)
		}
		fmt.Fprintf(os.Stderr,
			"delta-inspect: wrote %d trace events (%d dropped) to %s — load at https://ui.perfetto.dev or chrome://tracing\n",
			sink.Len(), sink.Dropped(), traceOut)
	}
}

func repeatRune(r rune, n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]rune, n)
	for i := range out {
		out[i] = r
	}
	return string(out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "delta-inspect: "+format+"\n", args...)
	os.Exit(1)
}
