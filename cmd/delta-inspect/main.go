// delta-inspect dumps machine-level detail for one workload: the task
// types with their fabric mappings, the binary task-descriptor encoding
// of sample tasks, and the per-lane execution profile of a run.
//
// Usage:
//
//	delta-inspect -workload join [-variant delta] [-lanes 8] [-tasks 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/fabric"
	"taskstream/internal/isa"
	"taskstream/internal/stats"
	"taskstream/internal/trace"
	"taskstream/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "spmv", "suite workload name")
		variant  = flag.String("variant", "delta", "execution model variant")
		lanes    = flag.Int("lanes", 8, "lane count")
		nTasks   = flag.Int("tasks", 3, "sample task descriptors to dump")
		timeline = flag.Bool("timeline", false, "render a per-lane occupancy timeline")
	)
	flag.Parse()

	nb := workload.ByName(*name)
	if nb == nil {
		fatalf("unknown workload %q", *name)
	}
	w := nb.Build()
	cfg := config.Default8().WithLanes(*lanes)

	fmt.Printf("== %s: task types ==\n", *name)
	for i, tt := range w.Prog.Types {
		mp, err := fabric.Map(tt.DFG, cfg.Fabric.Rows, cfg.Fabric.Cols)
		if err != nil {
			fatalf("mapping %s: %v", tt.Name, err)
		}
		fmt.Printf("type %d %-14s: %2d DFG nodes → %2d cells, II=%d, latency=%d\n",
			i, tt.Name, len(tt.DFG.Nodes), mp.Cells, mp.II, mp.Latency)
	}

	fmt.Printf("\n== sample task descriptors (TSK1 wire format) ==\n")
	for i := 0; i < *nTasks && i < len(w.Prog.Tasks); i++ {
		t := w.Prog.Tasks[i]
		buf, err := isa.EncodeTask(&t)
		if err != nil {
			fatalf("encode: %v", err)
		}
		rt, err := isa.DecodeTask(buf)
		if err != nil {
			fatalf("decode: %v", err)
		}
		fmt.Printf("task %d: type=%d phase=%d hint=%d ins=%d outs=%d → %d bytes (round-trip ok=%v)\n",
			i, t.Type, t.Phase, t.DefaultWorkHint(), len(t.Ins), len(t.Outs), len(buf),
			rt.Key == t.Key)
	}

	var v baseline.Variant
	found := false
	for cand := baseline.Static; cand < baseline.NumVariants; cand++ {
		if cand.String() == *variant {
			v, found = cand, true
		}
	}
	if !found {
		fatalf("unknown variant %q", *variant)
	}
	mcfg, opts := v.Configure(cfg)
	var rec *trace.Recorder
	if *timeline {
		rec = trace.New(200000)
		opts.Trace = rec
	}
	rep, err := baseline.RunCfg(mcfg, opts, w.Prog, w.Storage)
	if err != nil {
		fatalf("run: %v", err)
	}
	if err := w.Verify(); err != nil {
		fatalf("verification: %v", err)
	}

	fmt.Printf("\n== run profile (%s, %d lanes) ==\n", *variant, *lanes)
	fmt.Printf("cycles %d, imbalance %.2f\n", rep.Cycles, stats.Imbalance(rep.LaneBusy))
	for i, b := range rep.LaneBusy {
		frac := float64(b) / float64(rep.Cycles)
		bar := int(frac * 40)
		fmt.Printf("lane %2d busy %8d  |%s%s| %s\n", i, b,
			repeatRune('#', bar), repeatRune('.', 40-bar), stats.Pct(frac))
	}
	fmt.Printf("\nstall attribution: dram=%d spad=%d fwd=%d mcast=%d out=%d\n",
		rep.Stats.Get("stall_in_dram"), rep.Stats.Get("stall_in_spad"),
		rep.Stats.Get("stall_in_fwd"), rep.Stats.Get("stall_in_mcast"),
		rep.Stats.Get("stall_out"))

	if rec != nil {
		fmt.Println()
		fmt.Print(rec.Timeline(*lanes, 100))
	}
}

func repeatRune(r rune, n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]rune, n)
	for i := range out {
		out[i] = r
	}
	return string(out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "delta-inspect: "+format+"\n", args...)
	os.Exit(1)
}
