// delta-serve is the persistent simulation service: an HTTP/JSON
// daemon that accepts runplan Specs and resolves them through the
// memoizing single-flight runner, layered over a disk-backed
// content-addressed store — so a warm daemon answers a repeat suite
// at memory speed, survives restarts with a warm disk cache, and
// charges N concurrent clients asking for the same uncached spec
// exactly one simulation (DESIGN.md §15).
//
// API (see internal/store/protocol.go):
//
//	POST /v1/run    one spec → report + {cached: memory|disk|dedup|miss}
//	POST /v1/suite  batch → streamed per-spec JSON lines, completion order
//	GET  /v1/stats  runner counters + store size/accounting
//
// Usage:
//
//	delta-serve                          # :8177, ./delta-store, unbounded
//	delta-serve -addr :9000 -store /var/cache/delta -store-max-mb 512
//	delta-serve -store ""                # memory-only (no persistence)
//	delta-bench -server http://localhost:8177   # run the suite through it
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"taskstream/internal/runplan"
	"taskstream/internal/store"
)

func main() {
	addr := flag.String("addr", ":8177", "listen address")
	storeDir := flag.String("store", "delta-store", "disk store directory; empty = memory-only")
	storeMaxMB := flag.Int64("store-max-mb", 0, "disk store size bound in MiB (0 = unbounded)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations")
	flag.Parse()
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "delta-serve: -j must be >= 1 (got %d)\n", *jobs)
		os.Exit(1)
	}
	if *storeMaxMB < 0 {
		fmt.Fprintf(os.Stderr, "delta-serve: -store-max-mb must be >= 0 (got %d)\n", *storeMaxMB)
		os.Exit(1)
	}

	// The daemon owns its runner rather than sharing the process-wide
	// one: delta-serve is the only spec source in this process, and an
	// isolated runner keeps its counters meaningful for /v1/stats.
	runner := runplan.NewRunner()
	runner.SetDisabled(false)

	var disk *store.DiskStore
	if *storeDir != "" {
		var err error
		disk, err = store.Open(*storeDir, *storeMaxMB<<20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "delta-serve: %v\n", err)
			os.Exit(1)
		}
		st := disk.Stats()
		fmt.Fprintf(os.Stderr, "delta-serve: store %s: %d entries, %d bytes\n",
			*storeDir, st.Entries, st.Bytes)
	} else {
		fmt.Fprintln(os.Stderr, "delta-serve: memory-only (no -store directory)")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "delta-serve: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: store.NewServer(runner, disk, *jobs)}
	fmt.Fprintf(os.Stderr, "delta-serve: listening on %s (-j %d)\n", ln.Addr(), *jobs)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "delta-serve: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "delta-serve: %v: shutting down (%s)\n", s, runner.Counters())
		srv.Close()
	}
}
