// delta-serve is the persistent simulation service: an HTTP/JSON
// daemon that accepts runplan Specs and resolves them through the
// memoizing single-flight runner, layered over a disk-backed
// content-addressed store — so a warm daemon answers a repeat suite
// at memory speed, survives restarts with a warm disk cache, and
// charges N concurrent clients asking for the same uncached spec
// exactly one simulation (DESIGN.md §15).
//
// API (see internal/store/protocol.go):
//
//	POST /v1/run    one spec → report + {cached: memory|disk|dedup|miss}
//	POST /v1/suite  batch → streamed per-spec JSON lines, completion order
//	GET  /v1/stats  runner counters + store size/accounting
//	GET  /metrics   Prometheus text exposition (hostobs registry)
//	GET  /debug/vars JSON snapshot of the same series
//
// Usage:
//
//	delta-serve                          # :8177, ./delta-store, unbounded
//	delta-serve -addr :9000 -store /var/cache/delta -store-max-mb 512
//	delta-serve -store ""                # memory-only (no persistence)
//	delta-bench -server http://localhost:8177   # run the suite through it
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"taskstream/internal/core"
	"taskstream/internal/runplan"
	"taskstream/internal/store"
)

// options holds the parsed flag values; validate rejects bad ones
// before the daemon touches the disk store or the network.
type options struct {
	addr       string
	storeDir   string
	storeMaxMB int64
	jobs       int
	shards     int
	policy     string
	logFormat  string
	accessLog  bool
	hostprof   bool
}

// parseFlags binds the flag set over args (without the program name)
// and returns the parsed options. Split from main so tests can drive
// the real flag definitions.
func parseFlags(args []string) (options, error) {
	o := options{}
	fs := flag.NewFlagSet("delta-serve", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8177", "listen address")
	fs.StringVar(&o.storeDir, "store", "delta-store", "disk store directory; empty = memory-only")
	fs.Int64Var(&o.storeMaxMB, "store-max-mb", 0, "disk store size bound in MiB (0 = unbounded)")
	fs.IntVar(&o.jobs, "j", runtime.GOMAXPROCS(0), "max concurrent simulations")
	fs.IntVar(&o.shards, "shards", 0,
		"intra-simulation shard count for served runs (byte-identical results); 0 reads TASKSTREAM_SHARDS; 1 forces serial")
	fs.StringVar(&o.policy, "policy", "",
		"default dispatch policy for wire specs that omit one ("+strings.Join(core.PolicyNames(), ", ")+"); empty = dynamic")
	fs.StringVar(&o.logFormat, "log-format", "text", "access-log format: text or json")
	fs.BoolVar(&o.accessLog, "access-log", true, "log one structured line per request to stderr")
	fs.BoolVar(&o.hostprof, "hostprof", false,
		"enable sim host profiling; exports sim_hostprof_* gauges at /metrics")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

// validatePolicy checks the -policy name; unlike the structural flag
// checks (exit 1), a bad policy name is a usage error and exits 2.
func (o options) validatePolicy() error {
	if o.policy == "" {
		return nil
	}
	_, err := core.ParsePolicy(o.policy)
	return err
}

// validate checks every flag value up front so main can exit 1 cleanly
// instead of failing partway through startup.
func (o options) validate() error {
	if o.jobs < 1 {
		return fmt.Errorf("-j must be >= 1 (got %d)", o.jobs)
	}
	if o.storeMaxMB < 0 {
		return fmt.Errorf("-store-max-mb must be >= 0 (got %d)", o.storeMaxMB)
	}
	if o.shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (got %d)", o.shards)
	}
	if o.logFormat != "text" && o.logFormat != "json" {
		return fmt.Errorf("-log-format must be text or json (got %q)", o.logFormat)
	}
	return nil
}

// newHTTPServer wraps handler with the daemon's timeout policy.
// ReadHeaderTimeout and ReadTimeout bound how long a client may dribble
// a request in (the slow-loris guard); IdleTimeout reaps parked
// keep-alive connections. There is deliberately NO WriteTimeout:
// /v1/suite streams ndjson for as long as a cold batch simulates, and a
// write deadline would sever it mid-stream.
func newHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// apply installs the options' process-wide effects. Served simulations
// build their machines from runplan Specs, so the shard count rides
// the environment default every machine constructor consults
// (core.resolveShards); results are byte-identical either way, and
// Shards never enters a spec's cache key, so the store stays shared
// between sharded and serial daemons.
func (o options) apply() {
	if o.shards > 0 {
		os.Setenv("TASKSTREAM_SHARDS", fmt.Sprint(o.shards))
	}
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := o.validatePolicy(); err != nil {
		fmt.Fprintf(os.Stderr, "delta-serve: %v\n", err)
		os.Exit(2)
	}
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "delta-serve: %v\n", err)
		os.Exit(1)
	}
	o.apply()

	// The daemon owns its runner rather than sharing the process-wide
	// one: delta-serve is the only spec source in this process, and an
	// isolated runner keeps its counters meaningful for /v1/stats.
	runner := runplan.NewRunner()
	runner.SetDisabled(false)

	var disk *store.DiskStore
	if o.storeDir != "" {
		var err error
		disk, err = store.Open(o.storeDir, o.storeMaxMB<<20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "delta-serve: %v\n", err)
			os.Exit(1)
		}
		st := disk.Stats()
		fmt.Fprintf(os.Stderr, "delta-serve: store %s: %d entries, %d bytes\n",
			o.storeDir, st.Entries, st.Bytes)
	} else {
		fmt.Fprintln(os.Stderr, "delta-serve: memory-only (no -store directory)")
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "delta-serve: %v\n", err)
		os.Exit(1)
	}
	handler := store.NewServer(runner, disk, o.jobs)
	if o.policy != "" {
		handler.SetDefaultPolicy(o.policy)
		fmt.Fprintf(os.Stderr, "delta-serve: default policy %s\n", o.policy)
	}
	if o.accessLog {
		handler.SetRequestLog(os.Stderr, o.logFormat)
	}
	if o.hostprof {
		handler.EnableHostProf()
		fmt.Fprintln(os.Stderr, "delta-serve: sim host profiling on (sim_hostprof_* at /metrics)")
	}
	srv := newHTTPServer(handler)
	fmt.Fprintf(os.Stderr, "delta-serve: listening on %s (-j %d)\n", ln.Addr(), o.jobs)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "delta-serve: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "delta-serve: %v: shutting down (%s)\n", s, runner.Counters())
		srv.Close()
	}
}
