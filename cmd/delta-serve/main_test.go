package main

import (
	"os"
	"runtime"
	"strings"
	"testing"

	"taskstream/internal/core"
)

// TestParseFlagsDefaults pins the daemon's documented defaults: port
// 8177, ./delta-store persistence, one simulation per CPU, serial
// execution (shards 0 defers to TASKSTREAM_SHARDS).
func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatalf("parseFlags(nil): %v", err)
	}
	want := options{addr: ":8177", storeDir: "delta-store", storeMaxMB: 0,
		jobs: runtime.GOMAXPROCS(0), shards: 0, logFormat: "text", accessLog: true}
	if o != want {
		t.Fatalf("parseFlags(nil) = %+v, want %+v", o, want)
	}
	if err := o.validate(); err != nil {
		t.Fatalf("default options must validate: %v", err)
	}
}

// TestParseFlagsPlumbing checks every flag reaches its options field.
func TestParseFlagsPlumbing(t *testing.T) {
	o, err := parseFlags([]string{
		"-addr", ":9000", "-store", "/tmp/ds", "-store-max-mb", "512",
		"-j", "3", "-shards", "8", "-policy", "streamgraph",
		"-log-format", "json", "-access-log=false", "-hostprof",
	})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	want := options{addr: ":9000", storeDir: "/tmp/ds", storeMaxMB: 512, jobs: 3,
		shards: 8, policy: "streamgraph", logFormat: "json", accessLog: false,
		hostprof: true}
	if o != want {
		t.Fatalf("parseFlags = %+v, want %+v", o, want)
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("parseFlags accepted an unknown flag")
	}
}

// TestValidateFlags pins the up-front validation: bad values must
// produce a usage-style error naming the flag, never a partial start.
func TestValidateFlags(t *testing.T) {
	valid := options{addr: ":8177", storeDir: "delta-store", jobs: 1, logFormat: "text"}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring of the error; empty = must pass
	}{
		{"defaults pass", func(o *options) {}, ""},
		{"memory-only passes", func(o *options) { o.storeDir = "" }, ""},
		{"bounded store passes", func(o *options) { o.storeMaxMB = 512 }, ""},
		{"sharded passes", func(o *options) { o.shards = 8 }, ""},
		{"forced-serial passes", func(o *options) { o.shards = 1 }, ""},
		{"zero jobs", func(o *options) { o.jobs = 0 }, "-j"},
		{"negative jobs", func(o *options) { o.jobs = -2 }, "-j"},
		{"negative store bound", func(o *options) { o.storeMaxMB = -1 }, "-store-max-mb"},
		{"negative shards", func(o *options) { o.shards = -1 }, "-shards"},
		{"json log format passes", func(o *options) { o.logFormat = "json" }, ""},
		{"unknown log format", func(o *options) { o.logFormat = "xml" }, "-log-format"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := valid
			c.mutate(&o)
			err := o.validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", o, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate(%+v) = nil, want error containing %q", o, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validate(%+v) = %q, want substring %q", o, err, c.wantErr)
			}
		})
	}
}

// TestValidatePolicy pins the -policy check: every canonical name and
// the empty default pass; anything else is a usage error (main exits 2).
func TestValidatePolicy(t *testing.T) {
	for _, name := range append(core.PolicyNames(), "") {
		if err := (options{policy: name}.validatePolicy()); err != nil {
			t.Errorf("validatePolicy(%q) = %v, want nil", name, err)
		}
	}
	err := options{policy: "fifo"}.validatePolicy()
	if err == nil {
		t.Fatal("validatePolicy accepted an unknown policy name")
	}
	if !strings.Contains(err.Error(), "fifo") {
		t.Fatalf("validatePolicy error %q does not name the bad policy", err)
	}
}

// TestApplyShardsPlumbing pins how -shards reaches served simulations:
// through the TASKSTREAM_SHARDS environment default the machine
// constructor consults. Zero must leave the environment alone so an
// inherited setting still applies.
func TestApplyShardsPlumbing(t *testing.T) {
	t.Setenv("TASKSTREAM_SHARDS", "")
	options{shards: 8}.apply()
	if got := os.Getenv("TASKSTREAM_SHARDS"); got != "8" {
		t.Fatalf("apply with shards=8 set TASKSTREAM_SHARDS=%q, want \"8\"", got)
	}

	t.Setenv("TASKSTREAM_SHARDS", "4")
	options{shards: 0}.apply()
	if got := os.Getenv("TASKSTREAM_SHARDS"); got != "4" {
		t.Fatalf("apply with shards=0 clobbered TASKSTREAM_SHARDS to %q, want inherited \"4\"", got)
	}
}

// TestHTTPServerTimeouts pins the slow-loris guard: header and read
// deadlines plus idle reaping are set, and WriteTimeout is zero — a
// write deadline would sever the long-lived /v1/suite ndjson stream.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(nil)
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slow-loris clients can hold connections open")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: a dribbled request body is unbounded")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: parked keep-alive connections are never reaped")
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, must be 0 (suite responses stream for the whole batch)", srv.WriteTimeout)
	}
}
