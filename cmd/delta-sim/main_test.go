package main

import (
	"strings"
	"testing"

	"taskstream/internal/core"
)

// TestValidateFlags pins the up-front flag validation: bad values must
// produce a usage-style error naming the flag, never a panic or a
// partial run.
func TestValidateFlags(t *testing.T) {
	valid := options{workload: "spmv", variant: "delta", lanes: 8, hints: "exact"}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring of the error; empty = must pass
	}{
		{"defaults pass", func(o *options) {}, ""},
		{"static passes", func(o *options) { o.variant = "static" }, ""},
		{"every suite variant passes", func(o *options) { o.variant = "+lb+mc" }, ""},
		{"one lane passes", func(o *options) { o.lanes = 1 }, ""},
		{"noisy hints pass", func(o *options) { o.hints = "noisy" }, ""},
		{"no hints pass", func(o *options) { o.hints = "none" }, ""},
		{"unknown workload", func(o *options) { o.workload = "nope" }, "unknown workload"},
		{"empty workload", func(o *options) { o.workload = "" }, "unknown workload"},
		{"unknown variant", func(o *options) { o.variant = "turbo" }, "unknown variant"},
		{"variant is case-sensitive", func(o *options) { o.variant = "Delta" }, "unknown variant"},
		{"zero lanes", func(o *options) { o.lanes = 0 }, "-lanes"},
		{"negative lanes", func(o *options) { o.lanes = -4 }, "-lanes"},
		{"unknown hint mode", func(o *options) { o.hints = "psychic" }, "unknown hint mode"},
		{"hints are case-sensitive", func(o *options) { o.hints = "Exact" }, "unknown hint mode"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := valid
			c.mutate(&o)
			err := o.validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", o, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate(%+v) = nil, want error containing %q", o, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("validate(%+v) = %q, want substring %q", o, err, c.wantErr)
			}
		})
	}
}

// TestVariantByNameCoversAllVariants keeps the lookup in sync with the
// baseline enum: every declared variant must resolve by display name.
func TestVariantByNameCoversAllVariants(t *testing.T) {
	for _, name := range []string{"static", "dyn-rr", "+lb", "+lb+mc", "delta"} {
		v, err := variantByName(name)
		if err != nil {
			t.Fatalf("variantByName(%q): %v", name, err)
		}
		if v.String() != name {
			t.Fatalf("variantByName(%q) = %v", name, v)
		}
	}
	if _, err := variantByName("unknown"); err == nil {
		t.Fatal("unknown variant must error")
	}
}

// TestHintModeByName pins the -hints value set and its error message.
func TestHintModeByName(t *testing.T) {
	for _, name := range []string{"exact", "noisy", "none"} {
		if _, err := hintModeByName(name); err != nil {
			t.Fatalf("hintModeByName(%q): %v", name, err)
		}
	}
	if _, err := hintModeByName("fuzzy"); err == nil {
		t.Fatal("unknown hint mode must error")
	}
}

// TestValidatePolicy pins the -policy check: every canonical name and
// the empty default pass; typos are usage errors (main exits 2).
func TestValidatePolicy(t *testing.T) {
	for _, name := range append(core.PolicyNames(), "") {
		if err := (options{policy: name}.validatePolicy()); err != nil {
			t.Errorf("validatePolicy(%q) = %v, want nil", name, err)
		}
	}
	err := options{policy: "fifo"}.validatePolicy()
	if err == nil {
		t.Fatal("validatePolicy accepted an unknown policy name")
	}
	if !strings.Contains(err.Error(), "fifo") {
		t.Fatalf("validatePolicy error %q does not name the bad policy", err)
	}
}
