// delta-sim runs one suite workload on one execution-model variant and
// prints the run's statistics.
//
// Usage:
//
//	delta-sim -workload spmv -variant delta -lanes 8 [-hints exact]
//	delta-sim -workload spmv -trace-out spmv.json   # Perfetto trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/obs"
	"taskstream/internal/sim"
	"taskstream/internal/stats"
	"taskstream/internal/workload"
)

// options holds the parsed flag values; validate rejects bad ones
// before any simulation starts.
type options struct {
	workload   string
	variant    string
	lanes      int
	hints      string
	policy     string
	vet        bool
	verbose    bool
	shards     int
	traceOut   string
	traceLimit int
	hostprof   bool
}

// validatePolicy checks the -policy name separately from the
// structural flags: a bad policy name is a usage error and exits 2,
// matching delta-bench and delta-serve.
func (o options) validatePolicy() error {
	if o.policy == "" {
		return nil
	}
	_, err := core.ParsePolicy(o.policy)
	return err
}

// validate checks every flag value up front, returning a usage-style
// error naming the offending flag so main can exit 1 cleanly instead
// of failing partway into a run.
func (o options) validate() error {
	if workload.ByName(o.workload) == nil {
		return fmt.Errorf("unknown workload %q (-workload must be one of: %s)",
			o.workload, strings.Join(suiteNames(), ", "))
	}
	if _, err := variantByName(o.variant); err != nil {
		return err
	}
	if o.lanes < 1 {
		return fmt.Errorf("-lanes must be >= 1 (got %d)", o.lanes)
	}
	if _, err := hintModeByName(o.hints); err != nil {
		return err
	}
	if o.traceLimit < 0 {
		return fmt.Errorf("-trace-limit must be >= 0 (got %d)", o.traceLimit)
	}
	if o.shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (got %d)", o.shards)
	}
	return nil
}

// variantByName resolves a variant display name.
func variantByName(name string) (baseline.Variant, error) {
	var names []string
	for v := baseline.Static; v < baseline.NumVariants; v++ {
		if v.String() == name {
			return v, nil
		}
		names = append(names, v.String())
	}
	return 0, fmt.Errorf("unknown variant %q (-variant must be one of: %s)",
		name, strings.Join(names, ", "))
}

// hintModeByName resolves a -hints value.
func hintModeByName(name string) (core.HintMode, error) {
	switch name {
	case "exact":
		return core.HintExact, nil
	case "noisy":
		return core.HintNoisy, nil
	case "none":
		return core.HintNone, nil
	}
	return 0, fmt.Errorf("unknown hint mode %q (-hints must be one of: exact, noisy, none)", name)
}

func suiteNames() []string {
	var names []string
	for _, nb := range workload.Suite() {
		names = append(names, nb.Name)
	}
	return names
}

func main() {
	o := options{}
	flag.StringVar(&o.workload, "workload", "spmv", "suite workload: spmv|bfs|join|tri|sort|kmeans|gemm|stencil|hist")
	flag.StringVar(&o.variant, "variant", "delta", "execution model: static|dyn-rr|+lb|+lb+mc|delta")
	flag.IntVar(&o.lanes, "lanes", 8, "compute lane count")
	flag.StringVar(&o.hints, "hints", "exact", "work-hint fidelity: exact|noisy|none")
	flag.StringVar(&o.policy, "policy", "",
		"dispatch policy override: "+strings.Join(core.PolicyNames(), "|")+"; empty keeps the variant's policy")
	flag.BoolVar(&o.vet, "vet", true, "statically verify the program before running (delta-vet)")
	flag.BoolVar(&o.verbose, "v", false, "print every counter")
	flag.IntVar(&o.shards, "shards", 0,
		"intra-simulation shard count: >1 ticks lanes in parallel (byte-identical results); 0 reads TASKSTREAM_SHARDS; 1 forces serial")
	flag.StringVar(&o.traceOut, "trace-out", "",
		"write a Chrome trace-event / Perfetto JSON trace of the run to this path")
	flag.IntVar(&o.traceLimit, "trace-limit", 250000,
		"max buffered trace events (0 = unbounded; metrics keep counting past the limit)")
	flag.BoolVar(&o.hostprof, "hostprof", false,
		"profile host wall-clock time inside the engine (per-phase + per-shard attribution to stderr; results unchanged)")
	flag.Parse()

	if err := o.validatePolicy(); err != nil {
		fmt.Fprintf(os.Stderr, "delta-sim: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "delta-sim: %v\n", err)
		flag.Usage()
		os.Exit(1)
	}

	nb := workload.ByName(o.workload)
	v, _ := variantByName(o.variant)
	hm, _ := hintModeByName(o.hints)

	w := nb.Build()
	cfg, opts := v.Configure(config.Default8().WithLanes(o.lanes))
	opts.Hints = hm
	opts.Vet = o.vet
	opts.Shards = o.shards
	if o.policy != "" {
		// Explicit -policy overrides the variant's resolved policy,
		// including the static comparator's pin.
		opts.Policy, _ = core.ParsePolicy(o.policy)
	}
	var sink *obs.Sink
	if o.traceOut != "" {
		sink = obs.New(o.traceLimit)
		opts.Obs = sink
	}
	if o.hostprof {
		sim.SetHostProf(true)
	}
	rep, err := baseline.RunCfg(cfg, opts, w.Prog, w.Storage)
	if err != nil {
		fatalf("run: %v", err)
	}
	if err := w.Verify(); err != nil {
		fatalf("verification: %v", err)
	}
	if sink != nil {
		// Trace output and its note go to the file and stderr so stdout
		// stays byte-identical with and without -trace-out.
		f, err := os.Create(o.traceOut)
		if err != nil {
			fatalf("-trace-out: %v", err)
		}
		if err := obs.WriteChromeTrace(f, sink); err != nil {
			f.Close()
			fatalf("-trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("-trace-out: %v", err)
		}
		fmt.Fprintf(os.Stderr,
			"delta-sim: wrote %d trace events (%d dropped) to %s — load at https://ui.perfetto.dev or chrome://tracing\n",
			sink.Len(), sink.Dropped(), o.traceOut)
	}
	if !obs.Global.Empty() {
		// Fast-forward cycle accounting (TASKSTREAM_FF_DEBUG).
		fmt.Fprintf(os.Stderr, "delta-sim: %s\n", obs.Global.Line())
	}
	if o.hostprof {
		// Host profile goes to stderr so stdout stays byte-identical
		// with and without -hostprof (the feedback-free contract).
		snap := sim.HostProfSnapshot()
		fmt.Fprint(os.Stderr, snap.Report())
	}

	fmt.Printf("workload=%s variant=%s lanes=%d\n", o.workload, o.variant, o.lanes)
	fmt.Printf("cycles            %d\n", rep.Cycles)
	fmt.Printf("tasks run         %d (%d spawned)\n",
		rep.Stats.Get("tasks_run"), rep.Stats.Get("tasks_spawned"))
	fmt.Printf("lane imbalance    %.2f (max/mean busy)\n", stats.Imbalance(rep.LaneBusy))
	fmt.Printf("DRAM traffic      %s\n", stats.Bytes(rep.Stats.Get("dram_bytes")))
	fmt.Printf("NoC flit-cycles   %d\n", rep.Stats.Get("noc_flit_cycles"))
	fmt.Printf("forwarded pairs   %d (%d elems)\n",
		rep.Stats.Get("fwd_pairs"), rep.Stats.Get("fwd_elems"))
	fmt.Printf("multicast groups  %d (%d joins, %d lines saved)\n",
		rep.Stats.Get("mcast_groups"), rep.Stats.Get("mcast_joins"),
		rep.Stats.Get("mcast_lines_saved"))
	fmt.Printf("results verified  ok\n")
	if o.verbose {
		fmt.Println("\nall counters:")
		fmt.Print(rep.Stats.String())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "delta-sim: "+format+"\n", args...)
	os.Exit(1)
}
