// delta-sim runs one suite workload on one execution-model variant and
// prints the run's statistics.
//
// Usage:
//
//	delta-sim -workload spmv -variant delta -lanes 8 [-hints exact]
package main

import (
	"flag"
	"fmt"
	"os"

	"taskstream/internal/baseline"
	"taskstream/internal/config"
	"taskstream/internal/core"
	"taskstream/internal/stats"
	"taskstream/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "spmv", "suite workload: spmv|bfs|join|tri|sort|kmeans|gemm|stencil|hist")
		variant = flag.String("variant", "delta", "execution model: static|dyn-rr|+lb|+lb+mc|delta")
		lanes   = flag.Int("lanes", 8, "compute lane count")
		hints   = flag.String("hints", "exact", "work-hint fidelity: exact|noisy|none")
		vet     = flag.Bool("vet", true, "statically verify the program before running (delta-vet)")
		verbose = flag.Bool("v", false, "print every counter")
	)
	flag.Parse()

	nb := workload.ByName(*name)
	if nb == nil {
		fatalf("unknown workload %q", *name)
	}
	var v baseline.Variant
	found := false
	for cand := baseline.Static; cand < baseline.NumVariants; cand++ {
		if cand.String() == *variant {
			v, found = cand, true
		}
	}
	if !found {
		fatalf("unknown variant %q", *variant)
	}
	var hm core.HintMode
	switch *hints {
	case "exact":
		hm = core.HintExact
	case "noisy":
		hm = core.HintNoisy
	case "none":
		hm = core.HintNone
	default:
		fatalf("unknown hint mode %q", *hints)
	}

	w := nb.Build()
	cfg, opts := v.Configure(config.Default8().WithLanes(*lanes))
	opts.Hints = hm
	opts.Vet = *vet
	rep, err := baseline.RunCfg(cfg, opts, w.Prog, w.Storage)
	if err != nil {
		fatalf("run: %v", err)
	}
	if err := w.Verify(); err != nil {
		fatalf("verification: %v", err)
	}

	fmt.Printf("workload=%s variant=%s lanes=%d\n", *name, *variant, *lanes)
	fmt.Printf("cycles            %d\n", rep.Cycles)
	fmt.Printf("tasks run         %d (%d spawned)\n",
		rep.Stats.Get("tasks_run"), rep.Stats.Get("tasks_spawned"))
	fmt.Printf("lane imbalance    %.2f (max/mean busy)\n", stats.Imbalance(rep.LaneBusy))
	fmt.Printf("DRAM traffic      %s\n", stats.Bytes(rep.Stats.Get("dram_bytes")))
	fmt.Printf("NoC flit-cycles   %d\n", rep.Stats.Get("noc_flit_cycles"))
	fmt.Printf("forwarded pairs   %d (%d elems)\n",
		rep.Stats.Get("fwd_pairs"), rep.Stats.Get("fwd_elems"))
	fmt.Printf("multicast groups  %d (%d joins, %d lines saved)\n",
		rep.Stats.Get("mcast_groups"), rep.Stats.Get("mcast_joins"),
		rep.Stats.Get("mcast_lines_saved"))
	fmt.Printf("results verified  ok\n")
	if *verbose {
		fmt.Println("\nall counters:")
		fmt.Print(rep.Stats.String())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "delta-sim: "+format+"\n", args...)
	os.Exit(1)
}
