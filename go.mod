module taskstream

go 1.22
